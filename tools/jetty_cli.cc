/**
 * @file
 * Command-line driver for the jetty library: run any workload on any
 * system variant with any set of filter configurations, print coverage
 * and energy tables, or capture/replay binary traces.
 *
 * Usage:
 *   jetty_cli run     [--app NAME] [--procs N] [--buses N]
 *                     [--no-subblock] [--scale F]
 *                     [--filters SPEC[,SPEC...]]
 *   jetty_cli sweep   [--apps NAME[,NAME...]|all] [--procs N[,M...]]
 *                     [--buses N[,M...]] [--no-subblock] [--scale F]
 *                     [--jobs N] [--filters SPEC[,SPEC...]]
 *                     (--buses adds the split-interconnect axis to the
 *                     cross-product: every (app, procs, buses) cell)
 *   jetty_cli apps
 *   jetty_cli filters
 *   jetty_cli capture --app NAME --out FILE [--procs N] [--scale F]
 *                     [--limit N]
 *                     (records every processor's stream into one
 *                     JTTRACE2 file, one section per processor,
 *                     streamed — the capture never lives in memory)
 *   jetty_cli trace   --app NAME --proc P --out FILE [--limit N]
 *                     (single-processor capture, one-section JTTRACE2)
 *   jetty_cli replay  --in FILE[,FILE...] [--filters SPEC[,...]]
 *                     [--procs N]
 *                     (per-processor files, one multi-section capture,
 *                     or one single-section file cloned everywhere;
 *                     streamed and cached by content digest)
 *   jetty_cli bench   [--app NAME | --in FILE[,FILE...]] [--procs N]
 *                     [--buses N] [--scale F] [--filters SPEC[,...]]
 *                     [--batch N] [--repeat K] [--json FILE]
 *                     (sustained refs/sec of the batched delivery
 *                     pipeline; best of K cold runs, optional JSON)
 *   jetty_cli fuzz    [--seed N] [--rounds N] [--refs N] [--procs N]
 *                     [--buses N] [--filters SPEC[,...]] [--seconds S]
 *                     [--smoke] [--audit-every N] [--out FILE]
 *                     [--repro FILE]
 *                     (--buses pins the split interconnect; without it
 *                     rounds cycle snoopBuses through 1/2/4)
 *                     (coverage-guided differential fuzzing: online
 *                     invariant checkers + golden-model and batched
 *                     state equivalence; failures are shrunk and
 *                     written as a JTTRACE2 repro + .txt header.
 *                     --repro replays a previously written repro.
 *                     Exit 0 clean, 2 on a caught violation)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <chrono>

#include "core/filter_registry.hh"
#include "core/filter_spec.hh"
#include "experiments/experiments.hh"
#include "sim/latency.hh"
#include "sim/sweep.hh"
#include "trace/apps.hh"
#include "trace/file_stream_source.hh"
#include "trace/trace_file.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/table.hh"
#include "verify/fuzzer.hh"

using namespace jetty;

namespace
{

/** Parse "--key value" style options into a map. */
std::map<std::string, std::string>
parseOptions(int argc, char **argv, int first)
{
    std::map<std::string, std::string> opts;
    for (int i = first; i < argc; ++i) {
        std::string key = argv[i];
        if (!startsWith(key, "--"))
            fatal("expected an option, got '" + key + "'");
        key = key.substr(2);
        if (key == "no-subblock" || key == "smoke") {
            opts[key] = "1";
        } else {
            if (i + 1 >= argc)
                fatal("option --" + key + " needs a value");
            opts[key] = argv[++i];
        }
    }
    return opts;
}

/** Escape backslashes and quotes so a string can sit in a JSON value. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Split a filter list on commas, but not inside HJ(...) parentheses. */
std::vector<std::string>
splitSpecs(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(trim(cur));
    return out;
}

std::vector<std::string>
filterList(const std::map<std::string, std::string> &opts)
{
    std::vector<std::string> specs;
    auto it = opts.find("filters");
    if (it == opts.end()) {
        specs = {"EJ-32x4", "IJ-10x4x7", "HJ(IJ-10x4x7,EJ-32x4)"};
    } else {
        specs = splitSpecs(it->second);
    }
    // Every subcommand funnels its --filters through here, so an
    // invalid spec always reports through the registry's
    // describeFailure() (naming the offending token and its family's
    // grammar) and exits non-zero via fatal() — no path prints a bare
    // message or falls through with exit 0 (cli negative-path test).
    for (const auto &s : specs) {
        if (!filter::isValidFilterSpec(s))
            fatal(filter::FilterRegistry::instance().describeFailure(s));
    }
    return specs;
}

/** Parse a single --buses option (>= 1); @p fallback when absent. */
unsigned
busCount(const std::map<std::string, std::string> &opts, unsigned fallback)
{
    const auto it = opts.find("buses");
    if (it == opts.end())
        return fallback;
    unsigned v = 0;
    if (!parseUnsigned(it->second, v) || v < 1)
        fatal("--buses needs a count >= 1, got '" + it->second + "'");
    return v;
}

void
printRunReport(const experiments::AppRunResult &run,
               const experiments::SystemVariant &variant,
               const std::vector<std::string> &specs)
{
    const auto agg = run.stats.aggregate();
    std::printf("%s: %.1fM refs, L1 %.1f%%, L2 %.1f%%, snoops miss "
                "%.1f%% of %.2fM probes\n\n",
                run.appName.c_str(), agg.accesses / 1e6,
                percent(agg.l1Hits, agg.accesses),
                percent(agg.l2LocalHits, agg.l2LocalAccesses),
                percent(agg.snoopMisses, agg.snoopTagProbes),
                agg.snoopTagProbes / 1e6);

    TextTable table;
    table.header({"filter", "coverage", "snoopE saved(S)", "allE saved(S)",
                  "snoopE saved(P)", "allE saved(P)", "mean snoop lat"});
    for (const auto &spec : specs) {
        const auto &fs = run.statsFor(spec);
        const auto s = experiments::evaluateEnergy(
            run, variant, spec, energy::AccessMode::Serial);
        const auto p = experiments::evaluateEnergy(
            run, variant, spec, energy::AccessMode::Parallel);
        const auto lat = sim::evaluateLatency(fs);
        table.row({
            spec,
            TextTable::pct(100.0 * fs.coverage()),
            TextTable::pct(s.reductionOverSnoopsPct),
            TextTable::pct(s.reductionOverAllPct),
            TextTable::pct(p.reductionOverSnoopsPct),
            TextTable::pct(p.reductionOverAllPct),
            TextTable::num(lat.jettyMeanCycles, 1) + " cyc",
        });
    }
    table.print();
}

int
cmdRun(const std::map<std::string, std::string> &opts)
{
    experiments::SystemVariant variant;
    if (opts.count("procs"))
        variant.nprocs = static_cast<unsigned>(
            std::atoi(opts.at("procs").c_str()));
    variant.snoopBuses = busCount(opts, 1);
    if (opts.count("no-subblock"))
        variant.subblocked = false;

    const double scale =
        opts.count("scale") ? std::atof(opts.at("scale").c_str()) : 0.25;
    const std::string app =
        opts.count("app") ? opts.at("app") : std::string("lu");
    auto specs = filterList(opts);
    // The report looks runs up by canonical name; normalize the input.
    for (auto &s : specs)
        s = filter::canonicalFilterName(s,
                                        variant.smpConfig().addressMap());

    const auto run = experiments::runApp(trace::appByName(app), variant,
                                         specs, scale);
    printRunReport(run, variant, specs);

    if (variant.snoopBuses > 1) {
        // The split-interconnect view: per-bus occupancy, the latency
        // model's contention term, and the accountant's exact per-bus
        // snoop-energy decomposition.
        const auto contention = sim::evaluateBusContention(run.stats);
        const energy::CacheEnergyModel model(variant.l2EnergyGeometry());
        const energy::EnergyAccountant accountant(model);
        const auto bus_energy = accountant.perBusSnoopEnergy(
            run.stats.busSnoopTagProbes, energy::AccessMode::Serial);
        double total_energy = 0;
        for (const double e : bus_energy)
            total_energy += e;

        std::printf("\ninterconnect: %u buses, busiest %.1f%% utilized "
                    "(mean %.1f%%), M/D/1 wait %.2f bus cycles%s\n",
                    variant.snoopBuses,
                    100.0 * contention.busiestUtilization,
                    100.0 * contention.meanUtilization,
                    contention.busiestWaitBusCycles,
                    contention.saturated ? " [saturated]" : "");
        for (std::size_t b = 0; b < run.stats.perBus.size(); ++b) {
            const auto &bus = run.stats.perBus[b];
            std::printf("  bus %zu: %llu txns (%llu rd, %llu rdX, "
                        "%llu upg), %.1f%% of snoop probe energy\n",
                        b,
                        static_cast<unsigned long long>(bus.transactions),
                        static_cast<unsigned long long>(bus.reads),
                        static_cast<unsigned long long>(bus.readXs),
                        static_cast<unsigned long long>(bus.upgrades),
                        total_energy > 0
                            ? 100.0 * bus_energy[b] / total_energy
                            : 0.0);
        }
    }
    return 0;
}

/**
 * The parallel cross-product: applications × system variants, one table
 * row per (app, variant), one column per filter. Runs go through the
 * declarative experiment layer, so the sweep engine simulates every
 * distinct pair concurrently (--jobs) and exactly once.
 */
int
cmdSweep(const std::map<std::string, std::string> &opts)
{
    auto specs = filterList(opts);
    const double scale =
        opts.count("scale") ? std::atof(opts.at("scale").c_str()) : 0.25;
    unsigned jobs = 0;  // 0 = SweepRunner default
    if (opts.count("jobs")) {
        const int v = std::atoi(opts.at("jobs").c_str());
        if (v < 0)
            fatal("--jobs must be >= 0 (0 = auto)");
        jobs = static_cast<unsigned>(v);
    }

    std::vector<trace::AppProfile> apps;
    const std::string app_list =
        opts.count("apps") ? opts.at("apps") : std::string("all");
    if (toUpper(app_list) == "ALL") {
        apps = trace::paperApps();
    } else {
        for (const auto &name : split(app_list, ','))
            apps.push_back(trace::appByName(trim(name)));
    }

    std::vector<unsigned> proc_counts;
    if (opts.count("procs")) {
        for (const auto &n : split(opts.at("procs"), ',')) {
            unsigned v = 0;
            if (!parseUnsigned(trim(n), v) || v < 2)
                fatal("--procs needs counts >= 2, got '" + trim(n) + "'");
            proc_counts.push_back(v);
        }
    } else {
        proc_counts = {4};
    }

    // The split-interconnect axis: every (app, procs) pair runs once
    // per requested bus count.
    std::vector<unsigned> bus_counts;
    if (opts.count("buses")) {
        for (const auto &n : split(opts.at("buses"), ',')) {
            unsigned v = 0;
            if (!parseUnsigned(trim(n), v) || v < 1)
                fatal("--buses needs counts >= 1, got '" + trim(n) + "'");
            bus_counts.push_back(v);
        }
    } else {
        bus_counts = {1};
    }

    // Results carry canonical filter names ("null" -> "NULL"), so
    // canonicalize the requested specs before using them as lookup keys
    // and column headers.
    {
        experiments::SystemVariant variant;
        if (opts.count("no-subblock"))
            variant.subblocked = false;
        const auto amap = variant.smpConfig().addressMap();
        for (auto &s : specs)
            s = filter::canonicalFilterName(s, amap);
    }

    std::vector<experiments::RunRequest> requests;
    for (unsigned nprocs : proc_counts) {
        for (unsigned buses : bus_counts) {
            experiments::SystemVariant variant;
            variant.nprocs = nprocs;
            variant.snoopBuses = buses;
            if (opts.count("no-subblock"))
                variant.subblocked = false;
            for (const auto &app : apps) {
                experiments::RunRequest req;
                req.app = app;
                req.variant = variant;
                req.filterSpecs = specs;
                req.accessScale = scale;
                requests.push_back(std::move(req));
            }
        }
    }

    const auto sims_before = experiments::RunCache::instance().simulations();
    const auto sweep_start = std::chrono::steady_clock::now();
    const auto runs = experiments::runMany(requests, jobs);
    const double sweep_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    const std::uint64_t simulated =
        experiments::RunCache::instance().simulations() - sims_before;

    TextTable table;
    std::vector<std::string> head{"app", "procs", "buses", "snoopMiss%",
                                  "Mrefs/s"};
    for (const auto &s : specs)
        head.push_back(s);
    table.header(head);

    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &run = runs[i];
        const auto agg = run.stats.aggregate();
        std::vector<std::string> row{
            run.abbrev,
            std::to_string(requests[i].variant.nprocs),
            std::to_string(requests[i].variant.snoopBuses),
            TextTable::pct(percent(agg.snoopMisses, agg.snoopTagProbes)),
            !run.refsTooFewForRate && run.simSeconds > 0
                ? TextTable::num(run.totalRefs / 1e6 / run.simSeconds, 1)
                : std::string("-"),
        };
        for (const auto &s : specs)
            row.push_back(TextTable::pct(100.0 * run.statsFor(s).coverage()));
        table.row(std::move(row));
    }
    table.print();

    // Report the concurrency actually available to this sweep: the
    // requested (or default) worker count never exceeds the number of
    // simulations there were to run.
    const std::uint64_t want = jobs ? jobs : sim::SweepRunner::defaultJobs();
    // Aggregate delivery rate of the whole sweep: references behind every
    // answered run (cache hits included) over the sweep's wall clock.
    std::uint64_t sim_refs = 0;
    for (const auto &run : runs)
        sim_refs += run.totalRefs;
    std::printf("\n%zu runs (%llu simulated, %llu cache hits), "
                "%llu workers, %.1f Mrefs/s served\n",
                runs.size(),
                static_cast<unsigned long long>(simulated),
                static_cast<unsigned long long>(
                    experiments::RunCache::instance().hits()),
                static_cast<unsigned long long>(std::min(want, simulated)),
                sweep_seconds > 0 ? sim_refs / 1e6 / sweep_seconds : 0.0);
    return 0;
}

/** Enumerate the registered filter families and the paper's specs. */
int
cmdFilters()
{
    const auto &registry = filter::FilterRegistry::instance();

    TextTable table;
    table.header({"family", "grammar", "example", "description"});
    for (const auto &key : registry.listFamilies()) {
        const auto *family = registry.family(key);
        table.row({family->key, family->grammar, family->example,
                   family->summary});
    }
    table.print();

    std::printf("\nPaper configurations:\n");
    auto print_list = [](const char *label,
                         const std::vector<std::string> &specs) {
        std::printf("  %-12s", label);
        for (const auto &s : specs)
            std::printf(" %s", s.c_str());
        std::printf("\n");
    };
    print_list("Figure 4(a):", filter::paperExcludeSpecs());
    print_list("Figure 4(b):", filter::paperVectorExcludeSpecs());
    print_list("Figure 5(a):", filter::paperIncludeSpecs());
    print_list("Figure 5(b):", filter::paperHybridSpecs());
    return 0;
}

int
cmdApps()
{
    TextTable table;
    table.header({"tag", "name", "streams", "refs/proc"});
    for (const auto &app : trace::paperApps()) {
        table.row({app.abbrev, app.name,
                   TextTable::count(app.streams.size()),
                   TextTable::count(app.accessesPerProc)});
    }
    table.row({"ts", "ThroughputServer (extra)", "1", "-"});
    table.row({"ws", "WidelyShared (extra)", "2", "-"});
    table.print();
    return 0;
}

int
cmdTrace(const std::map<std::string, std::string> &opts)
{
    if (!opts.count("app") || !opts.count("out"))
        fatal("trace needs --app and --out");
    const unsigned proc = opts.count("proc")
                              ? static_cast<unsigned>(
                                    std::atoi(opts.at("proc").c_str()))
                              : 0;
    const std::uint64_t limit =
        opts.count("limit")
            ? static_cast<std::uint64_t>(std::atoll(opts.at("limit").c_str()))
            : 1'000'000;

    trace::Workload workload(trace::appByName(opts.at("app")), 4);
    auto src = workload.makeSource(proc);
    const auto recs = trace::collect(*src, limit);
    trace::writeTraceFile(opts.at("out"), recs);
    std::printf("wrote %zu references to %s\n", recs.size(),
                opts.at("out").c_str());
    return 0;
}

/** Capture every processor's stream into one multi-section JTTRACE2
 *  file. Streams are written in bounded chunks, so a capture of any
 *  length (beyond 4 Gi records, beyond memory) works. */
int
cmdCapture(const std::map<std::string, std::string> &opts)
{
    if (!opts.count("app") || !opts.count("out"))
        fatal("capture needs --app and --out");
    unsigned nprocs = 4;
    if (opts.count("procs")) {
        if (!parseUnsigned(opts.at("procs"), nprocs) || nprocs < 1)
            fatal("capture --procs needs a count >= 1");
    }
    const double scale =
        opts.count("scale") ? std::atof(opts.at("scale").c_str()) : 1.0;
    const std::uint64_t limit =
        opts.count("limit")
            ? static_cast<std::uint64_t>(
                  std::atoll(opts.at("limit").c_str()))
            : 0;  // 0 = the profile's full stream

    const trace::Workload workload(trace::appByName(opts.at("app")),
                                   nprocs, scale);
    trace::TraceFileWriter writer(opts.at("out"), nprocs);
    std::vector<trace::TraceRecord> buf(64 * 1024);
    for (unsigned p = 0; p < nprocs; ++p) {
        auto src = workload.makeSource(p);
        std::uint64_t left =
            limit ? limit : std::numeric_limits<std::uint64_t>::max();
        while (left > 0) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(left, buf.size()));
            const std::size_t got = src->nextBatch(buf.data(), want);
            writer.append(buf.data(), got);
            left -= got;
            if (got < want)
                break;
        }
        writer.endStream();
    }
    writer.close();
    std::printf("captured %llu references (%u per-processor streams) "
                "to %s\n",
                static_cast<unsigned long long>(writer.recordsWritten()),
                nprocs, opts.at("out").c_str());
    return 0;
}

/** Processor count a replay file list drives; --procs only matters for
 *  one single-section file (trace::inferReplayProcs rules). */
unsigned
replayProcs(const std::vector<std::string> &files,
            const std::map<std::string, std::string> &opts)
{
    unsigned fallback = 4;
    if (opts.count("procs")) {
        if (!parseUnsigned(opts.at("procs"), fallback) || fallback < 2)
            fatal("replay --procs needs a count >= 2");
    }
    return trace::inferReplayProcs(files, fallback);
}

int
cmdReplay(const std::map<std::string, std::string> &opts)
{
    if (!opts.count("in"))
        fatal("replay needs --in FILE[,FILE...] (one per processor)");
    std::vector<std::string> files;
    for (const auto &f : split(opts.at("in"), ','))
        files.push_back(trim(f));

    // Replays go through the experiment layer: the sources stream from
    // disk (nothing is materialized) and the run cache keys the workload
    // by the files' content digests, so repeated replays of one capture
    // simulate once per process.
    experiments::RunRequest req;
    req.variant.nprocs = replayProcs(files, opts);
    req.traceFiles = files;
    req.filterSpecs = filterList(opts);
    req.app.name = "replay:" + opts.at("in");
    req.app.abbrev = "rp";

    std::vector<experiments::RunRequest> requests{req};
    const auto run = experiments::runMany(requests).front();

    const auto agg = run.stats.aggregate();
    std::printf("replayed %.2fM refs on %u processors; snoops miss "
                "%.1f%%\n\n",
                agg.accesses / 1e6, req.variant.nprocs,
                percent(agg.snoopMisses, agg.snoopTagProbes));
    TextTable table;
    table.header({"filter", "coverage"});
    for (std::size_t i = 0; i < run.filterNames.size(); ++i) {
        table.row({run.filterNames[i],
                   TextTable::pct(100.0 * run.filterStats[i].coverage())});
    }
    table.print();
    return 0;
}

/**
 * Sustained throughput of the batched delivery pipeline: best of K cold
 * runs (fresh system and sources each time, only run() timed), reported
 * per run and as JSON for trend tracking.
 */
int
cmdBench(const std::map<std::string, std::string> &opts)
{
    using Clock = std::chrono::steady_clock;

    experiments::SystemVariant variant;
    if (opts.count("procs")) {
        if (!parseUnsigned(opts.at("procs"), variant.nprocs) ||
            variant.nprocs < 2) {
            fatal("bench --procs needs a count >= 2");
        }
    }
    const double scale =
        opts.count("scale") ? std::atof(opts.at("scale").c_str()) : 1.0;
    unsigned repeat = 3;
    if (opts.count("repeat") &&
        (!parseUnsigned(opts.at("repeat"), repeat) || repeat < 1)) {
        fatal("bench --repeat needs a count >= 1");
    }
    const auto specs = filterList(opts);
    variant.snoopBuses = busCount(opts, 1);

    sim::SmpConfig cfg = variant.smpConfig();
    cfg.filterSpecs = specs;
    if (opts.count("batch")) {
        unsigned batch = 0;
        if (!parseUnsigned(opts.at("batch"), batch) || batch < 1)
            fatal("bench --batch needs a count >= 1");
        cfg.batchRefs = batch;
    }

    std::vector<std::string> files;
    std::unique_ptr<trace::Workload> workload;
    std::string name;
    if (opts.count("in")) {
        for (const auto &f : split(opts.at("in"), ','))
            files.push_back(trim(f));
        variant.nprocs = replayProcs(files, opts);
        cfg.nprocs = variant.nprocs;
        name = opts.at("in");
    } else {
        const std::string app =
            opts.count("app") ? opts.at("app") : std::string("lu");
        workload = std::make_unique<trace::Workload>(
            trace::appByName(app), variant.nprocs, scale);
        name = app;
    }

    std::uint64_t refs = 0;
    std::vector<double> seconds;
    for (unsigned r = 0; r < repeat; ++r) {
        sim::SmpSystem sys(cfg);
        std::vector<trace::TraceSourcePtr> sources;
        if (workload) {
            for (unsigned p = 0; p < cfg.nprocs; ++p)
                sources.push_back(workload->makeSource(p));
        } else {
            sources = trace::makeFileSources(files, cfg.nprocs);
        }
        sys.attachSources(std::move(sources));
        const auto t0 = Clock::now();
        sys.run();
        const auto t1 = Clock::now();
        seconds.push_back(std::chrono::duration<double>(t1 - t0).count());
        refs = sys.stats().aggregate().accesses;
    }
    const double best = *std::min_element(seconds.begin(), seconds.end());

    std::printf("bench %s: %u procs, %u bus%s, %zu filters, batch %u, "
                "%.2fM refs\n",
                name.c_str(), cfg.nprocs, cfg.snoopBuses,
                cfg.snoopBuses == 1 ? "" : "es", specs.size(),
                cfg.batchRefs, refs / 1e6);
    for (unsigned r = 0; r < repeat; ++r) {
        std::printf("  run %u: %.3f s  (%.1f Mrefs/s)\n", r + 1,
                    seconds[r], refs / 1e6 / seconds[r]);
    }
    std::printf("sustained: %.1f Mrefs/s (best of %u)\n", refs / 1e6 / best,
                repeat);

    if (opts.count("json")) {
        std::FILE *jf = std::fopen(opts.at("json").c_str(), "w");
        if (!jf)
            fatal("bench: cannot open '" + opts.at("json") + "'");
        std::fprintf(jf,
                     "{\n"
                     "  \"bench\": \"jetty_cli\",\n"
                     "  \"workload\": \"%s\",\n"
                     "  \"procs\": %u,\n"
                     "  \"snoop_buses\": %u,\n"
                     "  \"batch_refs\": %u,\n"
                     "  \"filters\": %zu,\n"
                     "  \"refs\": %llu,\n"
                     "  \"repeats\": %u,\n"
                     "  \"best_seconds\": %.6f,\n"
                     "  \"refs_per_sec\": %.0f\n"
                     "}\n",
                     jsonEscape(name).c_str(), cfg.nprocs, cfg.snoopBuses,
                     cfg.batchRefs, specs.size(),
                     static_cast<unsigned long long>(refs), repeat, best,
                     refs / best);
        std::fclose(jf);
        std::printf("wrote %s\n", opts.at("json").c_str());
    }
    return 0;
}

/**
 * Coverage-guided differential fuzzing (verify/fuzzer.hh): generate
 * adversarial traces, check every online invariant plus golden-model and
 * batched-path state equivalence, shrink and persist any failure.
 */
int
cmdFuzz(const std::map<std::string, std::string> &opts)
{
    verify::FuzzConfig cfg;

    // --smoke first: it sets CI-sized defaults that any explicit option
    // below still overrides.
    if (opts.count("smoke")) {
        cfg.rounds = 64;
        cfg.refsPerProc = 2048;
        cfg.timeBudgetSeconds = 20.0;
    }

    if (opts.count("seed")) {
        char *end = nullptr;
        cfg.seed = static_cast<std::uint64_t>(
            std::strtoull(opts.at("seed").c_str(), &end, 0));
        if (end == opts.at("seed").c_str() || *end != '\0')
            fatal("fuzz --seed needs a number, got '" + opts.at("seed") +
                  "'");
    }
    if (opts.count("rounds")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("rounds"), v) || v < 1)
            fatal("fuzz --rounds needs a count >= 1");
        cfg.rounds = v;
    }
    if (opts.count("refs")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("refs"), v) || v < 1)
            fatal("fuzz --refs needs a count >= 1");
        cfg.refsPerProc = v;
    }
    if (opts.count("procs")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("procs"), v) || v < 2)
            fatal("fuzz --procs needs a count >= 2");
        cfg.system.nprocs = v;
    }
    if (opts.count("buses")) {
        // Pin the interconnect instead of cycling through 1/2/4.
        cfg.system.snoopBuses = busCount(opts, 1);
        cfg.randomizeBuses = false;
    }
    if (opts.count("filters"))
        cfg.system.filterSpecs = filterList(opts);
    if (opts.count("seconds")) {
        char *end = nullptr;
        const double v = std::strtod(opts.at("seconds").c_str(), &end);
        if (end == opts.at("seconds").c_str() || *end != '\0' || v < 0)
            fatal("fuzz --seconds needs a non-negative number, got '" +
                  opts.at("seconds") + "'");
        cfg.timeBudgetSeconds = v;
    }
    if (opts.count("audit-every")) {
        unsigned v = 0;
        if (!parseUnsigned(opts.at("audit-every"), v))
            fatal("fuzz --audit-every needs a count");
        cfg.auditEvery = v;
    }

    if (opts.count("repro")) {
        // Replay a persisted repro through the full differential check,
        // on the machine its sidecar header recorded — not the default
        // one — so a failure caught under custom filters or geometry
        // cannot falsely replay "clean". Explicit --filters overrides.
        const auto traces = verify::readReproTraces(opts.at("repro"));
        if (traces.size() < 2) {
            fatal("fuzz --repro: '" + opts.at("repro") + "' holds " +
                  std::to_string(traces.size()) +
                  " stream(s); a repro needs one per processor (>= 2)");
        }
        if (opts.count("procs") &&
            cfg.system.nprocs != traces.size()) {
            fatal("fuzz --repro: --procs " +
                  std::to_string(cfg.system.nprocs) +
                  " conflicts with the repro's " +
                  std::to_string(traces.size()) + " streams");
        }
        if (!verify::readReproConfig(opts.at("repro"), cfg.system)) {
            warn("no complete sidecar " + opts.at("repro") +
                 ".txt; replaying under the default configuration");
        }
        // Explicit options override what the sidecar restored.
        if (opts.count("filters"))
            cfg.system.filterSpecs = filterList(opts);
        if (opts.count("buses"))
            cfg.system.snoopBuses = busCount(opts, 1);
        cfg.system.nprocs = static_cast<unsigned>(traces.size());
        const std::string failure = verify::TraceFuzzer::checkOnce(
            cfg.system, traces, cfg.auditEvery, true, true, nullptr);
        if (failure.empty()) {
            std::printf("repro %s: clean (%zu streams)\n",
                        opts.at("repro").c_str(), traces.size());
            return 0;
        }
        std::printf("repro %s reproduces:\n  %s\n",
                    opts.at("repro").c_str(), failure.c_str());
        return 2;
    }

    verify::TraceFuzzer fuzzer(cfg);
    const auto result = fuzzer.run();

    std::printf("fuzz: %u rounds, %.2fM refs, coverage %zu/%zu cells "
                "(seed %llu, %u procs, %zu filters)\n",
                result.roundsRun, result.totalRefs / 1e6,
                result.coverage.cellsCovered(),
                result.coverage.cellsTracked(),
                static_cast<unsigned long long>(result.seed),
                cfg.system.nprocs, cfg.system.filterSpecs.size());

    if (!result.failed) {
        std::printf("fuzz: no invariant violations, golden and batched "
                    "states bit-exact\n");
        return 0;
    }

    std::printf("fuzz: FAILURE in round %u (round seed %llu)\n"
                "  %s: %s\n"
                "  shrunk to %llu records\n",
                result.failingRound,
                static_cast<unsigned long long>(result.roundSeed),
                result.invariant.c_str(), result.detail.c_str(),
                static_cast<unsigned long long>(result.records()));
    const std::string out =
        opts.count("out") ? opts.at("out") : std::string("fuzz-repro.jtt");
    // (writeRepro records the failing round's bus count from the result.)
    verify::writeRepro(out, result, cfg.system);
    std::printf("  repro written to %s (+ %s.txt)\n", out.c_str(),
                out.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: jetty_cli run|sweep|apps|filters|"
                             "capture|trace|replay|bench|fuzz [options]\n");
        return 1;
    }
    const std::string cmd = argv[1];
    const auto opts = parseOptions(argc, argv, 2);
    if (cmd == "run")
        return cmdRun(opts);
    if (cmd == "sweep")
        return cmdSweep(opts);
    if (cmd == "apps")
        return cmdApps();
    if (cmd == "filters")
        return cmdFilters();
    if (cmd == "capture")
        return cmdCapture(opts);
    if (cmd == "trace")
        return cmdTrace(opts);
    if (cmd == "replay")
        return cmdReplay(opts);
    if (cmd == "bench")
        return cmdBench(opts);
    if (cmd == "fuzz")
        return cmdFuzz(opts);
    fatal("unknown command '" + cmd + "'");
}
