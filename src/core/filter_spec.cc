#include "core/filter_spec.hh"

#include "core/filter_registry.hh"
#include "util/logging.hh"

namespace jetty::filter
{

SnoopFilterPtr
makeFilter(const std::string &spec, const AddressMap &amap)
{
    SnoopFilterPtr out;
    const auto &registry = FilterRegistry::instance();
    if (!registry.tryMake(spec, amap, &out))
        fatal("makeFilter: " + registry.describeFailure(spec));
    return out;
}

bool
isValidFilterSpec(const std::string &spec)
{
    // Validation instantiates nothing but must still range-check: reuse
    // the parsers in no-output mode (geometry errors surface as fatal() on
    // real construction, which is the documented contract).
    return FilterRegistry::instance().tryMake(spec, AddressMap{}, nullptr);
}

std::string
canonicalFilterName(const std::string &spec, const AddressMap &amap)
{
    return makeFilter(spec, amap)->name();
}

std::vector<std::string>
paperExcludeSpecs()
{
    return {"EJ-32x4", "EJ-32x2", "EJ-16x4", "EJ-16x2", "EJ-8x4", "EJ-8x2"};
}

std::vector<std::string>
paperVectorExcludeSpecs()
{
    return {"VEJ-32x4-8", "VEJ-32x4-4", "VEJ-16x4-8", "VEJ-16x4-4"};
}

std::vector<std::string>
paperIncludeSpecs()
{
    return {"IJ-10x4x7", "IJ-9x4x7", "IJ-8x4x7", "IJ-7x5x6", "IJ-6x5x6"};
}

std::vector<std::string>
paperHybridSpecs()
{
    return {
        "HJ(IJ-10x4x7,EJ-32x4)", "HJ(IJ-9x4x7,EJ-32x4)",
        "HJ(IJ-8x4x7,EJ-32x4)",  "HJ(IJ-10x4x7,EJ-16x2)",
        "HJ(IJ-9x4x7,EJ-16x2)",  "HJ(IJ-8x4x7,EJ-16x2)",
    };
}

} // namespace jetty::filter
