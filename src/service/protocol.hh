/**
 * @file
 * Wire protocol of the experiment service (`jetty_cli serve`): unix
 * stream sockets carrying newline-delimited compact JSON, one value per
 * line in each direction.
 *
 * Request:  {"jetty_request": 1, "verb": "run|ping|stats|shutdown",
 *            "spec": {...}}              (spec only for "run")
 * Response: {"jetty_response": 1, "ok": true, ...}
 *        or {"jetty_response": 1, "ok": false, "error": "..."}
 *
 * Values are framed with json::Value::dumpCompact() — no interior
 * newlines, insertion order preserved — so parse(line) on the far side
 * rebuilds the identical tree and a report relayed through the wire
 * still dump()s to the exact bytes the producing process would have
 * written (the serve/submit bit-identity contract).
 *
 * Versioning: kProtocolVersion is echoed in both directions; a server
 * answering a request with a version it does not speak responds
 * ok=false naming both versions. The payload spec/report carry their
 * own schema versions (jetty_spec / jetty_report), so the protocol
 * version only guards the framing.
 */

#ifndef JETTY_SERVICE_PROTOCOL_HH
#define JETTY_SERVICE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/json.hh"

namespace jetty::service
{

constexpr std::uint64_t kProtocolVersion = 1;

/** Upper bound on one framed line (a full sweep report is a few MB;
 *  anything beyond this is a protocol error, not an allocation). */
constexpr std::size_t kMaxLineBytes = 64ull << 20;

/** Create, bind and listen on a unix stream socket at @p path,
 *  replacing a stale socket file. @return the listening fd, or -1 with
 *  @p err set. */
int listenUnix(const std::string &path, std::string *err);

/** Connect to the unix stream socket at @p path. @return the connected
 *  fd, or -1 with @p err set. */
int connectUnix(const std::string &path, std::string *err);

/** Send @p line plus the terminating newline, handling short writes;
 *  never raises SIGPIPE. @return false with @p err set on failure. */
bool sendLine(int fd, const std::string &line, std::string *err);

/** Frame @p v and send it. */
bool sendValue(int fd, const json::Value &v, std::string *err);

/** readLineTimeout() result when the deadline passed before a full
 *  line arrived (no buffered bytes are lost; the caller may retry). */
constexpr int kReadTimedOut = -2;

/** Incremental newline-delimited reader over one fd. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /** Read one line (without the newline) into @p line.
     *  @return 1 on a line, 0 on clean EOF, -1 with @p err set. */
    int readLine(std::string &line, std::string *err);

    /** As readLine(), but waits at most @p timeoutMs for the line to
     *  complete (buffered data is served without waiting). @return as
     *  readLine(), or kReadTimedOut when the deadline passed — partial
     *  data stays buffered, so retrying is always safe. */
    int readLineTimeout(std::string &line, int timeoutMs, std::string *err);

    /** A complete line is already buffered: readLine() would return
     *  without touching the fd. Poll-driven callers MUST check this
     *  before sleeping — one read() can buffer several lines, and
     *  poll() cannot see this userspace buffer. */
    bool hasBufferedLine() const
    {
        return buf_.find('\n') != std::string::npos;
    }

  private:
    /** Pop a buffered line if one is complete; enforce kMaxLineBytes.
     *  @return 1 (line), -1 (too long), 0 (need more data). */
    int takeBuffered(std::string &line, std::string *err);

    int fd_;
    std::string buf_;
};

/** Build the envelope of a "run" request around @p spec. */
json::Value makeRunRequest(json::Value spec);

/** Build a verb-only request ("ping", "stats", "shutdown"). */
json::Value makeRequest(const std::string &verb);

/** Build the common failure response. */
json::Value makeErrorResponse(const std::string &error);

} // namespace jetty::service

#endif // JETTY_SERVICE_PROTOCOL_HH
