/**
 * @file
 * SweepRunner: the parallel sweep engine under the experiment kit.
 *
 * The paper's evaluation is a cross-product — every JETTY configuration ×
 * every application × every system variant. Each cell of that product is
 * an independent, deterministic simulation: one SmpSystem, one Workload,
 * no shared mutable state. SweepRunner exploits that by owning a worker
 * thread pool and running many (app, variant) jobs concurrently.
 *
 * Determinism contract (DESIGN.md): a job's result depends only on the
 * job description — the workload is seeded from the profile alone and the
 * result lands at the job's index — so `jobs=1` and `jobs=N` produce
 * bit-identical result vectors. The thread pool changes wall-clock time,
 * never numbers.
 */

#ifndef JETTY_SIM_SWEEP_HH
#define JETTY_SIM_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/filter_bank.hh"
#include "energy/accountant.hh"
#include "sim/sim_stats.hh"
#include "sim/smp_system.hh"
#include "sim/worker_pool.hh"
#include "trace/app_profile.hh"

namespace jetty::sim
{

/** One cell of the evaluation cross-product. */
struct SweepJob
{
    /** Workload definition; the simulation seeds from app.seed alone. */
    trace::AppProfile app;

    /** System to instantiate, including cfg.filterSpecs to evaluate. */
    SmpConfig cfg;

    /** Multiplies app.accessesPerProc (tests use << 1.0). */
    double accessScale = 1.0;

    /** Physical/virtual footprint ratio of the page table. */
    unsigned pageSpread = 8;

    /** Mixed into the profile seed, so one app definition can run as
     *  several distinct-trace jobs deterministically. */
    std::uint64_t seedOffset = 0;

    /**
     * When non-empty the job replays these captured trace files through
     * streaming FileStreamSources instead of synthesizing from @ref app
     * (which then only contributes its name to reports): one file per
     * processor, one multi-section file, or one single-section file
     * cloned onto every processor (trace::makeFileSources rules).
     * accessScale/pageSpread/seedOffset do not apply to replays.
     */
    std::vector<std::string> traceFiles;
};

/** Everything one job's simulation produced. */
struct SweepResult
{
    std::uint64_t memoryAllocated = 0;
    SimStats stats{0};

    /** References the simulation retired (all processors). */
    std::uint64_t totalRefs = 0;

    /** Wall-clock seconds the simulation proper took (excludes workload
     *  construction). Timing is reporting only — every simulated number
     *  is independent of it. */
    double elapsedSeconds = 0;

    /**
     * True when the job was too short to rate meaningfully: it retired
     * fewer references than one delivery batch per processor, or the
     * wall clock rounded to zero. refsPerSecond() then reports 0
     * instead of an inf/garbage rate; reporting layers print "-".
     */
    bool refsTooFewForRate = false;

    /** Sustained simulation throughput of this job (0 when
     *  refsTooFewForRate). */
    double
    refsPerSecond() const
    {
        return !refsTooFewForRate && elapsedSeconds > 0
                   ? static_cast<double>(totalRefs) / elapsedSeconds
                   : 0.0;
    }

    /** Canonical names of the evaluated filters, in bank order. */
    std::vector<std::string> filterNames;

    /** Per-filter stats merged over all processors. */
    std::vector<filter::FilterStats> filterStats;

    /** Per-filter per-event energies (J). */
    std::vector<energy::FilterEnergyCosts> filterCosts;

    /** L2 traffic merged over all processors. */
    energy::L2Traffic traffic;
};

/**
 * The engine: a fixed pool of worker threads draining a job queue.
 * run() may be called repeatedly; the pool persists across calls.
 * Concurrent run() calls are safe — each batch tracks its own
 * completion, and the pool drains both queues' jobs interleaved.
 */
class SweepRunner
{
  public:
    /** @param jobs worker count; 0 selects defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** Worker count this runner was built with. */
    unsigned jobs() const { return jobs_; }

    /** The JETTY_JOBS environment variable, or the hardware thread
     *  count (at least 1). */
    static unsigned defaultJobs();

    /**
     * Run every job, concurrently when jobs() > 1.
     * @return one result per job, in job order, independent of jobs().
     */
    std::vector<SweepResult> run(const std::vector<SweepJob> &jobs);

    /** Wall-clock seconds of the most recent run() batch on this runner
     *  (reporting only: aggregate refs/sec = Σ totalRefs / this). */
    double lastBatchSeconds() const { return lastBatchSeconds_; }

    /** Σ refs / Σ wall-clock over @p results (per-job timing). */
    static double aggregateRefsPerSecond(
        const std::vector<SweepResult> &results);

    /** Simulate a single job synchronously on the calling thread. */
    static SweepResult runOne(const SweepJob &job);

  private:
    unsigned jobs_;
    std::atomic<double> lastBatchSeconds_{0};
    WorkerPool pool_;  //!< shared engine (sim/worker_pool.hh)
};

} // namespace jetty::sim

#endif // JETTY_SIM_SWEEP_HH
