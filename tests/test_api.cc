/**
 * @file
 * The declarative API layer: util/json writer/parser round trips,
 * ExperimentSpec parse/emit identity, unknown-key / version-mismatch /
 * range rejection with descriptive messages, canonicalization stability
 * (reordered keys -> the same RunCache key), Report schema goldens, and
 * the machine <-> SmpConfig mapping.
 *
 * The golden fixtures live in tests/golden/ (JETTY_SOURCE_DIR is
 * injected by the build): emitted bytes are compared against checked-in
 * files, so any schema or formatting drift fails CI until the goldens
 * are deliberately regenerated.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/experiment_spec.hh"
#include "api/report.hh"
#include "util/json.hh"

using namespace jetty;
using api::ExperimentSpec;

namespace
{

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

std::string
goldenPath(const std::string &name)
{
    return std::string(JETTY_SOURCE_DIR) + "/tests/golden/" + name;
}

} // namespace

// ---- util/json -------------------------------------------------------

TEST(Json, ScalarRoundTrips)
{
    std::string err;
    const json::Value v = json::parse(
        "{\"i\": -3, \"u\": 18446744073709551615, \"d\": 0.25, "
        "\"s\": \"hi\", \"b\": true, \"n\": null, \"a\": [1, 2]}",
        &err);
    ASSERT_EQ(err, "");
    EXPECT_EQ(v.find("i")->asI64(), -3);
    EXPECT_EQ(v.find("u")->asU64(), 18446744073709551615ULL);
    EXPECT_EQ(v.find("d")->asDouble(), 0.25);
    EXPECT_EQ(v.find("s")->asString(), "hi");
    EXPECT_TRUE(v.find("b")->asBool());
    EXPECT_TRUE(v.find("n")->isNull());
    EXPECT_EQ(v.find("a")->items().size(), 2u);

    // parse(dump()) is the identity (canonical and pretty agree on
    // content, differ only in layout).
    const json::Value again = json::parse(v.dump(), &err);
    ASSERT_EQ(err, "");
    EXPECT_EQ(again.dumpCanonical(), v.dumpCanonical());
}

TEST(Json, StringEscapingRoundTrips)
{
    // The fix the shared writer brings over the fprintf emitters: every
    // hostile character survives a write/parse cycle.
    const std::string hostile =
        "quote\" backslash\\ newline\n tab\t ctrl\x01 done";
    json::Value v = json::Value::object();
    v.set("s", hostile);
    std::string err;
    const json::Value back = json::parse(v.dump(), &err);
    ASSERT_EQ(err, "");
    EXPECT_EQ(back.find("s")->asString(), hostile);
    // And \u escapes decode (including a surrogate pair).
    const json::Value uni =
        json::parse("\"a\\u00e9b\\ud83d\\ude00c\"", &err);
    ASSERT_EQ(err, "");
    EXPECT_EQ(uni.asString(), "a\xc3\xa9"
                              "b\xf0\x9f\x98\x80"
                              "c");
}

TEST(Json, DoubleFormattingIsShortestExact)
{
    EXPECT_EQ(json::formatDouble(0.25), "0.25");
    EXPECT_EQ(json::formatDouble(1.0), "1");
    const double awkward = 0.1 + 0.2;  // 0.30000000000000004
    const std::string s = json::formatDouble(awkward);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), awkward);
}

TEST(Json, CanonicalFormSortsKeysAndStripsWhitespace)
{
    std::string err;
    const json::Value a = json::parse(
        "{\"zeta\": 1, \"alpha\": {\"b\": 2, \"a\": [3]}}", &err);
    ASSERT_EQ(err, "");
    const json::Value b = json::parse(
        "{ \"alpha\" : { \"a\":[3], \"b\": 2 }, \"zeta\": 1 }", &err);
    ASSERT_EQ(err, "");
    EXPECT_EQ(a.dumpCanonical(), b.dumpCanonical());
    EXPECT_EQ(a.dumpCanonical(),
              "{\"alpha\":{\"a\":[3],\"b\":2},\"zeta\":1}");
}

TEST(Json, ErrorsNameTheLineAndProblem)
{
    std::string err;
    json::parse("{\n  \"a\": 1,\n  \"a\": 2\n}", &err);
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;
    EXPECT_NE(err.find("duplicate object key \"a\""), std::string::npos)
        << err;

    json::parse("{\"a\": 1} trailing", &err);
    EXPECT_NE(err.find("trailing"), std::string::npos) << err;

    json::parse("{\"a\": 01x}", &err);
    EXPECT_FALSE(err.empty());
}

// ---- ExperimentSpec: round trips -------------------------------------

TEST(Spec, ParseEmitParseIsTheIdentity)
{
    const std::string text = readFile(
        std::string(JETTY_SOURCE_DIR) + "/examples/quickstart.spec.json");
    ASSERT_FALSE(text.empty());

    std::string err;
    const ExperimentSpec one = ExperimentSpec::parse(text, &err);
    ASSERT_EQ(err, "") << err;
    const std::string emitted = one.emit();
    const ExperimentSpec two = ExperimentSpec::parse(emitted, &err);
    ASSERT_EQ(err, "") << err;
    // Bit-equal re-emission: the schema has one normal form.
    EXPECT_EQ(two.emit(), emitted);
    EXPECT_EQ(two.canonicalText(), one.canonicalText());
}

TEST(Spec, FuzzGeometrySpecRoundTrips)
{
    const std::string text = readFile(
        std::string(JETTY_SOURCE_DIR) + "/examples/fuzz_smoke.spec.json");
    ASSERT_FALSE(text.empty());
    std::string err;
    const ExperimentSpec spec = ExperimentSpec::parse(text, &err);
    ASSERT_EQ(err, "") << err;
    EXPECT_TRUE(spec.machine.hasGeometry);
    EXPECT_EQ(spec.machine.l1.sizeBytes, 1024u);
    EXPECT_EQ(spec.machine.l2.subblocks, 2u);
    EXPECT_TRUE(spec.hasFuzz);
    EXPECT_EQ(spec.fuzz.seed, 12345u);
    EXPECT_FALSE(spec.fuzz.randomizeBuses);

    const ExperimentSpec again = ExperimentSpec::parse(spec.emit(), &err);
    ASSERT_EQ(err, "") << err;
    EXPECT_EQ(again.emit(), spec.emit());

    // machine -> SmpConfig -> machine is lossless.
    const sim::SmpConfig cfg = spec.smpConfig();
    EXPECT_EQ(cfg.l1.sizeBytes, 1024u);
    EXPECT_EQ(cfg.l2.sizeBytes, 8192u);
    EXPECT_EQ(cfg.wbEntries, 4u);
    EXPECT_EQ(cfg.snoopBuses, 2u);
    const api::MachineSpec back = api::MachineSpec::fromSmpConfig(cfg);
    ExperimentSpec echo;
    echo.machine = back;
    ExperimentSpec reparsed = ExperimentSpec::parse(echo.emit(), &err);
    ASSERT_EQ(err, "") << err;
    EXPECT_EQ(reparsed.machine.l1.sizeBytes, spec.machine.l1.sizeBytes);
    EXPECT_EQ(reparsed.machine.l2.blockBytes,
              spec.machine.l2.blockBytes);
    EXPECT_EQ(reparsed.machine.wbEntries, spec.machine.wbEntries);
}

// ---- ExperimentSpec: rejection with descriptive messages -------------

TEST(Spec, UnknownKeysAreNamedWithTheValidSet)
{
    std::string err;
    ExperimentSpec::parse(
        "{\"jetty_spec\": 1, \"machine\": {\"procss\": 4}}", &err);
    EXPECT_NE(err.find("machine.procss"), std::string::npos) << err;
    EXPECT_NE(err.find("valid:"), std::string::npos) << err;
    EXPECT_NE(err.find("procs"), std::string::npos) << err;

    ExperimentSpec::parse("{\"jetty_spec\": 1, \"machien\": {}}", &err);
    EXPECT_NE(err.find("machien"), std::string::npos) << err;
    EXPECT_NE(err.find("valid:"), std::string::npos) << err;
}

TEST(Spec, VersionMismatchIsRejected)
{
    std::string err;
    ExperimentSpec::parse("{\"jetty_spec\": 2}", &err);
    EXPECT_NE(err.find("unsupported version"), std::string::npos) << err;
    EXPECT_NE(err.find("reads version 1"), std::string::npos) << err;

    ExperimentSpec::parse("{\"machine\": {}}", &err);
    EXPECT_NE(err.find("jetty_spec"), std::string::npos) << err;
    EXPECT_NE(err.find("missing"), std::string::npos) << err;
}

TEST(Spec, RangeViolationsAreRejectedDescriptively)
{
    std::string err;
    ExperimentSpec::parse(
        "{\"jetty_spec\": 1, \"machine\": {\"buses\": 0}}", &err);
    EXPECT_NE(err.find("machine.buses"), std::string::npos) << err;
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;

    ExperimentSpec::parse(
        "{\"jetty_spec\": 1, \"workload\": {\"scale\": -0.5}}", &err);
    EXPECT_NE(err.find("workload.scale"), std::string::npos) << err;

    ExperimentSpec::parse(
        "{\"jetty_spec\": 1, \"sweep\": {\"procs\": [4, 1]}}", &err);
    EXPECT_NE(err.find("sweep.procs"), std::string::npos) << err;
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;

    // A one-processor "SMP" fails at parse, not in SmpSystem.
    ExperimentSpec::parse(
        "{\"jetty_spec\": 1, \"machine\": {\"procs\": 1}}", &err);
    EXPECT_NE(err.find("machine.procs"), std::string::npos) << err;
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;

    // Both workload kinds at once would silently drop the apps half.
    ExperimentSpec::parse(
        "{\"jetty_spec\": 1, \"workload\": {\"apps\": [\"lu\"], "
        "\"trace_files\": [\"t.jtt\"]}}",
        &err);
    EXPECT_NE(err.find("mutually exclusive"), std::string::npos) << err;

    // Half a geometry is no geometry.
    ExperimentSpec::parse(
        "{\"jetty_spec\": 1, \"machine\": {\"l1\": {\"size_bytes\": 1024, "
        "\"assoc\": 1, \"block_bytes\": 32}}}",
        &err);
    EXPECT_NE(err.find("both l1 and l2"), std::string::npos) << err;
}

TEST(Spec, FilterAndAppTyposFailThroughTheRegistries)
{
    std::string err;
    ExperimentSpec::parse(
        "{\"jetty_spec\": 1, \"filters\": [\"BOGUS-1\"]}", &err);
    EXPECT_NE(err.find("unknown filter family"), std::string::npos) << err;

    ExperimentSpec::parse(
        "{\"jetty_spec\": 1, \"workload\": {\"apps\": [\"nosuch\"]}}",
        &err);
    EXPECT_NE(err.find("unknown application 'nosuch'"), std::string::npos)
        << err;
}

// ---- Canonicalization is the RunCache key ----------------------------

TEST(Spec, ReorderedKeysCanonicalizeIdentically)
{
    std::string err;
    const ExperimentSpec a = ExperimentSpec::parse(
        "{\"jetty_spec\": 1,\n"
        " \"machine\": {\"procs\": 4, \"buses\": 2, \"subblocked\": true},\n"
        " \"workload\": {\"apps\": [\"lu\"], \"scale\": 0.25},\n"
        " \"filters\": [\"EJ-32x4\"]}",
        &err);
    ASSERT_EQ(err, "") << err;
    const ExperimentSpec b = ExperimentSpec::parse(
        "{\"filters\": [\"EJ-32x4\"],\n"
        " \"workload\": {\"scale\": 0.25, \"apps\": [\"lu\"]},\n"
        " \"machine\": {\"subblocked\": true, \"buses\": 2, \"procs\": 4},\n"
        " \"jetty_spec\": 1}",
        &err);
    ASSERT_EQ(err, "") << err;
    EXPECT_EQ(a.canonicalText(), b.canonicalText());

    // ... and therefore the expanded requests key the RunCache
    // identically: same cell, same canonical key, one simulation.
    const auto ra = a.expand();
    const auto rb = b.expand();
    ASSERT_EQ(ra.size(), 1u);
    ASSERT_EQ(rb.size(), 1u);
    EXPECT_EQ(api::runCacheKey(ra[0], a.scale),
              api::runCacheKey(rb[0], b.scale));
}

TEST(Spec, RunCacheKeySeparatesWhatMustBeSeparate)
{
    std::string err;
    const ExperimentSpec base = ExperimentSpec::parse(
        "{\"jetty_spec\": 1, \"workload\": {\"apps\": [\"lu\"], "
        "\"scale\": 0.25}}",
        &err);
    ASSERT_EQ(err, "") << err;
    const auto req = base.expand().at(0);

    // Scale splits profile-backed keys.
    EXPECT_NE(api::runCacheKey(req, 0.25), api::runCacheKey(req, 0.5));

    // A different variant splits keys.
    auto other = req;
    other.variant.snoopBuses = 4;
    EXPECT_NE(api::runCacheKey(req, 0.25),
              api::runCacheKey(other, 0.25));

    // A different app splits keys (content fingerprint, not name).
    ExperimentSpec fm = base;
    fm.apps = {"fm"};
    EXPECT_NE(api::runCacheKey(fm.expand().at(0), 0.25),
              api::runCacheKey(req, 0.25));

    // Filters deliberately do NOT join the key: the bank is a passive
    // observer, so a superset simulation answers any subset request.
    auto filtered = req;
    filtered.filterSpecs = {"EJ-32x4"};
    EXPECT_EQ(api::runCacheKey(req, 0.25),
              api::runCacheKey(filtered, 0.25));
}

// ---- expansion -------------------------------------------------------

TEST(Spec, ExpandIsTheSweepCrossProduct)
{
    std::string err;
    const ExperimentSpec spec = ExperimentSpec::parse(
        "{\"jetty_spec\": 1,\n"
        " \"workload\": {\"apps\": [\"lu\", \"fm\"], \"scale\": 0.01},\n"
        " \"sweep\": {\"procs\": [4, 8], \"buses\": [1, 2]}}",
        &err);
    ASSERT_EQ(err, "") << err;
    const auto requests = spec.expand();
    ASSERT_EQ(requests.size(), 8u);  // 2 apps x 2 procs x 2 buses
    // Axis order: procs-major, then buses, then apps (the CLI's table
    // order).
    EXPECT_EQ(requests[0].variant.nprocs, 4u);
    EXPECT_EQ(requests[0].variant.snoopBuses, 1u);
    EXPECT_EQ(requests[0].app.abbrev, "lu");
    EXPECT_EQ(requests[1].app.abbrev, "fm");
    EXPECT_EQ(requests[2].variant.snoopBuses, 2u);
    EXPECT_EQ(requests[4].variant.nprocs, 8u);
    for (const auto &req : requests)
        EXPECT_EQ(req.accessScale, 0.01);
}

// ---- Report schema golden --------------------------------------------

TEST(Report, GoldenFixturePinsTheSchema)
{
    // A fully deterministic report: fixed spec, fixed stats. Emitted
    // bytes must match the checked-in golden; regenerate it consciously
    // (see tests/golden/README) when the schema changes.
    std::string err;
    const ExperimentSpec spec = ExperimentSpec::parse(
        readFile(std::string(JETTY_SOURCE_DIR) +
                 "/examples/quickstart.spec.json"),
        &err);
    ASSERT_EQ(err, "") << err;

    sim::SimStats stats(2, 2);
    stats.procs[0].accesses = 100;
    stats.procs[0].reads = 60;
    stats.procs[0].writes = 40;
    stats.procs[0].l1Hits = 90;
    stats.procs[0].l1Misses = 10;
    stats.procs[1].accesses = 100;
    stats.procs[1].snoopTagProbes = 7;
    stats.procs[1].snoopMisses = 5;
    stats.snoopTransactions = 7;
    stats.perBus[0].transactions = 4;
    stats.perBus[0].reads = 4;
    stats.perBus[1].transactions = 3;
    stats.perBus[1].upgrades = 3;
    stats.busSnoopTagProbes = {4, 3};

    api::Report report("golden");
    // The envelope's SIMD provenance is resolved from the running host;
    // pin it so the golden bytes stay machine- and tier-independent
    // (set() replaces in place, keeping the envelope field order).
    report.root().set("simd_isa", "scalar");
    report.root().set("simd_width", 1);
    report.echoSpec(spec);
    report.root().set("arch", api::Report::archNode(stats));
    report.root().set("per_bus", api::Report::perBusNode(stats));
    report.root().set("timing",
                      api::Report::timingNode(200, 0.5, false));
    report.root().set("short_run",
                      api::Report::timingNode(10, 0.0, true));

    const std::string golden = readFile(goldenPath("report_fixture.json"));
    ASSERT_FALSE(golden.empty())
        << "missing golden: " << goldenPath("report_fixture.json");
    EXPECT_EQ(report.emit(), golden)
        << "Report schema drifted; regenerate tests/golden/"
           "report_fixture.json deliberately if this is intended";
}

TEST(Spec, GoldenCanonicalFormIsStable)
{
    // The canonical serialization IS the RunCache key, so its exact
    // bytes are a compatibility surface; pin them.
    std::string err;
    const ExperimentSpec spec = ExperimentSpec::parse(
        readFile(std::string(JETTY_SOURCE_DIR) +
                 "/examples/quickstart.spec.json"),
        &err);
    ASSERT_EQ(err, "") << err;
    const std::string golden =
        readFile(goldenPath("quickstart.canonical.json"));
    ASSERT_FALSE(golden.empty())
        << "missing golden: " << goldenPath("quickstart.canonical.json");
    // The golden file has a trailing newline (editors insist); the
    // canonical form itself has none.
    EXPECT_EQ(spec.canonicalText() + "\n", golden)
        << "canonical spec form drifted; RunCache keys would change";
}
