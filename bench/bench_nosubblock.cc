/**
 * @file
 * Regenerates the non-subblocked ("NSB") side results quoted throughout
 * Sections 4.2-4.3: with whole-block (non-subblocked) coherence, fewer
 * snoop-induced accesses miss (paper: 68% of snoops vs 91%; 46% of all
 * L2 accesses vs 54.5%), and the best Hybrid-JETTY's coverage drops from
 * ~76% to ~68% because subblocking is a major source of the snoop
 * locality the exclude side captures.
 */

#include <cstdio>

#include "experiments/experiments.hh"
#include "util/table.hh"

using namespace jetty;

int
main()
{
    const std::string best = "HJ(IJ-10x4x7,EJ-32x4)";

    // Declare both variants' runs up front: one concurrent sweep over
    // all twenty (app, variant) systems instead of two serial passes.
    std::vector<experiments::RunRequest> requests;
    for (bool subblocked : {true, false}) {
        experiments::SystemVariant variant;
        variant.subblocked = subblocked;
        for (const auto &app : trace::paperApps()) {
            experiments::RunRequest req;
            req.app = app;
            req.variant = variant;
            req.filterSpecs = {best, "EJ-32x4"};
            req.accessScale = experiments::defaultScale();
            requests.push_back(std::move(req));
        }
    }
    experiments::runMany(requests);

    TextTable table;
    table.header({"L2 blocks", "snoopMiss % of snoops",
                  "snoopMiss % of all L2", "HJ coverage", "EJ-32x4 cov"});

    for (bool subblocked : {true, false}) {
        experiments::SystemVariant variant;
        variant.subblocked = subblocked;

        double miss_snoops = 0, miss_all = 0, cov = 0, ej_cov = 0;
        const auto runs = experiments::runAllApps(
            variant, {best, "EJ-32x4"}, experiments::defaultScale());
        for (const auto &run : runs) {
            const auto agg = run.stats.aggregate();
            miss_snoops += percent(agg.snoopMisses, agg.snoopTagProbes);
            miss_all += percent(agg.snoopMisses,
                                agg.l2LocalAccesses + agg.snoopTagProbes);
            cov += 100.0 * run.statsFor(best).coverage();
            ej_cov += 100.0 * run.statsFor("EJ-32x4").coverage();
        }
        const double n = static_cast<double>(runs.size());
        table.row({subblocked ? "64B, 2 subblocks" : "32B, whole-block",
                   TextTable::pct(miss_snoops / n),
                   TextTable::pct(miss_all / n), TextTable::pct(cov / n),
                   TextTable::pct(ej_cov / n)});
    }

    std::printf("Sections 4.2/4.3: subblocked vs non-subblocked L2\n\n");
    table.print();
    std::printf("\nPaper: snoop-miss rate 91%% -> 68%% of snoops and "
                "54.5%% -> 46%% of all accesses without subblocking; best "
                "HJ coverage 76%% -> 68%%.\n");
    return 0;
}
