#include "core/filter_spec.hh"

#include "core/exclude_jetty.hh"
#include "core/hybrid_jetty.hh"
#include "core/include_jetty.hh"
#include "core/null_filter.hh"
#include "core/region_filter.hh"
#include "core/vector_exclude_jetty.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace jetty::filter
{

namespace
{

/** Parse "AxB" or "AxBxC" numeric tuples. */
bool
parseTuple(const std::string &body, std::vector<unsigned> &out)
{
    out.clear();
    for (const auto &part : split(body, 'x')) {
        unsigned v = 0;
        if (!parseUnsigned(part, v))
            return false;
        out.push_back(v);
    }
    return true;
}

bool
tryMake(const std::string &raw, const AddressMap &amap, SnoopFilterPtr *out)
{
    const std::string spec = trim(raw);
    if (spec.empty())
        return false;

    if (toUpper(spec) == "NULL") {
        if (out)
            *out = std::make_unique<NullFilter>();
        return true;
    }

    if (startsWith(spec, "HJ(") && spec.back() == ')') {
        const std::string inner = spec.substr(3, spec.size() - 4);
        // Split at the top-level comma (components contain no parens).
        const auto comma = inner.find(',');
        if (comma == std::string::npos)
            return false;
        SnoopFilterPtr ij, ej;
        if (!tryMake(inner.substr(0, comma), amap, out ? &ij : nullptr))
            return false;
        if (!tryMake(inner.substr(comma + 1), amap, out ? &ej : nullptr))
            return false;
        if (out)
            *out = std::make_unique<HybridJetty>(std::move(ij),
                                                 std::move(ej));
        return true;
    }

    if (startsWith(spec, "VEJ-")) {
        const auto parts = split(spec.substr(4), '-');
        if (parts.size() != 2)
            return false;
        std::vector<unsigned> t;
        unsigned vec = 0;
        if (!parseTuple(parts[0], t) || t.size() != 2 ||
            !parseUnsigned(parts[1], vec)) {
            return false;
        }
        VectorExcludeJettyConfig cfg;
        cfg.sets = t[0];
        cfg.assoc = t[1];
        cfg.vectorBits = vec;
        if (out)
            *out = std::make_unique<VectorExcludeJetty>(cfg, amap);
        return true;
    }

    if (startsWith(spec, "EJ-")) {
        std::vector<unsigned> t;
        if (!parseTuple(spec.substr(3), t) || t.size() != 2)
            return false;
        ExcludeJettyConfig cfg;
        cfg.sets = t[0];
        cfg.assoc = t[1];
        if (out)
            *out = std::make_unique<ExcludeJetty>(cfg, amap);
        return true;
    }

    if (startsWith(spec, "RF-")) {
        std::vector<unsigned> t;
        if (!parseTuple(spec.substr(3), t) || t.size() != 2)
            return false;
        RegionFilterConfig cfg;
        cfg.entryBits = t[0];
        cfg.regionBits = t[1];
        if (out)
            *out = std::make_unique<RegionFilter>(cfg, amap);
        return true;
    }

    if (startsWith(spec, "IJ-")) {
        std::string body = spec.substr(3);
        IjIndexBase base = IjIndexBase::Block;
        if (!body.empty() && (body.back() == 'u' || body.back() == 'U')) {
            base = IjIndexBase::Unit;
            body.pop_back();
        }
        std::vector<unsigned> t;
        if (!parseTuple(body, t) || t.size() != 3)
            return false;
        IncludeJettyConfig cfg;
        cfg.entryBits = t[0];
        cfg.arrays = t[1];
        cfg.skipBits = t[2];
        cfg.base = base;
        if (out)
            *out = std::make_unique<IncludeJetty>(cfg, amap);
        return true;
    }

    return false;
}

} // namespace

SnoopFilterPtr
makeFilter(const std::string &spec, const AddressMap &amap)
{
    SnoopFilterPtr out;
    if (!tryMake(spec, amap, &out))
        fatal("makeFilter: malformed filter spec '" + spec + "'");
    return out;
}

bool
isValidFilterSpec(const std::string &spec)
{
    // Validation instantiates nothing but must still range-check: reuse
    // the parser in no-output mode (geometry errors surface as fatal() on
    // real construction, which is the documented contract).
    return tryMake(spec, AddressMap{}, nullptr);
}

std::vector<std::string>
paperExcludeSpecs()
{
    return {"EJ-32x4", "EJ-32x2", "EJ-16x4", "EJ-16x2", "EJ-8x4", "EJ-8x2"};
}

std::vector<std::string>
paperVectorExcludeSpecs()
{
    return {"VEJ-32x4-8", "VEJ-32x4-4", "VEJ-16x4-8", "VEJ-16x4-4"};
}

std::vector<std::string>
paperIncludeSpecs()
{
    return {"IJ-10x4x7", "IJ-9x4x7", "IJ-8x4x7", "IJ-7x5x6", "IJ-6x5x6"};
}

std::vector<std::string>
paperHybridSpecs()
{
    return {
        "HJ(IJ-10x4x7,EJ-32x4)", "HJ(IJ-9x4x7,EJ-32x4)",
        "HJ(IJ-8x4x7,EJ-32x4)",  "HJ(IJ-10x4x7,EJ-16x2)",
        "HJ(IJ-9x4x7,EJ-16x2)",  "HJ(IJ-8x4x7,EJ-16x2)",
    };
}

} // namespace jetty::filter
