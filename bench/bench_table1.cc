/**
 * @file
 * Regenerates Table 1: the peak-power breakdown of a 400 MHz Pentium II
 * Xeon (published data) with the derived "L2 share of overall power"
 * columns, plus this library's own estimate of the tag-array share for
 * the paper's base L2 organization -- the motivation numbers of
 * Section 2.1.
 */

#include <cstdio>

#include "energy/cache_energy.hh"
#include "energy/xeon_power.hh"
#include "util/table.hh"

using namespace jetty;
using namespace jetty::energy;

int
main()
{
    TextTable table;
    table.header({"L2 size", "Core W", "L2 W", "L2 pads W", "L2 %",
                  "L2 w/o pads %"});
    for (const auto &row : xeonPowerTable) {
        table.row({
            std::to_string(row.l2KBytes / (row.l2KBytes >= 1024 ? 1024 : 1)) +
                (row.l2KBytes >= 1024 ? "M" : "K"),
            TextTable::num(row.coreWatts, 1),
            TextTable::num(row.l2Watts, 1),
            TextTable::num(row.l2PadWatts, 1),
            TextTable::pct(100.0 * row.l2FractionWithPads(), 0),
            TextTable::pct(100.0 * row.l2FractionWithoutPads(), 0),
        });
    }

    std::printf("Table 1: Xeon peak power breakdown (source data: "
                "Microprocessor Report 12(9), via the paper)\n\n");
    table.print();
    std::printf("\nPaper values: 14%%/16%%, 23%%/28%%, 34%%/43%%.\n\n");

    // Our energy model's view of the same organization: how the per-access
    // energy of a 1MB L2 splits between tags and data.
    for (unsigned block : {32u, 64u}) {
        CacheGeometry geom;
        geom.sizeBytes = 1024 * 1024;
        geom.assoc = 4;
        geom.blockBytes = block;
        geom.subblocks = 1;
        geom.physAddrBits = 36;
        CacheEnergyModel model(geom);
        const auto &e = model.energies();
        const double data_block = e.dataReadUnit;
        std::printf("1MB 4-way, %uB blocks: tag probe %.1f pJ, block read "
                    "%.1f pJ (tag/data ratio %.2f; tag banks %u, data "
                    "banks %u)\n",
                    block, e.tagRead * 1e12, data_block * 1e12,
                    e.tagRead / data_block, model.tagBanks(),
                    model.dataBanks());
    }
    return 0;
}
