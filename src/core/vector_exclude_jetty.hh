/**
 * @file
 * Vector-Exclude-JETTY (Section 3.1, Figure 3a): an exclude-JETTY whose
 * entries cover a chunk of V consecutive L2 *blocks* with a V-bit present
 * vector, exploiting spatial locality in the snoop miss stream. The
 * stored tag covers the chunk; the low block-address bits select the
 * vector bit. A set bit means that whole block is absent from the local
 * L2 (same whole-block semantics as the scalar EJ).
 */

#ifndef JETTY_CORE_VECTOR_EXCLUDE_JETTY_HH
#define JETTY_CORE_VECTOR_EXCLUDE_JETTY_HH

#include <cstdint>
#include <vector>

#include "core/snoop_filter.hh"

namespace jetty::filter
{

/** Configuration of a VEJ-SxA-V organization. */
struct VectorExcludeJettyConfig
{
    unsigned sets = 32;       //!< power of two
    unsigned assoc = 4;       //!< ways per set
    unsigned vectorBits = 8;  //!< consecutive blocks per entry (power of 2)
};

/** The vector exclude-JETTY. */
class VectorExcludeJetty : public SnoopFilter
{
  public:
    VectorExcludeJetty(const VectorExcludeJettyConfig &cfg,
                       const AddressMap &amap);

    bool probe(Addr unitAddr) override;
    void onSnoopMiss(Addr unitAddr, bool blockPresent) override;
    void onFill(Addr unitAddr) override;
    void onEvict(Addr) override {}
    void clear() override;

    StorageBreakdown storage() const override;
    energy::FilterEnergyCosts
    energyCosts(const energy::Technology &tech) const override;
    std::string name() const override;

    /** Bits of tag stored per entry. */
    unsigned storedTagBits() const { return tagBits_; }

  private:
    struct Entry
    {
        Addr tag = 0;
        std::uint64_t vector = 0;  //!< bit i set => block (chunk+i) absent
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setIndex(Addr unitAddr) const;
    Addr tagOf(Addr unitAddr) const;
    unsigned bitOf(Addr unitAddr) const;

    VectorExcludeJettyConfig cfg_;
    AddressMap amap_;
    unsigned vecBits_;   //!< log2(vectorBits)
    unsigned setBits_;
    unsigned tagBits_;
    std::vector<std::vector<Entry>> sets_;
    std::uint64_t useClock_ = 0;
};

} // namespace jetty::filter

#endif // JETTY_CORE_VECTOR_EXCLUDE_JETTY_HH
