#include "core/filter_bank.hh"

#include "core/filter_spec.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace jetty::filter
{

FilterBank::FilterBank(const std::vector<std::string> &specs,
                       const AddressMap &amap, bool checkSafety,
                       unsigned snoopBuses)
    : amap_(amap), checkSafety_(checkSafety),
      snoopBuses_(snoopBuses >= 1 ? snoopBuses : 1),
      busQueues_(snoopBuses_)
{
    filters_.reserve(specs.size());
    for (const auto &spec : specs)
        filters_.push_back(makeFilter(spec, amap));
    stats_.resize(filters_.size());
}

void
FilterBank::observeSnoop(Addr unitAddr, bool unitInL2, bool blockInL2)
{
    if (deferred_) {
        deferSnoop(homeBusOf(unitAddr), unitAddr, unitInL2, blockInL2);
        return;
    }

    // Hot path: one call per filter per snoop per remote node. The
    // ground truth is identical for every filter, so the branch on it is
    // hoisted out of the loop; the counters each arm bumps are exactly
    // those of the straightforward per-filter version. The observer is
    // likewise hoisted into one register-held pointer, so the unobserved
    // bank pays a single never-taken branch per filter.
    const std::size_t n = filters_.size();
    FilterProbeObserver *const obs = probeObserver_;
    if (unitInL2) {
        // Cached here: no filter may claim "not cached".
        for (std::size_t i = 0; i < n; ++i) {
            FilterStats &st = stats_[i];
            ++st.probes;
            const bool filtered = filters_[i]->probe(unitAddr);
            if (obs)
                obs->onFilterProbe(
                    {owner_, i, unitAddr, true, blockInL2, filtered});
            if (filtered) {
                ++st.filtered;
                ++st.safetyViolations;
                if (checkSafety_) {
                    panic("JETTY safety violation: " + filters_[i]->name() +
                          " filtered a snoop to a cached unit");
                }
            }
        }
        return;
    }
    // True miss everywhere: filtering is the win, and unfiltered misses
    // feed the exclude components' allocation streams.
    for (std::size_t i = 0; i < n; ++i) {
        FilterStats &st = stats_[i];
        ++st.probes;
        ++st.wouldMiss;
        const bool filtered = filters_[i]->probe(unitAddr);
        if (obs)
            obs->onFilterProbe(
                {owner_, i, unitAddr, false, blockInL2, filtered});
        if (filtered) {
            ++st.filtered;
            ++st.filteredWouldMiss;
        } else {
            filters_[i]->onSnoopMiss(unitAddr, blockInL2);
            ++st.snoopAllocs;
        }
    }
}

void
FilterBank::setProbeObserver(FilterProbeObserver *obs, ProcId owner)
{
    // Observed banks observe immediately and in stream order; entering
    // (or being in) deferred mode with an observer attached would starve
    // it. SmpSystem routes observed runs through the immediate path, so
    // both of these are caller bugs, caught loudly.
    if (obs && deferred_)
        panic("FilterBank: cannot attach a probe observer while deferred");
    probeObserver_ = obs;
    owner_ = owner;
}

void
FilterBank::beginDeferred()
{
    if (probeObserver_)
        panic("FilterBank: cannot defer while a probe observer is attached");
    deferred_ = true;
}

void
FilterBank::endDeferred()
{
    flushDeferred();
    deferred_ = false;
}

void
FilterBank::flushDeferred()
{
    // Bus-major replay: each filter sees bus 0's events first, then bus
    // 1's, each queue in capture order — the deterministic cross-bus
    // order the split-bus contract documents (DESIGN.md); with one bus
    // this is the original total order. The filter loop is outermost so
    // one filter's arrays stay hot across every bus queue of the flush
    // (filters are independent, so this ordering is result-identical to
    // flushing queue by queue).
    if (!prepareFlush())
        return;
    for (std::size_t i = 0; i < filters_.size(); ++i)
        replayOne(i);
    completeFlush();
}

bool
FilterBank::prepareFlush()
{
    bool any = false;
    for (const auto &queue : busQueues_) {
        if (!queue.empty()) {
            any = true;
            break;
        }
    }
    if (!any)
        return false;
    violationsBefore_.resize(stats_.size());
    for (std::size_t i = 0; i < stats_.size(); ++i)
        violationsBefore_[i] = stats_[i].safetyViolations;
    return true;
}

void
FilterBank::replayOne(std::size_t filterIdx)
{
    FilterStats &st = stats_[filterIdx];
    SnoopFilter *const f = filters_[filterIdx].get();
    for (const auto &queue : busQueues_) {
        queue.forEachRun([&](const BankEvent *evs, std::size_t n) {
            // Pull the run's tail toward the cache while the head
            // replays; each 64 B line holds four 16 B events.
            for (std::size_t off = 0; off < n; off += 64 / sizeof(BankEvent))
                simd::prefetchRead(evs + off);
            f->applyBatch(evs, n, st);
        });
    }
}

void
FilterBank::completeFlush()
{
    if (checkSafety_) {
        for (std::size_t i = 0; i < filters_.size(); ++i) {
            if (stats_[i].safetyViolations != violationsBefore_[i]) {
                panic("JETTY safety violation: " + filters_[i]->name() +
                      " filtered a snoop to a cached unit");
            }
        }
    }
    for (auto &queue : busQueues_)
        queue.clear();
}

void
FilterBank::observeSnoopBatch(const BankEvent *evs, std::size_t n)
{
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        FilterStats &st = stats_[i];
        const std::uint64_t violations_before = st.safetyViolations;
        filters_[i]->applyBatch(evs, n, st);
        if (checkSafety_ && st.safetyViolations != violations_before) {
            panic("JETTY safety violation: " + filters_[i]->name() +
                  " filtered a snoop to a cached unit");
        }
    }
}

void
FilterBank::unitFilled(Addr unitAddr)
{
    if (deferred_) {
        busQueues_[homeBusOf(unitAddr)].push(
            {unitAddr, BankEvent::Kind::Fill, false, false});
        return;
    }
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        filters_[i]->onFill(unitAddr);
        ++stats_[i].fillUpdates;
    }
}

void
FilterBank::unitEvicted(Addr unitAddr)
{
    if (deferred_) {
        busQueues_[homeBusOf(unitAddr)].push(
            {unitAddr, BankEvent::Kind::Evict, false, false});
        return;
    }
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        filters_[i]->onEvict(unitAddr);
        ++stats_[i].evictUpdates;
    }
}

int
FilterBank::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        if (filters_[i]->name() == name)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace jetty::filter
