#include "service/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "api/experiment_spec.hh"
#include "service/executor.hh"
#include "service/protocol.hh"
#include "util/logging.hh"

namespace jetty::service
{

namespace
{

/** Answer one parsed request; never throws, never fatal()s on bad
 *  input — the response carries the failure instead. */
json::Value
handleRequest(const json::Value &req, unsigned jobs, bool &shutdown)
{
    if (!req.isObject())
        return makeErrorResponse("request is not a JSON object");
    const json::Value *ver = req.find("jetty_request");
    if (!ver || !ver->isNumber() || !ver->fitsU64())
        return makeErrorResponse("missing jetty_request version");
    if (ver->asU64() != kProtocolVersion) {
        return makeErrorResponse(
            "protocol version " + std::to_string(ver->asU64()) +
            " not supported (this server speaks " +
            std::to_string(kProtocolVersion) + ")");
    }
    const json::Value *verb = req.find("verb");
    if (!verb || !verb->isString())
        return makeErrorResponse("missing verb");

    json::Value resp = json::Value::object();
    resp.set("jetty_response", kProtocolVersion);

    if (verb->asString() == "ping") {
        resp.set("ok", true);
        resp.set("pong", true);
        return resp;
    }
    if (verb->asString() == "stats") {
        auto &cache = experiments::RunCache::instance();
        resp.set("ok", true);
        resp.set("simulations", cache.simulations());
        resp.set("hits", cache.hits());
        resp.set("disk_hits", cache.diskHits());
        resp.set("disk_root", cache.diskRoot());
        return resp;
    }
    if (verb->asString() == "shutdown") {
        shutdown = true;
        resp.set("ok", true);
        resp.set("stopping", true);
        return resp;
    }
    if (verb->asString() != "run") {
        return makeErrorResponse("unknown verb '" + verb->asString() +
                                 "'");
    }

    const json::Value *specNode = req.find("spec");
    if (!specNode)
        return makeErrorResponse("run request carries no spec");
    std::string err;
    api::ExperimentSpec spec = api::ExperimentSpec::fromJson(*specNode,
                                                            &err);
    if (!err.empty())
        return makeErrorResponse(err);

    ExecuteResult result;
    err = executeSpec(std::move(spec), jobs, result);
    if (!err.empty())
        return makeErrorResponse(err);

    resp.set("ok", true);
    resp.set("kind", result.kind);
    resp.set("simulated", result.simulated);
    resp.set("disk_hits", result.diskHits);
    resp.set("mem_hits", result.memHits);
    resp.set("report", std::move(result.report));
    return resp;
}

} // namespace

ExperimentServer::ExperimentServer(ServerConfig cfg) : cfg_(std::move(cfg))
{
}

ExperimentServer::~ExperimentServer()
{
    requestStop();
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &t : workers_) {
            if (t.joinable())
                t.join();
        }
        workers_.clear();
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(cfg_.socketPath.c_str());
    }
}

std::string
ExperimentServer::start()
{
    std::string err;
    listenFd_ = listenUnix(cfg_.socketPath, &err);
    return listenFd_ >= 0 ? "" : err;
}

void
ExperimentServer::run()
{
    if (listenFd_ < 0)
        panic("ExperimentServer::run() before a successful start()");
    while (!stop_.load()) {
        // A short poll timeout bounds how long a stop request (signal
        // or shutdown verb) waits for the accept loop to notice.
        struct pollfd pfd = {listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll failed; stopping");
            break;
        }
        if (ready == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lock(mu_);
        workers_.emplace_back(
            [this, fd]() { serveClient(fd); });
    }
    // Drain: refuse new connections immediately (close and unlink the
    // listening socket), then let every connection thread finish its
    // in-flight request — serveClient() notices stop_ between requests
    // via its read timeout, so the join below is bounded by one job.
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(cfg_.socketPath.c_str());
        listenFd_ = -1;
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
}

void
ExperimentServer::serveClient(int fd)
{
    LineReader reader(fd);
    std::string line;
    std::string err;
    for (;;) {
        // A bounded read keeps an idle (or wedged) client from pinning
        // the daemon open across a stop request: a request already
        // being executed always finishes and gets its response, but
        // between requests the stop flag wins.
        const int got = reader.readLineTimeout(line, 200, &err);
        if (got == kReadTimedOut) {
            if (stop_.load())
                break;
            continue;
        }
        if (got <= 0)
            break;  // EOF or a framing error: the client is gone
        json::Value req = json::parse(line, &err);
        json::Value resp;
        bool shutdown = false;
        if (!err.empty())
            resp = makeErrorResponse("request parse error: " + err);
        else
            resp = handleRequest(req, cfg_.jobs, shutdown);
        if (!sendValue(fd, resp, &err))
            break;
        if (shutdown) {
            requestStop();
            break;
        }
    }
    ::close(fd);
}

} // namespace jetty::service
