/**
 * @file
 * Binary trace file format: lets users capture a synthetic (or external)
 * reference stream once and replay it, mirroring the paper's WWT2
 * trace-collection methodology.
 *
 * Format: 16-byte header ("JTTRACE1", u32 record count, u32 reserved)
 * followed by records of {u8 type, 7-byte little-endian address}.
 */

#ifndef JETTY_TRACE_TRACE_FILE_HH
#define JETTY_TRACE_TRACE_FILE_HH

#include <string>
#include <vector>

#include "trace/trace_source.hh"

namespace jetty::trace
{

/** Write @p records to @p path. Calls fatal() on I/O errors. */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRecord> &records);

/** Read a trace file written by writeTraceFile(). */
std::vector<TraceRecord> readTraceFile(const std::string &path);

/** Drain up to @p limit records from @p src into a vector (0 = all). */
std::vector<TraceRecord> collect(TraceSource &src, std::uint64_t limit = 0);

} // namespace jetty::trace

#endif // JETTY_TRACE_TRACE_FILE_HH
