/**
 * @file
 * Tests for the distributed sweep subsystem (src/dist/): the versioned
 * shard envelope round-trips and rejects what it does not speak with
 * dotted-path diagnostics, the MergeTable handles the edge cases
 * (empty shard, stolen-then-completed duplicate, unknown key), real
 * coordinator campaigns over thread workers produce Reports
 * byte-identical to the single-process sweep at any worker count —
 * including under an injected mid-shard worker death — and the resume
 * ledger replays finished cells losslessly.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/experiment_spec.hh"
#include "dist/coordinator.hh"
#include "dist/ledger.hh"
#include "dist/shard.hh"
#include "dist/worker.hh"
#include "experiments/experiments.hh"
#include "experiments/run_result_json.hh"
#include "service/executor.hh"
#include "service/protocol.hh"
#include "util/json.hh"

using namespace jetty;

namespace
{

/** Coordinator/worker pipes: a peer hanging up mid-write must surface
 *  as EPIPE, not kill the test binary (service/protocol.hh contract for
 *  non-socket transports). */
void
ignoreSigpipe()
{
    std::signal(SIGPIPE, SIG_IGN);
}

/** A four-cell sweep (2 apps x 2 bus counts), cheap enough to simulate
 *  in a unit test, resolved exactly as `jetty_cli sweep` would. */
api::ExperimentSpec
tinySweepSpec()
{
    std::string err;
    api::ExperimentSpec spec = api::ExperimentSpec::parse(
        R"({"jetty_spec": 1,
            "machine": {"procs": 4, "buses": 1, "subblocked": true},
            "workload": {"apps": ["lu", "ff"], "scale": 0.01},
            "sweep": {"buses": [1, 2]},
            "filters": ["EJ-16x2"]})",
        &err);
    EXPECT_EQ(err, "");
    EXPECT_EQ(service::resolveSpec(spec, "sweep"), "");
    return spec;
}

/** One in-process worker: a thread running the real runWorkerLoop over
 *  a pipe pair, indistinguishable (to the coordinator) from a forked
 *  `jetty_cli worker`. */
struct ThreadWorker
{
    dist::WorkerEndpoint endpoint;  //!< the coordinator's side
    std::thread thread;
    int loopResult = -1;
};

void
startThreadWorker(ThreadWorker &tw, const dist::WorkerOptions &wopts)
{
    int req[2];
    int resp[2];
    ASSERT_EQ(::pipe(req), 0);
    ASSERT_EQ(::pipe(resp), 0);
    tw.endpoint.readFd = resp[0];
    tw.endpoint.writeFd = req[1];
    tw.endpoint.pid = -1;  // a thread, nothing to reap
    tw.thread = std::thread([&tw, in = req[0], out = resp[1], wopts]() {
        tw.loopResult = dist::runWorkerLoop(in, out, wopts);
        ::close(in);
        ::close(out);
    });
}

/** A fabricated ok response carrying one cell (for merge-table tests;
 *  the result payload only needs to be distinguishable, not real). */
dist::ShardResponse
fakeResponse(std::uint64_t shardId, const std::string &key,
             double simSeconds)
{
    dist::ShardResponse resp;
    resp.shardId = shardId;
    resp.attempt = 1;
    resp.ok = true;
    resp.simulated = 1;
    dist::ShardCell cell;
    cell.key = key;
    cell.result.appName = "fake";
    cell.result.abbrev = "fk";
    cell.result.simSeconds = simSeconds;
    resp.results.push_back(cell);
    return resp;
}

} // namespace

TEST(ShardEnvelope, RequestRoundTrips)
{
    dist::ShardRequest req;
    req.shardId = 7;
    req.attempt = 2;
    req.cacheKey = "{\"machine\":{}}";
    req.spec = json::Value::object();
    req.spec.set("jetty_spec", 1);

    const json::Value wire = shardRequestToJson(req);
    EXPECT_EQ(dist::shardMessageType(wire), "shard_request");

    dist::ShardRequest back;
    ASSERT_EQ(dist::shardRequestFromJson(wire, back), "");
    EXPECT_EQ(back.shardId, 7u);
    EXPECT_EQ(back.attempt, 2u);
    EXPECT_EQ(back.cacheKey, req.cacheKey);
    EXPECT_EQ(back.spec.dumpCanonical(), req.spec.dumpCanonical());
}

TEST(ShardEnvelope, ResponseRoundTripsThroughRealRunResult)
{
    experiments::RunCache::instance().clear();
    service::ExecuteResult direct;
    ASSERT_EQ(service::executeResolved(tinySweepSpec(), "sweep", 1, direct),
              "");
    ASSERT_FALSE(direct.runs.empty());

    dist::ShardResponse resp;
    resp.shardId = 3;
    resp.attempt = 1;
    resp.ok = true;
    resp.simulated = 1;
    resp.diskHits = 2;
    resp.memHits = 4;
    resp.wallSeconds = 0.25;
    dist::ShardCell cell;
    cell.key = dist::cellCacheKey(direct.requests[0]);
    cell.result = direct.runs[0];
    resp.results.push_back(cell);

    const json::Value wire = shardResponseToJson(resp);
    EXPECT_EQ(dist::shardMessageType(wire), "shard_response");

    dist::ShardResponse back;
    ASSERT_EQ(dist::shardResponseFromJson(wire, back), "");
    EXPECT_EQ(back.shardId, 3u);
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.diskHits, 2u);
    EXPECT_EQ(back.memHits, 4u);
    EXPECT_DOUBLE_EQ(back.wallSeconds, 0.25);
    ASSERT_EQ(back.results.size(), 1u);
    EXPECT_EQ(back.results[0].key, cell.key);
    // Lossless through the wire: the round-tripped run result emits the
    // same bytes (the byte-identity contract rides on this).
    EXPECT_EQ(experiments::runResultToJson(back.results[0].result)
                  .dumpCanonical(),
              experiments::runResultToJson(cell.result).dumpCanonical());
    experiments::RunCache::instance().clear();
}

TEST(ShardEnvelope, VersionMismatchIsDottedPathError)
{
    dist::ShardResponse resp;
    resp.ok = true;
    json::Value wire = shardResponseToJson(resp);
    wire.set("jetty_shard", 2);

    dist::ShardResponse back;
    const std::string err = dist::shardResponseFromJson(wire, back);
    EXPECT_NE(err.find("shard_response.jetty_shard"), std::string::npos)
        << err;
    EXPECT_NE(err.find("version 2 not supported"), std::string::npos)
        << err;

    json::Value reqWire =
        dist::shardRequestToJson(dist::ShardRequest());
    reqWire.set("jetty_shard", 99);
    dist::ShardRequest reqBack;
    const std::string rerr = dist::shardRequestFromJson(reqWire, reqBack);
    EXPECT_NE(rerr.find("shard_request.jetty_shard"), std::string::npos)
        << rerr;
}

TEST(ShardEnvelope, MalformedFieldNamesItsDottedPath)
{
    json::Value wire = shardResponseToJson(dist::ShardResponse());
    wire.set("wallSeconds", "not-a-number");
    dist::ShardResponse back;
    const std::string err = dist::shardResponseFromJson(wire, back);
    EXPECT_NE(err.find("shard_response.wallSeconds"), std::string::npos)
        << err;
}

TEST(MergeTable, EmptyResponseIsLegalNoOp)
{
    dist::MergeTable table({"k0", "k1"});
    dist::ShardResponse empty;
    empty.ok = true;  // no results — a resumed-elsewhere or vacuous shard
    std::uint64_t dups = 0;
    EXPECT_EQ(table.apply(empty, &dups), "");
    EXPECT_EQ(dups, 0u);
    EXPECT_FALSE(table.complete());
    EXPECT_EQ(table.missingKeys().size(), 2u);
}

TEST(MergeTable, DuplicateCellIsFirstWriterWins)
{
    dist::MergeTable table({"k0"});
    std::uint64_t dups = 0;
    ASSERT_EQ(table.apply(fakeResponse(0, "k0", 1.0), &dups), "");
    // The stolen-then-completed straggler answers the same cell later.
    ASSERT_EQ(table.apply(fakeResponse(0, "k0", 99.0), &dups), "");
    EXPECT_EQ(dups, 1u);
    ASSERT_TRUE(table.complete());
    const auto runs = table.takeRuns();
    ASSERT_EQ(runs.size(), 1u);
    // The first writer's payload survived, the duplicate was discarded.
    EXPECT_DOUBLE_EQ(runs[0].simSeconds, 1.0);
}

TEST(MergeTable, UnknownKeyIsDottedPathError)
{
    dist::MergeTable table({"k0"});
    std::uint64_t dups = 0;
    const std::string err =
        table.apply(fakeResponse(0, "intruder", 1.0), &dups);
    EXPECT_NE(err.find("shard_response.results[0].key"), std::string::npos)
        << err;
    EXPECT_NE(err.find("intruder"), std::string::npos) << err;
}

TEST(ShardExecution, WorkerRefusesCacheKeyDisagreement)
{
    const api::ExperimentSpec spec = tinySweepSpec();
    const auto filters = service::canonicalFilterNames(spec);
    const auto requests = spec.expand();
    ASSERT_FALSE(requests.empty());

    dist::ShardRequest req;
    req.shardId = 0;
    req.attempt = 1;
    req.cacheKey = "not-the-canonical-key";
    req.spec = dist::shardSpec(spec, filters, requests[0]).toJson();

    const dist::ShardResponse resp = dist::executeShard(req, 1);
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("cross-process determinism"),
              std::string::npos)
        << resp.error;
}

TEST(DistCampaign, ReportIsByteIdenticalAtAnyWorkerCount)
{
    ignoreSigpipe();
    const api::ExperimentSpec spec = tinySweepSpec();

    for (const unsigned workerCount : {2u, 3u}) {
        // Cold cache: the workers do the actual simulating.
        experiments::RunCache::instance().clear();

        std::vector<ThreadWorker> pool(workerCount);
        dist::CoordinatorConfig cfg;
        cfg.stealAfterSeconds = 0;  // nothing should straggle here
        dist::Coordinator coordinator(cfg);
        for (auto &tw : pool) {
            startThreadWorker(tw, dist::WorkerOptions());
            coordinator.attachWorker(tw.endpoint);
        }

        dist::CampaignResult result;
        ASSERT_EQ(coordinator.run(spec, result), "");
        for (auto &tw : pool) {
            tw.thread.join();
            EXPECT_EQ(tw.loopResult, 0);  // clean EOF exit
        }

        EXPECT_EQ(result.shards, 4u);
        // At least one answer per cell. (Thread workers share ONE
        // process-global RunCache, so concurrent per-shard counter
        // deltas can overlap and overcount — in the real deployment
        // each worker process owns its counters.)
        EXPECT_GE(result.simulated + result.memHits + result.diskHits, 4u);

        // The single-process sweep, answered from the same in-process
        // cache the workers filled: value identity across the process
        // boundary makes the Reports byte-identical.
        service::ExecuteResult direct;
        ASSERT_EQ(service::executeResolved(spec, "sweep", 1, direct), "");
        EXPECT_EQ(direct.simulated, 0u)
            << "the distributed campaign should have populated the cache";
        EXPECT_EQ(result.report.dump(), direct.report.dump())
            << "workers=" << workerCount;
    }
    experiments::RunCache::instance().clear();
}

TEST(DistCampaign, MidShardWorkerDeathRetriesAndStaysByteIdentical)
{
    ignoreSigpipe();
    const api::ExperimentSpec spec = tinySweepSpec();
    experiments::RunCache::instance().clear();

    // Worker 0 dies mid-shard on its first request: shard_started goes
    // out, the response never comes, both pipe ends drop.
    dist::WorkerOptions dying;
    dying.faultHook = [](std::uint64_t received) { return received >= 1; };

    std::vector<ThreadWorker> pool(2);
    dist::CoordinatorConfig cfg;
    cfg.maxRetries = 2;
    cfg.stealAfterSeconds = 0;
    dist::Coordinator coordinator(cfg);
    startThreadWorker(pool[0], dying);
    startThreadWorker(pool[1], dist::WorkerOptions());
    coordinator.attachWorker(pool[0].endpoint);
    coordinator.attachWorker(pool[1].endpoint);

    dist::CampaignResult result;
    ASSERT_EQ(coordinator.run(spec, result), "");
    pool[0].thread.join();
    pool[1].thread.join();
    EXPECT_EQ(pool[0].loopResult, 2);  // the fault hook abandoned it

    EXPECT_GE(result.retried, 1u);
    bool sawDeath = false;
    bool sawRetry = false;
    for (const auto &ev : result.events) {
        sawDeath = sawDeath || ev.type == "worker_died";
        sawRetry = sawRetry || ev.type == "retried";
    }
    EXPECT_TRUE(sawDeath);
    EXPECT_TRUE(sawRetry);

    service::ExecuteResult direct;
    ASSERT_EQ(service::executeResolved(spec, "sweep", 1, direct), "");
    EXPECT_EQ(result.report.dump(), direct.report.dump());
    experiments::RunCache::instance().clear();
}

TEST(DistCampaign, LedgerResumeReplaysEveryCellLosslessly)
{
    ignoreSigpipe();
    const api::ExperimentSpec spec = tinySweepSpec();
    const std::string ledgerDir =
        ::testing::TempDir() + "jetty_dist_ledger_test";
    std::filesystem::remove_all(ledgerDir);
    experiments::RunCache::instance().clear();

    // Campaign 1: simulate everything, journaling each completion.
    dist::CampaignResult first;
    {
        std::vector<ThreadWorker> pool(2);
        dist::CoordinatorConfig cfg;
        cfg.ledgerDir = ledgerDir;
        cfg.stealAfterSeconds = 0;
        dist::Coordinator coordinator(cfg);
        for (auto &tw : pool) {
            startThreadWorker(tw, dist::WorkerOptions());
            coordinator.attachWorker(tw.endpoint);
        }
        ASSERT_EQ(coordinator.run(spec, first), "");
        for (auto &tw : pool)
            tw.thread.join();
    }
    EXPECT_EQ(first.resumed, 0u);

    // Campaign 2: cache wiped (a fresh process would start cold), every
    // cell answered by the ledger — nothing dispatched, nothing
    // simulated, and the merged Report's bytes survive the round trip
    // through the journal.
    experiments::RunCache::instance().clear();
    dist::CampaignResult second;
    {
        dist::CoordinatorConfig cfg;
        cfg.ledgerDir = ledgerDir;
        dist::Coordinator coordinator(cfg);
        ASSERT_EQ(coordinator.run(spec, second), "");
    }
    EXPECT_EQ(second.resumed, 4u);
    EXPECT_EQ(second.simulated, 0u);
    EXPECT_EQ(second.report.dump(), first.report.dump());

    std::filesystem::remove_all(ledgerDir);
    experiments::RunCache::instance().clear();
}

TEST(DistCampaign, StolenShardDuplicateIsLoggedAndDiscarded)
{
    ignoreSigpipe();
    const api::ExperimentSpec spec = tinySweepSpec();

    // Real cells to script with: simulate the sweep once directly.
    experiments::RunCache::instance().clear();
    service::ExecuteResult direct;
    ASSERT_EQ(service::executeResolved(spec, "sweep", 1, direct), "");
    ASSERT_EQ(direct.runs.size(), 4u);
    std::vector<std::string> keys;
    for (const auto &req : direct.requests)
        keys.push_back(dist::cellCacheKey(req));

    // Three scripted fake workers on raw pipe pairs. A holds its shard
    // hostage, B answers then holds its second shard, C answers then
    // idles — forcing the coordinator to steal A's shard for C. Then
    // both A's original answer and C's stolen answer arrive: the second
    // must be logged as a duplicate and discarded.
    int req[3][2];
    int resp[3][2];
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(::pipe(req[i]), 0);
        ASSERT_EQ(::pipe(resp[i]), 0);
    }

    dist::CoordinatorConfig cfg;
    cfg.stealAfterSeconds = 0.05;
    dist::Coordinator coordinator(cfg);
    for (int i = 0; i < 3; ++i) {
        dist::WorkerEndpoint ep;
        ep.readFd = resp[i][0];
        ep.writeFd = req[i][1];
        coordinator.attachWorker(ep);
    }

    std::thread script([&]() {
        auto readRequest = [&](int w) {
            service::LineReader reader(req[w][0]);
            std::string line;
            std::string err;
            EXPECT_EQ(reader.readLine(line, &err), 1) << err;
            dist::ShardRequest r;
            EXPECT_EQ(dist::shardRequestFromJson(json::parse(line, &err),
                                                 r),
                      "");
            return r;
        };
        auto send = [&](int w, const json::Value &v) {
            std::string err;
            EXPECT_TRUE(service::sendValue(resp[w][1], v, &err)) << err;
        };
        auto answer = [&](const dist::ShardRequest &r) {
            dist::ShardResponse a;
            a.shardId = r.shardId;
            a.attempt = r.attempt;
            a.ok = true;
            a.memHits = 1;
            dist::ShardCell cell;
            cell.key = r.cacheKey;
            cell.result = direct.runs[r.shardId];
            a.results.push_back(cell);
            return shardResponseToJson(a);
        };

        // Dispatch order is deterministic: A<-0, B<-1, C<-2, queue=[3].
        const dist::ShardRequest ra = readRequest(0);
        EXPECT_EQ(ra.shardId, 0u);
        send(0, dist::shardStartedToJson(ra.shardId, ra.attempt));

        const dist::ShardRequest rb = readRequest(1);
        EXPECT_EQ(rb.shardId, 1u);
        send(1, dist::shardStartedToJson(rb.shardId, rb.attempt));
        send(1, answer(rb));

        const dist::ShardRequest rc = readRequest(2);
        EXPECT_EQ(rc.shardId, 2u);
        send(2, dist::shardStartedToJson(rc.shardId, rc.attempt));
        send(2, answer(rc));

        // B drains the queue (shard 3) and holds it.
        const dist::ShardRequest rb2 = readRequest(1);
        EXPECT_EQ(rb2.shardId, 3u);
        send(1, dist::shardStartedToJson(rb2.shardId, rb2.attempt));

        // C idles with an empty queue; past stealAfterSeconds the
        // coordinator re-assigns the oldest in-flight shard — A's.
        const dist::ShardRequest stolen = readRequest(2);
        EXPECT_EQ(stolen.shardId, 0u);
        EXPECT_EQ(stolen.attempt, 2u);

        // Straggler A answers first (first writer), then C's stolen
        // copy (the duplicate), then B releases shard 3 so the campaign
        // can only finish after the duplicate has been consumed.
        send(0, answer(ra));
        send(2, answer(stolen));
        send(1, answer(rb2));
    });

    dist::CampaignResult result;
    ASSERT_EQ(coordinator.run(spec, result), "");
    script.join();
    for (int i = 0; i < 3; ++i) {
        ::close(req[i][0]);
        ::close(resp[i][1]);
    }

    EXPECT_GE(result.stolen, 1u);
    EXPECT_EQ(result.duplicates, 1u);
    bool sawDuplicate = false;
    for (const auto &ev : result.events) {
        if (ev.type == "duplicate") {
            sawDuplicate = true;
            EXPECT_EQ(ev.shardId, 0u);
            EXPECT_NE(ev.detail.find("first-writer-wins"),
                      std::string::npos);
        }
    }
    EXPECT_TRUE(sawDuplicate);
    EXPECT_EQ(result.report.dump(), direct.report.dump());
    experiments::RunCache::instance().clear();
}
