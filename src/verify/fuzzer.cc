#include "verify/fuzzer.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "api/experiment_spec.hh"
#include "trace/trace_file.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "verify/golden_smp.hh"

namespace jetty::verify
{

using trace::TraceRecord;

const char *
patternName(Pattern p)
{
    switch (p) {
      case Pattern::Uniform: return "uniform";
      case Pattern::FalseSharing: return "false-sharing";
      case Pattern::Migratory: return "migratory";
      case Pattern::ProducerConsumer: return "producer-consumer";
      case Pattern::EvictionStorm: return "eviction-storm";
      case Pattern::HotUnit: return "hot-unit";
      case Pattern::PrivateStream: return "private-stream";
    }
    return "?";
}

sim::SmpConfig
FuzzConfig::defaultSystem()
{
    sim::SmpConfig cfg;
    cfg.nprocs = 4;
    cfg.l1.sizeBytes = 1024;
    cfg.l1.assoc = 1;
    cfg.l1.blockBytes = 32;
    cfg.l2.sizeBytes = 8192;
    cfg.l2.assoc = 1;
    cfg.l2.blockBytes = 64;
    cfg.l2.subblocks = 2;
    cfg.wbEntries = 4;
    // Every built-in family, so one campaign stresses the whole
    // no-false-negative surface at once (banks are passive observers).
    cfg.filterSpecs = {"NULL",     "EJ-16x2",  "VEJ-16x2-4",
                       "IJ-8x4x7", "RF-8x10",  "HJ(IJ-8x4x7,EJ-16x2)"};
    // The checkers report violations; the bank must not panic first.
    cfg.checkSafety = false;
    return cfg;
}

std::uint64_t
FuzzResult::records() const
{
    std::uint64_t n = 0;
    for (const auto &t : traces)
        n += t.size();
    return n;
}

TraceFuzzer::TraceFuzzer(const FuzzConfig &cfg) : cfg_(cfg)
{
    if (cfg_.system.nprocs < 2)
        fatal("TraceFuzzer: need at least two processors");
    if (cfg_.refsPerProc == 0)
        fatal("TraceFuzzer: refsPerProc must be >= 1");
}

TraceSet
TraceFuzzer::generate(std::uint64_t roundSeed,
                      const std::array<double, kPatternCount> &weights)
{
    const unsigned nprocs = cfg_.system.nprocs;
    const mem::L2Config &l2 = cfg_.system.l2;
    const unsigned unit = l2.unitBytes();
    const unsigned block = l2.blockBytes;
    const unsigned subblocks = l2.subblocks;
    const std::uint64_t sets = l2.sets();

    // Address regions. The pool is ~3x the L2 so every geometry thrashes;
    // regions are disjoint so patterns collide only through the caches.
    const Addr pool_base = 0x100000;
    const std::uint64_t pool_blocks = (l2.sizeBytes / block) * 3;
    const Addr mig_base = pool_base + pool_blocks * block + block;
    const unsigned mig_objects = 8;
    const Addr pc_base = mig_base + mig_objects * block + block;
    const std::uint64_t pc_units = 8;  // ring buffer units per proc
    const Addr storm_base =
        pc_base + (nprocs + 1) * pc_units * unit + block;
    // The storm draws this many same-set tag strides; the next region
    // starts past all of them so the documented disjointness holds for
    // every associativity.
    const std::uint64_t storm_strides = 4 * l2.assoc + 4;
    const Addr priv_base =
        storm_base + storm_strides * sets * block + block;
    const std::uint64_t priv_span = 6 * l2.sizeBytes;  // defeats the L2

    Rng rng(roundSeed);
    TraceSet traces(nprocs);
    for (auto &t : traces)
        t.reserve(cfg_.refsPerProc);

    double total_weight = 0;
    for (const double w : weights)
        total_weight += w;
    if (total_weight <= 0)
        fatal("TraceFuzzer: pattern weights sum to zero");

    std::vector<std::uint64_t> priv_cursor(nprocs, 0);
    const std::uint64_t seg_len = 64;

    while (traces[0].size() < cfg_.refsPerProc) {
        const std::uint64_t want = std::min<std::uint64_t>(
            seg_len, cfg_.refsPerProc - traces[0].size());

        // Weighted pattern draw for this segment.
        double u = rng.uniform() * total_weight;
        unsigned pick = kPatternCount - 1;
        for (unsigned i = 0; i < kPatternCount; ++i) {
            if (u < weights[i]) {
                pick = i;
                break;
            }
            u -= weights[i];
        }
        const Pattern pattern = static_cast<Pattern>(pick);

        // Per-segment anchors drawn once so every processor of the
        // segment contends on the same structures.
        const std::uint64_t anchor_set = rng.below(sets);
        const Addr hot_unit =
            pool_base + rng.below(pool_blocks) * block +
            rng.below(subblocks) * unit;
        Addr fs_blocks[4];
        for (auto &b : fs_blocks)
            b = pool_base + rng.below(pool_blocks) * block;

        for (std::uint64_t i = 0; i < want; ++i) {
            for (unsigned p = 0; p < nprocs; ++p) {
                TraceRecord rec;
                switch (pattern) {
                  case Pattern::Uniform:
                    rec.addr = pool_base +
                               rng.below(pool_blocks) * block +
                               rng.below(subblocks) * unit +
                               rng.below(unit);
                    rec.type = rng.chance(0.35) ? AccessType::Write
                                                : AccessType::Read;
                    break;

                  case Pattern::FalseSharing:
                    // Distinct units of one block: sibling-subblock
                    // snoops, tag hits with unit misses.
                    rec.addr = fs_blocks[rng.below(4)] +
                               (p % subblocks) * unit;
                    rec.type = rng.chance(0.5) ? AccessType::Write
                                               : AccessType::Read;
                    break;

                  case Pattern::Migratory: {
                    // Read-modify-write visits whose owner rotates.
                    const std::uint64_t step = traces[p].size() / 2;
                    const std::uint64_t obj = (step + p) % mig_objects;
                    rec.addr = mig_base + obj * block;
                    rec.type = traces[p].size() % 2 == 0
                                   ? AccessType::Read
                                   : AccessType::Write;
                    break;
                  }

                  case Pattern::ProducerConsumer: {
                    const std::uint64_t pos = traces[p].size() % pc_units;
                    if (i < want / 2) {
                        rec.type = AccessType::Write;
                        rec.addr = pc_base + p * pc_units * unit +
                                   pos * unit;
                    } else {
                        rec.type = AccessType::Read;
                        rec.addr = pc_base +
                                   ((p + 1) % nprocs) * pc_units * unit +
                                   pos * unit;
                    }
                    break;
                  }

                  case Pattern::EvictionStorm:
                    // Many tags of one set: block evictions, inclusion
                    // purges, dirty victims, forced WB drains.
                    rec.addr = storm_base +
                               rng.below(storm_strides) * (sets * block) +
                               anchor_set * block +
                               rng.below(subblocks) * unit;
                    rec.type = rng.chance(0.6) ? AccessType::Write
                                               : AccessType::Read;
                    break;

                  case Pattern::HotUnit:
                    rec.addr = hot_unit + rng.below(unit);
                    rec.type = rng.chance(0.4) ? AccessType::Write
                                               : AccessType::Read;
                    break;

                  case Pattern::PrivateStream:
                    rec.addr = priv_base + p * (priv_span + block) +
                               (priv_cursor[p] % priv_span);
                    priv_cursor[p] += unit;
                    rec.type = rng.chance(0.25) ? AccessType::Write
                                                : AccessType::Read;
                    break;
                }
                traces[p].push_back(rec);
            }
        }
    }
    return traces;
}

namespace
{

/** Digits-only 64-bit parse: the sidecar's l1/l2 sizeBytes fields are
 *  written as full u64 values, which the 32-bit parseUnsigned would
 *  reject — and a rejected sidecar replays on the wrong machine. */
bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s[0] < '0' || s[0] > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || errno == ERANGE)
        return false;
    out = v;
    return true;
}

std::vector<trace::TraceSourcePtr>
sourcesFor(const TraceSet &traces)
{
    std::vector<trace::TraceSourcePtr> sources;
    sources.reserve(traces.size());
    for (const auto &t : traces)
        sources.push_back(std::make_unique<trace::VectorTraceSource>(t));
    return sources;
}

} // namespace

std::string
TraceFuzzer::checkOnce(const sim::SmpConfig &system, const TraceSet &traces,
                       std::uint64_t auditEvery, bool compareGolden,
                       bool checkBatched, CoverageMap *cov)
{
    sim::SmpConfig cfg = system;
    cfg.checkSafety = false;  // the checkers report; the bank must not exit

    // Pass 1: step-driven with every online checker attached.
    sim::SmpSystem checked(cfg);
    CheckerSuite suite(checked, auditEvery);
    checked.attachSources(sourcesFor(traces));
    checked.run();
    suite.audit();
    if (cov)
        cov->merge(suite.coverage());
    if (!suite.log().clean())
        return suite.log().summary();

    if (!compareGolden && !checkBatched)
        return "";

    // Pass 2: the golden model replays the identical streams.
    GoldenSmp golden(cfg);
    golden.attachSources(sourcesFor(traces));
    golden.run();
    const StateSnapshot gsnap = golden.snapshot();

    // The golden machine interleaves the snoop buses with its own
    // restatement of the routing; per-bus transaction counts must agree
    // with what the real interconnect routed, for any bus count.
    const auto compare_buses =
        [&golden](const sim::SmpSystem &sys,
                  const char *which) -> std::string {
        const auto &gbus = golden.busTransactions();
        const auto &rbus = sys.stats().perBus;
        if (gbus.size() != rbus.size()) {
            return std::string("golden-bus-routing: ") + which + " ran " +
                   std::to_string(rbus.size()) + " buses, golden " +
                   std::to_string(gbus.size());
        }
        for (std::size_t b = 0; b < gbus.size(); ++b) {
            if (gbus[b] != rbus[b].transactions) {
                return std::string("golden-bus-routing: ") + which +
                       " bus " + std::to_string(b) + " carried " +
                       std::to_string(rbus[b].transactions) +
                       " transactions, golden " +
                       std::to_string(gbus[b]);
            }
        }
        return "";
    };

    if (compareGolden) {
        const std::string diff = diffSnapshots(gsnap, snapshotOf(checked));
        if (!diff.empty())
            return "golden-equivalence: " + diff;
        const std::string bus_diff = compare_buses(checked, "step path");
        if (!bus_diff.empty())
            return bus_diff;
    }

    // Pass 3: the batched hot path with hooks unset must land on the
    // same final state.
    if (checkBatched) {
        sim::SmpSystem batched(cfg);
        batched.attachSources(sourcesFor(traces));
        batched.run();
        const std::string diff = diffSnapshots(gsnap, snapshotOf(batched));
        if (!diff.empty())
            return "batched-equivalence: " + diff;
        const std::string bus_diff = compare_buses(batched, "batched path");
        if (!bus_diff.empty())
            return bus_diff;
    }
    return "";
}

TraceSet
TraceFuzzer::shrink(const TraceSet &traces, const std::string &invariant,
                    const sim::SmpConfig &system) const
{
    // Flatten to (proc, record) items; rebuilding preserves each
    // processor's record order, which is all the round-robin delivery
    // depends on.
    struct Item
    {
        unsigned proc;
        TraceRecord rec;
    };
    std::vector<Item> items;
    for (unsigned p = 0; p < traces.size(); ++p) {
        for (const auto &rec : traces[p])
            items.push_back({p, rec});
    }

    const unsigned nprocs = cfg_.system.nprocs;
    const auto rebuild = [&](const std::vector<Item> &list) {
        TraceSet out(nprocs);
        for (const auto &it : list)
            out[it.proc].push_back(it.rec);
        return out;
    };

    std::uint64_t runs = 0;
    const auto still_fails = [&](const std::vector<Item> &list) {
        if (runs >= cfg_.maxShrinkRuns)
            return false;
        ++runs;
        const std::string failure =
            checkOnce(system, rebuild(list), cfg_.auditEvery,
                      cfg_.compareGolden, cfg_.checkBatched, nullptr);
        // Only reductions reproducing the *original* invariant count;
        // drifting onto a different violation would leave the repro
        // header documenting a failure the trace does not show.
        return failure.compare(0, invariant.size(), invariant) == 0 &&
               (failure.size() == invariant.size() ||
                failure[invariant.size()] == ':');
    };

    // ddmin (complement-removal form): drop ever-smaller chunks while
    // the failure reproduces.
    std::size_t n = 2;
    while (items.size() >= 2 && runs < cfg_.maxShrinkRuns) {
        const std::size_t chunk = (items.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t start = 0; start < items.size(); start += chunk) {
            std::vector<Item> candidate;
            candidate.reserve(items.size());
            for (std::size_t i = 0; i < items.size(); ++i) {
                if (i < start || i >= start + chunk)
                    candidate.push_back(items[i]);
            }
            if (candidate.empty())
                continue;
            if (still_fails(candidate)) {
                items = std::move(candidate);
                n = std::max<std::size_t>(2, n - 1);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= items.size())
                break;  // 1-minimal (within the run budget)
            n = std::min(items.size(), n * 2);
        }
    }
    return rebuild(items);
}

FuzzResult
TraceFuzzer::run()
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();

    FuzzResult result;
    result.seed = cfg_.seed;

    // Pattern weights, steered by coverage stall: keep a mix while it
    // uncovers new cells, redraw it once it runs dry.
    std::array<double, kPatternCount> weights;
    weights.fill(1.0);
    Rng meta(cfg_.seed ^ 0xc0ffee);

    for (unsigned round = 0; round < cfg_.rounds; ++round) {
        if (cfg_.timeBudgetSeconds > 0 &&
            std::chrono::duration<double>(Clock::now() - start).count() >=
                cfg_.timeBudgetSeconds) {
            break;
        }

        const std::uint64_t round_seed =
            cfg_.seed + (round + 1) * kSeedMix;
        const TraceSet traces = generate(round_seed, weights);

        // Per-round split-bus draw: cycle the interconnect through one,
        // two and four buses so routing, per-bus replay order and the
        // bus-count differential all get continuous coverage. Derived
        // from the round seed alone, so (seed, round) still pins the
        // exact machine; the failing round's count rides the sidecar.
        sim::SmpConfig round_system = cfg_.system;
        if (cfg_.randomizeBuses)
            round_system.snoopBuses = 1u << (round_seed % 3);

        const std::size_t covered_before = result.coverage.cellsCovered();
        const std::string failure =
            checkOnce(round_system, traces, cfg_.auditEvery,
                      cfg_.compareGolden, cfg_.checkBatched,
                      &result.coverage);
        ++result.roundsRun;
        result.totalRefs += cfg_.refsPerProc * cfg_.system.nprocs;

        if (!failure.empty()) {
            result.failed = true;
            result.failingRound = round;
            result.roundSeed = round_seed;
            result.snoopBuses = round_system.snoopBuses;
            const auto colon = failure.find(':');
            result.invariant = failure.substr(0, colon);
            result.detail = colon == std::string::npos
                                ? ""
                                : trim(failure.substr(colon + 1));
            result.traces = shrink(traces, result.invariant, round_system);
            // Refresh the detail from the shrunk trace (addresses and
            // counts usually change during reduction) so the repro
            // header describes exactly what the shipped trace shows.
            const std::string final_failure =
                checkOnce(round_system, result.traces, cfg_.auditEvery,
                          cfg_.compareGolden, cfg_.checkBatched, nullptr);
            const auto final_colon = final_failure.find(':');
            if (final_colon != std::string::npos &&
                final_failure.substr(0, final_colon) == result.invariant) {
                result.detail = trim(final_failure.substr(final_colon + 1));
            }
            return result;
        }

        if (result.coverage.cellsCovered() == covered_before) {
            // The mix ran dry: explore a fresh one, occasionally spiking
            // a single pattern to dig into its corner cases.
            for (auto &w : weights)
                w = 0.25 + meta.uniform();
            if (meta.chance(0.3))
                weights[meta.below(kPatternCount)] *= 4.0;
        }
    }
    return result;
}

api::ExperimentSpec
specOfFuzz(const FuzzConfig &cfg, unsigned snoopBuses)
{
    api::ExperimentSpec spec;
    sim::SmpConfig system = cfg.system;
    system.snoopBuses = snoopBuses;
    spec.machine = api::MachineSpec::fromSmpConfig(system);
    spec.filters = system.filterSpecs;
    spec.hasFuzz = true;
    spec.fuzz.seed = cfg.seed;
    spec.fuzz.rounds = cfg.rounds;
    spec.fuzz.refsPerProc = cfg.refsPerProc;
    spec.fuzz.auditEvery = cfg.auditEvery;
    spec.fuzz.seconds = cfg.timeBudgetSeconds;
    spec.fuzz.randomizeBuses = cfg.randomizeBuses;
    return spec;
}

void
writeRepro(const std::string &path, const FuzzResult &result,
           const FuzzConfig &cfg)
{
    // The traces themselves, one JTTRACE2 stream section per processor —
    // replayable by anything that reads the trace format.
    trace::TraceFileWriter writer(
        path, static_cast<unsigned>(result.traces.size()));
    for (const auto &t : result.traces) {
        writer.append(t);
        writer.endStream();
    }
    writer.close();

    // The sidecar: a JSON document whose embedded ExperimentSpec pins
    // the exact machine (explicit geometry, the *failing round's* bus
    // count, filters, campaign seed and budgets) — everything a replay
    // needs — plus the failure metadata. Legacy key=value ".txt"
    // sidecars are still read by readReproConfig(), never written.
    api::ExperimentSpec spec = specOfFuzz(cfg, result.snoopBuses);
    spec.fuzz.seed = result.seed;
    spec.fuzz.randomizeBuses = false;  // the machine above is pinned

    json::Value root = json::Value::object();
    root.set("jetty_repro", std::int64_t(1));
    root.set("traces", path);
    root.set("replay", "jetty_cli fuzz --repro " + path);
    root.set("seed", result.seed);
    root.set("failing_round", result.failingRound);
    root.set("round_seed", result.roundSeed);
    root.set("invariant", result.invariant);
    root.set("detail", result.detail);
    root.set("records", result.records());
    root.set("spec", spec.toJson());
    json::writeFile(path + ".json", root);
}

TraceSet
readReproTraces(const std::string &path)
{
    const auto info = trace::readTraceFileInfo(path);
    TraceSet traces;
    traces.reserve(info.streams());
    for (std::size_t s = 0; s < info.streams(); ++s)
        traces.push_back(trace::readTraceStream(path, s));
    return traces;
}

bool
readReproConfig(const std::string &path, sim::SmpConfig &out)
{
    // Current sidecar format: "<path>.json" carrying the machine as an
    // embedded ExperimentSpec. The spec parser does the validation
    // (geometry completeness, ranges, filter grammar), so anything it
    // accepts is a fully pinned machine; anything it rejects falls
    // through to the legacy reader and, failing that, to false.
    {
        std::string err;
        const json::Value doc = json::parseFile(path + ".json", &err);
        if (err.empty()) {
            if (const json::Value *spec_node = doc.find("spec")) {
                const api::ExperimentSpec spec =
                    api::ExperimentSpec::fromJson(*spec_node, &err);
                if (err.empty() && spec.hasMachine) {
                    // A spec with a machine section is a fully pinned
                    // machine — including a filterless one (a campaign
                    // hunting core-coherence bugs runs no filters, and
                    // its repro must not fall back to the defaults).
                    // One *without* a machine section is incomplete,
                    // and the all-or-nothing rule applies: restoring a
                    // hybrid of sidecar and default machine is exactly
                    // the false-clean replay this reader must prevent.
                    sim::SmpConfig cfg = spec.smpConfig();
                    cfg.checkSafety = out.checkSafety;
                    out = cfg;
                    return true;
                }
            }
        }
    }

    // Legacy sidecar: "<path>.txt", one key=value per line (written by
    // pre-spec builds; kept readable so old repros still replay).
    std::FILE *f = std::fopen((path + ".txt").c_str(), "r");
    if (!f)
        return false;

    // All five configuration keys must parse or the sidecar is rejected
    // wholesale: accepting a truncated header would replay a hybrid of
    // recorded and default machine — exactly the false-clean replay this
    // mechanism exists to rule out.
    enum Key
    {
        KeyNprocs = 1 << 0,
        KeyWb = 1 << 1,
        KeyL1 = 1 << 2,
        KeyL2 = 1 << 3,
        KeyFilters = 1 << 4,
    };
    const unsigned all = KeyNprocs | KeyWb | KeyL1 | KeyL2 | KeyFilters;

    sim::SmpConfig cfg = out;
    unsigned seen = 0;
    char buf[1024];
    while (std::fgets(buf, sizeof(buf), f)) {
        const std::string line = trim(buf);
        if (line.empty() || line[0] == '#')
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        const std::string key = line.substr(0, eq);
        const std::string val = line.substr(eq + 1);

        unsigned u = 0;
        if (key == "nprocs" && parseUnsigned(val, u)) {
            cfg.nprocs = u;
            seen |= KeyNprocs;
        } else if (key == "snoop_buses" && parseUnsigned(val, u) &&
                   u >= 1) {
            // Optional (absent in pre-interconnect sidecars, which must
            // keep replaying): the bus count never changes machine
            // state, only routing attribution and filter replay order.
            cfg.snoopBuses = u;
        } else if (key == "wb_entries" && parseUnsigned(val, u)) {
            cfg.wbEntries = u;
            seen |= KeyWb;
        } else if (key == "l1") {
            const auto parts = split(val, '/');
            std::uint64_t size = 0;
            unsigned assoc = 0, block = 0;
            if (parts.size() == 3 && parseU64(parts[0], size) &&
                parseUnsigned(parts[1], assoc) &&
                parseUnsigned(parts[2], block)) {
                cfg.l1.sizeBytes = size;
                cfg.l1.assoc = assoc;
                cfg.l1.blockBytes = block;
                seen |= KeyL1;
            }
        } else if (key == "l2") {
            const auto parts = split(val, '/');
            std::uint64_t size = 0;
            unsigned assoc = 0, block = 0, sub = 0;
            if (parts.size() == 4 && parseU64(parts[0], size) &&
                parseUnsigned(parts[1], assoc) &&
                parseUnsigned(parts[2], block) &&
                parseUnsigned(parts[3], sub)) {
                cfg.l2.sizeBytes = size;
                cfg.l2.assoc = assoc;
                cfg.l2.blockBytes = block;
                cfg.l2.subblocks = sub;
                seen |= KeyL2;
            }
        } else if (key == "filters") {
            cfg.filterSpecs.clear();
            for (const auto &spec : split(val, ';')) {
                if (!trim(spec).empty())
                    cfg.filterSpecs.push_back(trim(spec));
            }
            if (!cfg.filterSpecs.empty())
                seen |= KeyFilters;
        }
    }
    std::fclose(f);
    if (seen != all)
        return false;
    out = cfg;
    return true;
}

} // namespace jetty::verify
