/**
 * @file
 * Tests for the workload substrate: determinism, layout, page
 * scrambling, the application registry, stream behaviours, and the trace
 * file format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "trace/apps.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"
#include "trace/trace_source.hh"

using namespace jetty;
using namespace jetty::trace;

namespace
{

AppProfile
tinyProfile()
{
    AppProfile p;
    p.name = "Tiny";
    p.abbrev = "ti";
    p.accessesPerProc = 5000;
    p.reuseProb = 0.5;
    p.wordBytes = 4;
    p.seed = 99;
    StreamSpec s;
    s.kind = StreamKind::Private;
    s.weight = 1.0;
    s.bytes = 64 * 1024;
    s.residentBytes = 16 * 1024;
    s.residentFraction = 0.5;
    p.streams = {s};
    return p;
}

} // namespace

TEST(Workload, DeterministicAcrossInstances)
{
    const AppProfile p = tinyProfile();
    Workload w1(p, 4), w2(p, 4);
    auto s1 = w1.makeSource(2), s2 = w2.makeSource(2);
    TraceRecord a, b;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(s1->next(a));
        ASSERT_TRUE(s2->next(b));
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.type, b.type);
    }
    EXPECT_FALSE(s1->next(a));
}

TEST(Workload, ProcessorsGetDistinctStreams)
{
    Workload w(tinyProfile(), 4);
    auto s0 = w.makeSource(0), s1 = w.makeSource(1);
    TraceRecord a, b;
    bool differs = false;
    for (int i = 0; i < 200; ++i) {
        s0->next(a);
        s1->next(b);
        differs |= a.addr != b.addr;
    }
    EXPECT_TRUE(differs);
}

TEST(Workload, AccessScaleApplies)
{
    Workload w(tinyProfile(), 2, 0.1);
    EXPECT_EQ(w.accessesPerProc(), 500u);
    auto s = w.makeSource(0);
    TraceRecord r;
    std::uint64_t n = 0;
    while (s->next(r))
        ++n;
    EXPECT_EQ(n, 500u);
}

TEST(Workload, LayoutsDoNotOverlap)
{
    AppProfile p = tinyProfile();
    StreamSpec shared;
    shared.kind = StreamKind::ReadShared;
    shared.weight = 0.5;
    shared.bytes = 32 * 1024;
    p.streams.push_back(shared);
    Workload w(p, 4);
    const auto &ls = w.layouts();
    ASSERT_EQ(ls.size(), 2u);
    EXPECT_GE(ls[1].base, ls[0].base + ls[0].totalBytes);
}

TEST(Workload, MemoryAllocatedCoversRegions)
{
    Workload w(tinyProfile(), 4);
    // One 64KB private region per processor (page aligned).
    EXPECT_GE(w.memoryAllocated(), 4u * 64u * 1024u);
}

TEST(Workload, TranslateIsInjectiveOnPages)
{
    Workload w(tinyProfile(), 4);
    std::set<Addr> frames;
    const auto &ls = w.layouts();
    const Addr base = ls[0].base;
    for (Addr page = 0; page < ls[0].totalBytes / 4096; ++page) {
        const Addr phys = w.translate(base + page * 4096);
        EXPECT_EQ(phys & 4095, base & 4095 ? 0 : (base + page * 4096) & 4095);
        EXPECT_TRUE(frames.insert(phys & ~Addr{4095}).second)
            << "two pages mapped to one frame";
    }
}

TEST(Workload, TranslatePreservesPageOffsets)
{
    Workload w(tinyProfile(), 4);
    const Addr v = w.layouts()[0].base + 0x1234;
    EXPECT_EQ(w.translate(v) & 4095, v & 4095);
    // Two addresses on one page stay on one page.
    EXPECT_EQ(w.translate(v) + 4, w.translate(v + 4));
}

TEST(Workload, TranslateIdentityOutsideRegions)
{
    Workload w(tinyProfile(), 4);
    EXPECT_EQ(w.translate(0x42), 0x42u);
}

TEST(Workload, SourcesEmitWordAlignedAddressesInRange)
{
    Workload w(tinyProfile(), 4);
    auto s = w.makeSource(0);
    TraceRecord r;
    while (s->next(r))
        EXPECT_EQ(r.addr % 4, 0u);
}

TEST(Workload, RejectsZeroProcs)
{
    EXPECT_EXIT(Workload(tinyProfile(), 0), ::testing::ExitedWithCode(1),
                "at least one");
}

TEST(Workload, RejectsEmptyProfile)
{
    AppProfile p = tinyProfile();
    p.streams.clear();
    EXPECT_EXIT(Workload(p, 4), ::testing::ExitedWithCode(1), "no streams");
}

TEST(Apps, RegistryHasTenPaperApps)
{
    const auto apps = paperApps();
    ASSERT_EQ(apps.size(), 10u);
    EXPECT_EQ(apps.front().abbrev, "ba");
    EXPECT_EQ(apps.back().abbrev, "un");
    std::set<std::string> abbrevs;
    for (const auto &a : apps) {
        EXPECT_FALSE(a.streams.empty()) << a.name;
        abbrevs.insert(a.abbrev);
    }
    EXPECT_EQ(abbrevs.size(), 10u);
}

TEST(Apps, LookupByAbbrevAndName)
{
    EXPECT_EQ(appByName("ba").name, "Barnes");
    EXPECT_EQ(appByName("RADIX").abbrev, "ra");
    EXPECT_EQ(appByName(" lu ").name, "Lu");
}

TEST(Apps, LookupUnknownFatal)
{
    EXPECT_EXIT(appByName("nope"), ::testing::ExitedWithCode(1), "unknown");
}

TEST(Apps, SpecialWorkloadsExist)
{
    EXPECT_EQ(throughputServer().streams.size(), 1u);
    EXPECT_EQ(widelyShared().streams.size(), 2u);
}

TEST(Streams, MigratoryOwnershipDisjointWithinSweep)
{
    // At any step index, the objects visited by different processors must
    // be disjoint (no two processors own one object simultaneously).
    AppProfile p = tinyProfile();
    p.reuseProb = 0.0;
    StreamSpec mig;
    mig.kind = StreamKind::Migratory;
    mig.weight = 1.0;
    mig.bytes = 8 * 1024;
    mig.objectBytes = 128;
    p.streams = {mig};
    Workload w(p, 4);

    std::vector<TraceSourcePtr> sources;
    for (unsigned q = 0; q < 4; ++q)
        sources.push_back(w.makeSource(q));

    // Lockstep: compare the object each processor touches per step.
    for (int step = 0; step < 2000; ++step) {
        std::set<Addr> objects;
        for (auto &s : sources) {
            TraceRecord r;
            ASSERT_TRUE(s->next(r));
            objects.insert(r.addr / 128);
        }
        EXPECT_EQ(objects.size(), 4u) << "step " << step;
    }
}

TEST(Streams, ProducerConsumerAlternatesPhases)
{
    AppProfile p = tinyProfile();
    p.reuseProb = 0.0;
    StreamSpec pc;
    pc.kind = StreamKind::ProducerConsumer;
    pc.weight = 1.0;
    pc.bytes = 16 * 1024;
    pc.epochLen = 64;
    p.streams = {pc};
    Workload w(p, 2);
    auto s = w.makeSource(0);

    // First epoch: all writes; second epoch: all reads.
    TraceRecord r;
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(s->next(r));
        EXPECT_EQ(r.type, AccessType::Write) << i;
    }
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(s->next(r));
        EXPECT_EQ(r.type, AccessType::Read) << i;
    }
}

TEST(Streams, ReadSharedOnlyReads)
{
    AppProfile p = tinyProfile();
    StreamSpec sh;
    sh.kind = StreamKind::ReadShared;
    sh.weight = 1.0;
    sh.bytes = 8 * 1024;
    p.streams = {sh};
    Workload w(p, 2);
    auto s = w.makeSource(1);
    TraceRecord r;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(s->next(r));
        EXPECT_EQ(r.type, AccessType::Read);
    }
}

TEST(TraceFile, RoundTrip)
{
    std::vector<TraceRecord> recs;
    recs.push_back({AccessType::Read, 0x123456789aull});
    recs.push_back({AccessType::Write, 0x20});
    recs.push_back({AccessType::Read, 0});

    const std::string path = "/tmp/jetty_test_trace.bin";
    writeTraceFile(path, recs);
    const auto back = readTraceFile(path);
    ASSERT_EQ(back.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(back[i].addr, recs[i].addr);
        EXPECT_EQ(back[i].type, recs[i].type);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, CollectAndReplay)
{
    Workload w(tinyProfile(), 2);
    auto s = w.makeSource(0);
    const auto recs = collect(*s, 100);
    EXPECT_EQ(recs.size(), 100u);

    const std::string path = "/tmp/jetty_test_trace2.bin";
    writeTraceFile(path, recs);
    VectorTraceSource replay(readTraceFile(path));
    auto fresh = w.makeSource(0);
    TraceRecord a, b;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(replay.next(a));
        ASSERT_TRUE(fresh->next(b));
        EXPECT_EQ(a.addr, b.addr);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsMissingFile)
{
    EXPECT_EXIT(readTraceFile("/tmp/definitely_missing_jetty_trace.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}
