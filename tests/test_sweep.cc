/**
 * @file
 * Tests for the parallel sweep engine and the layers on top of it: the
 * jobs=1 vs jobs=N determinism guarantee, the TraceSource clone()/reset()
 * contract, the keyed run cache (identical pairs simulate once per
 * process), and the AppRunResult sizing fix for 8-way variants.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>

#include <cmath>
#include <cstdio>

#include "experiments/experiments.hh"
#include "sim/sweep.hh"
#include "trace/apps.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

using namespace jetty;
using experiments::RunCache;
using experiments::RunRequest;
using experiments::SystemVariant;

namespace
{

/** Bit-exact comparison of two filter-coverage stats blocks. */
void
expectSameStats(const filter::FilterStats &a, const filter::FilterStats &b)
{
    EXPECT_EQ(a.probes, b.probes);
    EXPECT_EQ(a.filtered, b.filtered);
    EXPECT_EQ(a.wouldMiss, b.wouldMiss);
    EXPECT_EQ(a.filteredWouldMiss, b.filteredWouldMiss);
    EXPECT_EQ(a.snoopAllocs, b.snoopAllocs);
    EXPECT_EQ(a.fillUpdates, b.fillUpdates);
    EXPECT_EQ(a.evictUpdates, b.evictUpdates);
    EXPECT_EQ(a.safetyViolations, b.safetyViolations);
}

/** A small cross-product job list: three apps on two variants. */
std::vector<sim::SweepJob>
sampleJobs()
{
    std::vector<sim::SweepJob> jobs;
    for (const char *app : {"lu", "ff", "ra"}) {
        for (unsigned nprocs : {4u, 8u}) {
            SystemVariant variant;
            variant.nprocs = nprocs;
            sim::SweepJob job;
            job.app = trace::appByName(app);
            job.cfg = variant.smpConfig();
            job.cfg.filterSpecs = {"EJ-16x2", "IJ-8x4x7"};
            job.accessScale = 0.01;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

} // namespace

TEST(SweepRunner, DefaultJobsIsPositive)
{
    EXPECT_GE(sim::SweepRunner::defaultJobs(), 1u);
}

TEST(SweepRunner, SerialAndParallelRunsAreBitIdentical)
{
    // The correctness anchor of the whole engine: the worker count
    // changes wall-clock time, never numbers.
    const auto jobs = sampleJobs();

    sim::SweepRunner serial(1);
    sim::SweepRunner parallel(4);
    const auto a = serial.run(jobs);
    const auto b = parallel.run(jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a[i].memoryAllocated, b[i].memoryAllocated);
        EXPECT_EQ(a[i].filterNames, b[i].filterNames);

        const auto agg_a = a[i].stats.aggregate();
        const auto agg_b = b[i].stats.aggregate();
        EXPECT_EQ(agg_a.accesses, agg_b.accesses);
        EXPECT_EQ(agg_a.l1Hits, agg_b.l1Hits);
        EXPECT_EQ(agg_a.l2LocalHits, agg_b.l2LocalHits);
        EXPECT_EQ(agg_a.snoopTagProbes, agg_b.snoopTagProbes);
        EXPECT_EQ(agg_a.snoopMisses, agg_b.snoopMisses);

        ASSERT_EQ(a[i].filterStats.size(), b[i].filterStats.size());
        for (std::size_t f = 0; f < a[i].filterStats.size(); ++f)
            expectSameStats(a[i].filterStats[f], b[i].filterStats[f]);
    }
}

TEST(SweepRunner, PoolIsReusableAcrossBatches)
{
    sim::SweepRunner runner(2);
    const auto jobs = sampleJobs();
    const auto first = runner.run({jobs[0]});
    const auto again = runner.run({jobs[0], jobs[1]});
    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(again.size(), 2u);
    expectSameStats(first[0].filterStats[0], again[0].filterStats[0]);
}

TEST(SweepRunner, SeedOffsetChangesTheTrace)
{
    auto job = sampleJobs()[0];
    sim::SweepJob bumped = job;
    bumped.seedOffset = 1;
    const auto a = sim::SweepRunner::runOne(job);
    const auto b = sim::SweepRunner::runOne(bumped);
    // Same workload shape, different reference interleaving.
    EXPECT_EQ(a.memoryAllocated, b.memoryAllocated);
    EXPECT_NE(a.stats.aggregate().l1Hits, b.stats.aggregate().l1Hits);
}

TEST(TraceSourceContract, ResetReplaysTheSyntheticStream)
{
    const trace::Workload workload(trace::appByName("lu"), 4, 0.005);
    auto src = workload.makeSource(1);
    const auto first = trace::collect(*src, 0);
    ASSERT_GT(first.size(), 0u);

    trace::TraceRecord rec;
    EXPECT_FALSE(src->next(rec));  // exhausted
    src->reset();
    const auto second = trace::collect(*src, 0);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].addr, second[i].addr) << i;
        EXPECT_EQ(first[i].type, second[i].type) << i;
    }
}

TEST(TraceSourceContract, CloneIsIndependentAndComplete)
{
    const trace::Workload workload(trace::appByName("ff"), 4, 0.005);
    auto src = workload.makeSource(0);
    const auto full = trace::collect(*src, 0);

    // Clone a half-consumed source: the clone must replay from the start.
    src->reset();
    trace::TraceRecord rec;
    for (std::size_t i = 0; i < full.size() / 2; ++i)
        ASSERT_TRUE(src->next(rec));
    auto clone = src->clone();
    const auto replay = trace::collect(*clone, 0);

    ASSERT_EQ(replay.size(), full.size());
    for (std::size_t i = 0; i < full.size(); ++i)
        EXPECT_EQ(replay[i].addr, full[i].addr) << i;
}

TEST(TraceSourceContract, VectorSourceCloneAndReset)
{
    const std::vector<trace::TraceRecord> records{
        {AccessType::Read, 0x100}, {AccessType::Write, 0x200}};
    trace::VectorTraceSource src(records);
    trace::TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.addr, 0x100u);

    auto clone = src.clone();
    ASSERT_TRUE(clone->next(rec));
    EXPECT_EQ(rec.addr, 0x100u);  // clone starts from the beginning

    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.addr, 0x200u);  // the original kept its position
    EXPECT_FALSE(src.next(rec));
    src.reset();
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.addr, 0x100u);
}

TEST(RunCacheTest, IdenticalPairsSimulateOncePerProcess)
{
    auto &cache = RunCache::instance();
    cache.clear();

    SystemVariant variant;
    const auto app = trace::appByName("lu");

    experiments::runApp(app, variant, {"EJ-32x4", "NULL"}, 0.01);
    EXPECT_EQ(cache.simulations(), 1u);

    // A subset request (any spelling) is a pure cache hit.
    const auto hit = experiments::runApp(app, variant, {"null"}, 0.01);
    EXPECT_EQ(cache.simulations(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(hit.filterNames, std::vector<std::string>{"NULL"});

    // A new spec for the same pair re-simulates once, with the union.
    const auto grown =
        experiments::runApp(app, variant, {"IJ-8x4x7", "EJ-32x4"}, 0.01);
    EXPECT_EQ(cache.simulations(), 2u);
    EXPECT_EQ(grown.filterNames.size(), 2u);

    // Different variant or scale means a different key.
    SystemVariant v8 = variant;
    v8.nprocs = 8;
    experiments::runApp(app, v8, {"NULL"}, 0.01);
    EXPECT_EQ(cache.simulations(), 3u);
}

TEST(RunCacheTest, BatchDeduplicatesAndPreservesOrder)
{
    auto &cache = RunCache::instance();
    cache.clear();

    SystemVariant variant;
    std::vector<RunRequest> requests;
    for (const char *name : {"lu", "ff", "lu", "ff"}) {
        RunRequest req;
        req.app = trace::appByName(name);
        req.variant = variant;
        req.filterSpecs = {"EJ-16x2"};
        req.accessScale = 0.01;
        requests.push_back(std::move(req));
    }

    const auto runs = experiments::runMany(requests, 2);
    ASSERT_EQ(runs.size(), 4u);
    EXPECT_EQ(cache.simulations(), 2u);  // two unique pairs
    EXPECT_EQ(runs[0].abbrev, "lu");
    EXPECT_EQ(runs[1].abbrev, "ff");
    EXPECT_EQ(runs[2].abbrev, "lu");
    EXPECT_EQ(runs[3].abbrev, "ff");
    expectSameStats(runs[0].statsFor("EJ-16x2"), runs[2].statsFor("EJ-16x2"));
}

TEST(RunCacheTest, MergedResultsIdenticalForAnyJobsCount)
{
    // The acceptance anchor at the experiments layer: a --jobs 4 sweep
    // produces merged filter stats identical to a serial run.
    auto &cache = RunCache::instance();
    SystemVariant variant;
    const std::vector<std::string> specs{"EJ-32x4", "HJ(IJ-9x4x7,EJ-32x4)"};

    cache.clear();
    const auto serial = experiments::runAllApps(variant, specs, 0.01, 1);
    cache.clear();
    const auto parallel = experiments::runAllApps(variant, specs, 0.01, 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(serial[i].appName);
        EXPECT_EQ(serial[i].abbrev, parallel[i].abbrev);
        for (const auto &spec : specs) {
            expectSameStats(serial[i].statsFor(spec),
                            parallel[i].statsFor(spec));
        }
        const auto ea = serial[i].stats.aggregate();
        const auto eb = parallel[i].stats.aggregate();
        EXPECT_EQ(ea.accesses, eb.accesses);
        EXPECT_EQ(ea.snoopMisses, eb.snoopMisses);
        EXPECT_EQ(serial[i].traffic.allTagAccesses(),
                  parallel[i].traffic.allTagAccesses());
    }
}

TEST(SweepRunner, TinyTraceReportsNoRateInsteadOfGarbage)
{
    // A job shorter than one delivery batch finishes inside the timer's
    // resolution; historically refs/sec then reported inf (elapsed
    // rounded to 0). It must instead flag refsTooFewForRate and report
    // a rate of exactly 0.
    const std::string path =
        ::testing::TempDir() + "jetty_tiny_trace.jtt";
    std::vector<trace::TraceRecord> recs;
    for (int i = 0; i < 3; ++i)
        recs.push_back({AccessType::Read, 0x1000u + 32u * i});
    trace::writeTraceFile(path, recs);

    SystemVariant variant;
    sim::SweepJob job;
    job.cfg = variant.smpConfig();
    job.cfg.filterSpecs = {"NULL"};
    job.traceFiles = {path};  // 3 records cloned onto every processor

    const auto res = sim::SweepRunner::runOne(job);
    EXPECT_EQ(res.totalRefs, 3u * job.cfg.nprocs);
    EXPECT_LT(res.totalRefs, job.cfg.batchRefs);
    EXPECT_TRUE(res.refsTooFewForRate);
    EXPECT_EQ(res.refsPerSecond(), 0.0);
    EXPECT_FALSE(std::isinf(res.refsPerSecond()));
    std::remove(path.c_str());
}

TEST(SweepRunner, SplitBusJobCarriesPerBusStats)
{
    SystemVariant variant;
    variant.snoopBuses = 4;
    sim::SweepJob job;
    job.app = trace::appByName("lu");
    job.cfg = variant.smpConfig();
    job.cfg.filterSpecs = {"NULL"};
    job.accessScale = 0.01;

    const auto res = sim::SweepRunner::runOne(job);
    ASSERT_EQ(res.stats.perBus.size(), 4u);
    std::uint64_t txns = 0;
    for (const auto &bus : res.stats.perBus)
        txns += bus.transactions;
    EXPECT_EQ(txns, res.stats.snoopTransactions);
    EXPECT_GT(txns, 0u);

    // The same job through the experiment layer keys the cache by the
    // bus count: a different snoopBuses is a different simulation.
    RunCache::instance().clear();
    RunRequest req;
    req.app = job.app;
    req.variant = variant;
    req.filterSpecs = {"NULL"};
    req.accessScale = 0.01;
    RunRequest req1 = req;
    req1.variant.snoopBuses = 1;
    experiments::runMany({req, req1});
    EXPECT_EQ(RunCache::instance().simulations(), 2u);
}

TEST(SweepRunner, ReportsPerJobThroughput)
{
    const auto job = sampleJobs()[0];
    const auto res = sim::SweepRunner::runOne(job);
    EXPECT_EQ(res.totalRefs, res.stats.aggregate().accesses);
    EXPECT_GT(res.totalRefs, 0u);
    EXPECT_GT(res.elapsedSeconds, 0.0);
    EXPECT_GT(res.refsPerSecond(), 0.0);

    sim::SweepRunner runner(2);
    const auto batch = runner.run({job, job});
    EXPECT_GT(runner.lastBatchSeconds(), 0.0);
    EXPECT_GT(sim::SweepRunner::aggregateRefsPerSecond(batch), 0.0);
}

TEST(SweepRunner, FileBackedJobMatchesInMemoryReplay)
{
    // Capture a small per-processor trace set, then check the streaming
    // file-backed job simulates exactly what vector replay of the same
    // records does.
    const std::string path = "/tmp/jetty_test_sweep_capture.bin";
    const trace::Workload workload(trace::appByName("lu"), 4, 0.01);
    {
        trace::TraceFileWriter writer(path, 4);
        for (unsigned p = 0; p < 4; ++p) {
            auto src = workload.makeSource(p);
            writer.append(trace::collect(*src));
            writer.endStream();
        }
        writer.close();
    }

    SystemVariant variant;
    sim::SweepJob job;
    job.cfg = variant.smpConfig();
    job.cfg.filterSpecs = {"EJ-16x2"};
    job.traceFiles = {path};
    const auto from_file = sim::SweepRunner::runOne(job);

    sim::SmpSystem sys(job.cfg);
    std::vector<trace::TraceSourcePtr> sources;
    for (unsigned p = 0; p < 4; ++p)
        sources.push_back(std::make_unique<trace::VectorTraceSource>(
            trace::readTraceStream(path, p)));
    sys.attachSources(std::move(sources));
    sys.run();

    const auto a = from_file.stats.aggregate();
    const auto b = sys.stats().aggregate();
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.snoopTagProbes, b.snoopTagProbes);
    EXPECT_EQ(a.snoopMisses, b.snoopMisses);
    expectSameStats(from_file.filterStats[0], sys.mergedFilterStats(0));
    std::remove(path.c_str());
}

TEST(RunCacheTest, FileBackedWorkloadsKeyByContentDigest)
{
    auto &cache = RunCache::instance();
    cache.clear();

    // Two identical captures under different paths, one divergent one.
    const std::string a = "/tmp/jetty_test_digest_a.bin";
    const std::string b = "/tmp/jetty_test_digest_b.bin";
    const std::string c = "/tmp/jetty_test_digest_c.bin";
    std::vector<trace::TraceRecord> recs;
    {
        const trace::Workload workload(trace::appByName("ff"), 2, 0.01);
        auto src = workload.makeSource(0);
        recs = trace::collect(*src, 20000);
    }
    trace::writeTraceFile(a, recs);
    trace::writeTraceFile(b, recs);
    recs[0].addr ^= 0x40;
    trace::writeTraceFile(c, recs);

    const auto request = [](const std::string &file) {
        RunRequest req;
        req.variant.nprocs = 4;
        req.traceFiles = {file};
        req.filterSpecs = {"EJ-16x2"};
        req.app.name = "capture:" + file;
        return req;
    };

    // Same content at a different path: pure cache hit.
    const auto first = experiments::runMany({request(a)}).front();
    EXPECT_EQ(cache.simulations(), 1u);
    const auto second = experiments::runMany({request(b)}).front();
    EXPECT_EQ(cache.simulations(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    expectSameStats(first.statsFor("EJ-16x2"), second.statsFor("EJ-16x2"));

    // Different content: a different key, so it re-simulates.
    experiments::runMany({request(c)});
    EXPECT_EQ(cache.simulations(), 2u);

    std::remove(a.c_str());
    std::remove(b.c_str());
    std::remove(c.c_str());
}

namespace
{

/** Two distinct same-length captures (fixed 8-byte records, equal
 *  counts — rewriting one over the other keeps the file size). */
void
makeDigestFixtures(std::vector<trace::TraceRecord> &recsA,
                   std::vector<trace::TraceRecord> &recsB)
{
    const trace::Workload workload(trace::appByName("ff"), 2, 0.01);
    auto src = workload.makeSource(0);
    recsA = trace::collect(*src, 4096);
    recsB = recsA;
    recsB[0].addr ^= 0x40;
}

} // namespace

TEST(TraceDigestMemo, RewriteDuringHashIsNotMemoized)
{
    // Regression for the memo's stat-then-hash race: the stamp used to
    // be captured before hashing, so a file rewritten between the stat
    // and the hash memoized the NEW content's digest under the OLD
    // content's stamp. Restoring the old content (same size, timestamps
    // put back with utimensat) then answered the wrong digest forever.
    experiments::invalidateTraceDigestMemo();
    const std::string path = ::testing::TempDir() + "jetty_toctou.jtt";
    std::vector<trace::TraceRecord> recsA, recsB;
    makeDigestFixtures(recsA, recsB);

    trace::writeTraceFile(path, recsB);
    const std::uint64_t digestB = trace::traceFileDigest(path);
    trace::writeTraceFile(path, recsA);
    const std::uint64_t digestA = trace::traceFileDigest(path);
    ASSERT_NE(digestA, digestB);
    struct stat original = {};
    ASSERT_EQ(::stat(path.c_str(), &original), 0);

    // One-shot hook: rewrite the file after the pre-hash stat.
    bool fired = false;
    experiments::setTraceDigestPreHashHook(
        [&](const std::string &p) {
            if (fired)
                return;
            fired = true;
            trace::writeTraceFile(p, recsB);
        });
    EXPECT_EQ(experiments::traceFileDigestCached(path), digestB);
    EXPECT_TRUE(fired);
    experiments::setTraceDigestPreHashHook(nullptr);

    // Put content A back under its original stamp. A buggy memo holds
    // (stampA -> digestB) and hits; the fixed one re-hashes.
    trace::writeTraceFile(path, recsA);
    struct timespec times[2] = {original.st_atim, original.st_mtim};
    ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
    EXPECT_EQ(experiments::traceFileDigestCached(path), digestA);

    std::remove(path.c_str());
    experiments::invalidateTraceDigestMemo();
}

TEST(TraceDigestMemo, RunCacheClearInvalidatesTheMemo)
{
    // The memo keys on (size, mtime); a same-size rewrite that restores
    // the timestamps is invisible to it by construction. clear() is the
    // seam that drops the memo along with the cached results.
    experiments::invalidateTraceDigestMemo();
    const std::string path = ::testing::TempDir() + "jetty_memo_clear.jtt";
    std::vector<trace::TraceRecord> recsA, recsB;
    makeDigestFixtures(recsA, recsB);

    trace::writeTraceFile(path, recsA);
    struct stat original = {};
    ASSERT_EQ(::stat(path.c_str(), &original), 0);
    const std::uint64_t digestA = experiments::traceFileDigestCached(path);

    trace::writeTraceFile(path, recsB);
    struct timespec times[2] = {original.st_atim, original.st_mtim};
    ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
    // Same stamp: the memo (documented) still answers the old digest.
    EXPECT_EQ(experiments::traceFileDigestCached(path), digestA);

    RunCache::instance().clear();
    const std::uint64_t digestB = experiments::traceFileDigestCached(path);
    EXPECT_NE(digestB, digestA);
    EXPECT_EQ(digestB, trace::traceFileDigest(path));

    std::remove(path.c_str());
    experiments::invalidateTraceDigestMemo();
}

TEST(RunCacheTest, StatsBlockSizedFromVariant)
{
    // Regression: AppRunResult::stats used to be hard-wired to four
    // processors, so 8-way runs carried a mis-sized stats block.
    SystemVariant v8;
    v8.nprocs = 8;
    const auto run =
        experiments::runApp(trace::appByName("ff"), v8, {"NULL"}, 0.01);
    EXPECT_EQ(run.stats.procs.size(), 8u);
    EXPECT_EQ(run.stats.remoteHits.buckets(), 8u);
}
