/**
 * @file
 * Observer hooks of the SMP simulation, the attachment points of the
 * verification subsystem (verify/). An observer sees every retired
 * reference, every per-target snoop with its pre/post MOESI states, and
 * every bus transaction.
 *
 * Hooks are strictly passive: the simulation makes identical state
 * changes with or without an observer. When no observer is set the
 * batched run() hot path pays nothing — SmpSystem only falls back from
 * the inlined L1 fast path to the fully-instrumented per-reference route
 * while an observer is attached (both routes are bit-identical, so
 * attaching one never changes what is being observed).
 */

#ifndef JETTY_SIM_OBSERVER_HH
#define JETTY_SIM_OBSERVER_HH

#include "coherence/bus_txn.hh"
#include "coherence/moesi.hh"
#include "util/types.hh"

namespace jetty::sim
{

/** One remote node's view of one bus transaction. */
struct SnoopEvent
{
    ProcId requester = 0;  //!< node that issued the transaction
    ProcId target = 0;     //!< node being snooped (never == requester)
    coherence::BusOp op = coherence::BusOp::BusRead;
    Addr unitAddr = 0;     //!< coherence-unit aligned address

    /** Target L2 unit state before/after the snoop transition. */
    coherence::State before = coherence::State::Invalid;
    coherence::State after = coherence::State::Invalid;

    bool wbHit = false;     //!< target's write-back buffer held the unit
    bool supplied = false;  //!< target's L2 sourced the data

    /** Logical snoop bus the transaction was routed to (0 on a single
     *  shared bus). The CheckerSuite's bus-routing invariant verifies it
     *  against an independent restatement of the interleave. */
    unsigned busId = 0;
};

/** Passive observer of the simulation's event streams. */
class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    /** Reference by processor @p p retired (all side effects applied). */
    virtual void onReference(ProcId, AccessType, Addr) {}

    /** One remote node processed one snoop. Fires once per (transaction,
     *  target) pair, before onBusTransaction for the transaction. */
    virtual void onSnoop(const SnoopEvent &) {}

    /** A bus transaction completed; @p remoteCopies is the number of
     *  remote nodes (L2 or write-back buffer) that held the unit and
     *  @p busId the logical snoop bus it was routed to. */
    virtual void onBusTransaction(ProcId /*requester*/, coherence::BusOp,
                                  Addr /*unitAddr*/,
                                  unsigned /*remoteCopies*/,
                                  unsigned /*busId*/)
    {}
};

} // namespace jetty::sim

#endif // JETTY_SIM_OBSERVER_HH
