/**
 * @file
 * Tests for the self-registering filter-family registry: enumeration,
 * per-family help, spec round-trips (parse -> name() -> parse), and
 * registration error handling.
 */

#include <gtest/gtest.h>

#include "core/filter_registry.hh"
#include "core/filter_spec.hh"
#include "experiments/experiments.hh"

using namespace jetty;
using filter::FilterRegistry;

namespace
{

filter::AddressMap
baseMap()
{
    experiments::SystemVariant variant;
    return variant.smpConfig().addressMap();
}

/** Every spec the tests round-trip: the paper set plus the extensions. */
std::vector<std::string>
roundTripSpecs()
{
    auto specs = experiments::allPaperFilterSpecs();
    specs.push_back("NULL");
    specs.push_back("RF-10x12");
    specs.push_back("IJ-8x4x7u");
    specs.push_back("HJ(RF-8x12,EJ-16x2)");
    return specs;
}

} // namespace

TEST(FilterRegistry, ListsAllBuiltinFamilies)
{
    const auto families = FilterRegistry::instance().listFamilies();
    const std::vector<std::string> expected{"EJ", "HJ", "IJ",
                                            "NULL", "RF", "VEJ"};
    EXPECT_EQ(families, expected);
}

TEST(FilterRegistry, EveryFamilyIsSelfDescribing)
{
    const auto &registry = FilterRegistry::instance();
    for (const auto &family : registry.families()) {
        EXPECT_FALSE(family.key.empty());
        EXPECT_FALSE(family.grammar.empty()) << family.key;
        EXPECT_FALSE(family.summary.empty()) << family.key;
        EXPECT_FALSE(family.example.empty()) << family.key;
        ASSERT_NE(family.parse, nullptr) << family.key;
        // The canonical example parses, and it parses via its own family.
        EXPECT_TRUE(filter::isValidFilterSpec(family.example)) << family.key;
        filter::SnoopFilterPtr built;
        EXPECT_TRUE(family.parse(family.example, baseMap(), &built))
            << family.key;
        ASSERT_NE(built, nullptr) << family.key;
    }
}

TEST(FilterRegistry, FamilyLookup)
{
    const auto &registry = FilterRegistry::instance();
    ASSERT_NE(registry.family("EJ"), nullptr);
    EXPECT_EQ(registry.family("EJ")->grammar, "EJ-<sets>x<assoc>");
    EXPECT_EQ(registry.family("ZZ"), nullptr);
    EXPECT_EQ(registry.family("ej"), nullptr);  // keys are exact
}

TEST(FilterRegistry, PaperSpecsRoundTrip)
{
    const auto amap = baseMap();
    for (const auto &spec : roundTripSpecs()) {
        SCOPED_TRACE(spec);
        auto first = filter::makeFilter(spec, amap);
        const std::string name = first->name();

        // The canonical name is itself a valid spec...
        ASSERT_TRUE(filter::isValidFilterSpec(name));
        auto second = filter::makeFilter(name, amap);

        // ...and it is a fixed point: rebuilding from it changes nothing.
        EXPECT_EQ(second->name(), name);
        EXPECT_EQ(second->storage().presenceBits,
                  first->storage().presenceBits);
        EXPECT_EQ(second->storage().counterBits,
                  first->storage().counterBits);
    }
}

TEST(FilterRegistry, CanonicalNameNormalizesSpelling)
{
    const auto amap = baseMap();
    EXPECT_EQ(filter::canonicalFilterName("null", amap), "NULL");
    EXPECT_EQ(filter::canonicalFilterName("  EJ-32x4 ", amap), "EJ-32x4");
    EXPECT_EQ(filter::canonicalFilterName("IJ-8x4x7U", amap), "IJ-8x4x7u");
}

TEST(FilterRegistry, MalformedSpecsStillRejected)
{
    const auto &registry = FilterRegistry::instance();
    const filter::AddressMap amap;
    for (const char *bad :
         {"", "EJ-32", "EJ-axb", "VEJ-32x4", "IJ-10x4", "HJ(IJ-10x4x7)",
          "HJ(IJ-10x4x7,)", "ZZ-1x2", "RF-8"}) {
        EXPECT_FALSE(registry.tryMake(bad, amap, nullptr)) << bad;
    }
}

TEST(FilterRegistry, FailureDiagnosisNamesTokenAndFamily)
{
    const auto &registry = FilterRegistry::instance();

    // A registered family with bad parameters: named, with its grammar
    // and canonical example.
    std::string msg = registry.describeFailure("EJ-32");
    EXPECT_NE(msg.find("malformed EJ spec 'EJ-32'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("EJ-<sets>x<assoc>"), std::string::npos) << msg;
    EXPECT_NE(msg.find("EJ-32x4"), std::string::npos) << msg;

    // Case-insensitive family spelling still resolves to the family.
    msg = registry.describeFailure("vej-32x4");
    EXPECT_NE(msg.find("malformed VEJ spec"), std::string::npos) << msg;

    // An unknown family: the offending token plus the valid list.
    msg = registry.describeFailure("ZZ-1x2");
    EXPECT_NE(msg.find("unknown filter family 'ZZ'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("valid families: EJ, HJ, IJ, NULL, RF, VEJ"),
              std::string::npos)
        << msg;

    // Empty input.
    msg = registry.describeFailure("   ");
    EXPECT_NE(msg.find("empty filter spec"), std::string::npos) << msg;
    EXPECT_NE(msg.find("valid families"), std::string::npos) << msg;
}

TEST(FilterRegistryDeathTest, MakeFilterNamesOffendingToken)
{
    const filter::AddressMap amap;
    EXPECT_EXIT(filter::makeFilter("EJ-32", amap),
                ::testing::ExitedWithCode(1),
                "malformed EJ spec 'EJ-32'.*EJ-<sets>x<assoc>");
    EXPECT_EXIT(filter::makeFilter("ZZ-1x2", amap),
                ::testing::ExitedWithCode(1),
                "unknown filter family 'ZZ'.*valid families");
    EXPECT_EXIT(filter::makeFilter("HJ(IJ-10x4x7)", amap),
                ::testing::ExitedWithCode(1),
                "malformed HJ spec.*HJ\\(<include-spec>,<exclude-spec>\\)");
}

TEST(FilterRegistryDeathTest, DuplicateFamilyIsFatal)
{
    filter::FilterFamily dup;
    dup.key = "EJ";
    dup.grammar = "EJ-<dup>";
    dup.summary = "duplicate";
    dup.example = "EJ-1x1";
    dup.parse = [](const std::string &, const filter::AddressMap &,
                   filter::SnoopFilterPtr *) { return false; };
    EXPECT_EXIT(FilterRegistry::instance().registerFamily(dup),
                ::testing::ExitedWithCode(1), "duplicate family");
}

TEST(FilterRegistryDeathTest, MissingParserIsFatal)
{
    filter::FilterFamily broken;
    broken.key = "XX";
    EXPECT_EXIT(FilterRegistry::instance().registerFamily(broken),
                ::testing::ExitedWithCode(1), "no parser");
}
