#include "core/filter_registry.hh"

#include <algorithm>

#include "core/exclude_jetty.hh"
#include "core/hybrid_jetty.hh"
#include "core/include_jetty.hh"
#include "core/null_filter.hh"
#include "core/region_filter.hh"
#include "core/vector_exclude_jetty.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace jetty::filter
{

FilterRegistry &
FilterRegistry::instance()
{
    static FilterRegistry registry;
    return registry;
}

void
FilterRegistry::registerFamily(FilterFamily family)
{
    if (!family.parse)
        fatal("FilterRegistry: family '" + family.key + "' has no parser");
    if (this->family(family.key))
        fatal("FilterRegistry: duplicate family '" + family.key + "'");
    families_.push_back(std::move(family));
}

bool
FilterRegistry::tryMake(const std::string &raw, const AddressMap &amap,
                        SnoopFilterPtr *out) const
{
    const std::string spec = trim(raw);
    if (spec.empty())
        return false;
    for (const auto &family : families_) {
        if (family.parse(spec, amap, out))
            return true;
    }
    return false;
}

std::vector<std::string>
FilterRegistry::listFamilies() const
{
    std::vector<std::string> keys;
    keys.reserve(families_.size());
    for (const auto &family : families_)
        keys.push_back(family.key);
    std::sort(keys.begin(), keys.end());
    return keys;
}

const FilterFamily *
FilterRegistry::family(const std::string &key) const
{
    for (const auto &f : families_) {
        if (f.key == key)
            return &f;
    }
    return nullptr;
}

std::string
FilterRegistry::describeFailure(const std::string &raw) const
{
    std::string valid;
    for (const auto &key : listFamilies()) {
        if (!valid.empty())
            valid += ", ";
        valid += key;
    }

    const std::string spec = trim(raw);
    if (spec.empty())
        return "empty filter spec; valid families: " + valid;

    // The family token is everything before the first parameter
    // delimiter; spellings are case-insensitive ("ej-32x4" means EJ).
    const std::string head =
        toUpper(spec.substr(0, spec.find_first_of("-(")));
    if (const FilterFamily *f = family(head)) {
        return "malformed " + f->key + " spec '" + spec + "': expected " +
               f->grammar + " (e.g. " + f->example + ")";
    }
    return "unknown filter family '" + head + "' in spec '" + spec +
           "'; valid families: " + valid;
}

// ---- Built-in families ----------------------------------------------
//
// Each registrar below is the single place its family's grammar lives.
// They sit in this translation unit (rather than next to each filter
// class) because libjetty is a static archive: an object file that nothing
// references is never linked, and its registrars would silently not run.
// filter_spec.cc references the registry, so this TU is always pulled in.

namespace
{

/** Parse "AxB" or "AxBxC" numeric tuples. */
bool
parseTuple(const std::string &body, std::vector<unsigned> &out)
{
    out.clear();
    for (const auto &part : split(body, 'x')) {
        unsigned v = 0;
        if (!parseUnsigned(part, v))
            return false;
        out.push_back(v);
    }
    return true;
}

bool
parseNull(const std::string &spec, const AddressMap &, SnoopFilterPtr *out)
{
    if (toUpper(spec) != "NULL")
        return false;
    if (out)
        *out = std::make_unique<NullFilter>();
    return true;
}

bool
parseExclude(const std::string &spec, const AddressMap &amap,
             SnoopFilterPtr *out)
{
    if (!startsWith(spec, "EJ-"))
        return false;
    std::vector<unsigned> t;
    if (!parseTuple(spec.substr(3), t) || t.size() != 2)
        return false;
    ExcludeJettyConfig cfg;
    cfg.sets = t[0];
    cfg.assoc = t[1];
    if (out)
        *out = std::make_unique<ExcludeJetty>(cfg, amap);
    return true;
}

bool
parseVectorExclude(const std::string &spec, const AddressMap &amap,
                   SnoopFilterPtr *out)
{
    if (!startsWith(spec, "VEJ-"))
        return false;
    const auto parts = split(spec.substr(4), '-');
    if (parts.size() != 2)
        return false;
    std::vector<unsigned> t;
    unsigned vec = 0;
    if (!parseTuple(parts[0], t) || t.size() != 2 ||
        !parseUnsigned(parts[1], vec)) {
        return false;
    }
    VectorExcludeJettyConfig cfg;
    cfg.sets = t[0];
    cfg.assoc = t[1];
    cfg.vectorBits = vec;
    if (out)
        *out = std::make_unique<VectorExcludeJetty>(cfg, amap);
    return true;
}

bool
parseInclude(const std::string &spec, const AddressMap &amap,
             SnoopFilterPtr *out)
{
    if (!startsWith(spec, "IJ-"))
        return false;
    std::string body = spec.substr(3);
    IjIndexBase base = IjIndexBase::Block;
    if (!body.empty() && (body.back() == 'u' || body.back() == 'U')) {
        base = IjIndexBase::Unit;
        body.pop_back();
    }
    std::vector<unsigned> t;
    if (!parseTuple(body, t) || t.size() != 3)
        return false;
    IncludeJettyConfig cfg;
    cfg.entryBits = t[0];
    cfg.arrays = t[1];
    cfg.skipBits = t[2];
    cfg.base = base;
    if (out)
        *out = std::make_unique<IncludeJetty>(cfg, amap);
    return true;
}

bool
parseRegion(const std::string &spec, const AddressMap &amap,
            SnoopFilterPtr *out)
{
    if (!startsWith(spec, "RF-"))
        return false;
    std::vector<unsigned> t;
    if (!parseTuple(spec.substr(3), t) || t.size() != 2)
        return false;
    RegionFilterConfig cfg;
    cfg.entryBits = t[0];
    cfg.regionBits = t[1];
    if (out)
        *out = std::make_unique<RegionFilter>(cfg, amap);
    return true;
}

bool
parseHybrid(const std::string &spec, const AddressMap &amap,
            SnoopFilterPtr *out)
{
    if (!startsWith(spec, "HJ(") || spec.back() != ')')
        return false;
    const std::string inner = spec.substr(3, spec.size() - 4);
    // Split at the top-level comma (components contain no parens).
    const auto comma = inner.find(',');
    if (comma == std::string::npos)
        return false;
    const auto &registry = FilterRegistry::instance();
    SnoopFilterPtr ij, ej;
    if (!registry.tryMake(inner.substr(0, comma), amap, out ? &ij : nullptr))
        return false;
    if (!registry.tryMake(inner.substr(comma + 1), amap,
                          out ? &ej : nullptr)) {
        return false;
    }
    if (out)
        *out = std::make_unique<HybridJetty>(std::move(ij), std::move(ej));
    return true;
}

const FamilyRegistrar registerNull({
    "NULL",
    "NULL",
    "no filter: every snoop probes the L2 tags (baseline)",
    "NULL",
    parseNull,
});

const FamilyRegistrar registerExclude({
    "EJ",
    "EJ-<sets>x<assoc>",
    "exclude-JETTY: caches addresses known absent from the local L2",
    "EJ-32x4",
    parseExclude,
});

const FamilyRegistrar registerVectorExclude({
    "VEJ",
    "VEJ-<sets>x<assoc>-<vec>",
    "vector exclude-JETTY: EJ entries carry a presence bit-vector",
    "VEJ-32x4-8",
    parseVectorExclude,
});

const FamilyRegistrar registerInclude({
    "IJ",
    "IJ-<entryBits>x<arrays>x<skipBits>[u]",
    "include-JETTY: counting Bloom-style superset of the L2 contents "
    "('u' = unit-granular indices)",
    "IJ-10x4x7",
    parseInclude,
});

const FamilyRegistrar registerRegion({
    "RF",
    "RF-<entryBits>x<regionBits>",
    "coarse region filter (extension): 2^entryBits counters over "
    "2^regionBits-byte regions",
    "RF-10x12",
    parseRegion,
});

const FamilyRegistrar registerHybrid({
    "HJ",
    "HJ(<include-spec>,<exclude-spec>)",
    "hybrid JETTY: filters when either component filters",
    "HJ(IJ-10x4x7,EJ-32x4)",
    parseHybrid,
});

} // namespace

} // namespace jetty::filter
