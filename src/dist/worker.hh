/**
 * @file
 * The worker half of the distributed sweep subsystem: a loop that
 * serves shard_request lines from one fd and answers shard_started /
 * shard_response lines on another, executing each shard's standalone
 * spec through the shared two-tier RunCache.
 *
 * The loop is transport-agnostic — `jetty_cli worker` runs it over
 * stdin/stdout of a forked process, the tests run it on pipe pairs
 * inside worker threads, and any stream a caller can express as two
 * fds (an ssh channel, a socket) works unchanged.
 *
 * Execution path: the shard spec is resolved and expand()ed exactly
 * like a single-process sweep cell (NOT the executor's replay verb,
 * whose labels differ), so the AppRunResults a worker produces are
 * value-identical to what the coordinator's own process would have
 * computed — the cross-process half of the determinism contract. The
 * worker re-derives every cell's canonical cache key and refuses a
 * shard whose key disagrees with the coordinator's.
 */

#ifndef JETTY_DIST_WORKER_HH
#define JETTY_DIST_WORKER_HH

#include <cstdint>
#include <functional>

#include "dist/shard.hh"

namespace jetty::dist
{

struct WorkerOptions
{
    unsigned jobs = 0;  //!< SweepRunner override (0 = shared default)

    /** Fault-injection hook, called with the 1-based count of requests
     *  received after shard_started is sent but before execution;
     *  returning true abandons the loop without responding (a mid-shard
     *  worker death, as the coordinator observes it). */
    std::function<bool(std::uint64_t)> faultHook;
};

/** Execute one shard request through the shared RunCache. Failures are
 *  returned as an ok=false response, never raised — a malformed shard
 *  must not take the worker down. */
ShardResponse executeShard(const ShardRequest &req, unsigned jobs);

/** Serve shard requests from @p inFd until EOF.
 *  @return 0 on clean EOF, 1 on a transport error, 2 when the fault
 *  hook abandoned a shard. */
int runWorkerLoop(int inFd, int outFd, const WorkerOptions &opts);

} // namespace jetty::dist

#endif // JETTY_DIST_WORKER_HH
