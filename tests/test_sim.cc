/**
 * @file
 * Integration tests of the SMP system: coherence scenarios driven access
 * by access, inclusion invariants, remote-hit accounting, write-back
 * buffer behaviour, and statistics identities.
 */

#include <gtest/gtest.h>

#include "sim/observer.hh"
#include "sim/smp_system.hh"
#include "trace/apps.hh"
#include "trace/synthetic.hh"
#include "trace/trace_source.hh"
#include "util/random.hh"

using namespace jetty;
using namespace jetty::sim;
using coherence::State;

namespace
{

SmpConfig
smallConfig(unsigned nprocs = 4)
{
    SmpConfig cfg;
    cfg.nprocs = nprocs;
    cfg.l1.sizeBytes = 1024;
    cfg.l1.blockBytes = 32;
    cfg.l2.sizeBytes = 8192;
    cfg.l2.blockBytes = 64;
    cfg.l2.subblocks = 2;
    cfg.wbEntries = 4;
    cfg.filterSpecs = {"NULL", "HJ(IJ-8x4x7,EJ-16x2)"};
    return cfg;
}

constexpr Addr kA = 0x10000;

} // namespace

TEST(SmpSystem, ColdReadFillsExclusive)
{
    SmpSystem sys(smallConfig());
    sys.processorAccess(0, AccessType::Read, kA);
    EXPECT_EQ(sys.l2(0).probe(kA).state, State::Exclusive);
    EXPECT_TRUE(sys.l1(0).probe(kA).hit);
    EXPECT_TRUE(sys.l1(0).probe(kA).writable);  // E grants write permission
    const auto &p0 = sys.stats().procs[0];
    EXPECT_EQ(p0.busReads, 1u);
    EXPECT_EQ(p0.l1Misses, 1u);
    // All three remote caches were snooped and missed.
    std::uint64_t snoops = 0;
    for (unsigned q = 1; q < 4; ++q)
        snoops += sys.stats().procs[q].snoopTagProbes;
    EXPECT_EQ(snoops, 3u);
    EXPECT_EQ(sys.stats().remoteHits.count(0), 1u);
}

TEST(SmpSystem, ReadSharingDowngradesOwner)
{
    SmpSystem sys(smallConfig());
    sys.processorAccess(0, AccessType::Write, kA);
    EXPECT_EQ(sys.l2(0).probe(kA).state, State::Modified);

    sys.processorAccess(1, AccessType::Read, kA);
    EXPECT_EQ(sys.l2(0).probe(kA).state, State::Owned);
    EXPECT_EQ(sys.l2(1).probe(kA).state, State::Shared);
    EXPECT_EQ(sys.stats().procs[0].snoopSupplies, 1u);
    // The second transaction found one remote copy.
    EXPECT_EQ(sys.stats().remoteHits.count(1), 1u);
}

TEST(SmpSystem, WriteInvalidatesAllSharers)
{
    SmpSystem sys(smallConfig());
    sys.processorAccess(0, AccessType::Read, kA);
    sys.processorAccess(1, AccessType::Read, kA);
    sys.processorAccess(2, AccessType::Read, kA);

    sys.processorAccess(3, AccessType::Write, kA);
    EXPECT_EQ(sys.l2(3).probe(kA).state, State::Modified);
    for (unsigned q = 0; q < 3; ++q) {
        EXPECT_FALSE(sys.l2(q).probe(kA).unitValid) << q;
        EXPECT_FALSE(sys.l1(q).probe(kA).hit) << q;  // inclusion
    }
}

TEST(SmpSystem, UpgradeOnSharedWriteHit)
{
    SmpSystem sys(smallConfig());
    sys.processorAccess(0, AccessType::Read, kA);
    sys.processorAccess(1, AccessType::Read, kA);  // both Shared now
    EXPECT_EQ(sys.l2(0).probe(kA).state, State::Shared);

    sys.processorAccess(0, AccessType::Write, kA);
    EXPECT_EQ(sys.l2(0).probe(kA).state, State::Modified);
    EXPECT_FALSE(sys.l2(1).probe(kA).unitValid);
    EXPECT_EQ(sys.stats().procs[0].busUpgrades, 1u);
}

TEST(SmpSystem, SilentExclusiveToModified)
{
    SmpSystem sys(smallConfig());
    sys.processorAccess(0, AccessType::Read, kA);
    // Displace kA from the 1KB L1 (clean victim) so the write below is
    // an L1 miss that hits the Exclusive unit in the L2.
    sys.processorAccess(0, AccessType::Read, kA + 1024);
    ASSERT_FALSE(sys.l1(0).probe(kA).hit);
    const auto txns_before = sys.stats().snoopTransactions;
    sys.processorAccess(0, AccessType::Write, kA);
    // E->M must not generate bus traffic.
    EXPECT_EQ(sys.stats().snoopTransactions, txns_before);
    EXPECT_EQ(sys.l2(0).probe(kA).state, State::Modified);
    EXPECT_EQ(sys.stats().procs[0].upgradesSilent, 1u);
}

TEST(SmpSystem, SubblocksFetchedIndependently)
{
    SmpSystem sys(smallConfig());
    sys.processorAccess(0, AccessType::Read, kA);
    EXPECT_FALSE(sys.l2(0).probe(kA + 32).unitValid);
    sys.processorAccess(0, AccessType::Read, kA + 32);
    EXPECT_TRUE(sys.l2(0).probe(kA + 32).unitValid);
    EXPECT_EQ(sys.stats().procs[0].busReads, 2u);
}

TEST(SmpSystem, MigratoryReadWriteChain)
{
    SmpSystem sys(smallConfig());
    for (unsigned p = 0; p < 4; ++p) {
        sys.processorAccess(p, AccessType::Read, kA);
        sys.processorAccess(p, AccessType::Write, kA);
    }
    // Final owner holds M; everyone else invalid.
    EXPECT_EQ(sys.l2(3).probe(kA).state, State::Modified);
    for (unsigned q = 0; q < 3; ++q)
        EXPECT_FALSE(sys.l2(q).probe(kA).unitValid);
}

TEST(SmpSystem, DirtyEvictionGoesToWritebackBuffer)
{
    SmpSystem sys(smallConfig());
    sys.processorAccess(0, AccessType::Write, kA);
    // Evict kA's block: the L2 is 8KB direct mapped.
    sys.processorAccess(0, AccessType::Read, kA + 8192);
    EXPECT_FALSE(sys.l2(0).probe(kA).unitValid);
    EXPECT_TRUE(sys.wb(0).contains(kA));
    EXPECT_EQ(sys.stats().procs[0].wbInsertions, 1u);
}

TEST(SmpSystem, WritebackReclaimAvoidsBus)
{
    SmpSystem sys(smallConfig());
    sys.processorAccess(0, AccessType::Write, kA);
    sys.processorAccess(0, AccessType::Read, kA + 8192);  // kA -> WB
    const auto reads_before = sys.stats().procs[0].busReads;
    sys.processorAccess(0, AccessType::Read, kA);  // reclaim
    EXPECT_EQ(sys.stats().procs[0].busReads, reads_before);
    EXPECT_EQ(sys.stats().procs[0].wbReclaims, 1u);
    EXPECT_FALSE(sys.wb(0).contains(kA));
    EXPECT_TRUE(sys.l2(0).probe(kA).unitValid);
}

TEST(SmpSystem, RemoteSnoopHitsWritebackBuffer)
{
    SmpSystem sys(smallConfig());
    sys.processorAccess(0, AccessType::Write, kA);
    sys.processorAccess(0, AccessType::Read, kA + 8192);  // kA -> WB of 0
    sys.processorAccess(1, AccessType::Read, kA);
    EXPECT_EQ(sys.stats().procs[0].wbSnoopsHit, 1u);
    // The WB copy counted as a remote hit for the transaction.
    EXPECT_GE(sys.stats().remoteHits.count(1), 1u);
}

TEST(SmpSystem, BusReadXRemovesWbEntry)
{
    SmpSystem sys(smallConfig());
    sys.processorAccess(0, AccessType::Write, kA);
    sys.processorAccess(0, AccessType::Read, kA + 8192);  // kA -> WB of 0
    sys.processorAccess(1, AccessType::Write, kA);        // BusReadX
    EXPECT_FALSE(sys.wb(0).contains(kA));
    EXPECT_EQ(sys.l2(1).probe(kA).state, State::Modified);
}

TEST(SmpSystem, InclusionHoldsUnderConflicts)
{
    SmpSystem sys(smallConfig());
    // Touch many conflicting lines; every L1 line must be backed by L2.
    for (int i = 0; i < 64; ++i) {
        sys.processorAccess(0, AccessType::Write,
                            kA + static_cast<Addr>(i) * 1024);
    }
    for (int i = 0; i < 64; ++i) {
        const Addr a = kA + static_cast<Addr>(i) * 1024;
        if (sys.l1(0).probe(a).hit) {
            EXPECT_TRUE(sys.l2(0).probe(a).unitValid) << i;
        }
    }
}

TEST(SmpSystem, StatsIdentities)
{
    SmpConfig cfg = smallConfig();
    SmpSystem sys(cfg);
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const ProcId p = static_cast<ProcId>(rng.below(4));
        const Addr a = rng.below(2048) * 32;
        sys.processorAccess(
            p, rng.chance(0.3) ? AccessType::Write : AccessType::Read, a);
    }
    const auto agg = sys.stats().aggregate();

    // Every access is either an L1 hit or an L1 miss.
    EXPECT_EQ(agg.accesses, agg.l1Hits + agg.l1Misses);
    EXPECT_EQ(agg.accesses, agg.reads + agg.writes);

    // Each snooping transaction probes nprocs-1 remote L2s.
    EXPECT_EQ(agg.snoopTagProbes, 3 * sys.stats().snoopTransactions);
    EXPECT_EQ(agg.snoopTagProbes, agg.snoopHits + agg.snoopMisses);

    // The remote-hit histogram covers every transaction.
    EXPECT_EQ(sys.stats().remoteHits.total(),
              sys.stats().snoopTransactions);

    // Transactions are exactly the reads + readXs + upgrades.
    EXPECT_EQ(sys.stats().snoopTransactions,
              agg.busReads + agg.busReadXs + agg.busUpgrades);

    // Local L2 accesses are L1 misses plus writebacks plus the upgrade
    // probes from L1 write hits on non-writable lines.
    EXPECT_GE(agg.l2LocalAccesses, agg.l1Misses);

    // Energy traffic mirrors the architectural counters.
    EXPECT_EQ(agg.traffic.snoopTagProbes, agg.snoopTagProbes);
}

TEST(SmpSystem, FilterBankObservesEverySnoop)
{
    SmpSystem sys(smallConfig());
    Rng rng(6);
    for (int i = 0; i < 5000; ++i) {
        const ProcId p = static_cast<ProcId>(rng.below(4));
        const Addr a = rng.below(512) * 32;
        sys.processorAccess(
            p, rng.chance(0.3) ? AccessType::Write : AccessType::Read, a);
    }
    const auto agg = sys.stats().aggregate();
    const auto null_stats = sys.mergedFilterStats(0);
    const auto hj_stats = sys.mergedFilterStats(1);
    EXPECT_EQ(null_stats.probes, agg.snoopTagProbes);
    EXPECT_EQ(hj_stats.probes, agg.snoopTagProbes);
    EXPECT_EQ(null_stats.filtered, 0u);
    EXPECT_EQ(hj_stats.safetyViolations, 0u);
    EXPECT_EQ(hj_stats.wouldMiss, agg.snoopMisses);
}

TEST(SmpSystem, RunDrivesAttachedSources)
{
    SmpConfig cfg = smallConfig(2);
    SmpSystem sys(cfg);
    std::vector<trace::TraceSourcePtr> sources;
    std::vector<trace::TraceRecord> recs0{{AccessType::Read, 0x100},
                                          {AccessType::Write, 0x100}};
    std::vector<trace::TraceRecord> recs1{{AccessType::Read, 0x100}};
    sources.push_back(
        std::make_unique<trace::VectorTraceSource>(recs0));
    sources.push_back(
        std::make_unique<trace::VectorTraceSource>(recs1));
    sys.attachSources(std::move(sources));
    sys.run();
    EXPECT_EQ(sys.stats().procs[0].accesses, 2u);
    EXPECT_EQ(sys.stats().procs[1].accesses, 1u);
}

TEST(SmpSystem, EightWayConfig)
{
    SmpConfig cfg = smallConfig(8);
    SmpSystem sys(cfg);
    sys.processorAccess(0, AccessType::Read, kA);
    // Seven remote snoops.
    std::uint64_t snoops = 0;
    for (unsigned q = 1; q < 8; ++q)
        snoops += sys.stats().procs[q].snoopTagProbes;
    EXPECT_EQ(snoops, 7u);
}

namespace
{

/** Every aggregate counter of two runs must agree exactly. */
void
expectIdenticalStats(const SimStats &a, const SimStats &b)
{
    const auto x = a.aggregate();
    const auto y = b.aggregate();
    EXPECT_EQ(x.accesses, y.accesses);
    EXPECT_EQ(x.reads, y.reads);
    EXPECT_EQ(x.writes, y.writes);
    EXPECT_EQ(x.l1Hits, y.l1Hits);
    EXPECT_EQ(x.l1Misses, y.l1Misses);
    EXPECT_EQ(x.l1Writebacks, y.l1Writebacks);
    EXPECT_EQ(x.l2LocalAccesses, y.l2LocalAccesses);
    EXPECT_EQ(x.l2LocalHits, y.l2LocalHits);
    EXPECT_EQ(x.l2Fills, y.l2Fills);
    EXPECT_EQ(x.l2Evictions, y.l2Evictions);
    EXPECT_EQ(x.upgradesSilent, y.upgradesSilent);
    EXPECT_EQ(x.busReads, y.busReads);
    EXPECT_EQ(x.busReadXs, y.busReadXs);
    EXPECT_EQ(x.busUpgrades, y.busUpgrades);
    EXPECT_EQ(x.busWritebacks, y.busWritebacks);
    EXPECT_EQ(x.snoopTagProbes, y.snoopTagProbes);
    EXPECT_EQ(x.snoopHits, y.snoopHits);
    EXPECT_EQ(x.snoopMisses, y.snoopMisses);
    EXPECT_EQ(x.snoopSupplies, y.snoopSupplies);
    EXPECT_EQ(x.wbInsertions, y.wbInsertions);
    EXPECT_EQ(x.wbReclaims, y.wbReclaims);
    EXPECT_EQ(a.snoopTransactions, b.snoopTransactions);
    ASSERT_EQ(a.procs.size(), b.procs.size());
    for (std::size_t p = 0; p < a.procs.size(); ++p) {
        EXPECT_EQ(a.procs[p].accesses, b.procs[p].accesses) << p;
        EXPECT_EQ(a.procs[p].l1Hits, b.procs[p].l1Hits) << p;
        EXPECT_EQ(a.procs[p].snoopTagProbes, b.procs[p].snoopTagProbes)
            << p;
    }
    for (unsigned bucket = 0; bucket < a.remoteHits.buckets(); ++bucket)
        EXPECT_EQ(a.remoteHits.count(bucket), b.remoteHits.count(bucket));
}

/** Counts every observer callback (and checks event sanity). */
struct CountingObserver : public SimObserver
{
    std::uint64_t refs = 0, snoops = 0, txns = 0;

    void onReference(ProcId, AccessType, Addr) override { ++refs; }

    void
    onSnoop(const SnoopEvent &ev) override
    {
        EXPECT_NE(ev.requester, ev.target);
        ++snoops;
    }

    void
    onBusTransaction(ProcId, coherence::BusOp, Addr, unsigned,
                     unsigned) override
    {
        ++txns;
    }
};

/** Everything a delivery-equivalence test compares. */
struct RunOutcome
{
    SimStats stats{0};
    std::vector<filter::FilterStats> filters;  //!< merged, bank order
};

/** Run an lu-derived workload under the given delivery batch size. */
RunOutcome
runOutcomeWithBatch(unsigned batchRefs, bool stepDriven = false,
                    SimObserver *observer = nullptr,
                    unsigned snoopBuses = 1)
{
    SmpConfig cfg;
    cfg.nprocs = 4;
    cfg.l1.sizeBytes = 8 * 1024;
    cfg.l1.blockBytes = 32;
    cfg.l2.sizeBytes = 64 * 1024;
    cfg.l2.blockBytes = 64;
    cfg.l2.subblocks = 2;
    cfg.filterSpecs = {"NULL", "EJ-16x2", "HJ(IJ-8x4x7,EJ-16x2)"};
    cfg.batchRefs = batchRefs;
    cfg.snoopBuses = snoopBuses;

    const trace::Workload workload(trace::appByName("lu"), cfg.nprocs,
                                   0.02);
    SmpSystem sys(cfg);
    sys.setObserver(observer);
    std::vector<trace::TraceSourcePtr> sources;
    for (unsigned p = 0; p < cfg.nprocs; ++p)
        sources.push_back(workload.makeSource(p));
    sys.attachSources(std::move(sources));
    if (stepDriven) {
        while (sys.step()) {
        }
    } else {
        sys.run();
    }
    RunOutcome out;
    out.stats = sys.stats();
    for (std::size_t f = 0; f < sys.bank(0).size(); ++f)
        out.filters.push_back(sys.mergedFilterStats(f));
    return out;
}

SimStats
runWithBatch(unsigned batchRefs, bool stepDriven = false,
             SimObserver *observer = nullptr)
{
    return runOutcomeWithBatch(batchRefs, stepDriven, observer).stats;
}

/** Per-filter coverage stats of two runs must agree exactly. */
void
expectIdenticalFilterStats(const std::vector<filter::FilterStats> &a,
                           const std::vector<filter::FilterStats> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t f = 0; f < a.size(); ++f) {
        EXPECT_EQ(a[f].probes, b[f].probes) << f;
        EXPECT_EQ(a[f].filtered, b[f].filtered) << f;
        EXPECT_EQ(a[f].wouldMiss, b[f].wouldMiss) << f;
        EXPECT_EQ(a[f].filteredWouldMiss, b[f].filteredWouldMiss) << f;
        EXPECT_EQ(a[f].snoopAllocs, b[f].snoopAllocs) << f;
        EXPECT_EQ(a[f].fillUpdates, b[f].fillUpdates) << f;
        EXPECT_EQ(a[f].evictUpdates, b[f].evictUpdates) << f;
        EXPECT_EQ(a[f].safetyViolations, 0u) << f;
        EXPECT_EQ(b[f].safetyViolations, 0u) << f;
    }
}

} // namespace

TEST(SmpSystem, BatchedAndScalarDeliveryAreBitIdentical)
{
    // The determinism anchor of the streaming refactor: the delivery
    // batch size is a transport knob, never a semantic one.
    const SimStats scalar = runWithBatch(1);
    expectIdenticalStats(scalar, runWithBatch(256));
    expectIdenticalStats(scalar, runWithBatch(5));  // odd size: refills
                                                    // land mid-sweep
}

TEST(SmpSystem, StepDrivenAndRunAreBitIdentical)
{
    // step() (the instrumentable path) and run() (the batched hot path
    // with the inlined L1 fast path) must simulate identically.
    expectIdenticalStats(runWithBatch(64, /*stepDriven=*/true),
                         runWithBatch(64, /*stepDriven=*/false));
}

TEST(SmpSystem, SingleBusDeferredFilterReplayIsBitIdentical)
{
    // The pre-interconnect bit-identity anchor: at snoopBuses == 1 the
    // batched run's deferred, per-filter-batched bank replay must give
    // exactly the filter numbers of the immediate per-snoop observation
    // (the step-driven path), on top of identical architectural stats.
    const RunOutcome immediate =
        runOutcomeWithBatch(64, /*stepDriven=*/true);
    const RunOutcome deferred =
        runOutcomeWithBatch(64, /*stepDriven=*/false);
    expectIdenticalStats(immediate.stats, deferred.stats);
    expectIdenticalFilterStats(immediate.filters, deferred.filters);
}

TEST(SmpSystem, SnoopBusCountNeverChangesArchitecturalNumbers)
{
    // snoopBuses is a routing/reporting axis: every architectural
    // counter (and the remote-hit histogram) is bit-identical for 1, 2
    // and 4 buses; the per-bus occupancy vectors partition the single
    // total; and the bus-major filter replay stays safe at every count.
    const RunOutcome one = runOutcomeWithBatch(64, false, nullptr, 1);
    for (const unsigned buses : {2u, 4u}) {
        const RunOutcome split =
            runOutcomeWithBatch(64, false, nullptr, buses);
        expectIdenticalStats(one.stats, split.stats);

        ASSERT_EQ(split.stats.perBus.size(), buses);
        std::uint64_t txns = 0, reads = 0, readxs = 0, upgrades = 0;
        for (const auto &bus : split.stats.perBus) {
            txns += bus.transactions;
            reads += bus.reads;
            readxs += bus.readXs;
            upgrades += bus.upgrades;
        }
        EXPECT_EQ(txns, split.stats.snoopTransactions);
        const auto agg = split.stats.aggregate();
        EXPECT_EQ(reads, agg.busReads);
        EXPECT_EQ(readxs, agg.busReadXs);
        EXPECT_EQ(upgrades, agg.busUpgrades);

        std::uint64_t probes = 0;
        ASSERT_EQ(split.stats.busSnoopTagProbes.size(), buses);
        for (const auto p : split.stats.busSnoopTagProbes)
            probes += p;
        EXPECT_EQ(probes, agg.snoopTagProbes);

        // Filter coverage may legitimately shift with the bus-major
        // replay order, but the event totals and safety cannot.
        ASSERT_EQ(split.filters.size(), one.filters.size());
        for (std::size_t f = 0; f < split.filters.size(); ++f) {
            EXPECT_EQ(split.filters[f].probes, one.filters[f].probes);
            EXPECT_EQ(split.filters[f].wouldMiss,
                      one.filters[f].wouldMiss);
            EXPECT_EQ(split.filters[f].fillUpdates,
                      one.filters[f].fillUpdates);
            EXPECT_EQ(split.filters[f].evictUpdates,
                      one.filters[f].evictUpdates);
            EXPECT_EQ(split.filters[f].safetyViolations, 0u);
        }
    }
}

TEST(SmpSystem, EveryBusTransactionRidesItsHomeBus)
{
    // Drive a 2-bus system through the observer route and check the
    // emitted routing against the config (the CheckerSuite re-checks
    // the same invariant with its own restatement in verify/).
    struct RoutingObserver : public SimObserver
    {
        unsigned blockBytes = 64;
        unsigned buses = 2;
        std::uint64_t txns = 0;

        void
        onBusTransaction(ProcId, coherence::BusOp, Addr unitAddr,
                         unsigned, unsigned busId) override
        {
            ++txns;
            EXPECT_EQ(busId, (unitAddr / blockBytes) % buses);
        }
    };
    RoutingObserver obs;
    const RunOutcome split = runOutcomeWithBatch(64, false, &obs, 2);
    EXPECT_EQ(obs.txns, split.stats.snoopTransactions);
    EXPECT_GT(obs.txns, 0u);
}

TEST(SmpSystem, ObserverIsBehaviourNeutralAndComplete)
{
    // Attaching an observer reroutes run() through the instrumented
    // per-reference path; the simulated numbers must not move by a bit,
    // and the observer must see every reference, every per-target snoop
    // and every transaction.
    const SimStats plain = runWithBatch(64);
    CountingObserver counting;
    const SimStats observed = runWithBatch(64, /*stepDriven=*/false,
                                           &counting);
    expectIdenticalStats(plain, observed);

    const auto agg = observed.aggregate();
    EXPECT_EQ(counting.refs, agg.accesses);
    EXPECT_EQ(counting.snoops, agg.snoopTagProbes);
    EXPECT_EQ(counting.txns, observed.snoopTransactions);
}

TEST(SmpSystem, WritebackEntrySnoopedByReadIsDemotedToOwned)
{
    // Regression for the reclaim-after-remote-read coherence bug: the
    // WB's Modified victim supplies a remote BusRead, so the owner's
    // later reclaim must come back Owned and the subsequent write must
    // go through an invalidating upgrade.
    SmpSystem sys(smallConfig());
    sys.processorAccess(0, AccessType::Write, kA);        // p0: M
    sys.processorAccess(0, AccessType::Read, kA + 8192);  // kA -> WB of 0
    ASSERT_TRUE(sys.wb(0).contains(kA));

    sys.processorAccess(1, AccessType::Read, kA);  // WB supplies
    ASSERT_EQ(sys.wb(0).entries().front().unitAddr, kA);
    EXPECT_EQ(sys.wb(0).entries().front().state, State::Owned);
    EXPECT_EQ(sys.l2(1).probe(kA).state, State::Shared);

    sys.processorAccess(0, AccessType::Read, kA);  // reclaim
    EXPECT_EQ(sys.stats().procs[0].wbReclaims, 1u);
    EXPECT_EQ(sys.l2(0).probe(kA).state, State::Owned);

    const auto upgrades_before = sys.stats().procs[0].busUpgrades;
    sys.processorAccess(0, AccessType::Write, kA);
    EXPECT_EQ(sys.stats().procs[0].busUpgrades, upgrades_before + 1);
    EXPECT_EQ(sys.l2(0).probe(kA).state, State::Modified);
    EXPECT_FALSE(sys.l2(1).probe(kA).unitValid);  // reader invalidated
}

TEST(SmpSystemDeathTest, RejectsBadConfigs)
{
    SmpConfig cfg = smallConfig();
    cfg.nprocs = 1;
    EXPECT_EXIT(SmpSystem{cfg}, ::testing::ExitedWithCode(1),
                "at least two");

    SmpConfig cfg2 = smallConfig();
    cfg2.l1.blockBytes = 64;  // mismatch with L2 coherence unit
    EXPECT_EXIT(SmpSystem{cfg2}, ::testing::ExitedWithCode(1),
                "coherence unit");
}
