#include "energy/cache_energy.hh"

#include <string>

#include "util/bits.hh"
#include "util/logging.hh"

namespace jetty::energy
{

unsigned
CacheGeometry::tagBits() const
{
    const unsigned offset_bits = jetty::floorLog2(blockBytes);
    const unsigned index_bits = jetty::floorLog2(sets());
    if (physAddrBits <= offset_bits + index_bits) {
        fatal("CacheGeometry: physAddrBits (" +
              std::to_string(physAddrBits) +
              ") leaves no tag above " + std::to_string(offset_bits) +
              " offset + " + std::to_string(index_bits) + " index bits");
    }
    return physAddrBits - offset_bits - index_bits;
}

void
CacheGeometry::validate() const
{
    if (blockBytes == 0 || assoc == 0 || subblocks == 0)
        fatal("CacheGeometry: blockBytes, assoc and subblocks must be "
              "non-zero");
    if (blockBytes % subblocks != 0) {
        fatal("CacheGeometry: " + std::to_string(subblocks) +
              " subblocks do not evenly divide a " +
              std::to_string(blockBytes) + " B block");
    }
    const std::uint64_t set_bytes =
        static_cast<std::uint64_t>(blockBytes) * assoc;
    if (sizeBytes < set_bytes) {
        fatal("CacheGeometry: sizeBytes (" + std::to_string(sizeBytes) +
              ") is smaller than one set of " + std::to_string(assoc) +
              " x " + std::to_string(blockBytes) +
              " B blocks — zero sets");
    }
    if (sizeBytes % set_bytes != 0) {
        fatal("CacheGeometry: sizeBytes (" + std::to_string(sizeBytes) +
              ") is not a multiple of blockBytes * assoc (" +
              std::to_string(set_bytes) + ") — the set count would "
              "truncate");
    }
    if (!jetty::isPowerOfTwo(sets())) {
        fatal("CacheGeometry: " + std::to_string(sets()) +
              " sets is not a power of two");
    }
    (void)tagBits();  // fatals when the address space is too small
}

CacheEnergyModel::CacheEnergyModel(const CacheGeometry &geom,
                                   const Technology &tech,
                                   unsigned tagMaxBanks,
                                   unsigned dataMaxBanks)
    : geom_(geom)
{
    geom.validate();
    const std::uint64_t sets = geom.sets();

    // --- Tag array: one row per set, all ways side by side. Each way
    // stores the tag plus per-subblock coherence state.
    const unsigned tag_entry_bits =
        geom.tagBits() + geom.subblocks * geom.stateBitsPerUnit;
    const std::uint64_t tag_cols =
        static_cast<std::uint64_t>(geom.assoc) * tag_entry_bits;

    tagBanks_ = SramArray::optimalBanks(sets, tag_cols, tech, tagMaxBanks,
                                        static_cast<unsigned>(tag_cols));
    SramArray tag_array(sets, tag_cols, tagBanks_, tech);

    const double comparator =
        static_cast<double>(geom.assoc) * geom.tagBits() *
        tech.eComparatorPerBit;

    energies_.tagRead =
        tag_array.readEnergy(static_cast<unsigned>(tag_cols)) + comparator;
    energies_.tagWrite = tag_array.writeEnergy(tag_entry_bits);

    // --- Data array: modelled per way so a serial access activates a
    // single way's subarray and reads one coherence unit.
    const unsigned unit_bits = geom.unitBytes() * 8;
    dataBanks_ = SramArray::optimalBanks(sets, unit_bits, tech, dataMaxBanks,
                                         unit_bits);
    SramArray data_way(sets, unit_bits, dataBanks_, tech);

    energies_.dataReadUnit = data_way.readEnergy(unit_bits);
    energies_.dataWriteUnit = data_way.writeEnergy(unit_bits);
}

} // namespace jetty::energy
