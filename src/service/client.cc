#include "service/client.hh"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "service/protocol.hh"

namespace jetty::service
{

int
connectWithRetry(const std::string &socketPath, const ClientOptions &opts,
                 std::string *err)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::duration<double>(opts.timeoutSeconds);
    for (unsigned attempt = 0;; ++attempt) {
        const int fd = connectUnix(socketPath, err);
        if (fd >= 0)
            return fd;
        if (attempt >= opts.retries)
            return -1;
        // Deterministic exponential backoff: 50ms * 2^attempt, capped
        // at 1s and at the remaining budget. No jitter on purpose —
        // identical invocations probe at identical offsets, so a
        // flaking connect is reproducible.
        const long backoff =
            std::min(50L << std::min(attempt, 10u), 1000L);
        const auto now = Clock::now();
        if (now >= deadline)
            return -1;
        const long left = std::chrono::duration_cast<
                              std::chrono::milliseconds>(deadline - now)
                              .count();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min(backoff, left)));
    }
}

std::string
requestResponse(const std::string &socketPath, const json::Value &request,
                json::Value &response, const ClientOptions &opts)
{
    std::string err;
    const int fd = connectWithRetry(socketPath, opts, &err);
    if (fd < 0)
        return err;
    if (!sendValue(fd, request, &err)) {
        ::close(fd);
        return err;
    }
    LineReader reader(fd);
    std::string line;
    const int timeoutMs = static_cast<int>(opts.timeoutSeconds * 1000.0);
    const int got = reader.readLineTimeout(line, timeoutMs, &err);
    ::close(fd);
    if (got == kReadTimedOut) {
        return "timed out waiting for the response after " +
               std::to_string(opts.timeoutSeconds) + "s";
    }
    if (got < 0)
        return err;
    if (got == 0)
        return "server closed the connection without answering";
    response = json::parse(line, &err);
    if (!err.empty())
        return "response parse error: " + err;
    return "";
}

} // namespace jetty::service
