# Negative-path contract of jetty_cli's filter-spec handling: every
# subcommand that accepts --filters must reject an invalid spec through
# FilterRegistry::describeFailure — a non-zero exit and a diagnostic that
# names the offending token (unknown family => the valid-family list;
# malformed member => the family's grammar). Run as:
#   cmake -DCLI=<path-to-jetty_cli> -P cli_negative.cmake
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to jetty_cli>")
endif()

function(expect_filter_failure expected_pattern)
  # ARGN is the jetty_cli argument list.
  execute_process(
    COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  string(JOIN " " pretty ${ARGN})
  if(rc EQUAL 0)
    message(FATAL_ERROR
            "jetty_cli ${pretty}: expected a non-zero exit, got 0")
  endif()
  if(NOT err MATCHES "${expected_pattern}")
    message(FATAL_ERROR
            "jetty_cli ${pretty}: stderr did not explain the failure "
            "(wanted '${expected_pattern}', got: ${err})")
  endif()
endfunction()

# Unknown family: the registry must list the valid families.
expect_filter_failure("unknown filter family"
                      run --app lu --scale 0.001 --filters BOGUS-1)
expect_filter_failure("unknown filter family"
                      sweep --apps lu --scale 0.001 --filters BOGUS-1)
expect_filter_failure("unknown filter family"
                      bench --app lu --scale 0.001 --filters BOGUS-1)
expect_filter_failure("unknown filter family"
                      fuzz --rounds 1 --refs 64 --filters BOGUS-1)

# Malformed member of a known family: the family's grammar must appear.
expect_filter_failure("EJ-<sets>x<assoc>"
                      bench --app lu --scale 0.001 --filters EJ-banana)
expect_filter_failure("EJ-<sets>x<assoc>"
                      run --app lu --scale 0.001 --filters EJ-banana)

# Bad --buses values fail loudly too.
expect_filter_failure("--buses needs"
                      run --app lu --scale 0.001 --buses 0)
expect_filter_failure("--buses needs"
                      sweep --apps lu --scale 0.001 --buses 4,0)

message(STATUS "jetty_cli negative-path contract holds")
