# Spec contract of jetty_cli (ISSUE 5 acceptance): for every simulating
# subcommand, `--dump-spec` output fed back through `--spec` resolves to
# the bit-identical spec; a `--spec` run re-executes bit-identically; and
# the committed example specs stay loadable. Run as:
#   cmake -DCLI=<path-to-jetty_cli> -DEXAMPLES=<examples dir> -P cli_spec.cmake
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to jetty_cli>")
endif()
if(NOT DEFINED EXAMPLES)
  message(FATAL_ERROR "pass -DEXAMPLES=<path to the examples directory>")
endif()

set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_spec_work)
file(MAKE_DIRECTORY ${work})

function(run_cli out_var)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  string(JOIN " " pretty ${ARGN})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "jetty_cli ${pretty} failed (${rc}): ${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# --dump-spec -> --spec -> --dump-spec must be a fixed point.
function(check_dump_roundtrip name cmd)
  run_cli(dump1 ${cmd} ${ARGN} --dump-spec)
  file(WRITE ${work}/${name}.spec.json "${dump1}")
  run_cli(dump2 ${cmd} --spec ${work}/${name}.spec.json --dump-spec)
  if(NOT dump1 STREQUAL dump2)
    message(FATAL_ERROR
            "jetty_cli ${cmd}: --dump-spec is not a fixed point under "
            "--spec\nfirst:\n${dump1}\nsecond:\n${dump2}")
  endif()
endfunction()

check_dump_roundtrip(run run --app fm --scale 0.01 --buses 2)
check_dump_roundtrip(sweep sweep --apps lu,fm --procs 4 --buses 1,2
                     --scale 0.01 --no-subblock)
check_dump_roundtrip(bench bench --app lu --scale 0.01 --batch 64
                     --repeat 1)
check_dump_roundtrip(fuzz fuzz --rounds 2 --refs 128 --buses 2)

# replay of a single-section capture: the processor count is not
# inferable from the file, so the dumped spec's machine.procs must
# carry it (regression: --spec used to fall back to 4).
run_cli(cap trace --app lu --proc 0 --limit 4096 --out ${work}/one.jtt)
check_dump_roundtrip(replay replay --in ${work}/one.jtt --procs 8)
run_cli(rdump replay --spec ${work}/replay.spec.json --dump-spec)
if(NOT rdump MATCHES "\"procs\": 8")
  message(FATAL_ERROR
          "replay --spec lost the recorded processor count:\n${rdump}")
endif()

# A --spec run re-executes bit-identically (separate processes, so no
# run-cache sharing; every printed number is simulated, not timed).
run_cli(out1 run --spec ${work}/run.spec.json --scale 0.01)
run_cli(out2 run --spec ${work}/run.spec.json --scale 0.01)
if(NOT out1 STREQUAL out2)
  message(FATAL_ERROR
          "jetty_cli run --spec re-ran differently:\n${out1}\nvs\n${out2}")
endif()

# The committed example specs resolve through their natural subcommand.
run_cli(q run --spec ${EXAMPLES}/quickstart.spec.json --dump-spec)
run_cli(p sweep --spec ${EXAMPLES}/paper_figure4.spec.json --dump-spec)
run_cli(z fuzz --spec ${EXAMPLES}/fuzz_smoke.spec.json --dump-spec)

# ... and the quickstart spec actually runs (scaled down for CI).
run_cli(smoke run --spec ${EXAMPLES}/quickstart.spec.json --scale 0.01)

message(STATUS "jetty_cli spec contract holds")
