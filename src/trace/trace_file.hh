/**
 * @file
 * Binary trace file formats: capture a reference stream once and replay
 * it, mirroring the paper's WWT2 trace-collection methodology.
 *
 * Two on-disk versions exist:
 *
 *  - JTTRACE2 (current): 8-byte magic "JTTRACE2", u32 stream-section
 *    count, u32 reserved, then one little-endian u64 record count per
 *    section, then the sections back to back. Multi-section files hold
 *    one stream per processor; record counts are 64-bit so a capture can
 *    exceed 4 Gi records.
 *  - JTTRACE1 (legacy): 8-byte magic "JTTRACE1", u32 record count, u32
 *    reserved, then a single section. Still read transparently.
 *
 * Every record is 8 bytes: {u8 type (0 = read, 1 = write), 7-byte
 * little-endian address}, so addresses are capped at 56 bits.
 *
 * Readers validate the header's record counts against the actual file
 * size before allocating anything, so a corrupt or truncated header
 * fails cleanly instead of triggering an unbounded allocation. Traces
 * larger than memory are replayed with trace::FileStreamSource
 * (file_stream_source.hh) instead of readTraceFile().
 */

#ifndef JETTY_TRACE_TRACE_FILE_HH
#define JETTY_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_source.hh"

namespace jetty::util
{
class AtomicFile;
}

namespace jetty::trace
{

/** Bytes of one on-disk record (both versions). */
constexpr std::size_t kTraceRecordBytes = 8;

/** Largest address the 7-byte record encoding can carry. */
constexpr Addr kMaxTraceAddr = (Addr{1} << 56) - 1;

/** Encode one record into its 8-byte on-disk form. */
inline void
encodeTraceRecord(const TraceRecord &r, unsigned char out[kTraceRecordBytes])
{
    out[0] = r.type == AccessType::Write ? 1 : 0;
    for (int i = 0; i < 7; ++i)
        out[1 + i] = static_cast<unsigned char>((r.addr >> (8 * i)) & 0xff);
}

/** Decode one record from its 8-byte on-disk form. */
inline TraceRecord
decodeTraceRecord(const unsigned char *p)
{
    TraceRecord r;
    r.type = p[0] ? AccessType::Write : AccessType::Read;
    r.addr = 0;
    for (int b = 0; b < 7; ++b)
        r.addr |= static_cast<Addr>(p[1 + b]) << (8 * b);
    return r;
}

/** Parsed, size-validated header of a trace file. */
struct TraceFileInfo
{
    unsigned version = 2;                 //!< 1 or 2
    std::vector<std::uint64_t> counts;    //!< records per stream section
    std::vector<std::uint64_t> offsets;   //!< byte offset of each section

    std::size_t streams() const { return counts.size(); }

    std::uint64_t
    totalRecords() const
    {
        std::uint64_t total = 0;
        for (const auto c : counts)
            total += c;
        return total;
    }
};

/**
 * Parse and validate a trace file header (either version). Calls fatal()
 * when the file is missing, the magic is unknown, or the declared record
 * counts are inconsistent with the actual file size.
 */
TraceFileInfo readTraceFileInfo(const std::string &path);

/**
 * Incremental JTTRACE2 writer: streams records section by section so a
 * capture never has to materialize the trace in memory.
 *
 * Usage: construct with the section count, then for each section in
 * order call append() any number of times followed by endStream(); close()
 * patches the header's record counts. Section s of an nprocs-section
 * capture is processor s's stream.
 *
 * Publication is atomic (util/atomic_file.hh): the bytes accumulate in
 * a temp file beside @p path and close() renames it into place, so a
 * writer killed mid-capture — or a capture abandoned before every
 * section ended — leaves *nothing* at the final path, never a
 * truncated or zero-count file a replay could mistake for a capture.
 */
class TraceFileWriter
{
  public:
    /** Open a temp file beside @p path and write a JTTRACE2 header for
     *  @p streams sections. Calls fatal() on I/O errors (as do all
     *  members). */
    TraceFileWriter(const std::string &path, unsigned streams);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append @p n records to the current stream section. */
    void append(const TraceRecord *recs, std::size_t n);
    void append(const std::vector<TraceRecord> &recs);

    /** Finish the current section and move to the next. */
    void endStream();

    /** Patch the header with the final counts and atomically publish
     *  the file at its final path. Every section must have been ended.
     *  Implied by the destructor only when all sections are complete;
     *  an incomplete writer's destructor discards the temp file
     *  instead. */
    void close();

    /** Records written so far across all sections. */
    std::uint64_t recordsWritten() const { return total_; }

  private:
    std::string path_;
    std::unique_ptr<util::AtomicFile> out_;
    std::FILE *f_ = nullptr;
    std::vector<std::uint64_t> counts_;
    unsigned current_ = 0;
    std::uint64_t total_ = 0;
    bool closed_ = false;
};

/** Write @p records to @p path as a single-section JTTRACE2 file. */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRecord> &records);

/** Write @p records in the legacy JTTRACE1 layout (u32 record count).
 *  Exists so the transparent-read support stays round-trip tested. */
void writeTraceFileV1(const std::string &path,
                      const std::vector<TraceRecord> &records);

/** Read stream section @p stream of a trace file (either version). */
std::vector<TraceRecord> readTraceStream(const std::string &path,
                                         std::size_t stream);

/** Read a single-stream trace file (either version); fatal() when the
 *  file has multiple sections (use readTraceStream or FileStreamSource). */
std::vector<TraceRecord> readTraceFile(const std::string &path);

/** FNV-1a digest of the file's full contents; identifies a captured
 *  workload by what it replays, not where it lives (RunCache keying). */
std::uint64_t traceFileDigest(const std::string &path);

/** Drain up to @p limit records from @p src into a vector (0 = all). */
std::vector<TraceRecord> collect(TraceSource &src, std::uint64_t limit = 0);

} // namespace jetty::trace

#endif // JETTY_TRACE_TRACE_FILE_HH
