/**
 * @file
 * Report: the one structured results schema every emitter shares.
 *
 * `jetty_cli run/sweep/bench/fuzz`, `bench_throughput` and
 * `bench_snoopbus` all used to hand-roll their JSON with fprintf (and
 * none of them escaped strings). They now build one metrics tree —
 * architectural statistics, per-bus occupancy, per-filter coverage and
 * energy, timing, plus an echo of the ExperimentSpec that produced the
 * numbers and the content digests of any replayed trace files — and
 * serialize it through util/json.
 *
 * Envelope (every report):
 *   { "jetty_report": 1, "kind": "<run|sweep|bench|fuzz|...>",
 *     "simd_isa": "<avx2|sse2|neon|scalar>", "simd_width": N,
 *     "spec": { ...ExperimentSpec echo... }, ...kind payload... }
 *
 * simd_isa/simd_width record which util/simd.hh kernel tier produced the
 * numbers (run-time resolved on x86): provenance for the committed
 * BENCH_*.json baselines and for tools/bench_compare.
 *
 * The shared sub-trees are built by the static node builders below, so
 * a field rename is one edit, not six.
 */

#ifndef JETTY_API_REPORT_HH
#define JETTY_API_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "api/experiment_spec.hh"
#include "experiments/experiments.hh"
#include "sim/sim_stats.hh"
#include "util/json.hh"

namespace jetty::api
{

/** One structured results document. */
class Report
{
  public:
    /** The on-disk schema version this build writes. */
    static constexpr std::int64_t kVersion = 1;

    /** @param kind the producing flow: "run", "sweep", "bench", "fuzz",
     *  "throughput", "snoopbus". */
    explicit Report(const std::string &kind);

    /** The mutable tree (kind-specific payload lands here). */
    json::Value &root() { return root_; }
    const json::Value &root() const { return root_; }

    /** Echo the spec this report answers ("spec"), making every report
     *  file re-runnable: feed the embedded spec back via --spec. */
    void echoSpec(const ExperimentSpec &spec);

    std::string emit() const { return root_.dump(); }
    void writeFile(const std::string &path) const;

    // ---- shared sub-tree builders ----

    /** Aggregate architectural counters of @p stats. */
    static json::Value archNode(const sim::SimStats &stats);

    /** Per-bus occupancy rows of the split interconnect. */
    static json::Value perBusNode(const sim::SimStats &stats);

    /** Timing block: refs, seconds, refs/sec (null when the run was too
     *  short to rate — mirrors the CLI's "-"). */
    static json::Value timingNode(std::uint64_t refs, double seconds,
                                  bool refsTooFewForRate);

    /** @p num / @p denom as a JSON number, or null when @p denom <= 0 —
     *  a zero-elapsed measurement (coarse steady_clock, trivial input)
     *  must become null, not an infinity the emitter refuses. */
    static json::Value ratio(double num, double denom);

    /** One full run: app identity + machine + timing + arch + per-bus +
     *  per-filter coverage/energy/latency rows for @p specs. */
    static json::Value runNode(const experiments::AppRunResult &run,
                               const experiments::SystemVariant &variant,
                               const std::vector<std::string> &specs);

    /** Content digests of @p files ("path" + "digest" rows), so a
     *  report names exactly which capture bytes it measured. */
    static json::Value traceDigestsNode(
        const std::vector<std::string> &files);

  private:
    json::Value root_;
};

} // namespace jetty::api

#endif // JETTY_API_REPORT_HH
