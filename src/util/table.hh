/**
 * @file
 * Plain-text table formatter used by the benchmark harness to print the
 * rows/series of every paper table and figure, plus a CSV emitter so the
 * data can be re-plotted.
 */

#ifndef JETTY_UTIL_TABLE_HH
#define JETTY_UTIL_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace jetty
{

/**
 * A simple column-aligned text table. Build it row by row, then print to a
 * stream. Cells are strings; helpers format numbers/percentages.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void
    header(std::vector<std::string> cells)
    {
        header_ = std::move(cells);
    }

    /** Append a data row. */
    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Format a double with @p prec decimals. */
    static std::string
    num(double v, int prec = 2)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.*f", prec, v);
        return buf;
    }

    /** Format a percentage like "74.3%". */
    static std::string
    pct(double v, int prec = 1)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.*f%%", prec, v);
        return buf;
    }

    /** Format an integer count. */
    static std::string
    count(std::uint64_t v)
    {
        return std::to_string(v);
    }

    /** Print aligned columns to @p out (default stdout). */
    void print(std::FILE *out = stdout) const;

    /** Print comma-separated values to @p out. */
    void printCsv(std::FILE *out = stdout) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace jetty

#endif // JETTY_UTIL_TABLE_HH
