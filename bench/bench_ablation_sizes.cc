/**
 * @file
 * Ablation A2 (motivated by Section 4.4's raytrace observation that when
 * coverage saturates, savings are inversely proportional to the JETTY's
 * own dissipation): sweep hybrid sizes on Raytrace-like traffic, where
 * every organization covers ~100% of snoop misses, and report energy
 * reduction over snoop accesses together with the filter's storage.
 */

#include <cstdio>

#include "core/filter_spec.hh"
#include "experiments/experiments.hh"
#include "trace/apps.hh"
#include "util/table.hh"

using namespace jetty;

int
main()
{
    const std::vector<std::string> specs{
        "HJ(IJ-10x4x7,EJ-32x4)", "HJ(IJ-9x4x7,EJ-32x4)",
        "HJ(IJ-8x4x7,EJ-16x2)",  "HJ(IJ-7x5x6,EJ-16x2)",
        "HJ(IJ-6x5x6,EJ-8x2)",
    };

    experiments::SystemVariant variant;
    const auto run = experiments::runApp(trace::appByName("rt"), variant,
                                         specs,
                                         experiments::defaultScale());

    TextTable table;
    table.header({"config", "storage bytes", "coverage",
                  "energy reduction over snoops (serial)"});
    for (const auto &spec : specs) {
        const auto res = experiments::evaluateEnergy(
            run, variant, spec, energy::AccessMode::Serial);
        // Recover storage from a fresh instance.
        const auto f = filter::makeFilter(
            spec, variant.smpConfig().addressMap());
        table.row({spec,
                   TextTable::num(f->storage().totalBytes(), 0),
                   TextTable::pct(100.0 * run.statsFor(spec).coverage()),
                   TextTable::pct(res.reductionOverSnoopsPct)});
    }

    std::printf("Ablation A2: JETTY size vs energy on Raytrace "
                "(coverage-saturated)\n\n");
    table.print();
    std::printf("\nExpectation: equal coverage, so smaller organizations "
                "save more energy -- the paper's raytrace effect.\n");
    return 0;
}
