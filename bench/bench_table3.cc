/**
 * @file
 * Regenerates Table 3: the snoop hit distribution on the base 4-way SMP.
 * For each application: the fraction of snoop transactions finding 0, 1,
 * 2 or 3 remote cached copies; the fraction of snoop-induced L2 tag
 * accesses that miss; and snoop misses as a fraction of all L2 accesses.
 *
 * Paper reference values: 79.6% of snoops find no remote copy on average
 * (Unstructured the outlier at 33%); 91% of snoop-induced tag accesses
 * miss; snoop misses are ~55% of all L2 accesses.
 */

#include <cstdio>

#include "experiments/experiments.hh"
#include "util/table.hh"

using namespace jetty;

int
main()
{
    experiments::SystemVariant variant;
    const auto runs = experiments::runAllApps(
        variant, {"NULL"}, experiments::defaultScale());

    TextTable table;
    table.header({"App", "0", "1", "2", "3", "miss%ofSnoops",
                  "miss%ofAllL2"});

    double avg[4] = {0, 0, 0, 0};
    double avg_miss_snoops = 0, avg_miss_all = 0;

    for (const auto &run : runs) {
        const auto agg = run.stats.aggregate();
        const auto &h = run.stats.remoteHits;

        const double miss_of_snoops =
            percent(agg.snoopMisses, agg.snoopTagProbes);
        const std::uint64_t all_l2 =
            agg.l2LocalAccesses + agg.snoopTagProbes;
        const double miss_of_all = percent(agg.snoopMisses, all_l2);

        std::vector<std::string> row{run.appName};
        for (unsigned b = 0; b < 4; ++b) {
            const double frac = 100.0 * h.fraction(b);
            avg[b] += frac;
            row.push_back(TextTable::pct(frac, 0));
        }
        row.push_back(TextTable::pct(miss_of_snoops, 0));
        row.push_back(TextTable::pct(miss_of_all, 0));
        table.row(std::move(row));

        avg_miss_snoops += miss_of_snoops;
        avg_miss_all += miss_of_all;
    }

    const double n = static_cast<double>(runs.size());
    table.row({"AVERAGE", TextTable::pct(avg[0] / n), TextTable::pct(avg[1] / n),
               TextTable::pct(avg[2] / n), TextTable::pct(avg[3] / n),
               TextTable::pct(avg_miss_snoops / n, 0),
               TextTable::pct(avg_miss_all / n, 0)});

    std::printf("Table 3: snoop hit distribution (4-way SMP)\n\n");
    table.print();
    std::printf("\nPaper averages: 79.6%% / 15.6%% / 2.6%% / 1%% remote-hit "
                "distribution; 91%% of snoop accesses miss; 55%% of all L2 "
                "accesses are snoop misses.\n");
    return 0;
}
