#include "core/vector_exclude_jetty.hh"

#include "energy/sram_array.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace jetty::filter
{

VectorExcludeJetty::VectorExcludeJetty(const VectorExcludeJettyConfig &cfg,
                                       const AddressMap &amap)
    : cfg_(cfg), amap_(amap)
{
    if (!isPowerOfTwo(cfg.sets) || cfg.assoc == 0 ||
        !isPowerOfTwo(cfg.vectorBits) || cfg.vectorBits > 64) {
        fatal("VectorExcludeJetty: bad geometry");
    }
    vecBits_ = floorLog2(cfg.vectorBits);
    setBits_ = floorLog2(cfg.sets);
    const unsigned consumed = amap.blockOffsetBits + vecBits_ + setBits_;
    if (amap.physAddrBits <= consumed)
        fatal("VectorExcludeJetty: address space too small");
    tagBits_ = amap.physAddrBits - consumed;
    sets_.assign(cfg.sets, std::vector<Entry>(cfg.assoc));
}

std::uint64_t
VectorExcludeJetty::setIndex(Addr unitAddr) const
{
    // The set index sits above the vector-selection bits; this is why a
    // VEJ with the same sets/assoc as an EJ hashes addresses differently
    // (the thrashing effect the paper observes on Barnes).
    return bitField(unitAddr, amap_.blockOffsetBits + vecBits_, setBits_);
}

Addr
VectorExcludeJetty::tagOf(Addr unitAddr) const
{
    return unitAddr >> (amap_.blockOffsetBits + vecBits_ + setBits_);
}

unsigned
VectorExcludeJetty::bitOf(Addr unitAddr) const
{
    return static_cast<unsigned>(
        bitField(unitAddr, amap_.blockOffsetBits, vecBits_));
}

bool
VectorExcludeJetty::probe(Addr unitAddr)
{
    auto &set = sets_[setIndex(unitAddr)];
    const Addr tag = tagOf(unitAddr);
    const std::uint64_t bit = std::uint64_t{1} << bitOf(unitAddr);
    for (auto &e : set) {
        if (e.valid && e.tag == tag) {
            e.lastUse = ++useClock_;
            return (e.vector & bit) != 0;
        }
    }
    return false;
}

void
VectorExcludeJetty::onSnoopMiss(Addr unitAddr, bool blockPresent)
{
    if (blockPresent)
        return;  // only whole-block absence may be recorded

    auto &set = sets_[setIndex(unitAddr)];
    const Addr tag = tagOf(unitAddr);
    const std::uint64_t bit = std::uint64_t{1} << bitOf(unitAddr);

    for (auto &e : set) {
        if (e.valid && e.tag == tag) {
            e.vector |= bit;
            e.lastUse = ++useClock_;
            return;
        }
    }

    Entry *victim = nullptr;
    for (auto &e : set) {
        if (!e.valid) {
            victim = &e;
            break;
        }
    }
    if (!victim) {
        victim = &set.front();
        for (auto &e : set) {
            if (e.lastUse < victim->lastUse)
                victim = &e;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->vector = bit;
    victim->lastUse = ++useClock_;
}

void
VectorExcludeJetty::onFill(Addr unitAddr)
{
    auto &set = sets_[setIndex(unitAddr)];
    const Addr tag = tagOf(unitAddr);
    const std::uint64_t bit = std::uint64_t{1} << bitOf(unitAddr);
    for (auto &e : set) {
        if (e.valid && e.tag == tag) {
            e.vector &= ~bit;
            if (e.vector == 0)
                e.valid = false;
            return;
        }
    }
}

void
VectorExcludeJetty::clear()
{
    for (auto &set : sets_)
        for (auto &e : set)
            e = Entry{};
    useClock_ = 0;
}

StorageBreakdown
VectorExcludeJetty::storage() const
{
    StorageBreakdown s;
    s.presenceBits = static_cast<std::uint64_t>(cfg_.sets) * cfg_.assoc *
                     (tagBits_ + cfg_.vectorBits);
    return s;
}

energy::FilterEnergyCosts
VectorExcludeJetty::energyCosts(const energy::Technology &tech) const
{
    const std::uint64_t cols =
        static_cast<std::uint64_t>(cfg_.assoc) * (tagBits_ + cfg_.vectorBits);
    energy::SramArray array(cfg_.sets, cols, 1, tech);
    const double comparators =
        static_cast<double>(cfg_.assoc) * tagBits_ * tech.eComparatorPerBit;

    energy::FilterEnergyCosts costs;
    // Comparators and vector-bit muxes are adjacent to the array; no long
    // output wires are driven on a probe.
    costs.probe = array.readEnergy(0) + comparators;
    costs.snoopAlloc = array.writeEnergy(tagBits_ + cfg_.vectorBits);
    costs.fillUpdate = costs.probe + array.writeEnergy(cfg_.vectorBits);
    costs.evictUpdate = 0.0;
    return costs;
}

std::string
VectorExcludeJetty::name() const
{
    return "VEJ-" + std::to_string(cfg_.sets) + "x" +
           std::to_string(cfg_.assoc) + "-" + std::to_string(cfg_.vectorBits);
}

} // namespace jetty::filter
