/**
 * @file
 * Tests for the extension features: the coarse RegionFilter and the
 * Section 2.2 latency-impact model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/filter_spec.hh"
#include "core/region_filter.hh"
#include "sim/latency.hh"

using namespace jetty;
using namespace jetty::filter;

namespace
{

AddressMap
amap()
{
    AddressMap m;
    m.l2CapacityUnits = 32768;
    return m;
}

} // namespace

TEST(RegionFilter, EmptyFiltersEverything)
{
    RegionFilter rf({8, 10}, amap());
    EXPECT_TRUE(rf.probe(0x0));
    EXPECT_TRUE(rf.probe(0x12345660));
}

TEST(RegionFilter, FilledRegionNotFiltered)
{
    RegionFilter rf({8, 10}, amap());
    rf.onFill(0x4000);
    EXPECT_FALSE(rf.probe(0x4000));
    // Any unit in the same 1KB region is covered by the same entry.
    EXPECT_FALSE(rf.probe(0x43e0));
}

TEST(RegionFilter, EvictionRestoresFiltering)
{
    RegionFilter rf({8, 10}, amap());
    rf.onFill(0x4000);
    rf.onFill(0x4020);
    rf.onEvict(0x4000);
    EXPECT_FALSE(rf.probe(0x4000));  // one unit still cached in region
    rf.onEvict(0x4020);
    EXPECT_TRUE(rf.probe(0x4000));
}

TEST(RegionFilter, SupersetProperty)
{
    RegionFilter rf({6, 12}, amap());
    std::vector<Addr> filled;
    for (int i = 0; i < 500; ++i)
        filled.push_back(0x10000000 + static_cast<Addr>(i) * 4096 * 3);
    for (Addr a : filled)
        rf.onFill(a);
    for (Addr a : filled)
        EXPECT_FALSE(rf.probe(a));
}

TEST(RegionFilter, HashSpreadsContiguousRegions)
{
    RegionFilter rf({8, 10}, amap());
    // 64 contiguous regions should not collapse onto few entries.
    std::set<std::uint64_t> indexes;
    for (int r = 0; r < 64; ++r)
        indexes.insert(rf.indexOf(static_cast<Addr>(r) * 1024));
    EXPECT_GT(indexes.size(), 48u);
}

TEST(RegionFilter, StorageAndName)
{
    RegionFilter rf({8, 10}, amap());
    EXPECT_EQ(rf.name(), "RF-8x10");
    EXPECT_EQ(rf.storage().presenceBits, 256u);
    EXPECT_GT(rf.storage().counterBits, 0u);
}

TEST(RegionFilter, EnergyCostsSane)
{
    RegionFilter rf({8, 10}, amap());
    const auto c = rf.energyCosts(energy::Technology::micron180());
    EXPECT_GT(c.probe, 0.0);
    EXPECT_GT(c.fillUpdate, 0.0);
    EXPECT_DOUBLE_EQ(c.snoopAlloc, 0.0);
}

TEST(RegionFilter, ClearResets)
{
    RegionFilter rf({8, 10}, amap());
    rf.onFill(0x4000);
    rf.clear();
    EXPECT_TRUE(rf.probe(0x4000));
}

TEST(RegionFilterDeathTest, UnderflowPanics)
{
    RegionFilter rf({8, 10}, amap());
    EXPECT_DEATH(rf.onEvict(0x4000), "underflow");
}

TEST(RegionFilter, SpecParses)
{
    EXPECT_TRUE(isValidFilterSpec("RF-8x10"));
    EXPECT_FALSE(isValidFilterSpec("RF-8"));
    auto f = makeFilter("RF-10x12", amap());
    EXPECT_EQ(f->name(), "RF-10x12");
}

TEST(RegionFilter, ComposesIntoHybrid)
{
    auto f = makeFilter("HJ(RF-8x12,EJ-16x2)", amap());
    EXPECT_EQ(f->name(), "HJ(RF-8x12,EJ-16x2)");
    EXPECT_TRUE(f->probe(0x4000));  // both sides empty -> RF filters
}

// ------------------------------------------------------ Latency model ----

TEST(LatencyModel, NoProbesNoChange)
{
    filter::FilterStats stats;
    const auto impact = sim::evaluateLatency(stats);
    EXPECT_DOUBLE_EQ(impact.meanChangePct(), 0.0);
}

TEST(LatencyModel, ZeroCoverageAddsJettyLatency)
{
    filter::FilterStats stats;
    stats.probes = 100;
    stats.filtered = 0;
    sim::LatencyParams p;
    const auto impact = sim::evaluateLatency(stats, p);
    EXPECT_NEAR(impact.jettyMeanCycles, p.l2TagCycles + p.jettyCycles,
                1e-12);
    EXPECT_GT(impact.meanChangePct(), 0.0);
}

TEST(LatencyModel, HighCoverageReducesMeanLatency)
{
    filter::FilterStats stats;
    stats.probes = 100;
    stats.filtered = 80;
    const auto impact = sim::evaluateLatency(stats);
    // 80% of snoops answer after 0.5 cycles instead of 12: a large win.
    EXPECT_LT(impact.meanChangePct(), 0.0);
    EXPECT_LT(impact.jettyMeanCycles, impact.baselineMeanCycles);
}

TEST(LatencyModel, WorstCaseIsSmallBusFraction)
{
    filter::FilterStats stats;
    stats.probes = 1;
    sim::LatencyParams p;
    const auto impact = sim::evaluateLatency(stats, p);
    // Section 2.2: the added latency is a small fraction of a bus cycle.
    EXPECT_LT(impact.worstCaseBusCycleFraction(p), 0.2);
}

TEST(LatencyModel, BreakEvenCoverage)
{
    // Mean latency is unchanged when filtered fraction equals
    // jetty/(tag) ... solve: f*j + (1-f)(j+t) = t  =>  f = j/t.
    sim::LatencyParams p;
    filter::FilterStats stats;
    stats.probes = 1000;
    stats.filtered = static_cast<std::uint64_t>(
        1000.0 * p.jettyCycles / p.l2TagCycles);
    const auto impact = sim::evaluateLatency(stats, p);
    EXPECT_NEAR(impact.meanChangePct(), 0.0, 0.5);
}

namespace
{

/** A synthetic run: @p refs per processor, @p txns spread evenly over
 *  @p buses. */
sim::SimStats
contentionStats(unsigned nprocs, unsigned buses, std::uint64_t refs,
                std::uint64_t txns)
{
    sim::SimStats stats(nprocs, buses);
    for (auto &proc : stats.procs)
        proc.accesses = refs;
    for (unsigned b = 0; b < buses; ++b)
        stats.perBus[b].transactions = txns / buses;
    stats.snoopTransactions = txns;
    return stats;
}

} // namespace

TEST(LatencyModel, SplittingTheBusDividesContention)
{
    // The same transaction load over one vs four buses: utilization and
    // the M/D/1 wait must fall with the bus count.
    sim::LatencyParams p;
    const auto one =
        sim::evaluateBusContention(contentionStats(4, 1, 600'000,
                                                   60'000), p);
    const auto four =
        sim::evaluateBusContention(contentionStats(4, 4, 600'000,
                                                   60'000), p);
    EXPECT_GT(one.busiestUtilization, 0.0);
    EXPECT_NEAR(four.busiestUtilization, one.busiestUtilization / 4.0,
                1e-9);
    EXPECT_LT(four.busiestWaitBusCycles, one.busiestWaitBusCycles);
    EXPECT_FALSE(one.saturated);
    EXPECT_FALSE(four.saturated);
}

TEST(LatencyModel, ContentionSaturationIsFlaggedAndFinite)
{
    // More bus occupancy than bus cycles: the model must flag
    // saturation and still report finite numbers.
    sim::LatencyParams p;
    const auto sat =
        sim::evaluateBusContention(contentionStats(4, 1, 60'000,
                                                   60'000), p);
    EXPECT_TRUE(sat.saturated);
    EXPECT_GE(sat.busiestUtilization, 1.0);
    EXPECT_TRUE(std::isfinite(sat.busiestWaitBusCycles));

    // Degenerate inputs: no buses recorded, or an empty run.
    EXPECT_EQ(sim::evaluateBusContention(sim::SimStats(0, 1), p)
                  .busiestUtilization,
              0.0);
}
