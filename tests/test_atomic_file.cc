/**
 * @file
 * Tests for atomic file publication (util/atomic_file.hh): the
 * invariant under test is that a file either appears complete at its
 * final path or does not appear at all — across success, abandonment,
 * and injected commit failure — and that the writers routed through it
 * (TraceFileWriter) inherit the same guarantee.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/trace_file.hh"
#include "trace/synthetic.hh"
#include "trace/apps.hh"
#include "util/atomic_file.hh"

using namespace jetty;

namespace
{

bool
fileExists(const std::string &path)
{
    struct stat st = {};
    return ::stat(path.c_str(), &st) == 0;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

TEST(AtomicFile, RoundTripPublishesExactBytes)
{
    const std::string path = ::testing::TempDir() + "jetty_atomic_rt.txt";
    std::remove(path.c_str());

    const std::string payload = "hello\natomic\nworld\n";
    util::writeFileAtomic(path, payload);
    EXPECT_EQ(slurp(path), payload);

    // Overwrite is also atomic: the new content replaces the old.
    util::writeFileAtomic(path, "second\n");
    EXPECT_EQ(slurp(path), "second\n");
    std::remove(path.c_str());
}

TEST(AtomicFile, UncommittedWriterLeavesNothingBehind)
{
    const std::string path = ::testing::TempDir() + "jetty_atomic_drop.txt";
    std::remove(path.c_str());
    std::string temp;
    {
        util::AtomicFile file(path);
        ASSERT_TRUE(file.stream() != nullptr) << file.error();
        temp = file.tempPath();
        std::fputs("half-written", file.stream());
        // No commit: the destructor must discard the temp file.
    }
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(temp));
}

TEST(AtomicFile, AbortedWriterPreservesPriorContent)
{
    const std::string path = ::testing::TempDir() + "jetty_atomic_keep.txt";
    util::writeFileAtomic(path, "original\n");
    {
        util::AtomicFile file(path);
        ASSERT_TRUE(file.stream() != nullptr) << file.error();
        std::fputs("replacement that never lands", file.stream());
        file.abort();
    }
    EXPECT_EQ(slurp(path), "original\n");
    std::remove(path.c_str());
}

TEST(AtomicFile, InjectedCommitFailureNeverTearsTheFinalPath)
{
    // Simulated ENOSPC/short write at commit time: the error must be
    // reported, the temp file removed, and the final path untouched
    // (absent when new, prior content intact when overwriting).
    const std::string path = ::testing::TempDir() + "jetty_atomic_fail.txt";
    std::remove(path.c_str());
    util::setAtomicCommitFailureHook(
        [](const std::string &p) {
            return p.find("jetty_atomic_fail") != std::string::npos;
        });

    const std::string err = util::writeFileAtomicErr(path, "doomed");
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(fileExists(path));

    // Same failure while overwriting: the old bytes survive.
    util::setAtomicCommitFailureHook(nullptr);
    util::writeFileAtomic(path, "survivor\n");
    util::setAtomicCommitFailureHook(
        [](const std::string &p) {
            return p.find("jetty_atomic_fail") != std::string::npos;
        });
    const std::string err2 = util::writeFileAtomicErr(path, "doomed again");
    EXPECT_FALSE(err2.empty());
    EXPECT_EQ(slurp(path), "survivor\n");

    util::setAtomicCommitFailureHook(nullptr);
    std::remove(path.c_str());
}

TEST(AtomicFile, TraceWriterAbandonedMidCaptureLeavesNoFile)
{
    // A TraceFileWriter destroyed before close() models a writer killed
    // mid-publish: nothing readable-but-wrong may exist at the path.
    const std::string path = ::testing::TempDir() + "jetty_atomic_cap.jtt";
    std::remove(path.c_str());
    const trace::Workload workload(trace::appByName("lu"), 2, 0.01);
    {
        trace::TraceFileWriter writer(path, 2);
        auto src = workload.makeSource(0);
        writer.append(trace::collect(*src, 1000));
        writer.endStream();
        // Second stream never written, close() never called.
    }
    EXPECT_FALSE(fileExists(path));

    // The complete protocol still publishes a readable capture.
    {
        trace::TraceFileWriter writer(path, 2);
        for (unsigned p = 0; p < 2; ++p) {
            auto src = workload.makeSource(p);
            writer.append(trace::collect(*src, 1000));
            writer.endStream();
        }
        writer.close();
    }
    EXPECT_TRUE(fileExists(path));
    EXPECT_EQ(trace::readTraceStream(path, 0).size(), 1000u);
    std::remove(path.c_str());
}
