#include "experiments/experiments.hh"

#include <cstdlib>

#include "core/filter_spec.hh"
#include "util/logging.hh"

namespace jetty::experiments
{

sim::SmpConfig
SystemVariant::smpConfig() const
{
    sim::SmpConfig cfg;
    cfg.nprocs = nprocs;
    cfg.l1.sizeBytes = 64 * 1024;
    cfg.l1.assoc = 1;
    cfg.l1.blockBytes = 32;
    cfg.l2.sizeBytes = 1024 * 1024;
    cfg.l2.assoc = 1;
    if (subblocked) {
        cfg.l2.blockBytes = 64;
        cfg.l2.subblocks = 2;
    } else {
        // The paper's "NSB" comparison system: coherence at whole-block
        // granularity. We keep 32 B blocks so the L1 line still equals
        // the coherence unit.
        cfg.l2.blockBytes = 32;
        cfg.l2.subblocks = 1;
    }
    cfg.wbEntries = 8;
    cfg.physAddrBits = 40;
    return cfg;
}

energy::CacheGeometry
SystemVariant::l2EnergyGeometry() const
{
    const sim::SmpConfig cfg = smpConfig();
    energy::CacheGeometry geom;
    geom.sizeBytes = cfg.l2.sizeBytes;
    // The paper's energy analysis (Sections 2.1 and 4.4) assumes a 4-way
    // set-associative 1MB L2 -- wide-tag lookups are the motivation for
    // filtering -- even though the WWT2-style functional simulation uses
    // a SPARC-like direct-mapped L2. We follow the same split.
    geom.assoc = 4;
    geom.blockBytes = cfg.l2.blockBytes;
    geom.subblocks = cfg.l2.subblocks;
    geom.physAddrBits = cfg.physAddrBits;
    geom.stateBitsPerUnit = 3;  // MOESI
    return geom;
}

std::vector<std::string>
allPaperFilterSpecs()
{
    std::vector<std::string> specs;
    for (const auto &s : filter::paperExcludeSpecs())
        specs.push_back(s);
    for (const auto &s : filter::paperVectorExcludeSpecs())
        specs.push_back(s);
    for (const auto &s : filter::paperIncludeSpecs())
        specs.push_back(s);
    for (const auto &s : filter::paperHybridSpecs())
        specs.push_back(s);
    return specs;
}

const filter::FilterStats &
AppRunResult::statsFor(const std::string &name) const
{
    for (std::size_t i = 0; i < filterNames.size(); ++i) {
        if (filterNames[i] == name)
            return filterStats[i];
    }
    fatal("AppRunResult: unknown filter '" + name + "'");
}

const energy::FilterEnergyCosts &
AppRunResult::costsFor(const std::string &name) const
{
    for (std::size_t i = 0; i < filterNames.size(); ++i) {
        if (filterNames[i] == name)
            return filterCosts[i];
    }
    fatal("AppRunResult: unknown filter '" + name + "'");
}

double
defaultScale()
{
    if (const char *env = std::getenv("JETTY_SCALE")) {
        const double v = std::atof(env);
        if (v > 0)
            return v;
        warn("ignoring non-positive JETTY_SCALE");
    }
    return 1.0;
}

AppRunResult
runApp(const trace::AppProfile &app, const SystemVariant &variant,
       const std::vector<std::string> &filterSpecs, double accessScale)
{
    if (accessScale <= 0)
        accessScale = defaultScale();

    sim::SmpConfig cfg = variant.smpConfig();
    cfg.filterSpecs = filterSpecs;

    trace::Workload workload(app, cfg.nprocs, accessScale);
    sim::SmpSystem system(cfg);

    std::vector<trace::TraceSourcePtr> sources;
    for (unsigned p = 0; p < cfg.nprocs; ++p)
        sources.push_back(workload.makeSource(p));
    system.attachSources(std::move(sources));
    system.run();

    AppRunResult res;
    res.appName = app.name;
    res.abbrev = app.abbrev;
    res.memoryAllocated = workload.memoryAllocated();
    res.stats = system.stats();
    res.traffic = system.mergedTraffic();

    const energy::Technology tech = energy::Technology::micron180();
    const auto &bank = system.bank(0);
    for (std::size_t i = 0; i < bank.size(); ++i) {
        res.filterNames.push_back(bank.filterAt(i).name());
        res.filterStats.push_back(system.mergedFilterStats(i));
        res.filterCosts.push_back(bank.filterAt(i).energyCosts(tech));
    }
    return res;
}

std::vector<AppRunResult>
runAllApps(const SystemVariant &variant,
           const std::vector<std::string> &specs, double accessScale)
{
    std::vector<AppRunResult> out;
    for (const auto &app : trace::paperApps())
        out.push_back(runApp(app, variant, specs, accessScale));
    return out;
}

EnergyResult
evaluateEnergy(const AppRunResult &run, const SystemVariant &variant,
               const std::string &name, energy::AccessMode mode)
{
    const energy::CacheEnergyModel model(variant.l2EnergyGeometry());
    const energy::EnergyAccountant accountant(model);

    const auto base = accountant.baseline(run.traffic, mode);
    const auto with = accountant.withFilter(
        run.traffic, mode, run.statsFor(name).traffic(), run.costsFor(name));

    EnergyResult res;
    res.reductionOverSnoopsPct =
        energy::EnergyAccountant::snoopReductionPct(base, with);
    res.reductionOverAllPct =
        energy::EnergyAccountant::totalReductionPct(base, with);
    return res;
}

} // namespace jetty::experiments
