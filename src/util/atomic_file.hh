/**
 * @file
 * Atomic file publication: every file the system emits for someone else
 * to read (trace captures, fuzz-repro sidecars, Reports, disk-cache
 * entries) must either appear complete at its final path or not appear
 * at all. The pre-existing writers fopen()'d the final path directly, so
 * a crash or a full disk left a truncated file exactly where a reader
 * (or the persistent RunCache) expected a valid one.
 *
 * The protocol is the classic one: write to a temp file in the *same
 * directory* (rename(2) is only atomic within a filesystem), check every
 * write, fsync, then rename onto the final path. An uncommitted
 * AtomicFile unlinks its temp file on destruction, so an abandoned or
 * crashed publication leaves nothing behind at the final path.
 */

#ifndef JETTY_UTIL_ATOMIC_FILE_HH
#define JETTY_UTIL_ATOMIC_FILE_HH

#include <cstdio>
#include <string>

namespace jetty::util
{

/**
 * A file being published atomically: stream() is an ordinary FILE* onto
 * a temp file beside @p path (seekable, so header-patching writers work
 * unchanged); commit() fsyncs and renames it onto @p path.
 *
 * Never calls fatal(): every failure is reported through error() /
 * commit()'s return value so best-effort writers (the disk cache) can
 * treat I/O failure as a non-event. Writers with a fatal() contract
 * check and escalate themselves.
 */
class AtomicFile
{
  public:
    /** Open a temp file next to @p path. On failure stream() is null
     *  and error() describes why. */
    explicit AtomicFile(const std::string &path);

    /** Unlinks the temp file unless commit() succeeded. */
    ~AtomicFile();

    AtomicFile(const AtomicFile &) = delete;
    AtomicFile &operator=(const AtomicFile &) = delete;

    /** The writable temp stream (null after open failure / commit). */
    std::FILE *stream() { return f_; }

    /** Final destination path. */
    const std::string &path() const { return path_; }

    /** Temp path the bytes are accumulating in ("" on open failure). */
    const std::string &tempPath() const { return temp_; }

    /** First error observed so far ("" when healthy). */
    const std::string &error() const { return err_; }

    /**
     * Flush, fsync and rename the temp file onto the final path.
     * @return "" on success; otherwise a description of the failure,
     *         after which the temp file has been removed and nothing
     *         exists (or pre-existing content survives) at the final
     *         path. Honors the fault-injection hook below.
     */
    std::string commit();

    /** Drop the temp file without publishing (idempotent). */
    void abort();

  private:
    std::string path_;
    std::string temp_;
    std::string err_;
    std::FILE *f_ = nullptr;
    bool committed_ = false;
};

/** Write @p bytes to @p path atomically; fatal() on failure. */
void writeFileAtomic(const std::string &path, const std::string &bytes);

/** Write @p bytes to @p path atomically.
 *  @return "" on success, else the failure description; the final path
 *          is untouched on failure (never a torn file). */
std::string writeFileAtomicErr(const std::string &path,
                               const std::string &bytes);

/**
 * Test seam: simulate an I/O failure (ENOSPC, short write) at commit
 * time. When set, a commit whose final path the hook returns true for
 * fails as if the flush had run out of disk, after removing its temp
 * file. Pass nullptr to clear. Not thread-safe against concurrent
 * commits — a test-only knob.
 */
void setAtomicCommitFailureHook(bool (*hook)(const std::string &path));

} // namespace jetty::util

#endif // JETTY_UTIL_ATOMIC_FILE_HH
