#include "trace/trace_file.hh"

#include <cstring>

#include "util/atomic_file.hh"
#include "util/logging.hh"

namespace jetty::trace
{

namespace
{

constexpr char kMagicV1[8] = {'J', 'T', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr char kMagicV2[8] = {'J', 'T', 'T', 'R', 'A', 'C', 'E', '2'};

/** Bytes before the v2 per-section count table. */
constexpr std::uint64_t kV2FixedHeaderBytes = 16;

/** I/O chunk for bulk encode/decode/digest (records and raw bytes). */
constexpr std::size_t kIoChunkBytes = 1 << 20;

std::uint64_t
fileSize(std::FILE *f, const std::string &path)
{
    if (::fseeko(f, 0, SEEK_END) != 0)
        fatal("trace file '" + path + "': cannot seek");
    const off_t end = ::ftello(f);
    if (end < 0)
        fatal("trace file '" + path + "': cannot tell size");
    return static_cast<std::uint64_t>(end);
}

void
writeLe64(std::FILE *f, std::uint64_t v, const std::string &what)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
    if (std::fwrite(b, 1, 8, f) != 8)
        fatal("writeTraceFile: " + what + " write failed");
}

void
writeLe32(std::FILE *f, std::uint32_t v, const std::string &what)
{
    unsigned char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
    if (std::fwrite(b, 1, 4, f) != 4)
        fatal("writeTraceFile: " + what + " write failed");
}

std::uint64_t
readLe64(std::FILE *f, const std::string &path)
{
    unsigned char b[8];
    if (std::fread(b, 1, 8, f) != 8)
        fatal("trace file '" + path + "': truncated header");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
}

std::uint32_t
readLe32(std::FILE *f, const std::string &path)
{
    unsigned char b[4];
    if (std::fread(b, 1, 4, f) != 4)
        fatal("trace file '" + path + "': truncated header");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
}

TraceFileInfo
parseInfo(std::FILE *f, const std::string &path)
{
    const std::uint64_t actual = fileSize(f, path);
    if (::fseeko(f, 0, SEEK_SET) != 0)
        fatal("trace file '" + path + "': cannot seek");

    char magic[8];
    if (std::fread(magic, 1, 8, f) != 8)
        fatal("trace file '" + path + "': bad header (too short)");

    TraceFileInfo info;
    if (std::memcmp(magic, kMagicV1, 8) == 0) {
        info.version = 1;
        info.counts.push_back(readLe32(f, path));
        (void)readLe32(f, path);  // reserved
        info.offsets.push_back(16);
    } else if (std::memcmp(magic, kMagicV2, 8) == 0) {
        info.version = 2;
        const std::uint32_t streams = readLe32(f, path);
        (void)readLe32(f, path);  // reserved
        if (streams == 0)
            fatal("trace file '" + path + "': no stream sections");
        std::uint64_t offset =
            kV2FixedHeaderBytes + std::uint64_t{streams} * 8;
        for (std::uint32_t s = 0; s < streams; ++s) {
            info.counts.push_back(readLe64(f, path));
            info.offsets.push_back(offset);
            offset += info.counts.back() * kTraceRecordBytes;
        }
    } else {
        fatal("trace file '" + path + "': bad header (unknown magic)");
    }

    // Validate the declared counts against the actual size *before* any
    // caller trusts them (a corrupt header must not drive a reserve()).
    // Incremental subtraction keeps the check overflow-safe for absurd
    // 64-bit counts.
    const std::uint64_t header = info.offsets.front();
    if (actual < header)
        fatal("trace file '" + path + "': bad header (too short)");
    std::uint64_t remaining = actual - header;
    for (const auto count : info.counts) {
        if (count > remaining / kTraceRecordBytes) {
            fatal("trace file '" + path +
                  "': header record count exceeds the file size "
                  "(corrupt or truncated)");
        }
        remaining -= count * kTraceRecordBytes;
    }
    if (remaining != 0) {
        fatal("trace file '" + path +
              "': file size inconsistent with header record counts");
    }
    return info;
}

} // namespace

TraceFileInfo
readTraceFileInfo(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("readTraceFileInfo: cannot open '" + path + "'");
    const TraceFileInfo info = parseInfo(f, path);
    std::fclose(f);
    return info;
}

// ---- Writers ----------------------------------------------------------

TraceFileWriter::TraceFileWriter(const std::string &path, unsigned streams)
    : path_(path)
{
    if (streams == 0)
        fatal("TraceFileWriter: need at least one stream section");
    out_ = std::make_unique<util::AtomicFile>(path);
    if (!out_->error().empty())
        fatal("TraceFileWriter: " + out_->error());
    f_ = out_->stream();
    if (std::fwrite(kMagicV2, 1, 8, f_) != 8)
        fatal("TraceFileWriter: header write failed for '" + path + "'");
    writeLe32(f_, streams, "stream count");
    writeLe32(f_, 0, "reserved field");
    // Placeholder counts; close() patches them.
    for (unsigned s = 0; s < streams; ++s)
        writeLe64(f_, 0, "count placeholder");
    counts_.assign(streams, 0);
}

TraceFileWriter::~TraceFileWriter()
{
    if (closed_)
        return;
    if (current_ == counts_.size()) {
        close();
    } else if (out_) {
        // Incomplete capture: discard the temp file — nothing appears
        // at the final path.
        out_->abort();
        f_ = nullptr;
    }
}

void
TraceFileWriter::append(const TraceRecord *recs, std::size_t n)
{
    if (closed_ || current_ >= counts_.size())
        fatal("TraceFileWriter: append past the last stream section");
    unsigned char buf[kIoChunkBytes > (1 << 16) ? (1 << 16) : kIoChunkBytes];
    std::size_t done = 0;
    while (done < n) {
        const std::size_t batch = std::min<std::size_t>(
            (n - done), sizeof(buf) / kTraceRecordBytes);
        for (std::size_t i = 0; i < batch; ++i) {
            if (recs[done + i].addr > kMaxTraceAddr) {
                fatal("TraceFileWriter: address exceeds the 56-bit record "
                      "encoding");
            }
            encodeTraceRecord(recs[done + i],
                              buf + i * kTraceRecordBytes);
        }
        if (std::fwrite(buf, kTraceRecordBytes, batch, f_) != batch)
            fatal("TraceFileWriter: record write failed for '" + path_ + "'");
        done += batch;
    }
    counts_[current_] += n;
    total_ += n;
}

void
TraceFileWriter::append(const std::vector<TraceRecord> &recs)
{
    append(recs.data(), recs.size());
}

void
TraceFileWriter::endStream()
{
    if (closed_ || current_ >= counts_.size())
        fatal("TraceFileWriter: endStream past the last stream section");
    ++current_;
}

void
TraceFileWriter::close()
{
    if (closed_)
        return;
    if (current_ != counts_.size()) {
        fatal("TraceFileWriter: close with unfinished stream sections in '" +
              path_ + "'");
    }
    if (::fseeko(f_, kV2FixedHeaderBytes, SEEK_SET) != 0)
        fatal("TraceFileWriter: cannot seek to patch counts");
    for (const auto count : counts_)
        writeLe64(f_, count, "count");
    const std::string why = out_->commit();
    if (!why.empty())
        fatal("TraceFileWriter: " + why);
    f_ = nullptr;
    closed_ = true;
}

void
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &records)
{
    TraceFileWriter writer(path, 1);
    writer.append(records);
    writer.endStream();
    writer.close();
}

void
writeTraceFileV1(const std::string &path,
                 const std::vector<TraceRecord> &records)
{
    util::AtomicFile out(path);
    if (!out.error().empty())
        fatal("writeTraceFile: " + out.error());
    std::FILE *f = out.stream();

    if (std::fwrite(kMagicV1, 1, 8, f) != 8)
        fatal("writeTraceFile: header write failed");
    writeLe32(f, static_cast<std::uint32_t>(records.size()), "count");
    writeLe32(f, 0, "reserved field");

    for (const auto &r : records) {
        unsigned char rec[kTraceRecordBytes];
        encodeTraceRecord(r, rec);
        if (std::fwrite(rec, 1, kTraceRecordBytes, f) !=
            kTraceRecordBytes) {
            fatal("writeTraceFile: record write failed");
        }
    }
    const std::string why = out.commit();
    if (!why.empty())
        fatal("writeTraceFile: " + why);
}

// ---- Readers ----------------------------------------------------------

std::vector<TraceRecord>
readTraceStream(const std::string &path, std::size_t stream)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("readTraceFile: cannot open '" + path + "'");
    const TraceFileInfo info = parseInfo(f, path);
    if (stream >= info.streams()) {
        fatal("readTraceStream: '" + path + "' has " +
              std::to_string(info.streams()) + " stream(s), requested " +
              std::to_string(stream));
    }
    if (::fseeko(f, static_cast<off_t>(info.offsets[stream]),
                    SEEK_SET) != 0) {
        fatal("readTraceStream: cannot seek in '" + path + "'");
    }

    const std::uint64_t count = info.counts[stream];
    std::vector<TraceRecord> records;
    records.reserve(count);  // safe: validated against the file size
    std::vector<unsigned char> buf(kIoChunkBytes);
    std::uint64_t left = count;
    while (left > 0) {
        const std::size_t batch = static_cast<std::size_t>(
            std::min<std::uint64_t>(left, buf.size() / kTraceRecordBytes));
        if (std::fread(buf.data(), kTraceRecordBytes, batch, f) != batch) {
            std::fclose(f);
            fatal("readTraceFile: truncated record in '" + path + "'");
        }
        for (std::size_t i = 0; i < batch; ++i)
            records.push_back(
                decodeTraceRecord(buf.data() + i * kTraceRecordBytes));
        left -= batch;
    }
    std::fclose(f);
    return records;
}

std::vector<TraceRecord>
readTraceFile(const std::string &path)
{
    const TraceFileInfo info = readTraceFileInfo(path);
    if (info.streams() != 1) {
        fatal("readTraceFile: '" + path + "' holds " +
              std::to_string(info.streams()) +
              " per-processor streams; use readTraceStream or "
              "FileStreamSource");
    }
    return readTraceStream(path, 0);
}

std::uint64_t
traceFileDigest(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("traceFileDigest: cannot open '" + path + "'");
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    std::vector<unsigned char> buf(kIoChunkBytes);
    std::size_t n;
    while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
        for (std::size_t i = 0; i < n; ++i) {
            hash ^= buf[i];
            hash *= 0x100000001b3ULL;
        }
    }
    if (std::ferror(f)) {
        std::fclose(f);
        fatal("traceFileDigest: read error in '" + path + "'");
    }
    std::fclose(f);
    return hash;
}

std::vector<TraceRecord>
collect(TraceSource &src, std::uint64_t limit)
{
    std::vector<TraceRecord> out;
    TraceRecord buf[4096];
    for (;;) {
        std::size_t want = sizeof(buf) / sizeof(buf[0]);
        if (limit != 0)
            want = static_cast<std::size_t>(
                std::min<std::uint64_t>(want, limit - out.size()));
        if (want == 0)
            break;
        const std::size_t got = src.nextBatch(buf, want);
        out.insert(out.end(), buf, buf + got);
        if (got < want)
            break;
    }
    return out;
}

} // namespace jetty::trace
