/**
 * @file
 * jetty_lint: the in-repo invariant checker.
 *
 * The guarantees this tree sells — jobs=1 vs jobs=N bit-identity, atomic
 * publication of every emitted file, lossless AppRunResult serialization,
 * and the executor's failures-are-returned-strings contract — are all
 * conventions no compiler checks. This tool checks them mechanically: a
 * dependency-free C++ tokenizer (no libclang) walks src/, tools/ and
 * bench/ and enforces each convention as a hard error with file:line and
 * a rule name.
 *
 * Rule catalogue (DESIGN.md "Static analysis & race detection"):
 *
 *   determinism     Entropy, wall-clock seeds and libc RNGs are banned
 *                   outside util/random.hh. Simulated numbers may depend
 *                   only on the spec and the seed; steady_clock timing of
 *                   *wall-clock* (never simulated) numbers stays legal.
 *   unordered       Hash-ordered container types are banned in the
 *                   sim/core/verify/experiments layers: iterating one
 *                   gives a host-dependent order, which is exactly how a
 *                   bit-identity contract rots. Ordered std::map costs
 *                   nothing at these sizes and cannot drift.
 *   atomic-write    Raw file-writing APIs (std::ofstream, fopen with a
 *                   writing mode, mkstemp) are banned outside
 *                   util/atomic_file.cc and util/json.cc. Every file this
 *                   tree publishes must appear atomically (PR 8's
 *                   contract): same-dir temp, fsync, rename.
 *   no-fatal        exit()/abort()/terminate() are banned in src/ outside
 *                   util/logging.hh (fatal()/panic() are the sanctioned
 *                   wrappers). The service executor's contract is that
 *                   failures come back as strings, never as a dead
 *                   process.
 *   serialization   The X-macro field lists in run_result_json.cc and
 *                   the shard envelope lists in dist/shard.cc must
 *                   losslessly cover every scalar member of the structs
 *                   they serialize (ProcStats, L2Traffic, FilterStats,
 *                   FilterEnergyCosts, BusStats, ShardRequest,
 *                   ShardResponse), and every member of the
 *                   hand-serialized structs (SimStats, AppRunResult,
 *                   plus the shard envelopes) must be referenced by its
 *                   serializer TU. A new counter that skips the list
 *                   silently corrupts the disk cache's bit-identity
 *                   guarantee — and a shard field that skips its list
 *                   silently diverges coordinator and worker; this rule
 *                   turns both into a build break naming the field.
 *   escape          Meta-rule: malformed or stale escape comments.
 *
 * Escape hatch: a finding is suppressed by
 *     // jetty-lint: allow(<rule>): <non-empty justification>
 * on the same line, or on a comment-only line immediately above. An
 * unknown rule name, a missing justification, or an escape that no
 * longer suppresses anything is itself an error — annotations cannot
 * rot in place.
 *
 * Exit status: 0 clean, 1 findings, 2 usage/IO error.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

#include "api/report.hh"
#include "util/json.hh"

namespace
{

// ---------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------

struct Finding
{
    std::string file;  //!< path relative to the scan root
    int line = 0;
    std::string rule;
    std::string message;
};

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

enum class TokKind
{
    Ident,
    Number,
    Str,
    Chr,
    Punct,
};

struct Token
{
    TokKind kind;
    std::string text;
    int line;
};

/** One comment, kept for escape-hatch parsing. */
struct Comment
{
    int line;       //!< line the comment starts on
    bool ownLine;   //!< nothing but whitespace precedes it on its line
    std::string text;
};

struct LexedFile
{
    std::vector<Token> toks;
    std::vector<Comment> comments;
};

bool
isIdentStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool
isIdentChar(char c)
{
    return isIdentStart(c) || (c >= '0' && c <= '9');
}

/** Tokenize C++ source: identifiers, numbers, string/char literals
 *  (including raw strings), punctuation; comments are captured
 *  separately. Preprocessor lines are tokenized like ordinary code. */
LexedFile
lex(const std::string &src)
{
    LexedFile out;
    const std::size_t n = src.size();
    std::size_t i = 0;
    int line = 1;
    bool line_has_code = false;

    const auto push = [&](TokKind k, std::string text, int at) {
        out.toks.push_back({k, std::move(text), at});
        line_has_code = true;
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            line_has_code = false;
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const int at = line;
            const bool own = !line_has_code;
            std::size_t j = i + 2;
            while (j < n && src[j] != '\n')
                ++j;
            out.comments.push_back({at, own, src.substr(i + 2, j - i - 2)});
            i = j;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const int at = line;
            const bool own = !line_has_code;
            std::size_t j = i + 2;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
                if (src[j] == '\n')
                    ++line;
                ++j;
            }
            out.comments.push_back({at, own, src.substr(i + 2, j - i - 2)});
            i = (j + 1 < n) ? j + 2 : n;
            continue;
        }
        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && src[j] != '(' && src[j] != '\n')
                delim += src[j++];
            const std::string closer = ")" + delim + "\"";
            const std::size_t end = src.find(closer, j);
            const std::size_t stop =
                end == std::string::npos ? n : end + closer.size();
            const int at = line;
            for (std::size_t k = i; k < stop; ++k)
                if (src[k] == '\n')
                    ++line;
            push(TokKind::Str, src.substr(i, stop - i), at);
            i = stop;
            continue;
        }
        // String / char literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            const int at = line;
            std::size_t j = i + 1;
            while (j < n && src[j] != quote) {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                else if (src[j] == '\n')
                    ++line;  // unterminated literal; stay robust
                ++j;
            }
            const std::size_t stop = j < n ? j + 1 : n;
            push(quote == '"' ? TokKind::Str : TokKind::Chr,
                 src.substr(i, stop - i), at);
            i = stop;
            continue;
        }
        // Identifier / keyword.
        if (isIdentStart(c)) {
            std::size_t j = i + 1;
            while (j < n && isIdentChar(src[j]))
                ++j;
            push(TokKind::Ident, src.substr(i, j - i), line);
            i = j;
            continue;
        }
        // Number (good enough: digits, dots, exponents, suffixes).
        if (c >= '0' && c <= '9') {
            std::size_t j = i + 1;
            while (j < n && (isIdentChar(src[j]) || src[j] == '.' ||
                             ((src[j] == '+' || src[j] == '-') && j > 0 &&
                              (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                               src[j - 1] == 'p' || src[j - 1] == 'P'))))
                ++j;
            push(TokKind::Number, src.substr(i, j - i), line);
            i = j;
            continue;
        }
        // Multi-char punctuation we care about: :: -> ; everything else
        // single char.
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            push(TokKind::Punct, "::", line);
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            push(TokKind::Punct, "->", line);
            i += 2;
            continue;
        }
        push(TokKind::Punct, std::string(1, c), line);
        ++i;
    }
    return out;
}

// ---------------------------------------------------------------------
// Escape hatch
// ---------------------------------------------------------------------

const std::set<std::string> &
knownRules()
{
    static const std::set<std::string> rules = {
        "determinism", "unordered", "atomic-write", "no-fatal",
        "serialization",
    };
    return rules;
}

/** One parsed `jetty-lint: allow(rule): why` annotation. */
struct Escape
{
    int targetLine;  //!< the line whose findings it suppresses
    int commentLine; //!< where the annotation itself sits
    std::string rule;
    bool used = false;
};

/** Extract allow() annotations (and malformed-annotation findings) from
 *  a file's comments. A trailing comment covers its own line; a
 *  comment-only line covers the next line. */
std::vector<Escape>
parseEscapes(const std::string &file, const std::vector<Comment> &comments,
             std::vector<Finding> &findings)
{
    std::vector<Escape> escapes;
    const std::string marker = "jetty-lint:";
    for (const auto &c : comments) {
        // The marker must open the comment (prose *mentioning* the
        // annotation format, like this file's header, is not an escape).
        const std::size_t at = c.text.find_first_not_of(" \t");
        if (at == std::string::npos ||
            c.text.compare(at, marker.size(), marker) != 0)
            continue;
        std::size_t pos = at + marker.size();
        const auto fail = [&](const std::string &why) {
            findings.push_back({file, c.line, "escape", why});
        };
        // allow(
        const std::size_t open = c.text.find("allow(", pos);
        if (open == std::string::npos) {
            fail("malformed jetty-lint annotation: expected "
                 "'allow(<rule>): <justification>'");
            continue;
        }
        const std::size_t close = c.text.find(')', open);
        if (close == std::string::npos) {
            fail("malformed jetty-lint annotation: unterminated allow(");
            continue;
        }
        const std::string rule =
            c.text.substr(open + 6, close - open - 6);
        if (knownRules().count(rule) == 0) {
            fail("unknown lint rule '" + rule + "' in allow()");
            continue;
        }
        // Required justification after "):".
        std::size_t j = close + 1;
        if (j < c.text.size() && c.text[j] == ':')
            ++j;
        while (j < c.text.size() &&
               (c.text[j] == ' ' || c.text[j] == '\t'))
            ++j;
        if (j >= c.text.size()) {
            fail("allow(" + rule +
                 ") needs a justification: '// jetty-lint: allow(" + rule +
                 "): <why this is safe>'");
            continue;
        }
        escapes.push_back(
            {c.ownLine ? c.line + 1 : c.line, c.line, rule, false});
    }
    return escapes;
}

// ---------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Layers where hash-ordered iteration can corrupt simulated numbers. */
bool
inDeterministicLayer(const std::string &rel)
{
    return startsWith(rel, "src/sim/") || startsWith(rel, "src/core/") ||
           startsWith(rel, "src/verify/") ||
           startsWith(rel, "src/experiments/");
}

bool
isAllowlisted(const std::string &rel, const char *rule)
{
    if (std::strcmp(rule, "determinism") == 0)
        return rel == "src/util/random.hh";
    if (std::strcmp(rule, "atomic-write") == 0)
        return rel == "src/util/atomic_file.cc" ||
               rel == "src/util/atomic_file.hh" || rel == "src/util/json.cc";
    if (std::strcmp(rule, "no-fatal") == 0)
        return rel == "src/util/logging.hh";
    return false;
}

// ---------------------------------------------------------------------
// Token-level rules
// ---------------------------------------------------------------------

struct FileCheck
{
    const std::string &rel;
    const std::vector<Token> &toks;
    std::vector<Finding> raw;  //!< pre-escape findings

    void
    add(int line, const char *rule, const std::string &msg)
    {
        raw.push_back({rel, line, rule, msg});
    }
};

const Token *
prev(const std::vector<Token> &t, std::size_t i, std::size_t back = 1)
{
    return i >= back ? &t[i - back] : nullptr;
}

const Token *
next(const std::vector<Token> &t, std::size_t i, std::size_t fwd = 1)
{
    return i + fwd < t.size() ? &t[i + fwd] : nullptr;
}

bool
isCall(const std::vector<Token> &t, std::size_t i)
{
    const Token *nx = next(t, i);
    return nx && nx->kind == TokKind::Punct && nx->text == "(";
}

/** True when the identifier at @p i is qualified by something other than
 *  `std` (Foo::bar — a project method, not the libc/std symbol). */
bool
nonStdQualified(const std::vector<Token> &t, std::size_t i)
{
    const Token *p1 = prev(t, i, 1);
    if (!p1 || p1->text != "::")
        return false;
    const Token *p2 = prev(t, i, 2);
    return p2 && !(p2->kind == TokKind::Ident && p2->text == "std");
}

bool
memberAccess(const std::vector<Token> &t, std::size_t i)
{
    const Token *p1 = prev(t, i, 1);
    return p1 && p1->kind == TokKind::Punct &&
           (p1->text == "." || p1->text == "->");
}

/** Heuristic: the identifier at @p i is being *declared* (method decl /
 *  definition), not called: `void abort();`, `AtomicFile::abort() {...}`. */
bool
isDeclaration(const std::vector<Token> &t, std::size_t i)
{
    static const std::set<std::string> typeish = {
        "void", "int", "bool", "auto", "char", "long", "unsigned", "~",
    };
    const Token *p1 = prev(t, i, 1);
    return p1 && typeish.count(p1->text) != 0;
}

void
checkDeterminism(FileCheck &fc)
{
    if (isAllowlisted(fc.rel, "determinism"))
        return;
    // Banned wherever they appear: entropy sources and wall-clock types
    // that could seed or perturb simulated numbers.
    static const std::map<std::string, std::string> banned_idents = {
        {"random_device", "std::random_device is entropy; seed from "
                          "util/random.hh (kDefaultRngSeed) instead"},
        {"system_clock", "system_clock is wall-clock state; simulated "
                         "numbers may depend only on spec + seed "
                         "(steady_clock is legal for timing)"},
        {"high_resolution_clock", "high_resolution_clock may alias "
                                  "system_clock; use steady_clock"},
        {"srand", "libc RNG seeding is banned; use jetty::Rng"},
        {"srandom", "libc RNG seeding is banned; use jetty::Rng"},
        {"rand_r", "libc RNG is banned; use jetty::Rng"},
        {"drand48", "libc RNG is banned; use jetty::Rng"},
        {"lrand48", "libc RNG is banned; use jetty::Rng"},
        {"mrand48", "libc RNG is banned; use jetty::Rng"},
        {"gettimeofday", "wall-clock reads are banned; steady_clock "
                         "timing via <chrono> is the sanctioned path"},
    };
    // Banned only in call form (the bare names are common words).
    static const std::map<std::string, std::string> banned_calls = {
        {"rand", "rand() is a hidden global RNG; use jetty::Rng"},
        {"random", "random() is a hidden global RNG; use jetty::Rng"},
        {"clock", "clock() reads host time; use steady_clock for "
                  "timing, never for simulated numbers"},
    };
    const auto &t = fc.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const auto bi = banned_idents.find(t[i].text);
        if (bi != banned_idents.end()) {
            fc.add(t[i].line, "determinism", bi->second);
            continue;
        }
        const auto bc = banned_calls.find(t[i].text);
        if (bc != banned_calls.end() && isCall(t, i) &&
            !memberAccess(t, i) && !nonStdQualified(t, i) &&
            !isDeclaration(t, i)) {
            fc.add(t[i].line, "determinism", bc->second);
            continue;
        }
        // Arg-less time(): time(0) / time(NULL) / time(nullptr).
        if (t[i].text == "time" && isCall(t, i) && !memberAccess(t, i) &&
            !nonStdQualified(t, i)) {
            const Token *a = next(t, i, 2);
            const Token *b = next(t, i, 3);
            if (a && b && b->text == ")" &&
                (a->text == "0" || a->text == "NULL" ||
                 a->text == "nullptr")) {
                fc.add(t[i].line, "determinism",
                       "time(" + a->text +
                           ") is a wall-clock seed; simulated numbers "
                           "may depend only on spec + seed");
            }
        }
    }
}

void
checkUnordered(FileCheck &fc)
{
    if (!inDeterministicLayer(fc.rel))
        return;
    static const char *const kUnorderedTypes[] = {
        // Spelled split so jetty_lint stays clean under its own scan.
        "unordered" "_map", "unordered" "_set", "unordered" "_multimap",
        "unordered" "_multiset",
    };
    const auto &t = fc.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        for (const char *type : kUnorderedTypes) {
            if (t[i].text == type) {
                fc.add(t[i].line, "unordered",
                       std::string("std::") + type +
                           " iterates in hash order, which is "
                           "host-dependent; the " +
                           "sim/core/verify/experiments layers carry a "
                           "bit-identity contract — use std::map / "
                           "std::set or a sorted vector");
                break;
            }
        }
    }
}

void
checkAtomicWrite(FileCheck &fc)
{
    if (isAllowlisted(fc.rel, "atomic-write"))
        return;
    const auto &t = fc.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        if (t[i].text == "ofstream" || t[i].text == "mkstemp" ||
            t[i].text == "mkostemp") {
            fc.add(t[i].line, "atomic-write",
                   t[i].text + " bypasses atomic publication; write "
                               "through util/atomic_file.hh "
                               "(AtomicFile / writeFileAtomic) or "
                               "json::writeFile");
            continue;
        }
        if ((t[i].text == "fopen" || t[i].text == "freopen") &&
            isCall(t, i) && !memberAccess(t, i) && !nonStdQualified(t, i)) {
            // The mode is argument 2 for both fopen and freopen. Walk
            // the argument list at depth 1.
            std::size_t j = i + 2;  // first token after '('
            int depth = 1;
            int arg = 1;
            const Token *mode = nullptr;
            for (; j < t.size() && depth > 0; ++j) {
                const std::string &x = t[j].text;
                if (t[j].kind == TokKind::Punct) {
                    if (x == "(" || x == "[" || x == "{")
                        ++depth;
                    else if (x == ")" || x == "]" || x == "}")
                        --depth;
                    else if (x == "," && depth == 1) {
                        ++arg;
                        continue;
                    }
                }
                if (arg == 2 && !mode)
                    mode = &t[j];
            }
            if (!mode) {
                fc.add(t[i].line, "atomic-write",
                       t[i].text + " with no mode argument");
            } else if (mode->kind != TokKind::Str) {
                fc.add(t[i].line, "atomic-write",
                       t[i].text + " mode is not a string literal; the "
                                   "lint cannot prove it read-only");
            } else if (mode->text.find('w') != std::string::npos ||
                       mode->text.find('a') != std::string::npos ||
                       mode->text.find('+') != std::string::npos) {
                fc.add(t[i].line, "atomic-write",
                       t[i].text + " with writing mode " + mode->text +
                           " bypasses atomic publication; use "
                           "util/atomic_file.hh (same-dir temp, fsync, "
                           "rename)");
            }
        }
    }
}

void
checkNoFatal(FileCheck &fc)
{
    if (!startsWith(fc.rel, "src/"))
        return;  // tools/ and bench/ are executables; exiting is their job
    if (isAllowlisted(fc.rel, "no-fatal"))
        return;
    static const std::set<std::string> banned = {
        "exit", "abort", "_exit", "_Exit", "quick_exit", "terminate",
    };
    const auto &t = fc.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || banned.count(t[i].text) == 0)
            continue;
        if (!isCall(t, i))
            continue;  // a name, not a call
        if (memberAccess(t, i))
            continue;  // obj.abort() — a project method
        if (nonStdQualified(t, i))
            continue;  // AtomicFile::abort() { — definition/qualified call
        if (isDeclaration(t, i))
            continue;  // void abort(); — declaring a method
        fc.add(t[i].line, "no-fatal",
               t[i].text + "() kills the process; library code returns "
                           "failures as strings (service executor "
                           "contract) — or goes through "
                           "util/logging.hh fatal()/panic() for "
                           "construction-time invariants");
    }
}

// ---------------------------------------------------------------------
// Serialization completeness (cross-file)
// ---------------------------------------------------------------------

struct MemberInfo
{
    std::string name;
    int line;
    bool scalar;  //!< counter-like: uint64/double/bool/... (not a struct)
};

struct StructDef
{
    std::string file;
    int line = 0;
    std::vector<MemberInfo> members;
    bool found = false;
};

struct MacroList
{
    std::string file;
    int line = 0;
    std::vector<MemberInfo> entries;
    bool found = false;
};

/** Parse the instance members of `struct <name> { ... };` wherever it is
 *  defined in @p toks. Function declarations (anything with parentheses
 *  before the terminating ';'), static/constexpr members, and nested
 *  types are skipped. */
bool
parseStruct(const std::vector<Token> &t, const std::string &name,
            StructDef &out)
{
    static const std::set<std::string> scalar_types = {
        "uint64_t", "uint32_t", "int64_t", "int32_t", "uint8_t",
        "int8_t",   "size_t",   "double",  "float",   "bool",
        "int",      "unsigned", "long",    "short",   "char",
        "string",
    };
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident ||
            (t[i].text != "struct" && t[i].text != "class"))
            continue;
        if (t[i + 1].text != name)
            continue;
        // Skip to the opening brace; a ';' first means forward decl.
        std::size_t j = i + 2;
        while (j < t.size() && t[j].text != "{" && t[j].text != ";")
            ++j;
        if (j >= t.size() || t[j].text == ";")
            continue;
        out.line = t[i].line;
        // Walk the body at depth 1, collecting declaration spans.
        int depth = 1;
        std::vector<const Token *> span;
        bool skip_decl = false;  // static / constexpr / using / friend
        bool has_paren = false;
        for (++j; j < t.size() && depth > 0; ++j) {
            const Token &x = t[j];
            if (x.kind == TokKind::Punct) {
                if (x.text == "{") {
                    // Method body or brace initializer: skip to match.
                    int d = 1;
                    for (++j; j < t.size() && d > 0; ++j) {
                        if (t[j].text == "{")
                            ++d;
                        else if (t[j].text == "}")
                            --d;
                    }
                    --j;
                    // A method body also terminates a declaration.
                    if (has_paren) {
                        span.clear();
                        skip_decl = false;
                        has_paren = false;
                    }
                    continue;
                }
                if (x.text == "}") {
                    --depth;
                    continue;
                }
                if (x.text == "(")
                    has_paren = true;
                if (x.text == ";") {
                    if (!skip_decl && !has_paren && span.size() >= 2) {
                        // Type tokens ... then declarator name(s).
                        // Multi-declarators split at top-level commas.
                        std::vector<std::vector<const Token *>> chunks(1);
                        int angle = 0;
                        for (const Token *s : span) {
                            if (s->text == "<")
                                ++angle;
                            else if (s->text == ">")
                                angle = angle > 0 ? angle - 1 : 0;
                            if (s->text == "," && angle == 0)
                                chunks.emplace_back();
                            else
                                chunks.back().push_back(s);
                        }
                        const bool is_scalar =
                            std::any_of(span.begin(), span.end(),
                                        [&](const Token *s) {
                                            return scalar_types.count(
                                                       s->text) != 0;
                                        });
                        for (const auto &chunk : chunks) {
                            // Name: last identifier before '=' / '{',
                            // else the last identifier of the chunk.
                            const Token *nm = nullptr;
                            for (const Token *s : chunk) {
                                if (s->text == "=")
                                    break;
                                if (s->kind == TokKind::Ident)
                                    nm = s;
                            }
                            // The lone type token of a chunk with no
                            // declarator (e.g. `};` artifacts) — require
                            // at least type + name in chunk 0.
                            if (nm && !(chunk.size() == 1 &&
                                        &chunk == &chunks.front()))
                                out.members.push_back(
                                    {nm->text, nm->line, is_scalar});
                        }
                    }
                    span.clear();
                    skip_decl = false;
                    has_paren = false;
                    continue;
                }
            }
            if (x.kind == TokKind::Ident &&
                (x.text == "static" || x.text == "constexpr" ||
                 x.text == "using" || x.text == "typedef" ||
                 x.text == "friend" || x.text == "struct" ||
                 x.text == "class" || x.text == "enum"))
                skip_decl = true;
            if (depth == 1)
                span.push_back(&x);
        }
        out.found = true;
        return true;
    }
    return false;
}

/** Extract `X(field)` / `X(field, kind)` entries from
 *  `#define <macro>(X)` continuation blocks in raw text (the X-macro
 *  field lists of run_result_json.cc and dist/shard.cc — the shard
 *  envelope lists carry a second reader-kind argument; only the field
 *  name participates in the completeness contract). */
bool
parseMacroList(const std::string &src, const std::string &macro,
               MacroList &out)
{
    std::size_t pos = 0;
    int line = 1;
    while (pos < src.size()) {
        std::size_t eol = src.find('\n', pos);
        if (eol == std::string::npos)
            eol = src.size();
        std::string l = src.substr(pos, eol - pos);
        std::size_t ws = l.find_first_not_of(" \t");
        if (ws != std::string::npos && l[ws] == '#' &&
            l.find("define", ws) != std::string::npos &&
            l.find(macro, ws) != std::string::npos) {
            out.line = line;
            out.found = true;
            // Consume the continuation block.
            std::string body;
            int at = line;
            while (true) {
                body += l;
                body += '\n';
                const bool cont = !l.empty() && l.back() == '\\';
                if (!cont)
                    break;
                pos = eol + 1;
                ++line;
                if (pos >= src.size())
                    break;
                eol = src.find('\n', pos);
                if (eol == std::string::npos)
                    eol = src.size();
                l = src.substr(pos, eol - pos);
            }
            // Scan body for X(ident).
            int bl = at;
            for (std::size_t i = 0; i < body.size(); ++i) {
                if (body[i] == '\n') {
                    ++bl;
                    continue;
                }
                if (body[i] == 'X' && i + 1 < body.size() &&
                    body[i + 1] == '(' &&
                    (i == 0 || !isIdentChar(body[i - 1]))) {
                    std::size_t j = i + 2;
                    std::string ident;
                    while (j < body.size() && isIdentChar(body[j]))
                        ident += body[j++];
                    if (j < body.size() &&
                        (body[j] == ')' || body[j] == ',') &&
                        !ident.empty())
                        out.entries.push_back({ident, bl, true});
                    i = j;
                }
            }
            return true;
        }
        pos = eol + 1;
        ++line;
    }
    return false;
}

// ---------------------------------------------------------------------
// Directory walking
// ---------------------------------------------------------------------

bool
hasSourceSuffix(const std::string &name)
{
    const auto ends = [&](const char *suf) {
        const std::size_t ln = std::strlen(suf);
        return name.size() >= ln &&
               name.compare(name.size() - ln, ln, suf) == 0;
    };
    return ends(".cc") || ends(".hh") || ends(".cpp") || ends(".hpp") ||
           ends(".h");
}

void
collectFiles(const std::string &root, const std::string &rel,
             std::vector<std::string> &out)
{
    const std::string dir = root + "/" + rel;
    DIR *d = opendir(dir.c_str());
    if (!d)
        return;
    std::vector<std::string> names;
    while (struct dirent *e = readdir(d)) {
        if (e->d_name[0] == '.')
            continue;
        names.emplace_back(e->d_name);
    }
    closedir(d);
    std::sort(names.begin(), names.end());  // deterministic scan order
    for (const auto &name : names) {
        const std::string sub = rel + "/" + name;
        struct stat st;
        if (stat((root + "/" + sub).c_str(), &st) != 0)
            continue;
        if (S_ISDIR(st.st_mode))
            collectFiles(root, sub, out);
        else if (S_ISREG(st.st_mode) && hasSourceSuffix(name))
            out.push_back(sub);
    }
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return true;
}

// ---------------------------------------------------------------------
// Serialization completeness driver
// ---------------------------------------------------------------------

struct SerializationPair
{
    const char *macro;   //!< X-macro list name in the serializer
    const char *strct;   //!< struct whose scalar members it must cover
    const char *file;    //!< serializer TU basename the list lives in
};

/** The lossless-serialization contract: each X-macro list covers every
 *  scalar member of its struct. The disk-cache lists live in
 *  run_result_json.cc; the distributed shard envelope lists live in
 *  dist/shard.cc (two-arg entries — name plus reader kind). */
constexpr SerializationPair kPairs[] = {
    {"JETTY_PROC_STAT_FIELDS", "ProcStats", "run_result_json.cc"},
    {"JETTY_L2_TRAFFIC_FIELDS", "L2Traffic", "run_result_json.cc"},
    {"JETTY_FILTER_STAT_FIELDS", "FilterStats", "run_result_json.cc"},
    {"JETTY_FILTER_COST_FIELDS", "FilterEnergyCosts",
     "run_result_json.cc"},
    {"JETTY_BUS_STAT_FIELDS", "BusStats", "run_result_json.cc"},
    {"JETTY_SHARD_REQUEST_FIELDS", "ShardRequest", "shard.cc"},
    {"JETTY_SHARD_RESPONSE_FIELDS", "ShardResponse", "shard.cc"},
};

struct ReferencedStruct
{
    const char *strct;  //!< struct serialized by hand-written code
    const char *file;   //!< serializer TU basename that must name
                        //!< every member
};

/** Structs whose members must at least be *referenced* by their
 *  serializer TU (hand-written code, not X macros, serializes the
 *  non-scalar parts, so completeness is checked by member-name
 *  reference). */
constexpr ReferencedStruct kReferencedStructs[] = {
    {"SimStats", "run_result_json.cc"},
    {"AppRunResult", "run_result_json.cc"},
    {"ShardRequest", "shard.cc"},
    {"ShardResponse", "shard.cc"},
};

struct ScannedFile
{
    std::string rel;
    std::string text;
    LexedFile lexed;
};

void
checkSerialization(const std::vector<ScannedFile> &files,
                   std::vector<Finding> &findings)
{
    // Locate a serializer TU by basename (if the tree has one).
    const auto findByBase = [&files](const char *base) {
        const ScannedFile *hit = nullptr;
        for (const auto &f : files) {
            const std::size_t slash = f.rel.find_last_of('/');
            const std::string b = slash == std::string::npos
                                      ? f.rel
                                      : f.rel.substr(slash + 1);
            if (b == base) {
                hit = &f;
                break;
            }
        }
        return hit;
    };

    for (const auto &pair : kPairs) {
        // Find the struct definition anywhere in the scanned tree.
        StructDef def;
        for (const auto &f : files) {
            StructDef candidate;
            if (parseStruct(f.lexed.toks, pair.strct, candidate)) {
                if (def.found) {
                    findings.push_back(
                        {f.rel, candidate.line, "serialization",
                         std::string("duplicate definition of struct ") +
                             pair.strct + " (also in " + def.file +
                             "); the serialization contract needs one"});
                    continue;
                }
                def = candidate;
                def.file = f.rel;
            }
        }
        // Find the macro list (in the serializer TU if present, else
        // anywhere — fixture trees keep them in one file).
        MacroList list;
        for (const auto &f : files) {
            MacroList candidate;
            if (parseMacroList(f.text, pair.macro, candidate)) {
                list = candidate;
                list.file = f.rel;
                break;
            }
        }

        if (!def.found && !list.found)
            continue;  // this tree has neither side of the pair
        if (def.found && !list.found) {
            findings.push_back(
                {def.file, def.line, "serialization",
                 std::string("struct ") + pair.strct +
                     " has no " + pair.macro + " X-macro list in " +
                     pair.file +
                     "; its counters would not survive the disk cache"});
            continue;
        }
        if (list.found && !def.found) {
            findings.push_back(
                {list.file, list.line, "serialization",
                 std::string(pair.macro) + " exists but struct " +
                     pair.strct + " was not found in the scanned tree"});
            continue;
        }

        std::set<std::string> in_list;
        for (const auto &e : list.entries)
            in_list.insert(e.name);
        std::set<std::string> in_struct;
        for (const auto &m : def.members)
            if (m.scalar)
                in_struct.insert(m.name);

        for (const auto &m : def.members) {
            if (m.scalar && in_list.count(m.name) == 0)
                findings.push_back(
                    {def.file, m.line, "serialization",
                     std::string(pair.strct) + "::" + m.name +
                         " is missing from " + pair.macro + " (" +
                         list.file + ":" + std::to_string(list.line) +
                         "); a run restored from the disk cache would "
                         "silently drop it"});
        }
        for (const auto &e : list.entries) {
            if (in_struct.count(e.name) == 0)
                findings.push_back(
                    {list.file, e.line, "serialization",
                     std::string(pair.macro) + " names '" + e.name +
                         "', which is not a scalar member of " +
                         pair.strct + " (" + def.file + ":" +
                         std::to_string(def.line) + ") — stale entry?"});
        }
    }

    // Reference completeness for the hand-serialized structs: every
    // member must at least be named in that struct's serializer TU.
    for (const auto &rs : kReferencedStructs) {
        const ScannedFile *serializer = findByBase(rs.file);
        if (!serializer)
            continue;
        std::set<std::string> serializer_idents;
        for (const auto &tok : serializer->lexed.toks)
            if (tok.kind == TokKind::Ident)
                serializer_idents.insert(tok.text);
        StructDef def;
        for (const auto &f : files) {
            if (parseStruct(f.lexed.toks, rs.strct, def)) {
                def.file = f.rel;
                break;
            }
        }
        if (!def.found)
            continue;
        for (const auto &m : def.members) {
            if (serializer_idents.count(m.name) == 0)
                findings.push_back(
                    {def.file, m.line, "serialization",
                     std::string(rs.strct) + "::" + m.name +
                         " is never referenced in " + rs.file +
                         "; the serialized round trip would drop it"});
        }
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--json FILE] [--list-rules] [PATH...]\n"
        "\n"
        "Checks the project invariants (determinism, atomic publication,\n"
        "lossless serialization, library-never-fatal) over src/, tools/\n"
        "and bench/ under --root (default: the current directory).\n"
        "PATH arguments (relative to the root) restrict the scan.\n"
        "\n"
        "  --root DIR     tree to scan\n"
        "  --json FILE    write findings as a structured api::Report\n"
        "  --list-rules   print the rule names allow() accepts\n"
        "\n"
        "Escape hatch (same line, or a comment-only line directly above):\n"
        "  // jetty-lint: allow(<rule>): <justification>\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string json_out;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            json_out = argv[++i];
        } else if (arg == "--list-rules") {
            for (const auto &r : knownRules())
                std::printf("%s\n", r.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "jetty_lint: unknown option '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }

    // Collect the file set.
    std::vector<std::string> rels;
    if (paths.empty()) {
        for (const char *dir : {"src", "tools", "bench"})
            collectFiles(root, dir, rels);
    } else {
        for (const auto &p : paths) {
            struct stat st;
            const std::string full = root + "/" + p;
            if (stat(full.c_str(), &st) != 0) {
                std::fprintf(stderr, "jetty_lint: cannot stat %s\n",
                             full.c_str());
                return 2;
            }
            if (S_ISDIR(st.st_mode))
                collectFiles(root, p, rels);
            else
                rels.push_back(p);
        }
    }
    if (rels.empty()) {
        std::fprintf(stderr,
                     "jetty_lint: no source files under %s "
                     "(src/, tools/, bench/)\n",
                     root.c_str());
        return 2;
    }

    // Read + lex everything once (the serialization pass is cross-file).
    std::vector<ScannedFile> files;
    files.reserve(rels.size());
    for (const auto &rel : rels) {
        ScannedFile f;
        f.rel = rel;
        if (!readFile(root + "/" + rel, f.text)) {
            std::fprintf(stderr, "jetty_lint: cannot read %s/%s\n",
                         root.c_str(), rel.c_str());
            return 2;
        }
        f.lexed = lex(f.text);
        files.push_back(std::move(f));
    }

    std::vector<Finding> findings;

    // Token-level rules, with per-file escape application.
    for (const auto &f : files) {
        FileCheck fc{f.rel, f.lexed.toks, {}};
        checkDeterminism(fc);
        checkUnordered(fc);
        checkAtomicWrite(fc);
        checkNoFatal(fc);

        std::vector<Escape> escapes =
            parseEscapes(f.rel, f.lexed.comments, findings);
        for (const auto &raw : fc.raw) {
            bool suppressed = false;
            for (auto &e : escapes) {
                if (e.rule == raw.rule && (e.targetLine == raw.line ||
                                           e.commentLine == raw.line)) {
                    e.used = true;
                    suppressed = true;
                }
            }
            if (!suppressed)
                findings.push_back(raw);
        }
        for (const auto &e : escapes) {
            if (!e.used)
                findings.push_back(
                    {f.rel, e.commentLine, "escape",
                     "stale escape: allow(" + e.rule +
                         ") suppresses nothing on line " +
                         std::to_string(e.targetLine) +
                         " — remove the annotation"});
        }
    }

    // Cross-file serialization completeness (escapes do not apply: a
    // missing field has no line to annotate).
    checkSerialization(files, findings);

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });

    for (const auto &f : findings)
        std::printf("%s:%d: error: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());

    if (!json_out.empty()) {
        jetty::api::Report report("lint");
        auto &rootv = report.root();
        rootv.set("files_scanned",
                  static_cast<std::uint64_t>(files.size()));
        rootv.set("clean", findings.empty());
        jetty::json::Value arr = jetty::json::Value::array();
        for (const auto &f : findings) {
            jetty::json::Value row = jetty::json::Value::object();
            row.set("file", f.file);
            row.set("line", static_cast<std::uint64_t>(f.line));
            row.set("rule", f.rule);
            row.set("message", f.message);
            arr.push(std::move(row));
        }
        rootv.set("findings", std::move(arr));
        report.writeFile(json_out);
    }

    if (findings.empty()) {
        std::printf("jetty_lint: %zu files clean\n", files.size());
        return 0;
    }
    std::printf("jetty_lint: %zu finding%s in %zu files\n", findings.size(),
                findings.size() == 1 ? "" : "s", files.size());
    return 1;
}
