/**
 * @file
 * The one spec-execution path shared by the CLI (`jetty_cli
 * run/sweep/replay`) and the experiment service (`jetty_cli serve`).
 *
 * Both front ends hand a loaded ExperimentSpec to resolveSpec() (fill
 * the verb's defaults, validate through the spec's own schema, check
 * variant compatibility) and then executeResolved() (expand to
 * RunRequests, answer them through the shared two-tier RunCache, build
 * the api::Report tree). Because the report tree is built once, here, a
 * report served over the wire is bit-identical to the file the direct
 * CLI invocation would have written for the same spec.
 *
 * Everything reports failure as a returned string instead of fatal():
 * the CLI turns it into its usual fatal() diagnostic, the server into
 * an ok=false response — a malformed job must never take the daemon
 * down.
 */

#ifndef JETTY_SERVICE_EXECUTOR_HH
#define JETTY_SERVICE_EXECUTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "api/experiment_spec.hh"
#include "api/report.hh"
#include "experiments/experiments.hh"
#include "util/json.hh"

namespace jetty::service
{

/** The paper's standard filter trio — the default filter set of
 *  run/replay/bench/serve (single source of truth; the CLI and the
 *  server must not drift apart). */
const std::vector<std::string> &defaultFilterSpecs();

/**
 * The execution kind a bare spec asks for, decided by its shape (the
 * service has no subcommand word): sweep axes or several apps -> sweep;
 * trace files -> replay; otherwise run. Fuzz and bench sections are
 * rejected (they need the dedicated local subcommands).
 * @return "run" / "sweep" / "replay", or "" with @p err set.
 */
std::string chooseKind(const api::ExperimentSpec &spec, std::string *err);

/**
 * Resolve @p spec in place for @p kind ("run" / "sweep" / "replay"):
 * fill the kind's defaults (workload, filters, scale, sweep axes,
 * replay processor inference), reject sections the kind cannot honour,
 * round-trip through the spec schema, and require a variant-compatible
 * machine. Idempotent: resolving an already-resolved spec is a no-op,
 * so a spec resolved by the CLI and re-resolved by the server stays
 * byte-identical.
 * @return "" on success, else the diagnostic.
 */
std::string resolveSpec(api::ExperimentSpec &spec, const std::string &kind);

/** Everything one executed spec produced. */
struct ExecuteResult
{
    std::string kind;
    api::ExperimentSpec spec;  //!< as executed (resolved)

    /** Canonical filter names, report column order. */
    std::vector<std::string> filterNames;

    /** The expanded requests and their answers, parallel vectors. */
    std::vector<experiments::RunRequest> requests;
    std::vector<experiments::AppRunResult> runs;

    /** The full api::Report tree ("run"/"sweep"/"replay" schema). */
    json::Value report;

    /** RunCache counter deltas over this execution. */
    std::uint64_t simulated = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t memHits = 0;

    /** Wall clock of the runMany() call. */
    double sweepSeconds = 0;
};

/**
 * Execute a spec already resolved for @p kind through the shared
 * RunCache, filling @p out.
 * @param jobs SweepRunner worker override (0 = shared default pool).
 * @return "" on success, else the diagnostic (@p out unspecified).
 */
std::string executeResolved(const api::ExperimentSpec &spec,
                            const std::string &kind, unsigned jobs,
                            ExecuteResult &out);

/** chooseKind + resolveSpec + executeResolved in one step (the server's
 *  whole job handler). */
std::string executeSpec(api::ExperimentSpec spec, unsigned jobs,
                        ExecuteResult &out);

/** The spec's filter specs canonicalized under its machine's address
 *  map — results carry canonical names, so these are the lookup keys
 *  and report column headers. */
std::vector<std::string>
canonicalFilterNames(const api::ExperimentSpec &spec);

/**
 * Build the api::Report tree for an executed spec from its expanded
 * requests and their answers. This is the ONE place a report is
 * assembled — executeResolved() and the distributed sweep merger
 * (dist::Coordinator) both call it, so a merged distributed report is
 * byte-identical to the single-process report by construction.
 */
json::Value buildReport(const api::ExperimentSpec &spec,
                        const std::string &kind,
                        const std::vector<std::string> &filterNames,
                        const std::vector<experiments::RunRequest> &requests,
                        const std::vector<experiments::AppRunResult> &runs);

} // namespace jetty::service

#endif // JETTY_SERVICE_EXECUTOR_HH
