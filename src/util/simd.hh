/**
 * @file
 * Width-agnostic SIMD kernels for the packed snoop-probe data paths.
 *
 * PR 4 flattened the hot filter state into contiguous packed words — the
 * L2's (tag << 1) | valid frame words, the exclude-JETTY's
 * (tag << 1) | present entry words, the include-JETTY's 64-per-word
 * p-bit array, the write-back buffer's 64-bit Bloom signature — exactly
 * so the batched replay loops could scan them more than one element per
 * step. This header is that step: four tiny kernels (equality scan,
 * p-bit gather-accumulate, one-hot multiplicative hash, and the L1
 * batch pre-classifier over packed (tag << 2) | writable | valid tag
 * words) with one implementation per ISA tier and a portable scalar
 * reference.
 *
 * Tier selection is two-level. The configure-time level picks the
 * family: the CMake option `JETTY_SIMD=OFF` defines JETTY_SIMD_DISABLED
 * and forces the scalar tier everywhere; otherwise the compiler target
 * decides between x86 (SSE2 baseline), NEON, and scalar. On x86 the
 * batch kernels additionally carry an AVX2 variant compiled with the
 * `target("avx2")` function attribute and selected once at run time via
 * cpuid — x86-64 builds with default flags (no -march) still run the
 * gather/variable-shift kernels at full width on AVX2 hardware, while
 * the same binary falls back to SSE2/scalar elsewhere. The per-element
 * findEqU64 scan stays a compile-time choice: its inputs are a handful
 * of ways, where an out-of-line dispatch call would cost more than the
 * scan.
 *
 * Every kernel is semantically identical across tiers —
 * tests/test_simd.cc asserts the dispatch tier against the scalar
 * reference over alignments, tail lengths and 56-bit addresses — so the
 * simulated numbers never depend on the tier, only the wall clock does.
 *
 * The scalar namespace is always compiled, whatever the active tier: it
 * is both the fallback and the test oracle.
 */

#ifndef JETTY_UTIL_SIMD_HH
#define JETTY_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>

#if !defined(JETTY_SIMD_DISABLED)
#  if defined(__AVX2__) || defined(__SSE2__) || defined(_M_X64) || \
      defined(_M_AMD64) || defined(__x86_64__)
#    define JETTY_SIMD_X86 1
#    include <immintrin.h>
#    if defined(__AVX2__)
#      define JETTY_SIMD_AVX2_NATIVE 1
#    endif
#  elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#    define JETTY_SIMD_NEON 1
#    include <arm_neon.h>
#  endif
#endif

// The AVX2 batch kernels are compiled as target("avx2") functions and
// picked at run time, so they exist whenever the compiler can emit them
// for x86 — not only under -mavx2.
#if defined(JETTY_SIMD_X86) && (defined(__GNUC__) || defined(__clang__))
#  define JETTY_SIMD_AVX2_KERNELS 1
#  if defined(JETTY_SIMD_AVX2_NATIVE)
#    define JETTY_SIMD_TARGET_AVX2
#  else
#    define JETTY_SIMD_TARGET_AVX2 __attribute__((target("avx2")))
#  endif
#endif

namespace jetty::simd
{

/** True when the running CPU offers AVX2 and the build may use it. */
inline bool
haveAvx2()
{
#if defined(JETTY_SIMD_AVX2_NATIVE)
    return true;
#elif defined(JETTY_SIMD_AVX2_KERNELS)
    static const bool have = __builtin_cpu_supports("avx2") != 0;
    return have;
#else
    return false;
#endif
}

/** 64-bit lanes of one batch-kernel step on this run (1 = scalar). */
inline unsigned
lanesU64()
{
#if defined(JETTY_SIMD_X86)
    return haveAvx2() ? 4 : 2;
#elif defined(JETTY_SIMD_NEON)
    return 2;
#else
    return 1;
#endif
}

/** The active tier, for report provenance (BENCH_*.json baselines
 *  record which kernels produced their timings). */
inline const char *
isaName()
{
#if defined(JETTY_SIMD_X86)
    return haveAvx2() ? "avx2" : "sse2";
#elif defined(JETTY_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/** Read-prefetch @p p into a near cache level; a hint, never semantics. */
inline void
prefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0, 1);
#else
    (void)p;
#endif
}

/** A no-way-matched verdict of l1Classify. */
constexpr std::uint8_t kL1NoWay = 0xFF;
/** Set in an l1Classify verdict when the matched way is writable. */
constexpr std::uint8_t kL1Writable = 0x80;

// ---- portable reference kernels (always compiled: fallback + oracle) --

namespace scalar
{

/** First index in [0, n) with words[i] == key, else -1. */
inline int
findEqU64(const std::uint64_t *words, std::size_t n, std::uint64_t key)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (words[i] == key)
            return static_cast<int>(i);
    }
    return -1;
}

/**
 * Include-JETTY p-bit lookup for one sub-array over @p n addresses:
 * slot = ((addr >> shift) & mask) | base, and absent[k] |= 1 when the
 * slot's packed p-bit is clear. Accumulating |= lets the caller fold
 * the N sub-arrays into one per-address "guaranteed absent" verdict.
 */
inline void
pbitAbsentAccum(const std::uint64_t *pbits, const std::uint64_t *addrs,
                std::size_t n, unsigned shift, std::uint64_t mask,
                std::uint64_t base, std::uint8_t *absent)
{
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t slot = ((addrs[k] >> shift) & mask) | base;
        const std::uint64_t bit = (pbits[slot >> 6] >> (slot & 63)) & 1;
        absent[k] |= static_cast<std::uint8_t>(bit ^ 1);
    }
}

/**
 * One-hot multiplicative hash (the write-back buffer's Bloom-signature
 * bit) over @p n keys: out[k] = 1 << (((keys[k] >> preShift) * mul)
 * >> postShift). @p postShift must be >= 58 so the shift amount fits a
 * 64-bit mask.
 */
inline void
oneHotHash(const std::uint64_t *keys, std::size_t n, unsigned preShift,
           std::uint64_t mul, unsigned postShift, std::uint64_t *out)
{
    for (std::size_t k = 0; k < n; ++k) {
        out[k] = std::uint64_t{1}
                 << (((keys[k] >> preShift) * mul) >> postShift);
    }
}

/**
 * Batched L1 way selection over packed tag words (the pre-classifier's
 * Stage-1 scan). The cache stores one word per (set, way) frame,
 * words[(set << assocShift) + way] = (tag << 2) | (writable << 1) |
 * valid, with set = (addr >> offsetBits) & setMask and
 * tag = addr >> tagShift. For each address the kernel reports which way
 * holds a valid matching tag: out[k] = way | (kL1Writable when that
 * way's line is writable), or kL1NoWay when none matches.
 *
 * Caller contract: at most one *valid* way of a set may carry a given
 * tag (L1Cache::fill panics on duplicates), so match selection needs no
 * first-match ordering — matches are exclusive. assocShift must keep
 * way indices below kL1Writable.
 */
inline void
l1Classify(const std::uint64_t *words, const std::uint64_t *addrs,
           std::size_t n, unsigned offsetBits, std::uint64_t setMask,
           unsigned tagShift, unsigned assocShift, std::uint8_t *out)
{
    const unsigned assoc = 1u << assocShift;
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t a = addrs[k];
        const std::uint64_t base = ((a >> offsetBits) & setMask)
                                   << assocShift;
        const std::uint64_t key = ((a >> tagShift) << 2) | 1;
        std::uint8_t r = kL1NoWay;
        for (unsigned w = 0; w < assoc; ++w) {
            const std::uint64_t word = words[base + w];
            if ((word & ~std::uint64_t{2}) == key) {
                r = static_cast<std::uint8_t>(
                    w | ((word & 2) ? kL1Writable : 0));
                break;
            }
        }
        out[k] = r;
    }
}

} // namespace scalar

// ---- AVX2 batch kernels (x86: run-time selected) ----------------------

#if defined(JETTY_SIMD_AVX2_KERNELS)

namespace avx2
{

JETTY_SIMD_TARGET_AVX2 inline int
findEqU64(const std::uint64_t *words, std::size_t n, std::uint64_t key)
{
    const __m256i keyv =
        _mm256_set1_epi64x(static_cast<long long>(key));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i));
        const int m = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, keyv)));
        if (m)
            return static_cast<int>(i) + __builtin_ctz(m);
    }
    const int tail = scalar::findEqU64(words + i, n - i, key);
    return tail < 0 ? -1 : static_cast<int>(i) + tail;
}

JETTY_SIMD_TARGET_AVX2 inline void
pbitAbsentAccum(const std::uint64_t *pbits, const std::uint64_t *addrs,
                std::size_t n, unsigned shift, std::uint64_t mask,
                std::uint64_t base, std::uint8_t *absent)
{
    const __m128i shiftv = _mm_cvtsi32_si128(static_cast<int>(shift));
    const __m256i maskv =
        _mm256_set1_epi64x(static_cast<long long>(mask));
    const __m256i basev =
        _mm256_set1_epi64x(static_cast<long long>(base));
    const __m256i onev = _mm256_set1_epi64x(1);
    const __m256i c63 = _mm256_set1_epi64x(63);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(addrs + k));
        const __m256i slot = _mm256_or_si256(
            _mm256_and_si256(_mm256_srl_epi64(av, shiftv), maskv), basev);
        const __m256i word = _mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(pbits),
            _mm256_srli_epi64(slot, 6), 8);
        const __m256i bit = _mm256_and_si256(
            _mm256_srlv_epi64(word, _mm256_and_si256(slot, c63)), onev);
        alignas(32) std::uint64_t lane[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lane),
                           _mm256_xor_si256(bit, onev));
        absent[k + 0] |= static_cast<std::uint8_t>(lane[0]);
        absent[k + 1] |= static_cast<std::uint8_t>(lane[1]);
        absent[k + 2] |= static_cast<std::uint8_t>(lane[2]);
        absent[k + 3] |= static_cast<std::uint8_t>(lane[3]);
    }
    scalar::pbitAbsentAccum(pbits, addrs + k, n - k, shift, mask, base,
                            absent + k);
}

JETTY_SIMD_TARGET_AVX2 inline void
oneHotHash(const std::uint64_t *keys, std::size_t n, unsigned preShift,
           std::uint64_t mul, unsigned postShift, std::uint64_t *out)
{
    const __m128i prev = _mm_cvtsi32_si128(static_cast<int>(preShift));
    const __m128i postv = _mm_cvtsi32_si128(static_cast<int>(postShift));
    const __m256i mulv =
        _mm256_set1_epi64x(static_cast<long long>(mul));
    const __m256i onev = _mm256_set1_epi64x(1);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i a = _mm256_srl_epi64(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(keys + k)),
            prev);
        // 64x64 -> low 64 multiply from 32-bit partial products (no
        // vpmullq below AVX-512): lo*lo + ((lo*hi + hi*lo) << 32).
        const __m256i cross = _mm256_add_epi64(
            _mm256_mul_epu32(a, _mm256_srli_epi64(mulv, 32)),
            _mm256_mul_epu32(_mm256_srli_epi64(a, 32), mulv));
        const __m256i prod = _mm256_add_epi64(
            _mm256_mul_epu32(a, mulv), _mm256_slli_epi64(cross, 32));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + k),
            _mm256_sllv_epi64(onev, _mm256_srl_epi64(prod, postv)));
    }
    scalar::oneHotHash(keys + k, n - k, preShift, mul, postShift, out + k);
}

JETTY_SIMD_TARGET_AVX2 inline void
l1Classify(const std::uint64_t *words, const std::uint64_t *addrs,
           std::size_t n, unsigned offsetBits, std::uint64_t setMask,
           unsigned tagShift, unsigned assocShift, std::uint8_t *out)
{
    const __m128i offv = _mm_cvtsi32_si128(static_cast<int>(offsetBits));
    const __m128i tagv = _mm_cvtsi32_si128(static_cast<int>(tagShift));
    const __m128i asv = _mm_cvtsi32_si128(static_cast<int>(assocShift));
    const __m256i setmaskv =
        _mm256_set1_epi64x(static_cast<long long>(setMask));
    const __m256i onev = _mm256_set1_epi64x(1);
    const __m256i nottwov = _mm256_set1_epi64x(~2ll);
    const __m256i nowayv = _mm256_set1_epi64x(kL1NoWay);
    const unsigned assoc = 1u << assocShift;
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(addrs + k));
        const __m256i basev = _mm256_sll_epi64(
            _mm256_and_si256(_mm256_srl_epi64(av, offv), setmaskv), asv);
        const __m256i keyv = _mm256_or_si256(
            _mm256_slli_epi64(_mm256_srl_epi64(av, tagv), 2), onev);
        __m256i resv = nowayv;
        for (unsigned w = 0; w < assoc; ++w) {
            const __m256i wordv = _mm256_i64gather_epi64(
                reinterpret_cast<const long long *>(words + w), basev, 8);
            const __m256i eqv = _mm256_cmpeq_epi64(
                _mm256_and_si256(wordv, nottwov), keyv);
            // way | (writable-bit << 7); matches are exclusive per the
            // caller contract, so a blend per way needs no ordering.
            const __m256i valv = _mm256_or_si256(
                _mm256_set1_epi64x(w),
                _mm256_slli_epi64(
                    _mm256_and_si256(_mm256_srli_epi64(wordv, 1), onev),
                    7));
            resv = _mm256_blendv_epi8(resv, valv, eqv);
        }
        alignas(32) std::uint64_t lane[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lane), resv);
        out[k + 0] = static_cast<std::uint8_t>(lane[0]);
        out[k + 1] = static_cast<std::uint8_t>(lane[1]);
        out[k + 2] = static_cast<std::uint8_t>(lane[2]);
        out[k + 3] = static_cast<std::uint8_t>(lane[3]);
    }
    scalar::l1Classify(words, addrs + k, n - k, offsetBits, setMask,
                       tagShift, assocShift, out + k);
}

} // namespace avx2

#endif // JETTY_SIMD_AVX2_KERNELS

// ---- dispatch kernels (active tier) -----------------------------------

#if defined(JETTY_SIMD_X86)

inline int
findEqU64(const std::uint64_t *words, std::size_t n, std::uint64_t key)
{
#if defined(JETTY_SIMD_AVX2_NATIVE)
    return avx2::findEqU64(words, n, key);
#else
    // Per-lookup scan over a handful of ways: always the inline SSE2
    // body — a run-time dispatch call costs more than it saves here.
    const __m128i keyv = _mm_set1_epi64x(static_cast<long long>(key));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(words + i));
        // SSE2 has no 64-bit compare: AND the 32-bit equality halves.
        const __m128i eq32 = _mm_cmpeq_epi32(v, keyv);
        const __m128i eq64 = _mm_and_si128(
            eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
        const int m = _mm_movemask_pd(_mm_castsi128_pd(eq64));
        if (m)
            return static_cast<int>(i) + __builtin_ctz(m);
    }
    const int tail = scalar::findEqU64(words + i, n - i, key);
    return tail < 0 ? -1 : static_cast<int>(i) + tail;
#endif
}

inline void
pbitAbsentAccum(const std::uint64_t *pbits, const std::uint64_t *addrs,
                std::size_t n, unsigned shift, std::uint64_t mask,
                std::uint64_t base, std::uint8_t *absent)
{
#if defined(JETTY_SIMD_AVX2_KERNELS)
    if (haveAvx2()) {
        avx2::pbitAbsentAccum(pbits, addrs, n, shift, mask, base, absent);
        return;
    }
#endif
    // No gather below AVX2: the p-bit lookup stays scalar.
    scalar::pbitAbsentAccum(pbits, addrs, n, shift, mask, base, absent);
}

inline void
oneHotHash(const std::uint64_t *keys, std::size_t n, unsigned preShift,
           std::uint64_t mul, unsigned postShift, std::uint64_t *out)
{
#if defined(JETTY_SIMD_AVX2_KERNELS)
    if (haveAvx2()) {
        avx2::oneHotHash(keys, n, preShift, mul, postShift, out);
        return;
    }
#endif
    // 64-bit multiply and per-lane variable shift need AVX2: scalar.
    scalar::oneHotHash(keys, n, preShift, mul, postShift, out);
}

inline void
l1Classify(const std::uint64_t *words, const std::uint64_t *addrs,
           std::size_t n, unsigned offsetBits, std::uint64_t setMask,
           unsigned tagShift, unsigned assocShift, std::uint8_t *out)
{
#if defined(JETTY_SIMD_AVX2_KERNELS)
    // Direct-mapped excepted: its lookup is one scalar load per
    // address, and a plain unrolled load loop out-runs vpgatherqq on
    // every AVX2 part we measured — the gather only pays once it
    // replaces a whole multi-way scan.
    if (assocShift > 0 && haveAvx2()) {
        avx2::l1Classify(words, addrs, n, offsetBits, setMask, tagShift,
                         assocShift, out);
        return;
    }
#endif
    // The per-address packed-word gather needs AVX2: scalar below it.
    scalar::l1Classify(words, addrs, n, offsetBits, setMask, tagShift,
                       assocShift, out);
}

#elif defined(JETTY_SIMD_NEON)

inline int
findEqU64(const std::uint64_t *words, std::size_t n, std::uint64_t key)
{
    const uint64x2_t keyv = vdupq_n_u64(key);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t eq = vceqq_u64(vld1q_u64(words + i), keyv);
        if (vgetq_lane_u64(eq, 0))
            return static_cast<int>(i);
        if (vgetq_lane_u64(eq, 1))
            return static_cast<int>(i) + 1;
    }
    const int tail = scalar::findEqU64(words + i, n - i, key);
    return tail < 0 ? -1 : static_cast<int>(i) + tail;
}

/** NEON has no gather: the p-bit lookup stays scalar on this tier. */
inline void
pbitAbsentAccum(const std::uint64_t *pbits, const std::uint64_t *addrs,
                std::size_t n, unsigned shift, std::uint64_t mask,
                std::uint64_t base, std::uint8_t *absent)
{
    scalar::pbitAbsentAccum(pbits, addrs, n, shift, mask, base, absent);
}

inline void
oneHotHash(const std::uint64_t *keys, std::size_t n, unsigned preShift,
           std::uint64_t mul, unsigned postShift, std::uint64_t *out)
{
    scalar::oneHotHash(keys, n, preShift, mul, postShift, out);
}

/** NEON has no gather: the L1 classify scan stays scalar on this tier. */
inline void
l1Classify(const std::uint64_t *words, const std::uint64_t *addrs,
           std::size_t n, unsigned offsetBits, std::uint64_t setMask,
           unsigned tagShift, unsigned assocShift, std::uint8_t *out)
{
    scalar::l1Classify(words, addrs, n, offsetBits, setMask, tagShift,
                       assocShift, out);
}

#else  // portable scalar tier

inline int
findEqU64(const std::uint64_t *words, std::size_t n, std::uint64_t key)
{
    return scalar::findEqU64(words, n, key);
}

inline void
pbitAbsentAccum(const std::uint64_t *pbits, const std::uint64_t *addrs,
                std::size_t n, unsigned shift, std::uint64_t mask,
                std::uint64_t base, std::uint8_t *absent)
{
    scalar::pbitAbsentAccum(pbits, addrs, n, shift, mask, base, absent);
}

inline void
oneHotHash(const std::uint64_t *keys, std::size_t n, unsigned preShift,
           std::uint64_t mul, unsigned postShift, std::uint64_t *out)
{
    scalar::oneHotHash(keys, n, preShift, mul, postShift, out);
}

inline void
l1Classify(const std::uint64_t *words, const std::uint64_t *addrs,
           std::size_t n, unsigned offsetBits, std::uint64_t setMask,
           unsigned tagShift, unsigned assocShift, std::uint8_t *out)
{
    scalar::l1Classify(words, addrs, n, offsetBits, setMask, tagShift,
                       assocShift, out);
}

#endif

} // namespace jetty::simd

#endif // JETTY_UTIL_SIMD_HH
