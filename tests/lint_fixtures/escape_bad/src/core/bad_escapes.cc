// Fixture: three broken escapes — no justification (the violation must
// still be reported), an unknown rule name, and a stale annotation.
#include <cstdint>
#include <unordered_map>  // jetty-lint: allow(unordered)

namespace jetty::filter
{

// jetty-lint: allow(speed): not a rule
struct Scratch
{
    // jetty-lint: allow(determinism): nothing on the next line violates determinism
    std::uint64_t counter = 0;
};

} // namespace jetty::filter
