#include "sim/smp_system.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace jetty::sim
{

using coherence::BusOp;
using coherence::BusResponse;
using coherence::State;

namespace
{

/** Rows classified per Stage-1 window extension. Large enough to keep
 *  the SIMD classify kernel's lanes full, small enough that a miss
 *  invalidating the window (the L1 generation moved) throws away
 *  little work. Any value is bit-identical. */
constexpr std::size_t kClassifyWindowMin = 8;
constexpr std::size_t kClassifyWindowMax = 128;

/** Consecutive fully-Hit drain sweeps required before Stage 3 hands
 *  control back to the run splitter. One all-Hit sweep right after a
 *  miss is often a lull, not a run — re-entering Stage 1 for it pays
 *  the window bookkeeping only to fall straight back into the drain. */
constexpr std::size_t kDrainExitStreak = 1;

} // namespace

filter::AddressMap
SmpConfig::addressMap() const
{
    filter::AddressMap amap;
    amap.unitOffsetBits = floorLog2(l2.unitBytes());
    amap.blockOffsetBits = floorLog2(l2.blockBytes);
    amap.physAddrBits = physAddrBits;
    amap.l2CapacityUnits = l2.sizeBytes / l2.unitBytes();
    return amap;
}

SmpSystem::SmpSystem(const SmpConfig &cfg)
    : cfg_(cfg),
      interconnect_(cfg.snoopBuses, floorLog2(cfg.l2.blockBytes)),
      stats_(cfg.nprocs, cfg.snoopBuses)
{
    if (cfg.nprocs < 2)
        fatal("SmpSystem: an SMP needs at least two processors");
    if (cfg.l1.blockBytes != cfg.l2.unitBytes())
        fatal("SmpSystem: the L1 line must equal the L2 coherence unit");

    const filter::AddressMap amap = cfg.addressMap();
    for (unsigned p = 0; p < cfg.nprocs; ++p) {
        auto node = std::make_unique<Node>();
        node->l1 = std::make_unique<mem::L1Cache>(cfg.l1);
        node->l2 = std::make_unique<mem::L2Cache>(cfg.l2);
        node->wb = std::make_unique<mem::WritebackBuffer>(cfg.wbEntries);
        node->bank = std::make_unique<filter::FilterBank>(
            cfg.filterSpecs, amap, cfg.checkSafety, cfg.snoopBuses);
        node->l2->addListener(node->bank.get());
        nodes_.push_back(std::move(node));
    }
    if (cfg.replayThreads > 1)
        replayPool_ = std::make_unique<WorkerPool>(cfg.replayThreads);
}

void
SmpSystem::flushAllBanks()
{
    if (!replayPool_) {
        for (auto &node : nodes_)
            node->bank->flushDeferred();
        return;
    }
    // Parallel replay over independent (node, filter) tasks. Each task
    // replays one bank's bus queues through one filter, bus-major —
    // exactly the sequential flush's work unit — touching only that
    // filter and its stats slot, so any schedule yields the sequential
    // result. prepareFlush snapshots the violation counters up front;
    // completeFlush takes the panic decision after the join, walking
    // nodes (and filters within each bank) in ascending order, so a
    // safety failure reports deterministically however the replay ran.
    replayTasks_.clear();
    preparedBanks_.clear();
    for (auto &node : nodes_) {
        filter::FilterBank *const bank = node->bank.get();
        if (!bank->prepareFlush())
            continue;
        preparedBanks_.push_back(bank);
        for (std::size_t f = 0; f < bank->size(); ++f)
            replayTasks_.push_back({bank, f});
    }
    replayPool_->parallelFor(
        replayTasks_.size(), [this](std::size_t t) {
            replayTasks_[t].bank->replayOne(replayTasks_[t].filterIdx);
        });
    for (filter::FilterBank *bank : preparedBanks_)
        bank->completeFlush();
}

void
SmpSystem::attachSources(std::vector<trace::TraceSourcePtr> sources)
{
    if (sources.size() != nodes_.size())
        fatal("SmpSystem::attachSources: need one source per processor");
    for (unsigned p = 0; p < nodes_.size(); ++p) {
        nodes_[p]->source = std::move(sources[p]);
        nodes_[p]->sourceDone = nodes_[p]->source == nullptr;
        nodes_[p]->batchPos = 0;
        nodes_[p]->batchLen = 0;
    }
}

bool
SmpSystem::refillBatch(Node &node)
{
    const std::size_t want = cfg_.batchRefs >= 1 ? cfg_.batchRefs : 1;
    if (node.batch.size() != want)
        node.batch.resize(want);
    node.batchLen = node.source->nextBatch(node.batch.data(), want);
    node.batchPos = 0;
    if (node.batchLen == 0) {
        node.sourceDone = true;
        return false;
    }
    return true;
}

bool
SmpSystem::step()
{
    bool any = false;
    for (unsigned p = 0; p < nodes_.size(); ++p) {
        Node &node = *nodes_[p];
        if (node.sourceDone)
            continue;
        if (node.batchPos == node.batchLen && !refillBatch(node))
            continue;
        const trace::TraceRecord rec = node.batch[node.batchPos++];
        any = true;
        processorAccess(p, rec.type, rec.addr);
    }
    return any;
}

void
SmpSystem::run()
{
    // With an observer attached, take the step() route: it funnels every
    // reference through processorAccess(), which is where the hooks
    // fire, and it is bit-identical to the batched loop below (asserted
    // in test_sim). The hooks-unset hot path is untouched.
    if (observer_ || probeObserved_) {
        while (step()) {
        }
        return;
    }

    // The batched hot loop: a three-stage pipeline over chunks of the
    // round-robin schedule (DESIGN.md, "Batched miss pipeline"). The
    // interleaving is exactly step()'s — one reference per live
    // processor per sweep — but the chunk is walked as runs instead of
    // references:
    //
    //  Stage 1 classifies windows of upcoming references per processor
    //  through the vectorized L1 pre-classifier (classifyBatch — pure
    //  reads, verdicts pinned to the L1's generation counter);
    //  Stage 2 retires the maximal all-Hit schedule prefix in bulk
    //  (hits touch only their own L1's LRU/dirty state, never another
    //  processor and never a verdict, so per-lane retirement order is
    //  bit-identical to the interleaved order);
    //  Stage 3 drains the non-Hit run one schedule slot at a time —
    //  misses interact across processors (fill states, evictions, WB
    //  FIFOs), so their coherence work cannot be reordered — but with
    //  the per-run setup batched: signature bits via simd::oneHotHash,
    //  home-bus routing, and L2 set prefetches are prepared for whole
    //  runs, and the per-bus occupancy counters accumulate in
    //  chunk-local deltas folded bus-major at the chunk boundary.
    //
    // The filter banks run deferred throughout: every snoop observation
    // and L2 fill/evict notification is queued per home snoop bus and
    // replayed through the per-filter batched probe path at chunk
    // boundaries (FilterBank::flushDeferred). Both routes make
    // identical coherence state changes, so run(), step()-driven loops,
    // and every batchRefs value produce bit-identical statistics (and
    // with snoopBuses == 1 the deferred replay is the exact
    // immediate-observation order, making the filter numbers
    // bit-identical too).
    const unsigned nprocs = static_cast<unsigned>(nodes_.size());
    const Addr unit_mask = ~(static_cast<Addr>(cfg_.l2.unitBytes()) - 1);

    // Walk mode. With a direct-mapped L1 a probe is one scalar load, and
    // the fused drain — classify-and-retire in a single pass per row —
    // out-runs the three-stage pipeline's separate classify/scan/retire
    // array passes on every workload we measured, hit-heavy ones
    // included. An associative L1 flips the trade: there the SIMD
    // pre-classifier replaces a whole multi-way tag scan per reference,
    // and the run splitter pays for itself. Both walks retire the same
    // schedule in the same order, so the choice is invisible in the
    // statistics (asserted by test_differential across geometries).
    const bool fused_walk = cfg_.l1.assoc == 1;

    for (auto &node : nodes_)
        node->bank->beginDeferred();
    deferActive_ = true;
    chunkBus_.assign(interconnect_.buses(), BusStats{});
    chunkBusProbes_.assign(interconnect_.buses(), 0);

    // Live processors in ascending id order (the round-robin order),
    // with their nodes resolved once per chunk so the per-reference
    // loop does no unique_ptr chasing.
    std::vector<ProcId> live;
    std::vector<Node *> liveNodes;
    live.reserve(nprocs);
    liveNodes.reserve(nprocs);
    if (lanes_.size() < nprocs)
        lanes_.resize(nprocs);

    for (;;) {
        // Top up every live batch and size the next chunk of sweeps: all
        // live processors can serve at least `rounds` full sweeps without
        // another exhaustion or refill check. A processor leaves the live
        // set only at a batch boundary, which is exactly when step()
        // semantics would discover its exhaustion — the (proc, record)
        // issue order is untouched.
        live.clear();
        liveNodes.clear();
        std::size_t rounds = ~std::size_t{0};
        for (unsigned p = 0; p < nprocs; ++p) {
            Node &node = *nodes_[p];
            if (node.sourceDone)
                continue;
            if (node.batchPos == node.batchLen && !refillBatch(node))
                continue;
            live.push_back(p);
            liveNodes.push_back(&node);
            rounds = std::min(rounds, node.batchLen - node.batchPos);
        }
        if (live.empty())
            break;
        const std::size_t nlive = live.size();

        // Pin each lane to its slice of the trace batch, then (for the
        // associative walk only) decode the chunk once: unit-aligned
        // addresses and write flags per lane row, in the layout the
        // SIMD kernels consume. The fused walk skips the decode pass —
        // its drain reads the records directly.
        for (std::size_t li = 0; li < nlive; ++li) {
            Lane &ls = lanes_[li];
            Node &node = *liveNodes[li];
            ls.rec = node.batch.data() + node.batchPos;
            ls.l1 = node.l1.get();
            ls.clsTo = 0;
            ls.win = kClassifyWindowMin;
            ls.gen = node.l1->generation();
            node.batchPos += rounds;
            if (fused_walk)
                continue;
            if (ls.unit.size() < rounds) {
                ls.unit.resize(rounds);
                ls.write.resize(rounds);
                ls.outcome.resize(rounds);
                ls.waySel.resize(rounds);
                ls.sigBit.resize(rounds);
            }
            for (std::size_t row = 0; row < rounds; ++row) {
                ls.unit[row] = ls.rec[row].addr & unit_mask;
                ls.write[row] = static_cast<std::uint8_t>(
                    ls.rec[row].type == AccessType::Write);
            }
        }

        std::size_t r = 0;
        while (r < rounds) {
            // ---- Stages 1+2 (associative walk only): split off the
            // maximal prefix of rounds in which every lane's verdict is
            // Hit, and retire it in bulk. No verdict goes stale inside
            // the prefix: Stage 1 only reads, and hit retirement never
            // moves a generation.
            if (!fused_walk) {
                std::size_t h = rounds - r;
                for (std::size_t li = 0; li < nlive && h > 0; ++li)
                    h = firstNonHit(lanes_[li], r, r + h, rounds) - r;
                if (h > 0) {
                    for (std::size_t li = 0; li < nlive; ++li) {
                        Lane &ls = lanes_[li];
                        std::uint64_t wr = 0;
                        for (std::size_t row = r; row < r + h; ++row) {
                            ls.l1->retireHitAt(ls.unit[row],
                                               ls.waySel[row],
                                               ls.write[row] != 0);
                            wr += ls.write[row];
                        }
                        ProcStats &ps = stats_.procs[live[li]];
                        ps.accesses += h;
                        ps.writes += wr;
                        ps.reads += h - wr;
                        ps.l1Hits += h;
                    }
                    r += h;
                    if (r >= rounds)
                        break;
                }
            }

            // ---- Stage 3: drain the non-Hit run in exact schedule
            // order until a fully-Hit sweep hands control back to the
            // run splitter (the fused walk never hands back — it drains
            // whole chunks). Cached verdicts are honoured while their
            // generation holds; stale slots fall back to the scalar
            // classify (which retires hits itself, exactly like the
            // sequential path).
            std::size_t hitStreak = 0;
            while (r < rounds &&
                   (fused_walk || hitStreak < kDrainExitStreak)) {
                bool all_hit = true;
                for (std::size_t li = 0; li < nlive; ++li) {
                    Lane &ls = lanes_[li];
                    const ProcId p = live[li];
                    Addr unit;
                    bool write;
                    if (fused_walk) {
                        const trace::TraceRecord &rc = ls.rec[r];
                        unit = rc.addr & unit_mask;
                        write = rc.type == AccessType::Write;
                    } else {
                        unit = ls.unit[r];
                        write = ls.write[r] != 0;
                    }

                    // Re-checked every slot: an earlier lane's miss this
                    // very round may have invalidated one of our lines.
                    // (Always false in the fused walk — nothing is ever
                    // classified ahead there.)
                    const bool cached =
                        r < ls.clsTo && ls.gen == ls.l1->generation();
                    mem::L1FastOutcome out;
                    if (cached) {
                        out = static_cast<mem::L1FastOutcome>(
                            ls.outcome[r]);
                        if (out == mem::L1FastOutcome::Hit)
                            ls.l1->retireHitAt(unit, ls.waySel[r], write);
                    } else {
                        out = ls.l1->accessClassify(unit, write);
                    }

                    if (out == mem::L1FastOutcome::Hit) {
                        ProcStats &ps = stats_.procs[p];
                        ++ps.accesses;
                        if (write)
                            ++ps.writes;
                        else
                            ++ps.reads;
                        ++ps.l1Hits;
                        continue;
                    }
                    all_hit = false;
                    if (out == mem::L1FastOutcome::Miss) {
                        ProcStats &ps = stats_.procs[p];
                        ++ps.accesses;
                        if (write)
                            ++ps.writes;
                        else
                            ++ps.reads;
                        ++ps.l1Misses;
                        // A cached Miss verdict carries its prepared
                        // signature bit; a scalar reclassify hashes it
                        // here (no prefetch — the stale path is rare).
                        const MissPrep prep{
                            interconnect_.busOf(unit),
                            cached ? ls.sigBit[r]
                                   : mem::WritebackBuffer::signatureBitOf(
                                         unit)};
                        missTail(p,
                                 write ? AccessType::Write
                                       : AccessType::Read,
                                 unit, unit, &prep);
                        continue;
                    }
                    // Blocked: a write hit lacking permission — the
                    // rare upgrade path; take the fully general route.
                    processorAccess(p,
                                    write ? AccessType::Write
                                          : AccessType::Read,
                                    unit);
                }
                hitStreak = all_hit ? hitStreak + 1 : 0;
                ++r;
            }
        }

        // Chunk boundary: replay every node's queued filter events
        // through the batched probe path before the queues grow past
        // the cache-friendly chunk size, then fold the chunk's per-bus
        // occupancy deltas in ascending bus order.
        flushAllBanks();
        // Accumulate first, clear in a separate pass: mixing the adds
        // and the resets in one loop trips a GCC 12 -O3
        // loop-distribution misordering (the generated memset lands
        // before the accumulation reads it feeds).
        for (unsigned b = 0; b < interconnect_.buses(); ++b) {
            BusStats &dst = stats_.perBus[b];
            const BusStats &src = chunkBus_[b];
            dst.transactions += src.transactions;
            dst.reads += src.reads;
            dst.readXs += src.readXs;
            dst.upgrades += src.upgrades;
            stats_.busSnoopTagProbes[b] += chunkBusProbes_[b];
        }
        std::fill(chunkBus_.begin(), chunkBus_.end(), BusStats{});
        std::fill(chunkBusProbes_.begin(), chunkBusProbes_.end(),
                  std::uint64_t{0});
    }

    deferActive_ = false;
    for (auto &node : nodes_)
        node->bank->endDeferred();
}

std::size_t
SmpSystem::firstNonHit(Lane &ls, std::size_t from, std::size_t limit,
                       std::size_t rounds)
{
    constexpr auto kHit = static_cast<std::uint8_t>(mem::L1FastOutcome::Hit);
    const std::uint64_t gen = ls.l1->generation();
    if (ls.gen != gen) {
        // The window is stale: a fill/invalidate/permission change
        // moved the generation. Re-take it from the cursor and re-seed
        // the adaptive window — the run pattern restarts after an
        // invalidation.
        ls.clsTo = from;
        ls.gen = gen;
        ls.win = kClassifyWindowMin;
    } else if (ls.clsTo < from) {
        // Valid but consumed past: the drain advanced beyond the
        // window without touching this lane's L1. Keep the grown
        // window size — the verdicts were good, only the cursor moved.
        ls.clsTo = from;
    }
    std::size_t f = from;
    for (;;) {
        if (f >= limit)
            return limit;
        if (f == ls.clsTo) {
            const std::size_t to =
                std::min(ls.clsTo + ls.win, rounds);
            ls.win = std::min(ls.win * 2, kClassifyWindowMax);
            ls.l1->classifyBatch(ls.unit.data() + ls.clsTo,
                                 ls.write.data() + ls.clsTo, to - ls.clsTo,
                                 ls.outcome.data() + ls.clsTo,
                                 ls.waySel.data() + ls.clsTo);
            prepareMissRows(ls, ls.clsTo, to);
            ls.clsTo = to;
        }
        const std::size_t end = std::min(ls.clsTo, limit);
        while (f < end && ls.outcome[f] == kHit)
            ++f;
        if (f < end)
            return f;
    }
}

void
SmpSystem::prepareMissRows(Lane &ls, std::size_t from, std::size_t to)
{
    // Hit-only windows (the common case everywhere but the miss-heavy
    // apps) pay one byte scan and nothing else.
    constexpr auto kMiss =
        static_cast<std::uint8_t>(mem::L1FastOutcome::Miss);
    bool any_miss = false;
    for (std::size_t k = from; k < to && !any_miss; ++k)
        any_miss = ls.outcome[k] == kMiss;
    if (!any_miss)
        return;
    simd::oneHotHash(ls.unit.data() + from, to - from,
                     mem::WritebackBuffer::kSigPreShift,
                     mem::WritebackBuffer::kSigMul,
                     mem::WritebackBuffer::kSigPostShift,
                     ls.sigBit.data() + from);
    // Every node's L2 set line for each upcoming miss: the drain's
    // remote snoop probes (3 cold tag reads per miss) plus the
    // requester's own probe/fill are the miss path's dominant stalls.
    for (std::size_t k = from; k < to; ++k) {
        if (ls.outcome[k] != kMiss)
            continue;
        const Addr unit = ls.unit[k];
        for (const auto &node : nodes_)
            node->l2->prefetchSet(unit);
    }
}

const filter::FilterBank &
SmpSystem::bank(ProcId p) const
{
    return *nodes_.at(p)->bank;
}

void
SmpSystem::setFilterProbeObserver(filter::FilterProbeObserver *obs)
{
    probeObserved_ = obs != nullptr;
    for (unsigned p = 0; p < nodes_.size(); ++p)
        nodes_[p]->bank->setProbeObserver(obs, p);
}

filter::FilterStats
SmpSystem::mergedFilterStats(std::size_t filterIdx) const
{
    filter::FilterStats merged;
    for (const auto &node : nodes_)
        merged.merge(node->bank->statsAt(filterIdx));
    return merged;
}

energy::L2Traffic
SmpSystem::mergedTraffic() const
{
    energy::L2Traffic t;
    for (const auto &p : stats_.procs)
        t.merge(p.traffic);
    return t;
}

void
SmpSystem::enforceInclusion(ProcId p, Addr unitAddr)
{
    Node &node = *nodes_[p];
    // An L1 line equals one coherence unit, so a single invalidate covers
    // it. Dirty L1 data conceptually merges into the departing unit; the
    // victim is already dirty (M/O) whenever the L1 line could be dirty.
    if (node.l1->invalidate(unitAddr))
        ++stats_.procs[p].l1SnoopInvalidations;
}

BusResponse
SmpSystem::broadcast(ProcId requester, BusOp op, Addr unitAddr,
                     const MissPrep *prep)
{
    BusResponse resp;
    ++stats_.snoopTransactions;

    // Route to the unit's home bus and count its occupancy. While the
    // hot loop runs the counts land in the chunk-local deltas and fold
    // into SimStats bus-major at the chunk boundary.
    const unsigned bus = prep ? prep->bus : interconnect_.busOf(unitAddr);
    {
        BusStats &bs =
            deferActive_ ? chunkBus_[bus] : stats_.perBus[bus];
        std::uint64_t &probes = deferActive_ ? chunkBusProbes_[bus]
                                             : stats_.busSnoopTagProbes[bus];
        ++bs.transactions;
        switch (op) {
          case BusOp::BusRead:
            ++bs.reads;
            break;
          case BusOp::BusReadX:
            ++bs.readXs;
            break;
          case BusOp::BusUpgrade:
            ++bs.upgrades;
            break;
          case BusOp::BusWriteback:
            break;
        }
        probes += nodes_.size() - 1;
    }

    if (deferActive_) {
        // The batched hot path: identical coherence transitions, but the
        // write-back scan is gated by the exact-safe presence signature
        // (the address hashes to its signature bit once, tested against
        // every remote buffer), the L2 snoop reuses the ground-truth
        // probe's way lookup, and the filter bank observation is queued
        // for the chunk-end batched replay instead of walking every
        // filter now.
        const std::uint64_t sig_bit =
            prep ? prep->sigBit
                 : mem::WritebackBuffer::signatureBitOf(unitAddr);
        for (unsigned q = 0; q < nodes_.size(); ++q) {
            if (q == requester)
                continue;
            Node &node = *nodes_[q];
            ProcStats &qs = stats_.procs[q];

            bool copy_here = false;
            const bool wb_hit =
                node.wb->maybeContainsSig(sig_bit) &&
                node.wb->snoop(unitAddr, op == BusOp::BusReadX ||
                                             op == BusOp::BusUpgrade);
            if (wb_hit) {
                copy_here = true;
                ++qs.wbSnoopsHit;
                resp.suppliedByCache = true;
            }

            mem::L2LookupResult probe_res;
            const int way = node.l2->probeWay(unitAddr, probe_res);
            node.bank->deferSnoop(bus, unitAddr, probe_res.unitValid,
                                  probe_res.tagMatch);

            ++qs.snoopTagProbes;
            ++qs.traffic.snoopTagProbes;

            const State before = probe_res.state;
            const auto outcome = node.l2->snoopAtWay(way, unitAddr, op);
            if (outcome.hadCopy) {
                copy_here = true;
                ++qs.snoopHits;
                if (outcome.supplied) {
                    ++qs.snoopSupplies;
                    resp.suppliedByCache = true;
                    ++qs.traffic.snoopDataReads;
                }
                if (outcome.next != before)
                    ++qs.traffic.snoopTagUpdates;
                if (!coherence::isValid(outcome.next) ||
                    coherence::isWritable(before)) {
                    enforceInclusion(q, unitAddr);
                }
            } else {
                ++qs.snoopMisses;
            }

            if (copy_here)
                ++resp.remoteCopies;
        }
        stats_.remoteHits.sample(resp.remoteCopies);
        return resp;
    }

    for (unsigned q = 0; q < nodes_.size(); ++q) {
        if (q == requester)
            continue;
        Node &node = *nodes_[q];
        ProcStats &qs = stats_.procs[q];

        bool copy_here = false;

        // 1. The write-back buffer is always snooped (never filtered).
        //    One scan settles the hit, the ownership transfer on
        //    BusReadX/BusUpgrade (the pending memory update is
        //    obsolete), and the M->O demotion on a supplying BusRead —
        //    without the demotion the owner's later reclaim would
        //    resurrect an M (write-without-bus) copy while the reader
        //    still holds Shared, the silent-stale-read coherence break
        //    the differential checkers caught.
        const bool wb_hit = node.wb->snoop(
            unitAddr, op == BusOp::BusReadX || op == BusOp::BusUpgrade);
        if (wb_hit) {
            copy_here = true;
            ++qs.wbSnoopsHit;
            resp.suppliedByCache = true;
        }

        // 2. The JETTY bank observes the snoop with L2 ground truth
        //    *before* any state transition. One probe serves both the
        //    bank's ground truth and the pre-transition state below —
        //    nothing mutates the L2 in between.
        const auto probe_res = node.l2->probe(unitAddr);
        node.bank->observeSnoop(unitAddr, probe_res.unitValid,
                                probe_res.tagMatch);

        // 3. The L2 tag array is probed (a JETTY saves this energy for
        //    filtered snoops; the accountant subtracts it per filter).
        ++qs.snoopTagProbes;
        ++qs.traffic.snoopTagProbes;

        const State before = probe_res.state;
        const auto outcome = node.l2->snoop(unitAddr, op);
        if (outcome.hadCopy) {
            copy_here = true;
            ++qs.snoopHits;
            if (outcome.supplied) {
                ++qs.snoopSupplies;
                resp.suppliedByCache = true;
                ++qs.traffic.snoopDataReads;
            }
            if (outcome.next != before)
                ++qs.traffic.snoopTagUpdates;
            // Inclusion: purge the L1 copy whenever the unit leaves or
            // loses exclusivity (the only cases where the L1 could hold
            // stale permissions or newer data).
            if (!coherence::isValid(outcome.next) ||
                coherence::isWritable(before)) {
                enforceInclusion(q, unitAddr);
            }
        } else {
            ++qs.snoopMisses;
        }

        if (copy_here)
            ++resp.remoteCopies;

        if (observer_) {
            // Emitted after the transition and inclusion enforcement, so
            // a checker sees the settled post-snoop node state.
            SnoopEvent ev;
            ev.requester = requester;
            ev.target = q;
            ev.op = op;
            ev.unitAddr = unitAddr;
            ev.before = before;
            ev.after = outcome.next;
            ev.wbHit = wb_hit;
            ev.supplied = outcome.supplied;
            ev.busId = bus;
            observer_->onSnoop(ev);
        }
    }

    stats_.remoteHits.sample(resp.remoteCopies);
    if (observer_)
        observer_->onBusTransaction(requester, op, unitAddr,
                                    resp.remoteCopies, bus);
    return resp;
}

void
SmpSystem::pushVictim(ProcId p, const mem::L2Victim &victim)
{
    Node &node = *nodes_[p];
    ProcStats &ps = stats_.procs[p];

    if (!coherence::isDirty(victim.state))
        return;  // clean units vanish silently (memory is current)

    if (!node.wb->hasRoom()) {
        // Forced drain: the oldest victim goes to memory over the bus.
        node.wb->pop();
        ++ps.wbDrains;
        ++ps.busWritebacks;
    }
    node.wb->push({victim.unitAddr, victim.state});
    ++ps.wbInsertions;
}

coherence::State
SmpSystem::fetchUnit(ProcId p, Addr unitAddr, bool forWrite,
                     const MissPrep *prep)
{
    Node &node = *nodes_[p];
    ProcStats &ps = stats_.procs[p];

    // Reclaim from the local write-back buffer when possible: the victim
    // never left the chip, so no bus transaction is needed for data.
    bool in_wb = false;
    mem::WbEntry wb_entry = node.wb->take(unitAddr, in_wb);
    State fill_state;

    if (in_wb) {
        ++ps.wbReclaims;
        fill_state = wb_entry.state;
        if (forWrite && !coherence::isWritable(fill_state)) {
            // An Owned victim may still be shared elsewhere: upgrade.
            broadcast(p, BusOp::BusUpgrade, unitAddr, prep);
            ++ps.busUpgrades;
            fill_state = State::Modified;
        }
    } else {
        const BusOp op = forWrite ? BusOp::BusReadX : BusOp::BusRead;
        const BusResponse resp = broadcast(p, op, unitAddr, prep);
        if (op == BusOp::BusRead)
            ++ps.busReads;
        else
            ++ps.busReadXs;
        fill_state = coherence::fillState(op, resp.remoteCopies > 0);
    }

    // Install the unit; handle the displaced block, if any.
    std::vector<mem::L2Victim> &victims = victimScratch_;
    victims.clear();
    node.l2->fill(unitAddr, fill_state, victims);
    ++ps.l2Fills;
    ++ps.traffic.localTagUpdates;  // tag/state install
    ++ps.traffic.localDataWrites;  // unit data written into the array
    for (const auto &v : victims) {
        ++ps.l2Evictions;
        enforceInclusion(p, v.unitAddr);
        pushVictim(p, v);
    }
    return fill_state;
}

void
SmpSystem::processorAccess(ProcId p, AccessType type, Addr addr)
{
    Node &node = *nodes_[p];
    ProcStats &ps = stats_.procs[p];

    ++ps.accesses;
    if (type == AccessType::Read)
        ++ps.reads;
    else
        ++ps.writes;

    const Addr unit = node.l2->unitAlign(addr);

    // ---- L1 ----
    const auto l1_res = node.l1->probe(unit);
    if (l1_res.hit && (type == AccessType::Read || l1_res.writable)) {
        ++ps.l1Hits;
        node.l1->touch(unit);
        if (type == AccessType::Write)
            node.l1->markDirty(unit);
        if (observer_)
            observer_->onReference(p, type, addr);
        return;
    }

    if (l1_res.hit) {
        // Write hit on a non-writable line: obtain write permission.
        ++ps.l1Hits;
        node.l1->touch(unit);

        ++ps.l2LocalAccesses;
        ++ps.traffic.localTagProbes;
        mem::L2LookupResult l2_res;
        const int way = node.l2->probeWay(unit, l2_res);
        if (!l2_res.unitValid)
            panic("inclusion violated: L1 line without L2 unit");
        ++ps.l2LocalHits;
        node.l2->touchAt(way, unit);

        if (coherence::isWritable(l2_res.state)) {
            if (l2_res.state == State::Exclusive) {
                node.l2->setStateAt(way, unit, State::Modified);
                ++ps.upgradesSilent;
                ++ps.traffic.localTagUpdates;
            }
        } else {
            // Shared or Owned: invalidate the other copies. (The bus
            // only snoops remote nodes, so the located way survives.)
            broadcast(p, BusOp::BusUpgrade, unit);
            ++ps.busUpgrades;
            node.l2->setStateAt(way, unit, State::Modified);
            ++ps.traffic.localTagUpdates;
        }
        node.l1->setWritable(unit, true);
        node.l1->markDirty(unit);
        if (observer_)
            observer_->onReference(p, type, addr);
        return;
    }

    // ---- L1 miss: go to the L2. ----
    ++ps.l1Misses;
    missTail(p, type, addr, unit);
}

void
SmpSystem::missTail(ProcId p, AccessType type, Addr addr, Addr unit,
                    const MissPrep *prep)
{
    Node &node = *nodes_[p];
    ProcStats &ps = stats_.procs[p];

    ++ps.l2LocalAccesses;
    ++ps.traffic.localTagProbes;

    mem::L2LookupResult l2_res;
    const int way = node.l2->probeWay(unit, l2_res);
    State unit_state = l2_res.state;
    bool l2_hit = l2_res.unitValid;

    if (l2_hit && type == AccessType::Write &&
        !coherence::isWritable(unit_state)) {
        // Write to a Shared/Owned unit: upgrade first.
        broadcast(p, BusOp::BusUpgrade, unit, prep);
        ++ps.busUpgrades;
        node.l2->setStateAt(way, unit, State::Modified);
        ++ps.traffic.localTagUpdates;
        unit_state = State::Modified;
    }

    if (l2_hit) {
        ++ps.l2LocalHits;
        node.l2->touchAt(way, unit);
        if (type == AccessType::Write && unit_state == State::Exclusive) {
            node.l2->setStateAt(way, unit, State::Modified);
            ++ps.upgradesSilent;
            ++ps.traffic.localTagUpdates;
            unit_state = State::Modified;
        }
        ++ps.traffic.localDataReads;  // unit handed to the L1
    } else {
        unit_state = fetchUnit(p, unit, type == AccessType::Write, prep);
    }

    // ---- Fill the L1 (write-allocate). ----
    mem::L1Victim victim;
    node.l1->fill(unit, coherence::isWritable(unit_state), victim);
    if (type == AccessType::Write)
        node.l1->markDirty(unit);

    if (victim.valid && victim.dirty) {
        // Dirty L1 victim: write its data back into the L2 unit. By the
        // inclusion invariant that unit is present and writable (M or E;
        // E becomes M now that dirty data lands in it).
        ++ps.l1Writebacks;
        ++ps.l2LocalAccesses;
        ++ps.traffic.localTagProbes;
        mem::L2LookupResult wb_res;
        const int wb_way = node.l2->probeWay(victim.lineAddr, wb_res);
        if (!wb_res.unitValid)
            panic("inclusion violated: dirty L1 victim without L2 unit");
        ++ps.l2LocalHits;
        if (wb_res.state == State::Exclusive) {
            node.l2->setStateAt(wb_way, victim.lineAddr, State::Modified);
            ++ps.traffic.localTagUpdates;
        } else if (!coherence::isDirty(wb_res.state)) {
            panic("dirty L1 victim over a non-writable L2 unit");
        }
        ++ps.traffic.localDataWrites;
    }

    if (observer_)
        observer_->onReference(p, type, addr);
}

} // namespace jetty::sim
