/**
 * @file
 * Coverage-guided differential trace fuzzer.
 *
 * Each round manufactures one adversarial synthetic trace per processor
 * from a library of sharing patterns (uniform storms, false sharing
 * within a block, migratory objects, producer/consumer bursts, same-set
 * eviction storms, hot single units, private streaming), replays it
 * three ways —
 *
 *   1. step()-driven with the full CheckerSuite attached (online
 *      invariants + no-false-negative for every filter in the bank),
 *   2. through the golden model (verify/golden_smp.hh), comparing final
 *      state bit-exactly,
 *   3. through the batched run() hot path with hooks unset, comparing
 *      against the same golden snapshot,
 *
 * — and steers the pattern mix by coverage stall: a mix is kept while
 * it keeps uncovering new snoop-transition and filter-outcome cells
 * (the CheckerSuite's CoverageMap) and is redrawn — occasionally with a
 * single pattern spiked — once a round adds none. A failing round is
 * shrunk with a delta-debugging pass to a minimal record set that still
 * fails, and
 * can be written out as a JTTRACE2 repro (one stream section per
 * processor) plus a human-readable sidecar header documenting the seed,
 * geometry and violated invariant.
 *
 * Everything is deterministic: FuzzConfig::seed defaults to
 * kDefaultRngSeed and every round's generator seed is derived from it
 * with kSeedMix, so a logged (seed, round) pair reproduces the exact
 * failing trace on any platform.
 */

#ifndef JETTY_VERIFY_FUZZER_HH
#define JETTY_VERIFY_FUZZER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "api/experiment_spec.hh"
#include "sim/smp_system.hh"
#include "trace/trace_source.hh"
#include "util/random.hh"
#include "verify/invariants.hh"

namespace jetty::verify
{

/** The sharing patterns the generator mixes. */
enum class Pattern : unsigned
{
    Uniform,           //!< random refs over a shared block pool
    FalseSharing,      //!< per-proc units inside shared blocks
    Migratory,         //!< read-modify-write objects rotating owners
    ProducerConsumer,  //!< write-own / read-neighbour burst phases
    EvictionStorm,     //!< same-set tag storm (fills, victims, WB drains)
    HotUnit,           //!< every processor hammers one unit
    PrivateStream,     //!< per-proc sequential walk (snoop-miss heavy)
};

constexpr unsigned kPatternCount = 7;
static_assert(static_cast<unsigned>(Pattern::PrivateStream) ==
                  kPatternCount - 1,
              "kPatternCount must cover every Pattern enumerator");

/** Name of @p pattern, for logs. */
const char *patternName(Pattern p);

/** A per-processor set of traces (traces[p] drives processor p). */
using TraceSet = std::vector<std::vector<trace::TraceRecord>>;

/** Fuzzer configuration. The default geometry is a deliberately tiny
 *  machine so a few thousand references already exercise evictions,
 *  write-back pressure and every sharing transition. */
struct FuzzConfig
{
    std::uint64_t seed = kDefaultRngSeed;
    unsigned rounds = 16;
    std::uint64_t refsPerProc = 4096;

    /** Stop launching new rounds after this many seconds (0 = never). */
    double timeBudgetSeconds = 0;

    /** System under test. nprocs/geometry/filterSpecs are honoured;
     *  checkSafety is forced off so the checkers report instead of the
     *  bank panicking. */
    sim::SmpConfig system = defaultSystem();

    /**
     * Draw the split interconnect's bus count per round from {1, 2, 4}
     * (deterministically from the round seed), so one campaign
     * exercises the classic bus, both split configurations, and the
     * per-bus deferred filter replay. When false every round runs
     * system.snoopBuses as given (the CLI's --buses sets this).
     */
    bool randomizeBuses = true;

    std::uint64_t auditEvery = 512;  //!< global audit cadence (refs)
    bool compareGolden = true;       //!< step-path vs golden final state
    bool checkBatched = true;        //!< batched run() vs golden
    std::uint64_t maxShrinkRuns = 400;

    /** Small thrash-friendly geometry with every built-in family. */
    static sim::SmpConfig defaultSystem();
};

/** Outcome of a fuzzing campaign. */
struct FuzzResult
{
    bool failed = false;
    std::string invariant;  //!< violated invariant (when failed)
    std::string detail;
    std::uint64_t seed = 0;       //!< the campaign seed (repro header)
    unsigned failingRound = 0;
    std::uint64_t roundSeed = 0;  //!< generator seed of the failing round
    unsigned snoopBuses = 1;      //!< bus count of the failing round
    TraceSet traces;              //!< shrunk failing traces (when failed)

    unsigned roundsRun = 0;
    std::uint64_t totalRefs = 0;
    CoverageMap coverage;  //!< accumulated over all rounds

    /** Records in the (shrunk) failing trace set. */
    std::uint64_t records() const;
};

/** The campaign driver. */
class TraceFuzzer
{
  public:
    explicit TraceFuzzer(const FuzzConfig &cfg);

    /** Run the campaign: generate, check, bias, and shrink on failure. */
    FuzzResult run();

    /**
     * Manufacture one round's traces deterministically from @p roundSeed
     * with the given pattern weights (exposed for tests).
     */
    TraceSet generate(std::uint64_t roundSeed,
                      const std::array<double, kPatternCount> &weights);

    /**
     * Replay @p traces through the three-way differential check.
     * @return "" when every invariant holds and all states agree,
     *         otherwise "invariant: detail" of the first failure.
     * @param cov when non-null, accumulates coverage from the checked
     *        (step-driven) replay.
     */
    static std::string checkOnce(const sim::SmpConfig &system,
                                 const TraceSet &traces,
                                 std::uint64_t auditEvery,
                                 bool compareGolden, bool checkBatched,
                                 CoverageMap *cov);

    /**
     * Delta-debug @p traces down to a (1-minimal up to the run budget)
     * record set for which checkOnce still fails *with the same
     * invariant* on @p system (the failing round's machine, including
     * its bus count) — a candidate that trips a different invariant is
     * not accepted, so the shrunk repro reproduces what its header
     * claims.
     */
    TraceSet shrink(const TraceSet &traces, const std::string &invariant,
                    const sim::SmpConfig &system) const;

  private:
    FuzzConfig cfg_;
};

/**
 * The campaign's configuration as an api::ExperimentSpec: explicit
 * machine geometry with @p snoopBuses substituted (the CLI passes the
 * configured count, the repro writer the *failing round's*), filters,
 * and the real campaign budgets. One construction shared by
 * `jetty_cli fuzz --dump-spec` and the repro sidecar, so the two can
 * never drift on a future FuzzConfig knob.
 */
api::ExperimentSpec specOfFuzz(const FuzzConfig &cfg, unsigned snoopBuses);

/**
 * Write a failing trace set as a JTTRACE2 repro (one stream section per
 * processor) plus a "<path>.json" sidecar whose embedded
 * api::ExperimentSpec pins the machine the failure was caught on
 * (explicit cache geometry, the failing round's bus count, filters,
 * campaign seed) alongside the violated invariant — everything needed
 * to reproduce the failure with `jetty_cli fuzz --repro <path>`.
 * @p cfg is the campaign's configuration: its system (with the failing
 * round's bus count substituted) becomes the embedded machine, and its
 * real budgets (rounds, refs per proc, audit cadence, time budget) are
 * recorded so re-running the campaign from the sidecar reproduces the
 * campaign, not the defaults.
 */
void writeRepro(const std::string &path, const FuzzResult &result,
                const FuzzConfig &cfg);

/** Load the per-processor traces of a repro written by writeRepro(). */
TraceSet readReproTraces(const std::string &path);

/**
 * Restore the system configuration recorded in the repro's sidecar so a
 * replay runs the machine the failure was caught on, not the defaults.
 * Reads the "<path>.json" embedded-ExperimentSpec sidecar first and
 * falls back to the legacy "<path>.txt" key=value header (pre-spec
 * builds' repros stay replayable). @p out is only modified on success.
 * @return false when no sidecar yields a complete machine.
 */
bool readReproConfig(const std::string &path, sim::SmpConfig &out);

} // namespace jetty::verify

#endif // JETTY_VERIFY_FUZZER_HH
