/**
 * @file
 * Observer interface through which the L2 announces coherence-unit fills
 * and evictions/invalidations. The JETTY filter bank subscribes to keep
 * Include-JETTY counters coherent and to clear Exclude-JETTY entries; the
 * paper notes this replacement information is available for free at the L2
 * and reaches the JETTY over a dedicated tag-sized wire bundle.
 */

#ifndef JETTY_MEM_CACHE_EVENTS_HH
#define JETTY_MEM_CACHE_EVENTS_HH

#include "util/types.hh"

namespace jetty::mem
{

/** Receives L2 content-change notifications (coherence-unit granular). */
class CacheEventListener
{
  public:
    virtual ~CacheEventListener() = default;

    /** A coherence unit became valid in the L2. @p unitAddr is aligned. */
    virtual void unitFilled(Addr unitAddr) = 0;

    /** A coherence unit left the L2 (eviction or snoop invalidation). */
    virtual void unitEvicted(Addr unitAddr) = 0;
};

} // namespace jetty::mem

#endif // JETTY_MEM_CACHE_EVENTS_HH
