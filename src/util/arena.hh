/**
 * @file
 * Cache-line-aligned arena storage for the batched snoop-replay path.
 *
 * Two pieces:
 *  - AlignedVec<T>: std::vector over a cache-line-aligned allocator, for
 *    the packed tag/p-bit arrays the SIMD kernels (util/simd.hh) scan —
 *    a 64-byte-aligned base keeps a whole L2 set's packed words, or a
 *    full vector step, inside one host cache line.
 *  - ArenaQueue<T>: a chunked FIFO arena for the per-bus deferred event
 *    queues. push() bump-allocates into fixed-size aligned chunks;
 *    clear() retires the chunks back to the queue's own free pool
 *    instead of the heap, so the chunk-end flush/refill cycle of the
 *    simulation hot loop does zero allocator work after warmup. Events
 *    stay contiguous within a chunk, which is what the batched
 *    applyBatch replay wants to stream over.
 */

#ifndef JETTY_UTIL_ARENA_HH
#define JETTY_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace jetty::util
{

/** Minimal allocator handing out @p Align-aligned blocks. */
template <typename T, std::size_t Align = 64>
struct AlignedAllocator
{
    using value_type = T;

    /** Explicit rebind: the non-type Align parameter defeats the
     *  allocator_traits auto-rebind for Alloc<T, Args...>. */
    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }

    void
    deallocate(T *p, std::size_t)
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U, Align> &) const
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const AlignedAllocator<U, Align> &) const
    {
        return false;
    }
};

/** A std::vector whose storage starts on a cache-line boundary. */
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

/**
 * Chunked FIFO arena. Not a general container: append, stream, reset —
 * the life cycle of one deferred-replay queue.
 */
template <typename T, std::size_t kChunkItems = 1024>
class ArenaQueue
{
  public:
    /** Append one item. */
    void
    push(const T &v)
    {
        if (lastLen_ == kChunkItems || used_ == 0) {
            if (used_ == chunks_.size())
                chunks_.push_back(std::make_unique<Chunk>());
            ++used_;
            lastLen_ = 0;
        }
        chunks_[used_ - 1]->items[lastLen_++] = v;
    }

    /** Items pushed since the last clear(). */
    std::size_t
    size() const
    {
        return used_ == 0 ? 0 : (used_ - 1) * kChunkItems + lastLen_;
    }

    bool empty() const { return used_ == 0; }

    /**
     * Stream every contiguous run in push order: fn(ptr, len) once per
     * in-use chunk. Batch boundaries are a storage artifact — callers
     * must treat consecutive runs as one logical sequence.
     */
    template <typename Fn>
    void
    forEachRun(Fn &&fn) const
    {
        for (std::size_t c = 0; c < used_; ++c) {
            const std::size_t len =
                c + 1 == used_ ? lastLen_ : kChunkItems;
            if (len > 0)
                fn(chunks_[c]->items, len);
        }
    }

    /** Forget the contents; the chunks are kept for reuse. */
    void
    clear()
    {
        used_ = 0;
        lastLen_ = 0;
    }

  private:
    struct alignas(64) Chunk
    {
        T items[kChunkItems];
    };

    std::vector<std::unique_ptr<Chunk>> chunks_;  //!< allocated (reused)
    std::size_t used_ = 0;     //!< chunks holding live items
    std::size_t lastLen_ = 0;  //!< items in the last in-use chunk
};

} // namespace jetty::util

#endif // JETTY_UTIL_ARENA_HH
