// Fixture (negative control): hash containers are legal outside the
// deterministic layers (sim/core/verify/experiments). A CLI-side cache
// under tools/ may iterate in any order — the unordered rule must not
// fire here.
#include <string>
#include <unordered_map>

namespace jetty::tools
{

struct ArgCache
{
    std::unordered_map<std::string, std::string> seen;
};

} // namespace jetty::tools
