/**
 * @file
 * The campaign resume ledger: a directory journaling one completed
 * shard response per file, so an interrupted distributed sweep resumes
 * without re-simulating (or even re-dispatching) finished cells.
 *
 * Layout mirrors the disk RunCache tier on purpose — one atomic JSON
 * file per canonical cell key, named by the same 16-hex FNV-1a hash:
 *
 *   <dir>/<16-hex-fnv64-of-key>.json
 *     {"jetty_shard_ledger": 1, "key": "<full canonical key>",
 *      "response": {...shard_response...}}
 *
 * The embedded key detects filename-hash collisions, and the embedded
 * shard-envelope version (inside "response") invalidates entries a
 * newer build no longer speaks. Robustness contract matches the disk
 * cache: the ledger is an accelerator, never an authority — corrupt,
 * truncated, or wrong-version entries read as misses, every publish is
 * atomic (util/atomic_file.hh via json::writeFileErr), and no failure
 * here is ever fatal to the campaign.
 */

#ifndef JETTY_DIST_LEDGER_HH
#define JETTY_DIST_LEDGER_HH

#include <cstdint>
#include <string>

#include "dist/shard.hh"

namespace jetty::dist
{

/** Ledger entry-format version; bump when the shard response schema or
 *  the simulator's semantics change so stale entries read as misses. */
constexpr std::uint64_t kLedgerVersion = 1;

class Ledger
{
  public:
    /** An unopened ledger; every operation is a no-op miss. */
    Ledger() = default;

    /** Open (creating directories as needed) the ledger at @p dir.
     *  @return "" on success, else the diagnostic. */
    std::string open(const std::string &dir);

    bool isOpen() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Entry filename (relative to the ledger dir) for a canonical
     *  cell key. Exposed for tests. */
    static std::string entryFileFor(const std::string &key);

    /**
     * Load the journaled response for canonical key @p key. Corrupt,
     * wrong-version, or collision entries (embedded key differs) are
     * misses. @return true with @p out filled on a hit.
     */
    bool lookup(const std::string &key, ShardResponse &out) const;

    /** Journal @p resp for @p key atomically. Best effort: an I/O
     *  failure is returned for logging but must not stop the campaign.
     *  @return "" on success. */
    std::string publish(const std::string &key,
                        const ShardResponse &resp) const;

  private:
    std::string dir_;
};

} // namespace jetty::dist

#endif // JETTY_DIST_LEDGER_HH
