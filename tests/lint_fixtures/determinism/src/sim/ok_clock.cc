// Fixture (negative control): steady_clock is the sanctioned clock —
// monotonic, used only for wall-clock measurement, never a simulated
// number — and a named-seed time() call is not the argless form. The
// determinism rule must not fire anywhere in this file.
#include <chrono>
#include <ctime>

namespace jetty::sim
{

double
elapsedSeconds(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double>(dt).count();
}

long
fileStamp(std::time_t *slot)
{
    return static_cast<long>(std::time(slot));  // has an argument: legal
}

} // namespace jetty::sim
