/**
 * @file
 * Run-level energy accounting: combines per-access energies from the
 * CacheEnergyModel with event counts gathered by the simulator to compute
 * the total L2-related energy of a run, with and without a JETTY, in both
 * the serial and parallel tag/data access modes. This regenerates the four
 * panels of the paper's Figure 6.
 */

#ifndef JETTY_ENERGY_ACCOUNTANT_HH
#define JETTY_ENERGY_ACCOUNTANT_HH

#include <cstdint>
#include <vector>

#include "energy/cache_energy.hh"

namespace jetty::energy
{

/** Tag/data array access discipline of the L2 (Section 4.4 models both). */
enum class AccessMode
{
    /** Tag first, then (on a hit) exactly one way's data: energy
     *  optimized, as in Alpha 21164 / Intel Xeon. */
    Serial,

    /** Tags and all ways' data read concurrently for latency: snoops and
     *  local probes spend data energy even when they miss. */
    Parallel,
};

/**
 * Event counts for one processor's L2 over a run. Counts are in accesses
 * (the accountant multiplies by per-access energies).
 */
struct L2Traffic
{
    std::uint64_t localTagProbes = 0;    //!< local lookups (incl. writebacks)
    std::uint64_t localTagUpdates = 0;   //!< tag/state writes (fills, upgrades)
    std::uint64_t localDataReads = 0;    //!< units read by local hits/fills to L1
    std::uint64_t localDataWrites = 0;   //!< units written (fills, L1 writebacks)
    std::uint64_t snoopTagProbes = 0;    //!< snoop-induced tag lookups (pre-filter)
    std::uint64_t snoopTagUpdates = 0;   //!< state downgrades on snoop hits
    std::uint64_t snoopDataReads = 0;    //!< units supplied to the bus by snoops

    /** Sum of all tag-level accesses (used as the "all L2 accesses"
     *  denominator basis). */
    std::uint64_t
    allTagAccesses() const
    {
        return localTagProbes + localTagUpdates + snoopTagProbes +
               snoopTagUpdates;
    }

    /** Merge another processor's traffic. */
    void merge(const L2Traffic &o);
};

/** Per-event energies of one JETTY organization (J). */
struct FilterEnergyCosts
{
    double probe = 0;      //!< one snoop probe of the filter
    double snoopAlloc = 0; //!< one EJ allocation on an unfiltered snoop miss
    double fillUpdate = 0; //!< one update on an L2 fill (IJ cnt, EJ clear)
    double evictUpdate = 0;//!< one update on an L2 eviction (IJ cnt)
};

/** Filter activity counts over a run (from the FilterBank statistics). */
struct FilterTraffic
{
    std::uint64_t probes = 0;       //!< snoops that probed the filter
    std::uint64_t filtered = 0;     //!< snoops the filter eliminated
    std::uint64_t snoopAllocs = 0;  //!< EJ allocations
    std::uint64_t fillUpdates = 0;  //!< L2 fill notifications processed
    std::uint64_t evictUpdates = 0; //!< L2 evict notifications processed
};

/** Energy totals of one run under one configuration (J). */
struct EnergyBreakdown
{
    double localEnergy = 0;   //!< locally-initiated L2 energy
    double snoopEnergy = 0;   //!< snoop-induced L2 energy (post filtering)
    double filterEnergy = 0;  //!< energy spent inside the JETTY itself

    double total() const { return localEnergy + snoopEnergy + filterEnergy; }
};

/**
 * Computes run energies. Construct once per L2 organization, then evaluate
 * any number of (traffic, filter) combinations.
 */
class EnergyAccountant
{
  public:
    explicit EnergyAccountant(const CacheEnergyModel &model)
        : model_(model)
    {}

    /**
     * Total L2 energy with no filter (the baseline). @p mode selects
     * serial or parallel tag/data discipline.
     */
    EnergyBreakdown baseline(const L2Traffic &traffic, AccessMode mode) const;

    /**
     * Total energy with a JETTY that filtered @p filter.filtered of the
     * snoop tag probes. Filtered snoops skip the L2 tag (and, in parallel
     * mode, data) access entirely; every snoop pays the filter probe;
     * filter bookkeeping (EJ allocs, IJ counter updates) is charged at the
     * given per-event costs.
     */
    EnergyBreakdown withFilter(const L2Traffic &traffic, AccessMode mode,
                               const FilterTraffic &filter,
                               const FilterEnergyCosts &costs) const;

    /** Percentage reduction of snoop-related energy:
     *  1 - (filtered snoop+filter energy) / (baseline snoop energy). */
    static double snoopReductionPct(const EnergyBreakdown &base,
                                    const EnergyBreakdown &with);

    /** Percentage reduction of total L2 energy. */
    static double totalReductionPct(const EnergyBreakdown &base,
                                    const EnergyBreakdown &with);

    /**
     * Per-bus share of a run's snoop-probe energy on a split snoop
     * interconnect: @p busSnoopTagProbes is SimStats::busSnoopTagProbes
     * (snoop-induced tag probes per logical bus, all nodes), and each
     * bus is charged its probes at the per-probe snoop energy of
     * @p mode. The sum over buses equals the probe term of baseline()'s
     * snoopEnergy, so the split is an exact decomposition, not an
     * estimate.
     */
    std::vector<double>
    perBusSnoopEnergy(const std::vector<std::uint64_t> &busSnoopTagProbes,
                      AccessMode mode) const;

  private:
    /** Snoop-side energy per unfiltered snoop tag probe. */
    double snoopProbeEnergy(AccessMode mode) const;

    const CacheEnergyModel &model_;
};

} // namespace jetty::energy

#endif // JETTY_ENERGY_ACCOUNTANT_HH
