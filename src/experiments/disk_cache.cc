#include "experiments/disk_cache.hh"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <utility>
#include <vector>

#include <dirent.h>

#include "experiments/run_result_json.hh"

namespace jetty::experiments
{

namespace
{

constexpr const char *kIndexFile = "index.json";

/** mkdir -p. Best effort: the cache degrades to all-miss if it fails. */
void
makeDirs(const std::string &path)
{
    std::string partial;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            partial += path[i];
            continue;
        }
        if (!partial.empty())
            ::mkdir(partial.c_str(), 0755);
        if (i < path.size())
            partial += '/';
    }
}

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
fileBytes(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

/** One row of the recency index. */
struct IndexRow
{
    std::string file;
    std::uint64_t bytes = 0;
    std::uint64_t seq = 0;
};

bool
parseIndex(const json::Value &v, std::vector<IndexRow> &rows,
           std::uint64_t &seq)
{
    const json::Value *ver = v.find("jetty_cache_index");
    if (!ver || !ver->isNumber() || !ver->fitsU64() || ver->asU64() != 1)
        return false;
    const json::Value *s = v.find("seq");
    if (!s || !s->isNumber() || !s->fitsU64())
        return false;
    seq = s->asU64();
    const json::Value *entries = v.find("entries");
    if (!entries || !entries->isArray())
        return false;
    for (const auto &e : entries->items()) {
        const json::Value *file = e.find("file");
        const json::Value *bytes = e.find("bytes");
        const json::Value *rowSeq = e.find("seq");
        if (!file || !file->isString() || !bytes || !bytes->isNumber() ||
            !bytes->fitsU64() || !rowSeq || !rowSeq->isNumber() ||
            !rowSeq->fitsU64())
            return false;
        rows.push_back(
            {file->asString(), bytes->asU64(), rowSeq->asU64()});
    }
    return true;
}

json::Value
buildIndex(const std::vector<IndexRow> &rows, std::uint64_t seq)
{
    json::Value v = json::Value::object();
    v.set("jetty_cache_index", std::uint64_t{1});
    v.set("seq", seq);
    json::Value entries = json::Value::array();
    for (const auto &row : rows) {
        json::Value e = json::Value::object();
        e.set("file", row.file);
        e.set("bytes", row.bytes);
        e.set("seq", row.seq);
        entries.push(std::move(e));
    }
    v.set("entries", std::move(entries));
    return v;
}

} // namespace

DiskCache::DiskCache(std::string root, std::uint64_t budgetBytes)
    : root_(std::move(root)), budget_(budgetBytes)
{
    makeDirs(root_);
}

std::string
DiskCache::entryFileFor(const std::string &key)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return std::string(hex) + ".json";
}

json::Value
DiskCache::loadIndexLocked()
{
    std::string err;
    json::Value v = json::parseFile(root_ + "/" + kIndexFile, &err);
    std::vector<IndexRow> rows;
    std::uint64_t seq = 0;
    if (err.empty() && parseIndex(v, rows, seq))
        return v;
    return rebuildIndexLocked();
}

void
DiskCache::storeIndexLocked(const json::Value &index)
{
    // Best effort: a lost index only costs recency precision — it is
    // rebuilt from a directory scan on the next load.
    json::writeFileErr(root_ + "/" + kIndexFile, index);
}

json::Value
DiskCache::rebuildIndexLocked()
{
    std::vector<IndexRow> rows;
    std::uint64_t seq = 0;
    DIR *dir = ::opendir(root_.c_str());
    if (dir) {
        while (const dirent *ent = ::readdir(dir)) {
            const std::string name = ent->d_name;
            // Entry files are exactly 16 hex digits + ".json".
            if (name.size() != 21 || name.substr(16) != ".json")
                continue;
            if (name.find_first_not_of("0123456789abcdef") != 16)
                continue;
            rows.push_back({name, fileBytes(root_ + "/" + name), ++seq});
        }
        ::closedir(dir);
    }
    return buildIndex(rows, seq);
}

bool
DiskCache::lookup(const std::string &key, AppRunResult &result,
                  std::set<std::string> &covered)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::string file = entryFileFor(key);
    const std::string path = root_ + "/" + file;

    std::string err;
    json::Value v = json::parseFile(path, &err);
    if (!err.empty()) {
        struct stat st;
        if (::stat(path.c_str(), &st) == 0)
            ::unlink(path.c_str());  // readable-but-corrupt: evict
        return false;
    }

    const json::Value *ver = v.find("jetty_cache");
    const json::Value *storedKey = v.find("key");
    const json::Value *coveredArr = v.find("covered");
    const json::Value *resultObj = v.find("result");
    if (!ver || !ver->isNumber() || !ver->fitsU64() ||
        ver->asU64() != kDiskCacheVersion || !storedKey ||
        !storedKey->isString() || !coveredArr || !coveredArr->isArray() ||
        !resultObj) {
        ::unlink(path.c_str());  // wrong version / malformed envelope
        return false;
    }
    if (storedKey->asString() != key)
        return false;  // filename hash collision: miss, leave in place

    std::set<std::string> cov;
    for (const auto &item : coveredArr->items()) {
        if (!item.isString()) {
            ::unlink(path.c_str());
            return false;
        }
        cov.insert(item.asString());
    }
    AppRunResult res;
    const std::string why = runResultFromJson(*resultObj, res);
    if (!why.empty()) {
        ::unlink(path.c_str());
        return false;
    }

    // Hit: bump recency in the index.
    json::Value index = loadIndexLocked();
    std::vector<IndexRow> rows;
    std::uint64_t seq = 0;
    parseIndex(index, rows, seq);
    ++seq;
    bool found = false;
    for (auto &row : rows) {
        if (row.file == file) {
            row.seq = seq;
            found = true;
        }
    }
    if (!found)
        rows.push_back({file, fileBytes(path), seq});
    storeIndexLocked(buildIndex(rows, seq));

    result = std::move(res);
    covered = std::move(cov);
    return true;
}

void
DiskCache::publish(const std::string &key, const AppRunResult &result,
                   const std::set<std::string> &covered)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::string file = entryFileFor(key);
    const std::string path = root_ + "/" + file;

    json::Value entry = json::Value::object();
    entry.set("jetty_cache", kDiskCacheVersion);
    entry.set("key", key);
    json::Value cov = json::Value::array();
    for (const auto &spec : covered)
        cov.push(spec);
    entry.set("covered", std::move(cov));
    entry.set("result", runResultToJson(result));

    const std::string why = json::writeFileErr(path, entry);
    if (!why.empty())
        return;  // best effort: the tier just misses next time

    json::Value index = loadIndexLocked();
    std::vector<IndexRow> rows;
    std::uint64_t seq = 0;
    parseIndex(index, rows, seq);
    ++seq;
    bool found = false;
    for (auto &row : rows) {
        if (row.file == file) {
            row.seq = seq;
            row.bytes = fileBytes(path);
            found = true;
        }
    }
    if (!found)
        rows.push_back({file, fileBytes(path), seq});

    // LRU eviction by byte budget; never evict the entry just published.
    std::uint64_t total = 0;
    for (const auto &row : rows)
        total += row.bytes;
    std::sort(rows.begin(), rows.end(),
              [](const IndexRow &a, const IndexRow &b) {
                  return a.seq < b.seq;
              });
    std::vector<IndexRow> kept;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (total > budget_ && rows[i].file != file) {
            ::unlink((root_ + "/" + rows[i].file).c_str());
            total -= rows[i].bytes;
            continue;
        }
        kept.push_back(rows[i]);
    }
    storeIndexLocked(buildIndex(kept, seq));
}

} // namespace jetty::experiments
