/**
 * @file
 * Bus-side write-back buffer. Dirty coherence units evicted from the L2
 * wait here until the bus drains them to memory. Snoops always probe the
 * buffer (the JETTY never filters it -- the paper points out the WB array
 * is tiny compared to the L2 tags, so probing it is cheap), and a
 * processor's own miss may reclaim an in-flight victim.
 */

#ifndef JETTY_MEM_WRITEBACK_BUFFER_HH
#define JETTY_MEM_WRITEBACK_BUFFER_HH

#include <cstdint>
#include <deque>

#include "coherence/moesi.hh"
#include "util/types.hh"

namespace jetty::mem
{

/** One dirty coherence unit awaiting its memory update. */
struct WbEntry
{
    Addr unitAddr = 0;
    coherence::State state = coherence::State::Invalid;
};

/** FIFO write-back buffer of bounded capacity. */
class WritebackBuffer
{
  public:
    /** @param capacity maximum in-flight victims (paper-era systems use a
     *  handful; we default to 8). */
    explicit WritebackBuffer(unsigned capacity = 8) : capacity_(capacity) {}

    /** True when another victim can be accepted without draining. */
    bool hasRoom() const { return entries_.size() < capacity_; }

    /** True when no victims are pending. */
    bool empty() const { return entries_.empty(); }

    /** Number of pending victims. */
    std::size_t size() const { return entries_.size(); }

    /** Buffer capacity. */
    unsigned capacity() const { return capacity_; }

    /** Enqueue a victim; the caller must ensure room (drain first). */
    void push(const WbEntry &e);

    /** Drain the oldest victim (caller issues the memory write). */
    WbEntry pop();

    /** Snoop probe: does the buffer hold @p unitAddr? */
    bool contains(Addr unitAddr) const;

    /**
     * Conservative one-load presence test: false guarantees the buffer
     * does not hold @p unitAddr (the batched snoop path skips the scan);
     * true only means "possibly". Backed by a 64-bit Bloom signature
     * maintained across push/pop/take/snoop, so it is exact-safe — a
     * stale bit can only cause a redundant scan, never a missed entry.
     */
    bool
    maybeContains(Addr unitAddr) const
    {
        return (signature_ & signatureBitOf(unitAddr)) != 0;
    }

    /**
     * maybeContains() with the signature bit already in hand: the
     * broadcast path computes signatureBitOf(addr) once and tests it
     * against every remote node's buffer instead of re-hashing the
     * address per node.
     */
    bool
    maybeContainsSig(std::uint64_t bit) const
    {
        return (signature_ & bit) != 0;
    }

    /** Signature-hash geometry, shared with the batched miss pipeline:
     *  SmpSystem::prepareMissRun computes whole runs of signature bits
     *  through simd::oneHotHash with exactly these constants, so they
     *  are named once here instead of living as magic numbers in two
     *  hot paths. */
    static constexpr unsigned kSigPreShift = 5;  //!< unit-granular bits
    static constexpr std::uint64_t kSigMul = 0x9E3779B97F4A7C15ull;
    static constexpr unsigned kSigPostShift = 58;  //!< keep top 6 bits

    /** Signature bit of @p unitAddr: a multiplicative hash over the
     *  unit-granular address bits, mapped onto a 64-bit mask. Matches
     *  simd::oneHotHash(kSigPreShift, kSigMul, kSigPostShift). */
    static std::uint64_t
    signatureBitOf(Addr unitAddr)
    {
        return std::uint64_t{1}
               << (((unitAddr >> kSigPreShift) * kSigMul) >> kSigPostShift);
    }

    /** The current Bloom signature (tests and verification). */
    std::uint64_t signature() const { return signature_; }

    /**
     * Remove and return the entry for @p unitAddr (reclaim by the owner,
     * or invalidation by a remote BusReadX after the buffer supplied
     * data). @p found reports whether it existed.
     */
    WbEntry take(Addr unitAddr, bool &found);

    /**
     * A remote BusRead snooped @p unitAddr here and the buffer supplied
     * the data: a Modified entry is no longer the only copy and demotes
     * to Owned (still dirty, still responsible for the memory update, but
     * a later reclaim must not resurrect write permission while the
     * reader holds its Shared copy). Owned entries are unchanged.
     *
     * @return true when an entry for @p unitAddr existed.
     */
    bool demoteForRead(Addr unitAddr);

    /**
     * One bus snoop's whole buffer interaction in a single scan:
     * @p invalidate (BusReadX/BusUpgrade — the requester takes
     * ownership) removes the entry; otherwise (a supplying BusRead) a
     * Modified entry demotes to Owned as in demoteForRead().
     *
     * @return true when the buffer held @p unitAddr (the snoop "hit").
     */
    bool snoop(Addr unitAddr, bool invalidate);

    /** The pending victims in FIFO order (verification / tests). */
    const std::deque<WbEntry> &entries() const { return entries_; }

  private:
    /** Recompute the signature from the live entries (<= capacity). */
    void rebuildSignature();

    std::deque<WbEntry> entries_;
    unsigned capacity_;
    std::uint64_t signature_ = 0;
};

} // namespace jetty::mem

#endif // JETTY_MEM_WRITEBACK_BUFFER_HH
