/**
 * @file
 * Textual filter specifications and the factory that instantiates them.
 * The grammar mirrors the paper's configuration names:
 *
 *   "NULL"                         no filter (baseline)
 *   "EJ-<sets>x<assoc>"            exclude-JETTY, e.g. "EJ-32x4"
 *   "VEJ-<sets>x<assoc>-<vec>"     vector exclude-JETTY, e.g. "VEJ-32x4-8"
 *   "IJ-<E>x<N>x<S>[u]"            include-JETTY, e.g. "IJ-10x4x7";
 *                                  a trailing 'u' selects unit-granular
 *                                  index generation (ablation)
 *   "RF-<E>x<R>"                   coarse region filter (extension),
 *                                  2^E entries over 2^R-byte regions
 *   "HJ(<ij-spec>,<e-spec>)"       hybrid, e.g. "HJ(IJ-10x4x7,EJ-32x4)"
 *
 * Each family's parser lives in the FilterRegistry (filter_registry.hh);
 * makeFilter() dispatches through it, so new families extend the grammar
 * by registering themselves instead of editing a central parser.
 */

#ifndef JETTY_CORE_FILTER_SPEC_HH
#define JETTY_CORE_FILTER_SPEC_HH

#include <string>
#include <vector>

#include "core/snoop_filter.hh"

namespace jetty::filter
{

/**
 * Build a filter from its spec string. Calls fatal() on a malformed spec.
 *
 * @param spec configuration name per the grammar above.
 * @param amap address-space facts from the simulated system.
 */
SnoopFilterPtr makeFilter(const std::string &spec, const AddressMap &amap);

/** True when @p spec parses (without instantiating on failure). */
bool isValidFilterSpec(const std::string &spec);

/**
 * The canonical name of the filter @p spec builds (e.g. "null" ->
 * "NULL"). Canonical names round-trip: they parse back to an identical
 * filter. Calls fatal() on a malformed spec.
 */
std::string canonicalFilterName(const std::string &spec,
                                const AddressMap &amap);

/** The paper's evaluated configurations, for the benches. */
std::vector<std::string> paperExcludeSpecs();        //!< Figure 4(a)
std::vector<std::string> paperVectorExcludeSpecs();  //!< Figure 4(b)
std::vector<std::string> paperIncludeSpecs();        //!< Figure 5(a)
std::vector<std::string> paperHybridSpecs();         //!< Figure 5(b)/6

} // namespace jetty::filter

#endif // JETTY_CORE_FILTER_SPEC_HH
