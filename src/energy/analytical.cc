#include "energy/analytical.hh"

#include <cassert>

namespace jetty::energy
{

AnalyticalResult
AnalyticalSnoopModel::evaluate(double l, double r) const
{
    assert(l >= 0.0 && l <= 1.0 && r >= 0.0 && r <= 1.0);

    const double tag = params_.tagEnergy;
    const double data = params_.dataEnergy;
    const double remotes = static_cast<double>(params_.ncpu - 1);

    AnalyticalResult res;
    res.tagSnoopMiss = tag * remotes * (1.0 - l) * (1.0 - r);
    res.snoopEnergy = res.tagSnoopMiss + tag * remotes * (1.0 - l) * r;
    res.dataEnergy = data * (1.0 + remotes * (1.0 - l) * r);
    res.tagAll = res.snoopEnergy + tag * (1.0 + (1.0 - l));
    const double total = res.dataEnergy + res.tagAll;
    res.snoopMissFraction = total > 0.0 ? res.tagSnoopMiss / total : 0.0;
    return res;
}

AnalyticalSnoopModel
AnalyticalSnoopModel::forCache(const CacheGeometry &geom, unsigned ncpu,
                               const Technology &tech)
{
    CacheEnergyModel model(geom, tech);
    AnalyticalParams p;
    p.tagEnergy = model.energies().tagRead;
    // Section 2.1's estimate charges one whole block per data access.
    p.dataEnergy = model.energies().dataReadUnit * geom.subblocks;
    p.ncpu = ncpu;
    return AnalyticalSnoopModel(p);
}

} // namespace jetty::energy
