/**
 * @file
 * Online invariant checkers for the differential verification subsystem.
 *
 * CheckerSuite attaches to a live SmpSystem through the observer hooks
 * (sim/observer.hh, core/filter_bank.hh) and validates, while the
 * simulation runs:
 *
 *  - **No false negative** (the JETTY safety property): no filter may
 *    answer "definitely not present" for a unit that is valid in the
 *    local L2. Checked per (filter, snoop) verdict for every family in
 *    the bank, independently of the bank's own safety panic (which the
 *    fuzzer disables so a broken filter is *reported* rather than
 *    aborting the process).
 *  - **Legal MOESI transitions**: every observed snoop's (before, op) ->
 *    (after, supplied) tuple must match an independently restated
 *    write-invalidate MOESI table.
 *  - **Snoop-side inclusion**: whenever a snoop invalidates a unit or
 *    strips its exclusivity, the target's L1 must no longer hold the
 *    line.
 *  - **Bus routing**: on the split snoop interconnect every snoop and
 *    every transaction for unit U must appear on U's home bus — an
 *    independently restated interleave (division/modulo over the
 *    configuration, not the Interconnect's shift) recomputes the
 *    expected bus for every observed event.
 *  - **Global single-writer / single-owner** (periodic audit): across
 *    all L2s and write-back buffers, a unit has at most one M or E copy
 *    (and then no other copies), and at most one O copy.
 *  - **L1/L2 inclusion and write-back consistency** (periodic audit):
 *    every L1 line is backed by a valid L2 unit, writable lines by M/E
 *    units, dirty lines are writable; WB entries are dirty, unique,
 *    within capacity, and never duplicate a valid unit of the owner's
 *    L2.
 *
 * The suite also doubles as the fuzzer's coverage collector: it tallies
 * which (state, bus-op) snoop transitions and which per-filter
 * (filtered, cached) outcome cells the workload exercised.
 */

#ifndef JETTY_VERIFY_INVARIANTS_HH
#define JETTY_VERIFY_INVARIANTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/filter_bank.hh"
#include "sim/observer.hh"
#include "sim/smp_system.hh"

namespace jetty::verify
{

/** One invariant violation, stamped with when it happened. */
struct Violation
{
    std::string invariant;  //!< e.g. "no-false-negative"
    std::string detail;
    std::uint64_t refIndex = 0;  //!< references retired when it fired
};

/** Bounded violation collector shared by all checkers. */
class ViolationLog
{
  public:
    explicit ViolationLog(std::size_t keep = 32) : keep_(keep) {}

    void
    report(const std::string &invariant, const std::string &detail)
    {
        ++total_;
        if (violations_.size() < keep_)
            violations_.push_back({invariant, detail, refIndex_});
    }

    bool clean() const { return total_ == 0; }
    std::uint64_t total() const { return total_; }
    const std::vector<Violation> &violations() const { return violations_; }
    void setRefIndex(std::uint64_t idx) { refIndex_ = idx; }

    /** First violation as a "invariant: detail" line ("" when clean). */
    std::string summary() const;

  private:
    std::vector<Violation> violations_;
    std::size_t keep_;
    std::uint64_t total_ = 0;
    std::uint64_t refIndex_ = 0;
};

/** Enum extents of the coverage grid. The static_asserts pin them to
 *  the last enumerator of each, so adding a coherence state or bus op
 *  without growing the grid is a compile error, not an out-of-bounds
 *  write in the checker. */
constexpr int kStateCount = 5;
constexpr int kBusOpCount = 4;
static_assert(static_cast<int>(coherence::State::Modified) ==
                  kStateCount - 1,
              "grow CoverageMap::snoopCells for the new State");
static_assert(static_cast<int>(coherence::BusOp::BusWriteback) ==
                  kBusOpCount - 1,
              "grow CoverageMap::snoopCells for the new BusOp");

/** Coverage tallies used to bias the fuzzer's trace generation. */
struct CoverageMap
{
    /** Snoop transition cells: [State][BusOp] observation counts. */
    std::uint64_t snoopCells[kStateCount][kBusOpCount] = {};

    /** Per-filter outcome cells: [filtered][unitInL2]. The
     *  filtered-and-cached cell stays zero for every correct filter. */
    struct FilterCells
    {
        std::uint64_t cells[2][2] = {};
    };
    std::vector<FilterCells> filters;

    std::uint64_t wbHits = 0;       //!< snoops satisfied by a WB
    std::uint64_t supplies = 0;     //!< cache-to-cache transfers
    std::uint64_t invalidations = 0;  //!< snoop-induced unit removals

    /** Number of non-zero cells (the fuzzer maximizes this). */
    std::size_t cellsCovered() const;

    /** Total cells being tracked. */
    std::size_t cellsTracked() const;

    /** Accumulate another run's tallies (resizing filters as needed). */
    void merge(const CoverageMap &o);
};

/**
 * The combined online checker + coverage collector. Construction
 * attaches it to @p sys (and detachment happens in the destructor), so
 * the usual shape is: build system, build suite, attach sources, run.
 *
 * @param auditEvery run the full-system global audit every that many
 *        retired references (0 = only when audit() is called manually).
 */
class CheckerSuite : public sim::SimObserver,
                     public filter::FilterProbeObserver
{
  public:
    explicit CheckerSuite(sim::SmpSystem &sys, std::uint64_t auditEvery = 0);
    ~CheckerSuite() override;

    CheckerSuite(const CheckerSuite &) = delete;
    CheckerSuite &operator=(const CheckerSuite &) = delete;

    // SimObserver
    void onReference(ProcId p, AccessType type, Addr addr) override;
    void onSnoop(const sim::SnoopEvent &ev) override;
    void onBusTransaction(ProcId requester, coherence::BusOp op,
                          Addr unitAddr, unsigned remoteCopies,
                          unsigned busId) override;

    // FilterProbeObserver
    void onFilterProbe(const filter::FilterProbeEvent &ev) override;

    /** Full-system global state audit (also run periodically). */
    void audit();

    const ViolationLog &log() const { return log_; }
    const CoverageMap &coverage() const { return coverage_; }
    std::uint64_t references() const { return references_; }

  private:
    sim::SmpSystem &sys_;
    ViolationLog log_;
    CoverageMap coverage_;
    std::vector<std::string> filterNames_;
    std::uint64_t auditEvery_;
    std::uint64_t references_ = 0;
};

} // namespace jetty::verify

#endif // JETTY_VERIFY_INVARIANTS_HH
