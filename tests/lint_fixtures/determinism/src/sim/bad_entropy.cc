// Fixture: two determinism violations the lint must name with
// file:line — a libc RNG call and a wall-clock type.
#include <chrono>
#include <cstdlib>

namespace jetty::sim
{

unsigned
pickSeed()
{
    return static_cast<unsigned>(rand());  // line 12: banned call form
}

long
wallSeed()
{
    return std::chrono::system_clock::now().time_since_epoch().count();
}

} // namespace jetty::sim
