/**
 * @file
 * Scenario example: producer/consumer sharing, driven access by access
 * through the low-level SmpSystem API (no workload generator). Shows how
 * the coherence protocol, the snoop stream and the exclude-JETTY interact
 * on the paper's canonical sharing pattern (Section 3.1): the two
 * processors involved in the exchange keep finding each other's copies,
 * while the two bystanders' JETTYs learn to filter the traffic.
 */

#include <cstdio>

#include "sim/smp_system.hh"

using namespace jetty;
using namespace jetty::sim;

int
main()
{
    SmpConfig cfg;  // paper base system
    cfg.filterSpecs = {"EJ-32x4", "IJ-9x4x7", "HJ(IJ-9x4x7,EJ-32x4)"};
    SmpSystem sys(cfg);

    // Processor 0 produces a 16KB buffer; processor 1 consumes it; this
    // repeats for 64 rounds. Processors 2 and 3 run a private scan.
    constexpr Addr buffer = 0x100000;
    constexpr Addr scratch2 = 0x800000;
    constexpr Addr scratch3 = 0xc00000;
    constexpr unsigned kBufBytes = 16 * 1024;

    for (unsigned round = 0; round < 64; ++round) {
        for (unsigned off = 0; off < kBufBytes; off += 4) {
            sys.processorAccess(0, AccessType::Write, buffer + off);
            sys.processorAccess(1, AccessType::Read, buffer + off);
            sys.processorAccess(
                2, AccessType::Read,
                scratch2 + (round * kBufBytes + off) % (4 << 20));
            sys.processorAccess(
                3, AccessType::Write,
                scratch3 + (round * kBufBytes + off) % (4 << 20));
        }
    }

    std::printf("Producer/consumer exchange, 64 rounds of 16KB:\n\n");
    std::printf("%-5s %-14s %-14s %-12s\n", "proc", "snoop probes",
                "snoop misses", "role");
    const char *roles[] = {"producer", "consumer", "bystander",
                           "bystander"};
    for (unsigned p = 0; p < 4; ++p) {
        const auto &ps = sys.stats().procs[p];
        std::printf("%-5u %-14llu %-14llu %-12s\n", p,
                    static_cast<unsigned long long>(ps.snoopTagProbes),
                    static_cast<unsigned long long>(ps.snoopMisses),
                    roles[p]);
    }

    std::printf("\nPer-processor JETTY coverage (snoop misses filtered):\n");
    std::printf("%-5s", "proc");
    for (std::size_t f = 0; f < sys.bank(0).size(); ++f)
        std::printf(" %-22s", sys.bank(0).filterAt(f).name().c_str());
    std::printf("\n");
    for (unsigned p = 0; p < 4; ++p) {
        std::printf("%-5u", p);
        for (std::size_t f = 0; f < sys.bank(p).size(); ++f) {
            std::printf(" %-22.1f",
                        100.0 * sys.bank(p).statsAt(f).coverage());
        }
        std::printf("\n");
    }

    std::printf("\nReading the table: the bystanders (2, 3) never cache "
                "the buffer, so their\nJETTYs filter nearly all of the "
                "producer/consumer snoop storm; the exchange\npartners "
                "themselves hold copies, so their snoops mostly hit and "
                "cannot be\n(and are not) filtered.\n");
    return 0;
}
