/**
 * @file
 * The synthetic workload engine: lays out the address space for an
 * AppProfile and manufactures one deterministic TraceSource per processor.
 */

#ifndef JETTY_TRACE_SYNTHETIC_HH
#define JETTY_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/app_profile.hh"
#include "trace/trace_source.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace jetty::trace
{

/** Resolved placement of one stream in the physical address space. */
struct StreamLayout
{
    StreamSpec spec;

    /** Base of the region. For per-processor regions, processor p's slice
     *  starts at base + p * perProcBytes. */
    Addr base = 0;

    /** Stride between consecutive processors' slices (0 for shared). */
    std::uint64_t perProcBytes = 0;

    /** Total bytes this stream occupies across all processors. */
    std::uint64_t totalBytes = 0;
};

/**
 * A workload instance: one application profile laid out for an SMP of
 * nprocs processors. Create it once, then makeSource() per processor.
 */
class Workload
{
  public:
    /**
     * Lay out @p profile for @p nprocs processors.
     *
     * Generated addresses are *virtual*: region walks are contiguous. A
     * deterministic page table then scatters 4 KiB pages over a physical
     * frame space @p pageSpread times larger, imitating OS physical page
     * allocation -- the address distribution the paper's WWT2 traces see.
     * Without it, contiguous regions make the Include-JETTY's coarse
     * index slices unrealistically discriminating.
     *
     * @param accessScale multiplies accessesPerProc (tests use < 1.0).
     * @param pageSpread  physical/virtual footprint ratio (>= 1).
     */
    Workload(const AppProfile &profile, unsigned nprocs,
             double accessScale = 1.0, unsigned pageSpread = 8);

    /** Translate a virtual address to its scattered physical address. */
    Addr translate(Addr vaddr) const;

    /** The deterministic reference stream of processor @p proc. The
     *  source (and any clone() of it) reads this Workload's layout and
     *  page table and must not outlive it; one Workload can feed many
     *  concurrently running systems because that shared state is
     *  immutable after construction. */
    TraceSourcePtr makeSource(ProcId proc) const;

    /** Total bytes of address space the profile touches (the paper's
     *  "MA" column). */
    std::uint64_t memoryAllocated() const { return memAllocated_; }

    /** References each processor will issue. */
    std::uint64_t accessesPerProc() const { return accessesPerProc_; }

    /** The profile this workload was built from. */
    const AppProfile &profile() const { return profile_; }

    /** Number of processors the layout was built for. */
    unsigned nprocs() const { return nprocs_; }

    /** Stream layouts (exposed for tests; bases are virtual). */
    const std::vector<StreamLayout> &layouts() const { return layouts_; }

  private:
    AppProfile profile_;
    unsigned nprocs_;
    std::uint64_t accessesPerProc_;
    std::uint64_t memAllocated_ = 0;
    std::vector<StreamLayout> layouts_;
    Addr virtBase_ = 0;
    Addr virtEnd_ = 0;
    std::vector<std::uint32_t> pageFrames_;  //!< virtual page -> frame
};

} // namespace jetty::trace

#endif // JETTY_TRACE_SYNTHETIC_HH
