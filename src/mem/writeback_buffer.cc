#include "mem/writeback_buffer.hh"

#include "util/logging.hh"
#include "util/simd.hh"

namespace jetty::mem
{

void
WritebackBuffer::push(const WbEntry &e)
{
    if (!hasRoom())
        panic("WritebackBuffer::push without room");
    entries_.push_back(e);
    signature_ |= signatureBitOf(e.unitAddr);
}

WbEntry
WritebackBuffer::pop()
{
    if (entries_.empty())
        panic("WritebackBuffer::pop on empty buffer");
    WbEntry e = entries_.front();
    entries_.pop_front();
    rebuildSignature();
    return e;
}

bool
WritebackBuffer::contains(Addr unitAddr) const
{
    for (const auto &e : entries_) {
        if (e.unitAddr == unitAddr)
            return true;
    }
    return false;
}

bool
WritebackBuffer::snoop(Addr unitAddr, bool invalidate)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->unitAddr != unitAddr)
            continue;
        if (invalidate) {
            entries_.erase(it);
            rebuildSignature();
        } else if (it->state == coherence::State::Modified) {
            it->state = coherence::State::Owned;
        }
        return true;
    }
    return false;
}

bool
WritebackBuffer::demoteForRead(Addr unitAddr)
{
    for (auto &e : entries_) {
        if (e.unitAddr == unitAddr) {
            if (e.state == coherence::State::Modified)
                e.state = coherence::State::Owned;
            return true;
        }
    }
    return false;
}

WbEntry
WritebackBuffer::take(Addr unitAddr, bool &found)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->unitAddr == unitAddr) {
            WbEntry e = *it;
            entries_.erase(it);
            rebuildSignature();
            found = true;
            return e;
        }
    }
    found = false;
    return WbEntry{};
}

void
WritebackBuffer::rebuildSignature()
{
    // One vector sweep over the (<= capacity) live entries: hash every
    // address to its one-hot bit, then OR the bits together. Identical
    // to signatureBitOf per entry — simd::oneHotHash is the same
    // preShift/mul/postShift pipeline, kernel-tested against it.
    std::uint64_t addrs[64], bits[64];
    std::size_t n = 0;
    for (const auto &e : entries_) {
        addrs[n++] = e.unitAddr;
        if (n == 64) {
            break;  // a 64-bit signature is saturated by 64 entries
        }
    }
    simd::oneHotHash(addrs, n, 5, 0x9E3779B97F4A7C15ull, 58, bits);
    std::uint64_t sig = 0;
    for (std::size_t k = 0; k < n; ++k)
        sig |= bits[k];
    // Entries beyond the vector batch (capacity > 64) fold in scalar.
    for (std::size_t k = 64; k < entries_.size(); ++k)
        sig |= signatureBitOf(entries_[k].unitAddr);
    signature_ = sig;
}

} // namespace jetty::mem
