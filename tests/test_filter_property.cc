/**
 * @file
 * Property tests of the JETTY safety guarantee: for every filter
 * configuration, under randomized fill/evict/snoop traffic driven through
 * a real subblocked L2, a filtered snoop must always be a true miss, and
 * Include-JETTY counters must stay coherent with the cache contents.
 * Parameterized over (filter spec x RNG seed).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/filter_bank.hh"
#include "core/filter_spec.hh"
#include "mem/l2_cache.hh"
#include "util/random.hh"

using namespace jetty;
using namespace jetty::filter;
using coherence::BusOp;
using coherence::State;

namespace
{

std::vector<std::string>
allSpecs()
{
    std::vector<std::string> specs;
    for (const auto &group :
         {paperExcludeSpecs(), paperVectorExcludeSpecs(),
          paperIncludeSpecs(), paperHybridSpecs()}) {
        for (const auto &s : group)
            specs.push_back(s);
    }
    specs.push_back("IJ-10x4x7u");
    specs.push_back("HJ(IJ-9x4x7,VEJ-32x4-8)");
    return specs;
}

} // namespace

class FilterSafety
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>>
{
};

TEST_P(FilterSafety, NeverFiltersACachedUnit)
{
    const auto [spec, seed] = GetParam();

    mem::L2Config l2cfg;
    l2cfg.sizeBytes = 64 * 1024;  // small L2: heavy eviction churn
    l2cfg.blockBytes = 64;
    l2cfg.subblocks = 2;
    mem::L2Cache l2(l2cfg);

    AddressMap amap;
    amap.unitOffsetBits = 5;
    amap.blockOffsetBits = 6;
    amap.physAddrBits = 40;
    amap.l2CapacityUnits = l2cfg.sizeBytes / l2cfg.unitBytes();

    // checkSafety=false so violations are counted, then asserted on.
    FilterBank bank({spec}, amap, /*checkSafety=*/false);
    l2.addListener(&bank);

    Rng rng(1000 + seed);
    std::vector<mem::L2Victim> victims;

    // Addresses drawn from a small pool to force heavy reuse and
    // conflicts (the adversarial case for stale filter state).
    auto draw = [&] {
        return (rng.below(4096)) * 32 + 0x40000;
    };

    for (int step = 0; step < 60000; ++step) {
        const Addr a = draw();
        const unsigned action = static_cast<unsigned>(rng.below(100));
        if (action < 45) {
            // Incoming snoop with ground truth, then protocol action.
            const auto pr = l2.probe(a);
            bank.observeSnoop(a, pr.unitValid, pr.tagMatch);
            const BusOp op = rng.chance(0.3) ? BusOp::BusReadX
                                             : BusOp::BusRead;
            l2.snoop(a, op);
        } else if (action < 85) {
            // Local fill (if absent).
            if (!l2.probe(a).unitValid) {
                victims.clear();
                l2.fill(a, rng.chance(0.5) ? State::Exclusive
                                           : State::Shared,
                        victims);
            }
        } else {
            // Local invalidation (inclusion-style).
            l2.invalidateUnit(a);
        }
    }

    const auto &stats = bank.statsAt(0);
    EXPECT_EQ(stats.safetyViolations, 0u) << spec;
    EXPECT_GT(stats.probes, 0u);
    // Sanity: coverage is a valid fraction.
    EXPECT_GE(stats.coverage(), 0.0);
    EXPECT_LE(stats.coverage(), 1.0);
    // Filtered snoops are a subset of true misses.
    EXPECT_LE(stats.filteredWouldMiss, stats.wouldMiss);
    EXPECT_EQ(stats.filtered, stats.filteredWouldMiss);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, FilterSafety,
    ::testing::Combine(::testing::ValuesIn(allSpecs()),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto &param_info) {
        std::string name = std::get<0>(param_info.param) + "_s" +
                           std::to_string(std::get<1>(param_info.param));
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/** IJ counter coherence: after arbitrary traffic, an empty cache must
 *  mean "filter everything" again. */
class IncludeJettyCoherence : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(IncludeJettyCoherence, DrainsToEmpty)
{
    const unsigned seed = GetParam();

    mem::L2Config l2cfg;
    l2cfg.sizeBytes = 32 * 1024;
    mem::L2Cache l2(l2cfg);

    AddressMap amap;
    amap.l2CapacityUnits = l2cfg.sizeBytes / l2cfg.unitBytes();
    FilterBank bank({"IJ-8x4x7"}, amap, true);
    l2.addListener(&bank);

    Rng rng(seed);
    std::vector<mem::L2Victim> victims;
    std::vector<Addr> filled;
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.below(1 << 20) * 32;
        if (!l2.probe(a).unitValid) {
            victims.clear();
            l2.fill(a, State::Exclusive, victims);
        }
    }

    // Drain the cache via snoop invalidations at every unit address the
    // cache still holds (walk the whole address range we used).
    for (Addr a = 0; a < (1ull << 25); a += 32) {
        if (l2.probe(a).unitValid)
            l2.snoop(a, BusOp::BusReadX);
    }
    ASSERT_EQ(l2.validUnits(), 0u);

    // With nothing cached, the IJ must filter any address again.
    auto &ij = bank.filterAt(0);
    Rng rng2(seed + 99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(ij.probe(rng2.below(1ull << 38) * 32));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncludeJettyCoherence,
                         ::testing::Values(11u, 22u, 33u, 44u));
