#include "mem/l1_cache.hh"

#include <algorithm>
#include <cassert>

#include "util/bits.hh"
#include "util/logging.hh"

namespace jetty::mem
{

L1Cache::L1Cache(const L1Config &cfg) : cfg_(cfg)
{
    if (!isPowerOfTwo(cfg.sizeBytes) || !isPowerOfTwo(cfg.blockBytes) ||
        !isPowerOfTwo(cfg.assoc)) {
        fatal("L1Cache: all geometry parameters must be powers of two");
    }
    const std::uint64_t sets = cfg.sets();
    if (sets == 0)
        fatal("L1Cache: size too small for block/assoc");

    lineMask_ = cfg.blockBytes - 1;
    offsetBits_ = floorLog2(cfg.blockBytes);
    indexBits_ = floorLog2(sets);

    lines_.assign(static_cast<std::size_t>(sets) * cfg.assoc, Line{});
}

std::uint64_t
L1Cache::setIndex(Addr a) const
{
    return bitField(a, offsetBits_, indexBits_);
}

Addr
L1Cache::tagOf(Addr a) const
{
    return a >> (offsetBits_ + indexBits_);
}

Addr
L1Cache::lineAddrOf(Addr tag, std::uint64_t set) const
{
    return (tag << (offsetBits_ + indexBits_)) | (set << offsetBits_);
}

int
L1Cache::findWay(Addr a) const
{
    const std::uint64_t set = setIndex(a);
    const Addr tag = tagOf(a);
    const Line *const ways = &lines_[set * cfg_.assoc];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

L1LookupResult
L1Cache::probe(Addr addr) const
{
    L1LookupResult res;
    const int w = findWay(addr);
    if (w < 0)
        return res;
    const Line &l = lines_[setIndex(addr) * cfg_.assoc + w];
    res.hit = true;
    res.writable = l.writable;
    res.dirty = l.dirty;
    return res;
}

void
L1Cache::touch(Addr addr)
{
    const int w = findWay(addr);
    if (w >= 0)
        lines_[setIndex(addr) * cfg_.assoc + w].lastUse = ++useClock_;
}

void
L1Cache::markDirty(Addr addr)
{
    const int w = findWay(addr);
    if (w < 0)
        panic("L1Cache::markDirty on absent line");
    Line &l = lines_[setIndex(addr) * cfg_.assoc + w];
    if (!l.writable)
        panic("L1Cache::markDirty on non-writable line");
    l.dirty = true;
}

void
L1Cache::setWritable(Addr addr, bool writable)
{
    const int w = findWay(addr);
    if (w < 0)
        panic("L1Cache::setWritable on absent line");
    lines_[setIndex(addr) * cfg_.assoc + w].writable = writable;
}

void
L1Cache::fill(Addr addr, bool writable, L1Victim &victim)
{
    victim = L1Victim{};
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);

    if (findWay(addr) >= 0)
        panic("L1Cache::fill of an already-present line");

    Line *const ways = &lines_[set * cfg_.assoc];
    int target = -1;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (!ways[w].valid) {
            target = static_cast<int>(w);
            break;
        }
    }
    if (target < 0) {
        std::uint64_t oldest = ~std::uint64_t{0};
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            if (ways[w].lastUse < oldest) {
                oldest = ways[w].lastUse;
                target = static_cast<int>(w);
            }
        }
    }

    Line &l = ways[target];
    if (l.valid) {
        victim.valid = true;
        victim.dirty = l.dirty;
        victim.lineAddr = lineAddrOf(l.tag, set);
        --validLines_;
    }
    l.valid = true;
    l.tag = tag;
    l.writable = writable;
    l.dirty = false;
    l.lastUse = ++useClock_;
    ++validLines_;
}

std::vector<L1LineInfo>
L1Cache::validLineInfo() const
{
    std::vector<L1LineInfo> lines;
    lines.reserve(validLines_);
    const std::uint64_t sets = cfg_.sets();
    for (std::uint64_t set = 0; set < sets; ++set) {
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            const Line &l = lines_[set * cfg_.assoc + w];
            if (!l.valid)
                continue;
            L1LineInfo info;
            info.lineAddr = lineAddrOf(l.tag, set);
            info.writable = l.writable;
            info.dirty = l.dirty;
            lines.push_back(info);
        }
    }
    std::sort(lines.begin(), lines.end(),
              [](const L1LineInfo &a, const L1LineInfo &b) {
                  return a.lineAddr < b.lineAddr;
              });
    return lines;
}

bool
L1Cache::invalidate(Addr addr)
{
    const int w = findWay(addr);
    if (w < 0)
        return false;
    Line &l = lines_[setIndex(addr) * cfg_.assoc + w];
    const bool was_dirty = l.dirty;
    l.valid = false;
    l.dirty = false;
    l.writable = false;
    --validLines_;
    return was_dirty;
}

} // namespace jetty::mem
