/**
 * @file
 * WorkerPool: the one thread pool under both parallel engines — the
 * sweep runner's job batches and the per-bus filter replay of the
 * batched simulation loop.
 *
 * The pool exposes a single primitive, parallelFor(n, fn): run fn(i)
 * for every i in [0, n) and return when all calls finished. Work is
 * distributed by an atomic index counter that the *caller drains too*,
 * which gives two properties the replay path needs:
 *  - deadlock freedom under nesting and concurrent calls: a caller
 *    never blocks on a worker that could itself be waiting — it chews
 *    through the remaining indices itself;
 *  - graceful degradation: with 0 workers (threads <= 1, or a
 *    single-core host) parallelFor is a plain loop on the caller, so
 *    threading is a pure wall-clock lever, never a correctness one.
 *
 * Determinism contract: parallelFor promises nothing about execution
 * order, so callers must only hand it tasks that are mutually
 * independent (each writes its own slots). Both engines do exactly
 * that, which is why jobs=1 and jobs=N are bit-identical.
 */

#ifndef JETTY_SIM_WORKER_POOL_HH
#define JETTY_SIM_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace jetty::sim
{

/** A fixed pool of worker threads with a caller-participating
 *  parallel-for. */
class WorkerPool
{
  public:
    /**
     * @param threads total parallelism including the calling thread:
     *        the pool spawns threads - 1 workers. 0 and 1 spawn none
     *        (parallelFor runs inline).
     */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** The total parallelism this pool was built for (>= 1). */
    unsigned threads() const { return threads_; }

    /**
     * Invoke fn(i) for every i in [0, n), on the caller and the
     * workers, returning once every call completed. fn must tolerate
     * concurrent invocation with distinct i.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    /** One parallelFor invocation's shared state. */
    struct ParJob
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> completed{0};
        std::mutex mu;
        std::condition_variable done;
    };

    /** Pull indices from @p job until they run out. */
    static void drain(const std::shared_ptr<ParJob> &job);

    void workerLoop();

    unsigned threads_;
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stop_ = false;
};

} // namespace jetty::sim

#endif // JETTY_SIM_WORKER_POOL_HH
