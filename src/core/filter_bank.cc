#include "core/filter_bank.hh"

#include "core/filter_spec.hh"
#include "util/logging.hh"

namespace jetty::filter
{

void
FilterStats::merge(const FilterStats &o)
{
    probes += o.probes;
    filtered += o.filtered;
    wouldMiss += o.wouldMiss;
    filteredWouldMiss += o.filteredWouldMiss;
    snoopAllocs += o.snoopAllocs;
    fillUpdates += o.fillUpdates;
    evictUpdates += o.evictUpdates;
    safetyViolations += o.safetyViolations;
}

FilterBank::FilterBank(const std::vector<std::string> &specs,
                       const AddressMap &amap, bool checkSafety)
    : checkSafety_(checkSafety)
{
    filters_.reserve(specs.size());
    for (const auto &spec : specs)
        filters_.push_back(makeFilter(spec, amap));
    stats_.resize(filters_.size());
}

void
FilterBank::observeSnoop(Addr unitAddr, bool unitInL2, bool blockInL2)
{
    // Hot path: one call per filter per snoop per remote node. The
    // ground truth is identical for every filter, so the branch on it is
    // hoisted out of the loop; the counters each arm bumps are exactly
    // those of the straightforward per-filter version. The observer is
    // likewise hoisted into one register-held pointer, so the unobserved
    // bank pays a single never-taken branch per filter.
    const std::size_t n = filters_.size();
    FilterProbeObserver *const obs = probeObserver_;
    if (unitInL2) {
        // Cached here: no filter may claim "not cached".
        for (std::size_t i = 0; i < n; ++i) {
            FilterStats &st = stats_[i];
            ++st.probes;
            const bool filtered = filters_[i]->probe(unitAddr);
            if (obs)
                obs->onFilterProbe(
                    {owner_, i, unitAddr, true, blockInL2, filtered});
            if (filtered) {
                ++st.filtered;
                ++st.safetyViolations;
                if (checkSafety_) {
                    panic("JETTY safety violation: " + filters_[i]->name() +
                          " filtered a snoop to a cached unit");
                }
            }
        }
        return;
    }
    // True miss everywhere: filtering is the win, and unfiltered misses
    // feed the exclude components' allocation streams.
    for (std::size_t i = 0; i < n; ++i) {
        FilterStats &st = stats_[i];
        ++st.probes;
        ++st.wouldMiss;
        const bool filtered = filters_[i]->probe(unitAddr);
        if (obs)
            obs->onFilterProbe(
                {owner_, i, unitAddr, false, blockInL2, filtered});
        if (filtered) {
            ++st.filtered;
            ++st.filteredWouldMiss;
        } else {
            filters_[i]->onSnoopMiss(unitAddr, blockInL2);
            ++st.snoopAllocs;
        }
    }
}

void
FilterBank::unitFilled(Addr unitAddr)
{
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        filters_[i]->onFill(unitAddr);
        ++stats_[i].fillUpdates;
    }
}

void
FilterBank::unitEvicted(Addr unitAddr)
{
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        filters_[i]->onEvict(unitAddr);
        ++stats_[i].evictUpdates;
    }
}

int
FilterBank::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        if (filters_[i]->name() == name)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace jetty::filter
