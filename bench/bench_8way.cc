/**
 * @file
 * Regenerates the 8-way SMP summary of Section 4.3.4: with eight
 * processors, snoop-induced misses become a larger fraction of all L2
 * accesses (paper: 76.4% vs 54.5% on 4 ways) and the best Hybrid-JETTY's
 * average coverage rises (paper: ~79%).
 */

#include <cstdio>

#include "experiments/experiments.hh"
#include "util/table.hh"

using namespace jetty;

int
main()
{
    const std::string best = "HJ(IJ-10x4x7,EJ-32x4)";

    double scale = experiments::defaultScale();
    // The 8-way runs issue twice the references; keep wall time in check.
    scale *= 0.5;

    // Declare the whole 2-variant x 10-app cross-product up front so the
    // sweep engine runs all twenty systems concurrently.
    std::vector<experiments::RunRequest> requests;
    for (unsigned nprocs : {4u, 8u}) {
        experiments::SystemVariant variant;
        variant.nprocs = nprocs;
        for (const auto &app : trace::paperApps()) {
            experiments::RunRequest req;
            req.app = app;
            req.variant = variant;
            req.filterSpecs = {best};
            req.accessScale = scale;
            requests.push_back(std::move(req));
        }
    }
    experiments::runMany(requests);

    TextTable table;
    table.header({"procs", "snoopMiss % of snoops", "snoopMiss % of all L2",
                  "HJ coverage"});

    for (unsigned nprocs : {4u, 8u}) {
        experiments::SystemVariant variant;
        variant.nprocs = nprocs;

        double miss_snoops = 0, miss_all = 0, cov = 0;
        const auto runs = experiments::runAllApps(variant, {best}, scale);
        for (const auto &run : runs) {
            const auto agg = run.stats.aggregate();
            miss_snoops += percent(agg.snoopMisses, agg.snoopTagProbes);
            miss_all += percent(agg.snoopMisses,
                                agg.l2LocalAccesses + agg.snoopTagProbes);
            cov += 100.0 * run.statsFor(best).coverage();
        }
        const double n = static_cast<double>(runs.size());
        table.row({std::to_string(nprocs),
                   TextTable::pct(miss_snoops / n),
                   TextTable::pct(miss_all / n),
                   TextTable::pct(cov / n)});
    }

    std::printf("Section 4.3.4: 8-way SMP summary (best HJ = %s)\n\n",
                best.c_str());
    table.print();
    std::printf("\nPaper: snoop misses 54.5%% -> 76.4%% of all L2 accesses "
                "going 4-way -> 8-way; HJ coverage ~76%% -> ~79%%.\n");
    return 0;
}
