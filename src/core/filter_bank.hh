/**
 * @file
 * FilterBank: passive, parallel evaluation of many JETTY configurations on
 * one processor's snoop and fill/evict streams.
 *
 * Filtering is observation-only -- a JETTY never changes a coherence
 * outcome, only whether the L2 tag array is probed -- so a single
 * simulation run can score every candidate configuration at once. The bank
 * subscribes to the L2's fill/evict events, receives every snoop with its
 * ground-truth outcome, checks the safety invariant (a filtered snoop must
 * be a true miss), and accumulates per-filter coverage statistics that the
 * energy accountant later combines with per-event filter energies.
 */

#ifndef JETTY_CORE_FILTER_BANK_HH
#define JETTY_CORE_FILTER_BANK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/snoop_filter.hh"
#include "energy/accountant.hh"
#include "mem/cache_events.hh"
#include "util/arena.hh"

namespace jetty::filter
{

/**
 * One filter's verdict on one snoop, with the ground truth it was judged
 * against. The verification subsystem's no-false-negative checker hangs
 * off this: `filtered && unitInL2` is the broken-coherence case.
 */
struct FilterProbeEvent
{
    ProcId owner = 0;          //!< node whose bank observed the snoop
    std::size_t filterIdx = 0; //!< index into the bank
    Addr unitAddr = 0;
    bool unitInL2 = false;     //!< ground truth: unit valid in local L2
    bool blockInL2 = false;    //!< ground truth: enclosing tag matched
    bool filtered = false;     //!< the filter claimed "definitely absent"
};

/** Passive observer of every (filter, snoop) verdict. */
class FilterProbeObserver
{
  public:
    virtual ~FilterProbeObserver() = default;
    virtual void onFilterProbe(const FilterProbeEvent &) = 0;
};

/** The bank of simultaneously evaluated filters for one processor. */
class FilterBank : public mem::CacheEventListener
{
  public:
    /**
     * @param specs       configuration names (see filter_spec.hh).
     * @param amap        address-space facts of the simulated system.
     * @param checkSafety verify the "never filter a cached unit" guarantee
     *                    against ground truth (panics on violation when
     *                    true; counts violations either way).
     * @param snoopBuses  logical snoop buses of the interconnect the
     *                    bank's node sits on: deferred events are queued
     *                    (and later replayed) per home bus. 1 keeps the
     *                    classic single-queue behaviour.
     */
    FilterBank(const std::vector<std::string> &specs, const AddressMap &amap,
               bool checkSafety = true, unsigned snoopBuses = 1);

    /**
     * Present one snoop to every filter.
     * @param unitAddr   coherence-unit aligned snooped address.
     * @param unitInL2   ground truth: the unit is valid in the local L2.
     * @param blockInL2  ground truth: the enclosing block's tag matched
     *                   (the tag probe reports this for free).
     */
    void observeSnoop(Addr unitAddr, bool unitInL2, bool blockInL2);

    // ---- The deferred (batched) observation path --------------------
    //
    // The simulation hot loop defers filter work: snoops and the L2's
    // fill/evict notifications are queued per home snoop bus (the same
    // block interleave the interconnect routes transactions by), and a
    // chunk-end flush replays every queue through each filter in one
    // batched pass. Per bus the replay order is exactly the capture
    // order, and all events of one L2 block share a bus, so every
    // block-granular (EJ/VEJ entries, IJ slices) or counting (IJ, RF)
    // structure sees a per-structure totally ordered stream — the
    // no-false-negative guarantee survives deferral for any bus count,
    // and with one bus the replay is the original total order, making
    // the deferred path bit-identical to immediate observation.

    /** Enter deferred mode: observeSnoop and the L2 listener hooks queue
     *  instead of applying. Requires no probe observer (the instrumented
     *  paths stay immediate). */
    void beginDeferred();

    /** Replay all queued events (bus-major) and leave deferred mode. */
    void endDeferred();

    /** Replay all queued events bus-major, staying deferred. Panics on a
     *  safety violation when the bank checks safety. */
    void flushDeferred();

    // ---- The split flush, for parallel replay -----------------------
    //
    // flushDeferred() is prepareFlush() + replayOne(i) for every filter
    // + completeFlush(). The filters of a bank are independent (each
    // replayOne touches only filters_[i], stats_[i] and the read-only
    // queues), so a dispatcher may run the replayOne calls concurrently;
    // the safety-panic decision is taken in completeFlush() in filter
    // order, keeping the failure report deterministic regardless of the
    // replay schedule. Results are bit-identical to flushDeferred() for
    // any schedule because no replayed state is shared between tasks.

    /** Snapshot per-filter violation counters and report whether any
     *  queue holds events (false: nothing to replay, skip the rest). */
    bool prepareFlush();

    /** Replay every bus queue (bus-major) through filter @p filterIdx.
     *  Thread-safe across distinct @p filterIdx values. */
    void replayOne(std::size_t filterIdx);

    /** Check safety (panic in filter order) and clear the queues. */
    void completeFlush();

    /** In deferred mode, queue one snoop with its captured ground truth.
     *  @p busId must be the unit's home bus. */
    void
    deferSnoop(unsigned busId, Addr unitAddr, bool unitInL2, bool blockInL2)
    {
        busQueues_[busId].push(
            {unitAddr, BankEvent::Kind::Snoop, unitInL2, blockInL2});
    }

    /** Whether the bank is currently queueing. */
    bool deferred() const { return deferred_; }

    /**
     * Replay one pre-grouped event run through every filter via the
     * per-filter batched probe path (SnoopFilter::applyBatch). The
     * events must share a home bus (or the bank must have one bus);
     * flushDeferred() is the usual caller, but the verification suite
     * replays hand-built runs directly.
     */
    void observeSnoopBatch(const BankEvent *evs, std::size_t n);

    // CacheEventListener
    void unitFilled(Addr unitAddr) override;
    void unitEvicted(Addr unitAddr) override;

    /** Number of filters in the bank. */
    std::size_t size() const { return filters_.size(); }

    /** Filter @p i. */
    SnoopFilter &filterAt(std::size_t i) { return *filters_[i]; }
    const SnoopFilter &filterAt(std::size_t i) const { return *filters_[i]; }

    /** Stats of filter @p i. */
    const FilterStats &statsAt(std::size_t i) const { return stats_[i]; }

    /** Index of the filter whose name() equals @p name, or -1. */
    int indexOf(const std::string &name) const;

    /**
     * Attach (or detach with nullptr) a per-probe observer. @p owner tags
     * the emitted events with the node this bank belongs to. Zero cost
     * when unset: observeSnoop hoists one null check out of its loops.
     */
    void setProbeObserver(FilterProbeObserver *obs, ProcId owner);

  private:
    std::vector<SnoopFilterPtr> filters_;
    std::vector<FilterStats> stats_;
    AddressMap amap_;
    bool checkSafety_;
    FilterProbeObserver *probeObserver_ = nullptr;
    ProcId owner_ = 0;

    /** Home bus of @p unitAddr — must agree with Interconnect::busOf
     *  (the one other statement of the interleave in sim/), which the
     *  CheckerSuite's bus-routing invariant cross-checks online. */
    unsigned
    homeBusOf(Addr unitAddr) const
    {
        return static_cast<unsigned>(
            (unitAddr >> amap_.blockOffsetBits) % snoopBuses_);
    }

    bool deferred_ = false;
    unsigned snoopBuses_ = 1;
    /** [bus] -> captured events, in chunked arena storage: the flush /
     *  refill cycle reuses the chunks, so steady-state deferral does no
     *  allocator work, and each chunk is a contiguous cache-line-aligned
     *  run the batched applyBatch streams over. */
    std::vector<util::ArenaQueue<BankEvent>> busQueues_;
    /** prepareFlush()'s per-filter safetyViolations snapshot. */
    std::vector<std::uint64_t> violationsBefore_;
};

} // namespace jetty::filter

#endif // JETTY_CORE_FILTER_BANK_HH
