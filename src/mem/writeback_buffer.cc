#include "mem/writeback_buffer.hh"

#include "util/logging.hh"

namespace jetty::mem
{

void
WritebackBuffer::push(const WbEntry &e)
{
    if (!hasRoom())
        panic("WritebackBuffer::push without room");
    entries_.push_back(e);
    signature_ |= signatureBit(e.unitAddr);
}

WbEntry
WritebackBuffer::pop()
{
    if (entries_.empty())
        panic("WritebackBuffer::pop on empty buffer");
    WbEntry e = entries_.front();
    entries_.pop_front();
    rebuildSignature();
    return e;
}

bool
WritebackBuffer::contains(Addr unitAddr) const
{
    for (const auto &e : entries_) {
        if (e.unitAddr == unitAddr)
            return true;
    }
    return false;
}

bool
WritebackBuffer::snoop(Addr unitAddr, bool invalidate)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->unitAddr != unitAddr)
            continue;
        if (invalidate) {
            entries_.erase(it);
            rebuildSignature();
        } else if (it->state == coherence::State::Modified) {
            it->state = coherence::State::Owned;
        }
        return true;
    }
    return false;
}

bool
WritebackBuffer::demoteForRead(Addr unitAddr)
{
    for (auto &e : entries_) {
        if (e.unitAddr == unitAddr) {
            if (e.state == coherence::State::Modified)
                e.state = coherence::State::Owned;
            return true;
        }
    }
    return false;
}

WbEntry
WritebackBuffer::take(Addr unitAddr, bool &found)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->unitAddr == unitAddr) {
            WbEntry e = *it;
            entries_.erase(it);
            rebuildSignature();
            found = true;
            return e;
        }
    }
    found = false;
    return WbEntry{};
}

void
WritebackBuffer::rebuildSignature()
{
    signature_ = 0;
    for (const auto &e : entries_)
        signature_ |= signatureBit(e.unitAddr);
}

} // namespace jetty::mem
