// Fixture: two raw-file-write violations — a stream writer and a
// writing-mode fopen — plus a read-mode fopen that must NOT fire.
#include <cstdio>
#include <fstream>
#include <string>

namespace jetty::io
{

void
dumpText(const std::string &path, const std::string &text)
{
    std::ofstream out(path);  // line 13: torn file on crash
    out << text;
}

std::FILE *
openLog(const std::string &path)
{
    return std::fopen(path.c_str(), "w");  // line 20: writing mode
}

std::FILE *
openTrace(const std::string &path)
{
    return std::fopen(path.c_str(), "rb");  // read mode: legal
}

} // namespace jetty::io
