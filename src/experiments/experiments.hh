/**
 * @file
 * Shared experiment kit for the bench harness: canonical paper
 * configurations, declarative application runs, per-app result bundles,
 * and energy evaluation helpers. Every bench binary (one per paper table
 * and figure) builds on these.
 *
 * Runs are served through a process-wide keyed cache (RunCache) backed by
 * the parallel SweepRunner engine: benches *request* runs declaratively —
 * runApp()/runMany()/runAllApps() — and identical (app, variant, scale)
 * pairs simulate exactly once per process, whatever order the tables and
 * panels pull them in. Because the filter bank is a passive observer, a
 * cached simulation covering a superset of the requested filter specs
 * answers the request exactly.
 */

#ifndef JETTY_EXPERIMENTS_EXPERIMENTS_HH
#define JETTY_EXPERIMENTS_EXPERIMENTS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/filter_bank.hh"
#include "energy/accountant.hh"
#include "energy/cache_energy.hh"
#include "sim/sweep.hh"
#include "trace/apps.hh"
#include "trace/synthetic.hh"

namespace jetty::experiments
{

/** Base system variants exercised by the evaluation. */
struct SystemVariant
{
    unsigned nprocs = 4;
    bool subblocked = true;  //!< 64 B blocks of two 32 B units vs 32 B units

    /** Logical snoop buses of the split interconnect (the bus-count
     *  sweep axis; 1 = the paper's single shared bus). */
    unsigned snoopBuses = 1;

    /** Build the SmpConfig (filters added by the caller). */
    sim::SmpConfig smpConfig() const;

    /** Cache geometry for the energy model of this variant's L2. */
    energy::CacheGeometry l2EnergyGeometry() const;
};

/** Every filter configuration the paper evaluates, in bench order. */
std::vector<std::string> allPaperFilterSpecs();

/** Results of running one application on one system variant. */
struct AppRunResult
{
    /** @param nprocs sizes the per-processor stats block. */
    explicit AppRunResult(unsigned nprocs = 0) : stats(nprocs) {}

    std::string appName;
    std::string abbrev;
    std::uint64_t memoryAllocated = 0;
    sim::SimStats stats;

    /** References retired and wall-clock seconds of the simulation that
     *  produced this result (cache hits carry the originating run's
     *  timing; aggregate wall-clock is the caller's to measure). */
    std::uint64_t totalRefs = 0;
    double simSeconds = 0;

    /** The run was too short to rate meaningfully (see
     *  sim::SweepResult::refsTooFewForRate); report "-" not a rate. */
    bool refsTooFewForRate = false;

    /** Names of the evaluated filters, parallel to filterStats. */
    std::vector<std::string> filterNames;

    /** Per-filter stats merged over all processors. */
    std::vector<filter::FilterStats> filterStats;

    /** Per-filter per-event energies (J). */
    std::vector<energy::FilterEnergyCosts> filterCosts;

    /** L2 traffic merged over all processors. */
    energy::L2Traffic traffic;

    /** Coverage of filter @p name; fatal() when unknown. */
    const filter::FilterStats &statsFor(const std::string &name) const;
    const energy::FilterEnergyCosts &costsFor(const std::string &name) const;
};

/** One declaratively requested run. */
struct RunRequest
{
    trace::AppProfile app;
    SystemVariant variant;
    std::vector<std::string> filterSpecs;

    /** Scales the reference count (defaultScale() when <= 0). */
    double accessScale = -1.0;

    /**
     * When non-empty the run replays these captured trace files
     * (trace::makeFileSources rules) instead of synthesizing from
     * @ref app, and the cache keys the workload by the files' *content
     * digests* — the same capture answers from the cache wherever the
     * files live, and an edited file re-simulates. @ref app then only
     * labels the result; accessScale is ignored.
     */
    std::vector<std::string> traceFiles;
};

/**
 * Content identity of the request's workload: a fingerprint over every
 * profile field that shapes the reference streams, or — file-backed —
 * over the trace files' content digests. Two requests with equal
 * fingerprints (and equal variants/scale) are the same simulation;
 * runCacheKey() folds this into the canonical RunCache key.
 */
std::uint64_t workloadFingerprint(const RunRequest &req);

/**
 * Content digest of a trace file, memoized per (path, size,
 * nanosecond-mtime) stamp so repeated replays of one capture do not
 * re-scan a possibly larger-than-RAM file per request. Safe against the
 * stat/hash race: the stamp is re-checked *after* hashing and the digest
 * is only memoized when the file did not change underneath the hash;
 * a file that keeps changing is re-hashed unmemoized. fatal() when the
 * file cannot be stat'ed.
 */
std::uint64_t traceFileDigestCached(const std::string &path);

/** Drop every memoized trace digest (also done by RunCache::clear()),
 *  so a test — or a long-lived server — never trusts a stamp across an
 *  explicit invalidation point. */
void invalidateTraceDigestMemo();

/** Test seam: run @p hook (empty = none) between the digest memo's
 *  pre-hash stat and the hash itself — the TOCTOU window — e.g. to
 *  rewrite the file mid-race in a regression test. */
void setTraceDigestPreHashHook(
    std::function<void(const std::string &path)> hook);

/**
 * The RunCache identity of @p req under @p scale: the canonical
 * (sorted-keys, minimal-whitespace, shortest-exact-number) JSON
 * serialization of the simulated cell — variant machine + workload
 * fingerprint (+ scale for profile-backed workloads; a capture's
 * length is the capture's length). Key equality is exactly "same
 * simulation", however the request was phrased. Re-exported as
 * api::runCacheKey for spec-level callers.
 */
std::string runCacheKey(const RunRequest &req, double scale);

/**
 * Serve @p requests: cache hits are answered directly, the misses are
 * simulated concurrently by one SweepRunner sweep, and every result is
 * remembered for the rest of the process.
 *
 * @param jobs worker threads for the sweep (0 = SweepRunner default).
 *             Results are bit-identical for every value of @p jobs.
 * @return one result per request, in request order, restricted to the
 *         requested filter specs (by canonical name, first-occurrence
 *         order).
 */
std::vector<AppRunResult> runMany(const std::vector<RunRequest> &requests,
                                  unsigned jobs = 0);

/**
 * Run application @p app on @p variant evaluating @p filterSpecs.
 * @param accessScale scales the reference count (JETTY_SCALE env or
 *                    defaultScale() when <= 0).
 */
AppRunResult runApp(const trace::AppProfile &app,
                    const SystemVariant &variant,
                    const std::vector<std::string> &filterSpecs,
                    double accessScale = -1.0);

/** Run all ten paper applications (Table 2 order), concurrently. */
std::vector<AppRunResult> runAllApps(const SystemVariant &variant,
                                     const std::vector<std::string> &specs,
                                     double accessScale = -1.0,
                                     unsigned jobs = 0);

/** The access scale used by benches: 1.0, or the JETTY_SCALE env var. */
double defaultScale();

/**
 * The process-wide run cache behind runApp()/runMany()/runAllApps(),
 * keyed by runCacheKey() — the canonical (sorted-keys, minimal)
 * JSON serialization of the simulated cell's machine + workload
 * fingerprint + scale. File-backed workloads fingerprint the trace
 * files' content digests instead of the app identity. A request whose
 * filter specs are covered by the cached entry is a hit; otherwise the
 * cell re-simulates once with the union of the old and new specs.
 * Thread-safe.
 *
 * An optional on-disk tier (experiments/disk_cache.hh) persists every
 * cell across processes: tier-0 misses consult it before simulating, and
 * every simulation publishes through it. Off by default so tests stay
 * hermetic; enabled by setDiskRoot() or the JETTY_CACHE_DIR environment
 * variable ("" or "off" disables). jetty_cli default-enables it under
 * ~/.cache/jetty for run/sweep/replay/serve.
 */
class RunCache
{
  public:
    static RunCache &instance();

    /** Forget every cached run and every memoized trace digest, and
     *  reset the counters (tests). The on-disk tier's *files* survive —
     *  clearing tier 0 is exactly how a test models a fresh process
     *  reusing the persistent tier. */
    void clear();

    /** Simulations actually executed (cache misses) since start/clear. */
    std::uint64_t simulations() const;

    /** Requests answered without simulating since start/clear. */
    std::uint64_t hits() const;

    /** Requests answered from the on-disk tier since start/clear
     *  (counted inside hits() too). */
    std::uint64_t diskHits() const;

    /** Attach the on-disk tier at @p root (created if missing); "" or
     *  "off" detaches it. Replaces any previously attached root. */
    void setDiskRoot(const std::string &root);

    /** The attached on-disk root ("" when the tier is off). */
    std::string diskRoot() const;

    /** LRU byte budget for the on-disk tier (applies to the current and
     *  any later attached root). */
    void setDiskBudget(std::uint64_t bytes);

  private:
    RunCache();
    ~RunCache();

    friend std::vector<AppRunResult>
    runMany(const std::vector<RunRequest> &, unsigned);

    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Energy-reduction summary of one filter on one run. */
struct EnergyResult
{
    double reductionOverSnoopsPct = 0;  //!< Figure 6(a)/(c)
    double reductionOverAllPct = 0;     //!< Figure 6(b)/(d)
};

/** Evaluate filter @p name on @p run under @p mode (serial/parallel). */
EnergyResult evaluateEnergy(const AppRunResult &run,
                            const SystemVariant &variant,
                            const std::string &name,
                            energy::AccessMode mode);

} // namespace jetty::experiments

#endif // JETTY_EXPERIMENTS_EXPERIMENTS_HH
