/**
 * @file
 * bench_compare: the CI perf-regression gate over committed bench
 * baselines.
 *
 * Compares a fresh bench Report (bench_throughput / bench_snoopbus
 * --out) against the committed BENCH_*.json baseline and fails (exit 2)
 * when any throughput metric regressed by more than the threshold
 * (default 10%). Both files are PR 5 structured Reports, so the compare
 * is a walk of two JSON trees — no scraping.
 *
 * What counts as a throughput metric (higher is better):
 *  - any key ending in `_refs_per_sec` (absolute simulation rates);
 *  - any key containing `speedup` (batched-vs-scalar ratios).
 *
 * Array elements are matched by identity, not position: an object with a
 * `name` ("workloads" rows) or `buses` ("bus_rows") member is paired
 * with the baseline element carrying the same value, so reordering or
 * appending workloads never mis-pairs rows. A baseline metric missing
 * from the fresh report fails the gate (schema drift is a regression of
 * the gate itself); fresh-only metrics are ignored (new benches may land
 * before their baselines).
 *
 * Rates can legitimately be null (a run too short to rate: the Report
 * layer emits null, never 0 or inf) — a null or non-positive value on
 * either side SKIPs that metric instead of scoring it as a 100%
 * regression. Skips are reported, and `--max-skips N` (default:
 * unlimited) can bound them where a baseline is known to be fully rated.
 *
 * `--ratios-only` restricts the gate to the speedup metrics. Absolute
 * refs/sec only compare like-for-like on the machine that produced the
 * baseline; CI boxes differ, so the CI job gates on the
 * machine-portable ratios and prints the absolute rows as context.
 *
 * Exit codes: 0 pass, 1 usage/parse/schema error, 2 regression.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/json.hh"
#include "util/table.hh"

using namespace jetty;

namespace
{

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool
isRateKey(const std::string &key)
{
    return endsWith(key, "_refs_per_sec");
}

bool
isSpeedupKey(const std::string &key)
{
    return key.find("speedup") != std::string::npos;
}

/** One throughput metric found in a report tree. */
struct Metric
{
    std::string path;  //!< e.g. "workloads[lu].bus_rows[4].speedup"
    bool isRatio = false;
    bool rated = false;  //!< numeric and > 0 (null/0 = unrated run)
    double value = 0;
};

/** The identity suffix for an array element: match by name/buses when
 *  the row carries one, by position otherwise. */
std::string
elementKey(const json::Value &elem, std::size_t index)
{
    if (elem.isObject()) {
        if (const json::Value *name = elem.find("name");
            name && name->isString())
            return name->asString();
        if (const json::Value *buses = elem.find("buses");
            buses && buses->isNumber())
            return std::to_string(buses->asI64());
    }
    return "#" + std::to_string(index);
}

void
collectMetrics(const json::Value &v, const std::string &path,
               std::vector<Metric> &out)
{
    if (v.isObject()) {
        for (const auto &[key, child] : v.members()) {
            const std::string child_path =
                path.empty() ? key : path + "." + key;
            if (isRateKey(key) || isSpeedupKey(key)) {
                Metric m;
                m.path = child_path;
                m.isRatio = isSpeedupKey(key);
                if (child.isNumber() && child.asDouble() > 0) {
                    m.rated = true;
                    m.value = child.asDouble();
                }
                out.push_back(std::move(m));
                continue;
            }
            collectMetrics(child, child_path, out);
        }
    } else if (v.isArray()) {
        for (std::size_t i = 0; i < v.items().size(); ++i) {
            const json::Value &elem = v.items()[i];
            collectMetrics(elem,
                           path + "[" + elementKey(elem, i) + "]", out);
        }
    }
}

const Metric *
findMetric(const std::vector<Metric> &metrics, const std::string &path)
{
    for (const auto &m : metrics) {
        if (m.path == path)
            return &m;
    }
    return nullptr;
}

json::Value
loadReport(const std::string &path)
{
    std::string err;
    json::Value v = json::parseFile(path, &err);
    if (!err.empty()) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                     err.c_str());
        std::exit(1);
    }
    if (!v.isObject() || !v.find("jetty_report")) {
        std::fprintf(stderr,
                     "bench_compare: %s is not a jetty Report\n",
                     path.c_str());
        std::exit(1);
    }
    return v;
}

std::string
stringField(const json::Value &v, const char *key)
{
    const json::Value *f = v.find(key);
    return f && f->isString() ? f->asString() : std::string("?");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, fresh_path;
    double threshold = 10.0;
    bool ratios_only = false;
    long max_skips = -1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
            threshold = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--ratios-only") == 0) {
            ratios_only = true;
        } else if (std::strcmp(argv[i], "--max-skips") == 0 &&
                   i + 1 < argc) {
            max_skips = std::atol(argv[++i]);
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "usage: bench_compare BASELINE.json FRESH.json "
                         "[--threshold PCT] [--ratios-only] "
                         "[--max-skips N]\n");
            return 1;
        } else if (baseline_path.empty()) {
            baseline_path = argv[i];
        } else if (fresh_path.empty()) {
            fresh_path = argv[i];
        } else {
            std::fprintf(stderr, "bench_compare: too many files\n");
            return 1;
        }
    }
    if (fresh_path.empty()) {
        std::fprintf(stderr,
                     "usage: bench_compare BASELINE.json FRESH.json "
                     "[--threshold PCT] [--ratios-only] [--max-skips N]\n");
        return 1;
    }

    const json::Value baseline = loadReport(baseline_path);
    const json::Value fresh = loadReport(fresh_path);

    const std::string base_kind = stringField(baseline, "kind");
    const std::string fresh_kind = stringField(fresh, "kind");
    if (base_kind != fresh_kind) {
        std::fprintf(stderr,
                     "bench_compare: kind mismatch: baseline is '%s', "
                     "fresh is '%s'\n",
                     base_kind.c_str(), fresh_kind.c_str());
        return 1;
    }

    const std::string base_isa = stringField(baseline, "simd_isa");
    const std::string fresh_isa = stringField(fresh, "simd_isa");
    if (base_isa != fresh_isa) {
        std::printf("note: SIMD tier differs (baseline %s, fresh %s) — "
                    "absolute rates are not like-for-like\n",
                    base_isa.c_str(), fresh_isa.c_str());
    }

    std::vector<Metric> base_metrics, fresh_metrics;
    collectMetrics(baseline, "", base_metrics);
    collectMetrics(fresh, "", fresh_metrics);
    if (base_metrics.empty()) {
        std::fprintf(stderr,
                     "bench_compare: no throughput metrics in %s\n",
                     baseline_path.c_str());
        return 1;
    }

    TextTable table;
    table.header({"metric", "baseline", "fresh", "delta", "verdict"});
    unsigned regressions = 0, skips = 0, missing = 0, compared = 0;
    std::string worst_path;  // deepest regression, for the FAIL line
    double worst_delta = 0.0;
    for (const auto &base : base_metrics) {
        if (ratios_only && !base.isRatio)
            continue;
        const Metric *now = findMetric(fresh_metrics, base.path);
        if (!now) {
            table.row({base.path, TextTable::num(base.value, 3), "-", "-",
                       "MISSING"});
            ++missing;
            continue;
        }
        if (!base.rated || !now->rated) {
            // A null/zero rate means "run too short to rate", not "rate
            // of zero": scoring it would report a 100% regression for a
            // timer artifact.
            table.row({base.path,
                       base.rated ? TextTable::num(base.value, 3) : "null",
                       now->rated ? TextTable::num(now->value, 3) : "null",
                       "-", "skip"});
            ++skips;
            continue;
        }
        ++compared;
        const double delta_pct =
            100.0 * (now->value - base.value) / base.value;
        const bool regressed = delta_pct < -threshold;
        if (regressed) {
            ++regressions;
            if (delta_pct < worst_delta) {
                worst_delta = delta_pct;
                worst_path = base.path;
            }
        }
        char delta[32];
        std::snprintf(delta, sizeof delta, "%+.1f%%", delta_pct);
        table.row({base.path, TextTable::num(base.value, 3),
                   TextTable::num(now->value, 3), delta,
                   regressed ? "REGRESSED" : "ok"});
    }
    table.print();

    if (missing > 0) {
        std::fprintf(stderr,
                     "bench_compare: %u baseline metric(s) missing from "
                     "the fresh report\n",
                     missing);
        return 1;
    }
    if (max_skips >= 0 && skips > static_cast<unsigned>(max_skips)) {
        std::fprintf(stderr,
                     "bench_compare: %u metric(s) skipped (unrated), "
                     "more than --max-skips %ld\n",
                     skips, max_skips);
        return 1;
    }
    if (regressions > 0) {
        // Name the deepest offender inline: a CI log tail shows the
        // FAIL line long before the table, so the row that broke the
        // gate must be readable from it alone.
        std::printf("FAIL: %u metric(s) regressed more than %.1f%% vs "
                    "%s (worst: %s %+.1f%%)\n",
                    regressions, threshold, baseline_path.c_str(),
                    worst_path.c_str(), worst_delta);
        return 2;
    }
    std::printf("PASS: no metric regressed more than %.1f%% "
                "(%u compared, %u skipped)\n",
                threshold, compared, skips);
    return 0;
}
