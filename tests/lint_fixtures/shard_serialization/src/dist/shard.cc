// Fixture: the serializer side — a two-arg shard envelope list that
// dropped a field (and carries one stale entry for the reverse check).
// If the two-arg `X(name, kind)` form failed to parse, every in-sync
// field below would be reported missing too — the exact finding count
// pinned in jetty_lint.cmake guards against that regression.
#define JETTY_SHARD_RESPONSE_FIELDS(X)                                       \
    X(shardId, u64)                                                          \
    X(ok, boolean)                                                           \
    X(error, str)                                                            \
    X(latency, dbl)

namespace jetty::dist
{

// The real serializer expands the list for writer and validating
// reader; one expansion is enough for the completeness check to bind.
struct ResponseRow
{
#define X(f, kind) unsigned long long f;
    JETTY_SHARD_RESPONSE_FIELDS(X)
#undef X
};

} // namespace jetty::dist
