/**
 * @file
 * Fundamental scalar types shared by every jetty library.
 */

#ifndef JETTY_UTIL_TYPES_HH
#define JETTY_UTIL_TYPES_HH

#include <cstdint>
#include <string>

namespace jetty
{

/** A physical memory address. The paper assumes a 36--40 bit physical
 *  address space; we carry addresses in 64 bits and let each structure
 *  decide how many bits it stores. */
using Addr = std::uint64_t;

/** Simulation tick used for interleaving and ordering, not detailed timing. */
using Tick = std::uint64_t;

/** Identifier of a processor node in the SMP (0-based). */
using ProcId = std::uint32_t;

/** Kind of a processor-initiated memory access. */
enum class AccessType : std::uint8_t
{
    Read,
    Write,
};

/** Human-readable name of an access type. */
inline const char *
accessTypeName(AccessType t)
{
    return t == AccessType::Read ? "read" : "write";
}

} // namespace jetty

#endif // JETTY_UTIL_TYPES_HH
