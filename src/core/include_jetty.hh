/**
 * @file
 * Include-JETTY (Section 3.2, Figure 3b/c): N sub-arrays of 2^E entries.
 * Each sub-array is indexed by an E-bit slice of the block address; the
 * slices start at the low end (just above the block offset) and successive
 * slices are shifted up by S bits, so S < E yields partially overlapping
 * indices (which the paper found more accurate). Every entry carries a
 * presence bit (p) backed by an exact match counter (cnt): the p-bit of an
 * entry is set exactly when at least one cached coherence unit's address
 * matches the entry's slice value.
 *
 * A snoop probes only the N p-bits; if any is zero the unit cannot be
 * cached (the intersection of N supersets is a superset), so the snoop is
 * filtered. L2 fills increment and evictions decrement the N counters,
 * keeping the encoding coherent -- this is a counting-Bloom-filter
 * construction with structured (non-hashed) index functions.
 */

#ifndef JETTY_CORE_INCLUDE_JETTY_HH
#define JETTY_CORE_INCLUDE_JETTY_HH

#include <cstdint>
#include <vector>

#include "core/snoop_filter.hh"
#include "util/arena.hh"

namespace jetty::filter
{

/** Which address bits feed the sub-array index generators. */
enum class IjIndexBase : std::uint8_t
{
    /** Start just above the L2 block offset (the paper's choice: the
     *  subblock-select bit does not participate in indexing). */
    Block,

    /** Start just above the coherence-unit offset (finer; distinguishes
     *  subblocks of one block). Exposed for the ablation study. */
    Unit,
};

/** Configuration of an IJ-ExNxS organization. */
struct IncludeJettyConfig
{
    unsigned entryBits = 10;  //!< E: log2 entries per sub-array
    unsigned arrays = 4;      //!< N: number of sub-arrays
    unsigned skipBits = 7;    //!< S: index-slice stride (S < E overlaps)
    IjIndexBase base = IjIndexBase::Block;
};

/** The include-JETTY. */
class IncludeJetty : public SnoopFilter
{
  public:
    IncludeJetty(const IncludeJettyConfig &cfg, const AddressMap &amap);

    bool probe(Addr unitAddr) override;
    void onSnoopMiss(Addr, bool) override {}
    void onFill(Addr unitAddr) override;
    void onEvict(Addr unitAddr) override;
    void clear() override;

    /** Devirtualized batch replay for the deferred bank path. */
    void applyBatch(const BankEvent *evs, std::size_t n,
                    FilterStats &st) override;

    StorageBreakdown storage() const override;
    energy::FilterEnergyCosts
    energyCosts(const energy::Technology &tech) const override;
    std::string name() const override;

    /** Pessimistic counter width in bits (all units may match one entry). */
    unsigned counterBits() const { return counterBits_; }

    /** The index of sub-array @p i for @p unitAddr (exposed for tests). */
    std::uint64_t indexOf(Addr unitAddr, unsigned i) const;

    /**
     * The pure batch probe: for each of @p n addresses, OR a 1 into
     * @p outFiltered[k] when any sub-array's p-bit is clear (the unit is
     * guaranteed absent). Exactly @c probe over the batch — probing
     * mutates nothing, which is what lets the segmented replay hoist
     * it over a run of snoops. One simd::pbitAbsentAccum sweep per
     * sub-array, so the inner loop gathers from a single packed array.
     */
    void probeFilteredMany(const Addr *addrs, std::size_t n,
                           std::uint8_t *outFiltered) const;

    /** Shape of one p-bit array as rows x cols (Table 4's organization:
     *  a 2^E-bit array folded into a near-square register-file shape). */
    void pbitArrayShape(std::uint64_t &rows, std::uint64_t &cols) const;

  private:
    /** Flat slot of (array @p i, entry @p e). */
    std::size_t
    slotOf(unsigned i, std::uint64_t e) const
    {
        return (static_cast<std::size_t>(i) << cfg_.entryBits) | e;
    }

    IncludeJettyConfig cfg_;
    AddressMap amap_;
    unsigned baseOffsetBits_;
    unsigned counterBits_;
    /** Flat [array << entryBits | entry] layout: the N sub-arrays sit
     *  contiguously, so an update walks one allocation. */
    util::AlignedVec<std::uint32_t> counts_;
    /** The p-bits proper, packed 64 per word and kept exactly equal to
     *  (count != 0) — the tiny array a snoop actually reads (Figure
     *  3b/c separates p-bit and cnt arrays the same way), so a probe
     *  touches N bits instead of N counters. */
    util::AlignedVec<std::uint64_t> pbits_;
    /** Reusable segment buffers for the segmented applyBatch. */
    std::vector<Addr> addrScratch_;
    std::vector<std::uint8_t> preScratch_;
};

} // namespace jetty::filter

#endif // JETTY_CORE_INCLUDE_JETTY_HH
