/**
 * @file
 * The experiment service daemon behind `jetty_cli serve`: a unix-socket
 * server answering ExperimentSpec jobs (service/protocol.hh framing)
 * through the shared spec executor, so every client of one daemon
 * shares one two-tier RunCache and one SweepRunner pool — N clients
 * asking for overlapping sweeps simulate each distinct cell once.
 *
 * Concurrency model: one accept loop (poll with a short timeout so
 * requestStop() is honoured promptly), one thread per connection, each
 * connection serving any number of newline-delimited requests in order.
 * runMany() is safe to call from many threads at once — concurrent
 * jobs interleave on the shared cache exactly like the multi-threaded
 * bench harness does.
 *
 * Verbs: "run" (execute a spec, stream the report back), "ping",
 * "stats" (cache counters), "shutdown" (acknowledge, then stop the
 * daemon). Any malformed request gets ok=false; nothing a client sends
 * can take the daemon down.
 *
 * Graceful drain: requestStop() (SIGTERM/SIGINT path) first closes and
 * unlinks the listening socket — new connections are refused — then
 * every connection thread finishes its in-flight request, sends the
 * response, and exits at its next bounded read; run() returns once all
 * of them have joined.
 */

#ifndef JETTY_SERVICE_SERVER_HH
#define JETTY_SERVICE_SERVER_HH

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jetty::service
{

struct ServerConfig
{
    std::string socketPath = "jetty.sock";
    unsigned jobs = 0;  //!< SweepRunner override (0 = shared default)
};

class ExperimentServer
{
  public:
    explicit ExperimentServer(ServerConfig cfg);
    ~ExperimentServer();

    ExperimentServer(const ExperimentServer &) = delete;
    ExperimentServer &operator=(const ExperimentServer &) = delete;

    /** Bind and listen. @return "" on success, else the diagnostic. */
    std::string start();

    /** Serve until requestStop(); joins every connection thread and
     *  removes the socket file before returning. */
    void run();

    /** Ask run() to wind down (safe from any thread or a signal
     *  handler — only an atomic store). */
    void requestStop() { stop_.store(true); }

    const std::string &socketPath() const { return cfg_.socketPath; }

  private:
    void serveClient(int fd);

    ServerConfig cfg_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    std::mutex mu_;
    std::vector<std::thread> workers_;
};

} // namespace jetty::service

#endif // JETTY_SERVICE_SERVER_HH
