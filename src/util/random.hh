/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic workload
 * generators. A fixed, seedable generator keeps every experiment exactly
 * reproducible across runs and platforms (std::mt19937 would also work, but
 * xoshiro256** is faster and the distributions below are bit-exact ours).
 */

#ifndef JETTY_UTIL_RANDOM_HH
#define JETTY_UTIL_RANDOM_HH

#include <cassert>
#include <cstdint>

namespace jetty
{

/**
 * The golden-ratio mixing constant shared by every seed derivation in the
 * tree (splitmix64 increment, per-processor stream seeding, fuzzer round
 * seeds). Naming it keeps the derivations identical across call sites, so
 * a seed recorded in a fuzz-repro header reproduces the same streams on
 * every platform and in every future build.
 */
constexpr std::uint64_t kSeedMix = 0x9e3779b97f4a7c15ULL;

/**
 * The deterministic default seed. Anything that draws random numbers
 * without an explicit seed (Rng's default constructor, the trace fuzzer's
 * FuzzConfig) starts here, never from entropy, so two runs of the same
 * binary are bit-identical and a repro file only needs to record the seed
 * when the caller overrode it.
 */
constexpr std::uint64_t kDefaultRngSeed = kSeedMix;

/**
 * xoshiro256** pseudo-random generator (public-domain algorithm by
 * Blackman & Vigna), seeded via splitmix64 so that any 64-bit seed gives a
 * well-mixed state.
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = kDefaultRngSeed)
    {
        // splitmix64 expansion of the seed into 4 state words.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += kSeedMix;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound != 0);
        // Rejection-free multiply-shift mapping; bias is negligible for
        // the bounds used here (all far below 2^63).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-flavoured "hot" index in [0, n): repeatedly halves the
     * range with probability @p bias, concentrating draws near 0. Used to
     * model temporal locality without a per-address history.
     */
    std::uint64_t
    hotIndex(std::uint64_t n, double bias)
    {
        assert(n != 0);
        std::uint64_t lo = 0, hi = n;
        while (hi - lo > 1 && chance(bias))
            hi = lo + (hi - lo + 1) / 2;
        return lo + below(hi - lo);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace jetty

#endif // JETTY_UTIL_RANDOM_HH
