#include "core/snoop_filter.hh"

namespace jetty::filter
{

void
FilterStats::merge(const FilterStats &o)
{
    probes += o.probes;
    filtered += o.filtered;
    wouldMiss += o.wouldMiss;
    filteredWouldMiss += o.filteredWouldMiss;
    snoopAllocs += o.snoopAllocs;
    fillUpdates += o.fillUpdates;
    evictUpdates += o.evictUpdates;
    safetyViolations += o.safetyViolations;
}

void
SnoopFilter::applyBatch(const BankEvent *evs, std::size_t n, FilterStats &st)
{
    // Generic batch path: the shared protocol over the virtual hooks,
    // so a deferred replay is bit-identical to immediate observation of
    // the same sequence for any filter type.
    replayBankEvents(
        evs, n, st, [this](Addr a) { return probe(a); },
        [this](Addr a, bool blockPresent) { onSnoopMiss(a, blockPresent); },
        [this](Addr a) { onFill(a); }, [this](Addr a) { onEvict(a); });
}

} // namespace jetty::filter
