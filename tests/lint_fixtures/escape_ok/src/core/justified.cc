// Fixture: both escape placements — trailing and line-above — with the
// required justification. This tree must scan clean (exit 0).
#include <cstdint>
#include <unordered_set>  // jetty-lint: allow(unordered): fixture proving the trailing escape form parses

namespace jetty::filter
{

struct DedupScratch
{
    // jetty-lint: allow(unordered): never iterated, membership tests only; fixture for the line-above escape form
    std::unordered_set<std::uint64_t> seen;
};

} // namespace jetty::filter
