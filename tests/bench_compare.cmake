# Contract of tools/bench_compare, the CI perf-regression gate:
#  - identical reports pass (exit 0);
#  - a >threshold throughput regression fails (exit 2), whether it hides
#    in an absolute rate or a speedup ratio, and --ratios-only ignores
#    the former;
#  - a within-threshold dip passes;
#  - null rates (a run too short to rate) are SKIPPED, never scored as
#    regressions, and --max-skips bounds them;
#  - workload rows are matched by name, so reordering never mis-pairs;
#  - a baseline metric missing from the fresh report is a schema error
#    (exit 1), as is a kind mismatch.
# Run as:
#   cmake -DTOOL=<path-to-bench_compare> -DWORK=<scratch-dir> -P bench_compare.cmake
if(NOT DEFINED TOOL OR NOT DEFINED WORK)
  message(FATAL_ERROR "pass -DTOOL=<path to bench_compare> -DWORK=<scratch dir>")
endif()
file(MAKE_DIRECTORY ${WORK})

# A miniature throughput Report: envelope + two workload rows.
file(WRITE ${WORK}/base.json [=[
{
  "jetty_report": 1,
  "kind": "throughput",
  "simd_isa": "avx2",
  "simd_width": 4,
  "headline_speedup": 2.4,
  "workloads": [
    {
      "name": "delivery-bound",
      "scalar_refs_per_sec": 48000000.0,
      "batched_refs_per_sec": 115000000.0,
      "speedup": 2.4
    },
    {
      "name": "lu",
      "scalar_refs_per_sec": 24000000.0,
      "batched_refs_per_sec": 48000000.0,
      "speedup": 2.0
    }
  ]
}
]=])

# Same numbers, workload rows reordered: must still pair by name.
file(WRITE ${WORK}/reordered.json [=[
{
  "jetty_report": 1,
  "kind": "throughput",
  "simd_isa": "avx2",
  "simd_width": 4,
  "headline_speedup": 2.4,
  "workloads": [
    {
      "name": "lu",
      "scalar_refs_per_sec": 24000000.0,
      "batched_refs_per_sec": 48000000.0,
      "speedup": 2.0
    },
    {
      "name": "delivery-bound",
      "scalar_refs_per_sec": 48000000.0,
      "batched_refs_per_sec": 115000000.0,
      "speedup": 2.4
    }
  ]
}
]=])

# lu's batched rate drops 25% (speedups intact): absolute-rate gate only.
file(WRITE ${WORK}/regress_rate.json [=[
{
  "jetty_report": 1,
  "kind": "throughput",
  "simd_isa": "avx2",
  "simd_width": 4,
  "headline_speedup": 2.4,
  "workloads": [
    {
      "name": "delivery-bound",
      "scalar_refs_per_sec": 48000000.0,
      "batched_refs_per_sec": 115000000.0,
      "speedup": 2.4
    },
    {
      "name": "lu",
      "scalar_refs_per_sec": 24000000.0,
      "batched_refs_per_sec": 36000000.0,
      "speedup": 2.0
    }
  ]
}
]=])

# The headline speedup collapses 2.4 -> 1.5: caught even --ratios-only.
file(WRITE ${WORK}/regress_ratio.json [=[
{
  "jetty_report": 1,
  "kind": "throughput",
  "simd_isa": "avx2",
  "simd_width": 4,
  "headline_speedup": 1.5,
  "workloads": [
    {
      "name": "delivery-bound",
      "scalar_refs_per_sec": 48000000.0,
      "batched_refs_per_sec": 72000000.0,
      "speedup": 1.5
    },
    {
      "name": "lu",
      "scalar_refs_per_sec": 24000000.0,
      "batched_refs_per_sec": 48000000.0,
      "speedup": 2.0
    }
  ]
}
]=])

# Everything dips 5%: inside the default 10% threshold.
file(WRITE ${WORK}/dip5.json [=[
{
  "jetty_report": 1,
  "kind": "throughput",
  "simd_isa": "avx2",
  "simd_width": 4,
  "headline_speedup": 2.28,
  "workloads": [
    {
      "name": "delivery-bound",
      "scalar_refs_per_sec": 45600000.0,
      "batched_refs_per_sec": 109250000.0,
      "speedup": 2.28
    },
    {
      "name": "lu",
      "scalar_refs_per_sec": 22800000.0,
      "batched_refs_per_sec": 45600000.0,
      "speedup": 1.9
    }
  ]
}
]=])

# lu was too short to rate: nulls must SKIP, not score as -100%.
file(WRITE ${WORK}/nullrate.json [=[
{
  "jetty_report": 1,
  "kind": "throughput",
  "simd_isa": "sse2",
  "simd_width": 2,
  "headline_speedup": 2.4,
  "workloads": [
    {
      "name": "delivery-bound",
      "scalar_refs_per_sec": 48000000.0,
      "batched_refs_per_sec": 115000000.0,
      "speedup": 2.4
    },
    {
      "name": "lu",
      "scalar_refs_per_sec": null,
      "batched_refs_per_sec": null,
      "speedup": null
    }
  ]
}
]=])

# The lu row vanished: baseline metrics missing from fresh = exit 1.
file(WRITE ${WORK}/missing.json [=[
{
  "jetty_report": 1,
  "kind": "throughput",
  "simd_isa": "avx2",
  "simd_width": 4,
  "headline_speedup": 2.4,
  "workloads": [
    {
      "name": "delivery-bound",
      "scalar_refs_per_sec": 48000000.0,
      "batched_refs_per_sec": 115000000.0,
      "speedup": 2.4
    }
  ]
}
]=])

# A different bench's report entirely.
file(WRITE ${WORK}/otherkind.json [=[
{
  "jetty_report": 1,
  "kind": "snoopbus",
  "simd_isa": "avx2",
  "simd_width": 4,
  "workloads": []
}
]=])

function(expect_exit expected)
  # ARGN is the bench_compare argument list.
  execute_process(
    COMMAND ${TOOL} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  string(JOIN " " pretty ${ARGN})
  if(NOT rc EQUAL ${expected})
    message(FATAL_ERROR
            "bench_compare ${pretty}: expected exit ${expected}, got "
            "${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

function(expect_stdout_matches regex)
  # ARGN is the bench_compare argument list; exit code is not checked
  # here (pair with expect_exit for that).
  execute_process(
    COMMAND ${TOOL} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  string(JOIN " " pretty ${ARGN})
  if(NOT out MATCHES "${regex}")
    message(FATAL_ERROR
            "bench_compare ${pretty}: stdout does not match "
            "\"${regex}\"\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

# Self-compare and name-keyed reordering pass.
expect_exit(0 ${WORK}/base.json ${WORK}/base.json)
expect_exit(0 ${WORK}/base.json ${WORK}/reordered.json)

# A 25% absolute-rate regression fails... unless only ratios are gated.
expect_exit(2 ${WORK}/base.json ${WORK}/regress_rate.json)
expect_exit(0 ${WORK}/base.json ${WORK}/regress_rate.json --ratios-only)

# The FAIL line names the worst offending row and its delta, so a CI
# log tail is diagnosable without scrolling up to the table.
expect_stdout_matches(
  "FAIL: 1 metric\\(s\\) regressed more than 10\\.0% vs [^\n]* \\(worst: workloads\\[lu\\]\\.batched_refs_per_sec -25\\.0%\\)"
  ${WORK}/base.json ${WORK}/regress_rate.json)

# A collapsed speedup fails either way.
expect_exit(2 ${WORK}/base.json ${WORK}/regress_ratio.json)
expect_exit(2 ${WORK}/base.json ${WORK}/regress_ratio.json --ratios-only)

# A 5% dip is inside the default 10% threshold; a 3% threshold trips.
expect_exit(0 ${WORK}/base.json ${WORK}/dip5.json)
expect_exit(2 ${WORK}/base.json ${WORK}/dip5.json --threshold 3)

# Null rates skip (exit 0), and --max-skips 0 turns them into failures.
expect_exit(0 ${WORK}/base.json ${WORK}/nullrate.json)
expect_exit(1 ${WORK}/base.json ${WORK}/nullrate.json --max-skips 0)

# Schema drift and kind mismatch are hard errors, not passes.
expect_exit(1 ${WORK}/base.json ${WORK}/missing.json)
expect_exit(1 ${WORK}/base.json ${WORK}/otherkind.json)
expect_exit(1 ${WORK}/base.json)

message(STATUS "bench_compare regression-gate contract holds")
