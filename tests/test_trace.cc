/**
 * @file
 * Tests for the workload substrate: determinism, layout, page
 * scrambling, the application registry, stream behaviours, the trace
 * file formats (JTTRACE1/JTTRACE2), the nextBatch delivery contract,
 * and the chunked FileStreamSource.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <set>

#include "trace/apps.hh"
#include "trace/file_stream_source.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"
#include "trace/trace_source.hh"

using namespace jetty;
using namespace jetty::trace;

namespace
{

AppProfile
tinyProfile()
{
    AppProfile p;
    p.name = "Tiny";
    p.abbrev = "ti";
    p.accessesPerProc = 5000;
    p.reuseProb = 0.5;
    p.wordBytes = 4;
    p.seed = 99;
    StreamSpec s;
    s.kind = StreamKind::Private;
    s.weight = 1.0;
    s.bytes = 64 * 1024;
    s.residentBytes = 16 * 1024;
    s.residentFraction = 0.5;
    p.streams = {s};
    return p;
}

} // namespace

TEST(Workload, DeterministicAcrossInstances)
{
    const AppProfile p = tinyProfile();
    Workload w1(p, 4), w2(p, 4);
    auto s1 = w1.makeSource(2), s2 = w2.makeSource(2);
    TraceRecord a, b;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(s1->next(a));
        ASSERT_TRUE(s2->next(b));
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.type, b.type);
    }
    EXPECT_FALSE(s1->next(a));
}

TEST(Workload, ProcessorsGetDistinctStreams)
{
    Workload w(tinyProfile(), 4);
    auto s0 = w.makeSource(0), s1 = w.makeSource(1);
    TraceRecord a, b;
    bool differs = false;
    for (int i = 0; i < 200; ++i) {
        s0->next(a);
        s1->next(b);
        differs |= a.addr != b.addr;
    }
    EXPECT_TRUE(differs);
}

TEST(Workload, AccessScaleApplies)
{
    Workload w(tinyProfile(), 2, 0.1);
    EXPECT_EQ(w.accessesPerProc(), 500u);
    auto s = w.makeSource(0);
    TraceRecord r;
    std::uint64_t n = 0;
    while (s->next(r))
        ++n;
    EXPECT_EQ(n, 500u);
}

TEST(Workload, LayoutsDoNotOverlap)
{
    AppProfile p = tinyProfile();
    StreamSpec shared;
    shared.kind = StreamKind::ReadShared;
    shared.weight = 0.5;
    shared.bytes = 32 * 1024;
    p.streams.push_back(shared);
    Workload w(p, 4);
    const auto &ls = w.layouts();
    ASSERT_EQ(ls.size(), 2u);
    EXPECT_GE(ls[1].base, ls[0].base + ls[0].totalBytes);
}

TEST(Workload, MemoryAllocatedCoversRegions)
{
    Workload w(tinyProfile(), 4);
    // One 64KB private region per processor (page aligned).
    EXPECT_GE(w.memoryAllocated(), 4u * 64u * 1024u);
}

TEST(Workload, TranslateIsInjectiveOnPages)
{
    Workload w(tinyProfile(), 4);
    std::set<Addr> frames;
    const auto &ls = w.layouts();
    const Addr base = ls[0].base;
    for (Addr page = 0; page < ls[0].totalBytes / 4096; ++page) {
        const Addr phys = w.translate(base + page * 4096);
        EXPECT_EQ(phys & 4095, base & 4095 ? 0 : (base + page * 4096) & 4095);
        EXPECT_TRUE(frames.insert(phys & ~Addr{4095}).second)
            << "two pages mapped to one frame";
    }
}

TEST(Workload, TranslatePreservesPageOffsets)
{
    Workload w(tinyProfile(), 4);
    const Addr v = w.layouts()[0].base + 0x1234;
    EXPECT_EQ(w.translate(v) & 4095, v & 4095);
    // Two addresses on one page stay on one page.
    EXPECT_EQ(w.translate(v) + 4, w.translate(v + 4));
}

TEST(Workload, TranslateIdentityOutsideRegions)
{
    Workload w(tinyProfile(), 4);
    EXPECT_EQ(w.translate(0x42), 0x42u);
}

TEST(Workload, SourcesEmitWordAlignedAddressesInRange)
{
    Workload w(tinyProfile(), 4);
    auto s = w.makeSource(0);
    TraceRecord r;
    while (s->next(r))
        EXPECT_EQ(r.addr % 4, 0u);
}

TEST(Workload, RejectsZeroProcs)
{
    EXPECT_EXIT(Workload(tinyProfile(), 0), ::testing::ExitedWithCode(1),
                "at least one");
}

TEST(Workload, RejectsEmptyProfile)
{
    AppProfile p = tinyProfile();
    p.streams.clear();
    EXPECT_EXIT(Workload(p, 4), ::testing::ExitedWithCode(1), "no streams");
}

TEST(Apps, RegistryHasTenPaperApps)
{
    const auto apps = paperApps();
    ASSERT_EQ(apps.size(), 10u);
    EXPECT_EQ(apps.front().abbrev, "ba");
    EXPECT_EQ(apps.back().abbrev, "un");
    std::set<std::string> abbrevs;
    for (const auto &a : apps) {
        EXPECT_FALSE(a.streams.empty()) << a.name;
        abbrevs.insert(a.abbrev);
    }
    EXPECT_EQ(abbrevs.size(), 10u);
}

TEST(Apps, LookupByAbbrevAndName)
{
    EXPECT_EQ(appByName("ba").name, "Barnes");
    EXPECT_EQ(appByName("RADIX").abbrev, "ra");
    EXPECT_EQ(appByName(" lu ").name, "Lu");
}

TEST(Apps, LookupUnknownFatal)
{
    EXPECT_EXIT(appByName("nope"), ::testing::ExitedWithCode(1), "unknown");
}

TEST(Apps, SpecialWorkloadsExist)
{
    EXPECT_EQ(throughputServer().streams.size(), 1u);
    EXPECT_EQ(widelyShared().streams.size(), 2u);
}

TEST(Streams, MigratoryOwnershipDisjointWithinSweep)
{
    // At any step index, the objects visited by different processors must
    // be disjoint (no two processors own one object simultaneously).
    AppProfile p = tinyProfile();
    p.reuseProb = 0.0;
    StreamSpec mig;
    mig.kind = StreamKind::Migratory;
    mig.weight = 1.0;
    mig.bytes = 8 * 1024;
    mig.objectBytes = 128;
    p.streams = {mig};
    Workload w(p, 4);

    std::vector<TraceSourcePtr> sources;
    for (unsigned q = 0; q < 4; ++q)
        sources.push_back(w.makeSource(q));

    // Lockstep: compare the object each processor touches per step.
    for (int step = 0; step < 2000; ++step) {
        std::set<Addr> objects;
        for (auto &s : sources) {
            TraceRecord r;
            ASSERT_TRUE(s->next(r));
            objects.insert(r.addr / 128);
        }
        EXPECT_EQ(objects.size(), 4u) << "step " << step;
    }
}

TEST(Streams, ProducerConsumerAlternatesPhases)
{
    AppProfile p = tinyProfile();
    p.reuseProb = 0.0;
    StreamSpec pc;
    pc.kind = StreamKind::ProducerConsumer;
    pc.weight = 1.0;
    pc.bytes = 16 * 1024;
    pc.epochLen = 64;
    p.streams = {pc};
    Workload w(p, 2);
    auto s = w.makeSource(0);

    // First epoch: all writes; second epoch: all reads.
    TraceRecord r;
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(s->next(r));
        EXPECT_EQ(r.type, AccessType::Write) << i;
    }
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(s->next(r));
        EXPECT_EQ(r.type, AccessType::Read) << i;
    }
}

TEST(Streams, ReadSharedOnlyReads)
{
    AppProfile p = tinyProfile();
    StreamSpec sh;
    sh.kind = StreamKind::ReadShared;
    sh.weight = 1.0;
    sh.bytes = 8 * 1024;
    p.streams = {sh};
    Workload w(p, 2);
    auto s = w.makeSource(1);
    TraceRecord r;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(s->next(r));
        EXPECT_EQ(r.type, AccessType::Read);
    }
}

TEST(TraceFile, RoundTrip)
{
    std::vector<TraceRecord> recs;
    recs.push_back({AccessType::Read, 0x123456789aull});
    recs.push_back({AccessType::Write, 0x20});
    recs.push_back({AccessType::Read, 0});

    const std::string path = "/tmp/jetty_test_trace.bin";
    writeTraceFile(path, recs);
    const auto back = readTraceFile(path);
    ASSERT_EQ(back.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(back[i].addr, recs[i].addr);
        EXPECT_EQ(back[i].type, recs[i].type);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, CollectAndReplay)
{
    Workload w(tinyProfile(), 2);
    auto s = w.makeSource(0);
    const auto recs = collect(*s, 100);
    EXPECT_EQ(recs.size(), 100u);

    const std::string path = "/tmp/jetty_test_trace2.bin";
    writeTraceFile(path, recs);
    VectorTraceSource replay(readTraceFile(path));
    auto fresh = w.makeSource(0);
    TraceRecord a, b;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(replay.next(a));
        ASSERT_TRUE(fresh->next(b));
        EXPECT_EQ(a.addr, b.addr);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsMissingFile)
{
    EXPECT_EXIT(readTraceFile("/tmp/definitely_missing_jetty_trace.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFile, LegacyV1ReadsTransparently)
{
    std::vector<TraceRecord> recs;
    recs.push_back({AccessType::Read, 0xdeadbeefull});
    recs.push_back({AccessType::Write, 0x20});

    const std::string path = "/tmp/jetty_test_trace_v1.bin";
    writeTraceFileV1(path, recs);
    const auto info = readTraceFileInfo(path);
    EXPECT_EQ(info.version, 1u);
    ASSERT_EQ(info.streams(), 1u);
    EXPECT_EQ(info.counts[0], recs.size());

    const auto back = readTraceFile(path);
    ASSERT_EQ(back.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(back[i].addr, recs[i].addr);
        EXPECT_EQ(back[i].type, recs[i].type);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, CurrentWriterProducesV2)
{
    const std::string path = "/tmp/jetty_test_trace_v2.bin";
    writeTraceFile(path, {{AccessType::Read, 0x40}});
    EXPECT_EQ(readTraceFileInfo(path).version, 2u);
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceRoundTrips)
{
    const std::string path = "/tmp/jetty_test_trace_empty.bin";
    writeTraceFile(path, {});
    EXPECT_TRUE(readTraceFile(path).empty());

    FileStreamSource src(path);
    EXPECT_EQ(src.records(), 0u);
    TraceRecord r;
    EXPECT_FALSE(src.next(r));
    std::remove(path.c_str());
}

TEST(TraceFile, Max56BitAddressRoundTrips)
{
    const std::string path = "/tmp/jetty_test_trace_max.bin";
    writeTraceFile(path, {{AccessType::Write, kMaxTraceAddr}});
    const auto back = readTraceFile(path);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].addr, kMaxTraceAddr);
    EXPECT_EQ(back[0].type, AccessType::Write);
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsAddressBeyond56Bits)
{
    EXPECT_EXIT(writeTraceFile("/tmp/jetty_test_trace_wide.bin",
                               {{AccessType::Read, kMaxTraceAddr + 1}}),
                ::testing::ExitedWithCode(1), "56-bit");
}

TEST(TraceFile, MultiStreamSectionsRoundTrip)
{
    const std::string path = "/tmp/jetty_test_trace_multi.bin";
    {
        TraceFileWriter writer(path, 3);
        for (unsigned s = 0; s < 3; ++s) {
            std::vector<TraceRecord> recs;
            for (unsigned i = 0; i <= s; ++i)
                recs.push_back({AccessType::Read,
                                Addr{0x1000} * (s + 1) + i * 32});
            writer.append(recs);
            writer.endStream();
        }
        writer.close();
        EXPECT_EQ(writer.recordsWritten(), 6u);
    }

    const auto info = readTraceFileInfo(path);
    EXPECT_EQ(info.version, 2u);
    ASSERT_EQ(info.streams(), 3u);
    for (unsigned s = 0; s < 3; ++s) {
        const auto recs = readTraceStream(path, s);
        ASSERT_EQ(recs.size(), s + 1u) << s;
        EXPECT_EQ(recs[0].addr, Addr{0x1000} * (s + 1)) << s;
    }
    // The single-stream reader refuses a multi-section capture.
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "readTraceStream");
    std::remove(path.c_str());
}

TEST(TraceFile, CorruptHeaderCountRejectedBeforeAllocation)
{
    // A v1 header claiming ~4 G records over an 8-record body used to
    // drive a multi-gigabyte reserve(); it must now fail the size check.
    const std::string path = "/tmp/jetty_test_trace_corrupt.bin";
    std::vector<TraceRecord> recs(8, {AccessType::Read, 0x100});
    writeTraceFileV1(path, recs);
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        const std::uint32_t bogus = 0xffffffffu;
        ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);  // v1 count field
        ASSERT_EQ(std::fwrite(&bogus, 4, 1, f), 1u);
        std::fclose(f);
    }
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "exceeds the file size");
    std::remove(path.c_str());
}

TEST(TraceFile, TruncatedFileRejected)
{
    const std::string path = "/tmp/jetty_test_trace_trunc.bin";
    const std::string cut = "/tmp/jetty_test_trace_cut.bin";
    std::vector<TraceRecord> recs(16, {AccessType::Write, 0x2000});
    writeTraceFile(path, recs);

    // Copy all but the last 5 bytes: a mid-record truncation.
    {
        std::FILE *in = std::fopen(path.c_str(), "rb");
        std::FILE *out = std::fopen(cut.c_str(), "wb");
        ASSERT_NE(in, nullptr);
        ASSERT_NE(out, nullptr);
        std::vector<unsigned char> bytes(4096);
        const std::size_t n = std::fread(bytes.data(), 1, bytes.size(), in);
        ASSERT_GT(n, 5u);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, n - 5, out), n - 5);
        std::fclose(in);
        std::fclose(out);
    }
    EXPECT_EXIT(readTraceFile(cut), ::testing::ExitedWithCode(1),
                "exceeds the file size|inconsistent");
    EXPECT_EXIT(FileStreamSource{cut}, ::testing::ExitedWithCode(1),
                "exceeds the file size|inconsistent");
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

namespace
{

/**
 * The nextBatch delivery contract: whatever mix of batch sizes a
 * consumer uses, the records are exactly the ones repeated next() calls
 * produce. @p make must return a fresh, equivalent source per call.
 */
void
expectBatchEquivalence(const std::function<TraceSourcePtr()> &make)
{
    auto scalar_src = make();
    std::vector<TraceRecord> scalar;
    TraceRecord r;
    while (scalar_src->next(r))
        scalar.push_back(r);
    ASSERT_GT(scalar.size(), 0u);

    for (const std::size_t batch : {std::size_t{1}, std::size_t{3},
                                    std::size_t{64}, scalar.size() + 7}) {
        auto src = make();
        std::vector<TraceRecord> got;
        std::vector<TraceRecord> buf(batch);
        std::size_t n;
        while ((n = src->nextBatch(buf.data(), batch)) > 0) {
            got.insert(got.end(), buf.begin(),
                       buf.begin() + static_cast<std::ptrdiff_t>(n));
            if (n < batch)
                break;  // short count = exhausted
        }
        ASSERT_EQ(got.size(), scalar.size()) << "batch " << batch;
        for (std::size_t i = 0; i < scalar.size(); ++i) {
            ASSERT_EQ(got[i].addr, scalar[i].addr)
                << "batch " << batch << " record " << i;
            ASSERT_EQ(got[i].type, scalar[i].type)
                << "batch " << batch << " record " << i;
        }
    }
}

} // namespace

TEST(NextBatch, VectorSourceMatchesScalarDelivery)
{
    std::vector<TraceRecord> recs;
    for (unsigned i = 0; i < 257; ++i)
        recs.push_back({i % 3 == 0 ? AccessType::Write : AccessType::Read,
                        Addr{0x8000} + i * 4});
    expectBatchEquivalence(
        [&] { return std::make_unique<VectorTraceSource>(recs); });
}

TEST(NextBatch, SyntheticSourceMatchesScalarDelivery)
{
    const Workload w(tinyProfile(), 4);
    expectBatchEquivalence([&] { return w.makeSource(1); });
}

TEST(NextBatch, FileStreamSourceMatchesScalarDelivery)
{
    const std::string path = "/tmp/jetty_test_batch_file.bin";
    Workload w(tinyProfile(), 2);
    {
        auto src = w.makeSource(0);
        writeTraceFile(path, collect(*src, 1000));
    }
    // A chunk size that never divides the batch sizes exercises the
    // refill boundaries inside nextBatch.
    expectBatchEquivalence(
        [&] { return std::make_unique<FileStreamSource>(path, 0, 37); });
    std::remove(path.c_str());
}

TEST(FileStreamSource, StreamsWholeFileThroughSmallChunks)
{
    const std::string path = "/tmp/jetty_test_stream_chunks.bin";
    Workload w(tinyProfile(), 2);
    std::vector<TraceRecord> recs;
    {
        auto src = w.makeSource(1);
        recs = collect(*src, 500);
        writeTraceFile(path, recs);
    }

    FileStreamSource src(path, 0, 7);  // 7-record chunks over 500 records
    EXPECT_EQ(src.records(), 500u);
    TraceRecord r;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(src.next(r)) << i;
        ASSERT_EQ(r.addr, recs[i].addr) << i;
    }
    EXPECT_FALSE(src.next(r));
    EXPECT_EQ(src.position(), 500u);

    // reset() rewinds; clone() is independent and replays from record 0
    // even when taken mid-stream.
    src.reset();
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.addr, recs[0].addr);
    auto clone = src.clone();
    ASSERT_TRUE(clone->next(r));
    EXPECT_EQ(r.addr, recs[0].addr);
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.addr, recs[1].addr);
    std::remove(path.c_str());
}

TEST(FileStreamSource, ChunkArithmeticHandlesBeyond4GiRecords)
{
    // The v1 format's u32 count capped traces at 4 Gi records; the v2
    // chunking math must address records past that boundary in 64 bits.
    const std::uint64_t big = (std::uint64_t{1} << 32) + 123;
    const std::uint64_t section = 24;  // one-stream v2 header size
    EXPECT_EQ(FileStreamSource::recordByteOffset(section, big),
              section + big * kTraceRecordBytes);
    EXPECT_GT(FileStreamSource::recordByteOffset(section, big),
              std::uint64_t{1} << 35);  // would wrap in 32-bit math

    // Mid-stream refills take full chunks; the tail takes the remainder.
    EXPECT_EQ(FileStreamSource::chunkRecordsAt(big, 0, 65536), 65536u);
    EXPECT_EQ(FileStreamSource::chunkRecordsAt(big, big - 10, 65536), 10u);
    EXPECT_EQ(FileStreamSource::chunkRecordsAt(big, big, 65536), 0u);
}

TEST(FileStreamSource, SparseHugeCaptureSeeksBeyond4Gi)
{
    // A real > 4 Gi-record JTTRACE2 file, laid out sparsely: only the
    // header and the final record occupy disk. Reading near the end
    // exercises genuine > 32 GiB file offsets through the streaming
    // source; holes legitimately decode as zero-filled read records.
    const std::string path = "/tmp/jetty_test_sparse_huge.bin";
    const std::uint64_t count = (std::uint64_t{1} << 32) + 8;
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char magic[8] = {'J', 'T', 'T', 'R', 'A', 'C', 'E', '2'};
        // One stream section, reserved word zero (explicit little-endian).
        const unsigned char head[8] = {1, 0, 0, 0, 0, 0, 0, 0};
        ASSERT_EQ(std::fwrite(magic, 1, 8, f), 8u);
        ASSERT_EQ(std::fwrite(head, 1, 8, f), 8u);
        unsigned char le[8];
        for (int i = 0; i < 8; ++i)
            le[i] = static_cast<unsigned char>((count >> (8 * i)) & 0xff);
        ASSERT_EQ(std::fwrite(le, 1, 8, f), 8u);
        // Seek to the last record and write it; the filesystem backs the
        // hole with nothing.
        const std::uint64_t last =
            FileStreamSource::recordByteOffset(24, count - 1);
        if (::fseeko(f, static_cast<off_t>(last), SEEK_SET) != 0) {
            std::fclose(f);
            std::remove(path.c_str());
            GTEST_SKIP() << "filesystem lacks sparse-file support";
        }
        unsigned char rec[kTraceRecordBytes];
        encodeTraceRecord({AccessType::Write, 0xabcdef}, rec);
        if (std::fwrite(rec, 1, kTraceRecordBytes, f) !=
            kTraceRecordBytes) {
            std::fclose(f);
            std::remove(path.c_str());
            GTEST_SKIP() << "filesystem rejected the sparse extent";
        }
        std::fclose(f);
    }

    const auto info = readTraceFileInfo(path);
    ASSERT_EQ(info.counts[0], count);

    FileStreamSource src(path);
    EXPECT_EQ(src.records(), count);
    src.seekTo(count - 3);
    TraceRecord r;
    ASSERT_TRUE(src.next(r));  // hole: zero record
    EXPECT_EQ(r.addr, 0u);
    EXPECT_EQ(r.type, AccessType::Read);
    ASSERT_TRUE(src.next(r));
    ASSERT_TRUE(src.next(r));  // the record we wrote
    EXPECT_EQ(r.addr, 0xabcdefu);
    EXPECT_EQ(r.type, AccessType::Write);
    EXPECT_FALSE(src.next(r));  // exactly `count` records, then the end
    std::remove(path.c_str());
}

TEST(FileStreamSource, MakeFileSourcesCoversTheReplayRules)
{
    const std::string multi = "/tmp/jetty_test_sources_multi.bin";
    const std::string single = "/tmp/jetty_test_sources_single.bin";
    {
        TraceFileWriter writer(multi, 2);
        writer.append({{AccessType::Read, 0x100}});
        writer.endStream();
        writer.append({{AccessType::Write, 0x200}});
        writer.endStream();
        writer.close();
    }
    writeTraceFile(single, {{AccessType::Read, 0x300}});

    // One multi-section file: section p feeds processor p.
    auto per_proc = makeFileSources({multi}, 2);
    ASSERT_EQ(per_proc.size(), 2u);
    TraceRecord r;
    ASSERT_TRUE(per_proc[1]->next(r));
    EXPECT_EQ(r.addr, 0x200u);

    // One single-section file: clones everywhere.
    auto clones = makeFileSources({single}, 3);
    ASSERT_EQ(clones.size(), 3u);
    for (auto &s : clones) {
        ASSERT_TRUE(s->next(r));
        EXPECT_EQ(r.addr, 0x300u);
    }

    // Mismatched stream/processor counts are rejected.
    EXPECT_EXIT(makeFileSources({multi}, 4), ::testing::ExitedWithCode(1),
                "2 streams");
    std::remove(multi.c_str());
    std::remove(single.c_str());
}
