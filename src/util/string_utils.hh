/**
 * @file
 * Small string helpers for parsing filter spec strings such as "EJ-32x4",
 * "VEJ-32x4-8", "IJ-10x4x7" and "HJ(IJ-10x4x7,EJ-32x4)".
 */

#ifndef JETTY_UTIL_STRING_UTILS_HH
#define JETTY_UTIL_STRING_UTILS_HH

#include <string>
#include <vector>

namespace jetty
{

/** Split @p s on character @p sep (no empty-token suppression). */
std::vector<std::string> split(const std::string &s, char sep);

/** True when @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Parse an unsigned decimal integer; returns false on any non-digit. */
bool parseUnsigned(const std::string &s, unsigned &out);

/** Trim ASCII whitespace from both ends. */
std::string trim(const std::string &s);

/** Upper-case an ASCII string. */
std::string toUpper(const std::string &s);

} // namespace jetty

#endif // JETTY_UTIL_STRING_UTILS_HH
