// Fixture: a hash-ordered container in a bit-identity layer.
#include <cstdint>
#include <unordered_map>

namespace jetty::filter
{

struct TrackerState
{
    std::unordered_map<std::uint64_t, unsigned> presence;
};

} // namespace jetty::filter
