/**
 * @file
 * Exact JSON round-trip of AppRunResult — the payload format of the
 * persistent RunCache tier (disk_cache.hh). Every counter the simulator
 * produces is serialized, doubles through json::formatDouble's
 * shortest-exact form, so a result restored from disk is value-identical
 * to the one the simulation produced: any Report built from it (run
 * rows, energy decompositions, timing) is bit-identical to the
 * originating process's Report.
 *
 * The reader validates instead of panicking: disk entries are untrusted
 * input (a crash, a partial write by a pre-atomic build, a version skew)
 * and the cache contract is "corrupt entries are misses, never fatal".
 */

#ifndef JETTY_EXPERIMENTS_RUN_RESULT_JSON_HH
#define JETTY_EXPERIMENTS_RUN_RESULT_JSON_HH

#include <string>

#include "experiments/experiments.hh"
#include "util/json.hh"

namespace jetty::experiments
{

/** Serialize @p result losslessly (keys mirror the member names). */
json::Value runResultToJson(const AppRunResult &result);

/**
 * Rebuild @p out from @p v.
 * @return "" on success; otherwise a description of the first missing
 *         or ill-typed field, with @p out unspecified.
 */
std::string runResultFromJson(const json::Value &v, AppRunResult &out);

} // namespace jetty::experiments

#endif // JETTY_EXPERIMENTS_RUN_RESULT_JSON_HH
