/**
 * @file
 * ExperimentSpec: the one versioned, serializable description of "what
 * to simulate" shared by every entry point — `jetty_cli run/sweep/bench/
 * fuzz`, the bench binaries, and the fuzzer's repro sidecars.
 *
 * Before this layer every knob (filters, batchRefs, snoopBuses, ...)
 * had to be threaded by hand through five overlapping config structs
 * (SmpConfig, SweepJob, SystemVariant, RunRequest, FuzzConfig), the
 * RunCache key, the CLI flag parser and the fuzzer's bespoke sidecar.
 * The spec is now the source of truth:
 *
 *  - **JSONv1 on disk** (util/json, no external deps): a self-describing
 *    document whose top-level `"jetty_spec": 1` is both magic and
 *    version. parse() -> emit() -> parse() is the identity; unknown
 *    keys, version mismatches and out-of-range values are rejected with
 *    errors that name the offending key and what would have been valid
 *    (the registry's describeFailure() style).
 *  - **Canonicalization** (canonicalText(): sorted keys, minimal
 *    whitespace, shortest round-tripping numbers) is what the RunCache
 *    keys on — runCacheKey() below — so two specs holding the same data
 *    in any key order identify the same cached simulation.
 *  - **Expansion**: expand() is the sweep cross-product expander
 *    (apps x sweep.procs x sweep.buses -> experiments::RunRequest),
 *    replacing the ad-hoc loops in jetty_cli.
 *
 * Layering: api sits above experiments/sim/core and below tools/bench/
 * verify. It must not include verify/; verify embeds specs in repro
 * sidecars by building them through this header.
 */

#ifndef JETTY_API_EXPERIMENT_SPEC_HH
#define JETTY_API_EXPERIMENT_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/experiments.hh"
#include "sim/smp_system.hh"
#include "util/json.hh"
#include "util/random.hh"

namespace jetty::api
{

/**
 * The machine section. procs/buses/subblocked describe a paper-style
 * SystemVariant; the optional explicit geometry block (l1/l2/wb/
 * phys_addr_bits, `hasGeometry`) pins the exact cache organization —
 * the fuzzer's tiny thrash machine, for instance. Paths that only
 * understand variants (run/sweep through the experiment layer) reject
 * explicit geometry they cannot honour via variantCompatible().
 */
struct MachineSpec
{
    unsigned procs = 4;
    unsigned buses = 1;
    bool subblocked = true;

    /** Delivery batch size; 0 = the library default (SmpConfig). */
    unsigned batchRefs = 0;

    /** When true l1/l2/wbEntries/physAddrBits below are authoritative;
     *  when false they are derived from `subblocked` on demand. */
    bool hasGeometry = false;
    mem::L1Config l1;
    mem::L2Config l2;
    unsigned wbEntries = 8;
    unsigned physAddrBits = 40;

    /** Capture @p cfg exactly (hasGeometry = true). */
    static MachineSpec fromSmpConfig(const sim::SmpConfig &cfg);

    /** Build the full SmpConfig this machine describes (filters are the
     *  spec's to add). */
    sim::SmpConfig toSmpConfig() const;

    /** The variant view (nprocs/subblocked/snoopBuses). */
    experiments::SystemVariant toVariant() const;

    /** True when toSmpConfig() equals what toVariant().smpConfig()
     *  would build (batchRefs aside); otherwise @p why names the first
     *  field the variant path cannot honour. */
    bool variantCompatible(std::string *why) const;
};

/** The fuzz section: campaign seeds and budgets (FuzzConfig's knobs
 *  minus the machine, which lives in MachineSpec). */
struct FuzzSpec
{
    std::uint64_t seed = kDefaultRngSeed;
    unsigned rounds = 16;
    std::uint64_t refsPerProc = 4096;
    std::uint64_t auditEvery = 512;
    bool randomizeBuses = true;
    double seconds = 0;  //!< time budget (0 = none)
};

/** The versioned experiment description. */
struct ExperimentSpec
{
    /** The on-disk schema version this build reads and writes. */
    static constexpr std::int64_t kVersion = 1;

    MachineSpec machine;

    /** True when the parsed document had a machine section (emission
     *  always writes one, so dumped specs are explicit). Consumers
     *  whose default machine is *not* MachineSpec's — the fuzzer's
     *  tiny thrash geometry — use this to tell "machine omitted" from
     *  "machine = the paper variant". */
    bool hasMachine = false;

    /** Filter specs to evaluate (registry grammar, validated on parse).
     *  Empty = the consuming command's default set. */
    std::vector<std::string> filters;

    // ---- workload selection ----
    /** Application names/tags (trace::appByName). Empty with no trace
     *  files = the consuming command's default. */
    std::vector<std::string> apps;
    /** Captured trace files to replay instead of synthesizing. */
    std::vector<std::string> traceFiles;
    /** Reference-count scale; <= 0 = the consuming command's default. */
    double scale = -1.0;

    // ---- sweep axes (empty = {machine.procs} / {machine.buses}) ----
    std::vector<unsigned> sweepProcs;
    std::vector<unsigned> sweepBuses;

    // ---- bench section ----
    /** Cold-run repeats; 0 = the consuming command's default. */
    unsigned benchRepeat = 0;

    // ---- fuzz section ----
    bool hasFuzz = false;  //!< the section is present / should be emitted
    FuzzSpec fuzz;

    /** Serialize; toJson() emits only the active sections, so
     *  parse(emit()) reproduces this spec field-for-field. */
    json::Value toJson() const;
    std::string emit() const;           //!< pretty JSON (dump-spec, files)
    std::string canonicalText() const;  //!< sorted-keys minimal JSON

    /**
     * Deserialize. @p err (required) receives a message naming the
     * offending key, its path and the valid alternatives; the returned
     * spec is only meaningful when @p err stays empty.
     */
    static ExperimentSpec fromJson(const json::Value &v, std::string *err);
    static ExperimentSpec parse(const std::string &text, std::string *err);

    /** Load and parse @p path; fatal() with the parse error on failure. */
    static ExperimentSpec load(const std::string &path);

    /** The machine + filters as one SmpConfig (fuzz/bench drivers). */
    sim::SmpConfig smpConfig() const;

    /**
     * The sweep cross-product: one RunRequest per
     * (app x sweep.procs x sweep.buses) cell — or per (procs, buses)
     * cell replaying traceFiles — carrying this spec's filters and
     * scale. Axes default to the machine's own procs/buses; apps must
     * be resolvable (fatal() via trace::appByName otherwise).
     */
    std::vector<experiments::RunRequest> expand() const;
};

/**
 * The RunCache identity of one requested simulation: the canonical
 * serialization of its (machine, workload fingerprint, scale) cell.
 * Key equality is exactly "same simulation", however the request was
 * phrased — this replaces the hand-rolled RunKey struct that
 * experiments.cc used to maintain field by field.
 */
std::string runCacheKey(const experiments::RunRequest &req, double scale);

} // namespace jetty::api

#endif // JETTY_API_EXPERIMENT_SPEC_HH
