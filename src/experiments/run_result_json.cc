#include "experiments/run_result_json.hh"

#include <utility>

namespace jetty::experiments
{

namespace
{

// Field lists shared by the writer and the reader, keyed by member
// name, so the two directions cannot drift apart.
#define JETTY_PROC_STAT_FIELDS(X)                                            \
    X(accesses)                                                              \
    X(reads)                                                                 \
    X(writes)                                                                \
    X(l1Hits)                                                                \
    X(l1Misses)                                                              \
    X(l1Writebacks)                                                          \
    X(l1SnoopInvalidations)                                                  \
    X(l2LocalAccesses)                                                       \
    X(l2LocalHits)                                                           \
    X(l2Fills)                                                               \
    X(l2Evictions)                                                           \
    X(upgradesSilent)                                                        \
    X(busReads)                                                              \
    X(busReadXs)                                                             \
    X(busUpgrades)                                                           \
    X(busWritebacks)                                                         \
    X(snoopTagProbes)                                                        \
    X(snoopHits)                                                             \
    X(snoopMisses)                                                           \
    X(snoopSupplies)                                                         \
    X(wbInsertions)                                                          \
    X(wbSnoopsHit)                                                           \
    X(wbReclaims)                                                            \
    X(wbDrains)

#define JETTY_L2_TRAFFIC_FIELDS(X)                                           \
    X(localTagProbes)                                                        \
    X(localTagUpdates)                                                       \
    X(localDataReads)                                                        \
    X(localDataWrites)                                                       \
    X(snoopTagProbes)                                                        \
    X(snoopTagUpdates)                                                       \
    X(snoopDataReads)

#define JETTY_FILTER_STAT_FIELDS(X)                                          \
    X(probes)                                                                \
    X(filtered)                                                              \
    X(wouldMiss)                                                             \
    X(filteredWouldMiss)                                                     \
    X(snoopAllocs)                                                           \
    X(fillUpdates)                                                           \
    X(evictUpdates)                                                          \
    X(safetyViolations)

#define JETTY_FILTER_COST_FIELDS(X)                                          \
    X(probe)                                                                 \
    X(snoopAlloc)                                                            \
    X(fillUpdate)                                                            \
    X(evictUpdate)

#define JETTY_BUS_STAT_FIELDS(X)                                             \
    X(transactions)                                                          \
    X(reads)                                                                 \
    X(readXs)                                                                \
    X(upgrades)

/** Validating field reader: records the first failure and turns every
 *  later access into a no-op, so call sites stay linear. */
struct Reader
{
    std::string err;

    bool ok() const { return err.empty(); }

    void
    fail(const std::string &what)
    {
        if (err.empty())
            err = what;
    }

    const json::Value *
    get(const json::Value &o, const char *key)
    {
        if (!err.empty())
            return nullptr;
        const json::Value *v = o.isObject() ? o.find(key) : nullptr;
        if (!v)
            fail("missing field '" + std::string(key) + "'");
        return v;
    }

    void
    u64(const json::Value &o, const char *key, std::uint64_t &out)
    {
        const json::Value *v = get(o, key);
        if (!v)
            return;
        if (!v->isNumber() || !v->fitsU64()) {
            fail("field '" + std::string(key) + "' is not a u64");
            return;
        }
        out = v->asU64();
    }

    void
    dbl(const json::Value &o, const char *key, double &out)
    {
        const json::Value *v = get(o, key);
        if (!v)
            return;
        if (!v->isNumber()) {
            fail("field '" + std::string(key) + "' is not a number");
            return;
        }
        out = v->asDouble();
    }

    void
    boolean(const json::Value &o, const char *key, bool &out)
    {
        const json::Value *v = get(o, key);
        if (!v)
            return;
        if (!v->isBool()) {
            fail("field '" + std::string(key) + "' is not a bool");
            return;
        }
        out = v->asBool();
    }

    void
    str(const json::Value &o, const char *key, std::string &out)
    {
        const json::Value *v = get(o, key);
        if (!v)
            return;
        if (!v->isString()) {
            fail("field '" + std::string(key) + "' is not a string");
            return;
        }
        out = v->asString();
    }

    const json::Value *
    arr(const json::Value &o, const char *key)
    {
        const json::Value *v = get(o, key);
        if (v && !v->isArray()) {
            fail("field '" + std::string(key) + "' is not an array");
            return nullptr;
        }
        return v;
    }

    const json::Value *
    obj(const json::Value &o, const char *key)
    {
        const json::Value *v = get(o, key);
        if (v && !v->isObject()) {
            fail("field '" + std::string(key) + "' is not an object");
            return nullptr;
        }
        return v;
    }

    void
    u64Vector(const json::Value &o, const char *key,
              std::vector<std::uint64_t> &out)
    {
        const json::Value *v = arr(o, key);
        if (!v)
            return;
        out.clear();
        for (const auto &item : v->items()) {
            if (!item.isNumber() || !item.fitsU64()) {
                fail("array '" + std::string(key) +
                     "' holds a non-u64 element");
                return;
            }
            out.push_back(item.asU64());
        }
    }
};

json::Value
trafficToJson(const energy::L2Traffic &t)
{
    json::Value v = json::Value::object();
#define X(f) v.set(#f, t.f);
    JETTY_L2_TRAFFIC_FIELDS(X)
#undef X
    return v;
}

void
trafficFromJson(Reader &rd, const json::Value &v, energy::L2Traffic &t)
{
#define X(f) rd.u64(v, #f, t.f);
    JETTY_L2_TRAFFIC_FIELDS(X)
#undef X
}

json::Value
procToJson(const sim::ProcStats &p)
{
    json::Value v = json::Value::object();
#define X(f) v.set(#f, p.f);
    JETTY_PROC_STAT_FIELDS(X)
#undef X
    v.set("traffic", trafficToJson(p.traffic));
    return v;
}

void
procFromJson(Reader &rd, const json::Value &v, sim::ProcStats &p)
{
#define X(f) rd.u64(v, #f, p.f);
    JETTY_PROC_STAT_FIELDS(X)
#undef X
    if (const json::Value *t = rd.obj(v, "traffic"))
        trafficFromJson(rd, *t, p.traffic);
}

json::Value
statsToJson(const sim::SimStats &s)
{
    json::Value v = json::Value::object();
    json::Value procs = json::Value::array();
    for (const auto &p : s.procs)
        procs.push(procToJson(p));
    v.set("procs", std::move(procs));

    json::Value remote = json::Value::object();
    json::Value counts = json::Value::array();
    for (std::size_t i = 0; i < s.remoteHits.buckets(); ++i)
        counts.push(s.remoteHits.count(i));
    remote.set("counts", std::move(counts));
    remote.set("total", s.remoteHits.total());
    v.set("remoteHits", std::move(remote));

    v.set("snoopTransactions", s.snoopTransactions);

    json::Value per_bus = json::Value::array();
    for (const auto &b : s.perBus) {
        json::Value bus = json::Value::object();
#define X(f) bus.set(#f, b.f);
        JETTY_BUS_STAT_FIELDS(X)
#undef X
        per_bus.push(std::move(bus));
    }
    v.set("perBus", std::move(per_bus));

    json::Value probes = json::Value::array();
    for (const auto p : s.busSnoopTagProbes)
        probes.push(p);
    v.set("busSnoopTagProbes", std::move(probes));
    return v;
}

void
statsFromJson(Reader &rd, const json::Value &v, sim::SimStats &out)
{
    const json::Value *procs = rd.arr(v, "procs");
    if (!procs)
        return;
    sim::SimStats stats(static_cast<unsigned>(procs->items().size()), 1);
    for (std::size_t i = 0; i < procs->items().size(); ++i)
        procFromJson(rd, procs->items()[i], stats.procs[i]);

    if (const json::Value *remote = rd.obj(v, "remoteHits")) {
        std::vector<std::uint64_t> counts;
        std::uint64_t total = 0;
        rd.u64Vector(*remote, "counts", counts);
        rd.u64(*remote, "total", total);
        if (rd.ok())
            stats.remoteHits = Histogram::fromRaw(std::move(counts), total);
    }

    rd.u64(v, "snoopTransactions", stats.snoopTransactions);

    if (const json::Value *per_bus = rd.arr(v, "perBus")) {
        stats.perBus.clear();
        for (const auto &item : per_bus->items()) {
            sim::BusStats bus;
#define X(f) rd.u64(item, #f, bus.f);
            JETTY_BUS_STAT_FIELDS(X)
#undef X
            stats.perBus.push_back(bus);
        }
    }
    rd.u64Vector(v, "busSnoopTagProbes", stats.busSnoopTagProbes);
    if (rd.ok())
        out = std::move(stats);
}

} // namespace

json::Value
runResultToJson(const AppRunResult &result)
{
    json::Value v = json::Value::object();
    v.set("appName", result.appName);
    v.set("abbrev", result.abbrev);
    v.set("memoryAllocated", result.memoryAllocated);
    v.set("totalRefs", result.totalRefs);
    v.set("simSeconds", result.simSeconds);
    v.set("refsTooFewForRate", result.refsTooFewForRate);
    v.set("stats", statsToJson(result.stats));

    json::Value filters = json::Value::array();
    for (std::size_t i = 0; i < result.filterNames.size(); ++i) {
        json::Value f = json::Value::object();
        f.set("name", result.filterNames[i]);
        json::Value stats = json::Value::object();
#define X(fld) stats.set(#fld, result.filterStats[i].fld);
        JETTY_FILTER_STAT_FIELDS(X)
#undef X
        f.set("stats", std::move(stats));
        json::Value costs = json::Value::object();
#define X(fld) costs.set(#fld, result.filterCosts[i].fld);
        JETTY_FILTER_COST_FIELDS(X)
#undef X
        f.set("costs", std::move(costs));
        filters.push(std::move(f));
    }
    v.set("filters", std::move(filters));
    v.set("traffic", trafficToJson(result.traffic));
    return v;
}

std::string
runResultFromJson(const json::Value &v, AppRunResult &out)
{
    Reader rd;
    if (!v.isObject())
        return "result is not an object";

    AppRunResult res;
    rd.str(v, "appName", res.appName);
    rd.str(v, "abbrev", res.abbrev);
    rd.u64(v, "memoryAllocated", res.memoryAllocated);
    rd.u64(v, "totalRefs", res.totalRefs);
    rd.dbl(v, "simSeconds", res.simSeconds);
    rd.boolean(v, "refsTooFewForRate", res.refsTooFewForRate);
    if (const json::Value *stats = rd.obj(v, "stats"))
        statsFromJson(rd, *stats, res.stats);

    if (const json::Value *filters = rd.arr(v, "filters")) {
        for (const auto &item : filters->items()) {
            std::string name;
            rd.str(item, "name", name);
            filter::FilterStats fs;
            if (const json::Value *stats = rd.obj(item, "stats")) {
#define X(fld) rd.u64(*stats, #fld, fs.fld);
                JETTY_FILTER_STAT_FIELDS(X)
#undef X
            }
            energy::FilterEnergyCosts fc;
            if (const json::Value *costs = rd.obj(item, "costs")) {
#define X(fld) rd.dbl(*costs, #fld, fc.fld);
                JETTY_FILTER_COST_FIELDS(X)
#undef X
            }
            if (!rd.ok())
                break;
            res.filterNames.push_back(std::move(name));
            res.filterStats.push_back(fs);
            res.filterCosts.push_back(fc);
        }
    }
    if (const json::Value *traffic = rd.obj(v, "traffic"))
        trafficFromJson(rd, *traffic, res.traffic);

    if (!rd.ok())
        return rd.err;
    out = std::move(res);
    return "";
}

} // namespace jetty::experiments
