/**
 * @file
 * Throughput trajectory bench: sustained refs/sec of the reference
 * delivery pipeline, scalar vs batched.
 *
 * The scalar baseline reproduces the pre-refactor delivery loop exactly
 * as `SmpSystem::run()` shipped it before the streaming pipeline: one
 * virtual TraceSource::next() call and one processorAccess() call per
 * reference, round-robin. The batched side is today's SmpSystem::run()
 * — nextBatch() delivery plus the inlined L1-hit fast path. Both drive
 * identical reference streams and the bench asserts their statistics are
 * bit-identical before reporting any number.
 *
 * Workloads (all 4-processor, paper base system, paper filter trio):
 *  - delivery-bound: a cache-friendly synthetic profile whose references
 *    almost always hit the L1, isolating the delivery pipeline itself —
 *    the headline speedup number;
 *  - fm / lu: the best- and mid-locality paper apps, for context on how
 *    much of a real run the delivery path is.
 *
 * Writes BENCH_throughput.json (override with --out). --smoke shrinks
 * the run for CI and skips the file unless --out is given explicitly.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/report.hh"
#include "experiments/experiments.hh"
#include "sim/smp_system.hh"
#include "util/stats.hh"
#include "trace/apps.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace jetty;
using Clock = std::chrono::steady_clock;

namespace
{

/** The paper's standard filter trio (run/replay default). */
const std::vector<std::string> kFilters = {"EJ-32x4", "IJ-10x4x7",
                                           "HJ(IJ-10x4x7,EJ-32x4)"};

/**
 * A profile built to be delivery-bound: a hot resident set far smaller
 * than the L1 plus heavy temporal reuse pushes the L1 hit rate past
 * 99.8%, so nearly every reference's cost *is* the delivery path.
 */
trace::AppProfile
deliveryBoundProfile(std::uint64_t accessesPerProc)
{
    trace::AppProfile p;
    p.name = "DeliveryBound";
    p.abbrev = "db";
    p.accessesPerProc = accessesPerProc;
    p.reuseProb = 0.97;
    p.wordBytes = 4;
    p.seed = 4242;
    trace::StreamSpec s;
    s.kind = trace::StreamKind::Private;
    s.weight = 1.0;
    s.bytes = 512 * 1024;
    s.residentBytes = 48 * 1024;
    s.residentFraction = 0.97;
    s.residentHotBias = 0.6;
    s.writeFraction = 0.3;
    p.streams = {s};
    return p;
}

/**
 * The pre-refactor scalar delivery loop, verbatim in behaviour: pull one
 * reference per live processor per sweep through the virtual next(),
 * hand each to processorAccess(). (The seed's SmpSystem::run() did
 * exactly this; it is reproduced here so the baseline stays measurable
 * now that the library path is batched.)
 */
void
runScalarReference(sim::SmpSystem &sys,
                   std::vector<trace::TraceSourcePtr> &sources)
{
    std::vector<bool> done(sources.size(), false);
    bool any = true;
    while (any) {
        any = false;
        for (unsigned p = 0; p < sources.size(); ++p) {
            if (done[p])
                continue;
            trace::TraceRecord rec;
            if (!sources[p]->next(rec)) {
                done[p] = true;
                continue;
            }
            any = true;
            sys.processorAccess(p, rec.type, rec.addr);
        }
    }
}

struct Measurement
{
    std::uint64_t refs = 0;
    double scalarSeconds = 0;
    double batchedSeconds = 0;

    double scalarRate() const { return refs / scalarSeconds; }
    double batchedRate() const { return refs / batchedSeconds; }
    double speedup() const { return scalarSeconds / batchedSeconds; }
};

/** Compare the counters the two paths must agree on bit-for-bit. */
void
requireIdentical(const sim::SimStats &a, const sim::SimStats &b,
                 const std::string &workload)
{
    const auto x = a.aggregate();
    const auto y = b.aggregate();
    if (x.accesses != y.accesses || x.l1Hits != y.l1Hits ||
        x.l2LocalHits != y.l2LocalHits ||
        x.snoopTagProbes != y.snoopTagProbes ||
        x.snoopMisses != y.snoopMisses || x.busReads != y.busReads ||
        x.busUpgrades != y.busUpgrades ||
        x.wbInsertions != y.wbInsertions) {
        fatal("bench_throughput: scalar and batched runs diverged on '" +
              workload + "' — the delivery refactor broke determinism");
    }
}

/** Median-of-@p repeats measurement of one workload under both paths.
 *  Scalar and batched runs alternate so slow background phases on a
 *  shared box hit both sides alike. */
Measurement
measure(const trace::AppProfile &profile, unsigned repeats,
        unsigned buses)
{
    experiments::SystemVariant variant;
    sim::SmpConfig cfg = variant.smpConfig();
    cfg.filterSpecs = kFilters;
    cfg.snoopBuses = buses;

    const trace::Workload workload(profile, cfg.nprocs, 1.0);

    Measurement m;
    sim::SimStats scalarStats{0}, batchedStats{0};
    std::vector<double> scalarTimes, batchedTimes;
    for (unsigned r = 0; r < repeats; ++r) {
        {
            sim::SmpSystem sys(cfg);
            std::vector<trace::TraceSourcePtr> sources;
            for (unsigned p = 0; p < cfg.nprocs; ++p)
                sources.push_back(workload.makeSource(p));
            const auto t0 = Clock::now();
            runScalarReference(sys, sources);
            scalarTimes.push_back(
                std::chrono::duration<double>(Clock::now() - t0).count());
            scalarStats = sys.stats();
            m.refs = scalarStats.aggregate().accesses;
        }
        {
            sim::SmpSystem sys(cfg);
            std::vector<trace::TraceSourcePtr> sources;
            for (unsigned p = 0; p < cfg.nprocs; ++p)
                sources.push_back(workload.makeSource(p));
            sys.attachSources(std::move(sources));
            const auto t0 = Clock::now();
            sys.run();
            batchedTimes.push_back(
                std::chrono::duration<double>(Clock::now() - t0).count());
            batchedStats = sys.stats();
        }
    }
    m.scalarSeconds = medianInPlace(scalarTimes);
    m.batchedSeconds = medianInPlace(batchedTimes);
    requireIdentical(scalarStats, batchedStats, profile.name);
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out;
    unsigned repeats = 3;
    unsigned buses = 1;
    double scale = 1.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
            repeats = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--buses") == 0 && i + 1 < argc) {
            buses = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            scale = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: bench_throughput [--smoke] [--out FILE] "
                         "[--repeat N] [--buses N] [--scale F]\n");
            return 1;
        }
    }
    if (repeats < 1)
        repeats = 1;
    if (buses < 1 || (buses & (buses - 1)) != 0) {
        std::fprintf(stderr,
                     "bench_throughput: --buses must be a power of two\n");
        return 1;
    }
    if (scale <= 0.0 || scale > 1.0) {
        std::fprintf(stderr, "bench_throughput: --scale must be in (0, 1]\n");
        return 1;
    }
    if (out.empty() && !smoke)
        out = "BENCH_throughput.json";

    // --scale shrinks only the reference counts; the working-set
    // geometry stays full-size so a reduced run (e.g. CI's perf gate)
    // still exercises the same hit/miss mix as the committed baseline.
    const std::uint64_t refsPerProc = static_cast<std::uint64_t>(
        static_cast<double>(smoke ? 400'000 : 8'000'000) * scale);
    const double appScale = (smoke ? 0.05 : 1.0) * scale;

    struct Row
    {
        std::string name;
        Measurement m;
    };
    std::vector<Row> rows;

    rows.push_back(
        {"delivery-bound",
         measure(deliveryBoundProfile(refsPerProc), repeats, buses)});
    for (const char *app : {"fm", "lu"}) {
        trace::AppProfile p = trace::appByName(app);
        p.accessesPerProc = static_cast<std::uint64_t>(
            static_cast<double>(p.accessesPerProc) * appScale);
        rows.push_back({app, measure(p, repeats, buses)});
    }

    TextTable table;
    table.header({"workload", "refs", "scalar Mrefs/s", "batched Mrefs/s",
                  "speedup"});
    for (const auto &row : rows) {
        table.row({row.name, TextTable::count(row.m.refs),
                   TextTable::num(row.m.scalarRate() / 1e6, 1),
                   TextTable::num(row.m.batchedRate() / 1e6, 1),
                   TextTable::num(row.m.speedup(), 2) + "x"});
    }
    table.print();
    const double headline = rows.front().m.speedup();
    std::printf("\nheadline (delivery-bound) speedup: %.2fx %s\n", headline,
                headline >= 2.0 ? "(>= 2x target met)"
                                : "(below the 2x target)");

    if (!out.empty()) {
        // One api::Report (DESIGN.md schema): the pre-Report emitter's
        // fields preserved under the versioned envelope, with the
        // machine/filters echoed as an ExperimentSpec.
        api::ExperimentSpec spec;
        spec.filters = kFilters;
        spec.scale = scale;
        spec.benchRepeat = repeats;
        spec.machine.buses = buses;

        api::Report report("throughput");
        report.echoSpec(spec);
        auto &root = report.root();
        root.set("bench", "throughput");
        root.set("smoke", smoke);
        root.set("procs", 4);
        root.set("buses", buses);
        root.set("filters",
                 static_cast<std::uint64_t>(kFilters.size()));
        root.set("repeats", repeats);
        root.set("headline_speedup",
                 api::Report::ratio(rows.front().m.scalarSeconds,
                                    rows.front().m.batchedSeconds));
        json::Value workloads = json::Value::array();
        for (const auto &row : rows) {
            json::Value w = json::Value::object();
            w.set("name", row.name);
            w.set("refs", row.m.refs);
            w.set("scalar_refs_per_sec",
                  api::Report::ratio(static_cast<double>(row.m.refs),
                                     row.m.scalarSeconds));
            w.set("batched_refs_per_sec",
                  api::Report::ratio(static_cast<double>(row.m.refs),
                                     row.m.batchedSeconds));
            w.set("speedup", api::Report::ratio(row.m.scalarSeconds,
                                                row.m.batchedSeconds));
            workloads.push(std::move(w));
        }
        root.set("workloads", std::move(workloads));
        report.writeFile(out);
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}
