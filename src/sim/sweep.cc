#include "sim/sweep.hh"

#include <chrono>
#include <cstdlib>

#include "energy/technology.hh"
#include "trace/file_stream_source.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace jetty::sim
{

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("JETTY_JOBS")) {
        const int v = std::atoi(env);
        if (v >= 1)
            return static_cast<unsigned>(v);
        warn("ignoring non-positive JETTY_JOBS");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs >= 1 ? jobs : defaultJobs()), pool_(jobs_)
{
    // The pool spawns jobs_ - 1 workers and the calling thread
    // participates in every batch, so total parallelism is jobs_;
    // jobs_ == 1 runs inline, keeping the serial reference path
    // trivially schedule-free.
}

SweepRunner::~SweepRunner() = default;

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepJob> &jobList)
{
    const auto batch_start = std::chrono::steady_clock::now();
    std::vector<SweepResult> results(jobList.size());

    // Each task writes its own slot, so the result vector is identical
    // whatever order the pool executes jobs.
    pool_.parallelFor(jobList.size(), [&results, &jobList](std::size_t i) {
        results[i] = runOne(jobList[i]);
    });

    lastBatchSeconds_ = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - batch_start)
                            .count();
    return results;
}

double
SweepRunner::aggregateRefsPerSecond(const std::vector<SweepResult> &results)
{
    std::uint64_t refs = 0;
    double seconds = 0;
    for (const auto &r : results) {
        refs += r.totalRefs;
        seconds += r.elapsedSeconds;
    }
    return seconds > 0 ? static_cast<double>(refs) / seconds : 0.0;
}

SweepResult
SweepRunner::runOne(const SweepJob &job)
{
    SweepResult res;
    SmpSystem system(job.cfg);

    // The workload must outlive the run: synthetic sources read its
    // layout and page table for every reference they generate.
    std::unique_ptr<trace::Workload> workload;
    if (!job.traceFiles.empty()) {
        // File-backed replay: stream the captured sections; nothing is
        // materialized, so the trace may exceed memory.
        system.attachSources(
            trace::makeFileSources(job.traceFiles, job.cfg.nprocs));
    } else {
        trace::AppProfile app = job.app;
        app.seed += job.seedOffset;
        workload = std::make_unique<trace::Workload>(
            app, job.cfg.nprocs, job.accessScale, job.pageSpread);
        res.memoryAllocated = workload->memoryAllocated();

        std::vector<trace::TraceSourcePtr> sources;
        sources.reserve(job.cfg.nprocs);
        for (unsigned p = 0; p < job.cfg.nprocs; ++p)
            sources.push_back(workload->makeSource(p));
        system.attachSources(std::move(sources));
    }

    const auto sim_start = std::chrono::steady_clock::now();
    system.run();
    res.elapsedSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - sim_start)
                             .count();

    res.stats = system.stats();
    res.totalRefs = res.stats.aggregate().accesses;
    res.traffic = system.mergedTraffic();

    // A sub-batch trace finishes inside the timer's resolution, so a
    // rate derived from it is noise (historically inf when the elapsed
    // time rounded to exactly zero). Flag it; refsPerSecond() reports 0.
    // The documented threshold is one delivery batch *per processor*.
    const std::uint64_t batch =
        job.cfg.batchRefs >= 1 ? job.cfg.batchRefs : 1;
    res.refsTooFewForRate = res.elapsedSeconds <= 0.0 ||
                            res.totalRefs < batch * job.cfg.nprocs;

    const energy::Technology tech = energy::Technology::micron180();
    const auto &bank = system.bank(0);
    res.filterNames.reserve(bank.size());
    res.filterStats.reserve(bank.size());
    res.filterCosts.reserve(bank.size());
    for (std::size_t i = 0; i < bank.size(); ++i) {
        res.filterNames.push_back(bank.filterAt(i).name());
        res.filterStats.push_back(system.mergedFilterStats(i));
        res.filterCosts.push_back(bank.filterAt(i).energyCosts(tech));
    }
    return res;
}

} // namespace jetty::sim
