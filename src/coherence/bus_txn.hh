/**
 * @file
 * Bus transaction record and snoop response plumbing shared between the
 * bus, the processor nodes, and the statistics machinery.
 */

#ifndef JETTY_COHERENCE_BUS_TXN_HH
#define JETTY_COHERENCE_BUS_TXN_HH

#include <cstdint>

#include "coherence/moesi.hh"
#include "util/types.hh"

namespace jetty::coherence
{

/** One transaction placed on the snoop interconnect by a requester. */
struct BusTransaction
{
    BusOp op = BusOp::BusRead;
    Addr unitAddr = 0;     //!< coherence-unit-aligned address
    ProcId requester = 0;  //!< issuing processor

    /** Logical snoop bus the transaction was routed to: with an
     *  address-interleaved split interconnect every transaction for one
     *  unit lands on the same bus (sim/interconnect.hh). 0 on the
     *  classic single shared bus. */
    unsigned busId = 0;
};

/** Aggregate view of all snoop responses to one transaction. */
struct BusResponse
{
    unsigned remoteCopies = 0;  //!< caches (or WBs) holding a valid copy
    bool suppliedByCache = false;  //!< some cache (not memory) sourced data
};

} // namespace jetty::coherence

#endif // JETTY_COHERENCE_BUS_TXN_HH
