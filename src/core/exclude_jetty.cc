#include "core/exclude_jetty.hh"

#include "energy/sram_array.hh"
#include "util/bits.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace jetty::filter
{

ExcludeJetty::ExcludeJetty(const ExcludeJettyConfig &cfg,
                           const AddressMap &amap)
    : cfg_(cfg), amap_(amap)
{
    if (!isPowerOfTwo(cfg.sets) || cfg.assoc == 0)
        fatal("ExcludeJetty: sets must be a power of two, assoc non-zero");
    setBits_ = floorLog2(cfg.sets);
    if (amap.physAddrBits <= amap.blockOffsetBits + setBits_)
        fatal("ExcludeJetty: address space too small");
    tagBits_ = amap.physAddrBits - amap.blockOffsetBits - setBits_;
    presTag_.assign(static_cast<std::size_t>(cfg.sets) * cfg.assoc, 0);
    lastUse_.assign(presTag_.size(), 0);
}

std::uint64_t
ExcludeJetty::setIndex(Addr unitAddr) const
{
    return bitField(unitAddr, amap_.blockOffsetBits, setBits_);
}

Addr
ExcludeJetty::tagOf(Addr unitAddr) const
{
    return unitAddr >> (amap_.blockOffsetBits + setBits_);
}

bool
ExcludeJetty::probe(Addr unitAddr)
{
    const std::size_t base = setIndex(unitAddr) * cfg_.assoc;
    const std::uint64_t key = (tagOf(unitAddr) << 1) | 1;
    const int w = simd::findEqU64(&presTag_[base], cfg_.assoc, key);
    if (w < 0)
        return false;
    lastUse_[base + static_cast<unsigned>(w)] = ++useClock_;
    return true;
}

void
ExcludeJetty::onSnoopMiss(Addr unitAddr, bool blockPresent)
{
    // Only a whole-block miss gives the "nothing of this block is cached"
    // guarantee an entry encodes; a tag-matching subblock miss does not.
    if (blockPresent)
        return;

    const std::size_t base = setIndex(unitAddr) * cfg_.assoc;
    const std::uint64_t key = (tagOf(unitAddr) << 1) | 1;

    const int hit = simd::findEqU64(&presTag_[base], cfg_.assoc, key);
    if (hit >= 0) {
        lastUse_[base + static_cast<unsigned>(hit)] = ++useClock_;
        return;
    }

    // Allocate: prefer a not-present way, else LRU.
    std::size_t victim = base;
    bool found_free = false;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (!(presTag_[base + w] & 1)) {
            victim = base + w;
            found_free = true;
            break;
        }
    }
    if (!found_free) {
        for (unsigned w = 1; w < cfg_.assoc; ++w) {
            if (lastUse_[base + w] < lastUse_[victim])
                victim = base + w;
        }
    }
    presTag_[victim] = key;
    lastUse_[victim] = ++useClock_;
}

void
ExcludeJetty::onFill(Addr unitAddr)
{
    const std::size_t base = setIndex(unitAddr) * cfg_.assoc;
    const std::uint64_t key = (tagOf(unitAddr) << 1) | 1;
    const int w = simd::findEqU64(&presTag_[base], cfg_.assoc, key);
    // Part of the block is now cached: the guarantee is void. The tag
    // stays (exactly the old Entry's cleared present bit).
    if (w >= 0)
        presTag_[base + static_cast<unsigned>(w)] &= ~std::uint64_t{1};
}

void
ExcludeJetty::applyBatch(const BankEvent *evs, std::size_t n,
                         FilterStats &st)
{
    // The shared protocol with qualified (direct, inlinable) calls.
    replayBankEvents(
        evs, n, st, [this](Addr a) { return ExcludeJetty::probe(a); },
        [this](Addr a, bool blockPresent) {
            ExcludeJetty::onSnoopMiss(a, blockPresent);
        },
        [this](Addr a) { ExcludeJetty::onFill(a); },
        [](Addr) {});  // the EJ ignores evictions
}

void
ExcludeJetty::clear()
{
    for (auto &w : presTag_)
        w = 0;
    for (auto &u : lastUse_)
        u = 0;
    useClock_ = 0;
}

StorageBreakdown
ExcludeJetty::storage() const
{
    StorageBreakdown s;
    s.presenceBits = static_cast<std::uint64_t>(cfg_.sets) * cfg_.assoc *
                     (tagBits_ + 1);
    return s;
}

energy::FilterEnergyCosts
ExcludeJetty::energyCosts(const energy::Technology &tech) const
{
    // The EJ is a tiny tag array: one row per set, all ways side by side.
    const std::uint64_t cols =
        static_cast<std::uint64_t>(cfg_.assoc) * (tagBits_ + 1);
    energy::SramArray array(cfg_.sets, cols, 1, tech);
    const double comparators =
        static_cast<double>(cfg_.assoc) * tagBits_ * tech.eComparatorPerBit;

    energy::FilterEnergyCosts costs;
    // The comparators sit beside the array (register-file scale), so no
    // long output wires are driven: bitsOut = 0, comparator term added.
    costs.probe = array.readEnergy(0) + comparators;
    costs.snoopAlloc = array.writeEnergy(tagBits_ + 1);
    // A local fill must search the EJ and clear a matching present bit.
    costs.fillUpdate = costs.probe + array.writeEnergy(1);
    costs.evictUpdate = 0.0;  // EJ ignores evictions
    return costs;
}

std::string
ExcludeJetty::name() const
{
    return "EJ-" + std::to_string(cfg_.sets) + "x" +
           std::to_string(cfg_.assoc);
}

} // namespace jetty::filter
