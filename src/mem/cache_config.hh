/**
 * @file
 * Structural configuration of the two-level per-processor hierarchy.
 * Defaults reproduce the paper's SPARC-like base system: 64 KB
 * direct-mapped L1 with 32 B lines; 1 MB direct-mapped L2 with 64 B blocks
 * of two 32 B subblocks; MOESI at subblock level; L2 supersets L1.
 */

#ifndef JETTY_MEM_CACHE_CONFIG_HH
#define JETTY_MEM_CACHE_CONFIG_HH

#include <cstdint>

#include "util/bits.hh"
#include "util/types.hh"

namespace jetty::mem
{

/** L1 data cache organization. */
struct L1Config
{
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 1;
    unsigned blockBytes = 32;

    std::uint64_t sets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(blockBytes) * assoc);
    }
};

/** L2 cache organization. */
struct L2Config
{
    std::uint64_t sizeBytes = 1024 * 1024;
    unsigned assoc = 1;
    unsigned blockBytes = 64;
    unsigned subblocks = 2;  //!< coherence units per block (1 = no subblocking)

    std::uint64_t sets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(blockBytes) * assoc);
    }

    /** Coherence-unit size in bytes. */
    unsigned unitBytes() const { return blockBytes / subblocks; }
};

} // namespace jetty::mem

#endif // JETTY_MEM_CACHE_CONFIG_HH
