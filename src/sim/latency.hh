/**
 * @file
 * Snoop-latency impact model, backing Section 2.2's argument that JETTY
 * adds no meaningful latency: the filter is probed in series with the L2
 * tags, so an *unfiltered* snoop pays one extra JETTY latency, while a
 * *filtered* snoop is answered by the JETTY itself, far sooner than the
 * tag array would have answered. Because state-of-the-art snoopy buses
 * run several times slower than processors, even the worst case is a
 * small fraction of a bus cycle.
 *
 * The model is analytic over run statistics (the coherence simulation is
 * functional); it reports the change in mean snoop-response latency and
 * normalizes it against the bus clock.
 */

#ifndef JETTY_SIM_LATENCY_HH
#define JETTY_SIM_LATENCY_HH

#include <cstdint>

#include "core/filter_bank.hh"
#include "sim/sim_stats.hh"

namespace jetty::sim
{

/** Latency parameters, in processor cycles (paper Section 2.2: a JETTY
 *  probe is register-file-like, a fraction of a cycle; a sizeable L2 tag
 *  probe takes several cycles; buses run 4-10x slower than cores). */
struct LatencyParams
{
    double jettyCycles = 0.5;   //!< JETTY probe (8-ported 32x32 RF scale)
    double l2TagCycles = 12.0;  //!< L2 tag array probe
    double busClockRatio = 6.0; //!< processor cycles per bus cycle

    /** Bus cycles one snoop transaction occupies its home bus for
     *  (address + snoop-response phases of an atomic bus). */
    double busOccupancyBusCycles = 1.0;
};

/** Latency impact of one filter configuration over one run. */
struct LatencyImpact
{
    double baselineMeanCycles = 0;  //!< mean snoop response, no JETTY
    double jettyMeanCycles = 0;     //!< mean snoop response, with JETTY
    double worstCaseAddedCycles = 0;  //!< per unfiltered snoop

    /** Relative change of the mean snoop response time (negative =
     *  faster, because filtered snoops answer early). */
    double meanChangePct() const;

    /** Worst-case addition as a fraction of one bus cycle. */
    double worstCaseBusCycleFraction(const LatencyParams &p) const;
};

/**
 * Evaluate the latency impact of a filter given its run statistics.
 * Every snoop is answered after the tag probe in the baseline; with a
 * JETTY, filtered snoops are answered after the JETTY probe alone and
 * unfiltered snoops after JETTY + tags (serial placement).
 */
LatencyImpact evaluateLatency(const filter::FilterStats &stats,
                              const LatencyParams &params = LatencyParams{});

/**
 * Contention term of the split snoop interconnect: how loaded each
 * logical bus was over a run, and the queueing delay that load implies.
 * Analytic over run statistics, like the rest of this model: processor
 * time is approximated as one cycle per retired reference per processor
 * (the trace replay's unit-IPC convention), bus time as that over
 * busClockRatio, and each bus as an M/D/1 server with deterministic
 * service busOccupancyBusCycles — mean wait rho/(2(1-rho)) * service.
 * Splitting the interconnect divides each bus's arrival stream by the
 * interleave, so utilization and waiting fall with the bus count.
 */
struct BusContentionImpact
{
    double busiestUtilization = 0;   //!< rho of the most loaded bus
    double meanUtilization = 0;      //!< mean rho over all buses
    double busiestWaitBusCycles = 0; //!< M/D/1 wait on the busiest bus
    bool saturated = false;          //!< some bus had rho >= 1
};

/**
 * Evaluate bus contention from a run's statistics. @p stats must carry
 * the per-bus occupancy (SimStats::perBus) the interconnect recorded.
 */
BusContentionImpact
evaluateBusContention(const SimStats &stats,
                      const LatencyParams &params = LatencyParams{});

} // namespace jetty::sim

#endif // JETTY_SIM_LATENCY_HH
