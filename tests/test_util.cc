/**
 * @file
 * Unit tests for the util library: bit helpers, deterministic RNG,
 * statistics primitives, table formatting, and string parsing.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/bits.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/string_utils.hh"
#include "util/table.hh"

using namespace jetty;

TEST(Bits, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(6));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(Bits, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bits, BitField)
{
    EXPECT_EQ(bitField(0xff00, 8, 8), 0xffull);
    EXPECT_EQ(bitField(0xabcd, 0, 4), 0xdull);
    EXPECT_EQ(bitField(0xabcd, 4, 4), 0xcull);
    EXPECT_EQ(bitField(~0ull, 60, 10), 0xfull);  // truncated at bit 63
    EXPECT_EQ(bitField(0xff, 0, 0), 0ull);
    EXPECT_EQ(bitField(0xff, 64, 4), 0ull);
}

TEST(Bits, MaskAndAlign)
{
    EXPECT_EQ(maskBits(0), 0ull);
    EXPECT_EQ(maskBits(8), 0xffull);
    EXPECT_EQ(maskBits(64), ~0ull);
    EXPECT_EQ(alignDown(0x1234, 0x100), 0x1200ull);
    EXPECT_EQ(alignDown(0x1200, 0x100), 0x1200ull);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.below(37);
        EXPECT_LT(v, 37u);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, HotIndexBiased)
{
    Rng r(13);
    // With strong bias the mean index is far below uniform's n/2.
    double hot_sum = 0, uni_sum = 0;
    const std::uint64_t n = 1000;
    for (int i = 0; i < 20000; ++i) {
        hot_sum += static_cast<double>(r.hotIndex(n, 0.7));
        uni_sum += static_cast<double>(r.hotIndex(n, 0.0));
    }
    EXPECT_LT(hot_sum, uni_sum * 0.6);
}

TEST(Rng, HotIndexInRange)
{
    Rng r(17);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.hotIndex(33, 0.5), 33u);
}

TEST(Stats, Counter)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    Counter d;
    d.inc(7);
    c.merge(d);
    EXPECT_EQ(c.value(), 12u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, MedianInPlace)
{
    std::vector<double> empty;
    EXPECT_DOUBLE_EQ(medianInPlace(empty), 0.0);

    // Single sample takes the direct path: the value comes back as-is
    // and the vector is untouched.
    std::vector<double> one = {42.5};
    EXPECT_DOUBLE_EQ(medianInPlace(one), 42.5);
    EXPECT_EQ(one.size(), 1u);
    EXPECT_DOUBLE_EQ(one[0], 42.5);

    // Odd count: the middle element after sorting.
    std::vector<double> odd = {3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(medianInPlace(odd), 2.0);

    // Even count: the lower-middle element (no averaging).
    std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(medianInPlace(even), 2.0);
}

TEST(Stats, Ratios)
{
    EXPECT_DOUBLE_EQ(ratio(1, 2), 0.5);
    EXPECT_DOUBLE_EQ(ratio(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
}

TEST(Stats, HistogramBasics)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(9);  // clamped into the last bucket
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(Stats, HistogramMerge)
{
    Histogram a(3), b(3);
    a.sample(0);
    b.sample(2);
    b.sample(2);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.count(2), 2u);
}

TEST(Stats, HistogramReset)
{
    Histogram h(2);
    h.sample(1);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(1), 0u);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(TextTable::num(1.5, 1), "1.5");
    EXPECT_EQ(TextTable::pct(12.34, 1), "12.3%");
    EXPECT_EQ(TextTable::count(42), "42");
}

TEST(Table, PrintAndCsvDoNotCrash)
{
    TextTable t;
    t.header({"a", "b"});
    t.row({"1", "longer"});
    t.row({"x"});
    std::FILE *dev_null = std::fopen("/dev/null", "w");
    ASSERT_NE(dev_null, nullptr);
    t.print(dev_null);
    t.printCsv(dev_null);
    std::fclose(dev_null);
}

TEST(Strings, Split)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(split("", 'x').size(), 1u);
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("EJ-32x4", "EJ-"));
    EXPECT_FALSE(startsWith("EJ", "EJ-"));
}

TEST(Strings, ParseUnsigned)
{
    unsigned v = 0;
    EXPECT_TRUE(parseUnsigned("123", v));
    EXPECT_EQ(v, 123u);
    EXPECT_FALSE(parseUnsigned("", v));
    EXPECT_FALSE(parseUnsigned("12a", v));
    EXPECT_FALSE(parseUnsigned("-3", v));
    EXPECT_FALSE(parseUnsigned("99999999999", v));
}

TEST(Strings, TrimAndUpper)
{
    EXPECT_EQ(trim("  hi "), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(toUpper("ba"), "BA");
}
