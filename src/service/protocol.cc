#include "service/protocol.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace jetty::service
{

namespace
{

std::string
errnoString()
{
    return std::strerror(errno);
}

/** Fill a sockaddr_un; unix socket paths are limited to ~107 bytes. */
bool
fillAddr(const std::string &path, sockaddr_un &addr, std::string *err)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path too long (" + std::to_string(path.size()) +
                   " bytes, max " +
                   std::to_string(sizeof(addr.sun_path) - 1) + "): " + path;
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int
listenUnix(const std::string &path, std::string *err)
{
    sockaddr_un addr;
    if (!fillAddr(path, addr, err))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = "socket: " + errnoString();
        return -1;
    }
    // A previous daemon's socket file blocks bind(); it is only a
    // rendezvous point, so replacing it is always right.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (err)
            *err = "bind " + path + ": " + errnoString();
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        if (err)
            *err = "listen " + path + ": " + errnoString();
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string *err)
{
    sockaddr_un addr;
    if (!fillAddr(path, addr, err))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = "socket: " + errnoString();
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err)
            *err = "connect " + path + ": " + errnoString();
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendLine(int fd, const std::string &line, std::string *err)
{
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
        // MSG_NOSIGNAL: a client hanging up mid-response must surface
        // as EPIPE here, not kill the daemon with SIGPIPE. Non-socket
        // fds (a worker attached over pipes) reject send() with
        // ENOTSOCK and take the write() path — those callers ignore
        // SIGPIPE themselves.
        ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, framed.data() + sent, framed.size() - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = "send: " + errnoString();
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
sendValue(int fd, const json::Value &v, std::string *err)
{
    return sendLine(fd, v.dumpCompact(), err);
}

int
LineReader::takeBuffered(std::string &line, std::string *err)
{
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
        line.assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return 1;
    }
    if (buf_.size() > kMaxLineBytes) {
        if (err)
            *err = "line exceeds " + std::to_string(kMaxLineBytes) +
                   " bytes";
        return -1;
    }
    return 0;
}

int
LineReader::readLine(std::string &line, std::string *err)
{
    for (;;) {
        const int buffered = takeBuffered(line, err);
        if (buffered != 0)
            return buffered;
        char chunk[64 * 1024];
        // read(), not recv(): the reader also serves non-socket
        // transports (worker pipes).
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = "read: " + errnoString();
            return -1;
        }
        if (n == 0) {
            if (buf_.empty())
                return 0;
            if (err)
                *err = "connection closed mid-line";
            return -1;
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

int
LineReader::readLineTimeout(std::string &line, int timeoutMs,
                            std::string *err)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline = Clock::now() + std::chrono::milliseconds(
                                             timeoutMs < 0 ? 0 : timeoutMs);
    for (;;) {
        const int buffered = takeBuffered(line, err);
        if (buffered != 0)
            return buffered;
        const auto left = std::chrono::duration_cast<
                              std::chrono::milliseconds>(deadline -
                                                         Clock::now())
                              .count();
        if (left <= 0)
            return kReadTimedOut;
        struct pollfd pfd = {fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, static_cast<int>(left));
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = "poll: " + errnoString();
            return -1;
        }
        if (ready == 0)
            return kReadTimedOut;
        char chunk[64 * 1024];
        // read(), not recv(): the reader also serves non-socket
        // transports (worker pipes).
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = "read: " + errnoString();
            return -1;
        }
        if (n == 0) {
            if (buf_.empty())
                return 0;
            if (err)
                *err = "connection closed mid-line";
            return -1;
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

json::Value
makeRunRequest(json::Value spec)
{
    json::Value req = json::Value::object();
    req.set("jetty_request", kProtocolVersion);
    req.set("verb", "run");
    req.set("spec", std::move(spec));
    return req;
}

json::Value
makeRequest(const std::string &verb)
{
    json::Value req = json::Value::object();
    req.set("jetty_request", kProtocolVersion);
    req.set("verb", verb);
    return req;
}

json::Value
makeErrorResponse(const std::string &error)
{
    json::Value resp = json::Value::object();
    resp.set("jetty_response", kProtocolVersion);
    resp.set("ok", false);
    resp.set("error", error);
    return resp;
}

} // namespace jetty::service
