/**
 * @file
 * Coarse-grain region filter: an extension in the direction the paper's
 * conclusion sketches ("other applications of snoop-filtering structures
 * such as JETTY might be possible") and that later work (RegionScout,
 * Moshovos 2005) developed. It is an include-style filter at *region*
 * granularity: a small counting table, indexed by hashed region number,
 * whose zero entries guarantee that no coherence unit of any matching
 * region is cached. Coarse regions make a tiny table cover a huge address
 * range, trading per-block precision for reach -- strong on workloads
 * whose sharing is region-disjoint (private heaps), weak when hot and
 * cold data share regions.
 *
 * Spec string: "RF-<E>x<R>" = 2^E counting entries over 2^R-byte regions
 * (e.g. "RF-8x10" = 256 entries, 1 KiB regions).
 */

#ifndef JETTY_CORE_REGION_FILTER_HH
#define JETTY_CORE_REGION_FILTER_HH

#include <cstdint>
#include <vector>

#include "core/snoop_filter.hh"

namespace jetty::filter
{

/** Configuration of an RF-ExR organization. */
struct RegionFilterConfig
{
    unsigned entryBits = 8;    //!< log2 of counting entries
    unsigned regionBits = 10;  //!< log2 of region bytes
};

/** The coarse region filter. */
class RegionFilter : public SnoopFilter
{
  public:
    RegionFilter(const RegionFilterConfig &cfg, const AddressMap &amap);

    bool probe(Addr unitAddr) override;
    void onSnoopMiss(Addr, bool) override {}
    void onFill(Addr unitAddr) override;
    void onEvict(Addr unitAddr) override;
    void clear() override;

    StorageBreakdown storage() const override;
    energy::FilterEnergyCosts
    energyCosts(const energy::Technology &tech) const override;
    std::string name() const override;

    /** Table index of @p unitAddr's region (exposed for tests). */
    std::uint64_t indexOf(Addr unitAddr) const;

  private:
    RegionFilterConfig cfg_;
    AddressMap amap_;
    unsigned counterBits_;
    std::vector<std::uint32_t> counts_;
};

} // namespace jetty::filter

#endif // JETTY_CORE_REGION_FILTER_HH
