// Fixture: exit() in tools/ is legal — executables own their process.
#include <cstdlib>

int
main()
{
    exit(0);
}
