/**
 * @file
 * CMOS technology parameters for the energy models.
 *
 * The paper assumes a 0.18 um process at 1.8 V with interconnect
 * characteristics from Cong et al. (ICCAD'97) and the Kamble--Ghose
 * analytical cache-energy framework. The constants below are representative
 * published values for that node; the reproduction's results are *relative*
 * energies, so only the scaling behaviour (bitline energy proportional to
 * rows x columns, output-driver energy proportional to bits transported)
 * must be right, which it is by construction.
 */

#ifndef JETTY_ENERGY_TECHNOLOGY_HH
#define JETTY_ENERGY_TECHNOLOGY_HH

namespace jetty::energy
{

/** Process/circuit parameters consumed by the SRAM array model. */
struct Technology
{
    /** Supply voltage in volts. */
    double vdd = 1.8;

    /** Pass-transistor drain capacitance a cell adds to its bitline (F). */
    double cDrainPerCell = 1.0e-15;

    /** Metal wire capacitance per micron (F/um). */
    double cWirePerMicron = 0.2e-15;

    /** SRAM cell height along the bitline (um). */
    double cellHeightMicron = 2.0;

    /** SRAM cell width along the wordline (um). */
    double cellWidthMicron = 2.1;

    /** Gate load a cell places on its wordline (two pass transistors, F). */
    double cGatePerCell = 1.6e-15;

    /** Sensed (partial) bitline swing on reads, volts. */
    double bitlineSwingRead = 0.3;

    /** Energy of one sense amplifier firing (J). */
    double eSenseAmp = 0.02e-12;

    /** Capacitance of one output/IO driver load (F per bit transported). */
    double cOutputDriver = 0.1e-12;

    /** Energy per tag-comparator bit (match-line + XOR, J). */
    double eComparatorPerBit = 0.02e-12;

    /** Decoder energy per decoded address bit (J). */
    double eDecoderPerBit = 0.05e-12;

    /** Per-bank control (precharge clocking) energy, charged for every
     *  bank in the mat on each access; this is what makes over-banking
     *  counter-productive and gives the CACTI-lite optimizer a minimum. */
    double eBankControl = 0.02e-12;

    /** The canonical 0.18 um / 1.8 V technology point used in the paper. */
    static Technology
    micron180()
    {
        return Technology{};
    }
};

} // namespace jetty::energy

#endif // JETTY_ENERGY_TECHNOLOGY_HH
