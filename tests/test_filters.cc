/**
 * @file
 * Unit tests for the JETTY filter family: exclude, vector-exclude,
 * include, hybrid, the spec parser, storage accounting and energy costs.
 */

#include <gtest/gtest.h>

#include "core/exclude_jetty.hh"
#include "core/filter_spec.hh"
#include "core/hybrid_jetty.hh"
#include "core/include_jetty.hh"
#include "core/null_filter.hh"
#include "core/vector_exclude_jetty.hh"

using namespace jetty;
using namespace jetty::filter;

namespace
{

AddressMap
baseMap()
{
    AddressMap amap;
    amap.unitOffsetBits = 5;   // 32B units
    amap.blockOffsetBits = 6;  // 64B blocks
    amap.physAddrBits = 40;
    amap.l2CapacityUnits = 32768;
    return amap;
}

constexpr Addr kBlock = 0x123440;   // block-aligned
constexpr Addr kUnit0 = kBlock;     // first subblock
constexpr Addr kUnit1 = kBlock + 32;

} // namespace

// -------------------------------------------------------- NullFilter ----

TEST(NullFilter, NeverFilters)
{
    NullFilter f;
    EXPECT_FALSE(f.probe(0x1000));
    f.onSnoopMiss(0x1000, false);
    EXPECT_FALSE(f.probe(0x1000));
    EXPECT_EQ(f.storage().totalBits(), 0u);
    EXPECT_EQ(f.name(), "NULL");
}

// ------------------------------------------------------- ExcludeJetty ----

TEST(ExcludeJetty, FiltersAfterWholeBlockMiss)
{
    ExcludeJetty ej({32, 4}, baseMap());
    EXPECT_FALSE(ej.probe(kUnit0));
    ej.onSnoopMiss(kUnit0, /*blockPresent=*/false);
    EXPECT_TRUE(ej.probe(kUnit0));
}

TEST(ExcludeJetty, SubblockSiblingFiltered)
{
    // The paper's key locality source: a whole-block miss on one subblock
    // lets the EJ filter the follow-up snoop to the sibling.
    ExcludeJetty ej({32, 4}, baseMap());
    ej.onSnoopMiss(kUnit0, false);
    EXPECT_TRUE(ej.probe(kUnit1));
}

TEST(ExcludeJetty, TagMatchingMissNotRecorded)
{
    // When some other subblock of the block is valid locally, recording
    // "whole block absent" would be unsafe, so nothing is learned.
    ExcludeJetty ej({32, 4}, baseMap());
    ej.onSnoopMiss(kUnit0, /*blockPresent=*/true);
    EXPECT_FALSE(ej.probe(kUnit0));
    EXPECT_FALSE(ej.probe(kUnit1));
}

TEST(ExcludeJetty, FillClearsEntry)
{
    ExcludeJetty ej({32, 4}, baseMap());
    ej.onSnoopMiss(kUnit0, false);
    ej.onFill(kUnit1);  // any unit of the block voids the guarantee
    EXPECT_FALSE(ej.probe(kUnit0));
    EXPECT_FALSE(ej.probe(kUnit1));
}

TEST(ExcludeJetty, UnrelatedFillKeepsEntry)
{
    ExcludeJetty ej({32, 4}, baseMap());
    ej.onSnoopMiss(kUnit0, false);
    ej.onFill(0x999940);
    EXPECT_TRUE(ej.probe(kUnit0));
}

TEST(ExcludeJetty, LruReplacementWithinSet)
{
    AddressMap amap = baseMap();
    ExcludeJetty ej({4, 2}, amap);  // tiny: 4 sets x 2 ways
    // Three blocks mapping to the same set (stride = sets * blockBytes).
    const Addr stride = 4 * 64;
    ej.onSnoopMiss(0 * stride, false);
    ej.onSnoopMiss(1 * stride, false);
    ej.probe(0 * stride);  // refresh entry 0
    ej.onSnoopMiss(2 * stride, false);  // evicts entry for 1*stride
    EXPECT_TRUE(ej.probe(0 * stride));
    EXPECT_FALSE(ej.probe(1 * stride));
    EXPECT_TRUE(ej.probe(2 * stride));
}

TEST(ExcludeJetty, ClearEmptiesEverything)
{
    ExcludeJetty ej({32, 4}, baseMap());
    ej.onSnoopMiss(kUnit0, false);
    ej.clear();
    EXPECT_FALSE(ej.probe(kUnit0));
}

TEST(ExcludeJetty, StorageAndName)
{
    ExcludeJetty ej({32, 4}, baseMap());
    // Tag bits: 40 - 6 (block) - 5 (sets) = 29; +1 present bit.
    EXPECT_EQ(ej.storedTagBits(), 29u);
    EXPECT_EQ(ej.storage().presenceBits, 32u * 4u * 30u);
    EXPECT_EQ(ej.storage().counterBits, 0u);
    EXPECT_EQ(ej.name(), "EJ-32x4");
}

TEST(ExcludeJetty, EnergyCostsSane)
{
    ExcludeJetty ej({32, 4}, baseMap());
    const auto c = ej.energyCosts(energy::Technology::micron180());
    EXPECT_GT(c.probe, 0.0);
    EXPECT_GT(c.snoopAlloc, 0.0);
    EXPECT_GT(c.fillUpdate, c.probe);  // probe + write
    EXPECT_DOUBLE_EQ(c.evictUpdate, 0.0);
}

// ------------------------------------------------- VectorExcludeJetty ----

TEST(VectorExcludeJetty, PerBlockBits)
{
    VectorExcludeJetty vej({32, 4, 8}, baseMap());
    vej.onSnoopMiss(kUnit0, false);
    EXPECT_TRUE(vej.probe(kUnit0));
    EXPECT_TRUE(vej.probe(kUnit1));  // same block
    // The next block in the chunk is not yet known absent.
    EXPECT_FALSE(vej.probe(kBlock + 64));
}

TEST(VectorExcludeJetty, SpatialAccumulation)
{
    VectorExcludeJetty vej({32, 4, 8}, baseMap());
    // Record all 8 blocks of one chunk.
    const Addr chunk = 0x40000;  // 8*64 aligned
    for (int b = 0; b < 8; ++b)
        vej.onSnoopMiss(chunk + b * 64, false);
    for (int b = 0; b < 8; ++b)
        EXPECT_TRUE(vej.probe(chunk + b * 64));
}

TEST(VectorExcludeJetty, FillClearsOnlyItsBlockBit)
{
    VectorExcludeJetty vej({32, 4, 8}, baseMap());
    const Addr chunk = 0x40000;
    vej.onSnoopMiss(chunk, false);
    vej.onSnoopMiss(chunk + 64, false);
    vej.onFill(chunk + 64);
    EXPECT_TRUE(vej.probe(chunk));
    EXPECT_FALSE(vej.probe(chunk + 64));
}

TEST(VectorExcludeJetty, EntryDiesWhenVectorEmpties)
{
    VectorExcludeJetty vej({4, 1, 4}, baseMap());
    const Addr chunk = 0x40000;
    vej.onSnoopMiss(chunk, false);
    vej.onFill(chunk);
    EXPECT_FALSE(vej.probe(chunk));
    // The way is reusable for another chunk without eviction.
    vej.onSnoopMiss(chunk + 4 * 64 * 4, false);
    EXPECT_TRUE(vej.probe(chunk + 4 * 64 * 4));
}

TEST(VectorExcludeJetty, BlockPresentMissNotRecorded)
{
    VectorExcludeJetty vej({32, 4, 8}, baseMap());
    vej.onSnoopMiss(kUnit0, true);
    EXPECT_FALSE(vej.probe(kUnit0));
}

TEST(VectorExcludeJetty, NameAndStorage)
{
    VectorExcludeJetty vej({32, 4, 8}, baseMap());
    EXPECT_EQ(vej.name(), "VEJ-32x4-8");
    // Tag bits: 40 - 6 - 3 (vector) - 5 (sets) = 26; +8 vector bits.
    EXPECT_EQ(vej.storedTagBits(), 26u);
    EXPECT_EQ(vej.storage().presenceBits, 32u * 4u * 34u);
}

TEST(VectorExcludeJetty, DifferentIndexingThanEj)
{
    // Equal sets/assoc EJ and VEJ slice the address differently (the
    // paper's thrashing observation): two blocks that share an EJ set may
    // land in different VEJ sets and vice versa.
    AddressMap amap = baseMap();
    ExcludeJetty ej({32, 4}, amap);
    VectorExcludeJetty vej({32, 4, 8}, amap);
    // Blocks 0 and 32 blocks apart share an EJ set but differ in VEJ set.
    const Addr a = 0, b = 32 * 64;
    ej.onSnoopMiss(a, false);
    ej.onSnoopMiss(b, false);
    EXPECT_TRUE(ej.probe(a));
    EXPECT_TRUE(ej.probe(b));
    vej.onSnoopMiss(a, false);
    vej.onSnoopMiss(b, false);
    EXPECT_TRUE(vej.probe(a));
    EXPECT_TRUE(vej.probe(b));
}

// ------------------------------------------------------- IncludeJetty ----

TEST(IncludeJetty, EmptyFiltersEverything)
{
    IncludeJetty ij({10, 4, 7}, baseMap());
    EXPECT_TRUE(ij.probe(0x0));
    EXPECT_TRUE(ij.probe(0xdeadbee0));
}

TEST(IncludeJetty, FilledUnitNeverFiltered)
{
    IncludeJetty ij({10, 4, 7}, baseMap());
    ij.onFill(kUnit0);
    EXPECT_FALSE(ij.probe(kUnit0));
}

TEST(IncludeJetty, EvictRestoresFiltering)
{
    IncludeJetty ij({10, 4, 7}, baseMap());
    ij.onFill(kUnit0);
    ij.onEvict(kUnit0);
    EXPECT_TRUE(ij.probe(kUnit0));
}

TEST(IncludeJetty, CountersHandleMultiplicity)
{
    IncludeJetty ij({10, 4, 7}, baseMap());
    ij.onFill(kUnit0);
    ij.onFill(kUnit0 + (1ull << 36));  // far away; may share some slices
    ij.onEvict(kUnit0 + (1ull << 36));
    EXPECT_FALSE(ij.probe(kUnit0));  // first fill still protected
}

TEST(IncludeJetty, BlockGranularIndexSharesSubblocks)
{
    // Paper indexing starts above the block offset: both subblocks of a
    // block index identically, so the sibling of a cached unit is never
    // filtered (it is a superset at block grain).
    IncludeJetty ij({10, 4, 7}, baseMap());
    ij.onFill(kUnit0);
    EXPECT_FALSE(ij.probe(kUnit1));
}

TEST(IncludeJetty, UnitGranularIndexSeparatesSubblocks)
{
    IncludeJettyConfig cfg{10, 4, 7, IjIndexBase::Unit};
    IncludeJetty ij(cfg, baseMap());
    ij.onFill(kUnit0);
    // With unit-granular indexing the sibling differs in the lowest index
    // bit, so at least one slice can be empty for it.
    EXPECT_TRUE(ij.probe(kUnit1));
    EXPECT_EQ(ij.name(), "IJ-10x4x7u");
}

TEST(IncludeJetty, IndexSlices)
{
    IncludeJetty ij({10, 4, 7}, baseMap());
    // Index i covers bits [6 + 7i, 16 + 7i) of the address.
    const Addr a = 0x3ffull << 6;  // bits 6..16 set
    EXPECT_EQ(ij.indexOf(a, 0), 0x3ffull);
    EXPECT_EQ(ij.indexOf(a, 1), 0x3ffull >> 7);
    EXPECT_EQ(ij.indexOf(a, 2), 0ull);
}

TEST(IncludeJetty, SupersetProperty)
{
    // Whatever the fill set, no member of it may be filtered.
    IncludeJetty ij({8, 4, 7}, baseMap());
    std::vector<Addr> filled;
    for (Addr a = 0; a < 300; ++a)
        filled.push_back(0x10000000 + a * 32);
    for (Addr a : filled)
        ij.onFill(a);
    for (Addr a : filled)
        EXPECT_FALSE(ij.probe(a));
}

TEST(IncludeJetty, ClearResetsCounters)
{
    IncludeJetty ij({8, 4, 7}, baseMap());
    ij.onFill(kUnit0);
    ij.clear();
    EXPECT_TRUE(ij.probe(kUnit0));
}

TEST(IncludeJetty, CounterWidthPessimistic)
{
    IncludeJetty ij({10, 4, 7}, baseMap());
    // 32768 units -> 16 bits (we count units; paper's 14 bits counted
    // 16K blocks).
    EXPECT_EQ(ij.counterBits(), 16u);
}

TEST(IncludeJetty, PbitShapesMatchTable4)
{
    const AddressMap amap = baseMap();
    std::uint64_t r, c;
    IncludeJetty({10, 4, 7}, amap).pbitArrayShape(r, c);
    EXPECT_EQ(r, 32u);
    EXPECT_EQ(c, 32u);
    IncludeJetty({9, 4, 7}, amap).pbitArrayShape(r, c);
    EXPECT_EQ(r, 16u);
    EXPECT_EQ(c, 32u);
    IncludeJetty({8, 4, 7}, amap).pbitArrayShape(r, c);
    EXPECT_EQ(r, 16u);
    EXPECT_EQ(c, 16u);
}

TEST(IncludeJetty, StorageScalesWithConfig)
{
    const AddressMap amap = baseMap();
    const auto big = IncludeJetty({10, 4, 7}, amap).storage();
    const auto small = IncludeJetty({6, 5, 6}, amap).storage();
    EXPECT_EQ(big.presenceBits, 4u * 1024u);
    EXPECT_EQ(small.presenceBits, 5u * 64u);
    EXPECT_GT(big.totalBytes(), small.totalBytes() * 8);
}

TEST(IncludeJettyDeathTest, CounterUnderflowPanics)
{
    IncludeJetty ij({8, 4, 7}, baseMap());
    EXPECT_DEATH(ij.onEvict(kUnit0), "underflow");
}

// -------------------------------------------------------- HybridJetty ----

TEST(HybridJetty, EitherComponentFilters)
{
    const AddressMap amap = baseMap();
    HybridJetty hj(std::make_unique<IncludeJetty>(
                       IncludeJettyConfig{10, 4, 7}, amap),
                   std::make_unique<ExcludeJetty>(
                       ExcludeJettyConfig{32, 4}, amap));
    // Empty IJ filters everything.
    EXPECT_TRUE(hj.probe(kUnit0));
    // Make the IJ agnostic about this block, then rely on the EJ.
    hj.onFill(kUnit0);
    EXPECT_FALSE(hj.probe(kUnit0));
    hj.onEvict(kUnit0);
    EXPECT_TRUE(hj.probe(kUnit0));
}

TEST(HybridJetty, EjBacksUpIjLeaks)
{
    const AddressMap amap = baseMap();
    auto ij_owned = std::make_unique<IncludeJetty>(
        IncludeJettyConfig{6, 2, 6}, amap);
    HybridJetty hj(std::move(ij_owned),
                   std::make_unique<ExcludeJetty>(
                       ExcludeJettyConfig{32, 4}, amap));

    // Saturate the IJ's view of this address's slices with other fills so
    // the IJ cannot filter kUnit0.
    auto &ij = hj.includePart();
    for (int i = 0; i < 4000; ++i) {
        const Addr scatter =
            (static_cast<Addr>(i) * 2654435761ull) & 0xFFFE0ull;
        ij.onFill(0x20000000 + scatter);
    }
    ASSERT_FALSE(hj.probe(kUnit0));

    // The unfiltered miss is recorded by the EJ and filters next time.
    hj.onSnoopMiss(kUnit0, false);
    EXPECT_TRUE(hj.probe(kUnit0));
}

TEST(HybridJetty, AggregatesStorageAndEnergy)
{
    const AddressMap amap = baseMap();
    auto ij = std::make_unique<IncludeJetty>(IncludeJettyConfig{10, 4, 7},
                                             amap);
    auto ej = std::make_unique<ExcludeJetty>(ExcludeJettyConfig{32, 4},
                                             amap);
    const auto ij_storage = ij->storage();
    const auto ej_storage = ej->storage();
    const auto tech = energy::Technology::micron180();
    const auto ij_costs = ij->energyCosts(tech);
    const auto ej_costs = ej->energyCosts(tech);

    HybridJetty hj(std::move(ij), std::move(ej));
    EXPECT_EQ(hj.storage().totalBits(),
              ij_storage.totalBits() + ej_storage.totalBits());
    EXPECT_DOUBLE_EQ(hj.energyCosts(tech).probe,
                     ij_costs.probe + ej_costs.probe);
    EXPECT_EQ(hj.name(), "HJ(IJ-10x4x7,EJ-32x4)");
}

// -------------------------------------------------------- Spec parser ----

TEST(FilterSpec, ParsesAllPaperConfigs)
{
    const AddressMap amap = baseMap();
    for (const auto &group :
         {paperExcludeSpecs(), paperVectorExcludeSpecs(),
          paperIncludeSpecs(), paperHybridSpecs()}) {
        for (const auto &spec : group) {
            EXPECT_TRUE(isValidFilterSpec(spec)) << spec;
            auto f = makeFilter(spec, amap);
            EXPECT_EQ(f->name(), spec);
        }
    }
}

TEST(FilterSpec, ParsesNull)
{
    auto f = makeFilter("null", baseMap());
    EXPECT_EQ(f->name(), "NULL");
}

TEST(FilterSpec, ParsesUnitVariant)
{
    auto f = makeFilter("IJ-8x4x7u", baseMap());
    EXPECT_EQ(f->name(), "IJ-8x4x7u");
}

TEST(FilterSpec, RejectsGarbage)
{
    EXPECT_FALSE(isValidFilterSpec(""));
    EXPECT_FALSE(isValidFilterSpec("EJ-32"));
    EXPECT_FALSE(isValidFilterSpec("EJ-axb"));
    EXPECT_FALSE(isValidFilterSpec("VEJ-32x4"));
    EXPECT_FALSE(isValidFilterSpec("IJ-10x4"));
    EXPECT_FALSE(isValidFilterSpec("HJ(IJ-10x4x7)"));
    EXPECT_FALSE(isValidFilterSpec("HJ(IJ-10x4x7,)"));
    EXPECT_FALSE(isValidFilterSpec("ZZ-1x2"));
}

TEST(FilterSpec, HybridComposesVej)
{
    auto f = makeFilter("HJ(IJ-9x4x7,VEJ-32x4-8)", baseMap());
    EXPECT_EQ(f->name(), "HJ(IJ-9x4x7,VEJ-32x4-8)");
}
