# Contract of tools/jetty_lint, the in-repo invariant checker:
#
#   1. Every rule family fires on its planted fixture violation with the
#      rule name and file:line (tests/lint_fixtures/<family>/ trees) —
#      including the serialization-completeness check catching a counter
#      deliberately omitted from its X-macro list, for both the one-arg
#      disk-cache lists and the two-arg shard envelope lists.
#   2. The escape hatch parses: a justified allow() suppresses (and only
#      then); a missing justification, an unknown rule, and a stale
#      annotation are all findings themselves.
#   3. The real tree is lint-clean (exit 0) — so removing any counter
#      from a run_result_json.cc X-macro list, or adding a stats member
#      without serializing it, turns THIS ctest red.
#   4. --json emits a structured api::Report with the findings.
#
# Run as:
#   cmake -DLINT=<jetty_lint> -DFIXTURES=<tests/lint_fixtures>
#         -DSOURCE=<repo root> -DWORK=<scratch dir> -P jetty_lint.cmake
foreach(var LINT FIXTURES SOURCE WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()
file(MAKE_DIRECTORY ${WORK})

# Run the tool over one fixture root; assert the exit code and that every
# expected pattern appears in stdout.
function(lint_expect root want_rc)
  execute_process(
    COMMAND ${LINT} --root ${root}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${want_rc})
    message(FATAL_ERROR
            "jetty_lint --root ${root}: expected exit ${want_rc}, got "
            "${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  foreach(pattern ${ARGN})
    if(NOT out MATCHES "${pattern}")
      message(FATAL_ERROR
              "jetty_lint --root ${root}: wanted '${pattern}' in:\n${out}")
    endif()
  endforeach()
endfunction()

# ---- 1. one planted violation per rule family, named with file:line ----
lint_expect(${FIXTURES}/determinism 1
            "src/sim/bad_entropy.cc:12: error: \\[determinism\\]"
            "src/sim/bad_entropy.cc:18: error: \\[determinism\\]")

lint_expect(${FIXTURES}/unordered 1
            "src/core/bad_container.cc:10: error: \\[unordered\\]")

lint_expect(${FIXTURES}/atomic 1
            "src/io/bad_write.cc:13: error: \\[atomic-write\\] ofstream"
            "src/io/bad_write.cc:20: error: \\[atomic-write\\] fopen")

lint_expect(${FIXTURES}/fatal 1
            "src/engine/bad_exit.cc:13: error: \\[no-fatal\\] exit"
            "src/engine/bad_exit.cc:15: error: \\[no-fatal\\] abort")

# The X-macro completeness check: the omitted counter is named in both
# directions (missing member, stale list entry).
lint_expect(${FIXTURES}/serialization 1
            "BusStats::upgrades is missing from JETTY_BUS_STAT_FIELDS"
            "src/sim/interconnect.hh:14"
            "names 'snoops', which is not a scalar member")

# The shard envelope variant: two-arg X(name, kind) entries parse, the
# omitted field is named in both directions plus by the serializer-TU
# reference check, and a string member present in the list stays silent
# (strings count as scalar). The pinned count of exactly 3 findings is
# the regression guard: if two-arg parsing broke, every in-sync field
# would be reported missing as well.
lint_expect(${FIXTURES}/shard_serialization 1
            "ShardResponse::wallSeconds is missing from JETTY_SHARD_RESPONSE_FIELDS"
            "src/dist/shard_msg.hh:16"
            "names 'latency', which is not a scalar member"
            "ShardResponse::wallSeconds is never referenced in shard.cc"
            "jetty_lint: 3 findings")

# Negative controls must NOT fire, pinned by exact finding counts:
#   determinism: steady_clock + time(with-arg) (src/sim/ok_clock.cc)
#   unordered:   hash map outside the deterministic layers (tools/ok_hash.cc)
#   atomic:      read-mode fopen (bad_write.cc:26) and the allowlisted
#                sanctioned implementation (src/util/atomic_file.cc)
#   fatal:       exit() under tools/ (tools/ok_cli.cc)
lint_expect(${FIXTURES}/determinism 1 "jetty_lint: 2 findings")
lint_expect(${FIXTURES}/unordered 1 "jetty_lint: 2 findings")
lint_expect(${FIXTURES}/atomic 1 "jetty_lint: 2 findings")
lint_expect(${FIXTURES}/fatal 1 "jetty_lint: 2 findings")

# ---- 2. escape-hatch parsing ------------------------------------------
lint_expect(${FIXTURES}/escape_ok 0 "clean")
lint_expect(${FIXTURES}/escape_bad 1
            "bad_escapes.cc:4: error: \\[escape\\] allow\\(unordered\\) needs a justification"
            "bad_escapes.cc:4: error: \\[unordered\\]"
            "bad_escapes.cc:9: error: \\[escape\\] unknown lint rule 'speed'"
            "bad_escapes.cc:12: error: \\[escape\\] stale escape")

# ---- 3. the real tree is clean ----------------------------------------
lint_expect(${SOURCE} 0 "clean")

# ---- 4. --json: a structured report of the findings -------------------
execute_process(
  COMMAND ${LINT} --root ${FIXTURES}/serialization
          --json ${WORK}/lint-report.json
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "--json run: expected exit 1, got ${rc}")
endif()
file(READ ${WORK}/lint-report.json report)
foreach(pattern "\"jetty_report\": 1" "\"kind\": \"lint\""
        "\"clean\": false" "\"rule\": \"serialization\""
        "\"file\": \"src/sim/interconnect.hh\"")
  string(FIND "${report}" "${pattern}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
            "--json report is missing '${pattern}':\n${report}")
  endif()
endforeach()

message(STATUS "jetty_lint contract OK")
