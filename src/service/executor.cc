#include "service/executor.hh"

#include <chrono>
#include <cstdio>
#include <utility>

#include "core/filter_spec.hh"
#include "trace/apps.hh"
#include "trace/file_stream_source.hh"

namespace jetty::service
{

namespace
{

/** The replay/run/sweep layers fatal() on a missing trace file deep in
 *  the reader; the service must answer an error instead, so existence
 *  is checked up front. (A file that exists but is corrupt still
 *  fatal()s in the reader — a served job shares the process's fate
 *  there, documented in DESIGN.md.) */
std::string
checkTraceFilesReadable(const std::vector<std::string> &files)
{
    for (const auto &file : files) {
        std::FILE *f = std::fopen(file.c_str(), "rb");
        if (!f)
            return "cannot open trace file '" + file + "'";
        std::fclose(f);
    }
    return "";
}

std::string
rejectSweepAxes(const api::ExperimentSpec &spec, const char *kind)
{
    if (!spec.sweepProcs.empty() || !spec.sweepBuses.empty())
        return std::string(kind) +
               ": the spec has a sweep section — use sweep";
    return "";
}

std::string
rejectForeignSections(const api::ExperimentSpec &spec, const char *kind,
                      bool allowBench)
{
    if (spec.hasFuzz)
        return std::string(kind) +
               ": the spec has a fuzz section — use fuzz";
    if (!allowBench && spec.benchRepeat > 0)
        return std::string(kind) +
               ": the spec has a bench section — use bench";
    return "";
}

/** Round-trip the fully resolved spec through its own schema, replacing
 *  it with the normalized parse — the --dump-spec/--spec contract, and
 *  where an unknown app or out-of-range field gets the schema's
 *  diagnostic. */
std::string
validateResolved(api::ExperimentSpec &spec)
{
    std::string err;
    api::ExperimentSpec parsed =
        api::ExperimentSpec::parse(spec.emit(), &err);
    if (!err.empty())
        return err;
    spec = std::move(parsed);
    return "";
}

std::string
requireVariantMachine(const api::ExperimentSpec &spec)
{
    std::string why;
    if (!spec.machine.variantCompatible(&why))
        return why;
    return "";
}

} // namespace

const std::vector<std::string> &
defaultFilterSpecs()
{
    static const std::vector<std::string> kDefault = {
        "EJ-32x4", "IJ-10x4x7", "HJ(IJ-10x4x7,EJ-32x4)"};
    return kDefault;
}

std::string
chooseKind(const api::ExperimentSpec &spec, std::string *err)
{
    if (spec.hasFuzz) {
        *err = "the spec has a fuzz section — fuzz runs locally "
               "(jetty_cli fuzz), not through the service";
        return "";
    }
    if (spec.benchRepeat > 0) {
        *err = "the spec has a bench section — bench times this machine "
               "(jetty_cli bench), not through the service";
        return "";
    }
    if (!spec.sweepProcs.empty() || !spec.sweepBuses.empty() ||
        spec.apps.size() > 1)
        return "sweep";
    if (!spec.traceFiles.empty())
        return "replay";
    return "run";
}

std::string
resolveSpec(api::ExperimentSpec &spec, const std::string &kind)
{
    std::string err;
    if (kind == "run") {
        if (spec.apps.empty())
            spec.apps = {"lu"};
        if (spec.apps.size() > 1)
            return "run simulates one application (the spec names " +
                   std::to_string(spec.apps.size()) + ") — use sweep";
        if (!spec.traceFiles.empty())
            return "run synthesizes from an application profile; use "
                   "replay or bench for trace_files specs";
        if (!(err = rejectSweepAxes(spec, "run")).empty())
            return err;
        if (!(err = rejectForeignSections(spec, "run", false)).empty())
            return err;
        if (spec.filters.empty())
            spec.filters = defaultFilterSpecs();
        if (spec.scale <= 0)
            spec.scale = 0.25;
    } else if (kind == "sweep") {
        if (spec.apps.empty() && spec.traceFiles.empty()) {
            for (const auto &app : trace::paperApps())
                spec.apps.push_back(app.abbrev);
        }
        if (!(err = checkTraceFilesReadable(spec.traceFiles)).empty())
            return err;
        if (spec.sweepProcs.empty()) {
            // Trace-file sweeps infer the processor axis from the
            // capture, exactly as replay does — a multi-section file
            // pins it.
            spec.sweepProcs = {
                spec.traceFiles.empty()
                    ? spec.machine.procs
                    : trace::inferReplayProcs(spec.traceFiles,
                                              spec.machine.procs)};
        }
        if (spec.sweepBuses.empty())
            spec.sweepBuses = {spec.machine.buses};
        if (!(err = rejectForeignSections(spec, "sweep", false)).empty())
            return err;
        if (spec.filters.empty())
            spec.filters = defaultFilterSpecs();
        if (spec.scale <= 0)
            spec.scale = 0.25;
    } else if (kind == "replay") {
        if (spec.traceFiles.empty())
            return "replay needs --in FILE[,FILE...] (or a spec with "
                   "workload.trace_files)";
        if (spec.filters.empty())
            spec.filters = defaultFilterSpecs();
        if (!(err = rejectSweepAxes(spec, "replay")).empty())
            return err;
        if (!(err = rejectForeignSections(spec, "replay", false)).empty())
            return err;
        if (!(err = checkTraceFilesReadable(spec.traceFiles)).empty())
            return err;
        spec.machine.procs =
            trace::inferReplayProcs(spec.traceFiles, spec.machine.procs);
    } else {
        return "unknown execution kind '" + kind + "'";
    }
    if (!(err = validateResolved(spec)).empty())
        return err;
    return requireVariantMachine(spec);
}

std::vector<std::string>
canonicalFilterNames(const api::ExperimentSpec &spec)
{
    std::vector<std::string> names = spec.filters;
    const auto amap = spec.machine.toVariant().smpConfig().addressMap();
    for (auto &s : names)
        s = filter::canonicalFilterName(s, amap);
    return names;
}

json::Value
buildReport(const api::ExperimentSpec &spec, const std::string &kind,
            const std::vector<std::string> &filterNames,
            const std::vector<experiments::RunRequest> &requests,
            const std::vector<experiments::AppRunResult> &runs)
{
    api::Report report(kind);
    report.echoSpec(spec);
    if (kind == "sweep") {
        json::Value arr = json::Value::array();
        for (std::size_t i = 0; i < runs.size(); ++i) {
            arr.push(api::Report::runNode(runs[i], requests[i].variant,
                                          filterNames));
        }
        report.root().set("runs", std::move(arr));
    } else if (kind == "run") {
        report.root().set("run",
                          api::Report::runNode(runs[0], requests[0].variant,
                                               filterNames));
    } else {
        report.root().set("run",
                          api::Report::runNode(runs[0], requests[0].variant,
                                               runs[0].filterNames));
        report.root().set("trace_digests",
                          api::Report::traceDigestsNode(spec.traceFiles));
    }
    return report.root();
}

std::string
executeResolved(const api::ExperimentSpec &spec, const std::string &kind,
                unsigned jobs, ExecuteResult &out)
{
    using Clock = std::chrono::steady_clock;

    out = ExecuteResult();
    out.kind = kind;
    out.spec = spec;

    const experiments::SystemVariant variant = spec.machine.toVariant();
    out.filterNames = canonicalFilterNames(spec);

    if (kind == "run") {
        experiments::RunRequest req;
        req.app = trace::appByName(spec.apps[0]);
        req.variant = variant;
        req.filterSpecs = out.filterNames;
        req.accessScale = spec.scale;
        out.requests.push_back(std::move(req));
    } else if (kind == "sweep") {
        out.requests = spec.expand();
        for (auto &req : out.requests)
            req.filterSpecs = out.filterNames;
    } else if (kind == "replay") {
        experiments::RunRequest req;
        req.variant = variant;
        req.traceFiles = spec.traceFiles;
        req.filterSpecs = spec.filters;
        req.app.name = "replay:" + spec.traceFiles.front();
        req.app.abbrev = "rp";
        out.requests.push_back(std::move(req));
    } else {
        return "unknown execution kind '" + kind + "'";
    }

    auto &cache = experiments::RunCache::instance();
    const std::uint64_t sims0 = cache.simulations();
    const std::uint64_t hits0 = cache.hits();
    const std::uint64_t disk0 = cache.diskHits();

    const auto t0 = Clock::now();
    out.runs = experiments::runMany(out.requests, jobs);
    out.sweepSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    out.simulated = cache.simulations() - sims0;
    out.diskHits = cache.diskHits() - disk0;
    out.memHits = cache.hits() - hits0 - out.diskHits;

    out.report = buildReport(spec, kind, out.filterNames, out.requests,
                             out.runs);
    return "";
}

std::string
executeSpec(api::ExperimentSpec spec, unsigned jobs, ExecuteResult &out)
{
    std::string err;
    const std::string kind = chooseKind(spec, &err);
    if (kind.empty())
        return err;
    if (!(err = resolveSpec(spec, kind)).empty())
        return err;
    return executeResolved(spec, kind, jobs, out);
}

} // namespace jetty::service
