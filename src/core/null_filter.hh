/**
 * @file
 * The no-op filter: never filters anything. Used as the baseline
 * configuration and as a placeholder in systems without a JETTY.
 */

#ifndef JETTY_CORE_NULL_FILTER_HH
#define JETTY_CORE_NULL_FILTER_HH

#include "core/snoop_filter.hh"

namespace jetty::filter
{

/** A filter that always answers "may be cached". */
class NullFilter : public SnoopFilter
{
  public:
    bool probe(Addr) override { return false; }
    void onSnoopMiss(Addr, bool) override {}
    void onFill(Addr) override {}
    void onEvict(Addr) override {}
    void clear() override {}

    StorageBreakdown storage() const override { return StorageBreakdown{}; }

    energy::FilterEnergyCosts
    energyCosts(const energy::Technology &) const override
    {
        return energy::FilterEnergyCosts{};
    }

    std::string name() const override { return "NULL"; }
};

} // namespace jetty::filter

#endif // JETTY_CORE_NULL_FILTER_HH
