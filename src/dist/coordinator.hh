/**
 * @file
 * The coordinator half of the distributed sweep subsystem: expand a
 * resolved sweep spec into one-cell shards, dispatch them to workers
 * over the shard envelope (dist/shard.hh), and merge the responses into
 * a Report byte-identical to what a single-process `sweep` of the same
 * spec would have written (service::buildReport is the shared
 * constructor, and every result cell is keyed by the canonical
 * runCacheKey text, so identity holds by construction).
 *
 * Robustness model (single-threaded poll loop; workers are processes
 * or threads behind fd pairs):
 *
 *  - **Work stealing**: when the queue is empty and a worker sits
 *    idle, the oldest in-flight shard past `stealAfterSeconds` is
 *    assigned a second time. The first response wins; the straggler's
 *    late duplicate is discarded and logged ("duplicate" event).
 *  - **Bounded retry**: a worker death (EOF / transport error, any
 *    time including mid-shard) or an ok=false response re-queues the
 *    shard, up to `maxRetries` failures per shard; the factory (when
 *    provided) respawns up to `maxRespawns` replacement workers.
 *  - **Resume ledger**: with `ledgerDir` set, every completed shard is
 *    journaled atomically (dist/ledger.hh); a later campaign over the
 *    same spec loads finished cells from the ledger without
 *    dispatching them ("resumed" events). Disk-tier RunCache entries
 *    complement this: a re-dispatched cell that is already in the
 *    shared cache answers as a disk hit, not a re-simulation.
 *  - **Observability**: every state change emits a structured
 *    ShardEvent (assigned / started / completed / stolen / retried /
 *    resumed / duplicate / worker_died) with wall time and
 *    simulated-vs-cache-hit counters, streamed to `eventSink` and
 *    collected on the CampaignResult.
 */

#ifndef JETTY_DIST_COORDINATOR_HH
#define JETTY_DIST_COORDINATOR_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/experiment_spec.hh"
#include "dist/ledger.hh"
#include "dist/shard.hh"
#include "service/protocol.hh"
#include "util/json.hh"

namespace jetty::dist
{

/** One structured progress event of a campaign. */
struct ShardEvent
{
    std::string type;  //!< assigned/started/completed/stolen/retried/
                       //!< resumed/duplicate/worker_died
    std::uint64_t shardId = 0;
    std::uint64_t attempt = 0;
    int worker = -1;   //!< worker index (-1 when not worker-bound)
    double wallSeconds = 0;
    std::uint64_t simulated = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t memHits = 0;
    std::string detail;

    json::Value toJson() const;
};

/** A worker the coordinator talks to: two fds (which may be the same
 *  fd, e.g. a socket) and, for locally spawned processes, the pid to
 *  reap. */
struct WorkerEndpoint
{
    int readFd = -1;   //!< responses arrive here
    int writeFd = -1;  //!< requests leave here
    long pid = -1;     //!< reaped on death/teardown when >= 0
};

struct CoordinatorConfig
{
    /** Failed attempts tolerated per shard beyond the first. */
    unsigned maxRetries = 2;

    /** Replacement workers the factory may be asked for after deaths. */
    unsigned maxRespawns = 2;

    /** Steal an in-flight shard for an idle worker after this long
     *  (<= 0 disables stealing). */
    double stealAfterSeconds = 30.0;

    /** Resume ledger directory ("" = no ledger). */
    std::string ledgerDir;

    /** Workers to obtain from the factory before dispatching. */
    unsigned spawnWorkers = 0;

    /** Spawns one worker (initial or replacement). @return false with
     *  the error described to refuse. */
    std::function<bool(WorkerEndpoint &, std::string *)> factory;

    /** Streamed progress events (also collected on the result). */
    std::function<void(const ShardEvent &)> eventSink;
};

/** Everything one distributed campaign produced. The report field is
 *  the byte-identity artifact; the counters aggregate the per-shard
 *  responses plus coordinator-side bookkeeping. */
struct CampaignResult
{
    api::ExperimentSpec spec;
    std::vector<std::string> filterNames;
    std::vector<experiments::RunRequest> requests;
    std::vector<experiments::AppRunResult> runs;
    json::Value report;
    std::vector<ShardEvent> events;

    std::uint64_t shards = 0;
    std::uint64_t simulated = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t memHits = 0;
    std::uint64_t resumed = 0;
    std::uint64_t stolen = 0;
    std::uint64_t retried = 0;
    std::uint64_t duplicates = 0;
    double wallSeconds = 0;
};

/**
 * The cell-key-indexed table the merger fills. First-writer-wins: a
 * duplicate cell (a stolen-then-completed shard's second answer) is
 * counted, not an error; an unknown cell key is a dotted-path error.
 * Exposed separately from the Coordinator so the merge edge cases are
 * unit-testable without a transport.
 */
class MergeTable
{
  public:
    explicit MergeTable(std::vector<std::string> cellKeys);

    /** Apply one ok response. An empty results array is a no-op.
     *  @return "" on success, else the dotted-path diagnostic. */
    std::string apply(const ShardResponse &resp, std::uint64_t *duplicates);

    bool complete() const;
    std::vector<std::string> missingKeys() const;

    /** The merged runs in expansion order; panics unless complete(). */
    std::vector<experiments::AppRunResult> takeRuns();

  private:
    std::vector<std::string> keys_;
    std::vector<bool> filled_;
    std::vector<experiments::AppRunResult> cells_;
    std::map<std::string, std::size_t> index_;
};

class Coordinator
{
  public:
    explicit Coordinator(CoordinatorConfig cfg);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** Attach an externally managed worker (test threads, remote
     *  streams). Must precede run(). */
    void attachWorker(const WorkerEndpoint &ep);

    /**
     * Run one campaign over @p spec (already resolved for "sweep").
     * Closes and reaps every worker before returning, so callers may
     * join worker threads immediately after. Single-use.
     * @return "" with @p out filled on success, else the diagnostic.
     */
    std::string run(const api::ExperimentSpec &spec, CampaignResult &out);

  private:
    struct Worker
    {
        WorkerEndpoint ep;
        std::unique_ptr<service::LineReader> reader;
        bool alive = true;
        bool busy = false;
        std::size_t shard = 0;  //!< valid while busy
        std::uint64_t attempt = 0;
        std::chrono::steady_clock::time_point assignedAt;
    };

    struct ShardState
    {
        std::uint64_t attempts = 0;  //!< assignments issued
        unsigned failures = 0;
        unsigned outstanding = 0;  //!< live assignments (2 when stolen)
        bool done = false;
    };

    void emit(ShardEvent ev);
    void assign(std::size_t w, std::size_t s, bool stolen);
    void workerDied(std::size_t w, const std::string &why);
    void shardFailed(std::size_t s, int worker, const std::string &why);
    void handleLine(std::size_t w);
    void closeWorker(std::size_t w);
    bool trySpawn(std::string *err);

    CoordinatorConfig cfg_;
    std::vector<Worker> workers_;
    std::vector<ShardState> shards_;
    std::vector<std::string> keys_;
    std::vector<json::Value> shardSpecs_;
    std::deque<std::size_t> pending_;
    std::unique_ptr<MergeTable> table_;
    Ledger ledger_;
    CampaignResult *out_ = nullptr;
    unsigned respawnsUsed_ = 0;
    std::string fail_;  //!< first unrecoverable campaign error
};

} // namespace jetty::dist

#endif // JETTY_DIST_COORDINATOR_HH
