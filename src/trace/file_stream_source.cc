#include "trace/file_stream_source.hh"

#include <algorithm>

#include "util/logging.hh"

namespace jetty::trace
{

FileStreamSource::FileStreamSource(const std::string &path,
                                   std::size_t stream,
                                   std::size_t chunkRecords)
    : path_(path), stream_(stream),
      chunkRecords_(chunkRecords >= 1 ? chunkRecords : 1)
{
    const TraceFileInfo info = readTraceFileInfo(path);
    if (stream >= info.streams()) {
        fatal("FileStreamSource: '" + path + "' has " +
              std::to_string(info.streams()) + " stream(s), requested " +
              std::to_string(stream));
    }
    sectionOffset_ = info.offsets[stream];
    count_ = info.counts[stream];

    f_ = std::fopen(path.c_str(), "rb");
    if (!f_)
        fatal("FileStreamSource: cannot open '" + path + "'");
    buf_.resize(chunkRecords_ * kTraceRecordBytes);
    seekTo(0);
}

FileStreamSource::~FileStreamSource()
{
    if (f_)
        std::fclose(f_);
}

std::uint64_t
FileStreamSource::position() const
{
    return fileRecord_ - (bufLen_ - bufPos_) / kTraceRecordBytes;
}

void
FileStreamSource::seekTo(std::uint64_t record)
{
    if (record > count_) {
        fatal("FileStreamSource: seek past the end of '" + path_ + "' (" +
              std::to_string(record) + " of " + std::to_string(count_) +
              " records)");
    }
    if (::fseeko(f_,
                    static_cast<off_t>(
                        recordByteOffset(sectionOffset_, record)),
                    SEEK_SET) != 0) {
        fatal("FileStreamSource: cannot seek in '" + path_ + "'");
    }
    fileRecord_ = record;
    bufPos_ = bufLen_ = 0;
}

bool
FileStreamSource::refill()
{
    const std::size_t n = chunkRecordsAt(count_, fileRecord_, chunkRecords_);
    if (n == 0)
        return false;
    if (std::fread(buf_.data(), kTraceRecordBytes, n, f_) != n)
        fatal("FileStreamSource: truncated record in '" + path_ + "'");
    fileRecord_ += n;
    bufPos_ = 0;
    bufLen_ = n * kTraceRecordBytes;
    return true;
}

bool
FileStreamSource::next(TraceRecord &out)
{
    if (bufPos_ == bufLen_ && !refill())
        return false;
    out = decodeTraceRecord(buf_.data() + bufPos_);
    bufPos_ += kTraceRecordBytes;
    return true;
}

std::size_t
FileStreamSource::nextBatch(TraceRecord *out, std::size_t max)
{
    std::size_t done = 0;
    while (done < max) {
        if (bufPos_ == bufLen_ && !refill())
            break;
        const std::size_t avail = (bufLen_ - bufPos_) / kTraceRecordBytes;
        const std::size_t n = std::min(avail, max - done);
        const unsigned char *p = buf_.data() + bufPos_;
        for (std::size_t i = 0; i < n; ++i)
            out[done + i] = decodeTraceRecord(p + i * kTraceRecordBytes);
        bufPos_ += n * kTraceRecordBytes;
        done += n;
    }
    return done;
}

TraceSourcePtr
FileStreamSource::clone() const
{
    return std::make_unique<FileStreamSource>(path_, stream_, chunkRecords_);
}

std::vector<TraceSourcePtr>
makeFileSources(const std::vector<std::string> &files, unsigned nprocs)
{
    if (files.empty())
        fatal("makeFileSources: no trace files given");
    if (nprocs == 0)
        fatal("makeFileSources: need at least one processor");

    std::vector<TraceSourcePtr> sources;
    sources.reserve(nprocs);

    if (files.size() == 1) {
        const TraceFileInfo info = readTraceFileInfo(files[0]);
        if (info.streams() == nprocs) {
            for (unsigned p = 0; p < nprocs; ++p)
                sources.push_back(
                    std::make_unique<FileStreamSource>(files[0], p));
        } else if (info.streams() == 1) {
            // Homogeneous load: clone one captured stream everywhere.
            for (unsigned p = 0; p < nprocs; ++p)
                sources.push_back(
                    std::make_unique<FileStreamSource>(files[0], 0));
        } else {
            fatal("makeFileSources: '" + files[0] + "' holds " +
                  std::to_string(info.streams()) + " streams but " +
                  std::to_string(nprocs) + " processors were requested");
        }
        return sources;
    }

    if (files.size() != nprocs) {
        fatal("makeFileSources: got " + std::to_string(files.size()) +
              " trace files for " + std::to_string(nprocs) +
              " processors (need one file per processor, or one file)");
    }
    for (const auto &file : files) {
        const TraceFileInfo info = readTraceFileInfo(file);
        if (info.streams() != 1) {
            fatal("makeFileSources: '" + file + "' holds " +
                  std::to_string(info.streams()) +
                  " streams; per-processor file lists need single-stream "
                  "files");
        }
        sources.push_back(std::make_unique<FileStreamSource>(file, 0));
    }
    return sources;
}

unsigned
inferReplayProcs(const std::vector<std::string> &files, unsigned fallback)
{
    if (files.empty())
        fatal("inferReplayProcs: no trace files given");
    if (files.size() > 1)
        return static_cast<unsigned>(files.size());
    const TraceFileInfo info = readTraceFileInfo(files[0]);
    if (info.streams() > 1)
        return static_cast<unsigned>(info.streams());
    return fallback;
}

} // namespace jetty::trace
