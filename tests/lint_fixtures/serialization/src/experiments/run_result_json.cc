// Fixture: the serializer side — an X-macro field list that silently
// dropped a counter (and carries one stale entry for the reverse check).
#define JETTY_BUS_STAT_FIELDS(X)                                             \
    X(transactions)                                                          \
    X(reads)                                                                 \
    X(readXs)                                                                \
    X(snoops)

namespace jetty::experiments
{

// The real serializer expands the list twice (writer + reader); one
// expansion is enough for the completeness check to bind.
struct BusRow
{
#define X(f) unsigned long long f;
    JETTY_BUS_STAT_FIELDS(X)
#undef X
};

} // namespace jetty::experiments
