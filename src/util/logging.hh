/**
 * @file
 * Minimal gem5-flavoured status reporting: fatal() for user errors,
 * panic() for internal invariant violations, warn()/inform() for notices.
 */

#ifndef JETTY_UTIL_LOGGING_HH
#define JETTY_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace jetty
{

/**
 * Report a user-facing error (bad configuration, invalid arguments) and
 * exit with status 1. Mirrors gem5's fatal().
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/**
 * Report an internal invariant violation (a bug in the simulator itself)
 * and abort. Mirrors gem5's panic().
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Non-fatal warning to stderr. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informational message to stderr. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace jetty

#endif // JETTY_UTIL_LOGGING_HH
