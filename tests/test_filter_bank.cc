/**
 * @file
 * Unit tests for the FilterBank: parallel passive evaluation, statistics
 * bookkeeping, event fan-out, and safety enforcement.
 */

#include <gtest/gtest.h>

#include "core/filter_bank.hh"
#include "core/filter_spec.hh"

using namespace jetty;
using namespace jetty::filter;

namespace
{

AddressMap
amap()
{
    AddressMap m;
    m.l2CapacityUnits = 1024;
    return m;
}

} // namespace

TEST(FilterBank, BuildsAllSpecs)
{
    FilterBank bank({"NULL", "EJ-8x2", "IJ-6x5x6"}, amap());
    EXPECT_EQ(bank.size(), 3u);
    EXPECT_EQ(bank.indexOf("EJ-8x2"), 1);
    EXPECT_EQ(bank.indexOf("missing"), -1);
}

TEST(FilterBank, CountsProbesAndMisses)
{
    FilterBank bank({"NULL"}, amap());
    bank.observeSnoop(0x100, /*unitInL2=*/false, /*blockInL2=*/false);
    bank.observeSnoop(0x200, true, true);
    const auto &st = bank.statsAt(0);
    EXPECT_EQ(st.probes, 2u);
    EXPECT_EQ(st.wouldMiss, 1u);
    EXPECT_EQ(st.filtered, 0u);
    EXPECT_EQ(st.snoopAllocs, 1u);  // the miss was delivered
}

TEST(FilterBank, EjLearnsThroughBank)
{
    FilterBank bank({"EJ-8x2"}, amap());
    bank.observeSnoop(0x100, false, false);  // miss -> allocate
    bank.observeSnoop(0x100, false, false);  // now filtered
    const auto &st = bank.statsAt(0);
    EXPECT_EQ(st.filtered, 1u);
    EXPECT_EQ(st.filteredWouldMiss, 1u);
    EXPECT_DOUBLE_EQ(st.coverage(), 0.5);
}

TEST(FilterBank, FillEventsFanOut)
{
    FilterBank bank({"EJ-8x2", "IJ-6x5x6"}, amap());
    bank.unitFilled(0x300);
    bank.unitEvicted(0x300);
    for (std::size_t i = 0; i < bank.size(); ++i) {
        EXPECT_EQ(bank.statsAt(i).fillUpdates, 1u);
        EXPECT_EQ(bank.statsAt(i).evictUpdates, 1u);
    }
}

TEST(FilterBank, StatsMerge)
{
    FilterStats a, b;
    a.probes = 10;
    a.filtered = 2;
    a.wouldMiss = 8;
    a.filteredWouldMiss = 2;
    b.probes = 30;
    b.filtered = 10;
    b.wouldMiss = 22;
    b.filteredWouldMiss = 10;
    a.merge(b);
    EXPECT_EQ(a.probes, 40u);
    EXPECT_DOUBLE_EQ(a.coverage(), 12.0 / 30.0);
}

TEST(FilterBank, TrafficConversion)
{
    FilterStats s;
    s.probes = 5;
    s.filtered = 3;
    s.snoopAllocs = 2;
    s.fillUpdates = 7;
    s.evictUpdates = 6;
    const auto t = s.traffic();
    EXPECT_EQ(t.probes, 5u);
    EXPECT_EQ(t.filtered, 3u);
    EXPECT_EQ(t.snoopAllocs, 2u);
    EXPECT_EQ(t.fillUpdates, 7u);
    EXPECT_EQ(t.evictUpdates, 6u);
}

TEST(FilterBankDeathTest, SafetyViolationPanics)
{
    // An IJ that never saw the fill believes nothing is cached; claiming
    // the unit is present must trip the safety check.
    FilterBank bank({"IJ-6x5x6"}, amap(), /*checkSafety=*/true);
    EXPECT_DEATH(bank.observeSnoop(0x100, /*unitInL2=*/true, true),
                 "safety violation");
}

TEST(FilterBank, SafetyViolationCountedWhenNotEnforced)
{
    FilterBank bank({"IJ-6x5x6"}, amap(), /*checkSafety=*/false);
    bank.observeSnoop(0x100, true, true);
    EXPECT_EQ(bank.statsAt(0).safetyViolations, 1u);
}

TEST(FilterBank, CoverageZeroWhenNoMisses)
{
    FilterBank bank({"EJ-8x2"}, amap());
    EXPECT_DOUBLE_EQ(bank.statsAt(0).coverage(), 0.0);
}
