#include "mem/l2_cache.hh"

#include <algorithm>
#include <cassert>

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace jetty::mem
{

using coherence::BusOp;
using coherence::SnoopOutcome;
using coherence::State;

L2Cache::L2Cache(const L2Config &cfg) : cfg_(cfg)
{
    if (!isPowerOfTwo(cfg.sizeBytes) || !isPowerOfTwo(cfg.blockBytes) ||
        !isPowerOfTwo(cfg.assoc) || !isPowerOfTwo(cfg.subblocks)) {
        fatal("L2Cache: all geometry parameters must be powers of two");
    }
    if (cfg.subblocks == 0 || cfg.blockBytes % cfg.subblocks != 0)
        fatal("L2Cache: subblocks must evenly divide the block");

    const std::uint64_t sets = cfg.sets();
    if (sets == 0)
        fatal("L2Cache: size too small for block/assoc");

    blockMask_ = cfg.blockBytes - 1;
    unitMask_ = cfg.unitBytes() - 1;
    offsetBits_ = floorLog2(cfg.blockBytes);
    indexBits_ = floorLog2(sets);
    unitShift_ = floorLog2(cfg.unitBytes());
    subblockBits_ = cfg.subblocks == 1 ? 0 : floorLog2(cfg.subblocks);

    tagValid_.assign(static_cast<std::size_t>(sets) * cfg.assoc, 0);
    lastUse_.assign(tagValid_.size(), 0);
    units_.assign(tagValid_.size() * cfg.subblocks, State::Invalid);
}

void
L2Cache::addListener(CacheEventListener *listener)
{
    listeners_.push_back(listener);
}

std::uint64_t
L2Cache::setIndex(Addr a) const
{
    return bitField(a, offsetBits_, indexBits_);
}

Addr
L2Cache::tagOf(Addr a) const
{
    return a >> (offsetBits_ + indexBits_);
}

unsigned
L2Cache::unitIndex(Addr a) const
{
    return static_cast<unsigned>(bitField(a, unitShift_, subblockBits_));
}

Addr
L2Cache::unitAddrOf(Addr tag, std::uint64_t set, unsigned unit) const
{
    const Addr block_addr =
        (tag << (offsetBits_ + indexBits_)) | (set << offsetBits_);
    return block_addr + static_cast<Addr>(unit) * cfg_.unitBytes();
}

int
L2Cache::findWay(Addr a) const
{
    const std::size_t base = frameOf(setIndex(a), 0);
    const std::uint64_t want = (tagOf(a) << 1) | 1;
    return simd::findEqU64(&tagValid_[base], cfg_.assoc, want);
}

L2LookupResult
L2Cache::probe(Addr addr) const
{
    L2LookupResult res;
    const int w = findWay(addr);
    if (w < 0)
        return res;
    res.tagMatch = true;
    const State s =
        unitsOf(frameOf(setIndex(addr), w))[unitIndex(addr)];
    res.unitValid = coherence::isValid(s);
    res.state = s;
    return res;
}

int
L2Cache::probeWay(Addr addr, L2LookupResult &res) const
{
    res = L2LookupResult{};
    const int w = findWay(addr);
    if (w < 0)
        return -1;
    res.tagMatch = true;
    const State s =
        unitsOf(frameOf(setIndex(addr), w))[unitIndex(addr)];
    res.unitValid = coherence::isValid(s);
    res.state = s;
    return w;
}

SnoopOutcome
L2Cache::snoopAtWay(int way, Addr addr, BusOp op)
{
    if (way < 0)
        return SnoopOutcome{};
    assert(way == findWay(addr));

    State &s = unitsOf(frameOf(setIndex(addr), way))[unitIndex(addr)];
    const State cur = s;
    const SnoopOutcome out = coherence::snoopTransition(cur, op);

    if (out.next != cur) {
        s = out.next;
        if (coherence::isValid(cur) && !coherence::isValid(out.next)) {
            --validUnits_;
            notifyEvict(unitAlign(addr));
        }
    }
    return out;
}

bool
L2Cache::hasBlock(Addr addr) const
{
    return findWay(addr) >= 0;
}

void
L2Cache::touch(Addr addr)
{
    const int w = findWay(addr);
    if (w >= 0)
        touchAt(w, addr);
}

void
L2Cache::setState(Addr addr, State next)
{
    const int w = findWay(addr);
    if (w < 0)
        panic("L2Cache::setState on absent block");
    setStateAt(w, addr, next);
}

void
L2Cache::setStateAt(int way, Addr addr, State next)
{
    assert(way == findWay(addr));
    State &s = unitsOf(frameOf(setIndex(addr), way))[unitIndex(addr)];
    if (!coherence::isValid(s))
        panic("L2Cache::setState on invalid unit");
    if (!coherence::isValid(next))
        panic("L2Cache::setState cannot invalidate; use snoop/invalidate");
    s = next;
}

bool
L2Cache::fill(Addr addr, State state, std::vector<L2Victim> &victims)
{
    assert(coherence::isValid(state));
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const unsigned unit = unitIndex(addr);

    int w = findWay(addr);
    bool evicted = false;

    if (w < 0) {
        // Choose a victim way: an invalid one if possible, else LRU.
        const std::size_t base = frameOf(set, 0);
        int victim = -1;
        for (unsigned i = 0; i < cfg_.assoc; ++i) {
            if (!(tagValid_[base + i] & 1)) {
                victim = static_cast<int>(i);
                break;
            }
        }
        if (victim < 0) {
            std::uint64_t oldest = ~std::uint64_t{0};
            for (unsigned i = 0; i < cfg_.assoc; ++i) {
                if (lastUse_[base + i] < oldest) {
                    oldest = lastUse_[base + i];
                    victim = static_cast<int>(i);
                }
            }
        }

        std::uint64_t &tv = tagValid_[base + victim];
        State *const b_units = unitsOf(base + victim);
        if (tv & 1) {
            evicted = true;
            const Addr old_tag = tv >> 1;
            for (unsigned u = 0; u < cfg_.subblocks; ++u) {
                if (coherence::isValid(b_units[u])) {
                    const Addr ua = unitAddrOf(old_tag, set, u);
                    victims.push_back({ua, b_units[u]});
                    b_units[u] = State::Invalid;
                    --validUnits_;
                    notifyEvict(ua);
                }
            }
        }
        tv = (tag << 1) | 1;
        for (unsigned u = 0; u < cfg_.subblocks; ++u)
            b_units[u] = State::Invalid;
        w = victim;
    }

    const std::size_t frame = frameOf(set, w);
    lastUse_[frame] = ++useClock_;
    State &s = unitsOf(frame)[unit];
    if (coherence::isValid(s))
        panic("L2Cache::fill into an already-valid unit");
    s = state;
    ++validUnits_;
    notifyFill(unitAlign(addr));
    return evicted;
}

SnoopOutcome
L2Cache::snoop(Addr addr, BusOp op)
{
    return snoopAtWay(findWay(addr), addr, op);
}

void
L2Cache::invalidateUnit(Addr addr)
{
    const int w = findWay(addr);
    if (w < 0)
        return;
    State &s = unitsOf(frameOf(setIndex(addr), w))[unitIndex(addr)];
    if (coherence::isValid(s)) {
        s = State::Invalid;
        --validUnits_;
        notifyEvict(unitAlign(addr));
    }
}

std::vector<L2UnitInfo>
L2Cache::validUnitInfo() const
{
    std::vector<L2UnitInfo> units;
    units.reserve(validUnits_);
    const std::uint64_t sets = cfg_.sets();
    for (std::uint64_t set = 0; set < sets; ++set) {
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            const std::size_t frame = frameOf(set, w);
            const std::uint64_t tv = tagValid_[frame];
            if (!(tv & 1))
                continue;
            const State *const b_units = unitsOf(frame);
            for (unsigned u = 0; u < cfg_.subblocks; ++u) {
                if (coherence::isValid(b_units[u])) {
                    units.push_back(
                        {unitAddrOf(tv >> 1, set, u), b_units[u]});
                }
            }
        }
    }
    std::sort(units.begin(), units.end(),
              [](const L2UnitInfo &a, const L2UnitInfo &b) {
                  return a.unitAddr < b.unitAddr;
              });
    return units;
}

std::vector<Addr>
L2Cache::residentBlockAddrs() const
{
    std::vector<Addr> blocks;
    const std::uint64_t sets = cfg_.sets();
    for (std::uint64_t set = 0; set < sets; ++set) {
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            const std::uint64_t tv = tagValid_[frameOf(set, w)];
            if (tv & 1)
                blocks.push_back(unitAddrOf(tv >> 1, set, 0));
        }
    }
    std::sort(blocks.begin(), blocks.end());
    return blocks;
}

void
L2Cache::notifyFill(Addr unitAddr)
{
    for (auto *l : listeners_)
        l->unitFilled(unitAddr);
}

void
L2Cache::notifyEvict(Addr unitAddr)
{
    for (auto *l : listeners_)
        l->unitEvicted(unitAddr);
}

} // namespace jetty::mem
