#include "energy/sram_array.hh"

#include <algorithm>
#include <cassert>

#include "util/bits.hh"

namespace jetty::energy
{

SramArray::SramArray(std::uint64_t rows, std::uint64_t cols, unsigned banks,
                     const Technology &tech)
    : rows_(rows), cols_(cols), banks_(std::max(1u, banks)), tech_(tech)
{
    assert(rows_ > 0 && cols_ > 0);
    rowsPerBank_ = (rows_ + banks_ - 1) / banks_;
}

double
SramArray::bitlineCap() const
{
    const double per_cell =
        tech_.cDrainPerCell + tech_.cellHeightMicron * tech_.cWirePerMicron;
    return static_cast<double>(rowsPerBank_) * per_cell;
}

double
SramArray::readEnergy(unsigned bitsOut) const
{
    const double vdd = tech_.vdd;

    // Both bitlines of every column pair are precharged; one side swings
    // by the (sense-limited) read swing.
    const double e_bitline = static_cast<double>(cols_) * 2.0 *
                             bitlineCap() * vdd * tech_.bitlineSwingRead;

    // One wordline toggles, loaded by every cell in the row.
    const double e_wordline =
        static_cast<double>(cols_) * tech_.cGatePerCell * vdd * vdd;

    // Row decoder for the active bank plus bank-select decoding.
    const unsigned addr_bits =
        jetty::ceilLog2(std::max<std::uint64_t>(2, rowsPerBank_)) +
        jetty::ceilLog2(std::max<unsigned>(2, banks_));
    const double e_decoder = addr_bits * tech_.eDecoderPerBit;

    // One sense amp per column fires.
    const double e_sense = static_cast<double>(cols_) * tech_.eSenseAmp;

    // Transport the selected bits to the consumer.
    const double e_output =
        static_cast<double>(bitsOut) * tech_.cOutputDriver * vdd * vdd;

    // Every bank pays precharge-control clocking.
    const double e_ctrl = static_cast<double>(banks_) * tech_.eBankControl;

    return e_bitline + e_wordline + e_decoder + e_sense + e_output + e_ctrl;
}

double
SramArray::writeEnergy(unsigned bitsWritten) const
{
    const double vdd = tech_.vdd;

    // Written columns are driven full swing; the rest of the row's columns
    // are still precharged (half-select) with read-like swing.
    const double written = std::min<double>(bitsWritten, cols_);
    const double e_drive = written * 2.0 * bitlineCap() * vdd * vdd;
    const double e_half = (static_cast<double>(cols_) - written) * 2.0 *
                          bitlineCap() * vdd * tech_.bitlineSwingRead;

    const double e_wordline =
        static_cast<double>(cols_) * tech_.cGatePerCell * vdd * vdd;

    const unsigned addr_bits =
        jetty::ceilLog2(std::max<std::uint64_t>(2, rowsPerBank_)) +
        jetty::ceilLog2(std::max<unsigned>(2, banks_));
    const double e_decoder = addr_bits * tech_.eDecoderPerBit;

    // Input drivers bring the written bits to the bank.
    const double e_input = written * tech_.cOutputDriver * vdd * vdd;

    const double e_ctrl = static_cast<double>(banks_) * tech_.eBankControl;

    return e_drive + e_half + e_wordline + e_decoder + e_input + e_ctrl;
}

unsigned
SramArray::optimalBanks(std::uint64_t rows, std::uint64_t cols,
                        const Technology &tech, unsigned maxBanks,
                        unsigned bitsOut)
{
    // Banks shorter than ~16 rows are not worth their decoder and sense
    // overheads in practice; the energy model's per-bank control term is
    // too coarse to capture that, so enforce it structurally.
    constexpr std::uint64_t min_rows_per_bank = 16;

    unsigned best = 1;
    double best_e = SramArray(rows, cols, 1, tech).readEnergy(bitsOut);
    for (unsigned b = 2; b <= maxBanks; b *= 2) {
        if (b >= rows || rows / b < min_rows_per_bank)
            break;
        const double e = SramArray(rows, cols, b, tech).readEnergy(bitsOut);
        if (e < best_e) {
            best_e = e;
            best = b;
        }
    }
    return best;
}

} // namespace jetty::energy
