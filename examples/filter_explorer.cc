/**
 * @file
 * Design-space explorer: run one application (default Ocean; pass a
 * two-letter app tag or full name as argv[1]) against any set of JETTY
 * configurations (remaining argv), printing coverage, storage and energy
 * for each -- the workflow an architect would use to size a filter for a
 * given workload.
 *
 * Usage: filter_explorer [app] [spec...]
 * e.g.:  filter_explorer un "EJ-64x4" "HJ(IJ-9x4x7,VEJ-32x4-8)"
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/filter_spec.hh"
#include "experiments/experiments.hh"
#include "trace/apps.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace jetty;

int
main(int argc, char **argv)
{
    std::string app = "oc";
    std::vector<std::string> specs;
    if (argc > 1)
        app = argv[1];
    for (int i = 2; i < argc; ++i)
        specs.push_back(argv[i]);
    if (specs.empty()) {
        specs = {"EJ-32x4",   "VEJ-32x4-8",          "IJ-10x4x7",
                 "IJ-8x4x7",  "HJ(IJ-10x4x7,EJ-32x4)",
                 "HJ(IJ-8x4x7,EJ-16x2)"};
    }
    for (const auto &s : specs) {
        if (!filter::isValidFilterSpec(s))
            fatal("bad filter spec: " + s);
    }

    experiments::SystemVariant variant;
    const auto run = experiments::runApp(trace::appByName(app), variant,
                                         specs, 0.5);
    const auto amap = variant.smpConfig().addressMap();

    TextTable table;
    table.header({"config", "bytes", "coverage", "snoop-E saved (serial)",
                  "all-L2-E saved (serial)"});
    for (const auto &spec : specs) {
        const auto f = filter::makeFilter(spec, amap);
        const auto res = experiments::evaluateEnergy(
            run, variant, spec, energy::AccessMode::Serial);
        table.row({
            spec,
            TextTable::num(f->storage().totalBytes(), 0),
            TextTable::pct(100.0 * run.statsFor(spec).coverage()),
            TextTable::pct(res.reductionOverSnoopsPct),
            TextTable::pct(res.reductionOverAllPct),
        });
    }

    std::printf("Filter design space on '%s' (%s)\n\n", app.c_str(),
                run.appName.c_str());
    table.print();
    return 0;
}
