/**
 * @file
 * Tests for the experiment service: the shared spec executor
 * (chooseKind/resolveSpec/executeResolved) and a real unix-socket
 * round trip through ExperimentServer — the served report must be
 * byte-identical to what the direct executor produces for the same
 * spec, and no malformed request may take the daemon down.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "api/experiment_spec.hh"
#include "experiments/experiments.hh"
#include "service/client.hh"
#include "service/executor.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "util/json.hh"

using namespace jetty;

namespace
{

/** A tiny single-app run spec (cheap enough for a unit test). */
api::ExperimentSpec
tinyRunSpec()
{
    std::string err;
    api::ExperimentSpec spec = api::ExperimentSpec::parse(
        R"({"jetty_spec": 1,
            "machine": {"procs": 4, "buses": 1, "subblocked": true},
            "workload": {"apps": ["lu"], "scale": 0.01},
            "filters": ["EJ-16x2"]})",
        &err);
    if (!err.empty())
        ADD_FAILURE() << err;
    return spec;
}

} // namespace

TEST(SpecExecutor, ChoosesKindFromSpecShape)
{
    std::string err;
    api::ExperimentSpec spec = tinyRunSpec();
    EXPECT_EQ(service::chooseKind(spec, &err), "run");

    spec.apps = {"lu", "ff"};
    EXPECT_EQ(service::chooseKind(spec, &err), "sweep");

    spec = tinyRunSpec();
    spec.sweepProcs = {4, 8};
    EXPECT_EQ(service::chooseKind(spec, &err), "sweep");

    spec = tinyRunSpec();
    spec.apps.clear();
    spec.traceFiles = {"whatever.jtt"};
    EXPECT_EQ(service::chooseKind(spec, &err), "replay");

    spec = tinyRunSpec();
    spec.benchRepeat = 3;
    EXPECT_EQ(service::chooseKind(spec, &err), "");
    EXPECT_NE(err, "");

    spec = tinyRunSpec();
    spec.hasFuzz = true;
    EXPECT_EQ(service::chooseKind(spec, &err), "");
    EXPECT_NE(err, "");
}

TEST(SpecExecutor, ResolveIsIdempotent)
{
    api::ExperimentSpec spec = tinyRunSpec();
    ASSERT_EQ(service::resolveSpec(spec, "run"), "");
    const std::string once = spec.emit();
    ASSERT_EQ(service::resolveSpec(spec, "run"), "");
    EXPECT_EQ(spec.emit(), once);
}

TEST(SpecExecutor, ExecuteFailsSoftlyOnBadSpecs)
{
    service::ExecuteResult result;
    api::ExperimentSpec missing = tinyRunSpec();
    missing.apps = {"no-such-app"};
    EXPECT_NE(service::executeSpec(missing, 0, result), "");

    api::ExperimentSpec ghost = tinyRunSpec();
    ghost.apps.clear();
    ghost.traceFiles = {"/nonexistent/capture.jtt"};
    EXPECT_NE(service::executeSpec(ghost, 0, result), "");
}

TEST(ExperimentService, ServedReportIsByteIdenticalToDirectExecution)
{
    experiments::RunCache::instance().clear();

    // Direct execution, same resolved spec the server will see.
    service::ExecuteResult direct;
    ASSERT_EQ(service::executeSpec(tinyRunSpec(), 0, direct), "");

    const std::string socket =
        ::testing::TempDir() + "jetty_test_service.sock";
    service::ServerConfig cfg;
    cfg.socketPath = socket;
    service::ExperimentServer server(cfg);
    ASSERT_EQ(server.start(), "");
    std::thread serverThread([&server]() { server.run(); });

    json::Value resp;
    std::string err = service::requestResponse(
        socket, service::makeRunRequest(tinyRunSpec().toJson()), resp);
    ASSERT_EQ(err, "");
    const json::Value *ok = resp.find("ok");
    ASSERT_TRUE(ok && ok->isBool() && ok->asBool())
        << resp.dumpCompact();

    const json::Value *report = resp.find("report");
    ASSERT_TRUE(report != nullptr);
    EXPECT_EQ(report->dump(), direct.report.dump());

    // Same cell again: answered from the shared cache, still identical.
    json::Value resp2;
    ASSERT_EQ(service::requestResponse(
                  socket, service::makeRunRequest(tinyRunSpec().toJson()),
                  resp2),
              "");
    const json::Value *sim2 = resp2.find("simulated");
    ASSERT_TRUE(sim2 && sim2->isNumber());
    EXPECT_EQ(sim2->asU64(), 0u);
    const json::Value *report2 = resp2.find("report");
    ASSERT_TRUE(report2 != nullptr);
    EXPECT_EQ(report2->dump(), direct.report.dump());

    // ping, stats, a malformed line, and an unknown verb — the daemon
    // answers each and keeps serving.
    json::Value pong;
    ASSERT_EQ(service::requestResponse(socket, service::makeRequest("ping"),
                                       pong),
              "");
    const json::Value *p = pong.find("pong");
    EXPECT_TRUE(p && p->isBool() && p->asBool());

    json::Value stats;
    ASSERT_EQ(service::requestResponse(socket,
                                       service::makeRequest("stats"),
                                       stats),
              "");
    EXPECT_TRUE(stats.find("simulations") != nullptr);

    {
        int fd = service::connectUnix(socket, &err);
        ASSERT_GE(fd, 0) << err;
        ASSERT_TRUE(service::sendLine(fd, "this is not json", &err));
        service::LineReader reader(fd);
        std::string line;
        ASSERT_EQ(reader.readLine(line, &err), 1);
        json::Value v = json::parse(line, &err);
        ASSERT_EQ(err, "");
        const json::Value *bad = v.find("ok");
        ASSERT_TRUE(bad && bad->isBool());
        EXPECT_FALSE(bad->asBool());
        ::close(fd);
    }

    json::Value unknown;
    ASSERT_EQ(service::requestResponse(socket,
                                       service::makeRequest("dance"),
                                       unknown),
              "");
    const json::Value *uok = unknown.find("ok");
    ASSERT_TRUE(uok && uok->isBool());
    EXPECT_FALSE(uok->asBool());

    // Shutdown verb stops the daemon; run() returns and joins.
    json::Value bye;
    ASSERT_EQ(service::requestResponse(socket,
                                       service::makeRequest("shutdown"),
                                       bye),
              "");
    serverThread.join();
    experiments::RunCache::instance().clear();
}

TEST(ExperimentService, GracefulDrainAnswersInFlightAndRefusesNew)
{
    const std::string socket =
        ::testing::TempDir() + "jetty_test_drain.sock";
    service::ServerConfig cfg;
    cfg.socketPath = socket;
    service::ExperimentServer server(cfg);
    ASSERT_EQ(server.start(), "");
    std::thread serverThread([&server]() { server.run(); });

    // One answered round trip per connection first: connect() alone
    // only proves the kernel queued the handshake — a response proves
    // serveClient() is running for the fd, which is what the drain
    // contract covers (a never-accepted backlog entry is refused).
    std::string err;
    std::string line;
    auto roundTrip = [&err, &line](int fd) {
        if (!service::sendValue(fd, service::makeRequest("ping"), &err))
            return false;
        service::LineReader reader(fd);
        return reader.readLineTimeout(line, 5000, &err) == 1;
    };

    // An idle connection (no further request) must not pin the daemon
    // open across a stop request...
    const int idle = service::connectUnix(socket, &err);
    ASSERT_GE(idle, 0) << err;
    ASSERT_TRUE(roundTrip(idle)) << err;

    // ...and a request already on the wire when the stop lands must
    // still be executed and answered in full.
    const int busy = service::connectUnix(socket, &err);
    ASSERT_GE(busy, 0) << err;
    ASSERT_TRUE(roundTrip(busy)) << err;
    ASSERT_TRUE(service::sendValue(busy, service::makeRequest("stats"),
                                   &err));
    server.requestStop();

    service::LineReader reader(busy);
    ASSERT_EQ(reader.readLineTimeout(line, 5000, &err), 1) << err;
    json::Value resp = json::parse(line, &err);
    ASSERT_EQ(err, "");
    const json::Value *ok = resp.find("ok");
    EXPECT_TRUE(ok && ok->isBool() && ok->asBool());
    EXPECT_TRUE(resp.find("simulations") != nullptr);

    // run() returns once every connection thread drained — the idle
    // client must not block this join (the test would hang).
    serverThread.join();
    ::close(idle);
    ::close(busy);

    // The listening socket is gone: new connections are refused.
    const int refused = service::connectUnix(socket, &err);
    EXPECT_LT(refused, 0);
    if (refused >= 0)
        ::close(refused);
}

TEST(ServiceClient, ConnectBackoffIsBoundedByTimeout)
{
    service::ClientOptions opts;
    opts.timeoutSeconds = 0.3;
    opts.retries = 3;
    json::Value resp;
    const auto t0 = std::chrono::steady_clock::now();
    const std::string err = service::requestResponse(
        ::testing::TempDir() + "jetty_no_such_daemon.sock",
        service::makeRequest("ping"), resp, opts);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_NE(err, "");
    // Deterministic backoff (50+100+200 ms) capped by the 0.3 s budget;
    // generous ceiling so a loaded CI machine cannot flake this.
    EXPECT_LT(elapsed, 5.0);
}

TEST(ServiceClient, ResponseWaitTimesOutAgainstAWedgedServer)
{
    const std::string socket =
        ::testing::TempDir() + "jetty_test_wedged.sock";
    std::string err;
    const int listenFd = service::listenUnix(socket, &err);
    ASSERT_GE(listenFd, 0) << err;

    // A server that accepts and then never answers.
    std::thread wedged([listenFd]() {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0) {
            // Hold the connection open long enough for the client's
            // timeout to be what fires, then hang up.
            std::this_thread::sleep_for(std::chrono::milliseconds(1500));
            ::close(fd);
        }
    });

    service::ClientOptions opts;
    opts.timeoutSeconds = 0.3;
    json::Value resp;
    const std::string cerr = service::requestResponse(
        socket, service::makeRequest("ping"), resp, opts);
    EXPECT_NE(cerr.find("timed out"), std::string::npos) << cerr;

    wedged.join();
    ::close(listenFd);
    ::unlink(socket.c_str());
}
