/**
 * @file
 * L1 data cache: set-associative, write-back, write-allocate, with lines
 * equal to the L2 coherence unit (32 B in the base system). The L1 carries
 * no coherence state of its own; it mirrors presence plus a "writable"
 * permission bit derived from the L2's MOESI state, and the inclusion
 * property (L2 superset of L1) is enforced by the owning processor node.
 *
 * Storage is packed for the batch pre-classifier (DESIGN.md, "Batched
 * miss pipeline"): each (set, way) frame is one 64-bit word
 * (tag << 2) | (writable << 1) | valid, so a lookup is a single masked
 * compare and classifyBatch() can scan a whole reference batch with the
 * simd::l1Classify gather kernel. LRU clocks and dirty flags sit in
 * parallel cold arrays — classification never touches them.
 */

#ifndef JETTY_MEM_L1_CACHE_HH
#define JETTY_MEM_L1_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/cache_config.hh"
#include "util/arena.hh"
#include "util/bits.hh"
#include "util/simd.hh"
#include "util/types.hh"

namespace jetty::mem
{

/** Result of an L1 lookup. */
struct L1LookupResult
{
    bool hit = false;       //!< line present
    bool writable = false;  //!< line may be written without L2 help
    bool dirty = false;     //!< line holds unwritten-back data
};

/** A dirty line displaced by an L1 fill; must be written back to L2. */
struct L1Victim
{
    Addr lineAddr = 0;
    bool valid = false;
    bool dirty = false;
};

/** One valid line as enumerated for state comparison (verify/). */
struct L1LineInfo
{
    Addr lineAddr = 0;
    bool writable = false;
    bool dirty = false;
};

/** How the single-lookup fast path classified a reference. */
enum class L1FastOutcome : std::uint8_t
{
    Hit,      //!< retired: hit needing no L2 help (touched, dirtied)
    Blocked,  //!< write hit without write permission; cache untouched
    Miss,     //!< line absent; cache untouched
};

/** Tag/flag store of the L1 data cache (LRU replacement). */
class L1Cache
{
  public:
    explicit L1Cache(const L1Config &cfg);

    /** Line-align an address. */
    Addr lineAlign(Addr a) const { return a & ~lineMask_; }

    /** Probe without side effects. */
    L1LookupResult probe(Addr addr) const;

    /**
     * Single-lookup fast path for hits that need no L2 interaction: a
     * read hit, or a write hit on a writable line. Performs exactly the
     * state changes of probe() + touch() (+ markDirty() for writes) in
     * one associative search and returns true. Any other case — miss, or
     * a write hit lacking write permission — leaves the cache completely
     * untouched and returns false so the caller can take the full path.
     *
     * Inline because the simulator's batched delivery loop issues one of
     * these per reference; it must stay bit-identical to the slow path
     * (same LRU clock advance, same dirty marking).
     */
    bool
    accessFast(Addr addr, bool write)
    {
        return accessClassify(addr, write) == L1FastOutcome::Hit;
    }

    /**
     * accessFast() that additionally reports *why* the fast path did
     * not retire the reference, so the caller can enter the L1-miss
     * route directly instead of re-probing: Blocked (a write hit
     * lacking permission — the full processorAccess route applies) vs
     * Miss (the line is absent). Hit semantics are accessFast()'s.
     *
     * This scalar loop is the oracle the vectorized classifyBatch() +
     * retireHitAt() pipeline is asserted bit-identical against
     * (test_caches.cc).
     */
    L1FastOutcome
    accessClassify(Addr addr, bool write)
    {
        const std::uint64_t set = bitField(addr, offsetBits_, indexBits_);
        const std::uint64_t key =
            ((addr >> (offsetBits_ + indexBits_)) << 2) | 1;
        const std::size_t base = static_cast<std::size_t>(set)
                                 << assocShift_;
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            const std::uint64_t word = tagw_[base + w];
            if ((word & ~std::uint64_t{2}) != key)
                continue;
            if (write && !(word & 2))
                return L1FastOutcome::Blocked;
            lastUse_[base + w] = ++useClock_;
            if (write)
                dirty_[base + w] = 1;
            return L1FastOutcome::Hit;
        }
        return L1FastOutcome::Miss;
    }

    /**
     * Stage 1 of the batched hot loop: classify @p n references against
     * the *current* tag/permission state without touching any of it.
     * outcome[k] is the L1FastOutcome accessClassify() would return for
     * (addrs[k], writes[k]); waySel[k] is the raw simd::l1Classify
     * verdict (way | kL1Writable, or kL1NoWay) that retireHitAt() uses
     * to retire a classified hit without re-probing.
     *
     * Validity contract: the verdicts describe the cache as of this
     * call's generation() — they stay exact as long as generation() is
     * unchanged, because retiring hits (LRU touch, dirty marking) never
     * changes tag/valid/writable state. fill(), invalidate() and
     * setWritable() each bump the generation; a caller holding stale
     * verdicts must reclassify.
     */
    void classifyBatch(const Addr *addrs, const std::uint8_t *writes,
                       std::size_t n, std::uint8_t *outcome,
                       std::uint8_t *waySel) const;

    /**
     * Retire one classified hit: exactly the state changes of
     * accessClassify()'s Hit arm (LRU clock advance, dirty marking on a
     * write), applied through the way recorded by classifyBatch()
     * instead of a fresh associative scan. Only valid while the
     * classifying generation still holds.
     */
    void
    retireHitAt(Addr addr, std::uint8_t waySel, bool write)
    {
        const std::size_t frame =
            (static_cast<std::size_t>(
                 bitField(addr, offsetBits_, indexBits_))
             << assocShift_) +
            (waySel & ~simd::kL1Writable);
        lastUse_[frame] = ++useClock_;
        if (write)
            dirty_[frame] = 1;
    }

    /**
     * Tag/permission-state generation: bumped by every mutation that can
     * change a classifyBatch() verdict (fill, invalidate, setWritable).
     * Hit retirement never bumps it.
     */
    std::uint64_t generation() const { return gen_; }

    /** Update LRU for a hit on @p addr's line. */
    void touch(Addr addr);

    /** Mark the (present) line dirty after a permitted write. */
    void markDirty(Addr addr);

    /** Grant write permission to the (present) line. */
    void setWritable(Addr addr, bool writable);

    /**
     * Allocate the line for @p addr, returning the displaced line (if any)
     * through @p victim. The caller writes dirty victims back to L2.
     */
    void fill(Addr addr, bool writable, L1Victim &victim);

    /**
     * Invalidate @p addr's line if present (inclusion enforcement).
     * @return true when the invalidated line was dirty (its data must be
     *         merged into the L2 before the unit leaves the hierarchy).
     */
    bool invalidate(Addr addr);

    /** Number of valid lines (for invariant checks). */
    std::uint64_t validLines() const { return validLines_; }

    /**
     * Every valid line with its permission/dirty flags, sorted by line
     * address. Differential verification compares this against the golden
     * model's view; not for hot paths.
     */
    std::vector<L1LineInfo> validLineInfo() const;

    /** The configuration this cache was built with. */
    const L1Config &config() const { return cfg_; }

  private:
    std::uint64_t setIndex(Addr a) const;
    Addr tagOf(Addr a) const;
    Addr lineAddrOf(Addr tag, std::uint64_t set) const;
    int findWay(Addr a) const;

    L1Config cfg_;
    /** Flat [set << assocShift | way] packed words,
     *  (tag << 2) | (writable << 1) | valid — the only array a
     *  classification reads; one cache line covers 8 ways. */
    util::AlignedVec<std::uint64_t> tagw_;
    util::AlignedVec<std::uint64_t> lastUse_;  //!< [frame] LRU clocks
    std::vector<std::uint8_t> dirty_;          //!< [frame] dirty flags
    std::uint64_t lineMask_;
    unsigned offsetBits_;
    unsigned indexBits_;
    unsigned assocShift_;  //!< log2(assoc), precomputed
    std::uint64_t useClock_ = 0;
    std::uint64_t validLines_ = 0;
    std::uint64_t gen_ = 0;  //!< classification-visible state version
};

} // namespace jetty::mem

#endif // JETTY_MEM_L1_CACHE_HH
