/**
 * @file
 * Regenerates Figure 6: energy reduction delivered by Hybrid-JETTY
 * organizations, under serial and parallel L2 tag/data access, measured
 * over all snoop-induced accesses and over all L2 accesses. JETTY's own
 * energy (probes, EJ allocations, IJ counter updates on fills/evictions)
 * is charged, exactly as in Section 4.4.
 *
 * Paper reference: best HJ (IJ-10x4x7, EJ-32x4) gives ~56% reduction over
 * snoops / ~30% over all accesses with serial arrays, rising to ~63% and
 * ~41% with parallel arrays; savings track coverage but are capped by the
 * JETTY's own dissipation (visible on raytrace, where all organizations
 * cover ~everything and the smallest JETTY wins).
 */

#include <cstdio>

#include "core/filter_spec.hh"
#include "experiments/experiments.hh"
#include "util/table.hh"

using namespace jetty;

namespace
{

void
printPanel(const char *title, const experiments::SystemVariant &variant,
           const std::vector<std::string> &specs,
           const std::vector<std::string> &labels, energy::AccessMode mode,
           bool overAll)
{
    // Pure cache hits: main() declared every hybrid run up front.
    const auto runs = experiments::runAllApps(variant, specs,
                                              experiments::defaultScale());

    TextTable table;
    std::vector<std::string> head{"App"};
    for (const auto &l : labels)
        head.push_back(l);
    table.header(head);

    std::vector<double> avg(specs.size(), 0.0);
    for (const auto &run : runs) {
        std::vector<std::string> row{run.abbrev};
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const auto res =
                experiments::evaluateEnergy(run, variant, specs[i], mode);
            const double v = overAll ? res.reductionOverAllPct
                                     : res.reductionOverSnoopsPct;
            avg[i] += v;
            row.push_back(TextTable::pct(v));
        }
        table.row(std::move(row));
    }
    std::vector<std::string> row{"AVG"};
    for (auto &a : avg)
        row.push_back(TextTable::pct(a / static_cast<double>(runs.size())));
    table.row(std::move(row));

    std::printf("%s\n\n", title);
    table.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    experiments::SystemVariant variant;
    // Declare every run the four panels need; one parallel sweep fills
    // the run cache, and each panel below pulls its own view from it.
    const auto hybrids = filter::paperHybridSpecs();
    experiments::runAllApps(variant, hybrids, experiments::defaultScale());

    const std::vector<std::string> all_labels{"(Ia,Ea)", "(Ib,Ea)",
                                              "(Ic,Ea)", "(Ia,Eb)",
                                              "(Ib,Eb)", "(Ic,Eb)"};
    const std::vector<std::string> ea_specs{
        "HJ(IJ-10x4x7,EJ-32x4)", "HJ(IJ-9x4x7,EJ-32x4)",
        "HJ(IJ-8x4x7,EJ-32x4)"};
    const std::vector<std::string> ea_labels{"(Ia,Ea)", "(Ib,Ea)",
                                             "(Ic,Ea)"};

    std::printf("Ia=IJ-10x4x7 Ib=IJ-9x4x7 Ic=IJ-8x4x7 "
                "Ea=EJ-32x4 Eb=EJ-16x2\n\n");

    printPanel("Figure 6(a): energy reduction over snoop accesses "
               "(serial tag/data)",
               variant, hybrids, all_labels,
               energy::AccessMode::Serial, false);
    printPanel("Figure 6(b): energy reduction over all L2 accesses "
               "(serial tag/data)",
               variant, ea_specs, ea_labels,
               energy::AccessMode::Serial, true);
    printPanel("Figure 6(c): energy reduction over snoop accesses "
               "(parallel tag/data)",
               variant, ea_specs, ea_labels,
               energy::AccessMode::Parallel, false);
    printPanel("Figure 6(d): energy reduction over all L2 accesses "
               "(parallel tag/data)",
               variant, ea_specs, ea_labels,
               energy::AccessMode::Parallel, true);

    std::printf("Paper reference: (Ia,Ea) ~56%% over snoops / ~30%% over "
                "all (serial); ~63%% / ~41%% (parallel).\n");
    return 0;
}
