/**
 * @file
 * Shared diagnostic formatting for the verification subsystem, so the
 * golden-model diffs and the invariant-checker reports render addresses
 * identically.
 */

#ifndef JETTY_VERIFY_FORMAT_HH
#define JETTY_VERIFY_FORMAT_HH

#include <cstdio>
#include <string>

#include "util/types.hh"

namespace jetty::verify
{

/** "0x…" rendering of an address for violation and diff messages. */
inline std::string
hexAddr(Addr a)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(a));
    return buf;
}

} // namespace jetty::verify

#endif // JETTY_VERIFY_FORMAT_HH
