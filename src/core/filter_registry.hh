/**
 * @file
 * Extensible registry of JETTY filter families.
 *
 * Each family (NULL, EJ, VEJ, IJ, RF, HJ, ...) registers a spec parser
 * together with its human-readable grammar, summary and canonical example.
 * makeFilter() (filter_spec.hh) dispatches through the registry, so a new
 * filter family plugs into the spec grammar, the CLI's `filters` listing
 * and every bench without touching a central parser: register it with a
 * FamilyRegistrar at namespace scope. Caveat: libjetty is a static
 * archive, so the registrar must live in a translation unit the linker
 * actually pulls in — the built-in families register from
 * filter_registry.cc (always linked via makeFilter) for exactly that
 * reason; put new registrars there, or in any TU the program already
 * references.
 *
 * Registration happens during static initialization (single-threaded);
 * after that the registry is immutable and safe to query from concurrent
 * SweepRunner workers.
 */

#ifndef JETTY_CORE_FILTER_REGISTRY_HH
#define JETTY_CORE_FILTER_REGISTRY_HH

#include <string>
#include <vector>

#include "core/snoop_filter.hh"

namespace jetty::filter
{

/** One self-describing filter family. */
struct FilterFamily
{
    /**
     * Try to parse @p spec as a member of this family.
     * @return false when @p spec does not belong to the family or is
     *         malformed. When @p out is null the parse only validates.
     */
    using ParseFn = bool (*)(const std::string &spec, const AddressMap &amap,
                             SnoopFilterPtr *out);

    std::string key;      //!< short family name, e.g. "EJ"
    std::string grammar;  //!< spec grammar, e.g. "EJ-<sets>x<assoc>"
    std::string summary;  //!< one-line description for the CLI listing
    std::string example;  //!< a canonical spec, e.g. "EJ-32x4"
    ParseFn parse = nullptr;
};

/** The process-wide family registry. */
class FilterRegistry
{
  public:
    /** The singleton instance (created on first use). */
    static FilterRegistry &instance();

    /** Add a family. Calls fatal() on a duplicate key or null parser. */
    void registerFamily(FilterFamily family);

    /**
     * Dispatch @p spec to the families in registration order.
     * @return true when some family accepted it; with a non-null @p out
     *         the built filter is stored there.
     */
    bool tryMake(const std::string &spec, const AddressMap &amap,
                 SnoopFilterPtr *out) const;

    /** Registered family keys, sorted alphabetically. */
    std::vector<std::string> listFamilies() const;

    /**
     * Explain why @p spec failed to parse, for error messages. Names the
     * offending token: a spec whose leading family token is registered is
     * reported as malformed against that family's grammar and example;
     * anything else is reported as an unknown family together with the
     * list of valid ones. Only meaningful after tryMake() returned false.
     */
    std::string describeFailure(const std::string &spec) const;

    /** The family registered under @p key, or nullptr. */
    const FilterFamily *family(const std::string &key) const;

    /** All families, in registration order. */
    const std::vector<FilterFamily> &families() const { return families_; }

  private:
    FilterRegistry() = default;

    std::vector<FilterFamily> families_;
};

/** Registers a family at static-initialization time. */
class FamilyRegistrar
{
  public:
    explicit FamilyRegistrar(FilterFamily family)
    {
        FilterRegistry::instance().registerFamily(std::move(family));
    }
};

} // namespace jetty::filter

#endif // JETTY_CORE_FILTER_REGISTRY_HH
