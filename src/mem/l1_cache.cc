#include "mem/l1_cache.hh"

#include <algorithm>
#include <cassert>

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace jetty::mem
{

L1Cache::L1Cache(const L1Config &cfg) : cfg_(cfg)
{
    if (!isPowerOfTwo(cfg.sizeBytes) || !isPowerOfTwo(cfg.blockBytes) ||
        !isPowerOfTwo(cfg.assoc)) {
        fatal("L1Cache: all geometry parameters must be powers of two");
    }
    const std::uint64_t sets = cfg.sets();
    if (sets == 0)
        fatal("L1Cache: size too small for block/assoc");
    if (cfg.assoc >= simd::kL1Writable)
        fatal("L1Cache: assoc too large for the classify verdict encoding");

    lineMask_ = cfg.blockBytes - 1;
    offsetBits_ = floorLog2(cfg.blockBytes);
    indexBits_ = floorLog2(sets);
    assocShift_ = floorLog2(cfg.assoc);

    const std::size_t frames = static_cast<std::size_t>(sets) * cfg.assoc;
    tagw_.assign(frames, 0);
    lastUse_.assign(frames, 0);
    dirty_.assign(frames, 0);
}

std::uint64_t
L1Cache::setIndex(Addr a) const
{
    return bitField(a, offsetBits_, indexBits_);
}

Addr
L1Cache::tagOf(Addr a) const
{
    return a >> (offsetBits_ + indexBits_);
}

Addr
L1Cache::lineAddrOf(Addr tag, std::uint64_t set) const
{
    return (tag << (offsetBits_ + indexBits_)) | (set << offsetBits_);
}

int
L1Cache::findWay(Addr a) const
{
    const std::size_t base = static_cast<std::size_t>(setIndex(a))
                             << assocShift_;
    const std::uint64_t key = (tagOf(a) << 2) | 1;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if ((tagw_[base + w] & ~std::uint64_t{2}) == key)
            return static_cast<int>(w);
    }
    return -1;
}

L1LookupResult
L1Cache::probe(Addr addr) const
{
    L1LookupResult res;
    const int w = findWay(addr);
    if (w < 0)
        return res;
    const std::size_t frame =
        (static_cast<std::size_t>(setIndex(addr)) << assocShift_) + w;
    res.hit = true;
    res.writable = (tagw_[frame] & 2) != 0;
    res.dirty = dirty_[frame] != 0;
    return res;
}

void
L1Cache::classifyBatch(const Addr *addrs, const std::uint8_t *writes,
                       std::size_t n, std::uint8_t *outcome,
                       std::uint8_t *waySel) const
{
    simd::l1Classify(tagw_.data(), addrs, n, offsetBits_,
                     maskBits(indexBits_), offsetBits_ + indexBits_,
                     assocShift_, waySel);
    // Branchless verdict mapping (the mispredict cost of a 3-way branch
    // on interleaved hit/miss streams is what Stage 1 exists to avoid):
    // Miss when no way matched, Blocked on a write without permission,
    // Hit otherwise.
    constexpr auto kHit = static_cast<std::uint8_t>(L1FastOutcome::Hit);
    constexpr auto kMiss = static_cast<std::uint8_t>(L1FastOutcome::Miss);
    constexpr auto kBlocked =
        static_cast<std::uint8_t>(L1FastOutcome::Blocked);
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint8_t sel = waySel[k];
        const bool miss = sel == simd::kL1NoWay;
        const bool blocked =
            !miss && writes[k] && !(sel & simd::kL1Writable);
        outcome[k] = static_cast<std::uint8_t>(
            miss ? kMiss : (blocked ? kBlocked : kHit));
    }
}

void
L1Cache::touch(Addr addr)
{
    const int w = findWay(addr);
    if (w >= 0) {
        lastUse_[(static_cast<std::size_t>(setIndex(addr)) << assocShift_) +
                 w] = ++useClock_;
    }
}

void
L1Cache::markDirty(Addr addr)
{
    const int w = findWay(addr);
    if (w < 0)
        panic("L1Cache::markDirty on absent line");
    const std::size_t frame =
        (static_cast<std::size_t>(setIndex(addr)) << assocShift_) + w;
    if (!(tagw_[frame] & 2))
        panic("L1Cache::markDirty on non-writable line");
    dirty_[frame] = 1;
}

void
L1Cache::setWritable(Addr addr, bool writable)
{
    const int w = findWay(addr);
    if (w < 0)
        panic("L1Cache::setWritable on absent line");
    const std::size_t frame =
        (static_cast<std::size_t>(setIndex(addr)) << assocShift_) + w;
    tagw_[frame] = (tagw_[frame] & ~std::uint64_t{2}) |
                   (writable ? std::uint64_t{2} : 0);
    ++gen_;
}

void
L1Cache::fill(Addr addr, bool writable, L1Victim &victim)
{
    victim = L1Victim{};
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);

    if (findWay(addr) >= 0)
        panic("L1Cache::fill of an already-present line");

    const std::size_t base = static_cast<std::size_t>(set) << assocShift_;
    int target = -1;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (!(tagw_[base + w] & 1)) {
            target = static_cast<int>(w);
            break;
        }
    }
    if (target < 0) {
        std::uint64_t oldest = ~std::uint64_t{0};
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            if (lastUse_[base + w] < oldest) {
                oldest = lastUse_[base + w];
                target = static_cast<int>(w);
            }
        }
    }

    const std::size_t frame = base + target;
    if (tagw_[frame] & 1) {
        victim.valid = true;
        victim.dirty = dirty_[frame] != 0;
        victim.lineAddr = lineAddrOf(tagw_[frame] >> 2, set);
        --validLines_;
    }
    tagw_[frame] = (static_cast<std::uint64_t>(tag) << 2) |
                   (writable ? std::uint64_t{2} : 0) | 1;
    dirty_[frame] = 0;
    lastUse_[frame] = ++useClock_;
    ++validLines_;
    ++gen_;
}

std::vector<L1LineInfo>
L1Cache::validLineInfo() const
{
    std::vector<L1LineInfo> lines;
    lines.reserve(validLines_);
    const std::uint64_t sets = cfg_.sets();
    for (std::uint64_t set = 0; set < sets; ++set) {
        const std::size_t base = static_cast<std::size_t>(set)
                                 << assocShift_;
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            const std::uint64_t word = tagw_[base + w];
            if (!(word & 1))
                continue;
            L1LineInfo info;
            info.lineAddr = lineAddrOf(word >> 2, set);
            info.writable = (word & 2) != 0;
            info.dirty = dirty_[base + w] != 0;
            lines.push_back(info);
        }
    }
    std::sort(lines.begin(), lines.end(),
              [](const L1LineInfo &a, const L1LineInfo &b) {
                  return a.lineAddr < b.lineAddr;
              });
    return lines;
}

bool
L1Cache::invalidate(Addr addr)
{
    const int w = findWay(addr);
    if (w < 0)
        return false;
    const std::size_t frame =
        (static_cast<std::size_t>(setIndex(addr)) << assocShift_) + w;
    const bool was_dirty = dirty_[frame] != 0;
    // Clear valid and writable; the stale tag bits can never match again
    // because a lookup key always carries valid=1.
    tagw_[frame] &= ~std::uint64_t{3};
    dirty_[frame] = 0;
    --validLines_;
    ++gen_;
    return was_dirty;
}

} // namespace jetty::mem
