/**
 * @file
 * The SnoopFilter interface implemented by every JETTY variant.
 *
 * A filter sits between the bus and the L2 backside of one processor. On
 * an incoming snoop the filter is probed; a @c true answer is a *guarantee*
 * that the snooped coherence unit is not valid in the local L2, so the L2
 * tag probe can be skipped. Filters are speculative but must be safe: a
 * false "not cached" would break coherence, and the simulator verifies the
 * guarantee against ground truth on every filtered snoop.
 *
 * Filters keep no coherence state beyond presence, exactly as the paper
 * requires (no protocol changes). They learn through three event streams:
 *  - probe(addr): a snoop arrived;
 *  - onSnoopMiss(addr): the snoop was not filtered and missed in the L2
 *    (this is when an Exclude-JETTY allocates);
 *  - onFill/onEvict(addr): the L2 gained/lost a valid coherence unit
 *    (this is how Include-JETTY counters and EJ present bits stay
 *    coherent; the information is free at the L2, Section 3.2).
 */

#ifndef JETTY_CORE_SNOOP_FILTER_HH
#define JETTY_CORE_SNOOP_FILTER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "energy/accountant.hh"
#include "energy/technology.hh"
#include "util/types.hh"

namespace jetty::filter
{

/**
 * Address-space facts a filter needs to slice addresses and size its
 * storage. Produced by the simulator from the L2 configuration.
 */
struct AddressMap
{
    /** log2 of the coherence-unit size (32 B -> 5). */
    unsigned unitOffsetBits = 5;

    /** log2 of the L2 block size (64 B -> 6); IJ indexing starts above
     *  this per Section 4.3.3. */
    unsigned blockOffsetBits = 6;

    /** Physical address bits (paper: 36--40). */
    unsigned physAddrBits = 40;

    /** Total coherence units the L2 can hold (pessimistic IJ counter
     *  sizing). */
    std::uint64_t l2CapacityUnits = 32768;
};

/** Storage cost of a filter, for Table 4 style reporting. */
struct StorageBreakdown
{
    std::uint64_t presenceBits = 0;  //!< bits probed on a snoop
    std::uint64_t counterBits = 0;   //!< IJ cnt arrays (not probed by snoops)

    std::uint64_t totalBits() const { return presenceBits + counterBits; }
    double totalBytes() const { return totalBits() / 8.0; }
};

/** Abstract JETTY. */
class SnoopFilter
{
  public:
    virtual ~SnoopFilter() = default;

    /**
     * Probe for a snoop to @p unitAddr (coherence-unit aligned).
     * @return true when the unit is guaranteed absent from the local L2
     *         (the snoop is filtered).
     */
    virtual bool probe(Addr unitAddr) = 0;

    /**
     * The snoop to @p unitAddr was not filtered and the L2 tag probe
     * missed. Exclude components allocate here.
     *
     * @param blockPresent the enclosing block's tag matched (some other
     *        subblock is valid locally), so only the snooped unit is known
     *        absent. When false the whole block is guaranteed absent --
     *        the information an exclude-JETTY records. The tag probe that
     *        discovered the miss supplies this for free.
     */
    virtual void onSnoopMiss(Addr unitAddr, bool blockPresent) = 0;

    /** The local L2 gained a valid unit at @p unitAddr. */
    virtual void onFill(Addr unitAddr) = 0;

    /** The local L2 lost the valid unit at @p unitAddr. */
    virtual void onEvict(Addr unitAddr) = 0;

    /** Reset all filter contents (e.g., between workload phases). */
    virtual void clear() = 0;

    /** Storage cost breakdown. */
    virtual StorageBreakdown storage() const = 0;

    /** Per-event energies under @p tech, from the SramArray model. */
    virtual energy::FilterEnergyCosts
    energyCosts(const energy::Technology &tech) const = 0;

    /** Canonical configuration name, e.g. "EJ-32x4". */
    virtual std::string name() const = 0;
};

using SnoopFilterPtr = std::unique_ptr<SnoopFilter>;

} // namespace jetty::filter

#endif // JETTY_CORE_SNOOP_FILTER_HH
