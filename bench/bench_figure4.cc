/**
 * @file
 * Regenerates Figure 4: snoop-miss coverage of the Exclude-JETTY family.
 *  (a) EJ configurations EJ-{32,16,8}x{4,2}.
 *  (b) VEJ configurations VEJ-{32,16}x4-{8,4} with EJ-32x4/EJ-16x4 as
 *      references.
 *
 * The bench is declarative: one up-front request covers every (app,
 * filter) cell of both panels, the sweep engine simulates the apps
 * concurrently, and each panel then pulls its own view from the run
 * cache -- no app is simulated twice.
 *
 * Paper reference: EJ-32x4 is best at ~45% average coverage; VEJ helps
 * slightly on most applications (most on Unstructured) but can lose to an
 * equally-sized EJ through set-index thrashing (Barnes).
 */

#include <cstdio>

#include "core/filter_spec.hh"
#include "experiments/experiments.hh"
#include "util/table.hh"

using namespace jetty;

namespace
{

/** Fetch the panel's runs from the experiment layer and tabulate. */
void
printCoverage(const char *title, const experiments::SystemVariant &variant,
              const std::vector<std::string> &specs)
{
    const auto runs = experiments::runAllApps(variant, specs,
                                              experiments::defaultScale());

    TextTable table;
    std::vector<std::string> head{"App"};
    for (const auto &s : specs)
        head.push_back(s);
    table.header(head);

    std::vector<double> avg(specs.size(), 0.0);
    for (const auto &run : runs) {
        std::vector<std::string> row{run.abbrev};
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const double cov = 100.0 * run.statsFor(specs[i]).coverage();
            avg[i] += cov;
            row.push_back(TextTable::pct(cov));
        }
        table.row(std::move(row));
    }
    std::vector<std::string> row{"AVG"};
    for (auto &a : avg)
        row.push_back(TextTable::pct(a / static_cast<double>(runs.size())));
    table.row(std::move(row));

    std::printf("%s\n\n", title);
    table.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    experiments::SystemVariant variant;

    // Declare every run both panels need; one parallel sweep fills the
    // cache, and the per-panel pulls below are pure cache hits.
    std::vector<std::string> specs = filter::paperExcludeSpecs();
    for (const auto &s : filter::paperVectorExcludeSpecs())
        specs.push_back(s);
    experiments::runAllApps(variant, specs, experiments::defaultScale());

    printCoverage("Figure 4(a): Exclude-JETTY coverage", variant,
                  filter::paperExcludeSpecs());

    printCoverage("Figure 4(b): Vector-Exclude-JETTY coverage", variant,
                  {"VEJ-32x4-8", "VEJ-32x4-4", "EJ-32x4", "VEJ-16x4-8",
                   "VEJ-16x4-4", "EJ-16x4"});

    std::printf("Paper reference: EJ-32x4 best with ~45%% average "
                "coverage; VEJ a slight improvement on most apps.\n");
    return 0;
}
