// Fixture: the struct side of the shard envelope contract.
// `wallSeconds` is deliberately omitted from the two-arg X-macro list
// in shard.cc — the lint must name it twice: once as missing from the
// list, once as never referenced by the serializer TU.
#include <cstdint>
#include <string>

namespace jetty::dist
{

struct ShardResponse
{
    std::uint64_t shardId = 0;
    bool ok = false;
    std::string error;       // negative control: strings are scalar
    double wallSeconds = 0;  // line 16: missing from the X list
};

} // namespace jetty::dist
