/**
 * @file
 * Quickstart: build the paper's base 4-way SMP, attach a hybrid JETTY,
 * run one SPLASH-2-style workload, and print coverage plus energy
 * savings. This is the minimal end-to-end use of the public API.
 */

#include <cstdio>

#include "experiments/experiments.hh"
#include "trace/apps.hh"

using namespace jetty;

int
main()
{
    // 1. Pick the base system (4 processors, 64KB L1, 1MB subblocked L2)
    //    and the paper's best hybrid JETTY configuration.
    experiments::SystemVariant variant;
    const std::string jetty_spec = "HJ(IJ-10x4x7,EJ-32x4)";

    // 2. Run the Lu workload (a scaled synthetic stand-in for SPLASH-2
    //    LU) with the filter observing every snoop.
    const auto run = experiments::runApp(trace::appByName("lu"), variant,
                                         {jetty_spec}, /*accessScale=*/0.25);

    // 3. Inspect what happened.
    const auto agg = run.stats.aggregate();
    std::printf("Ran %s: %.1fM references on 4 processors\n",
                run.appName.c_str(), agg.accesses / 1e6);
    std::printf("  L1 hit rate:        %5.1f%%\n",
                percent(agg.l1Hits, agg.accesses));
    std::printf("  L2 local hit rate:  %5.1f%%\n",
                percent(agg.l2LocalHits, agg.l2LocalAccesses));
    std::printf("  snoop tag probes:   %llu (%.1f%% of them miss)\n",
                static_cast<unsigned long long>(agg.snoopTagProbes),
                percent(agg.snoopMisses, agg.snoopTagProbes));

    const auto &fs = run.statsFor(jetty_spec);
    std::printf("\n%s:\n", jetty_spec.c_str());
    std::printf("  snoop-miss coverage: %5.1f%%  (snoops filtered: %llu)\n",
                100.0 * fs.coverage(),
                static_cast<unsigned long long>(fs.filtered));

    const auto serial = experiments::evaluateEnergy(
        run, variant, jetty_spec, energy::AccessMode::Serial);
    const auto parallel = experiments::evaluateEnergy(
        run, variant, jetty_spec, energy::AccessMode::Parallel);
    std::printf("  energy reduction over snoop accesses: %5.1f%% (serial), "
                "%5.1f%% (parallel)\n",
                serial.reductionOverSnoopsPct,
                parallel.reductionOverSnoopsPct);
    std::printf("  energy reduction over all L2 accesses: %4.1f%% (serial), "
                "%5.1f%% (parallel)\n",
                serial.reductionOverAllPct, parallel.reductionOverAllPct);
    return 0;
}
