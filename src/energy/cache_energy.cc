#include "energy/cache_energy.hh"

#include <cassert>

#include "util/bits.hh"

namespace jetty::energy
{

unsigned
CacheGeometry::tagBits() const
{
    const unsigned offset_bits = jetty::floorLog2(blockBytes);
    const unsigned index_bits = jetty::floorLog2(sets());
    assert(physAddrBits > offset_bits + index_bits);
    return physAddrBits - offset_bits - index_bits;
}

CacheEnergyModel::CacheEnergyModel(const CacheGeometry &geom,
                                   const Technology &tech,
                                   unsigned tagMaxBanks,
                                   unsigned dataMaxBanks)
    : geom_(geom)
{
    const std::uint64_t sets = geom.sets();
    assert(sets > 0 && jetty::isPowerOfTwo(sets));

    // --- Tag array: one row per set, all ways side by side. Each way
    // stores the tag plus per-subblock coherence state.
    const unsigned tag_entry_bits =
        geom.tagBits() + geom.subblocks * geom.stateBitsPerUnit;
    const std::uint64_t tag_cols =
        static_cast<std::uint64_t>(geom.assoc) * tag_entry_bits;

    tagBanks_ = SramArray::optimalBanks(sets, tag_cols, tech, tagMaxBanks,
                                        static_cast<unsigned>(tag_cols));
    SramArray tag_array(sets, tag_cols, tagBanks_, tech);

    const double comparator =
        static_cast<double>(geom.assoc) * geom.tagBits() *
        tech.eComparatorPerBit;

    energies_.tagRead =
        tag_array.readEnergy(static_cast<unsigned>(tag_cols)) + comparator;
    energies_.tagWrite = tag_array.writeEnergy(tag_entry_bits);

    // --- Data array: modelled per way so a serial access activates a
    // single way's subarray and reads one coherence unit.
    const unsigned unit_bits = geom.unitBytes() * 8;
    dataBanks_ = SramArray::optimalBanks(sets, unit_bits, tech, dataMaxBanks,
                                         unit_bits);
    SramArray data_way(sets, unit_bits, dataBanks_, tech);

    energies_.dataReadUnit = data_way.readEnergy(unit_bits);
    energies_.dataWriteUnit = data_way.writeEnergy(unit_bits);
}

} // namespace jetty::energy
