/**
 * @file
 * Shared experiment kit for the bench harness: canonical paper
 * configurations, one-call application runs, per-app result bundles, and
 * energy evaluation helpers. Every bench binary (one per paper table and
 * figure) builds on these.
 */

#ifndef JETTY_EXPERIMENTS_EXPERIMENTS_HH
#define JETTY_EXPERIMENTS_EXPERIMENTS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/filter_bank.hh"
#include "energy/accountant.hh"
#include "energy/cache_energy.hh"
#include "sim/smp_system.hh"
#include "trace/apps.hh"
#include "trace/synthetic.hh"

namespace jetty::experiments
{

/** Base system variants exercised by the evaluation. */
struct SystemVariant
{
    unsigned nprocs = 4;
    bool subblocked = true;  //!< 64 B blocks of two 32 B units vs 32 B units

    /** Build the SmpConfig (filters added by the caller). */
    sim::SmpConfig smpConfig() const;

    /** Cache geometry for the energy model of this variant's L2. */
    energy::CacheGeometry l2EnergyGeometry() const;
};

/** Every filter configuration the paper evaluates, in bench order. */
std::vector<std::string> allPaperFilterSpecs();

/** Results of running one application on one system variant. */
struct AppRunResult
{
    std::string appName;
    std::string abbrev;
    std::uint64_t memoryAllocated = 0;
    sim::SimStats stats{4};

    /** Names of the evaluated filters, parallel to filterStats. */
    std::vector<std::string> filterNames;

    /** Per-filter stats merged over all processors. */
    std::vector<filter::FilterStats> filterStats;

    /** Per-filter per-event energies (J). */
    std::vector<energy::FilterEnergyCosts> filterCosts;

    /** L2 traffic merged over all processors. */
    energy::L2Traffic traffic;

    /** Coverage of filter @p name; fatal() when unknown. */
    const filter::FilterStats &statsFor(const std::string &name) const;
    const energy::FilterEnergyCosts &costsFor(const std::string &name) const;
};

/**
 * Run application @p app on @p variant evaluating @p filterSpecs.
 * @param accessScale scales the reference count (JETTY_SCALE env or
 *                    defaultScale() when <= 0).
 */
AppRunResult runApp(const trace::AppProfile &app,
                    const SystemVariant &variant,
                    const std::vector<std::string> &filterSpecs,
                    double accessScale = -1.0);

/** Run all ten paper applications (Table 2 order). */
std::vector<AppRunResult> runAllApps(const SystemVariant &variant,
                                     const std::vector<std::string> &specs,
                                     double accessScale = -1.0);

/** The access scale used by benches: 1.0, or the JETTY_SCALE env var. */
double defaultScale();

/** Energy-reduction summary of one filter on one run. */
struct EnergyResult
{
    double reductionOverSnoopsPct = 0;  //!< Figure 6(a)/(c)
    double reductionOverAllPct = 0;     //!< Figure 6(b)/(d)
};

/** Evaluate filter @p name on @p run under @p mode (serial/parallel). */
EnergyResult evaluateEnergy(const AppRunResult &run,
                            const SystemVariant &variant,
                            const std::string &name,
                            energy::AccessMode mode);

} // namespace jetty::experiments

#endif // JETTY_EXPERIMENTS_EXPERIMENTS_HH
