#include "trace/synthetic.hh"

#include <algorithm>
#include <cassert>

#include "util/bits.hh"
#include "util/logging.hh"

namespace jetty::trace
{

namespace
{

/** Region alignment; keeps distinct streams in distinct L2 blocks. */
constexpr std::uint64_t kRegionAlign = 4096;
constexpr std::uint64_t KiB_ = 1024;

/** Reuse-ring capacity; a power of two so the cursor wraps by mask. */
constexpr std::size_t kReuseRing = 32;

/**
 * Deterministic rotation of a region's hot spot, derived from its base so
 * every stream (and every processor's slice) is hottest at a different
 * offset. Shared regions must rotate identically on all processors, hence
 * the dependence on the base address alone.
 */
std::uint64_t
hotRotation(Addr base, std::uint64_t words)
{
    return words == 0 ? 0 : (base >> 12) * 2654435761ULL % words;
}

std::uint64_t
alignUp(std::uint64_t v)
{
    return (v + kRegionAlign - 1) & ~(kRegionAlign - 1);
}

/**
 * The one place a (profile seed, processor) pair becomes an Rng seed.
 * Construction and reset() must derive the identical value or a rewound
 * source would replay a different stream, so the derivation lives here
 * rather than being spelled out at each site.
 */
std::uint64_t
sourceSeed(std::uint64_t profileSeed, ProcId proc)
{
    return profileSeed * kSeedMix + proc * 7919 + 1;
}

/**
 * Per-processor generator. Holds per-stream walk state and a small reuse
 * ring that models register/L1-resident temporal locality.
 */
class SyntheticSource : public TraceSource
{
  public:
    SyntheticSource(const Workload &workload, const AppProfile &profile,
                    unsigned nprocs, ProcId proc, std::uint64_t accesses,
                    const std::vector<StreamLayout> &layouts)
        : workload_(workload), profile_(profile), nprocs_(nprocs),
          proc_(proc), accesses_(accesses), remaining_(accesses),
          rng_(sourceSeed(profile.seed, proc))
    {
        streams_.reserve(layouts.size());
        double total_weight = 0;
        for (const auto &l : layouts)
            total_weight += l.spec.weight;
        if (total_weight <= 0)
            fatal("SyntheticSource: profile has no stream weight");
        for (const auto &l : layouts) {
            StreamState st;
            st.layout = l;
            st.cumWeight = 0;  // filled below
            streams_.push_back(st);
        }
        double cum = 0;
        for (auto &st : streams_) {
            cum += st.layout.spec.weight / total_weight;
            st.cumWeight = cum;
        }
        for (auto &st : streams_)
            initDerived(st);
        reuseRing_.assign(kReuseRing, 0);
    }

    void
    reset() override
    {
        remaining_ = accesses_;
        issued_ = 0;
        rng_ = Rng(sourceSeed(profile_.seed, proc_));
        for (auto &st : streams_) {
            st.accesses = 0;
            st.runLeft = 0;
            st.runAddr = 0;
            st.runBase = 0;
            st.runBytes = 0;
            st.posMod = 0;
            st.pcEpoch = 0;
            st.pcWithin = 0;
            st.pcOffset = 0;
            st.migWithinWord = 0;
            st.migWithinByte = 0;
            st.migSlot = 0;
            st.migSlotN = 0;
            st.migRotor = proc_ % nprocs_;
        }
        reuseRing_.assign(kReuseRing, 0);
        reusePos_ = 0;
        reuseFill_ = 0;
    }

    TraceSourcePtr
    clone() const override
    {
        // The clone replays the full stream from the start; it shares the
        // Workload (read-only: layout facts and the page table) with its
        // origin, which is what lets one workload feed many systems.
        std::vector<StreamLayout> layouts;
        layouts.reserve(streams_.size());
        for (const auto &st : streams_)
            layouts.push_back(st.layout);
        return std::make_unique<SyntheticSource>(
            workload_, profile_, nprocs_, proc_, accesses_, layouts);
    }

    bool next(TraceRecord &out) override { return nextImpl(out); }

    std::size_t
    nextBatch(TraceRecord *out, std::size_t max) override
    {
        // One virtual dispatch per batch instead of per record; the
        // records are exactly those repeated next() calls would produce.
        std::size_t n = 0;
        while (n < max && nextImpl(out[n]))
            ++n;
        return n;
    }

  private:
    /** The generator proper (non-virtual so nextBatch can inline it). */
    bool
    nextImpl(TraceRecord &out)
    {
        if (remaining_ == 0)
            return false;
        --remaining_;
        ++issued_;

        // Temporal-locality reuse: re-touch a recently used address.
        if (reuseFill_ > 0 && rng_.chance(profile_.reuseProb)) {
            const std::size_t i = rng_.below(reuseFill_);
            out.addr = reuseRing_[i];
            out.type = AccessType::Read;
            return true;
        }

        StreamState &st = pickStream();
        out = fresh(st);
        out.addr = workload_.translate(out.addr);
        remember(out.addr);
        return true;
    }

    struct StreamState
    {
        StreamLayout layout;
        double cumWeight = 0;
        std::uint64_t accesses = 0;  //!< references this stream produced
        std::uint64_t runLeft = 0;   //!< words left in the current burst
        Addr runAddr = 0;            //!< next address of the burst
        Addr runBase = 0;            //!< burst region base (for wrap)
        std::uint64_t runBytes = 0;  //!< burst region size

        // Derived constants (initDerived: layout + profile + proc only,
        // so construction and reset leave them untouched). Hoisting them
        // replaces the per-reference divisions of the fresh* generators.
        Addr myBase = 0;             //!< this processor's slice / region
        Addr neighborBase = 0;       //!< next processor's slice
        std::uint64_t residentWords = 0;  //!< private resident words
        std::uint64_t residentRot = 0;    //!< hotRotation(myBase, words)
        std::uint64_t streamBytes = 0;    //!< private streaming span
        std::uint64_t sharedWords = 0;    //!< read-shared region words
        std::uint64_t sharedRot = 0;      //!< hotRotation(base, words)
        std::uint64_t pcLagMod = 0;       //!< (epochLen * word) % buf
        std::uint64_t spanWords = 0;      //!< neighbor boundary words
        std::uint64_t migObjects = 1;     //!< migratory object count
        std::uint64_t migObjWords = 1;    //!< words per object
        std::uint64_t migMine = 1;        //!< objects per processor share

        // Wrapped incremental cursors — each tracks one of the original
        // per-reference '%' expressions exactly (the increment is always
        // strictly smaller than the modulus, so a single conditional
        // subtract is the full reduction). reset() zeroes them with the
        // walk so a rewound source replays bit-identically.
        std::uint64_t posMod = 0;     //!< pos % streamBytes (or % part)
        std::uint64_t pcEpoch = 0;    //!< accesses / epochLen
        std::uint64_t pcWithin = 0;   //!< accesses % epochLen
        std::uint64_t pcOffset = 0;   //!< (accesses * word) % buf
        std::uint64_t migWithinWord = 0;  //!< step % objWords
        std::uint64_t migWithinByte = 0;  //!< migWithinWord * word
        std::uint64_t migSlot = 0;        //!< (step / objWords) % mine
        std::uint64_t migSlotN = 0;       //!< migSlot * nprocs
        std::uint64_t migRotor = 0;  //!< (proc + n - sweep % n) % n
    };

    /** Fill the derived constants of @p st (see StreamState). */
    void
    initDerived(StreamState &st)
    {
        const StreamSpec &spec = st.layout.spec;
        const unsigned word = profile_.wordBytes;
        switch (spec.kind) {
          case StreamKind::Private:
            st.myBase = st.layout.base + proc_ * st.layout.perProcBytes;
            if (spec.residentBytes >= word) {
                st.residentWords = spec.residentBytes / word;
                st.residentRot =
                    hotRotation(st.myBase, st.residentWords);
            }
            st.streamBytes = spec.bytes > spec.residentBytes
                                 ? spec.bytes - spec.residentBytes
                                 : word;
            break;
          case StreamKind::ProducerConsumer: {
            const std::uint64_t buf = st.layout.perProcBytes;
            st.myBase = st.layout.base + proc_ * buf;
            st.neighborBase =
                st.layout.base + ((proc_ + 1) % nprocs_) * buf;
            st.pcLagMod = (spec.epochLen * word) % buf;
            break;
          }
          case StreamKind::Migratory:
            st.migObjects = std::max<std::uint64_t>(
                1, st.layout.totalBytes / spec.objectBytes);
            st.migObjWords =
                std::max<std::uint64_t>(1, spec.objectBytes / word);
            st.migMine = std::max<std::uint64_t>(
                1, (st.migObjects + nprocs_ - 1) / nprocs_);
            break;
          case StreamKind::ReadShared:
            st.sharedWords = st.layout.totalBytes / word;
            st.sharedRot = hotRotation(st.layout.base, st.sharedWords);
            break;
          case StreamKind::Neighbor: {
            const std::uint64_t part = st.layout.perProcBytes;
            st.myBase = st.layout.base + proc_ * part;
            st.neighborBase =
                st.layout.base + ((proc_ + 1) % nprocs_) * part;
            st.spanWords =
                std::min<std::uint64_t>(spec.boundaryBytes, part) / word;
            break;
          }
        }
        st.migRotor = proc_ % nprocs_;
    }

    /** Begin an object burst at @p start_word within the given region. */
    void
    startBurst(StreamState &st, Addr base, std::uint64_t bytes,
               std::uint64_t start_word)
    {
        const unsigned word = profile_.wordBytes;
        const std::uint64_t words = bytes / word;
        st.runBase = base;
        st.runBytes = bytes;
        st.runAddr = base + (start_word % words) * word;
        st.runLeft =
            std::max<std::uint64_t>(1, st.layout.spec.burstBytes / word);
    }

    /** Next address of the active burst (wraps within its region). */
    Addr
    burstNext(StreamState &st)
    {
        const unsigned word = profile_.wordBytes;
        const Addr a = st.runAddr;
        st.runAddr += word;
        if (st.runAddr >= st.runBase + st.runBytes)
            st.runAddr = st.runBase;
        --st.runLeft;
        return a;
    }

    StreamState &
    pickStream()
    {
        const double u = rng_.uniform();
        for (auto &st : streams_) {
            if (u <= st.cumWeight)
                return st;
        }
        return streams_.back();
    }

    void
    remember(Addr a)
    {
        reuseRing_[reusePos_] = a;
        reusePos_ = (reusePos_ + 1) & (kReuseRing - 1);
        reuseFill_ = std::min(reuseFill_ + 1, kReuseRing);
    }

    AccessType
    drawType(double writeFraction)
    {
        return rng_.chance(writeFraction) ? AccessType::Write
                                          : AccessType::Read;
    }

    TraceRecord fresh(StreamState &st);
    TraceRecord freshPrivate(StreamState &st);
    TraceRecord freshProducerConsumer(StreamState &st);
    TraceRecord freshMigratory(StreamState &st);
    TraceRecord freshReadShared(StreamState &st);
    TraceRecord freshNeighbor(StreamState &st);

    const Workload &workload_;
    const AppProfile profile_;
    const unsigned nprocs_;
    const ProcId proc_;
    const std::uint64_t accesses_;  //!< full stream length (for reset/clone)
    std::uint64_t remaining_;
    std::uint64_t issued_ = 0;
    Rng rng_;
    std::vector<StreamState> streams_;
    std::vector<Addr> reuseRing_;
    std::size_t reusePos_ = 0;
    std::size_t reuseFill_ = 0;
};

TraceRecord
SyntheticSource::fresh(StreamState &st)
{
    switch (st.layout.spec.kind) {
      case StreamKind::Private:
        return freshPrivate(st);
      case StreamKind::ProducerConsumer:
        return freshProducerConsumer(st);
      case StreamKind::Migratory:
        return freshMigratory(st);
      case StreamKind::ReadShared:
        return freshReadShared(st);
      case StreamKind::Neighbor:
        return freshNeighbor(st);
    }
    panic("SyntheticSource: unknown stream kind");
}

TraceRecord
SyntheticSource::freshPrivate(StreamState &st)
{
    const StreamSpec &spec = st.layout.spec;
    const unsigned word = profile_.wordBytes;
    TraceRecord rec;
    rec.type = drawType(spec.writeFraction);

    if (st.runLeft > 0) {
        // Continue the active object burst.
        rec.addr = burstNext(st);
        ++st.accesses;
        return rec;
    }

    if (rng_.chance(spec.residentFraction) && spec.residentBytes >= word) {
        // Resident set: hot, reused, L2-friendly, object-granular.
        // hot and the precomputed rotation are each < residentWords, so
        // the sum reduces with one conditional subtract.
        const std::uint64_t hot =
            rng_.hotIndex(st.residentWords, spec.residentHotBias);
        std::uint64_t start = hot + st.residentRot;
        if (start >= st.residentWords)
            start -= st.residentWords;
        startBurst(st, st.myBase, spec.residentBytes, start);
        rec.addr = burstNext(st);
    } else {
        // Streaming set: sequential walk that defeats the L2. posMod is
        // the walk cursor reduced mod streamBytes (word <= streamBytes,
        // so the wrap is one conditional subtract).
        rec.addr = st.myBase + spec.residentBytes + st.posMod;
        st.posMod += word;
        if (st.posMod >= st.streamBytes)
            st.posMod -= st.streamBytes;
    }
    ++st.accesses;
    return rec;
}

TraceRecord
SyntheticSource::freshProducerConsumer(StreamState &st)
{
    const StreamSpec &spec = st.layout.spec;
    const unsigned word = profile_.wordBytes;
    const std::uint64_t buf = st.layout.perProcBytes;

    // Even epochs produce (write own buffer); odd epochs consume (read the
    // neighbour's buffer one epoch behind). All processors advance in
    // lockstep because the simulator interleaves them 1:1. pcEpoch,
    // pcWithin and pcOffset are the division-free forms of the original
    // accesses / epochLen and (accesses * word) % buf.
    TraceRecord rec;
    if ((st.pcEpoch & 1) == 0) {
        rec.type = AccessType::Write;
        rec.addr = st.myBase + st.pcOffset;
    } else {
        rec.type = AccessType::Read;
        std::uint64_t off = st.pcOffset + buf - st.pcLagMod;
        if (off >= buf)
            off -= buf;
        rec.addr = st.neighborBase + off;
    }
    ++st.accesses;
    if (++st.pcWithin == spec.epochLen) {
        st.pcWithin = 0;
        ++st.pcEpoch;
    }
    st.pcOffset += word;
    if (st.pcOffset >= buf)
        st.pcOffset -= buf;
    return rec;
}

TraceRecord
SyntheticSource::freshMigratory(StreamState &st)
{
    const StreamSpec &spec = st.layout.spec;
    const unsigned word = profile_.wordBytes;

    // Ownership rotates once per full sweep over a processor's share of
    // the objects, so every object is handed to the next processor right
    // after its read-modify-write visit -- classic migratory sharing.
    //
    // The original per-reference form divided a flat step counter
    // (accesses / 2) into sweep / slot / within digits; the cascading
    // counters below carry exactly those digits: migWithinWord wraps at
    // objWords and advances migSlot, migSlot wraps at migMine and
    // advances the sweep rotor. migSlotN is migSlot * nprocs kept
    // incrementally, and migRotor is (proc + n - sweep % n) % n, which a
    // sweep advance decrements cyclically.
    std::uint64_t obj = st.migSlotN + st.migRotor;
    while (obj >= st.migObjects)
        obj -= st.migObjects;  // <= ~nprocs/objects iterations

    TraceRecord rec;
    rec.type = (st.accesses & 1) == 0 ? AccessType::Read
                                      : AccessType::Write;
    rec.addr = st.layout.base + obj * spec.objectBytes + st.migWithinByte;
    ++st.accesses;
    if ((st.accesses & 1) == 0) {
        // A new step (word visit) begins on the next reference.
        ++st.migWithinWord;
        st.migWithinByte += word;
        if (st.migWithinWord == st.migObjWords) {
            st.migWithinWord = 0;
            st.migWithinByte = 0;
            ++st.migSlot;
            st.migSlotN += nprocs_;
            if (st.migSlot == st.migMine) {
                st.migSlot = 0;
                st.migSlotN = 0;
                st.migRotor =
                    st.migRotor == 0 ? nprocs_ - 1 : st.migRotor - 1;
            }
        }
    }
    return rec;
}

TraceRecord
SyntheticSource::freshReadShared(StreamState &st)
{
    const StreamSpec &spec = st.layout.spec;

    TraceRecord rec;
    rec.type = AccessType::Read;
    if (st.runLeft == 0) {
        const std::uint64_t hot =
            rng_.hotIndex(st.sharedWords, spec.hotBias);
        std::uint64_t start = hot + st.sharedRot;
        if (start >= st.sharedWords)
            start -= st.sharedWords;
        startBurst(st, st.layout.base, st.layout.totalBytes, start);
    }
    rec.addr = burstNext(st);
    ++st.accesses;
    return rec;
}

TraceRecord
SyntheticSource::freshNeighbor(StreamState &st)
{
    const StreamSpec &spec = st.layout.spec;
    const unsigned word = profile_.wordBytes;
    const std::uint64_t part = st.layout.perProcBytes;

    TraceRecord rec;
    if (rng_.chance(spec.remoteFraction)) {
        // Boundary read just behind the neighbour's sweep cursor. All
        // processors advance their partition walks at the same rate (the
        // simulator interleaves them 1:1), so our own cursor approximates
        // the neighbour's: the window [pos - boundary, pos) holds values
        // the neighbour produced recently, as in a bulk-synchronous mesh
        // relaxation. lag <= spanWords * word <= part, so both
        // reductions are single conditional subtracts.
        std::uint64_t lag = rng_.below(st.spanWords) * word + word;
        if (lag >= part)
            lag -= part;
        std::uint64_t off = st.posMod + part - lag;
        if (off >= part)
            off -= part;
        rec.type = AccessType::Read;
        rec.addr = st.neighborBase + off;
    } else {
        rec.type = drawType(spec.writeFraction);
        rec.addr = st.myBase + st.posMod;
        st.posMod += word;
        if (st.posMod >= part)
            st.posMod -= part;
    }
    ++st.accesses;
    return rec;
}

} // namespace

Workload::Workload(const AppProfile &profile, unsigned nprocs,
                   double accessScale, unsigned pageSpread)
    : profile_(profile), nprocs_(nprocs)
{
    if (nprocs == 0)
        fatal("Workload: need at least one processor");
    if (profile.streams.empty())
        fatal("Workload: profile has no streams");

    accessesPerProc_ = static_cast<std::uint64_t>(
        static_cast<double>(profile.accessesPerProc) * accessScale);
    if (accessesPerProc_ == 0)
        accessesPerProc_ = 1;

    // Bump-allocate regions; base chosen above zero so address 0 stays
    // free for "never used" sentinels in tests. Successive regions get an
    // extra stagger so their bases land at different L2 set offsets --
    // without it every region starts at the same sets and the hottest
    // lines of all streams fight for the same few L2 frames, which no
    // real heap layout does.
    Addr cursor = 0x1000'0000;
    unsigned region_idx = 0;
    for (const auto &spec : profile.streams) {
        StreamLayout l;
        l.spec = spec;
        cursor += (++region_idx) * 208 * KiB_ + kRegionAlign;
        l.base = cursor;
        const bool per_proc = spec.kind == StreamKind::Private ||
                              spec.kind == StreamKind::ProducerConsumer ||
                              spec.kind == StreamKind::Neighbor;
        if (per_proc) {
            l.perProcBytes = alignUp(spec.bytes);
            l.totalBytes = l.perProcBytes * nprocs;
        } else {
            l.perProcBytes = 0;
            l.totalBytes = alignUp(spec.bytes);
        }
        cursor += l.totalBytes;
        memAllocated_ += l.totalBytes;
        layouts_.push_back(l);
    }
    virtBase_ = 0x1000'0000;
    virtEnd_ = cursor;

    // Build the page table: scatter every virtual 4 KiB page over a frame
    // space pageSpread times larger via a seeded partial Fisher-Yates
    // shuffle, imitating OS physical page allocation.
    if (pageSpread < 1)
        pageSpread = 1;
    const std::uint64_t pages =
        (virtEnd_ - virtBase_ + kRegionAlign - 1) / kRegionAlign;
    const std::uint64_t frames = pages * pageSpread;
    std::vector<std::uint32_t> pool(frames);
    for (std::uint64_t i = 0; i < frames; ++i)
        pool[i] = static_cast<std::uint32_t>(i);
    Rng rng(profile.seed ^ 0xfeedface12345678ULL);
    pageFrames_.resize(pages);
    for (std::uint64_t i = 0; i < pages; ++i) {
        const std::uint64_t j = i + rng.below(frames - i);
        std::swap(pool[i], pool[j]);
        pageFrames_[i] = pool[i];
    }
}

Addr
Workload::translate(Addr vaddr) const
{
    if (vaddr < virtBase_ || vaddr >= virtEnd_)
        return vaddr;  // outside the laid-out regions: identity
    const std::uint64_t page = (vaddr - virtBase_) / kRegionAlign;
    return virtBase_ +
           static_cast<Addr>(pageFrames_[page]) * kRegionAlign +
           (vaddr & (kRegionAlign - 1));
}

TraceSourcePtr
Workload::makeSource(ProcId proc) const
{
    if (proc >= nprocs_)
        fatal("Workload::makeSource: processor id out of range");
    return std::make_unique<SyntheticSource>(*this, profile_, nprocs_, proc,
                                             accessesPerProc_, layouts_);
}

} // namespace jetty::trace
