#include "util/string_utils.hh"

#include <cctype>

namespace jetty
{

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
parseUnsigned(const std::string &s, unsigned &out)
{
    if (s.empty())
        return false;
    unsigned long v = 0;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        v = v * 10 + static_cast<unsigned long>(c - '0');
        if (v > 0xffffffffUL)
            return false;
    }
    out = static_cast<unsigned>(v);
    return true;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
toUpper(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
}

} // namespace jetty
