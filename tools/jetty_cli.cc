/**
 * @file
 * Command-line driver for the jetty library: run any workload on any
 * system variant with any set of filter configurations, print coverage
 * and energy tables, or capture/replay binary traces.
 *
 * Usage:
 *   jetty_cli run   [--app NAME] [--procs N] [--no-subblock]
 *                   [--scale F] [--filters SPEC[,SPEC...]]
 *   jetty_cli apps
 *   jetty_cli trace --app NAME --proc P --out FILE [--limit N]
 *   jetty_cli replay --in FILE[,FILE...] [--filters SPEC[,...]]
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/filter_spec.hh"
#include "experiments/experiments.hh"
#include "sim/latency.hh"
#include "trace/apps.hh"
#include "trace/trace_file.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/table.hh"

using namespace jetty;

namespace
{

/** Parse "--key value" style options into a map. */
std::map<std::string, std::string>
parseOptions(int argc, char **argv, int first)
{
    std::map<std::string, std::string> opts;
    for (int i = first; i < argc; ++i) {
        std::string key = argv[i];
        if (!startsWith(key, "--"))
            fatal("expected an option, got '" + key + "'");
        key = key.substr(2);
        if (key == "no-subblock") {
            opts[key] = "1";
        } else {
            if (i + 1 >= argc)
                fatal("option --" + key + " needs a value");
            opts[key] = argv[++i];
        }
    }
    return opts;
}

/** Split a filter list on commas, but not inside HJ(...) parentheses. */
std::vector<std::string>
splitSpecs(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(trim(cur));
    return out;
}

std::vector<std::string>
filterList(const std::map<std::string, std::string> &opts)
{
    std::vector<std::string> specs;
    auto it = opts.find("filters");
    if (it == opts.end()) {
        specs = {"EJ-32x4", "IJ-10x4x7", "HJ(IJ-10x4x7,EJ-32x4)"};
    } else {
        specs = splitSpecs(it->second);
    }
    for (const auto &s : specs) {
        if (!filter::isValidFilterSpec(s))
            fatal("bad filter spec '" + s + "'");
    }
    return specs;
}

void
printRunReport(const experiments::AppRunResult &run,
               const experiments::SystemVariant &variant,
               const std::vector<std::string> &specs)
{
    const auto agg = run.stats.aggregate();
    std::printf("%s: %.1fM refs, L1 %.1f%%, L2 %.1f%%, snoops miss "
                "%.1f%% of %.2fM probes\n\n",
                run.appName.c_str(), agg.accesses / 1e6,
                percent(agg.l1Hits, agg.accesses),
                percent(agg.l2LocalHits, agg.l2LocalAccesses),
                percent(agg.snoopMisses, agg.snoopTagProbes),
                agg.snoopTagProbes / 1e6);

    TextTable table;
    table.header({"filter", "coverage", "snoopE saved(S)", "allE saved(S)",
                  "snoopE saved(P)", "allE saved(P)", "mean snoop lat"});
    for (const auto &spec : specs) {
        const auto &fs = run.statsFor(spec);
        const auto s = experiments::evaluateEnergy(
            run, variant, spec, energy::AccessMode::Serial);
        const auto p = experiments::evaluateEnergy(
            run, variant, spec, energy::AccessMode::Parallel);
        const auto lat = sim::evaluateLatency(fs);
        table.row({
            spec,
            TextTable::pct(100.0 * fs.coverage()),
            TextTable::pct(s.reductionOverSnoopsPct),
            TextTable::pct(s.reductionOverAllPct),
            TextTable::pct(p.reductionOverSnoopsPct),
            TextTable::pct(p.reductionOverAllPct),
            TextTable::num(lat.jettyMeanCycles, 1) + " cyc",
        });
    }
    table.print();
}

int
cmdRun(const std::map<std::string, std::string> &opts)
{
    experiments::SystemVariant variant;
    if (opts.count("procs"))
        variant.nprocs = static_cast<unsigned>(
            std::atoi(opts.at("procs").c_str()));
    if (opts.count("no-subblock"))
        variant.subblocked = false;

    const double scale =
        opts.count("scale") ? std::atof(opts.at("scale").c_str()) : 0.25;
    const std::string app =
        opts.count("app") ? opts.at("app") : std::string("lu");
    const auto specs = filterList(opts);

    const auto run = experiments::runApp(trace::appByName(app), variant,
                                         specs, scale);
    printRunReport(run, variant, specs);
    return 0;
}

int
cmdApps()
{
    TextTable table;
    table.header({"tag", "name", "streams", "refs/proc"});
    for (const auto &app : trace::paperApps()) {
        table.row({app.abbrev, app.name,
                   TextTable::count(app.streams.size()),
                   TextTable::count(app.accessesPerProc)});
    }
    table.row({"ts", "ThroughputServer (extra)", "1", "-"});
    table.row({"ws", "WidelyShared (extra)", "2", "-"});
    table.print();
    return 0;
}

int
cmdTrace(const std::map<std::string, std::string> &opts)
{
    if (!opts.count("app") || !opts.count("out"))
        fatal("trace needs --app and --out");
    const unsigned proc = opts.count("proc")
                              ? static_cast<unsigned>(
                                    std::atoi(opts.at("proc").c_str()))
                              : 0;
    const std::uint64_t limit =
        opts.count("limit")
            ? static_cast<std::uint64_t>(std::atoll(opts.at("limit").c_str()))
            : 1'000'000;

    trace::Workload workload(trace::appByName(opts.at("app")), 4);
    auto src = workload.makeSource(proc);
    const auto recs = trace::collect(*src, limit);
    trace::writeTraceFile(opts.at("out"), recs);
    std::printf("wrote %zu references to %s\n", recs.size(),
                opts.at("out").c_str());
    return 0;
}

int
cmdReplay(const std::map<std::string, std::string> &opts)
{
    if (!opts.count("in"))
        fatal("replay needs --in FILE[,FILE...] (one per processor)");
    const auto files = split(opts.at("in"), ',');
    if (files.size() < 2)
        fatal("replay needs at least two trace files (one per processor)");

    experiments::SystemVariant variant;
    variant.nprocs = static_cast<unsigned>(files.size());
    sim::SmpConfig cfg = variant.smpConfig();
    cfg.filterSpecs = filterList(opts);

    sim::SmpSystem sys(cfg);
    std::vector<trace::TraceSourcePtr> sources;
    for (const auto &f : files) {
        sources.push_back(std::make_unique<trace::VectorTraceSource>(
            trace::readTraceFile(trim(f))));
    }
    sys.attachSources(std::move(sources));
    sys.run();

    const auto agg = sys.stats().aggregate();
    std::printf("replayed %.2fM refs on %zu processors; snoops miss "
                "%.1f%%\n\n",
                agg.accesses / 1e6, files.size(),
                percent(agg.snoopMisses, agg.snoopTagProbes));
    TextTable table;
    table.header({"filter", "coverage"});
    for (std::size_t i = 0; i < sys.bank(0).size(); ++i) {
        const auto merged = sys.mergedFilterStats(i);
        table.row({sys.bank(0).filterAt(i).name(),
                   TextTable::pct(100.0 * merged.coverage())});
    }
    table.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: jetty_cli run|apps|trace|replay [options]\n");
        return 1;
    }
    const std::string cmd = argv[1];
    const auto opts = parseOptions(argc, argv, 2);
    if (cmd == "run")
        return cmdRun(opts);
    if (cmd == "apps")
        return cmdApps();
    if (cmd == "trace")
        return cmdTrace(opts);
    if (cmd == "replay")
        return cmdReplay(opts);
    fatal("unknown command '" + cmd + "'");
}
