/**
 * @file
 * Client side of the experiment service (`jetty_cli submit`): connect
 * to a serve daemon's unix socket, send one framed request, read one
 * framed response.
 *
 * Both phases are bounded: connecting retries with deterministic
 * exponential backoff (50 ms doubling per attempt, capped at 1 s —
 * no jitter, so two identical invocations probe at identical offsets)
 * up to `retries` extra attempts within `timeoutSeconds`, and the
 * response read gives up after `timeoutSeconds` — a wedged daemon
 * yields a diagnostic, never a hung client.
 */

#ifndef JETTY_SERVICE_CLIENT_HH
#define JETTY_SERVICE_CLIENT_HH

#include <string>

#include "util/json.hh"

namespace jetty::service
{

struct ClientOptions
{
    /** Budget for the connect phase AND for awaiting the response. */
    double timeoutSeconds = 10.0;

    /** Connect attempts beyond the first (each preceded by the
     *  deterministic backoff sleep). */
    unsigned retries = 8;
};

/**
 * Connect to @p socketPath, retrying with bounded deterministic
 * backoff (a just-launched daemon needs a moment to bind).
 * @return the connected fd, or -1 with @p err set.
 */
int connectWithRetry(const std::string &socketPath,
                     const ClientOptions &opts, std::string *err);

/**
 * One request/response round trip on a fresh connection.
 * @return "" with @p response filled on success (the response may still
 *         carry ok=false — a server-side failure is the caller's to
 *         inspect); a transport failure or timeout otherwise.
 */
std::string requestResponse(const std::string &socketPath,
                            const json::Value &request,
                            json::Value &response,
                            const ClientOptions &opts = ClientOptions());

} // namespace jetty::service

#endif // JETTY_SERVICE_CLIENT_HH
