/**
 * @file
 * Bit-manipulation helpers used by cache index/tag extraction and the
 * JETTY index generators.
 */

#ifndef JETTY_UTIL_BITS_HH
#define JETTY_UTIL_BITS_HH

#include <cassert>
#include <cstdint>

#include "util/types.hh"

namespace jetty
{

/** Return true when @p v is a (non-zero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(@p v); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Ceiling of log2(@p v); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    assert(v != 0);
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/**
 * Extract the bit field [first, first+count) of @p v (LSB = bit 0).
 * A zero @p count yields 0; fields reaching past bit 63 are truncated.
 */
constexpr std::uint64_t
bitField(std::uint64_t v, unsigned first, unsigned count)
{
    if (count == 0 || first >= 64)
        return 0;
    v >>= first;
    if (count >= 64)
        return v;
    return v & ((std::uint64_t{1} << count) - 1);
}

/** Build a mask with bits [0, count) set. */
constexpr std::uint64_t
maskBits(unsigned count)
{
    return count >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << count) - 1;
}

/** Align @p a down to a multiple of the power-of-two @p unit. */
constexpr Addr
alignDown(Addr a, std::uint64_t unit)
{
    assert(isPowerOfTwo(unit));
    return a & ~(unit - 1);
}

} // namespace jetty

#endif // JETTY_UTIL_BITS_HH
