#include "verify/golden_smp.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"
#include "verify/format.hh"

namespace jetty::verify
{

using coherence::BusOp;
using coherence::State;

namespace
{

/**
 * The write-invalidate MOESI snooper rules, restated from the paper
 * rather than reusing coherence::snoopTransition — the golden model must
 * not inherit a bug from the table it is meant to check.
 */
State
goldenSnoopNext(State s, BusOp op, bool &supplied)
{
    supplied = false;
    switch (op) {
      case BusOp::BusRead:
        switch (s) {
          case State::Modified:
            supplied = true;
            return State::Owned;
          case State::Owned:
            supplied = true;
            return State::Owned;
          case State::Exclusive:
            supplied = true;
            return State::Shared;
          case State::Shared:
          case State::Invalid:
            return s;
        }
        break;
      case BusOp::BusReadX:
        supplied = s == State::Modified || s == State::Owned;
        return State::Invalid;
      case BusOp::BusUpgrade:
        return State::Invalid;
      case BusOp::BusWriteback:
        return s;
    }
    return s;
}


} // namespace

GoldenSmp::GoldenSmp(const sim::SmpConfig &cfg) : cfg_(cfg)
{
    if (cfg.nprocs < 2)
        fatal("GoldenSmp: an SMP needs at least two processors");
    if (cfg.l1.blockBytes != cfg.l2.unitBytes())
        fatal("GoldenSmp: the L1 line must equal the L2 coherence unit");

    unitMask_ = cfg.l2.unitBytes() - 1;
    blockMask_ = cfg.l2.blockBytes - 1;
    l1OffsetBits_ = floorLog2(cfg.l1.blockBytes);
    l1IndexBits_ = floorLog2(cfg.l1.sets());
    l2OffsetBits_ = floorLog2(cfg.l2.blockBytes);
    l2IndexBits_ = floorLog2(cfg.l2.sets());
    unitOffsetBits_ = floorLog2(cfg.l2.unitBytes());
    subblockBits_ =
        cfg.l2.subblocks == 1 ? 0 : floorLog2(cfg.l2.subblocks);

    if (cfg.snoopBuses < 1)
        fatal("GoldenSmp: need at least one snoop bus");
    busTransactions_.assign(cfg.snoopBuses, 0);
    procs_.resize(cfg.nprocs);
}

void
GoldenSmp::attachSources(std::vector<trace::TraceSourcePtr> sources)
{
    if (sources.size() != procs_.size())
        fatal("GoldenSmp::attachSources: need one source per processor");
    for (unsigned p = 0; p < procs_.size(); ++p) {
        procs_[p].source = std::move(sources[p]);
        procs_[p].done = procs_[p].source == nullptr;
    }
}

bool
GoldenSmp::step()
{
    bool any = false;
    for (unsigned p = 0; p < procs_.size(); ++p) {
        Proc &n = procs_[p];
        if (n.done)
            continue;
        trace::TraceRecord rec;
        if (!n.source->next(rec)) {
            n.done = true;
            continue;
        }
        any = true;
        access(p, rec.type, rec.addr);
    }
    return any;
}

void
GoldenSmp::run()
{
    while (step()) {
    }
}

std::uint64_t
GoldenSmp::l1SetOf(Addr a) const
{
    return bitField(a, l1OffsetBits_, l1IndexBits_);
}

std::uint64_t
GoldenSmp::l2SetOf(Addr a) const
{
    return bitField(a, l2OffsetBits_, l2IndexBits_);
}

unsigned
GoldenSmp::unitIndexOf(Addr a) const
{
    return static_cast<unsigned>(
        bitField(a, unitOffsetBits_, subblockBits_));
}

GoldenSmp::L1Line *
GoldenSmp::findL1(Proc &n, Addr lineAddr)
{
    auto it = n.l1.find(l1SetOf(lineAddr));
    if (it == n.l1.end())
        return nullptr;
    for (auto &line : it->second) {
        if (line.lineAddr == lineAddr)
            return &line;
    }
    return nullptr;
}

GoldenSmp::L2Block *
GoldenSmp::findL2(Proc &n, Addr blockAddr)
{
    auto it = n.l2.find(l2SetOf(blockAddr));
    if (it == n.l2.end())
        return nullptr;
    for (auto &b : it->second) {
        if (b.blockAddr == blockAddr)
            return &b;
    }
    return nullptr;
}

const GoldenSmp::L2Block *
GoldenSmp::findL2(const Proc &n, Addr blockAddr) const
{
    auto it = n.l2.find(l2SetOf(blockAddr));
    if (it == n.l2.end())
        return nullptr;
    for (const auto &b : it->second) {
        if (b.blockAddr == blockAddr)
            return &b;
    }
    return nullptr;
}

State
GoldenSmp::l2UnitState(const Proc &n, Addr unitAddr) const
{
    const L2Block *b = findL2(n, blockAlign(unitAddr));
    return b ? b->units[unitIndexOf(unitAddr)] : State::Invalid;
}

void
GoldenSmp::dropL1(Proc &n, Addr unit)
{
    auto it = n.l1.find(l1SetOf(unit));
    if (it == n.l1.end())
        return;
    auto &set = it->second;
    for (auto line = set.begin(); line != set.end(); ++line) {
        if (line->lineAddr == unit) {
            set.erase(line);
            return;
        }
    }
}

unsigned
GoldenSmp::broadcast(ProcId requester, BusOp op, Addr unit)
{
    // Independently restated split-bus interleave: a unit's home bus is
    // its L2 block index (integer division, not the interconnect's
    // shift) modulo the configured bus count. The routing never changes
    // what is broadcast — it only attributes the transaction.
    ++busTransactions_[(unit / cfg_.l2.blockBytes) % cfg_.snoopBuses];

    unsigned remote_copies = 0;
    for (unsigned q = 0; q < procs_.size(); ++q) {
        if (q == requester)
            continue;
        Proc &n = procs_[q];
        bool copy_here = false;

        // The write-back buffer is always snooped.
        for (auto e = n.wb.begin(); e != n.wb.end(); ++e) {
            if (e->unitAddr != unit)
                continue;
            copy_here = true;
            if (op == BusOp::BusReadX || op == BusOp::BusUpgrade) {
                n.wb.erase(e);  // requester takes ownership
            } else if (op == BusOp::BusRead &&
                       e->state == State::Modified) {
                e->state = State::Owned;  // no longer the only copy
            }
            break;
        }

        // The L2, under the locally restated MOESI rules.
        L2Block *b = findL2(n, blockAlign(unit));
        if (b) {
            State &s = b->units[unitIndexOf(unit)];
            const State before = s;
            bool supplied = false;
            s = goldenSnoopNext(before, op, supplied);
            if (coherence::isValid(before)) {
                copy_here = true;
                // Inclusion: the L1 copy goes whenever the unit leaves
                // or loses exclusivity.
                if (!coherence::isValid(s) || coherence::isWritable(before))
                    dropL1(n, unit);
            }
        }

        if (copy_here)
            ++remote_copies;
    }
    return remote_copies;
}

void
GoldenSmp::pushVictim(ProcId p, Addr unitAddr, State state)
{
    Proc &n = procs_[p];
    if (!coherence::isDirty(state))
        return;  // clean victims vanish (memory is current)
    if (n.wb.size() >= cfg_.wbEntries) {
        if (n.wb.empty())
            panic("GoldenSmp: dirty victim with a zero-entry WB");
        n.wb.pop_front();  // forced drain of the oldest victim
    }
    n.wb.push_back({unitAddr, state});
}

void
GoldenSmp::l2Fill(ProcId p, Addr unit, State state)
{
    Proc &n = procs_[p];
    const Addr block_addr = blockAlign(unit);
    L2Block *b = findL2(n, block_addr);
    if (!b) {
        auto &set = n.l2[l2SetOf(unit)];
        if (set.size() >= cfg_.l2.assoc) {
            // Evict the least recently used block; every valid unit of
            // it is a victim (inclusion purge, then dirty ones queue).
            auto lru = set.begin();
            for (auto it = set.begin(); it != set.end(); ++it) {
                if (it->lastUse < lru->lastUse)
                    lru = it;
            }
            for (unsigned u = 0; u < cfg_.l2.subblocks; ++u) {
                if (!coherence::isValid(lru->units[u]))
                    continue;
                const Addr ua =
                    lru->blockAddr +
                    static_cast<Addr>(u) * cfg_.l2.unitBytes();
                dropL1(n, ua);
                pushVictim(p, ua, lru->units[u]);
            }
            set.erase(lru);
        }
        L2Block fresh;
        fresh.blockAddr = block_addr;
        fresh.units.assign(cfg_.l2.subblocks, State::Invalid);
        set.push_back(std::move(fresh));
        b = &set.back();
    }
    b->lastUse = ++n.l2Clock;
    State &s = b->units[unitIndexOf(unit)];
    if (coherence::isValid(s))
        panic("GoldenSmp: fill into an already-valid unit");
    s = state;
}

State
GoldenSmp::fetchUnit(ProcId p, Addr unit, bool forWrite)
{
    Proc &n = procs_[p];

    // Reclaim from the local write-back buffer when possible.
    State fill_state = State::Invalid;
    bool in_wb = false;
    for (auto e = n.wb.begin(); e != n.wb.end(); ++e) {
        if (e->unitAddr == unit) {
            in_wb = true;
            fill_state = e->state;
            n.wb.erase(e);
            break;
        }
    }

    if (in_wb) {
        if (forWrite && !coherence::isWritable(fill_state)) {
            broadcast(p, BusOp::BusUpgrade, unit);
            fill_state = State::Modified;
        }
    } else {
        const BusOp op = forWrite ? BusOp::BusReadX : BusOp::BusRead;
        const unsigned remote = broadcast(p, op, unit);
        // Requester-side fill rules, restated: an exclusive fetch is
        // always Modified; a read fetch is Shared iff someone else holds
        // a copy, Exclusive otherwise.
        fill_state = forWrite ? State::Modified
                              : (remote > 0 ? State::Shared
                                            : State::Exclusive);
    }

    l2Fill(p, unit, fill_state);
    return fill_state;
}

void
GoldenSmp::l1Fill(ProcId p, Addr unit, bool writable)
{
    Proc &n = procs_[p];
    auto &set = n.l1[l1SetOf(unit)];
    if (set.size() >= cfg_.l1.assoc) {
        auto lru = set.begin();
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->lastUse < lru->lastUse)
                lru = it;
        }
        if (lru->dirty) {
            // Dirty L1 victim merges into its (present, by inclusion)
            // L2 unit; an Exclusive unit becomes Modified. The block's
            // LRU is deliberately not touched (the real system's
            // writeback path does not touch() either).
            L2Block *b = findL2(n, blockAlign(lru->lineAddr));
            if (!b)
                panic("GoldenSmp: dirty L1 victim without L2 block");
            State &s = b->units[unitIndexOf(lru->lineAddr)];
            if (s == State::Exclusive)
                s = State::Modified;
            else if (!coherence::isDirty(s))
                panic("GoldenSmp: dirty L1 victim over non-writable unit");
        }
        set.erase(lru);
    }
    L1Line line;
    line.lineAddr = unit;
    line.writable = writable;
    line.dirty = false;
    line.lastUse = ++n.l1Clock;
    set.push_back(line);
}

void
GoldenSmp::access(ProcId p, AccessType type, Addr addr)
{
    Proc &n = procs_[p];
    ++references_;
    const Addr unit = unitAlign(addr);
    const bool write = type == AccessType::Write;

    // ---- L1 ----
    if (L1Line *line = findL1(n, unit)) {
        line->lastUse = ++n.l1Clock;
        if (!write || line->writable) {
            if (write)
                line->dirty = true;
            return;
        }
        // Write hit without permission: obtain it from the L2.
        L2Block *b = findL2(n, blockAlign(unit));
        if (!b || !coherence::isValid(b->units[unitIndexOf(unit)]))
            panic("GoldenSmp: L1 line without a valid L2 unit");
        b->lastUse = ++n.l2Clock;
        State &s = b->units[unitIndexOf(unit)];
        if (coherence::isWritable(s)) {
            if (s == State::Exclusive)
                s = State::Modified;  // silent upgrade
        } else {
            broadcast(p, BusOp::BusUpgrade, unit);
            s = State::Modified;
        }
        line->writable = true;
        line->dirty = true;
        return;
    }

    // ---- L1 miss: go to the L2. ----
    State unit_state = l2UnitState(n, unit);
    const bool l2_hit = coherence::isValid(unit_state);

    if (l2_hit && write && !coherence::isWritable(unit_state)) {
        broadcast(p, BusOp::BusUpgrade, unit);
        findL2(n, blockAlign(unit))->units[unitIndexOf(unit)] =
            State::Modified;
        unit_state = State::Modified;
    }

    if (l2_hit) {
        L2Block *b = findL2(n, blockAlign(unit));
        b->lastUse = ++n.l2Clock;
        if (write && unit_state == State::Exclusive) {
            b->units[unitIndexOf(unit)] = State::Modified;
            unit_state = State::Modified;
        }
    } else {
        unit_state = fetchUnit(p, unit, write);
    }

    // ---- Fill the L1 (write-allocate). ----
    l1Fill(p, unit, coherence::isWritable(unit_state));
    if (write)
        findL1(n, unit)->dirty = true;
}

StateSnapshot
GoldenSmp::snapshot() const
{
    StateSnapshot snap;
    snap.procs.resize(procs_.size());
    for (unsigned p = 0; p < procs_.size(); ++p) {
        const Proc &n = procs_[p];
        ProcSnapshot &out = snap.procs[p];

        for (const auto &[set, lines] : n.l1) {
            static_cast<void>(set);
            for (const auto &line : lines)
                out.l1.push_back({line.lineAddr, line.writable, line.dirty});
        }
        std::sort(out.l1.begin(), out.l1.end(),
                  [](const mem::L1LineInfo &a, const mem::L1LineInfo &b) {
                      return a.lineAddr < b.lineAddr;
                  });

        for (const auto &[set, blocks] : n.l2) {
            static_cast<void>(set);
            for (const auto &b : blocks) {
                out.l2Blocks.push_back(b.blockAddr);
                for (unsigned u = 0; u < cfg_.l2.subblocks; ++u) {
                    if (coherence::isValid(b.units[u])) {
                        out.l2.push_back(
                            {b.blockAddr +
                                 static_cast<Addr>(u) * cfg_.l2.unitBytes(),
                             b.units[u]});
                    }
                }
            }
        }
        std::sort(out.l2Blocks.begin(), out.l2Blocks.end());
        std::sort(out.l2.begin(), out.l2.end(),
                  [](const mem::L2UnitInfo &a, const mem::L2UnitInfo &b) {
                      return a.unitAddr < b.unitAddr;
                  });

        out.wb.assign(n.wb.begin(), n.wb.end());
    }
    return snap;
}

std::vector<State>
GoldenSmp::globalUnitState(Addr unitAddr) const
{
    std::vector<State> states;
    states.reserve(procs_.size());
    for (const auto &n : procs_)
        states.push_back(l2UnitState(n, unitAlign(unitAddr)));
    return states;
}

StateSnapshot
snapshotOf(const sim::SmpSystem &sys)
{
    StateSnapshot snap;
    const unsigned nprocs = sys.config().nprocs;
    snap.procs.resize(nprocs);
    for (unsigned p = 0; p < nprocs; ++p) {
        ProcSnapshot &out = snap.procs[p];
        out.l1 = sys.l1(p).validLineInfo();
        out.l2Blocks = sys.l2(p).residentBlockAddrs();
        out.l2 = sys.l2(p).validUnitInfo();
        const auto &wb = sys.wb(p).entries();
        out.wb.assign(wb.begin(), wb.end());
    }
    return snap;
}

std::string
diffSnapshots(const StateSnapshot &golden, const StateSnapshot &actual)
{
    std::string diff;
    int reported = 0;
    const auto report = [&](const std::string &line) {
        if (reported < 8)
            diff += line + "\n";
        ++reported;
    };

    if (golden.procs.size() != actual.procs.size()) {
        return "processor count mismatch: golden " +
               std::to_string(golden.procs.size()) + " vs actual " +
               std::to_string(actual.procs.size()) + "\n";
    }

    for (unsigned p = 0; p < golden.procs.size(); ++p) {
        const ProcSnapshot &g = golden.procs[p];
        const ProcSnapshot &a = actual.procs[p];
        const std::string who = "proc " + std::to_string(p);

        if (g.l1.size() != a.l1.size()) {
            report(who + ": L1 line count golden " +
                   std::to_string(g.l1.size()) + " vs actual " +
                   std::to_string(a.l1.size()));
        } else {
            for (std::size_t i = 0; i < g.l1.size(); ++i) {
                if (g.l1[i].lineAddr != a.l1[i].lineAddr ||
                    g.l1[i].writable != a.l1[i].writable ||
                    g.l1[i].dirty != a.l1[i].dirty) {
                    report(who + ": L1 line " + std::to_string(i) +
                           " golden " + hexAddr(g.l1[i].lineAddr) + " w=" +
                           std::to_string(g.l1[i].writable) + " d=" +
                           std::to_string(g.l1[i].dirty) + " vs actual " +
                           hexAddr(a.l1[i].lineAddr) + " w=" +
                           std::to_string(a.l1[i].writable) + " d=" +
                           std::to_string(a.l1[i].dirty));
                }
            }
        }

        if (g.l2Blocks != a.l2Blocks)
            report(who + ": resident L2 block sets differ (golden " +
                   std::to_string(g.l2Blocks.size()) + " vs actual " +
                   std::to_string(a.l2Blocks.size()) + " blocks)");

        if (g.l2.size() != a.l2.size()) {
            report(who + ": valid L2 unit count golden " +
                   std::to_string(g.l2.size()) + " vs actual " +
                   std::to_string(a.l2.size()));
        } else {
            for (std::size_t i = 0; i < g.l2.size(); ++i) {
                if (g.l2[i].unitAddr != a.l2[i].unitAddr ||
                    g.l2[i].state != a.l2[i].state) {
                    report(who + ": L2 unit " + std::to_string(i) +
                           " golden " + hexAddr(g.l2[i].unitAddr) + " " +
                           coherence::stateName(g.l2[i].state) +
                           " vs actual " + hexAddr(a.l2[i].unitAddr) + " " +
                           coherence::stateName(a.l2[i].state));
                }
            }
        }

        if (g.wb.size() != a.wb.size()) {
            report(who + ": WB depth golden " +
                   std::to_string(g.wb.size()) + " vs actual " +
                   std::to_string(a.wb.size()));
        } else {
            for (std::size_t i = 0; i < g.wb.size(); ++i) {
                if (g.wb[i].unitAddr != a.wb[i].unitAddr ||
                    g.wb[i].state != a.wb[i].state) {
                    report(who + ": WB[" + std::to_string(i) +
                           "] golden " + hexAddr(g.wb[i].unitAddr) + " " +
                           coherence::stateName(g.wb[i].state) +
                           " vs actual " + hexAddr(a.wb[i].unitAddr) + " " +
                           coherence::stateName(a.wb[i].state));
                }
            }
        }
    }

    if (reported > 8) {
        diff += "... and " + std::to_string(reported - 8) +
                " more divergences\n";
    }
    return diff;
}

} // namespace jetty::verify
