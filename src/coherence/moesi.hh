/**
 * @file
 * MOESI coherence states and the transition tables used by the subblocked
 * L2. Coherence is maintained at the subblock (coherence-unit) level, as in
 * the paper's SPARC-like base system.
 */

#ifndef JETTY_COHERENCE_MOESI_HH
#define JETTY_COHERENCE_MOESI_HH

#include <cstdint>

namespace jetty::coherence
{

/** Per-coherence-unit MOESI state. */
enum class State : std::uint8_t
{
    Invalid,
    Shared,     //!< clean (or memory-consistent) copy, others may share
    Exclusive,  //!< clean, only copy
    Owned,      //!< dirty, others may share; this cache responds
    Modified,   //!< dirty, only copy
};

/** Printable state name. */
const char *stateName(State s);

/** True when the unit holds valid data. */
inline bool
isValid(State s)
{
    return s != State::Invalid;
}

/** True when the local processor may write without a bus transaction. */
inline bool
isWritable(State s)
{
    return s == State::Modified || s == State::Exclusive;
}

/** True when this cache is responsible for supplying data / writing back
 *  on eviction. */
inline bool
isDirty(State s)
{
    return s == State::Modified || s == State::Owned;
}

/** Bus transaction kinds of the write-invalidate protocol. */
enum class BusOp : std::uint8_t
{
    BusRead,      //!< read miss: fetch a shared/exclusive copy
    BusReadX,     //!< write miss: fetch an exclusive (M) copy
    BusUpgrade,   //!< write hit on a shared copy: invalidate others
    BusWriteback, //!< write-back buffer drains a dirty unit to memory
};

/** Printable bus-op name. */
const char *busOpName(BusOp op);

/** What a snooping cache does and reports for one snooped unit. */
struct SnoopOutcome
{
    State next = State::Invalid;  //!< state after the snoop
    bool hadCopy = false;         //!< unit was valid here (snoop "hit")
    bool supplied = false;        //!< this cache sourced the data
};

/**
 * Snooper-side transition: given the current state of the snooped unit and
 * the bus operation, return the outcome. Rules (write-invalidate MOESI):
 *  - BusRead:  M -> O (supply), O -> O (supply), E -> S (supply),
 *              S -> S, I -> I.
 *  - BusReadX/BusUpgrade: any valid -> I; M/O supply on BusReadX.
 *  - BusWriteback does not affect other caches.
 */
SnoopOutcome snoopTransition(State current, BusOp op);

/**
 * Requester-side fill state after a bus transaction completes.
 * @param op           the transaction performed.
 * @param anyRemoteCopy whether any other cache reported a valid copy.
 */
State fillState(BusOp op, bool anyRemoteCopy);

} // namespace jetty::coherence

#endif // JETTY_COHERENCE_MOESI_HH
