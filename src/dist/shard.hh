/**
 * @file
 * Wire envelope of the distributed sweep subsystem: the versioned
 * shard_request / shard_started / shard_response messages a coordinator
 * exchanges with its workers over any newline-delimited JSON stream
 * (service/protocol.hh framing — locally a pipe pair to a forked
 * `jetty_cli worker`, but nothing here assumes a transport).
 *
 *   request:  {"jetty_shard": 1, "type": "shard_request",
 *              "shardId": N, "attempt": N, "cacheKey": "...",
 *              "spec": {...standalone ExperimentSpec...}}
 *   started:  {"jetty_shard": 1, "type": "shard_started",
 *              "shardId": N, "attempt": N}
 *   response: {"jetty_shard": 1, "type": "shard_response",
 *              "shardId": N, "attempt": N, "ok": true/false,
 *              "error": "...", "simulated": N, "diskHits": N,
 *              "memHits": N, "wallSeconds": S,
 *              "results": [{"key": "...", "result": {...}}]}
 *
 * Every shard spec is a valid standalone ExperimentSpec (a one-cell
 * sweep), and every result cell is keyed by the same canonical
 * runCacheKey text the RunCache uses — the coordinator and the worker
 * each derive the key independently, so a disagreement is detected as a
 * cross-process determinism violation instead of silently merging the
 * wrong cell.
 *
 * Readers are validating (run_result_json.cc pattern) and report the
 * first failure with a dotted path ("shard_response.jetty_shard:
 * version 2 not supported ..."), so a schema-version mismatch or a
 * malformed field names exactly where the wire and this build disagree.
 */

#ifndef JETTY_DIST_SHARD_HH
#define JETTY_DIST_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "api/experiment_spec.hh"
#include "experiments/experiments.hh"
#include "util/json.hh"

namespace jetty::dist
{

/** Shard envelope version; both directions check it and reject what
 *  they do not speak (the payload spec/results carry their own schema
 *  versions, so this only guards the shard framing). */
constexpr std::uint64_t kShardVersion = 1;

/** One unit of distributable work: a standalone one-cell spec. */
struct ShardRequest
{
    std::uint64_t shardId = 0;
    std::uint64_t attempt = 0;  //!< 1-based; bumped per (re)assignment
    std::string cacheKey;       //!< canonical runCacheKey of the cell
    json::Value spec;           //!< standalone ExperimentSpec document
};

/** One merged result cell: canonical key plus the full run result. */
struct ShardCell
{
    std::string key;
    experiments::AppRunResult result;
};

/** A worker's answer for one shard (ok=false carries the diagnostic;
 *  the results array may legally be empty — an empty shard merges as a
 *  no-op and campaign completeness is checked per cell, not per
 *  message). */
struct ShardResponse
{
    std::uint64_t shardId = 0;
    std::uint64_t attempt = 0;
    bool ok = false;
    std::string error;
    std::uint64_t simulated = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t memHits = 0;
    double wallSeconds = 0;
    std::vector<ShardCell> results;
};

/** Canonical RunCache key of one expanded cell — the identity runMany()
 *  itself caches under, shared by coordinator and worker so both sides
 *  derive it independently. */
std::string cellCacheKey(const experiments::RunRequest &req);

/** The standalone one-cell spec for one expanded request of a resolved
 *  sweep spec: the sweep spec with the cell's (procs, buses) pinned on
 *  both the machine and the sweep axes, the cell's app as the only
 *  workload entry, and the coordinator's canonical filter names (worker
 *  re-canonicalization is idempotent). */
api::ExperimentSpec shardSpec(const api::ExperimentSpec &sweep,
                              const std::vector<std::string> &canonicalFilters,
                              const experiments::RunRequest &req);

/** The "type" discriminator of a parsed shard line ("" when absent). */
std::string shardMessageType(const json::Value &v);

json::Value shardRequestToJson(const ShardRequest &req);
json::Value shardStartedToJson(std::uint64_t shardId, std::uint64_t attempt);
json::Value shardResponseToJson(const ShardResponse &resp);

/** Validating readers: @return "" on success, else a dotted-path
 *  diagnostic ("shard_request.cacheKey: not a string"). @p out is only
 *  assigned on success. */
std::string shardRequestFromJson(const json::Value &v, ShardRequest &out);
std::string shardResponseFromJson(const json::Value &v, ShardResponse &out);

} // namespace jetty::dist

#endif // JETTY_DIST_SHARD_HH
