// Fixture: the struct side of the lossless-serialization contract.
// `upgrades` is deliberately omitted from the X-macro list in
// ../experiments/run_result_json.cc — the lint must name it.
#include <cstdint>

namespace jetty::sim
{

struct BusStats
{
    std::uint64_t transactions = 0;
    std::uint64_t reads = 0;
    std::uint64_t readXs = 0;
    std::uint64_t upgrades = 0;  // line 14: missing from the X list
};

} // namespace jetty::sim
