#include "dist/coordinator.hh"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "service/executor.hh"
#include "util/logging.hh"

namespace jetty::dist
{

using Clock = std::chrono::steady_clock;

json::Value
ShardEvent::toJson() const
{
    json::Value v = json::Value::object();
    v.set("type", type);
    v.set("shard", shardId);
    v.set("attempt", attempt);
    v.set("worker", worker);
    v.set("wall_seconds", wallSeconds);
    v.set("simulated", simulated);
    v.set("disk_hits", diskHits);
    v.set("mem_hits", memHits);
    v.set("detail", detail);
    return v;
}

MergeTable::MergeTable(std::vector<std::string> cellKeys)
    : keys_(std::move(cellKeys)), filled_(keys_.size(), false),
      cells_(keys_.size())
{
    for (std::size_t i = 0; i < keys_.size(); ++i)
        index_.emplace(keys_[i], i);
}

std::string
MergeTable::apply(const ShardResponse &resp, std::uint64_t *duplicates)
{
    for (std::size_t i = 0; i < resp.results.size(); ++i) {
        const ShardCell &cell = resp.results[i];
        const auto it = index_.find(cell.key);
        if (it == index_.end()) {
            return "shard_response.results[" + std::to_string(i) +
                   "].key: unknown cell key '" + cell.key + "'";
        }
        if (filled_[it->second]) {
            // First-writer-wins: the earlier answer (same canonical
            // cell, so a value-identical simulation) stays.
            if (duplicates)
                ++*duplicates;
            continue;
        }
        cells_[it->second] = cell.result;
        filled_[it->second] = true;
    }
    return "";
}

bool
MergeTable::complete() const
{
    return std::find(filled_.begin(), filled_.end(), false) ==
           filled_.end();
}

std::vector<std::string>
MergeTable::missingKeys() const
{
    std::vector<std::string> missing;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (!filled_[i])
            missing.push_back(keys_[i]);
    }
    return missing;
}

std::vector<experiments::AppRunResult>
MergeTable::takeRuns()
{
    if (!complete())
        panic("MergeTable::takeRuns() with unfilled cells");
    return std::move(cells_);
}

Coordinator::Coordinator(CoordinatorConfig cfg) : cfg_(std::move(cfg)) {}

Coordinator::~Coordinator()
{
    for (std::size_t w = 0; w < workers_.size(); ++w)
        closeWorker(w);
}

void
Coordinator::attachWorker(const WorkerEndpoint &ep)
{
    Worker wk;
    wk.ep = ep;
    wk.reader = std::make_unique<service::LineReader>(ep.readFd);
    workers_.push_back(std::move(wk));
}

void
Coordinator::closeWorker(std::size_t w)
{
    Worker &wk = workers_[w];
    if (wk.ep.writeFd >= 0)
        ::close(wk.ep.writeFd);
    if (wk.ep.readFd >= 0 && wk.ep.readFd != wk.ep.writeFd)
        ::close(wk.ep.readFd);
    wk.ep.writeFd = wk.ep.readFd = -1;
    if (wk.ep.pid >= 0) {
        // The worker saw EOF on its request fd (or died — that is why
        // we are here); it exits its loop promptly, so a blocking reap
        // is bounded by its in-flight shard.
        int status = 0;
        while (::waitpid(static_cast<pid_t>(wk.ep.pid), &status, 0) < 0 &&
               errno == EINTR) {
        }
        wk.ep.pid = -1;
    }
    wk.alive = false;
}

bool
Coordinator::trySpawn(std::string *err)
{
    if (!cfg_.factory)
        return false;
    WorkerEndpoint ep;
    if (!cfg_.factory(ep, err))
        return false;
    attachWorker(ep);
    return true;
}

void
Coordinator::emit(ShardEvent ev)
{
    if (cfg_.eventSink)
        cfg_.eventSink(ev);
    if (out_)
        out_->events.push_back(std::move(ev));
}

void
Coordinator::assign(std::size_t w, std::size_t s, bool stolen)
{
    Worker &wk = workers_[w];
    ShardState &st = shards_[s];
    ++st.attempts;
    ++st.outstanding;
    wk.busy = true;
    wk.shard = s;
    wk.attempt = st.attempts;
    wk.assignedAt = Clock::now();

    ShardEvent ev;
    ev.type = stolen ? "stolen" : "assigned";
    ev.shardId = s;
    ev.attempt = st.attempts;
    ev.worker = static_cast<int>(w);
    emit(std::move(ev));

    ShardRequest req;
    req.shardId = s;
    req.attempt = st.attempts;
    req.cacheKey = keys_[s];
    req.spec = shardSpecs_[s];
    std::string err;
    if (!service::sendValue(wk.ep.writeFd, shardRequestToJson(req), &err))
        workerDied(w, "send: " + err);
}

void
Coordinator::shardFailed(std::size_t s, int worker, const std::string &why)
{
    ShardState &st = shards_[s];
    ++st.failures;
    if (st.failures > cfg_.maxRetries) {
        if (fail_.empty()) {
            fail_ = "shard " + std::to_string(s) + " failed after " +
                    std::to_string(st.failures) + " attempt(s): " + why;
        }
        return;
    }
    pending_.push_back(s);
    if (out_)
        ++out_->retried;
    ShardEvent ev;
    ev.type = "retried";
    ev.shardId = s;
    ev.attempt = st.attempts;
    ev.worker = worker;
    ev.detail = why;
    emit(std::move(ev));
}

void
Coordinator::workerDied(std::size_t w, const std::string &why)
{
    Worker &wk = workers_[w];
    const bool wasBusy = wk.busy;
    const std::size_t s = wk.shard;
    wk.busy = false;
    closeWorker(w);

    ShardEvent ev;
    ev.type = "worker_died";
    ev.worker = static_cast<int>(w);
    if (wasBusy) {
        ev.shardId = s;
        ev.attempt = wk.attempt;
    }
    ev.detail = why;
    emit(std::move(ev));

    if (wasBusy) {
        ShardState &st = shards_[s];
        --st.outstanding;
        // With a stolen copy still in flight the shard needs no retry
        // yet; if that copy dies too, its own death re-queues it.
        if (!st.done && st.outstanding == 0) {
            shardFailed(s, static_cast<int>(w),
                        "worker died mid-shard: " + why);
        }
    }

    if (respawnsUsed_ < cfg_.maxRespawns && cfg_.factory) {
        std::string err;
        if (trySpawn(&err)) {
            ++respawnsUsed_;
        } else if (!err.empty()) {
            warn("dist: worker respawn failed: " + err);
        }
    }
}

void
Coordinator::handleLine(std::size_t w)
{
    Worker &wk = workers_[w];
    std::string line;
    std::string err;
    const int got = wk.reader->readLine(line, &err);
    if (got == 0) {
        workerDied(w, "connection closed");
        return;
    }
    if (got < 0) {
        workerDied(w, err);
        return;
    }
    const json::Value msg = json::parse(line, &err);
    if (!err.empty()) {
        workerDied(w, "protocol breach (unparseable line): " + err);
        return;
    }
    const std::string type = shardMessageType(msg);
    if (type == "shard_started") {
        ShardEvent ev;
        ev.type = "started";
        ev.shardId = wk.shard;
        ev.attempt = wk.attempt;
        ev.worker = static_cast<int>(w);
        emit(std::move(ev));
        return;
    }
    if (type != "shard_response") {
        workerDied(w, "protocol breach (unexpected message type '" + type +
                          "')");
        return;
    }
    ShardResponse resp;
    const std::string perr = shardResponseFromJson(msg, resp);
    if (!perr.empty()) {
        workerDied(w, perr);
        return;
    }
    if (!wk.busy || resp.shardId != wk.shard) {
        workerDied(w, "protocol breach (response for shard " +
                          std::to_string(resp.shardId) +
                          " it was not assigned)");
        return;
    }

    const std::size_t s = wk.shard;
    wk.busy = false;
    ShardState &st = shards_[s];
    --st.outstanding;

    if (st.done) {
        // A stolen shard completed twice; the first answer already
        // merged (first-writer-wins), this one is logged and dropped.
        if (out_)
            ++out_->duplicates;
        ShardEvent ev;
        ev.type = "duplicate";
        ev.shardId = s;
        ev.attempt = resp.attempt;
        ev.worker = static_cast<int>(w);
        ev.detail = "first-writer-wins; late result discarded";
        emit(std::move(ev));
        return;
    }
    if (!resp.ok) {
        shardFailed(s, static_cast<int>(w), resp.error);
        return;
    }
    std::uint64_t dups = 0;
    const std::string merr = table_->apply(resp, &dups);
    if (!merr.empty()) {
        if (fail_.empty())
            fail_ = merr;
        return;
    }
    st.done = true;
    if (out_) {
        out_->duplicates += dups;
        out_->simulated += resp.simulated;
        out_->diskHits += resp.diskHits;
        out_->memHits += resp.memHits;
    }
    if (ledger_.isOpen()) {
        const std::string lerr = ledger_.publish(keys_[s], resp);
        if (!lerr.empty())
            warn("dist: ledger publish failed: " + lerr);
    }
    ShardEvent ev;
    ev.type = "completed";
    ev.shardId = s;
    ev.attempt = resp.attempt;
    ev.worker = static_cast<int>(w);
    ev.wallSeconds = resp.wallSeconds;
    ev.simulated = resp.simulated;
    ev.diskHits = resp.diskHits;
    ev.memHits = resp.memHits;
    emit(std::move(ev));
}

std::string
Coordinator::run(const api::ExperimentSpec &spec, CampaignResult &out)
{
    const auto tStart = Clock::now();

    out = CampaignResult();
    out_ = &out;
    out.spec = spec;
    out.filterNames = service::canonicalFilterNames(spec);
    out.requests = spec.expand();
    for (auto &req : out.requests)
        req.filterSpecs = out.filterNames;
    if (out.requests.empty())
        return "sweep expands to zero cells";

    const std::size_t n = out.requests.size();
    out.shards = n;
    shards_.assign(n, ShardState());
    keys_.clear();
    shardSpecs_.clear();
    for (const auto &req : out.requests) {
        keys_.push_back(cellCacheKey(req));
        shardSpecs_.push_back(
            shardSpec(spec, out.filterNames, req).toJson());
    }
    table_ = std::make_unique<MergeTable>(keys_);

    if (!cfg_.ledgerDir.empty()) {
        const std::string lerr = ledger_.open(cfg_.ledgerDir);
        if (!lerr.empty())
            return lerr;
    }
    for (std::size_t s = 0; s < n; ++s) {
        ShardResponse resumed;
        if (ledger_.isOpen() && ledger_.lookup(keys_[s], resumed) &&
            resumed.ok && table_->apply(resumed, nullptr).empty()) {
            shards_[s].done = true;
            ++out.resumed;
            ShardEvent ev;
            ev.type = "resumed";
            ev.shardId = s;
            ev.wallSeconds = resumed.wallSeconds;
            ev.detail = "loaded from ledger " + ledger_.dir();
            emit(std::move(ev));
            continue;
        }
        pending_.push_back(s);
    }

    for (unsigned i = 0; i < cfg_.spawnWorkers; ++i) {
        std::string serr;
        if (!trySpawn(&serr)) {
            return "failed to spawn worker " + std::to_string(i) + ": " +
                   (serr.empty() ? "no worker factory configured" : serr);
        }
    }

    auto allDone = [this]() {
        for (const auto &st : shards_) {
            if (!st.done)
                return false;
        }
        return true;
    };
    auto nextPending = [this]() -> long {
        while (!pending_.empty()) {
            const std::size_t s = pending_.front();
            if (shards_[s].done) {
                pending_.pop_front();
                continue;
            }
            return static_cast<long>(s);
        }
        return -1;
    };

    while (!allDone() && fail_.empty()) {
        // 1. Dispatch queued shards to idle workers.
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            if (!workers_[w].alive || workers_[w].busy)
                continue;
            const long s = nextPending();
            if (s < 0)
                break;
            pending_.pop_front();
            assign(w, static_cast<std::size_t>(s), false);
        }
        if (fail_.empty() && !allDone() && nextPending() < 0 &&
            cfg_.stealAfterSeconds > 0) {
            // 2. Queue empty, work still in flight: put idle workers on
            // the oldest straggler (one steal per shard at a time).
            for (std::size_t w = 0; w < workers_.size(); ++w) {
                if (!workers_[w].alive || workers_[w].busy)
                    continue;
                long victim = -1;
                for (std::size_t v = 0; v < workers_.size(); ++v) {
                    const Worker &wv = workers_[v];
                    if (!wv.alive || !wv.busy ||
                        shards_[wv.shard].done ||
                        shards_[wv.shard].outstanding != 1)
                        continue;
                    const double elapsed =
                        std::chrono::duration<double>(Clock::now() -
                                                      wv.assignedAt)
                            .count();
                    if (elapsed <= cfg_.stealAfterSeconds)
                        continue;
                    if (victim < 0 ||
                        wv.assignedAt <
                            workers_[static_cast<std::size_t>(victim)]
                                .assignedAt)
                        victim = static_cast<long>(v);
                }
                if (victim < 0)
                    break;
                const std::size_t s =
                    workers_[static_cast<std::size_t>(victim)].shard;
                assign(w, s, true);
                ++out.stolen;
            }
        }
        if (!fail_.empty() || allDone())
            break;

        // 3. Wait for responses (or deaths) on every live worker.
        std::vector<struct pollfd> fds;
        std::vector<std::size_t> fdWorker;
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            if (!workers_[w].alive)
                continue;
            fds.push_back({workers_[w].ep.readFd, POLLIN, 0});
            fdWorker.push_back(w);
        }
        if (fds.empty()) {
            std::string serr;
            if (respawnsUsed_ < cfg_.maxRespawns && trySpawn(&serr)) {
                ++respawnsUsed_;
                continue;
            }
            return "every worker died with " +
                   std::to_string(table_->missingKeys().size()) +
                   " cell(s) unfinished" +
                   (serr.empty() ? "" : " (respawn failed: " + serr + ")");
        }
        const int ready =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return "poll: " + std::string(std::strerror(errno));
        }
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            const std::size_t w = fdWorker[i];
            handleLine(w);
            // One read() can buffer several lines (shard_started plus
            // an instant cache-hit response); poll() cannot see the
            // reader's userspace buffer, so drain it before sleeping —
            // an undrained line would wedge the campaign.
            while (workers_[w].alive &&
                   workers_[w].reader->hasBufferedLine())
                handleLine(w);
        }
    }

    // Wind down before reporting: workers see EOF and exit, so callers
    // can join worker threads / reap processes deterministically.
    for (std::size_t w = 0; w < workers_.size(); ++w)
        closeWorker(w);

    if (!fail_.empty())
        return fail_;
    if (!table_->complete()) {
        const auto missing = table_->missingKeys();
        return "campaign finished with " + std::to_string(missing.size()) +
               " unfilled cell(s); first missing key: " + missing.front();
    }
    out.runs = table_->takeRuns();
    out.report = service::buildReport(spec, "sweep", out.filterNames,
                                      out.requests, out.runs);
    out.wallSeconds =
        std::chrono::duration<double>(Clock::now() - tStart).count();
    out_ = nullptr;
    return "";
}

} // namespace jetty::dist
