/**
 * @file
 * The named application profiles of the paper's evaluation (Table 2):
 * Barnes, Cholesky, Em3d, Fft, Fmm, Lu, Ocean, Radix, Raytrace and
 * Unstructured, plus a multiprogrammed "throughput server" workload used
 * by the examples (Section 2's throughput-engine argument).
 *
 * Each profile is a synthetic stand-in tuned to land in the paper's
 * behavioural regime: L1/L2 local hit rates (Table 2) and the remote-hit
 * distribution of snoops (Table 3). EXPERIMENTS.md records the achieved
 * vs published values.
 */

#ifndef JETTY_TRACE_APPS_HH
#define JETTY_TRACE_APPS_HH

#include <string>
#include <vector>

#include "trace/app_profile.hh"

namespace jetty::trace
{

/** All ten paper applications, in Table 2 order. */
std::vector<AppProfile> paperApps();

/** Look up one paper application by its two-letter tag ("ba".."un") or
 *  full name (case-insensitive). Calls fatal() when unknown. */
AppProfile appByName(const std::string &name);

/** True when appByName(@p name) would resolve (non-fatal probe — spec
 *  validation rejects typos with a message instead of exiting). */
bool appKnown(const std::string &name);

/** A multiprogrammed workload: every processor runs an independent
 *  program, so virtually every snoop misses everywhere. */
AppProfile throughputServer();

/** A worst-case-for-JETTY workload: a widely read-shared region that every
 *  processor caches, so snoops often hit (Section 2's caveat). */
AppProfile widelyShared();

} // namespace jetty::trace

#endif // JETTY_TRACE_APPS_HH
