#include "core/region_filter.hh"

#include "energy/sram_array.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace jetty::filter
{

RegionFilter::RegionFilter(const RegionFilterConfig &cfg,
                           const AddressMap &amap)
    : cfg_(cfg), amap_(amap)
{
    if (cfg.entryBits == 0 || cfg.entryBits > 24 ||
        cfg.regionBits < amap.blockOffsetBits || cfg.regionBits > 30) {
        fatal("RegionFilter: bad geometry");
    }
    counterBits_ = ceilLog2(amap.l2CapacityUnits + 1);
    counts_.assign(std::uint64_t{1} << cfg.entryBits, 0);
}

std::uint64_t
RegionFilter::indexOf(Addr unitAddr) const
{
    // Fibonacci-hash the region number so contiguous regions spread over
    // the table; a plain bit-slice would alias page-scrambled traffic
    // onto few entries.
    const std::uint64_t region = unitAddr >> cfg_.regionBits;
    return (region * 0x9e3779b97f4a7c15ULL) >> (64 - cfg_.entryBits);
}

bool
RegionFilter::probe(Addr unitAddr)
{
    return counts_[indexOf(unitAddr)] == 0;
}

void
RegionFilter::onFill(Addr unitAddr)
{
    ++counts_[indexOf(unitAddr)];
}

void
RegionFilter::onEvict(Addr unitAddr)
{
    std::uint32_t &c = counts_[indexOf(unitAddr)];
    if (c == 0)
        panic("RegionFilter: counter underflow (fill/evict imbalance)");
    --c;
}

void
RegionFilter::clear()
{
    for (auto &c : counts_)
        c = 0;
}

StorageBreakdown
RegionFilter::storage() const
{
    StorageBreakdown s;
    const std::uint64_t entries = std::uint64_t{1} << cfg_.entryBits;
    s.presenceBits = entries;  // one p-bit per entry
    s.counterBits = entries * counterBits_;
    return s;
}

energy::FilterEnergyCosts
RegionFilter::energyCosts(const energy::Technology &tech) const
{
    // One p-bit array probe per snoop; counter read-modify-write per
    // fill/evict, like the Include-JETTY's bookkeeping.
    const std::uint64_t entries = std::uint64_t{1} << cfg_.entryBits;
    const std::uint64_t rows = std::uint64_t{1} << (cfg_.entryBits / 2);
    energy::SramArray pbit(rows, entries / rows, 1, tech);
    const unsigned cnt_banks = energy::SramArray::optimalBanks(
        entries, counterBits_, tech, 64, counterBits_);
    energy::SramArray cnt(entries, counterBits_, cnt_banks, tech);

    energy::FilterEnergyCosts costs;
    costs.probe = pbit.readEnergy(1);
    costs.snoopAlloc = 0.0;
    costs.fillUpdate = cnt.readEnergy(0) + cnt.writeEnergy(counterBits_) +
                       pbit.writeEnergy(1);
    costs.evictUpdate = costs.fillUpdate;
    return costs;
}

std::string
RegionFilter::name() const
{
    return "RF-" + std::to_string(cfg_.entryBits) + "x" +
           std::to_string(cfg_.regionBits);
}

} // namespace jetty::filter
