#include "sim/interconnect.hh"

#include "util/logging.hh"

namespace jetty::sim
{

Interconnect::Interconnect(unsigned buses, unsigned blockOffsetBits)
    : buses_(buses), blockOffsetBits_(blockOffsetBits),
      busesPow2_(buses >= 1 && (buses & (buses - 1)) == 0)
{
    if (buses_ < 1)
        fatal("Interconnect: need at least one snoop bus");
}

} // namespace jetty::sim
