/**
 * @file
 * Regenerates Figure 5: snoop-miss coverage of the Include-JETTY family
 * (a) and of the Hybrid-JETTY combinations (b).
 *
 * Declarative: one up-front request covers both panels, each panel then
 * pulls its own view from the run cache (no re-simulation per table).
 *
 * Paper reference: IJ-10x4x7 best IJ at ~57% average coverage (IJ-9x4x7
 * ~53%); hybrids beat both constituents everywhere, the best,
 * (IJ-10x4x7, EJ-32x4), reaching ~76% average coverage, and even the
 * small (IJ-8x4x7, EJ-16x2) about 65%.
 */

#include <cstdio>

#include "core/filter_spec.hh"
#include "experiments/experiments.hh"
#include "util/table.hh"

using namespace jetty;

namespace
{

/** Fetch the panel's runs from the experiment layer and tabulate. */
void
printCoverage(const char *title, const experiments::SystemVariant &variant,
              const std::vector<std::string> &specs,
              const std::vector<std::string> &labels)
{
    const auto runs = experiments::runAllApps(variant, specs,
                                              experiments::defaultScale());

    TextTable table;
    std::vector<std::string> head{"App"};
    for (const auto &l : labels)
        head.push_back(l);
    table.header(head);

    std::vector<double> avg(specs.size(), 0.0);
    for (const auto &run : runs) {
        std::vector<std::string> row{run.abbrev};
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const double cov = 100.0 * run.statsFor(specs[i]).coverage();
            avg[i] += cov;
            row.push_back(TextTable::pct(cov));
        }
        table.row(std::move(row));
    }
    std::vector<std::string> row{"AVG"};
    for (auto &a : avg)
        row.push_back(TextTable::pct(a / static_cast<double>(runs.size())));
    table.row(std::move(row));

    std::printf("%s\n\n", title);
    table.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    experiments::SystemVariant variant;

    // Declare both panels' runs; one parallel sweep fills the cache.
    std::vector<std::string> specs = filter::paperIncludeSpecs();
    for (const auto &s : filter::paperHybridSpecs())
        specs.push_back(s);
    experiments::runAllApps(variant, specs, experiments::defaultScale());

    printCoverage("Figure 5(a): Include-JETTY coverage", variant,
                  filter::paperIncludeSpecs(), filter::paperIncludeSpecs());

    printCoverage(
        "Figure 5(b): Hybrid-JETTY coverage\n"
        "Ia=IJ-10x4x7 Ib=IJ-9x4x7 Ic=IJ-8x4x7 Ea=EJ-32x4 Eb=EJ-16x2",
        variant, filter::paperHybridSpecs(),
        {"(Ia,Ea)", "(Ib,Ea)", "(Ic,Ea)", "(Ia,Eb)", "(Ib,Eb)", "(Ic,Eb)"});

    std::printf("Paper reference: IJ-10x4x7 ~57%% avg; HJ(IJ-10x4x7,"
                "EJ-32x4) ~76%% avg; HJ(IJ-8x4x7,EJ-16x2) ~65%% avg.\n");
    return 0;
}
