#include "dist/ledger.hh"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

#include "experiments/disk_cache.hh"

namespace jetty::dist
{

namespace
{

/** mkdir -p; @return "" or the first failure (EEXIST is success). */
std::string
makeDirs(const std::string &path)
{
    std::string partial;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            partial += path[i];
            continue;
        }
        if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 &&
            errno != EEXIST) {
            return "mkdir " + partial + ": " + std::strerror(errno);
        }
        if (i < path.size())
            partial += '/';
    }
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        return path + " is not a directory";
    return "";
}

} // namespace

std::string
Ledger::open(const std::string &dir)
{
    if (dir.empty())
        return "ledger: empty directory path";
    const std::string err = makeDirs(dir);
    if (!err.empty())
        return "ledger: " + err;
    dir_ = dir;
    return "";
}

std::string
Ledger::entryFileFor(const std::string &key)
{
    // Same 16-hex FNV-1a naming as the disk RunCache tier, so the two
    // resume stores stay visually and structurally parallel on disk.
    return experiments::DiskCache::entryFileFor(key);
}

bool
Ledger::lookup(const std::string &key, ShardResponse &out) const
{
    if (!isOpen())
        return false;
    std::string err;
    const json::Value v =
        json::parseFile(dir_ + "/" + entryFileFor(key), &err);
    if (!err.empty() || !v.isObject())
        return false;
    const json::Value *ver = v.find("jetty_shard_ledger");
    if (!ver || !ver->isNumber() || !ver->fitsU64() ||
        ver->asU64() != kLedgerVersion)
        return false;
    // A filename-hash collision surfaces as an embedded-key mismatch:
    // a miss, never the wrong cell.
    const json::Value *embedded = v.find("key");
    if (!embedded || !embedded->isString() || embedded->asString() != key)
        return false;
    const json::Value *resp = v.find("response");
    if (!resp)
        return false;
    ShardResponse parsed;
    if (!shardResponseFromJson(*resp, parsed).empty())
        return false;
    out = std::move(parsed);
    return true;
}

std::string
Ledger::publish(const std::string &key, const ShardResponse &resp) const
{
    if (!isOpen())
        return "ledger: not open";
    json::Value v = json::Value::object();
    v.set("jetty_shard_ledger", kLedgerVersion);
    v.set("key", key);
    v.set("response", shardResponseToJson(resp));
    return json::writeFileErr(dir_ + "/" + entryFileFor(key), v);
}

} // namespace jetty::dist
