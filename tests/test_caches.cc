/**
 * @file
 * Unit tests for the memory substrate: L1 cache, subblocked L2 cache with
 * listeners, and the write-back buffer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/l1_cache.hh"
#include "mem/l2_cache.hh"
#include "mem/writeback_buffer.hh"
#include "util/random.hh"

using namespace jetty;
using namespace jetty::mem;
using coherence::BusOp;
using coherence::State;

// ---------------------------------------------------------------- L1 ----

namespace
{

L1Config
smallL1()
{
    L1Config cfg;
    cfg.sizeBytes = 1024;  // 32 lines of 32B, direct mapped
    cfg.assoc = 1;
    cfg.blockBytes = 32;
    return cfg;
}

} // namespace

TEST(L1Cache, MissThenFillThenHit)
{
    L1Cache l1(smallL1());
    EXPECT_FALSE(l1.probe(0x1000).hit);
    L1Victim victim;
    l1.fill(0x1000, false, victim);
    EXPECT_FALSE(victim.valid);
    const auto res = l1.probe(0x1000);
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.writable);
    EXPECT_FALSE(res.dirty);
}

TEST(L1Cache, LineAlignment)
{
    L1Cache l1(smallL1());
    L1Victim victim;
    l1.fill(0x1000, false, victim);
    EXPECT_TRUE(l1.probe(0x101f).hit);   // same 32B line
    EXPECT_FALSE(l1.probe(0x1020).hit);  // next line
}

TEST(L1Cache, DirectMappedConflictEvicts)
{
    L1Cache l1(smallL1());
    L1Victim victim;
    l1.fill(0x0, true, victim);
    l1.markDirty(0x0);
    // 1KB direct mapped: 0x400 aliases with 0x0.
    l1.fill(0x400, false, victim);
    EXPECT_TRUE(victim.valid);
    EXPECT_TRUE(victim.dirty);
    EXPECT_EQ(victim.lineAddr, 0x0u);
    EXPECT_FALSE(l1.probe(0x0).hit);
}

TEST(L1Cache, CleanVictimReported)
{
    L1Cache l1(smallL1());
    L1Victim victim;
    l1.fill(0x0, false, victim);
    l1.fill(0x400, false, victim);
    EXPECT_TRUE(victim.valid);
    EXPECT_FALSE(victim.dirty);
}

TEST(L1Cache, WritableAndDirtyFlags)
{
    L1Cache l1(smallL1());
    L1Victim victim;
    l1.fill(0x40, true, victim);
    EXPECT_TRUE(l1.probe(0x40).writable);
    l1.markDirty(0x40);
    EXPECT_TRUE(l1.probe(0x40).dirty);
    l1.setWritable(0x40, false);
    EXPECT_FALSE(l1.probe(0x40).writable);
}

TEST(L1Cache, InvalidateReportsDirtiness)
{
    L1Cache l1(smallL1());
    L1Victim victim;
    l1.fill(0x40, true, victim);
    l1.markDirty(0x40);
    EXPECT_TRUE(l1.invalidate(0x40));
    EXPECT_FALSE(l1.probe(0x40).hit);
    EXPECT_FALSE(l1.invalidate(0x40));  // already gone
}

TEST(L1Cache, SetAssociativeLru)
{
    L1Config cfg = smallL1();
    cfg.assoc = 2;  // 16 sets x 2 ways
    L1Cache l1(cfg);
    L1Victim victim;
    const Addr set_stride = 16 * 32;  // same-set stride
    l1.fill(0x0, false, victim);
    l1.fill(set_stride, false, victim);
    l1.touch(0x0);  // make way holding 0x0 the MRU
    l1.fill(2 * set_stride, false, victim);
    EXPECT_TRUE(victim.valid);
    EXPECT_EQ(victim.lineAddr, set_stride);  // LRU evicted
    EXPECT_TRUE(l1.probe(0x0).hit);
}

TEST(L1Cache, ValidLineCount)
{
    L1Cache l1(smallL1());
    L1Victim victim;
    EXPECT_EQ(l1.validLines(), 0u);
    l1.fill(0x0, false, victim);
    l1.fill(0x20, false, victim);
    EXPECT_EQ(l1.validLines(), 2u);
    l1.invalidate(0x0);
    EXPECT_EQ(l1.validLines(), 1u);
}

// ---------------------------------------------------------------- L2 ----

namespace
{

L2Config
smallL2()
{
    L2Config cfg;
    cfg.sizeBytes = 4096;  // 64 blocks of 64B, direct mapped
    cfg.assoc = 1;
    cfg.blockBytes = 64;
    cfg.subblocks = 2;
    return cfg;
}

struct RecordingListener : public CacheEventListener
{
    std::vector<Addr> fills, evicts;
    void unitFilled(Addr a) override { fills.push_back(a); }
    void unitEvicted(Addr a) override { evicts.push_back(a); }
};

} // namespace

TEST(L2Cache, FillAndProbeSubblocks)
{
    L2Cache l2(smallL2());
    std::vector<L2Victim> victims;
    l2.fill(0x1000, State::Exclusive, victims);
    EXPECT_TRUE(victims.empty());

    const auto sub0 = l2.probe(0x1000);
    EXPECT_TRUE(sub0.tagMatch);
    EXPECT_TRUE(sub0.unitValid);
    EXPECT_EQ(sub0.state, State::Exclusive);

    // The sibling subblock shares the tag but is invalid.
    const auto sub1 = l2.probe(0x1020);
    EXPECT_TRUE(sub1.tagMatch);
    EXPECT_FALSE(sub1.unitValid);

    EXPECT_TRUE(l2.hasBlock(0x1020));
    EXPECT_FALSE(l2.hasBlock(0x2000));
}

TEST(L2Cache, UnitAlignment)
{
    L2Cache l2(smallL2());
    EXPECT_EQ(l2.unitAlign(0x103f), 0x1020u);
    EXPECT_EQ(l2.blockAlign(0x103f), 0x1000u);
}

TEST(L2Cache, ConflictEvictionReturnsAllValidUnits)
{
    L2Cache l2(smallL2());
    std::vector<L2Victim> victims;
    l2.fill(0x0, State::Modified, victims);
    l2.fill(0x20, State::Shared, victims);  // second subblock, same block
    // 4KB direct mapped: 0x1000 aliases with 0x0.
    victims.clear();
    l2.fill(0x1000, State::Exclusive, victims);
    ASSERT_EQ(victims.size(), 2u);
    EXPECT_EQ(victims[0].unitAddr, 0x0u);
    EXPECT_EQ(victims[0].state, State::Modified);
    EXPECT_EQ(victims[1].unitAddr, 0x20u);
    EXPECT_EQ(victims[1].state, State::Shared);
    EXPECT_FALSE(l2.hasBlock(0x0));
}

TEST(L2Cache, ListenersSeeFillsAndEvictions)
{
    L2Cache l2(smallL2());
    RecordingListener rec;
    l2.addListener(&rec);
    std::vector<L2Victim> victims;
    l2.fill(0x40, State::Exclusive, victims);
    l2.fill(0x60, State::Exclusive, victims);
    ASSERT_EQ(rec.fills.size(), 2u);
    EXPECT_EQ(rec.fills[0], 0x40u);
    EXPECT_EQ(rec.fills[1], 0x60u);

    l2.fill(0x1040, State::Exclusive, victims);  // evicts block 0x40
    ASSERT_EQ(rec.evicts.size(), 2u);
    EXPECT_EQ(rec.evicts[0], 0x40u);
    EXPECT_EQ(rec.evicts[1], 0x60u);
}

TEST(L2Cache, SnoopBusReadDowngradesModified)
{
    L2Cache l2(smallL2());
    std::vector<L2Victim> victims;
    l2.fill(0x80, State::Modified, victims);
    const auto out = l2.snoop(0x80, BusOp::BusRead);
    EXPECT_TRUE(out.hadCopy);
    EXPECT_TRUE(out.supplied);
    EXPECT_EQ(l2.probe(0x80).state, State::Owned);
}

TEST(L2Cache, SnoopBusReadXInvalidatesAndNotifies)
{
    L2Cache l2(smallL2());
    RecordingListener rec;
    l2.addListener(&rec);
    std::vector<L2Victim> victims;
    l2.fill(0x80, State::Shared, victims);
    const auto out = l2.snoop(0x80, BusOp::BusReadX);
    EXPECT_TRUE(out.hadCopy);
    EXPECT_FALSE(l2.probe(0x80).unitValid);
    ASSERT_EQ(rec.evicts.size(), 1u);
    EXPECT_EQ(rec.evicts[0], 0x80u);
}

TEST(L2Cache, SnoopMissOnAbsentBlock)
{
    L2Cache l2(smallL2());
    const auto out = l2.snoop(0xbeef00, BusOp::BusRead);
    EXPECT_FALSE(out.hadCopy);
}

TEST(L2Cache, SnoopMissOnInvalidSibling)
{
    L2Cache l2(smallL2());
    std::vector<L2Victim> victims;
    l2.fill(0x1000, State::Exclusive, victims);
    const auto out = l2.snoop(0x1020, BusOp::BusRead);
    EXPECT_FALSE(out.hadCopy);
    // The valid sibling is untouched.
    EXPECT_TRUE(l2.probe(0x1000).unitValid);
}

TEST(L2Cache, SetStateTransitions)
{
    L2Cache l2(smallL2());
    std::vector<L2Victim> victims;
    l2.fill(0xc0, State::Exclusive, victims);
    l2.setState(0xc0, State::Modified);
    EXPECT_EQ(l2.probe(0xc0).state, State::Modified);
}

TEST(L2Cache, InvalidateUnit)
{
    L2Cache l2(smallL2());
    RecordingListener rec;
    l2.addListener(&rec);
    std::vector<L2Victim> victims;
    l2.fill(0xc0, State::Shared, victims);
    l2.invalidateUnit(0xc0);
    EXPECT_FALSE(l2.probe(0xc0).unitValid);
    EXPECT_EQ(rec.evicts.size(), 1u);
    l2.invalidateUnit(0xc0);  // no-op
    EXPECT_EQ(rec.evicts.size(), 1u);
}

TEST(L2Cache, ValidUnitCountTracksEverything)
{
    L2Cache l2(smallL2());
    std::vector<L2Victim> victims;
    EXPECT_EQ(l2.validUnits(), 0u);
    l2.fill(0x0, State::Exclusive, victims);
    l2.fill(0x20, State::Exclusive, victims);
    l2.fill(0x40, State::Modified, victims);
    EXPECT_EQ(l2.validUnits(), 3u);
    l2.snoop(0x40, BusOp::BusReadX);
    EXPECT_EQ(l2.validUnits(), 2u);
    l2.fill(0x1000, State::Shared, victims);  // evicts block 0 (2 units)
    EXPECT_EQ(l2.validUnits(), 1u);
}

TEST(L2Cache, SetAssociativeLru)
{
    L2Config cfg = smallL2();
    cfg.assoc = 2;  // 32 sets x 2 ways
    L2Cache l2(cfg);
    std::vector<L2Victim> victims;
    const Addr stride = 32 * 64;  // same-set stride
    l2.fill(0x0, State::Exclusive, victims);
    l2.fill(stride, State::Exclusive, victims);
    l2.touch(0x0);
    victims.clear();
    l2.fill(2 * stride, State::Exclusive, victims);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0].unitAddr, stride);
    EXPECT_TRUE(l2.hasBlock(0x0));
}

TEST(L2Cache, NonSubblockedConfig)
{
    L2Config cfg;
    cfg.sizeBytes = 2048;
    cfg.blockBytes = 32;
    cfg.subblocks = 1;
    L2Cache l2(cfg);
    std::vector<L2Victim> victims;
    l2.fill(0x100, State::Exclusive, victims);
    EXPECT_TRUE(l2.probe(0x100).unitValid);
    EXPECT_EQ(l2.unitAlign(0x11f), 0x100u);
}

// ------------------------------------------------------ WritebackBuffer --

TEST(WritebackBuffer, FifoOrder)
{
    WritebackBuffer wb(2);
    EXPECT_TRUE(wb.empty());
    wb.push({0x100, State::Modified});
    wb.push({0x200, State::Owned});
    EXPECT_FALSE(wb.hasRoom());
    EXPECT_EQ(wb.pop().unitAddr, 0x100u);
    EXPECT_EQ(wb.pop().unitAddr, 0x200u);
    EXPECT_TRUE(wb.empty());
}

TEST(WritebackBuffer, ContainsAndTake)
{
    WritebackBuffer wb(4);
    wb.push({0x100, State::Modified});
    wb.push({0x200, State::Owned});
    EXPECT_TRUE(wb.contains(0x200));
    EXPECT_FALSE(wb.contains(0x300));

    bool found = false;
    const auto e = wb.take(0x200, found);
    EXPECT_TRUE(found);
    EXPECT_EQ(e.state, State::Owned);
    EXPECT_FALSE(wb.contains(0x200));
    EXPECT_EQ(wb.size(), 1u);

    bool found2 = true;
    wb.take(0x999, found2);
    EXPECT_FALSE(found2);
}

TEST(WritebackBuffer, CapacityReported)
{
    WritebackBuffer wb(3);
    EXPECT_EQ(wb.capacity(), 3u);
    wb.push({0x1, State::Modified});
    EXPECT_TRUE(wb.hasRoom());
    EXPECT_EQ(wb.size(), 1u);
}

TEST(WritebackBuffer, DrainOrderSurvivesSnoopPressure)
{
    // Remote snoops remove (take) and demote (demoteForRead) entries at
    // arbitrary positions; the survivors must still drain oldest-first,
    // in their original relative order.
    WritebackBuffer wb(8);
    for (Addr a = 0x100; a <= 0x800; a += 0x100)
        wb.push({a, State::Modified});

    bool found = false;
    wb.take(0x300, found);  // BusReadX mid-buffer
    EXPECT_TRUE(found);
    wb.take(0x100, found);  // BusReadX at the head
    EXPECT_TRUE(found);
    EXPECT_TRUE(wb.demoteForRead(0x500));  // BusRead mid-buffer
    wb.push({0x900, State::Owned});        // new victim behind everyone

    const Addr expect_order[] = {0x200, 0x400, 0x500, 0x600,
                                 0x700, 0x800, 0x900};
    ASSERT_EQ(wb.size(), 7u);
    for (const Addr a : expect_order)
        EXPECT_EQ(wb.pop().unitAddr, a);
    EXPECT_TRUE(wb.empty());
}

TEST(WritebackBuffer, DemoteForReadOnlyTouchesModified)
{
    WritebackBuffer wb(4);
    wb.push({0x100, State::Modified});
    wb.push({0x200, State::Owned});

    EXPECT_TRUE(wb.demoteForRead(0x100));
    EXPECT_TRUE(wb.demoteForRead(0x200));   // Owned stays Owned
    EXPECT_FALSE(wb.demoteForRead(0x300));  // absent

    EXPECT_EQ(wb.pop().state, State::Owned);
    EXPECT_EQ(wb.pop().state, State::Owned);
}

TEST(WritebackBuffer, SnoopCombinesHitTakeAndDemoteInOneCall)
{
    WritebackBuffer wb(4);
    wb.push({0x100, State::Modified});
    wb.push({0x200, State::Modified});

    EXPECT_FALSE(wb.snoop(0x300, false));  // miss
    EXPECT_FALSE(wb.snoop(0x300, true));

    // Supplying BusRead: hit, entry stays, M demotes to O (idempotent).
    EXPECT_TRUE(wb.snoop(0x100, false));
    EXPECT_TRUE(wb.contains(0x100));
    EXPECT_EQ(wb.entries().front().state, State::Owned);
    EXPECT_TRUE(wb.snoop(0x100, false));
    EXPECT_EQ(wb.entries().front().state, State::Owned);

    // BusReadX/Upgrade: hit and ownership transfer (entry removed).
    EXPECT_TRUE(wb.snoop(0x200, true));
    EXPECT_FALSE(wb.contains(0x200));
    EXPECT_EQ(wb.size(), 1u);
}

TEST(WritebackBuffer, EntriesExposeFifoView)
{
    WritebackBuffer wb(4);
    wb.push({0x100, State::Modified});
    wb.push({0x200, State::Owned});
    ASSERT_EQ(wb.entries().size(), 2u);
    EXPECT_EQ(wb.entries()[0].unitAddr, 0x100u);
    EXPECT_EQ(wb.entries()[1].unitAddr, 0x200u);
}

// ---------------------------------------- L1 fast path vs slow path ----

namespace
{

/** The slow-path equivalent of one accessFast() call: probe, and on a
 *  serviceable hit touch (+ markDirty for writes). Returns whether the
 *  access was serviced, exactly accessFast()'s contract. */
bool
slowAccess(L1Cache &l1, Addr addr, bool write)
{
    const auto res = l1.probe(addr);
    if (!res.hit || (write && !res.writable))
        return false;
    l1.touch(addr);
    if (write)
        l1.markDirty(addr);
    return true;
}

} // namespace

TEST(L1Cache, FastPathMatchesSlowPathAcrossDirtyEvictionBoundaries)
{
    // Two identical caches driven by the same randomized access/fill
    // sequence, one through accessFast(), one through the probe/touch/
    // markDirty route. Both must agree on every return value, every
    // victim (especially dirty ones at eviction boundaries), and the
    // full final line state — i.e. the fast path's single associative
    // search changes exactly the state the slow path changes.
    L1Config cfg;
    cfg.sizeBytes = 512;  // 2 sets x 4 ways: constant conflict pressure
    cfg.assoc = 4;
    cfg.blockBytes = 32;
    L1Cache fast(cfg), slow(cfg);

    jetty::Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        // A handful of lines per set keeps hits, permission misses and
        // capacity misses all frequent.
        const Addr addr = 0x1000 + rng.below(12) * 32;
        const bool write = rng.chance(0.45);

        const bool f = fast.accessFast(addr, write);
        const bool s = slowAccess(slow, addr, write);
        ASSERT_EQ(f, s) << "iteration " << i;

        if (!f && !fast.probe(addr).hit) {
            // Genuine miss: fill both with the same permission. This is
            // where dirty victims cross the eviction boundary.
            const bool writable = rng.chance(0.6);
            L1Victim vf, vs;
            fast.fill(addr, writable, vf);
            slow.fill(addr, writable, vs);
            if (write && writable) {
                fast.markDirty(addr);
                slow.markDirty(addr);
            }
            ASSERT_EQ(vf.valid, vs.valid) << i;
            ASSERT_EQ(vf.dirty, vs.dirty) << i;
            ASSERT_EQ(vf.lineAddr, vs.lineAddr) << i;
        }

        if (i % 1000 == 0) {
            const auto lf = fast.validLineInfo();
            const auto ls = slow.validLineInfo();
            ASSERT_EQ(lf.size(), ls.size()) << i;
            for (std::size_t k = 0; k < lf.size(); ++k) {
                ASSERT_EQ(lf[k].lineAddr, ls[k].lineAddr) << i;
                ASSERT_EQ(lf[k].writable, ls[k].writable) << i;
                ASSERT_EQ(lf[k].dirty, ls[k].dirty) << i;
            }
        }
    }
    EXPECT_EQ(fast.validLines(), slow.validLines());
}

namespace
{

/** One scripted reference for the classify-equivalence harness. */
struct Ref
{
    Addr addr;
    bool write;
};

/**
 * Drive @p batch through one classifyBatch() window (retiring hits via
 * retireHitAt) and @p oracle through per-reference accessClassify(),
 * asserting identical verdicts row by row and identical final line
 * state. Valid only for windows that trigger no fill: classification
 * never moves the generation, so the whole window stays exact — the
 * contract Stage 1 of the batched hot loop relies on.
 */
void
expectBatchMatchesOracle(L1Cache &batch, L1Cache &oracle,
                         const std::vector<Ref> &refs)
{
    const std::size_t n = refs.size();
    std::vector<Addr> addrs(n);
    std::vector<std::uint8_t> writes(n), outcome(n, 0xAB),
        waySel(n, 0xAB);
    for (std::size_t k = 0; k < n; ++k) {
        addrs[k] = refs[k].addr;
        writes[k] = static_cast<std::uint8_t>(refs[k].write);
    }
    const std::uint64_t gen = batch.generation();
    batch.classifyBatch(addrs.data(), writes.data(), n, outcome.data(),
                        waySel.data());
    EXPECT_EQ(batch.generation(), gen) << "classifyBatch mutated state";
    for (std::size_t k = 0; k < n; ++k) {
        const auto want = oracle.accessClassify(refs[k].addr,
                                                refs[k].write);
        ASSERT_EQ(static_cast<L1FastOutcome>(outcome[k]), want)
            << "row " << k;
        if (want == L1FastOutcome::Hit)
            batch.retireHitAt(refs[k].addr, waySel[k], refs[k].write);
    }
    const auto lb = batch.validLineInfo();
    const auto lo = oracle.validLineInfo();
    ASSERT_EQ(lb.size(), lo.size());
    for (std::size_t k = 0; k < lb.size(); ++k) {
        EXPECT_EQ(lb[k].lineAddr, lo[k].lineAddr) << k;
        EXPECT_EQ(lb[k].writable, lo[k].writable) << k;
        EXPECT_EQ(lb[k].dirty, lo[k].dirty) << k;
    }
}

/** Install @p addr with @p writable permission in both caches. */
void
fillBoth(L1Cache &batch, L1Cache &oracle, Addr addr, bool writable)
{
    L1Victim v;
    batch.fill(addr, writable, v);
    oracle.fill(addr, writable, v);
}

} // namespace

TEST(L1Cache, ClassifyBatchShorterThanSimdWidth)
{
    // Lengths below one vector width (4 x u64 on AVX2) exercise the
    // kernels' tail handling through the real cache geometry.
    const L1Config cfg = smallL1();
    for (std::size_t n = 1; n <= 3; ++n) {
        L1Cache batch(cfg), oracle(cfg);
        fillBoth(batch, oracle, 0x1000, true);
        std::vector<Ref> refs;
        for (std::size_t k = 0; k < n; ++k)
            refs.push_back({k == 0 ? Addr{0x1000} : Addr{0x2000 + 32 * k},
                            k == 0});
        expectBatchMatchesOracle(batch, oracle, refs);
    }
}

TEST(L1Cache, ClassifyBatchAllBlockedChunk)
{
    // Writes against read-only lines: a whole window of Blocked
    // verdicts, none of which may touch LRU or dirty state.
    const L1Config cfg = smallL1();
    L1Cache batch(cfg), oracle(cfg);
    std::vector<Ref> refs;
    for (Addr a = 0x4000; a < 0x4000 + 8 * 32; a += 32) {
        fillBoth(batch, oracle, a, false);
        refs.push_back({a, true});
    }
    expectBatchMatchesOracle(batch, oracle, refs);
}

TEST(L1Cache, ClassifyBatchMaxPhysicalAddresses)
{
    // Full-width 56-bit addresses (the largest physAddrBits the
    // simulator configures): no kernel lane may narrow a tag.
    const Addr top = ((Addr{1} << 56) - 1) & ~Addr{31};
    const L1Config cfg = smallL1();
    L1Cache batch(cfg), oracle(cfg);
    fillBoth(batch, oracle, top, true);
    fillBoth(batch, oracle, top - 32, false);
    const std::vector<Ref> refs = {
        {top, true},        // hit, writable
        {top - 32, false},  // hit, read-only line
        {top - 64, false},  // miss
        {top - 32, true},   // blocked
        {top, false},       // hit again
    };
    expectBatchMatchesOracle(batch, oracle, refs);
}

TEST(L1Cache, ClassifyBatchAlternatingHitMiss)
{
    // The interleaved hit/miss pattern the branchless verdict mapping
    // exists for, across both bench geometries (direct-mapped and
    // 4-way).
    for (const unsigned assoc : {1u, 4u}) {
        L1Config cfg = smallL1();
        cfg.assoc = assoc;
        L1Cache batch(cfg), oracle(cfg);
        std::vector<Ref> refs;
        for (unsigned k = 0; k < 16; ++k) {
            const Addr a = 0x8000 + 32 * k;
            if (k % 2 == 0)
                fillBoth(batch, oracle, a, k % 4 == 0);
            refs.push_back({a, k % 4 == 2});
        }
        expectBatchMatchesOracle(batch, oracle, refs);
    }
}

TEST(L1Cache, FastPathRefusalLeavesCacheUntouched)
{
    // A refused fast access (miss, or write without permission) must not
    // perturb LRU: after the refusal the replacement decision is the
    // same as if the call never happened.
    L1Config cfg;
    cfg.sizeBytes = 1024;
    cfg.assoc = 2;  // 16 sets x 2 ways
    cfg.blockBytes = 32;
    const Addr set_stride = 16 * 32;

    L1Cache l1(cfg);
    L1Victim victim;
    l1.fill(0x0, false, victim);
    l1.fill(set_stride, true, victim);
    l1.touch(0x0);  // 0x0 is MRU, set_stride is LRU

    // Refused accesses: a write to the non-writable MRU line and a read
    // of an absent line. Neither may reorder the set.
    EXPECT_FALSE(l1.accessFast(0x0, true));
    EXPECT_FALSE(l1.accessFast(3 * set_stride, false));

    l1.fill(2 * set_stride, false, victim);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.lineAddr, set_stride);  // still the LRU
    EXPECT_TRUE(l1.probe(0x0).hit);
}
