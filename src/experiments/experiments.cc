#include "experiments/experiments.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>

#include "core/filter_spec.hh"
#include "experiments/disk_cache.hh"
#include "trace/trace_file.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace jetty::experiments
{

sim::SmpConfig
SystemVariant::smpConfig() const
{
    sim::SmpConfig cfg;
    cfg.nprocs = nprocs;
    cfg.l1.sizeBytes = 64 * 1024;
    cfg.l1.assoc = 1;
    cfg.l1.blockBytes = 32;
    cfg.l2.sizeBytes = 1024 * 1024;
    cfg.l2.assoc = 1;
    if (subblocked) {
        cfg.l2.blockBytes = 64;
        cfg.l2.subblocks = 2;
    } else {
        // The paper's "NSB" comparison system: coherence at whole-block
        // granularity. We keep 32 B blocks so the L1 line still equals
        // the coherence unit.
        cfg.l2.blockBytes = 32;
        cfg.l2.subblocks = 1;
    }
    cfg.wbEntries = 8;
    cfg.physAddrBits = 40;
    cfg.snoopBuses = snoopBuses;
    return cfg;
}

energy::CacheGeometry
SystemVariant::l2EnergyGeometry() const
{
    const sim::SmpConfig cfg = smpConfig();
    energy::CacheGeometry geom;
    geom.sizeBytes = cfg.l2.sizeBytes;
    // The paper's energy analysis (Sections 2.1 and 4.4) assumes a 4-way
    // set-associative 1MB L2 -- wide-tag lookups are the motivation for
    // filtering -- even though the WWT2-style functional simulation uses
    // a SPARC-like direct-mapped L2. We follow the same split.
    geom.assoc = 4;
    geom.blockBytes = cfg.l2.blockBytes;
    geom.subblocks = cfg.l2.subblocks;
    geom.physAddrBits = cfg.physAddrBits;
    geom.stateBitsPerUnit = 3;  // MOESI
    return geom;
}

std::vector<std::string>
allPaperFilterSpecs()
{
    std::vector<std::string> specs;
    for (const auto &s : filter::paperExcludeSpecs())
        specs.push_back(s);
    for (const auto &s : filter::paperVectorExcludeSpecs())
        specs.push_back(s);
    for (const auto &s : filter::paperIncludeSpecs())
        specs.push_back(s);
    for (const auto &s : filter::paperHybridSpecs())
        specs.push_back(s);
    return specs;
}

const filter::FilterStats &
AppRunResult::statsFor(const std::string &name) const
{
    for (std::size_t i = 0; i < filterNames.size(); ++i) {
        if (filterNames[i] == name)
            return filterStats[i];
    }
    fatal("AppRunResult: unknown filter '" + name + "'");
}

const energy::FilterEnergyCosts &
AppRunResult::costsFor(const std::string &name) const
{
    for (std::size_t i = 0; i < filterNames.size(); ++i) {
        if (filterNames[i] == name)
            return filterCosts[i];
    }
    fatal("AppRunResult: unknown filter '" + name + "'");
}

double
defaultScale()
{
    if (const char *env = std::getenv("JETTY_SCALE")) {
        const double v = std::atof(env);
        if (v > 0)
            return v;
        warn("ignoring non-positive JETTY_SCALE");
    }
    return 1.0;
}

// ---- The keyed run cache ---------------------------------------------

namespace
{

/** FNV-1a over the fields that determine a profile's reference streams. */
class Fnv
{
  public:
    void
    mix(std::uint64_t v)
    {
        hash_ ^= v;
        hash_ *= 0x100000001b3ULL;
    }

    void
    mix(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }

    void
    mix(const std::string &s)
    {
        mix(static_cast<std::uint64_t>(s.size()));
        for (char c : s)
            mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::uint64_t
profileFingerprint(const trace::AppProfile &app)
{
    Fnv fnv;
    fnv.mix(app.name);
    fnv.mix(app.seed);
    fnv.mix(app.accessesPerProc);
    fnv.mix(app.reuseProb);
    fnv.mix(static_cast<std::uint64_t>(app.wordBytes));
    for (const auto &s : app.streams) {
        fnv.mix(static_cast<std::uint64_t>(s.kind));
        fnv.mix(s.weight);
        fnv.mix(s.bytes);
        fnv.mix(s.writeFraction);
        fnv.mix(s.residentBytes);
        fnv.mix(s.residentFraction);
        fnv.mix(s.residentHotBias);
        fnv.mix(static_cast<std::uint64_t>(s.burstBytes));
        fnv.mix(static_cast<std::uint64_t>(s.epochLen));
        fnv.mix(static_cast<std::uint64_t>(s.objectBytes));
        fnv.mix(s.hotBias);
        fnv.mix(s.remoteFraction);
        fnv.mix(s.boundaryBytes);
    }
    return fnv.value();
}

/**
 * Cache key: the canonical serialization of one simulated
 * (machine, workload, scale) cell (api::runCacheKey). Canonical text
 * equality is simulation identity, and the std::map's byte order keeps
 * the pending-job batch deterministic.
 */
using RunKey = std::string;

/** (size, nanosecond-mtime) identity of a file at one instant.
 *  Nanosecond mtime: a same-size rewrite within one second must not
 *  serve a stale digest. */
struct DigestStamp
{
    std::uint64_t size = 0;
    std::int64_t mtime = 0;

    bool
    operator==(const DigestStamp &o) const
    {
        return size == o.size && mtime == o.mtime;
    }
};

struct MemoizedDigest
{
    DigestStamp stamp;
    std::uint64_t digest = 0;
};

/** The trace-digest memo behind traceFileDigestCached(), with the test
 *  seams RunCache::clear() and the TOCTOU regression tests need. */
struct DigestMemo
{
    std::mutex mu;
    std::map<std::string, MemoizedDigest> entries;
    std::function<void(const std::string &)> preHashHook;
};

DigestMemo &
digestMemo()
{
    static DigestMemo memo;
    return memo;
}

DigestStamp
statStamp(const std::string &path)
{
    struct ::stat st = {};
    if (::stat(path.c_str(), &st) != 0)
        fatal("traceFileDigest: cannot stat '" + path + "'");
    DigestStamp stamp;
    stamp.size = static_cast<std::uint64_t>(st.st_size);
    stamp.mtime =
        static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
        static_cast<std::int64_t>(st.st_mtim.tv_nsec);
    return stamp;
}

/** One cached simulation: the full result plus the specs it covers. */
struct CacheEntry
{
    AppRunResult result{0};
    std::set<std::string> covered;  //!< canonical names in result
};

AppRunResult
fromSweep(const trace::AppProfile &app, sim::SweepResult &&sweep)
{
    // The stats assignment below carries the variant's true processor
    // count (SmpSystem built it), so no explicit sizing is needed here.
    AppRunResult res;
    res.appName = app.name;
    res.abbrev = app.abbrev;
    res.memoryAllocated = sweep.memoryAllocated;
    res.totalRefs = sweep.totalRefs;
    res.simSeconds = sweep.elapsedSeconds;
    res.refsTooFewForRate = sweep.refsTooFewForRate;
    res.stats = std::move(sweep.stats);
    res.filterNames = std::move(sweep.filterNames);
    res.filterStats = std::move(sweep.filterStats);
    res.filterCosts = std::move(sweep.filterCosts);
    res.traffic = sweep.traffic;
    return res;
}

/** Restrict @p full to @p names (each present in full.filterNames). */
AppRunResult
project(const AppRunResult &full, const std::vector<std::string> &names)
{
    AppRunResult out = full;
    out.filterNames.clear();
    out.filterStats.clear();
    out.filterCosts.clear();
    for (const auto &name : names) {
        out.filterNames.push_back(name);
        out.filterStats.push_back(full.statsFor(name));
        out.filterCosts.push_back(full.costsFor(name));
    }
    return out;
}

} // namespace

std::uint64_t
traceFileDigestCached(const std::string &path)
{
    auto &memo = digestMemo();
    // The naive memoization is a TOCTOU: stat, hash, then memoize the
    // digest under the *pre-hash* stamp. A file rewritten between the
    // stat and the hash poisons the memo — the new content's digest
    // sits under the old content's stamp, and once the file is restored
    // the stale entry matches again and serves the wrong digest forever.
    // So: memoize only when a *post-hash* re-stat shows the same stamp,
    // retrying a few times, and fall through to an unmemoized hash when
    // the file will not hold still.
    for (int attempt = 0; attempt < 3; ++attempt) {
        const DigestStamp before = statStamp(path);
        std::function<void(const std::string &)> hook;
        {
            std::lock_guard<std::mutex> lock(memo.mu);
            const auto it = memo.entries.find(path);
            if (it != memo.entries.end() && it->second.stamp == before)
                return it->second.digest;
            hook = memo.preHashHook;
        }
        if (hook)
            hook(path);  // test seam: the stat-to-hash race window
        const std::uint64_t digest = trace::traceFileDigest(path);
        const DigestStamp after = statStamp(path);
        if (after == before) {
            std::lock_guard<std::mutex> lock(memo.mu);
            memo.entries[path] = {after, digest};
            return digest;
        }
        // The file changed underneath the hash: the digest matches
        // neither stamp reliably. Try again against the new stamp.
    }
    return trace::traceFileDigest(path);
}

void
invalidateTraceDigestMemo()
{
    auto &memo = digestMemo();
    std::lock_guard<std::mutex> lock(memo.mu);
    memo.entries.clear();
}

void
setTraceDigestPreHashHook(std::function<void(const std::string &)> hook)
{
    auto &memo = digestMemo();
    std::lock_guard<std::mutex> lock(memo.mu);
    memo.preHashHook = std::move(hook);
}

std::uint64_t
workloadFingerprint(const RunRequest &req)
{
    if (!req.traceFiles.empty()) {
        // File-backed workload: identity is what the files *contain*,
        // not where they live or what profile labels them.
        Fnv fnv;
        fnv.mix(static_cast<std::uint64_t>(req.traceFiles.size()));
        for (const auto &file : req.traceFiles)
            fnv.mix(traceFileDigestCached(file));
        return fnv.value();
    }
    return profileFingerprint(req.app);
}

std::string
runCacheKey(const RunRequest &req, double scale)
{
    // The key is a canonical mini-spec of the simulated cell: the
    // variant machine plus the workload's content identity. Everything
    // that changes the simulation is in here; nothing else is — filter
    // specs in particular stay out (the bank is a passive observer, so
    // a superset simulation answers any subset request).
    json::Value machine = json::Value::object();
    machine.set("procs", req.variant.nprocs);
    machine.set("buses", req.variant.snoopBuses);
    machine.set("subblocked", req.variant.subblocked);

    json::Value workload = json::Value::object();
    char fp[32];
    std::snprintf(fp, sizeof(fp), "0x%016llx",
                  static_cast<unsigned long long>(
                      workloadFingerprint(req)));
    workload.set("fingerprint", fp);
    if (req.traceFiles.empty()) {
        workload.set("kind", "profile");
        // accessScale does not apply to file replays (the capture's
        // length is the capture's length), so it must not split their
        // keys — it only joins profile-backed identities.
        workload.set("scale", scale);
    } else {
        workload.set("kind", "files");
    }

    json::Value root = json::Value::object();
    root.set("machine", std::move(machine));
    root.set("workload", std::move(workload));
    return root.dumpCanonical();
}

struct RunCache::Impl
{
    mutable std::mutex mu;
    std::map<RunKey, CacheEntry> entries;
    std::uint64_t sims = 0;
    std::uint64_t hits = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t diskBudget = kDefaultDiskBudgetBytes;
    std::unique_ptr<DiskCache> disk;  //!< tier 1; null = memory only
};

RunCache::RunCache() : impl_(std::make_unique<Impl>())
{
    // Library default: no disk tier (tests and benches stay hermetic).
    // The environment opts a whole process tree in; jetty_cli layers its
    // own default root on top via setDiskRoot().
    if (const char *env = std::getenv("JETTY_CACHE_BYTES")) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            impl_->diskBudget = v;
        else
            warn("ignoring non-positive JETTY_CACHE_BYTES");
    }
    if (const char *env = std::getenv("JETTY_CACHE_DIR")) {
        const std::string root = env;
        if (!root.empty() && root != "off")
            impl_->disk =
                std::make_unique<DiskCache>(root, impl_->diskBudget);
    }
}

RunCache::~RunCache() = default;

RunCache &
RunCache::instance()
{
    static RunCache cache;
    return cache;
}

void
RunCache::clear()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->entries.clear();
        impl_->sims = 0;
        impl_->hits = 0;
        impl_->diskHits = 0;
    }
    // The digest memo is keyed by (size, mtime) stamps, and mtime
    // granularity is filesystem-dependent: a test that rewrites a trace
    // file between runs cannot rely on the stamp changing. clear() is
    // the "start from nothing" seam, so it drops the memo too.
    invalidateTraceDigestMemo();
}

std::uint64_t
RunCache::simulations() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->sims;
}

std::uint64_t
RunCache::hits() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->hits;
}

std::uint64_t
RunCache::diskHits() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->diskHits;
}

void
RunCache::setDiskRoot(const std::string &root)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (root.empty() || root == "off")
        impl_->disk.reset();
    else
        impl_->disk = std::make_unique<DiskCache>(root, impl_->diskBudget);
}

std::string
RunCache::diskRoot() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->disk ? impl_->disk->root() : std::string();
}

void
RunCache::setDiskBudget(std::uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->diskBudget = bytes;
    if (impl_->disk)
        impl_->disk =
            std::make_unique<DiskCache>(impl_->disk->root(), bytes);
}

// ---- Declarative runs ------------------------------------------------

std::vector<AppRunResult>
runMany(const std::vector<RunRequest> &requests, unsigned jobs)
{
    auto &cache = *RunCache::instance().impl_;

    // Resolve each request: scale, cache key, canonical spec names
    // (deduplicated, first-occurrence order). Canonical names round-trip
    // through the registry, so they double as the simulation's spec list.
    struct Prepared
    {
        RunKey key;
        std::vector<std::string> names;
    };
    // Canonicalization builds a filter to read its name; memoize per
    // (spec, address-map geometry) so a sweep over many apps pays it
    // once per spec, not once per request.
    std::map<std::string, std::string> canon;
    const auto canonical = [&canon](const std::string &spec,
                                    const filter::AddressMap &amap) {
        std::string memo_key = spec;
        for (std::uint64_t v :
             {static_cast<std::uint64_t>(amap.unitOffsetBits),
              static_cast<std::uint64_t>(amap.blockOffsetBits),
              static_cast<std::uint64_t>(amap.physAddrBits),
              amap.l2CapacityUnits}) {
            memo_key += '|' + std::to_string(v);
        }
        auto it = canon.find(memo_key);
        if (it == canon.end()) {
            it = canon.emplace(memo_key,
                               filter::canonicalFilterName(spec, amap))
                     .first;
        }
        return it->second;
    };

    std::vector<Prepared> prepared(requests.size());
    for (std::size_t r = 0; r < requests.size(); ++r) {
        const RunRequest &req = requests[r];
        const double scale =
            req.accessScale > 0 ? req.accessScale : defaultScale();
        const filter::AddressMap amap =
            req.variant.smpConfig().addressMap();
        prepared[r].key = runCacheKey(req, scale);
        for (const auto &spec : req.filterSpecs) {
            const std::string name = canonical(spec, amap);
            auto &names = prepared[r].names;
            if (std::find(names.begin(), names.end(), name) == names.end())
                names.push_back(name);
        }
    }

    // Decide, under the lock, which keys need a (re-)simulation. A key
    // re-simulates when no entry covers the requested names; the new job
    // evaluates the union of the old entry's specs and every name this
    // batch requests for the key, so the replacement covers both.
    struct PendingJob
    {
        std::size_t request = 0;  //!< exemplar request (app/variant/scale)
        std::vector<std::string> names;
    };
    std::map<RunKey, PendingJob> pending;
    {
        std::lock_guard<std::mutex> lock(cache.mu);
        for (std::size_t r = 0; r < requests.size(); ++r) {
            const Prepared &p = prepared[r];
            const auto pend_it = pending.find(p.key);
            if (pend_it == pending.end()) {
                const auto coversAll = [&p](const CacheEntry &entry) {
                    for (const auto &name : p.names) {
                        if (!entry.covered.count(name))
                            return false;
                    }
                    return true;
                };
                auto it = cache.entries.find(p.key);
                if (it != cache.entries.end() && coversAll(it->second)) {
                    ++cache.hits;
                    continue;
                }
                // Tier-0 miss (or under-coverage): consult the disk tier
                // and fold whatever it holds into tier 0 — another
                // process may have simulated this cell, possibly with a
                // superset of the specs we need.
                if (cache.disk) {
                    AppRunResult dres;
                    std::set<std::string> dcov;
                    if (cache.disk->lookup(p.key, dres, dcov)) {
                        CacheEntry &entry = cache.entries[p.key];
                        if (entry.covered.empty()) {
                            entry.result = std::move(dres);
                            entry.covered = std::move(dcov);
                        } else {
                            // Merge, never overwrite: tier 0 may hold
                            // filters the disk entry predates.
                            auto &names = entry.result.filterNames;
                            for (std::size_t f = 0;
                                 f < dres.filterNames.size(); ++f) {
                                const auto &name = dres.filterNames[f];
                                if (std::find(names.begin(), names.end(),
                                              name) == names.end()) {
                                    names.push_back(name);
                                    entry.result.filterStats.push_back(
                                        dres.filterStats[f]);
                                    entry.result.filterCosts.push_back(
                                        dres.filterCosts[f]);
                                }
                            }
                            entry.covered.insert(dcov.begin(), dcov.end());
                        }
                        it = cache.entries.find(p.key);
                        if (coversAll(it->second)) {
                            ++cache.hits;
                            ++cache.diskHits;
                            continue;
                        }
                    }
                }
                PendingJob job;
                job.request = r;
                if (it != cache.entries.end())
                    job.names = it->second.result.filterNames;
                for (const auto &name : p.names) {
                    if (std::find(job.names.begin(), job.names.end(),
                                  name) == job.names.end()) {
                        job.names.push_back(name);
                    }
                }
                pending.emplace(p.key, std::move(job));
            } else {
                for (const auto &name : p.names) {
                    auto &names = pend_it->second.names;
                    if (std::find(names.begin(), names.end(), name) ==
                        names.end()) {
                        names.push_back(name);
                    }
                }
            }
        }
    }

    // One concurrent sweep over the misses. Job order follows the key
    // order (a std::map), so the batch is deterministic however the
    // requests were interleaved and whatever jobs count runs it.
    if (!pending.empty()) {
        std::vector<const PendingJob *> order;
        std::vector<sim::SweepJob> sweepJobs;
        for (const auto &[key, job] : pending) {
            (void)key;
            const RunRequest &req = requests[job.request];
            sim::SweepJob sj;
            sj.app = req.app;
            sj.cfg = req.variant.smpConfig();
            sj.cfg.filterSpecs = job.names;
            sj.accessScale =
                req.accessScale > 0 ? req.accessScale : defaultScale();
            sj.traceFiles = req.traceFiles;
            sweepJobs.push_back(std::move(sj));
            order.push_back(&job);
        }

        // The default path shares one persistent pool across every
        // runMany call in the process (SweepRunner's pool is built to be
        // reused); an explicit jobs override gets a dedicated runner,
        // capped at the batch size so a small batch doesn't spawn a
        // large pool it cannot feed.
        std::vector<sim::SweepResult> results;
        if (jobs == 0) {
            static sim::SweepRunner shared;
            results = shared.run(sweepJobs);
        } else {
            sim::SweepRunner runner(static_cast<unsigned>(
                std::min<std::size_t>(jobs, sweepJobs.size())));
            results = runner.run(sweepJobs);
        }

        std::lock_guard<std::mutex> lock(cache.mu);
        std::size_t i = 0;
        for (const auto &[key, job] : pending) {
            const RunRequest &req = requests[job.request];
            AppRunResult merged = fromSweep(req.app, std::move(results[i]));
            // Merge rather than overwrite: a concurrent runMany may have
            // stored filters this job did not evaluate. Simulations of
            // the same key are deterministic and filters are passive
            // observers, so folding their per-filter stats into this
            // run's result is exact; coverage only ever grows, which is
            // what keeps the projection below (and other threads')
            // lookups safe.
            CacheEntry &entry = cache.entries[key];
            for (std::size_t f = 0; f < entry.result.filterNames.size();
                 ++f) {
                const auto &name = entry.result.filterNames[f];
                if (std::find(merged.filterNames.begin(),
                              merged.filterNames.end(),
                              name) == merged.filterNames.end()) {
                    merged.filterNames.push_back(name);
                    merged.filterStats.push_back(entry.result.filterStats[f]);
                    merged.filterCosts.push_back(entry.result.filterCosts[f]);
                }
            }
            entry.result = std::move(merged);
            entry.covered.insert(entry.result.filterNames.begin(),
                                 entry.result.filterNames.end());
            ++cache.sims;
            // Persist the freshly simulated (and merged) cell so any
            // later process starts warm. Best effort by contract.
            if (cache.disk)
                cache.disk->publish(key, entry.result, entry.covered);
            ++i;
        }
    }

    // Assemble the answers in request order, restricted to each
    // request's own specs.
    std::vector<AppRunResult> out;
    out.reserve(requests.size());
    {
        std::lock_guard<std::mutex> lock(cache.mu);
        for (std::size_t r = 0; r < requests.size(); ++r) {
            const auto it = cache.entries.find(prepared[r].key);
            if (it == cache.entries.end())
                panic("runMany: request missing from the run cache");
            out.push_back(project(it->second.result, prepared[r].names));
        }
    }
    return out;
}

AppRunResult
runApp(const trace::AppProfile &app, const SystemVariant &variant,
       const std::vector<std::string> &filterSpecs, double accessScale)
{
    RunRequest req;
    req.app = app;
    req.variant = variant;
    req.filterSpecs = filterSpecs;
    req.accessScale = accessScale;
    std::vector<RunRequest> requests;
    requests.push_back(std::move(req));
    return std::move(runMany(requests).front());
}

std::vector<AppRunResult>
runAllApps(const SystemVariant &variant,
           const std::vector<std::string> &specs, double accessScale,
           unsigned jobs)
{
    std::vector<RunRequest> requests;
    for (const auto &app : trace::paperApps()) {
        RunRequest req;
        req.app = app;
        req.variant = variant;
        req.filterSpecs = specs;
        req.accessScale = accessScale;
        requests.push_back(std::move(req));
    }
    return runMany(requests, jobs);
}

EnergyResult
evaluateEnergy(const AppRunResult &run, const SystemVariant &variant,
               const std::string &name, energy::AccessMode mode)
{
    const energy::CacheEnergyModel model(variant.l2EnergyGeometry());
    const energy::EnergyAccountant accountant(model);

    const auto base = accountant.baseline(run.traffic, mode);
    const auto with = accountant.withFilter(
        run.traffic, mode, run.statsFor(name).traffic(), run.costsFor(name));

    EnergyResult res;
    res.reductionOverSnoopsPct =
        energy::EnergyAccountant::snoopReductionPct(base, with);
    res.reductionOverAllPct =
        energy::EnergyAccountant::totalReductionPct(base, with);
    return res;
}

} // namespace jetty::experiments
