#include "dist/worker.hh"

#include <chrono>
#include <utility>

#include "service/executor.hh"
#include "service/protocol.hh"

namespace jetty::dist
{

ShardResponse
executeShard(const ShardRequest &req, unsigned jobs)
{
    using Clock = std::chrono::steady_clock;

    ShardResponse resp;
    resp.shardId = req.shardId;
    resp.attempt = req.attempt;

    std::string err;
    api::ExperimentSpec spec = api::ExperimentSpec::fromJson(req.spec, &err);
    if (!err.empty()) {
        resp.error = "shard_request.spec: " + err;
        return resp;
    }
    // Every shard spec is a one-cell sweep; resolving it under the
    // sweep verb validates it through the same schema round-trip the
    // coordinator's own spec went through.
    if (!(err = service::resolveSpec(spec, "sweep")).empty()) {
        resp.error = "shard_request.spec: " + err;
        return resp;
    }

    const std::vector<std::string> names =
        service::canonicalFilterNames(spec);
    std::vector<experiments::RunRequest> requests = spec.expand();
    if (requests.empty()) {
        // An empty shard is legal: answer ok with no result cells.
        resp.ok = true;
        return resp;
    }
    std::vector<std::string> keys;
    for (auto &r : requests) {
        r.filterSpecs = names;
        keys.push_back(cellCacheKey(r));
    }
    // The coordinator derived the key from ITS expansion of the same
    // spec text; a mismatch means the two processes disagree on the
    // canonical identity of the cell and merging would be unsound.
    if (requests.size() == 1 && !req.cacheKey.empty() &&
        keys[0] != req.cacheKey) {
        resp.error = "shard_request.cacheKey: coordinator and worker "
                     "disagree on the canonical cell key (coordinator '" +
                     req.cacheKey + "', worker '" + keys[0] +
                     "') — cross-process determinism violation";
        return resp;
    }

    auto &cache = experiments::RunCache::instance();
    const std::uint64_t sims0 = cache.simulations();
    const std::uint64_t hits0 = cache.hits();
    const std::uint64_t disk0 = cache.diskHits();

    const auto t0 = Clock::now();
    std::vector<experiments::AppRunResult> runs =
        experiments::runMany(requests, jobs);
    resp.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    resp.simulated = cache.simulations() - sims0;
    resp.diskHits = cache.diskHits() - disk0;
    resp.memHits = cache.hits() - hits0 - resp.diskHits;
    for (std::size_t i = 0; i < runs.size(); ++i)
        resp.results.push_back({keys[i], std::move(runs[i])});
    resp.ok = true;
    return resp;
}

int
runWorkerLoop(int inFd, int outFd, const WorkerOptions &opts)
{
    service::LineReader reader(inFd);
    std::string line;
    std::string err;
    std::uint64_t received = 0;
    for (;;) {
        const int got = reader.readLine(line, &err);
        if (got == 0)
            return 0;
        if (got < 0)
            return 1;
        ++received;

        ShardRequest req;
        std::string parseErr;
        const json::Value msg = json::parse(line, &parseErr);
        if (parseErr.empty())
            parseErr = shardRequestFromJson(msg, req);
        else
            parseErr = "shard_request: parse error: " + parseErr;
        if (!parseErr.empty()) {
            // Answer the malformed request (best-effort shard id from a
            // partial parse) instead of dying: the coordinator decides
            // whether to retry or abort.
            ShardResponse resp;
            resp.shardId = req.shardId;
            resp.attempt = req.attempt;
            resp.error = parseErr;
            if (!service::sendValue(outFd, shardResponseToJson(resp), &err))
                return 1;
            continue;
        }

        if (!service::sendValue(
                outFd, shardStartedToJson(req.shardId, req.attempt), &err))
            return 1;
        if (opts.faultHook && opts.faultHook(received))
            return 2;

        const ShardResponse resp = executeShard(req, opts.jobs);
        if (!service::sendValue(outFd, shardResponseToJson(resp), &err))
            return 1;
    }
}

} // namespace jetty::dist
