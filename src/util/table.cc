#include "util/table.hh"

#include <algorithm>

namespace jetty
{

void
TextTable::print(std::FILE *out) const
{
    // Compute per-column widths over header and all rows.
    std::vector<std::size_t> width;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::fprintf(out, "%-*s", static_cast<int>(width[i]) + 2,
                         cells[i].c_str());
        }
        std::fprintf(out, "\n");
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : width)
            total += w + 2;
        std::string rule(total, '-');
        std::fprintf(out, "%s\n", rule.c_str());
    }
    for (const auto &r : rows_)
        emit(r);
}

void
TextTable::printCsv(std::FILE *out) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            std::fprintf(out, "%s%s", i ? "," : "", cells[i].c_str());
        std::fprintf(out, "\n");
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

} // namespace jetty
