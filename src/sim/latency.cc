#include "sim/latency.hh"

#include <algorithm>

namespace jetty::sim
{

double
LatencyImpact::meanChangePct() const
{
    if (baselineMeanCycles <= 0)
        return 0.0;
    return 100.0 * (jettyMeanCycles - baselineMeanCycles) /
           baselineMeanCycles;
}

double
LatencyImpact::worstCaseBusCycleFraction(const LatencyParams &p) const
{
    return worstCaseAddedCycles / p.busClockRatio;
}

LatencyImpact
evaluateLatency(const filter::FilterStats &stats, const LatencyParams &p)
{
    LatencyImpact impact;
    impact.baselineMeanCycles = p.l2TagCycles;
    impact.worstCaseAddedCycles = p.jettyCycles;

    if (stats.probes == 0) {
        impact.jettyMeanCycles = p.l2TagCycles;
        return impact;
    }

    const double filtered_frac =
        static_cast<double>(stats.filtered) /
        static_cast<double>(stats.probes);

    // Filtered snoops answer after the JETTY alone; the rest pay the
    // serial JETTY probe plus the tag probe.
    impact.jettyMeanCycles =
        filtered_frac * p.jettyCycles +
        (1.0 - filtered_frac) * (p.jettyCycles + p.l2TagCycles);
    return impact;
}

BusContentionImpact
evaluateBusContention(const SimStats &stats, const LatencyParams &p)
{
    BusContentionImpact impact;
    if (stats.perBus.empty())
        return impact;

    // Unit-IPC convention: each processor retires one reference per
    // processor cycle, so the run spans max-per-processor-references
    // cycles; the buses run busClockRatio times slower.
    std::uint64_t run_cycles = 0;
    for (const auto &proc : stats.procs)
        run_cycles = std::max(run_cycles, proc.accesses);
    if (run_cycles == 0)
        return impact;
    const double bus_cycles =
        static_cast<double>(run_cycles) / p.busClockRatio;

    double rho_sum = 0;
    double rho_max = 0;
    for (const auto &bus : stats.perBus) {
        const double rho = static_cast<double>(bus.transactions) *
                           p.busOccupancyBusCycles / bus_cycles;
        rho_sum += rho;
        rho_max = std::max(rho_max, rho);
        if (rho >= 1.0)
            impact.saturated = true;
    }
    impact.busiestUtilization = rho_max;
    impact.meanUtilization = rho_sum / stats.perBus.size();

    // M/D/1 mean queueing wait of the busiest bus; clamped just below
    // saturation so a saturated run reports a large finite number with
    // the saturated flag set rather than infinity.
    const double rho = std::min(rho_max, 0.999);
    impact.busiestWaitBusCycles =
        rho / (2.0 * (1.0 - rho)) * p.busOccupancyBusCycles;
    return impact;
}

} // namespace jetty::sim
