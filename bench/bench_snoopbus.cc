/**
 * @file
 * Split-bus snoop pipeline bench: the end-to-end simulation pipelines,
 * old versus new, on the snoop-bound `lu` workload (headline) with the
 * delivery-bound `fm` for contrast.
 *
 * Two pipelines deliver the *identical* reference stream:
 *  - **scalar (the pre-change pipeline)**: per-reference synthesis
 *    through the virtual TraceSource::next() and one processorAccess()
 *    per reference, round-robin, with immediate per-snoop filter
 *    observation on the single shared bus — exactly how the seed
 *    simulator ran every experiment;
 *  - **batched (today's pipeline)**: the workload is materialized once
 *    (the capture/replay architecture of the streaming trace layer;
 *    capture time is measured and reported, and amortizes across the
 *    replays — this bench alone replays each capture four times) and
 *    replayed through SmpSystem::run() at snoopBuses in {1, 2, 4}:
 *    nextBatch() delivery, the inlined L1 fast path, the single-lookup
 *    snoop route, and the per-bus deferred filter-bank replay.
 *
 * For decomposition honesty the JSON also reports `scalar_replay` — the
 *  scalar delivery loop over the materialized trace — separating the
 * synthesis-vs-replay share of the win from the snoop/filter-path
 * share. The headline compares the pipelines end to end.
 *
 * Correctness gates, checked before any number is reported:
 *  - synthesized scalar vs replayed scalar vs snoopBuses=1 batched:
 *    every statistic (architectural and per-filter) bit-identical —
 *    which also proves the materialized capture delivers exactly the
 *    synthesized stream;
 *  - snoopBuses in {2, 4}: machine state (L1/L2/WB snapshots) and
 *    architectural statistics bit-identical to the single-bus run, with
 *    zero filter safety violations and per-bus transaction counts that
 *    sum to the single-bus total.
 *
 * Writes BENCH_snoopbus.json (field reference in DESIGN.md); --smoke
 * shrinks the run for CI and skips the file unless --out is given.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/report.hh"
#include "experiments/experiments.hh"
#include "sim/latency.hh"
#include "sim/smp_system.hh"
#include "trace/apps.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "verify/golden_smp.hh"

using namespace jetty;
using Clock = std::chrono::steady_clock;

namespace
{

/** The paper's standard filter trio (run/replay default). */
const std::vector<std::string> kFilters = {"EJ-32x4", "IJ-10x4x7",
                                           "HJ(IJ-10x4x7,EJ-32x4)"};

/** One processor's pre-materialized reference stream. */
using Traces = std::vector<std::vector<trace::TraceRecord>>;

Traces
materialize(const trace::Workload &workload, unsigned nprocs)
{
    Traces traces(nprocs);
    for (unsigned p = 0; p < nprocs; ++p) {
        auto src = workload.makeSource(p);
        traces[p] = trace::collect(*src);
    }
    return traces;
}

std::vector<trace::TraceSourcePtr>
sourcesFor(const Traces &traces)
{
    std::vector<trace::TraceSourcePtr> sources;
    sources.reserve(traces.size());
    for (const auto &t : traces)
        sources.push_back(std::make_unique<trace::VectorTraceSource>(t));
    return sources;
}

/** The pre-change scalar pipeline, reproduced over any source set:
 *  virtual next() + processorAccess() per reference, round-robin.
 *  processorAccess routes snoops through the immediate (non-deferred)
 *  broadcast path, so the filter banks observe per snoop exactly as the
 *  seed simulator did. */
double
runScalarSources(sim::SmpSystem &sys,
                 std::vector<trace::TraceSourcePtr> sources)
{
    const auto t0 = Clock::now();
    std::vector<bool> done(sources.size(), false);
    bool any = true;
    while (any) {
        any = false;
        for (unsigned p = 0; p < sources.size(); ++p) {
            if (done[p])
                continue;
            trace::TraceRecord rec;
            if (!sources[p]->next(rec)) {
                done[p] = true;
                continue;
            }
            any = true;
            sys.processorAccess(p, rec.type, rec.addr);
        }
    }
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

double
runScalar(sim::SmpSystem &sys, const Traces &traces)
{
    return runScalarSources(sys, sourcesFor(traces));
}

/** The pre-change pipeline end to end: per-reference synthesis. */
double
runScalarSynth(sim::SmpSystem &sys, const trace::Workload &workload,
               unsigned nprocs)
{
    std::vector<trace::TraceSourcePtr> sources;
    sources.reserve(nprocs);
    for (unsigned p = 0; p < nprocs; ++p)
        sources.push_back(workload.makeSource(p));
    return runScalarSources(sys, std::move(sources));
}

double
runBatched(sim::SmpSystem &sys, const Traces &traces)
{
    sys.attachSources(sourcesFor(traces));
    const auto t0 = Clock::now();
    sys.run();
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Every architectural counter of two runs must agree exactly;
 *  @p andFilters additionally requires bit-identical filter stats. */
void
requireIdentical(const sim::SmpSystem &a, const sim::SmpSystem &b,
                 const std::string &what, bool andFilters)
{
    const auto x = a.stats().aggregate();
    const auto y = b.stats().aggregate();
    if (x.accesses != y.accesses || x.l1Hits != y.l1Hits ||
        x.l1Misses != y.l1Misses || x.l2LocalHits != y.l2LocalHits ||
        x.l2Fills != y.l2Fills || x.snoopTagProbes != y.snoopTagProbes ||
        x.snoopHits != y.snoopHits || x.snoopMisses != y.snoopMisses ||
        x.busReads != y.busReads || x.busReadXs != y.busReadXs ||
        x.busUpgrades != y.busUpgrades ||
        x.wbInsertions != y.wbInsertions ||
        x.wbReclaims != y.wbReclaims ||
        a.stats().snoopTransactions != b.stats().snoopTransactions) {
        fatal("bench_snoopbus: " + what + " diverged architecturally");
    }
    const std::string state_diff =
        verify::diffSnapshots(verify::snapshotOf(a), verify::snapshotOf(b));
    if (!state_diff.empty())
        fatal("bench_snoopbus: " + what + " machine state diverged:\n" +
              state_diff);
    for (std::size_t f = 0; f < a.bank(0).size(); ++f) {
        const auto fa = a.mergedFilterStats(f);
        const auto fb = b.mergedFilterStats(f);
        if (fa.safetyViolations != 0 || fb.safetyViolations != 0)
            fatal("bench_snoopbus: " + what + " saw a safety violation");
        if (!andFilters)
            continue;
        if (fa.probes != fb.probes || fa.filtered != fb.filtered ||
            fa.wouldMiss != fb.wouldMiss ||
            fa.filteredWouldMiss != fb.filteredWouldMiss ||
            fa.snoopAllocs != fb.snoopAllocs ||
            fa.fillUpdates != fb.fillUpdates ||
            fa.evictUpdates != fb.evictUpdates) {
            fatal("bench_snoopbus: " + what + " filter stats diverged on " +
                  a.bank(0).filterAt(f).name());
        }
    }
}

struct BusRow
{
    unsigned buses = 0;
    double seconds = 0;
    double busiestUtilization = 0;
    double busiestWaitBusCycles = 0;
    std::vector<std::uint64_t> perBusTxns;
};

struct Measurement
{
    std::uint64_t refs = 0;
    double scalarSeconds = 0;        //!< pre-change pipeline (synthesis)
    double scalarReplaySeconds = 0;  //!< scalar delivery over the capture
    double captureSeconds = 0;       //!< one-time materialization cost
    std::vector<BusRow> rows;        //!< one per bus count

    double
    speedupAt(unsigned buses) const
    {
        for (const auto &row : rows) {
            if (row.buses == buses)
                return row.seconds > 0 ? scalarSeconds / row.seconds
                                       : 0.0;
        }
        return 0.0;
    }
};

Measurement
measure(const trace::AppProfile &profile, double scale, unsigned repeats,
        const std::vector<unsigned> &busCounts)
{
    experiments::SystemVariant variant;
    sim::SmpConfig base = variant.smpConfig();
    base.filterSpecs = kFilters;

    const trace::Workload workload(profile, base.nprocs, scale);

    const auto cap0 = Clock::now();
    const Traces traces = materialize(workload, base.nprocs);

    Measurement m;
    m.captureSeconds =
        std::chrono::duration<double>(Clock::now() - cap0).count();

    // The pre-change pipeline: per-reference synthesis + scalar
    // delivery + immediate snoop evaluation. One system is kept for the
    // correctness gates below; times are the median over the repeats.
    sim::SmpSystem scalar_sys(base);
    std::vector<double> scalar_times;
    {
        scalar_times.push_back(
            runScalarSynth(scalar_sys, workload, base.nprocs));
        m.refs = scalar_sys.stats().aggregate().accesses;
    }
    for (unsigned r = 1; r < repeats; ++r) {
        sim::SmpSystem sys(base);
        scalar_times.push_back(
            runScalarSynth(sys, workload, base.nprocs));
    }
    m.scalarSeconds = medianInPlace(scalar_times);

    // Decomposition row: the same scalar delivery over the materialized
    // capture, isolating the synthesis share of the end-to-end win (and
    // proving, via the gate below, that the capture replays the
    // synthesized stream exactly).
    std::unique_ptr<sim::SmpSystem> scalar_replay_sys;
    std::vector<double> replay_times;
    for (unsigned r = 0; r < repeats; ++r) {
        auto sys = std::make_unique<sim::SmpSystem>(base);
        replay_times.push_back(runScalar(*sys, traces));
        scalar_replay_sys = std::move(sys);
    }
    m.scalarReplaySeconds = medianInPlace(replay_times);
    requireIdentical(scalar_sys, *scalar_replay_sys,
                     profile.abbrev + " synthesized vs replayed scalar",
                     /*andFilters=*/true);

    std::unique_ptr<sim::SmpSystem> one_bus;
    for (const unsigned buses : busCounts) {
        sim::SmpConfig cfg = base;
        cfg.snoopBuses = buses;

        BusRow row;
        row.buses = buses;
        std::unique_ptr<sim::SmpSystem> kept;
        std::vector<double> batched_times;
        for (unsigned r = 0; r < repeats; ++r) {
            auto sys = std::make_unique<sim::SmpSystem>(cfg);
            batched_times.push_back(runBatched(*sys, traces));
            kept = std::move(sys);
        }
        row.seconds = medianInPlace(batched_times);

        const auto contention =
            sim::evaluateBusContention(kept->stats());
        row.busiestUtilization = contention.busiestUtilization;
        row.busiestWaitBusCycles = contention.busiestWaitBusCycles;
        for (const auto &bus : kept->stats().perBus)
            row.perBusTxns.push_back(bus.transactions);

        // Correctness gates (DESIGN.md: split-bus determinism contract).
        if (buses == 1) {
            requireIdentical(scalar_sys, *kept,
                             profile.abbrev + " scalar vs batched(1 bus)",
                             /*andFilters=*/true);
            one_bus = std::move(kept);
        } else if (one_bus) {
            requireIdentical(*one_bus, *kept,
                             profile.abbrev + " 1 bus vs " +
                                 std::to_string(buses) + " buses",
                             /*andFilters=*/false);
        }
        m.rows.push_back(std::move(row));
    }
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out;
    unsigned repeats = 3;
    double scale = 0.5;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
            repeats = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            scale = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: bench_snoopbus [--smoke] [--out FILE] "
                         "[--repeat N] [--scale F]\n");
            return 1;
        }
    }
    if (repeats < 1)
        repeats = 1;
    if (smoke)
        scale = std::min(scale, 0.05);
    if (out.empty() && !smoke)
        out = "BENCH_snoopbus.json";

    const std::vector<unsigned> bus_counts = {1, 2, 4};

    struct App
    {
        std::string name;
        Measurement m;
    };
    std::vector<App> apps;
    for (const char *name : {"lu", "fm"}) {
        apps.push_back(
            {name, measure(trace::appByName(name), scale, repeats,
                           bus_counts)});
    }

    TextTable table;
    table.header({"workload", "refs", "buses", "batched Mrefs/s",
                  "speedup", "busiest util", "wait (bus cyc)"});
    for (const auto &app : apps) {
        for (const auto &row : app.m.rows) {
            table.row({
                app.name,
                TextTable::count(app.m.refs),
                std::to_string(row.buses),
                TextTable::num(app.m.refs / row.seconds / 1e6, 1),
                TextTable::num(app.m.scalarSeconds / row.seconds, 2) + "x",
                TextTable::num(100.0 * row.busiestUtilization, 1) + "%",
                TextTable::num(row.busiestWaitBusCycles, 2),
            });
        }
        std::printf("%s scalar pipeline: %.1f Mrefs/s synthesized "
                    "(%.1f Mrefs/s replaying the capture; capture took "
                    "%.2f s)\n",
                    app.name.c_str(),
                    app.m.refs / app.m.scalarSeconds / 1e6,
                    app.m.refs / app.m.scalarReplaySeconds / 1e6,
                    app.m.captureSeconds);
    }
    table.print();

    const double headline = apps.front().m.speedupAt(4);
    std::printf("\nheadline (lu, 4 buses) batched-vs-scalar: %.2fx %s\n",
                headline,
                headline >= 1.8 ? "(>= 1.8x target met)"
                                : "(below the 1.8x target)");

    if (!out.empty()) {
        // One api::Report (DESIGN.md schema): the pre-Report emitter's
        // fields preserved under the versioned envelope, with the
        // machine/filters/bus axis echoed as an ExperimentSpec.
        api::ExperimentSpec spec;
        spec.filters = kFilters;
        spec.scale = scale;
        spec.benchRepeat = repeats;
        spec.sweepBuses = bus_counts;
        for (const auto &app : apps)
            spec.apps.push_back(app.name);

        api::Report report("snoopbus");
        report.echoSpec(spec);
        auto &root = report.root();
        root.set("bench", "snoopbus");
        root.set("smoke", smoke);
        root.set("procs", 4);
        root.set("filters",
                 static_cast<std::uint64_t>(kFilters.size()));
        root.set("repeats", repeats);
        root.set("scale", scale);
        root.set("bit_identity", true);
        root.set("headline_lu_speedup_4buses", headline);
        json::Value workloads = json::Value::array();
        for (const auto &app : apps) {
            const double refs = static_cast<double>(app.m.refs);
            json::Value w = json::Value::object();
            w.set("name", app.name);
            w.set("refs", app.m.refs);
            w.set("scalar_refs_per_sec",
                  api::Report::ratio(refs, app.m.scalarSeconds));
            w.set("scalar_replay_refs_per_sec",
                  api::Report::ratio(refs, app.m.scalarReplaySeconds));
            w.set("capture_seconds", app.m.captureSeconds);
            json::Value bus_rows = json::Value::array();
            for (const auto &row : app.m.rows) {
                json::Value r = json::Value::object();
                r.set("buses", row.buses);
                r.set("batched_refs_per_sec",
                      api::Report::ratio(refs, row.seconds));
                r.set("speedup_vs_scalar",
                      api::Report::ratio(app.m.scalarSeconds,
                                         row.seconds));
                r.set("busiest_utilization", row.busiestUtilization);
                r.set("busiest_wait_bus_cycles",
                      row.busiestWaitBusCycles);
                json::Value txns = json::Value::array();
                for (const std::uint64_t t : row.perBusTxns)
                    txns.push(t);
                r.set("per_bus_transactions", std::move(txns));
                bus_rows.push(std::move(r));
            }
            w.set("bus_rows", std::move(bus_rows));
            workloads.push(std::move(w));
        }
        root.set("workloads", std::move(workloads));
        report.writeFile(out);
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}
