/**
 * @file
 * Regenerates Figure 2: the Appendix-A analytical model of the energy
 * consumed by snoop-induced tag lookups that miss, as a fraction of all
 * L2 energy, swept over the local hit rate (X axis) for remote hit rates
 * 0%..90% in 10% steps, for 1MB 4-way L2s with 32-byte and 64-byte
 * blocks on a 4-way SMP.
 *
 * Paper reference: monotonically decreasing families of curves; with a
 * 50% local hit rate and a 10% remote hit rate, snoop-miss tag lookups
 * are ~33% of all L2 energy for 32-byte blocks; the 64-byte organization
 * sits lower because its data array costs more per access.
 */

#include <cstdio>

#include "energy/analytical.hh"
#include "util/table.hh"

using namespace jetty;
using namespace jetty::energy;

namespace
{

void
sweep(unsigned blockBytes)
{
    CacheGeometry geom;
    geom.sizeBytes = 1024 * 1024;
    geom.assoc = 4;
    geom.blockBytes = blockBytes;
    geom.subblocks = 1;
    geom.physAddrBits = 36;

    const auto model = AnalyticalSnoopModel::forCache(geom, 4);

    TextTable table;
    std::vector<std::string> head{"local L"};
    for (int r = 0; r <= 90; r += 10)
        head.push_back("R=" + std::to_string(r) + "%");
    table.header(head);

    for (int l10 = 0; l10 <= 10; ++l10) {
        const double l = l10 / 10.0;
        std::vector<std::string> row{TextTable::num(l, 1)};
        for (int r = 0; r <= 90; r += 10) {
            const auto res = model.evaluate(l, r / 100.0);
            row.push_back(TextTable::pct(100.0 * res.snoopMissFraction));
        }
        table.row(std::move(row));
    }

    std::printf("Figure 2 (%uB lines): snoop-miss tag energy as %% of all "
                "L2 energy\n\n", blockBytes);
    table.print();

    const auto probe = model.evaluate(0.5, 0.1);
    std::printf("\nAt L=0.5, R=0.1: %.1f%% (paper cites ~33%% for 32B "
                "blocks)\n\n", 100.0 * probe.snoopMissFraction);
}

} // namespace

int
main()
{
    sweep(32);
    sweep(64);
    return 0;
}
