/**
 * @file
 * Differential verification tests: the golden MOESI model against the
 * real system (scalar and batched), the online invariant checkers, the
 * coverage-guided fuzzer, trace shrinking, and repro round-trips —
 * including a deliberately broken filter family (registered only in this
 * test binary) that the no-false-negative checker must catch.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "api/experiment_spec.hh"
#include "core/filter_registry.hh"
#include "sim/smp_system.hh"
#include "trace/trace_source.hh"
#include "util/json.hh"
#include "util/random.hh"
#include "verify/fuzzer.hh"
#include "verify/golden_smp.hh"
#include "verify/invariants.hh"

using namespace jetty;
using namespace jetty::verify;
using coherence::State;

namespace
{

sim::SmpConfig
smallConfig(unsigned nprocs = 4)
{
    sim::SmpConfig cfg = FuzzConfig::defaultSystem();
    cfg.nprocs = nprocs;
    return cfg;
}

/** Drive the real system (via processorAccess) and the golden model in
 *  lockstep with the same pseudo-random reference stream, comparing the
 *  full machine state every @p compareEvery references. */
void
lockstepCompare(const sim::SmpConfig &cfg, std::uint64_t refs,
                std::uint64_t rngSeed, std::uint64_t compareEvery)
{
    sim::SmpSystem sys(cfg);
    GoldenSmp golden(cfg);
    Rng rng(rngSeed);
    for (std::uint64_t i = 0; i < refs; ++i) {
        const ProcId p = static_cast<ProcId>(rng.below(cfg.nprocs));
        const Addr a = 0x40000 + rng.below(1024) * 32;
        const AccessType t =
            rng.chance(0.4) ? AccessType::Write : AccessType::Read;
        sys.processorAccess(p, t, a);
        golden.access(p, t, a);
        if ((i + 1) % compareEvery == 0) {
            ASSERT_EQ(diffSnapshots(golden.snapshot(), snapshotOf(sys)),
                      "")
                << "diverged at reference " << i;
        }
    }
    EXPECT_EQ(diffSnapshots(golden.snapshot(), snapshotOf(sys)), "");

    // The golden machine routes with its own restatement of the split
    // interconnect's interleave: per-bus transaction counts must agree
    // for any bus count (trivially so at one bus).
    const auto &gbus = golden.busTransactions();
    ASSERT_EQ(gbus.size(), sys.stats().perBus.size());
    for (std::size_t b = 0; b < gbus.size(); ++b)
        EXPECT_EQ(gbus[b], sys.stats().perBus[b].transactions) << b;
}

} // namespace

TEST(GoldenSmp, LockstepAgreesWithRealSystem)
{
    lockstepCompare(smallConfig(), 20000, 11, 1000);
}

TEST(GoldenSmp, LockstepAgreesOnEightWayNonSubblocked)
{
    sim::SmpConfig cfg = smallConfig(8);
    cfg.l2.blockBytes = 32;
    cfg.l2.subblocks = 1;
    cfg.l1.blockBytes = 32;
    lockstepCompare(cfg, 10000, 12, 500);
}

TEST(GoldenSmp, WritebackReclaimAfterRemoteReadStaysCoherent)
{
    // The scenario the differential subsystem originally caught: a dirty
    // victim in the WB is snooped by a remote BusRead (supplying data),
    // then reclaimed by its owner. The reclaim must come back Owned, not
    // Modified, or the owner could later write without invalidating the
    // reader.
    const sim::SmpConfig cfg = smallConfig();
    sim::SmpSystem sys(cfg);
    GoldenSmp golden(cfg);
    const Addr kA = 0x10000;
    const auto both = [&](ProcId p, AccessType t, Addr a) {
        sys.processorAccess(p, t, a);
        golden.access(p, t, a);
    };
    both(0, AccessType::Write, kA);        // p0: M
    both(0, AccessType::Read, kA + 8192);  // evict kA -> p0's WB
    both(1, AccessType::Read, kA);         // WB supplies; p1: S
    both(0, AccessType::Read, kA);         // p0 reclaims
    EXPECT_EQ(sys.l2(0).probe(kA).state, State::Owned);
    both(0, AccessType::Write, kA);        // must invalidate p1
    EXPECT_EQ(sys.l2(0).probe(kA).state, State::Modified);
    EXPECT_FALSE(sys.l2(1).probe(kA).unitValid);
    EXPECT_EQ(diffSnapshots(golden.snapshot(), snapshotOf(sys)), "");
}

TEST(GoldenSmp, SplitBusLockstepAgreesAndRoutesIdentically)
{
    // snoopBuses in {2, 4}: the machine state must stay bit-exact
    // against the golden model (the interleave never changes coherence)
    // and the independently restated per-bus routing must agree.
    for (const unsigned buses : {2u, 4u}) {
        sim::SmpConfig cfg = smallConfig();
        cfg.snoopBuses = buses;
        lockstepCompare(cfg, 20000, 11 + buses, 1000);
    }
}

TEST(Differential, MillionReferenceFuzzedRunMatchesGoldenBitExactly)
{
    // The acceptance anchor: a 1M-reference adversarial 4-processor run
    // with every built-in filter family in the bank, replayed through
    // the batched hot path (hooks unset) and through the golden model;
    // the final cache + filter-visible state must agree bit-exactly.
    FuzzConfig cfg;
    cfg.refsPerProc = 250'000;  // x4 processors = 1M references
    TraceFuzzer fuzzer(cfg);
    std::array<double, kPatternCount> weights;
    weights.fill(1.0);
    const TraceSet traces = fuzzer.generate(cfg.seed, weights);

    std::uint64_t total = 0;
    for (const auto &t : traces)
        total += t.size();
    ASSERT_EQ(total, 1'000'000u);

    const auto sources = [&traces] {
        std::vector<trace::TraceSourcePtr> s;
        for (const auto &t : traces)
            s.push_back(std::make_unique<trace::VectorTraceSource>(t));
        return s;
    };

    sim::SmpSystem batched(cfg.system);
    batched.attachSources(sources());
    batched.run();

    GoldenSmp golden(cfg.system);
    golden.attachSources(sources());
    golden.run();

    EXPECT_EQ(golden.references(), total);
    EXPECT_EQ(diffSnapshots(golden.snapshot(), snapshotOf(batched)), "");
}

TEST(Differential, MillionReferenceSplitBusRunsStayBitExact)
{
    // The split-bus acceptance anchor: the same 1M-reference adversarial
    // trace set replayed through the batched hot path at 2 and 4 buses
    // must land on exactly the golden machine state (the bus count never
    // changes coherence), route per bus exactly as the golden model's
    // independent interleave says, keep every architectural counter
    // bit-identical to the single-bus run, and filter nothing unsafely
    // under the bus-major deferred replay.
    FuzzConfig cfg;
    cfg.refsPerProc = 250'000;  // x4 processors = 1M references
    TraceFuzzer fuzzer(cfg);
    std::array<double, kPatternCount> weights;
    weights.fill(1.0);
    const TraceSet traces = fuzzer.generate(cfg.seed, weights);

    const auto sources = [&traces] {
        std::vector<trace::TraceSourcePtr> s;
        for (const auto &t : traces)
            s.push_back(std::make_unique<trace::VectorTraceSource>(t));
        return s;
    };

    sim::SmpConfig one_cfg = cfg.system;
    one_cfg.snoopBuses = 1;
    sim::SmpSystem one_bus(one_cfg);
    one_bus.attachSources(sources());
    one_bus.run();
    const auto one_agg = one_bus.stats().aggregate();

    for (const unsigned buses : {2u, 4u}) {
        sim::SmpConfig bus_cfg = cfg.system;
        bus_cfg.snoopBuses = buses;

        sim::SmpSystem batched(bus_cfg);
        batched.attachSources(sources());
        batched.run();

        GoldenSmp golden(bus_cfg);
        golden.attachSources(sources());
        golden.run();

        EXPECT_EQ(diffSnapshots(golden.snapshot(), snapshotOf(batched)),
                  "")
            << buses << " buses";

        const auto &gbus = golden.busTransactions();
        ASSERT_EQ(gbus.size(), buses);
        std::uint64_t routed = 0;
        for (std::size_t b = 0; b < buses; ++b) {
            EXPECT_EQ(gbus[b], batched.stats().perBus[b].transactions)
                << "bus " << b << " of " << buses;
            routed += batched.stats().perBus[b].transactions;
        }
        EXPECT_EQ(routed, batched.stats().snoopTransactions);

        const auto agg = batched.stats().aggregate();
        EXPECT_EQ(agg.accesses, one_agg.accesses);
        EXPECT_EQ(agg.l1Hits, one_agg.l1Hits);
        EXPECT_EQ(agg.snoopTagProbes, one_agg.snoopTagProbes);
        EXPECT_EQ(agg.snoopMisses, one_agg.snoopMisses);
        EXPECT_EQ(agg.busReads, one_agg.busReads);
        EXPECT_EQ(agg.busUpgrades, one_agg.busUpgrades);
        EXPECT_EQ(agg.wbInsertions, one_agg.wbInsertions);
        EXPECT_EQ(batched.stats().snoopTransactions,
                  one_bus.stats().snoopTransactions);

        // The bus-major deferred replay must stay safe for every family
        // (the per-structure orderings the interleave preserves).
        for (std::size_t f = 0; f < batched.bank(0).size(); ++f) {
            EXPECT_EQ(batched.mergedFilterStats(f).safetyViolations, 0u)
                << batched.bank(0).filterAt(f).name() << " at " << buses
                << " buses";
        }
    }
}

TEST(Differential, ThreadedReplayIsBitIdenticalToSequential)
{
    // SmpConfig::replayThreads is a pure wall-clock knob: the chunk-end
    // filter replay parallelizes over (node, filter) tasks whose state
    // is disjoint, and the safety-panic decision joins deterministically
    // — so any thread count must produce the sequential run bit-for-bit
    // (machine state, architectural counters, every per-filter
    // statistic), at any bus count. Anchor it under the same
    // 1M-reference adversarial trace set as the other differential
    // acceptance tests, across 1/2/4 buses.
    FuzzConfig cfg;
    cfg.refsPerProc = 250'000;  // x4 processors = 1M references
    TraceFuzzer fuzzer(cfg);
    std::array<double, kPatternCount> weights;
    weights.fill(1.0);
    const TraceSet traces = fuzzer.generate(cfg.seed, weights);

    const auto sources = [&traces] {
        std::vector<trace::TraceSourcePtr> s;
        for (const auto &t : traces)
            s.push_back(std::make_unique<trace::VectorTraceSource>(t));
        return s;
    };

    for (const unsigned buses : {1u, 2u, 4u}) {
        sim::SmpConfig seq_cfg = cfg.system;
        seq_cfg.snoopBuses = buses;
        seq_cfg.replayThreads = 1;
        sim::SmpSystem sequential(seq_cfg);
        sequential.attachSources(sources());
        sequential.run();
        const auto seq_agg = sequential.stats().aggregate();

        for (const unsigned threads : {2u, 4u}) {
            sim::SmpConfig par_cfg = seq_cfg;
            par_cfg.replayThreads = threads;
            sim::SmpSystem threaded(par_cfg);
            threaded.attachSources(sources());
            threaded.run();

            EXPECT_EQ(diffSnapshots(snapshotOf(sequential),
                                    snapshotOf(threaded)),
                      "")
                << buses << " buses, " << threads << " replay threads";

            const auto agg = threaded.stats().aggregate();
            EXPECT_EQ(agg.accesses, seq_agg.accesses);
            EXPECT_EQ(agg.l1Hits, seq_agg.l1Hits);
            EXPECT_EQ(agg.snoopTagProbes, seq_agg.snoopTagProbes);
            EXPECT_EQ(agg.snoopMisses, seq_agg.snoopMisses);
            EXPECT_EQ(agg.busReads, seq_agg.busReads);
            EXPECT_EQ(agg.busUpgrades, seq_agg.busUpgrades);
            EXPECT_EQ(agg.wbInsertions, seq_agg.wbInsertions);

            ASSERT_EQ(threaded.bank(0).size(), sequential.bank(0).size());
            for (std::size_t f = 0; f < threaded.bank(0).size(); ++f) {
                const auto fs = threaded.mergedFilterStats(f);
                const auto fq = sequential.mergedFilterStats(f);
                EXPECT_EQ(fs.probes, fq.probes);
                EXPECT_EQ(fs.filtered, fq.filtered);
                EXPECT_EQ(fs.wouldMiss, fq.wouldMiss);
                EXPECT_EQ(fs.filteredWouldMiss, fq.filteredWouldMiss);
                EXPECT_EQ(fs.snoopAllocs, fq.snoopAllocs);
                EXPECT_EQ(fs.fillUpdates, fq.fillUpdates);
                EXPECT_EQ(fs.evictUpdates, fq.evictUpdates);
                EXPECT_EQ(fs.safetyViolations, 0u)
                    << threaded.bank(0).filterAt(f).name() << " at "
                    << buses << " buses, " << threads << " threads";
            }
        }
    }
}

TEST(Differential, PipelineWalkBitIdenticalAtOneTwoFourBuses)
{
    // The batched miss pipeline's acceptance proof on the associative
    // walk: with an L1 of assoc > 1, run() takes the three-stage route
    // (SIMD pre-classifier, bulk hit retirement, batched-setup drain)
    // instead of the fused direct-mapped drain. At 1, 2 and 4 buses the
    // same adversarial traces must land run(), the sequential step()
    // path, and the golden model on bit-identical machine state,
    // per-bus routing, and filter statistics.
    FuzzConfig fz;
    fz.refsPerProc = 50'000;  // x4 processors = 200k refs per bus count
    TraceFuzzer fuzzer(fz);
    std::array<double, kPatternCount> weights;
    weights.fill(1.0);
    const TraceSet traces = fuzzer.generate(fz.seed, weights);

    const auto sources = [&traces] {
        std::vector<trace::TraceSourcePtr> s;
        for (const auto &t : traces)
            s.push_back(std::make_unique<trace::VectorTraceSource>(t));
        return s;
    };

    sim::SmpConfig base = fz.system;
    base.l1.sizeBytes = 2048;  // 16 sets x 4 ways
    base.l1.assoc = 4;

    for (const unsigned buses : {1u, 2u, 4u}) {
        sim::SmpConfig cfg = base;
        cfg.snoopBuses = buses;

        sim::SmpSystem batched(cfg);
        batched.attachSources(sources());
        batched.run();

        sim::SmpSystem seq(cfg);
        seq.attachSources(sources());
        while (seq.step()) {
        }

        GoldenSmp golden(cfg);
        golden.attachSources(sources());
        golden.run();

        EXPECT_EQ(diffSnapshots(golden.snapshot(), snapshotOf(batched)),
                  "")
            << buses << " buses";
        EXPECT_EQ(diffSnapshots(snapshotOf(seq), snapshotOf(batched)),
                  "")
            << buses << " buses";

        const auto ba = batched.stats().aggregate();
        const auto sa = seq.stats().aggregate();
        EXPECT_EQ(ba.accesses, sa.accesses) << buses;
        EXPECT_EQ(ba.l1Hits, sa.l1Hits) << buses;
        EXPECT_EQ(ba.l1Misses, sa.l1Misses) << buses;
        EXPECT_EQ(ba.busReads, sa.busReads) << buses;
        EXPECT_EQ(ba.busReadXs, sa.busReadXs) << buses;
        EXPECT_EQ(ba.busUpgrades, sa.busUpgrades) << buses;
        EXPECT_EQ(ba.wbInsertions, sa.wbInsertions) << buses;
        EXPECT_EQ(ba.snoopTagProbes, sa.snoopTagProbes) << buses;
        for (unsigned b = 0; b < buses; ++b) {
            EXPECT_EQ(batched.stats().perBus[b].transactions,
                      seq.stats().perBus[b].transactions)
                << "bus " << b << " of " << buses;
        }
        for (std::size_t f = 0; f < batched.bank(0).size(); ++f) {
            const auto bf = batched.mergedFilterStats(f);
            const auto sf = seq.mergedFilterStats(f);
            EXPECT_EQ(bf.probes, sf.probes) << f << " at " << buses;
            EXPECT_EQ(bf.fillUpdates, sf.fillUpdates)
                << f << " at " << buses;
            EXPECT_EQ(bf.evictUpdates, sf.evictUpdates)
                << f << " at " << buses;
            EXPECT_EQ(bf.safetyViolations, 0u) << f << " at " << buses;
            // Filter *decisions* are order-sensitive: the deferred
            // replay interleaves whole buses, which is the exact
            // immediate order only on a single bus (run()'s contract) —
            // with more buses the counts may differ while the machine
            // state above stays bit-identical.
            if (buses == 1) {
                EXPECT_EQ(bf.filtered, sf.filtered) << f;
                EXPECT_EQ(bf.filteredWouldMiss, sf.filteredWouldMiss)
                    << f;
            }
        }
    }
}

TEST(Differential, PipelineWalkFuzzCampaignIsClean)
{
    // A full fuzzer campaign (step-checked invariants, golden compare,
    // batched compare, randomized 1/2/4 bus counts) over the
    // associative-L1 geometry, so the Stage-1/2 pipeline code path gets
    // the same adversarial sweep the fused walk gets from the default
    // campaigns.
    FuzzConfig cfg;
    cfg.rounds = 6;
    cfg.refsPerProc = 8192;
    cfg.system.l1.sizeBytes = 2048;
    cfg.system.l1.assoc = 4;
    const FuzzResult result = TraceFuzzer(cfg).run();
    EXPECT_FALSE(result.failed) << result.invariant << ": "
                                << result.detail;
    EXPECT_EQ(result.roundsRun, 6u);
}

TEST(Differential, MillionReferenceCampaignWithRandomizedBusesIsClean)
{
    // The checklist's fuzzed campaign: >= 1M references across rounds
    // whose bus counts cycle through 1/2/4 (FuzzConfig::randomizeBuses,
    // on by default), each round step-checked with the full invariant
    // suite (including bus routing), golden-compared and
    // batched-compared.
    FuzzConfig cfg;
    cfg.rounds = 13;
    cfg.refsPerProc = 20'000;  // 13 x 20k x 4 procs > 1M references
    const FuzzResult result = TraceFuzzer(cfg).run();
    EXPECT_FALSE(result.failed) << result.invariant << ": "
                                << result.detail;
    EXPECT_EQ(result.roundsRun, 13u);
    EXPECT_GE(result.totalRefs, 1'000'000u);
}

TEST(CheckerSuite, BusRoutingViolationIsCaught)
{
    // White-box: hand the checker a snoop event carrying the wrong bus
    // id; the independently restated interleave must flag it.
    sim::SmpConfig cfg = smallConfig();
    cfg.snoopBuses = 2;
    cfg.checkSafety = false;
    sim::SmpSystem sys(cfg);
    CheckerSuite suite(sys, 0);

    sim::SnoopEvent ev;
    ev.requester = 0;
    ev.target = 1;
    ev.op = coherence::BusOp::BusRead;
    ev.unitAddr = 0x40000;  // block index even => home bus 0
    ev.before = State::Invalid;
    ev.after = State::Invalid;
    ev.busId = 1;  // wrong on purpose
    suite.onSnoop(ev);
    ASSERT_FALSE(suite.log().clean());
    EXPECT_EQ(suite.log().violations().front().invariant, "bus-routing");
}

TEST(Differential, FuzzCampaignIsCleanAndCovers)
{
    FuzzConfig cfg;
    cfg.rounds = 6;
    cfg.refsPerProc = 2048;
    TraceFuzzer fuzzer(cfg);
    const FuzzResult result = fuzzer.run();
    EXPECT_FALSE(result.failed) << result.invariant << ": "
                                << result.detail;
    EXPECT_EQ(result.roundsRun, 6u);
    // The adversarial mixes must exercise a healthy share of the snoop
    // transition and filter outcome space (the unreachable cells are the
    // illegal ones, e.g. filtered-and-cached).
    EXPECT_GE(result.coverage.cellsCovered(),
              result.coverage.cellsTracked() / 2);
    EXPECT_GT(result.coverage.wbHits, 0u);
    EXPECT_GT(result.coverage.supplies, 0u);
    EXPECT_GT(result.coverage.invalidations, 0u);
}

TEST(CheckerSuite, AuditCatchesInjectedSingleWriterViolation)
{
    sim::SmpConfig cfg = smallConfig();
    cfg.checkSafety = false;
    sim::SmpSystem sys(cfg);
    const Addr kA = 0x20000;
    sys.processorAccess(0, AccessType::Read, kA);
    sys.processorAccess(1, AccessType::Read, kA);  // both Shared
    CheckerSuite suite(sys, 0);
    suite.audit();
    EXPECT_TRUE(suite.log().clean());

    // White-box corruption: promote one copy behind the protocol's back.
    sys.l2(0).setState(kA, State::Modified);
    suite.audit();
    EXPECT_FALSE(suite.log().clean());
    EXPECT_EQ(suite.log().violations().front().invariant, "single-writer");
}

TEST(CheckerSuite, AuditCatchesInclusionBreak)
{
    sim::SmpConfig cfg = smallConfig();
    cfg.checkSafety = false;
    sim::SmpSystem sys(cfg);
    const Addr kA = 0x20000;
    sys.processorAccess(0, AccessType::Read, kA);
    sys.l2(0).invalidateUnit(kA);  // L1 line now orphaned
    CheckerSuite suite(sys, 0);
    suite.audit();
    ASSERT_FALSE(suite.log().clean());
    EXPECT_EQ(suite.log().violations().front().invariant, "l1-inclusion");
}

// ---- fault injection: a filter family that lies ------------------------

namespace
{

/**
 * A deliberately broken JETTY: behaves like NULL except that every
 * @c period-th probe answers "definitely absent" regardless of ground
 * truth — the exact failure mode the no-false-negative checker exists to
 * catch. Registered only in this test binary.
 */
class FaultyFilter : public filter::SnoopFilter
{
  public:
    explicit FaultyFilter(unsigned period) : period_(period) {}

    bool
    probe(Addr) override
    {
        return ++probes_ % period_ == 0;
    }

    void onSnoopMiss(Addr, bool) override {}
    void onFill(Addr) override {}
    void onEvict(Addr) override {}
    void clear() override { probes_ = 0; }
    filter::StorageBreakdown storage() const override { return {}; }

    energy::FilterEnergyCosts
    energyCosts(const energy::Technology &) const override
    {
        return {};
    }

    std::string
    name() const override
    {
        return "FAULTY-" + std::to_string(period_);
    }

  private:
    unsigned period_;
    std::uint64_t probes_ = 0;
};

bool
parseFaulty(const std::string &spec, const filter::AddressMap &,
            filter::SnoopFilterPtr *out)
{
    if (spec.rfind("FAULTY-", 0) != 0)
        return false;
    const unsigned period =
        static_cast<unsigned>(std::atoi(spec.substr(7).c_str()));
    if (period == 0)
        return false;
    if (out)
        *out = std::make_unique<FaultyFilter>(period);
    return true;
}

const filter::FamilyRegistrar registerFaulty({
    "FAULTY",
    "FAULTY-<period>",
    "test-only fault injection: lies on every period-th probe",
    "FAULTY-7",
    parseFaulty,
});

} // namespace

TEST(Differential, BrokenFilterIsCaughtAndShrunkToSmallRepro)
{
    FuzzConfig cfg;
    cfg.rounds = 4;
    cfg.refsPerProc = 1024;
    cfg.system.filterSpecs = {"NULL", "FAULTY-7"};
    TraceFuzzer fuzzer(cfg);
    const FuzzResult result = fuzzer.run();

    ASSERT_TRUE(result.failed);
    EXPECT_EQ(result.invariant, "no-false-negative");
    EXPECT_NE(result.detail.find("FAULTY-7"), std::string::npos)
        << result.detail;
    // The acceptance bound: the shrunk repro is tiny.
    EXPECT_LE(result.records(), 200u);
    EXPECT_GT(result.records(), 0u);

    // The shrunk trace still reproduces the violation on a fresh system.
    EXPECT_NE(TraceFuzzer::checkOnce(cfg.system, result.traces,
                                     cfg.auditEvery, false, false,
                                     nullptr),
              "");

    // Round-trip through the repro file format; the reloaded traces must
    // reproduce too, and the sidecar header documents the seed.
    const std::string path = ::testing::TempDir() + "jetty_fuzz_repro.jtt";
    writeRepro(path, result, cfg);
    const TraceSet reloaded = readReproTraces(path);
    ASSERT_EQ(reloaded.size(), result.traces.size());
    EXPECT_NE(TraceFuzzer::checkOnce(cfg.system, reloaded, cfg.auditEvery,
                                     false, false, nullptr),
              "");

    // The sidecar restores the machine the failure was caught on —
    // including the faulty filter bank — so a replay cannot silently run
    // the default configuration and report "clean".
    sim::SmpConfig restored;  // defaults, deliberately wrong
    ASSERT_TRUE(readReproConfig(path, restored));
    EXPECT_EQ(restored.filterSpecs, cfg.system.filterSpecs);
    EXPECT_EQ(restored.nprocs, cfg.system.nprocs);
    EXPECT_EQ(restored.l1.sizeBytes, cfg.system.l1.sizeBytes);
    EXPECT_EQ(restored.l2.sizeBytes, cfg.system.l2.sizeBytes);
    EXPECT_EQ(restored.l2.subblocks, cfg.system.l2.subblocks);
    EXPECT_EQ(restored.wbEntries, cfg.system.wbEntries);
    EXPECT_EQ(restored.snoopBuses, result.snoopBuses);
    EXPECT_NE(TraceFuzzer::checkOnce(restored, reloaded, cfg.auditEvery,
                                     false, false, nullptr),
              "");

    // The sidecar is a JSON document whose embedded ExperimentSpec
    // parses back to exactly the restored machine, and whose metadata
    // documents the campaign seed and invariant.
    std::string err;
    const json::Value doc =
        json::parseFile(path + ".json", &err);
    ASSERT_EQ(err, "");
    ASSERT_NE(doc.find("seed"), nullptr);
    EXPECT_EQ(doc.find("seed")->asU64(), kDefaultRngSeed);
    ASSERT_NE(doc.find("invariant"), nullptr);
    EXPECT_EQ(doc.find("invariant")->asString(), "no-false-negative");
    ASSERT_NE(doc.find("spec"), nullptr);
    const api::ExperimentSpec spec =
        api::ExperimentSpec::fromJson(*doc.find("spec"), &err);
    ASSERT_EQ(err, "") << err;
    EXPECT_EQ(spec.smpConfig().l1.sizeBytes, cfg.system.l1.sizeBytes);
    EXPECT_EQ(spec.smpConfig().snoopBuses, result.snoopBuses);
    EXPECT_EQ(spec.filters, cfg.system.filterSpecs);
    EXPECT_EQ(spec.fuzz.seed, result.seed);
    // The sidecar records the *actual* campaign budgets, not defaults.
    EXPECT_EQ(spec.fuzz.rounds, cfg.rounds);
    EXPECT_EQ(spec.fuzz.refsPerProc, cfg.refsPerProc);
    std::remove(path.c_str());
    std::remove((path + ".json").c_str());
}

TEST(Differential, LegacyTxtSidecarStillRestoresTheMachine)
{
    // Pre-spec builds wrote "<path>.txt" key=value sidecars; those
    // repros must keep replaying on their recorded machine. Fabricate
    // one in the old format (no .json alongside) and restore it.
    const std::string path = ::testing::TempDir() + "jetty_legacy_repro";
    std::FILE *f = std::fopen((path + ".txt").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f,
                 "# jetty fuzz repro (traces in %s)\n"
                 "seed=7\n"
                 "invariant=no-false-negative\n"
                 "nprocs=8\n"
                 "snoop_buses=2\n"
                 "l1=2048/1/32\n"
                 "l2=16384/1/64/2\n"
                 "wb_entries=4\n"
                 "filters=NULL;EJ-16x2\n"
                 "records=12\n",
                 path.c_str());
    std::fclose(f);

    sim::SmpConfig restored;
    ASSERT_TRUE(readReproConfig(path, restored));
    EXPECT_EQ(restored.nprocs, 8u);
    EXPECT_EQ(restored.snoopBuses, 2u);
    EXPECT_EQ(restored.l1.sizeBytes, 2048u);
    EXPECT_EQ(restored.l2.sizeBytes, 16384u);
    EXPECT_EQ(restored.l2.subblocks, 2u);
    EXPECT_EQ(restored.wbEntries, 4u);
    EXPECT_EQ(restored.filterSpecs,
              (std::vector<std::string>{"NULL", "EJ-16x2"}));
    std::remove((path + ".txt").c_str());
}

TEST(Differential, CorrectFiltersSurviveTheFaultyCampaignConfig)
{
    // Identical campaign but with honest filters: must be clean, which
    // pins the failure above on the fault injection rather than on the
    // campaign shape.
    FuzzConfig cfg;
    cfg.rounds = 4;
    cfg.refsPerProc = 1024;
    cfg.system.filterSpecs = {"NULL", "EJ-16x2"};
    const FuzzResult result = TraceFuzzer(cfg).run();
    EXPECT_FALSE(result.failed) << result.invariant << ": "
                                << result.detail;
}

TEST(Fuzzer, GenerationIsDeterministic)
{
    FuzzConfig cfg;
    cfg.refsPerProc = 512;
    TraceFuzzer fuzzer(cfg);
    std::array<double, kPatternCount> weights;
    weights.fill(1.0);
    const TraceSet a = fuzzer.generate(42, weights);
    const TraceSet b = fuzzer.generate(42, weights);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
        ASSERT_EQ(a[p].size(), b[p].size()) << p;
        for (std::size_t i = 0; i < a[p].size(); ++i) {
            EXPECT_EQ(a[p][i].addr, b[p][i].addr);
            EXPECT_EQ(a[p][i].type, b[p][i].type);
        }
    }
    const TraceSet c = fuzzer.generate(43, weights);
    bool any_diff = false;
    for (std::size_t p = 0; p < a.size() && !any_diff; ++p) {
        for (std::size_t i = 0; i < a[p].size(); ++i) {
            if (a[p][i].addr != c[p][i].addr) {
                any_diff = true;
                break;
            }
        }
    }
    EXPECT_TRUE(any_diff);  // different round seeds, different traces
}

TEST(Fuzzer, EveryPureNamedPatternIsCleanAndGoldenExact)
{
    // One campaign round per pattern in isolation: each sharing shape on
    // its own must hold every invariant and match the golden model.
    for (unsigned i = 0; i < kPatternCount; ++i) {
        FuzzConfig cfg;
        cfg.refsPerProc = 2048;
        TraceFuzzer fuzzer(cfg);
        std::array<double, kPatternCount> weights{};
        weights[i] = 1.0;
        const TraceSet traces = fuzzer.generate(7 + i, weights);
        EXPECT_EQ(TraceFuzzer::checkOnce(cfg.system, traces,
                                         cfg.auditEvery, true, true,
                                         nullptr),
                  "")
            << patternName(static_cast<Pattern>(i));
    }
}
