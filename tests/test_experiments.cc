/**
 * @file
 * Tests for the experiment kit: system variants, end-to-end application
 * runs at tiny scale, energy evaluation sanity, and the paper-level
 * qualitative properties the reproduction must exhibit (most snoops
 * miss, hybrids beat their components, parallel-mode savings exceed
 * serial-mode savings).
 */

#include <gtest/gtest.h>

#include "core/filter_spec.hh"
#include "experiments/experiments.hh"

using namespace jetty;
using namespace jetty::experiments;

namespace
{

/** One shared tiny run reused by several tests (runs once). */
const AppRunResult &
luRun()
{
    static const AppRunResult run = [] {
        SystemVariant variant;
        return runApp(trace::appByName("lu"), variant,
                      {"NULL", "EJ-32x4", "IJ-9x4x7",
                       "HJ(IJ-9x4x7,EJ-32x4)"},
                      0.02);
    }();
    return run;
}

} // namespace

TEST(SystemVariant, BaseConfigMatchesPaper)
{
    SystemVariant v;
    const auto cfg = v.smpConfig();
    EXPECT_EQ(cfg.nprocs, 4u);
    EXPECT_EQ(cfg.l1.sizeBytes, 64u * 1024u);
    EXPECT_EQ(cfg.l1.blockBytes, 32u);
    EXPECT_EQ(cfg.l2.sizeBytes, 1024u * 1024u);
    EXPECT_EQ(cfg.l2.blockBytes, 64u);
    EXPECT_EQ(cfg.l2.subblocks, 2u);
    EXPECT_EQ(cfg.l2.unitBytes(), 32u);
}

TEST(SystemVariant, NonSubblockedKeepsUnitSize)
{
    SystemVariant v;
    v.subblocked = false;
    const auto cfg = v.smpConfig();
    EXPECT_EQ(cfg.l2.subblocks, 1u);
    EXPECT_EQ(cfg.l2.unitBytes(), cfg.l1.blockBytes);
}

TEST(SystemVariant, AddressMapDerivation)
{
    SystemVariant v;
    const auto amap = v.smpConfig().addressMap();
    EXPECT_EQ(amap.unitOffsetBits, 5u);
    EXPECT_EQ(amap.blockOffsetBits, 6u);
    EXPECT_EQ(amap.l2CapacityUnits, 32768u);
}

TEST(SystemVariant, EnergyGeometryIsFourWay)
{
    SystemVariant v;
    const auto geom = v.l2EnergyGeometry();
    EXPECT_EQ(geom.assoc, 4u);
    EXPECT_EQ(geom.sizeBytes, 1024u * 1024u);
}

TEST(Experiments, AllPaperSpecsListIsComplete)
{
    const auto specs = allPaperFilterSpecs();
    // 6 EJ + 4 VEJ + 5 IJ + 6 HJ = 21.
    EXPECT_EQ(specs.size(), 21u);
    for (const auto &s : specs)
        EXPECT_TRUE(filter::isValidFilterSpec(s)) << s;
}

TEST(Experiments, RunPopulatesEverything)
{
    const auto &run = luRun();
    EXPECT_EQ(run.abbrev, "lu");
    EXPECT_GT(run.memoryAllocated, 0u);
    EXPECT_EQ(run.filterNames.size(), 4u);
    EXPECT_EQ(run.filterStats.size(), 4u);
    EXPECT_EQ(run.filterCosts.size(), 4u);
    const auto agg = run.stats.aggregate();
    EXPECT_GT(agg.accesses, 0u);
    EXPECT_GT(agg.snoopTagProbes, 0u);
    EXPECT_EQ(run.traffic.snoopTagProbes, agg.snoopTagProbes);
}

TEST(Experiments, MostSnoopsMiss)
{
    // The paper's enabling observation (Table 3).
    const auto agg = luRun().stats.aggregate();
    EXPECT_GT(percent(agg.snoopMisses, agg.snoopTagProbes), 60.0);
}

TEST(Experiments, FiltersAreSafeAndOrdered)
{
    const auto &run = luRun();
    const auto &ej = run.statsFor("EJ-32x4");
    const auto &ij = run.statsFor("IJ-9x4x7");
    const auto &hj = run.statsFor("HJ(IJ-9x4x7,EJ-32x4)");
    EXPECT_EQ(ej.safetyViolations, 0u);
    EXPECT_EQ(ij.safetyViolations, 0u);
    EXPECT_EQ(hj.safetyViolations, 0u);
    // The hybrid covers at least as much as either component.
    EXPECT_GE(hj.coverage() + 1e-12, ij.coverage());
    EXPECT_GE(hj.coverage() + 1e-12, ej.coverage());
    EXPECT_GT(hj.coverage(), 0.0);
}

TEST(Experiments, NullFilterFiltersNothing)
{
    const auto &null_stats = luRun().statsFor("NULL");
    EXPECT_EQ(null_stats.filtered, 0u);
    EXPECT_DOUBLE_EQ(null_stats.coverage(), 0.0);
}

TEST(Experiments, StatsForUnknownFilterFatal)
{
    EXPECT_EXIT(luRun().statsFor("EJ-1x1"), ::testing::ExitedWithCode(1),
                "unknown filter");
}

TEST(Experiments, EnergyEvaluationSane)
{
    SystemVariant variant;
    const auto &run = luRun();
    const auto serial = evaluateEnergy(run, variant,
                                       "HJ(IJ-9x4x7,EJ-32x4)",
                                       energy::AccessMode::Serial);
    const auto parallel = evaluateEnergy(run, variant,
                                         "HJ(IJ-9x4x7,EJ-32x4)",
                                         energy::AccessMode::Parallel);
    // Savings exist and parallel-mode savings exceed serial-mode ones
    // (Figure 6(c) vs 6(a)).
    EXPECT_GT(serial.reductionOverSnoopsPct, 0.0);
    EXPECT_GT(parallel.reductionOverSnoopsPct,
              serial.reductionOverSnoopsPct);
    // Reduction over all accesses is smaller than over snoops alone.
    EXPECT_LT(serial.reductionOverAllPct, serial.reductionOverSnoopsPct);
    EXPECT_LE(serial.reductionOverSnoopsPct, 100.0);
}

TEST(Experiments, NullFilterSavesNothing)
{
    SystemVariant variant;
    const auto res = evaluateEnergy(luRun(), variant, "NULL",
                                    energy::AccessMode::Serial);
    EXPECT_DOUBLE_EQ(res.reductionOverSnoopsPct, 0.0);
    EXPECT_DOUBLE_EQ(res.reductionOverAllPct, 0.0);
}

TEST(Experiments, EightWayRunsAndAmplifiesSnoops)
{
    SystemVariant v4, v8;
    v8.nprocs = 8;
    const auto r4 = runApp(trace::appByName("ff"), v4, {"NULL"}, 0.02);
    const auto r8 = runApp(trace::appByName("ff"), v8, {"NULL"}, 0.02);
    const auto a4 = r4.stats.aggregate();
    const auto a8 = r8.stats.aggregate();
    // Snoop share of all L2 accesses grows with the processor count
    // (Section 4.3.4).
    const double share4 =
        ratio(a4.snoopTagProbes, a4.snoopTagProbes + a4.l2LocalAccesses);
    const double share8 =
        ratio(a8.snoopTagProbes, a8.snoopTagProbes + a8.l2LocalAccesses);
    EXPECT_GT(share8, share4);
}

TEST(Experiments, NonSubblockedRunWorks)
{
    SystemVariant v;
    v.subblocked = false;
    const auto run = runApp(trace::appByName("ra"), v, {"EJ-32x4"}, 0.02);
    EXPECT_EQ(run.statsFor("EJ-32x4").safetyViolations, 0u);
    EXPECT_GT(run.stats.aggregate().accesses, 0u);
}

TEST(Experiments, ThroughputServerSnoopsAlwaysMiss)
{
    // Section 2's throughput-engine argument: independent programs mean
    // essentially every snoop misses everywhere.
    SystemVariant variant;
    const auto run = runApp(trace::throughputServer(), variant,
                            {"HJ(IJ-9x4x7,EJ-32x4)"}, 0.05);
    const auto agg = run.stats.aggregate();
    EXPECT_GT(percent(agg.snoopMisses, agg.snoopTagProbes), 99.0);
}

TEST(Experiments, WidelySharedIsTheWorstCase)
{
    // Section 2's caveat: widely shared read-only data defeats filtering.
    SystemVariant variant;
    const auto ws = runApp(trace::widelyShared(), variant,
                           {"HJ(IJ-9x4x7,EJ-32x4)"}, 0.05);
    const auto ts = runApp(trace::throughputServer(), variant,
                           {"HJ(IJ-9x4x7,EJ-32x4)"}, 0.05);
    const auto ws_agg = ws.stats.aggregate();
    const auto ts_agg = ts.stats.aggregate();
    EXPECT_LT(percent(ws_agg.snoopMisses, ws_agg.snoopTagProbes),
              percent(ts_agg.snoopMisses, ts_agg.snoopTagProbes));
}

TEST(Experiments, DeterministicResults)
{
    SystemVariant variant;
    const auto a = runApp(trace::appByName("ch"), variant, {"EJ-16x2"},
                          0.01);
    const auto b = runApp(trace::appByName("ch"), variant, {"EJ-16x2"},
                          0.01);
    EXPECT_EQ(a.stats.aggregate().accesses, b.stats.aggregate().accesses);
    EXPECT_EQ(a.stats.aggregate().snoopMisses,
              b.stats.aggregate().snoopMisses);
    EXPECT_EQ(a.statsFor("EJ-16x2").filtered,
              b.statsFor("EJ-16x2").filtered);
}
