/**
 * @file
 * Ablation A1 (motivated by Section 3.2's remark that partially
 * overlapped IJ indices are more accurate): sweep the Include-JETTY's
 * skip distance S for the IJ-10x4xS family, plus the unit-granular index
 * variant, reporting average coverage over all applications.
 */

#include <cstdio>

#include "experiments/experiments.hh"
#include "util/table.hh"

using namespace jetty;

int
main()
{
    std::vector<std::string> specs;
    for (unsigned s : {4u, 5u, 6u, 7u, 8u, 10u})
        specs.push_back("IJ-10x4x" + std::to_string(s));
    specs.push_back("IJ-10x4x7u");  // unit-granular index base

    experiments::SystemVariant variant;
    const auto runs = experiments::runAllApps(variant, specs,
                                              experiments::defaultScale());

    TextTable table;
    std::vector<std::string> head{"App"};
    for (const auto &s : specs)
        head.push_back(s);
    table.header(head);

    std::vector<double> avg(specs.size(), 0.0);
    for (const auto &run : runs) {
        std::vector<std::string> row{run.abbrev};
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const double cov = 100.0 * run.statsFor(specs[i]).coverage();
            avg[i] += cov;
            row.push_back(TextTable::pct(cov));
        }
        table.row(std::move(row));
    }
    std::vector<std::string> row{"AVG"};
    for (auto &a : avg)
        row.push_back(TextTable::pct(a / static_cast<double>(runs.size())));
    table.row(std::move(row));

    std::printf("Ablation A1: IJ index skip distance (IJ-10x4xS) and "
                "unit-granular indexing\n\n");
    table.print();
    std::printf("\nExpectation: overlap (S < E=10) changes accuracy; the "
                "paper found partial overlap best.\n");
    return 0;
}
