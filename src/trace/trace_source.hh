/**
 * @file
 * Abstract stream of memory references consumed by the simulator. Sources
 * are per-processor; the simulator interleaves them round-robin (a
 * WWT2-style quantum of one reference).
 */

#ifndef JETTY_TRACE_TRACE_SOURCE_HH
#define JETTY_TRACE_TRACE_SOURCE_HH

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "util/types.hh"

namespace jetty::trace
{

/** One memory reference. */
struct TraceRecord
{
    AccessType type = AccessType::Read;
    Addr addr = 0;
};

/**
 * A finite stream of references for one processor.
 *
 * Sources are replayable: reset() rewinds to the first reference and
 * clone() manufactures an independent source replaying the same full
 * stream from the beginning, regardless of how far this source has been
 * consumed. The contract lets one stream definition feed many systems —
 * `jetty_cli replay` clones a single captured trace onto every processor,
 * and concurrent sweep jobs (sim/sweep.hh) rely on the same property via
 * Workload::makeSource, which hands out fresh equivalents of a clone.
 * Clones share no mutable state with their origin.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next reference.
     * @return false when the stream is exhausted (@p out untouched).
     */
    virtual bool next(TraceRecord &out) = 0;

    /**
     * Produce up to @p max references into @p out.
     *
     * Batching is a transport optimization, never a semantic one: the
     * records delivered are exactly those that the same number of next()
     * calls would have produced, in the same order, whatever mix of
     * batch sizes the consumer uses. The simulator relies on this to keep
     * batched and scalar delivery bit-identical.
     *
     * @return the number produced; less than @p max only when the stream
     *         is exhausted (so a short count ends the stream).
     */
    virtual std::size_t
    nextBatch(TraceRecord *out, std::size_t max)
    {
        std::size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /** Rewind to the beginning of the stream. */
    virtual void reset() = 0;

    /**
     * An independent source that replays this source's full stream from
     * the beginning. Clones of sources bound to external state (e.g. a
     * Workload) share that state read-only and must not outlive it.
     */
    virtual std::unique_ptr<TraceSource> clone() const = 0;
};

using TraceSourcePtr = std::unique_ptr<TraceSource>;

/** A canned reference list (tests, file replays). */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceRecord> records)
        : records_(std::move(records))
    {}

    bool
    next(TraceRecord &out) override
    {
        if (pos_ >= records_.size())
            return false;
        out = records_[pos_++];
        return true;
    }

    std::size_t
    nextBatch(TraceRecord *out, std::size_t max) override
    {
        const std::size_t n =
            std::min<std::size_t>(max, records_.size() - pos_);
        std::copy_n(records_.begin() + static_cast<std::ptrdiff_t>(pos_), n,
                    out);
        pos_ += n;
        return n;
    }

    void reset() override { pos_ = 0; }

    std::unique_ptr<TraceSource>
    clone() const override
    {
        return std::make_unique<VectorTraceSource>(records_);
    }

  private:
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

} // namespace jetty::trace

#endif // JETTY_TRACE_TRACE_SOURCE_HH
