#include "sim/sim_stats.hh"

namespace jetty::sim
{

void
ProcStats::merge(const ProcStats &o)
{
    accesses += o.accesses;
    reads += o.reads;
    writes += o.writes;
    l1Hits += o.l1Hits;
    l1Misses += o.l1Misses;
    l1Writebacks += o.l1Writebacks;
    l1SnoopInvalidations += o.l1SnoopInvalidations;
    l2LocalAccesses += o.l2LocalAccesses;
    l2LocalHits += o.l2LocalHits;
    l2Fills += o.l2Fills;
    l2Evictions += o.l2Evictions;
    upgradesSilent += o.upgradesSilent;
    busReads += o.busReads;
    busReadXs += o.busReadXs;
    busUpgrades += o.busUpgrades;
    busWritebacks += o.busWritebacks;
    snoopTagProbes += o.snoopTagProbes;
    snoopHits += o.snoopHits;
    snoopMisses += o.snoopMisses;
    snoopSupplies += o.snoopSupplies;
    wbInsertions += o.wbInsertions;
    wbSnoopsHit += o.wbSnoopsHit;
    wbReclaims += o.wbReclaims;
    wbDrains += o.wbDrains;
    traffic.merge(o.traffic);
}

ProcStats
SimStats::aggregate() const
{
    ProcStats all;
    for (const auto &p : procs)
        all.merge(p);
    return all;
}

} // namespace jetty::sim
