#include "energy/accountant.hh"

namespace jetty::energy
{

void
L2Traffic::merge(const L2Traffic &o)
{
    localTagProbes += o.localTagProbes;
    localTagUpdates += o.localTagUpdates;
    localDataReads += o.localDataReads;
    localDataWrites += o.localDataWrites;
    snoopTagProbes += o.snoopTagProbes;
    snoopTagUpdates += o.snoopTagUpdates;
    snoopDataReads += o.snoopDataReads;
}

double
EnergyAccountant::snoopProbeEnergy(AccessMode mode) const
{
    const auto &e = model_.energies();
    // A snoop probes the tags; in parallel mode the data array is cycled
    // concurrently (all ways of one unit) whether or not the snoop hits.
    double energy = e.tagRead;
    if (mode == AccessMode::Parallel)
        energy += model_.dataReadAllWays();
    return energy;
}

EnergyBreakdown
EnergyAccountant::baseline(const L2Traffic &t, AccessMode mode) const
{
    const auto &e = model_.energies();
    EnergyBreakdown out;

    // Locally-initiated accesses.
    double local = 0;
    local += static_cast<double>(t.localTagProbes) * e.tagRead;
    local += static_cast<double>(t.localTagUpdates) * e.tagWrite;
    if (mode == AccessMode::Serial) {
        local += static_cast<double>(t.localDataReads) * e.dataReadUnit;
    } else {
        // Parallel lookups read all ways; the extra (assoc-1) reads are
        // charged on every local tag probe, plus the useful read itself.
        local += static_cast<double>(t.localTagProbes) *
                 (model_.dataReadAllWays() - e.dataReadUnit);
        local += static_cast<double>(t.localDataReads) * e.dataReadUnit;
    }
    local += static_cast<double>(t.localDataWrites) * e.dataWriteUnit;
    out.localEnergy = local;

    // Snoop-induced accesses.
    double snoop = 0;
    snoop += static_cast<double>(t.snoopTagProbes) * snoopProbeEnergy(mode);
    snoop += static_cast<double>(t.snoopTagUpdates) * e.tagWrite;
    if (mode == AccessMode::Serial)
        snoop += static_cast<double>(t.snoopDataReads) * e.dataReadUnit;
    // (parallel mode already charged the data read inside the probe)
    out.snoopEnergy = snoop;

    return out;
}

EnergyBreakdown
EnergyAccountant::withFilter(const L2Traffic &t, AccessMode mode,
                             const FilterTraffic &f,
                             const FilterEnergyCosts &costs) const
{
    EnergyBreakdown out = baseline(t, mode);

    // Filtered snoops never reach the L2 tag array.
    const double saved =
        static_cast<double>(f.filtered) * snoopProbeEnergy(mode);
    out.snoopEnergy -= saved;

    double filter = 0;
    filter += static_cast<double>(f.probes) * costs.probe;
    filter += static_cast<double>(f.snoopAllocs) * costs.snoopAlloc;
    filter += static_cast<double>(f.fillUpdates) * costs.fillUpdate;
    filter += static_cast<double>(f.evictUpdates) * costs.evictUpdate;
    out.filterEnergy = filter;

    return out;
}

std::vector<double>
EnergyAccountant::perBusSnoopEnergy(
    const std::vector<std::uint64_t> &busSnoopTagProbes,
    AccessMode mode) const
{
    std::vector<double> energies;
    energies.reserve(busSnoopTagProbes.size());
    const double per_probe = snoopProbeEnergy(mode);
    for (const std::uint64_t probes : busSnoopTagProbes)
        energies.push_back(static_cast<double>(probes) * per_probe);
    return energies;
}

double
EnergyAccountant::snoopReductionPct(const EnergyBreakdown &base,
                                    const EnergyBreakdown &with)
{
    const double before = base.snoopEnergy;
    const double after = with.snoopEnergy + with.filterEnergy;
    if (before <= 0.0)
        return 0.0;
    return 100.0 * (1.0 - after / before);
}

double
EnergyAccountant::totalReductionPct(const EnergyBreakdown &base,
                                    const EnergyBreakdown &with)
{
    const double before = base.total();
    const double after = with.total();
    if (before <= 0.0)
        return 0.0;
    return 100.0 * (1.0 - after / before);
}

} // namespace jetty::energy
