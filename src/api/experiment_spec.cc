#include "api/experiment_spec.hh"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "core/filter_registry.hh"
#include "core/filter_spec.hh"
#include "trace/apps.hh"
#include "util/logging.hh"

namespace jetty::api
{

// ---- MachineSpec <-> SmpConfig ---------------------------------------

MachineSpec
MachineSpec::fromSmpConfig(const sim::SmpConfig &cfg)
{
    MachineSpec m;
    m.procs = cfg.nprocs;
    m.buses = cfg.snoopBuses;
    m.subblocked = cfg.l2.subblocks > 1;
    m.batchRefs = cfg.batchRefs;
    m.hasGeometry = true;
    m.l1 = cfg.l1;
    m.l2 = cfg.l2;
    m.wbEntries = cfg.wbEntries;
    m.physAddrBits = cfg.physAddrBits;
    return m;
}

sim::SmpConfig
MachineSpec::toSmpConfig() const
{
    sim::SmpConfig cfg = toVariant().smpConfig();
    if (hasGeometry) {
        cfg.l1 = l1;
        cfg.l2 = l2;
        cfg.wbEntries = wbEntries;
        cfg.physAddrBits = physAddrBits;
    }
    if (batchRefs > 0)
        cfg.batchRefs = batchRefs;
    return cfg;
}

experiments::SystemVariant
MachineSpec::toVariant() const
{
    experiments::SystemVariant variant;
    variant.nprocs = procs;
    variant.subblocked = subblocked;
    variant.snoopBuses = buses;
    return variant;
}

bool
MachineSpec::variantCompatible(std::string *why) const
{
    if (!hasGeometry)
        return true;
    const sim::SmpConfig ref = toVariant().smpConfig();
    const auto mismatch = [&](const char *field, std::uint64_t want,
                              std::uint64_t got) {
        if (want == got)
            return false;
        if (why) {
            *why = std::string("machine.") + field + " = " +
                   std::to_string(got) +
                   " is an explicit-geometry override (variant default " +
                   std::to_string(want) +
                   "); run/sweep go through the experiment layer, which "
                   "only models paper variants — use bench or fuzz for "
                   "custom geometries";
        }
        return true;
    };
    if (mismatch("l1.size_bytes", ref.l1.sizeBytes, l1.sizeBytes) ||
        mismatch("l1.assoc", ref.l1.assoc, l1.assoc) ||
        mismatch("l1.block_bytes", ref.l1.blockBytes, l1.blockBytes) ||
        mismatch("l2.size_bytes", ref.l2.sizeBytes, l2.sizeBytes) ||
        mismatch("l2.assoc", ref.l2.assoc, l2.assoc) ||
        mismatch("l2.block_bytes", ref.l2.blockBytes, l2.blockBytes) ||
        mismatch("l2.subblocks", ref.l2.subblocks, l2.subblocks) ||
        mismatch("wb_entries", ref.wbEntries, wbEntries) ||
        mismatch("phys_addr_bits", ref.physAddrBits, physAddrBits)) {
        return false;
    }
    return true;
}

// ---- emission --------------------------------------------------------

json::Value
ExperimentSpec::toJson() const
{
    json::Value root = json::Value::object();
    root.set("jetty_spec", kVersion);

    json::Value m = json::Value::object();
    m.set("procs", machine.procs);
    m.set("buses", machine.buses);
    m.set("subblocked", machine.subblocked);
    if (machine.batchRefs > 0)
        m.set("batch_refs", machine.batchRefs);
    if (machine.hasGeometry) {
        json::Value l1 = json::Value::object();
        l1.set("size_bytes", machine.l1.sizeBytes);
        l1.set("assoc", machine.l1.assoc);
        l1.set("block_bytes", machine.l1.blockBytes);
        m.set("l1", std::move(l1));
        json::Value l2 = json::Value::object();
        l2.set("size_bytes", machine.l2.sizeBytes);
        l2.set("assoc", machine.l2.assoc);
        l2.set("block_bytes", machine.l2.blockBytes);
        l2.set("subblocks", machine.l2.subblocks);
        m.set("l2", std::move(l2));
        m.set("wb_entries", machine.wbEntries);
        m.set("phys_addr_bits", machine.physAddrBits);
    }
    root.set("machine", std::move(m));

    if (!apps.empty() || !traceFiles.empty() || scale > 0) {
        json::Value w = json::Value::object();
        if (!apps.empty()) {
            json::Value arr = json::Value::array();
            for (const auto &a : apps)
                arr.push(a);
            w.set("apps", std::move(arr));
        }
        if (!traceFiles.empty()) {
            json::Value arr = json::Value::array();
            for (const auto &f : traceFiles)
                arr.push(f);
            w.set("trace_files", std::move(arr));
        }
        if (scale > 0)
            w.set("scale", scale);
        root.set("workload", std::move(w));
    }

    if (!filters.empty()) {
        json::Value arr = json::Value::array();
        for (const auto &f : filters)
            arr.push(f);
        root.set("filters", std::move(arr));
    }

    if (!sweepProcs.empty() || !sweepBuses.empty()) {
        json::Value s = json::Value::object();
        if (!sweepProcs.empty()) {
            json::Value arr = json::Value::array();
            for (unsigned p : sweepProcs)
                arr.push(p);
            s.set("procs", std::move(arr));
        }
        if (!sweepBuses.empty()) {
            json::Value arr = json::Value::array();
            for (unsigned b : sweepBuses)
                arr.push(b);
            s.set("buses", std::move(arr));
        }
        root.set("sweep", std::move(s));
    }

    if (benchRepeat > 0) {
        json::Value b = json::Value::object();
        b.set("repeat", benchRepeat);
        root.set("bench", std::move(b));
    }

    if (hasFuzz) {
        json::Value fz = json::Value::object();
        fz.set("seed", fuzz.seed);
        fz.set("rounds", fuzz.rounds);
        fz.set("refs_per_proc", fuzz.refsPerProc);
        fz.set("audit_every", fuzz.auditEvery);
        fz.set("randomize_buses", fuzz.randomizeBuses);
        if (fuzz.seconds > 0)
            fz.set("seconds", fuzz.seconds);
        root.set("fuzz", std::move(fz));
    }
    return root;
}

std::string
ExperimentSpec::emit() const
{
    return toJson().dump();
}

std::string
ExperimentSpec::canonicalText() const
{
    return toJson().dumpCanonical();
}

// ---- parsing ---------------------------------------------------------

namespace
{

/** Join @p keys as "a, b, c" for "valid:" lists. */
std::string
joinKeys(const std::vector<const char *> &keys)
{
    std::string out;
    for (const char *k : keys) {
        if (!out.empty())
            out += ", ";
        out += k;
    }
    return out;
}

/**
 * Validating view of one JSON object: rejects unknown members up front
 * (naming the key, its path, and the valid set — the registry's
 * describeFailure() style) and offers typed, range-checked readers that
 * prefix every complaint with the member's dotted path.
 */
class ObjReader
{
  public:
    ObjReader(const json::Value &v, const std::string &path,
              std::vector<const char *> keys, std::string *err)
        : obj_(v), path_(path), err_(err)
    {
        if (!ok())
            return;
        if (!v.isObject()) {
            fail(path_, "expected an object");
            return;
        }
        for (const auto &m : v.members()) {
            const bool known =
                std::any_of(keys.begin(), keys.end(),
                            [&m](const char *k) { return m.first == k; });
            if (!known) {
                fail(path_.empty() ? m.first : path_ + "." + m.first,
                     "unknown key (valid: " + joinKeys(keys) + ")");
                return;
            }
        }
    }

    bool ok() const { return err_->empty(); }

    const json::Value *
    get(const char *key) const
    {
        return ok() ? obj_.find(key) : nullptr;
    }

    /** Unsigned integer member in [min, max]; absent leaves @p out. */
    void
    u32(const char *key, unsigned &out, std::uint64_t min,
        std::uint64_t max)
    {
        std::uint64_t v = out;
        u64(key, v, min, max);
        if (ok())
            out = static_cast<unsigned>(v);
    }

    void
    u64(const char *key, std::uint64_t &out, std::uint64_t min,
        std::uint64_t max)
    {
        const json::Value *v = get(key);
        if (!v)
            return;
        if (!v->isNumber() || !v->fitsU64()) {
            fail(memberPath(key), "expected an unsigned integer");
            return;
        }
        const std::uint64_t n = v->asU64();
        if (n < min || n > max) {
            fail(memberPath(key),
                 std::to_string(n) + " is out of range (valid: " +
                     std::to_string(min) + ".." + std::to_string(max) +
                     ")");
            return;
        }
        out = n;
    }

    void
    boolean(const char *key, bool &out)
    {
        const json::Value *v = get(key);
        if (!v)
            return;
        if (!v->isBool()) {
            fail(memberPath(key), "expected true or false");
            return;
        }
        out = v->asBool();
    }

    /** Double member with v > min (or >= when @p orEqual). */
    void
    positiveDouble(const char *key, double &out, bool orEqualZero = false)
    {
        const json::Value *v = get(key);
        if (!v)
            return;
        if (!v->isNumber()) {
            fail(memberPath(key), "expected a number");
            return;
        }
        const double d = v->asDouble();
        if (orEqualZero ? d < 0 : d <= 0) {
            fail(memberPath(key),
                 json::formatDouble(d) + std::string(" is out of range ") +
                     (orEqualZero ? "(must be >= 0)" : "(must be > 0)"));
            return;
        }
        out = d;
    }

    /** Array-of-strings member; absent leaves @p out. */
    void
    strings(const char *key, std::vector<std::string> &out)
    {
        const json::Value *v = get(key);
        if (!v)
            return;
        if (!v->isArray()) {
            fail(memberPath(key), "expected an array of strings");
            return;
        }
        std::vector<std::string> parsed;
        for (const auto &item : v->items()) {
            if (!item.isString()) {
                fail(memberPath(key), "expected an array of strings");
                return;
            }
            parsed.push_back(item.asString());
        }
        out = std::move(parsed);
    }

    /** Non-empty array of unsigned integers, each in [min, max]. */
    void
    u32List(const char *key, std::vector<unsigned> &out, std::uint64_t min,
            std::uint64_t max)
    {
        const json::Value *v = get(key);
        if (!v)
            return;
        if (!v->isArray() || v->items().empty()) {
            fail(memberPath(key),
                 "expected a non-empty array of unsigned integers");
            return;
        }
        std::vector<unsigned> parsed;
        for (const auto &item : v->items()) {
            if (!item.isNumber() || !item.fitsU64()) {
                fail(memberPath(key),
                     "expected a non-empty array of unsigned integers");
                return;
            }
            const std::uint64_t n = item.asU64();
            if (n < min || n > max) {
                fail(memberPath(key),
                     std::to_string(n) + " is out of range (valid: " +
                         std::to_string(min) + ".." + std::to_string(max) +
                         ")");
                return;
            }
            parsed.push_back(static_cast<unsigned>(n));
        }
        out = std::move(parsed);
    }

    std::string
    memberPath(const char *key) const
    {
        return path_.empty() ? key : path_ + "." + key;
    }

    void
    fail(const std::string &where, const std::string &what)
    {
        if (err_->empty())
            *err_ = "spec: " + where + ": " + what;
    }

  private:
    const json::Value &obj_;
    std::string path_;
    std::string *err_;
};

void
parseMachine(const json::Value &v, MachineSpec &m, std::string *err)
{
    ObjReader r(v, "machine",
                {"procs", "buses", "subblocked", "batch_refs", "l1", "l2",
                 "wb_entries", "phys_addr_bits"},
                err);
    if (!r.ok())
        return;
    // Every spec consumer simulates an SMP, so a one-processor machine
    // is rejected here with the dotted path, not by a late SmpSystem
    // fatal.
    r.u32("procs", m.procs, 2, 4096);
    r.u32("buses", m.buses, 1, 256);
    r.boolean("subblocked", m.subblocked);
    r.u32("batch_refs", m.batchRefs, 1, 1u << 24);

    const json::Value *l1 = r.get("l1");
    const json::Value *l2 = r.get("l2");
    if (!r.ok())
        return;
    if ((l1 == nullptr) != (l2 == nullptr)) {
        r.fail("machine", std::string("explicit geometry needs both l1 "
                                      "and l2 (only ") +
                              (l1 ? "l1" : "l2") + " given)");
        return;
    }
    if (l1 && l2) {
        m.hasGeometry = true;
        {
            ObjReader g(*l1, "machine.l1",
                        {"size_bytes", "assoc", "block_bytes"}, err);
            if (!g.ok())
                return;
            g.u64("size_bytes", m.l1.sizeBytes, 1,
                  std::uint64_t(1) << 40);
            g.u32("assoc", m.l1.assoc, 1, 1u << 16);
            g.u32("block_bytes", m.l1.blockBytes, 1, 1u << 16);
        }
        {
            ObjReader g(*l2, "machine.l2",
                        {"size_bytes", "assoc", "block_bytes", "subblocks"},
                        err);
            if (!g.ok())
                return;
            g.u64("size_bytes", m.l2.sizeBytes, 1,
                  std::uint64_t(1) << 40);
            g.u32("assoc", m.l2.assoc, 1, 1u << 16);
            g.u32("block_bytes", m.l2.blockBytes, 1, 1u << 16);
            g.u32("subblocks", m.l2.subblocks, 1, 1u << 8);
        }
        r.u32("wb_entries", m.wbEntries, 1, 1u << 16);
        r.u32("phys_addr_bits", m.physAddrBits, 16, 64);
        // Keep the derived flag honest even when the author forgot it:
        // explicit geometry is authoritative.
        m.subblocked = m.l2.subblocks > 1;
    } else if (r.get("wb_entries") || r.get("phys_addr_bits")) {
        r.fail("machine", "wb_entries/phys_addr_bits need an explicit "
                          "l1 + l2 geometry block");
    }
}

void
parseFuzz(const json::Value &v, FuzzSpec &f, std::string *err)
{
    ObjReader r(v, "fuzz",
                {"seed", "rounds", "refs_per_proc", "audit_every",
                 "randomize_buses", "seconds"},
                err);
    if (!r.ok())
        return;
    std::uint64_t seed = f.seed;
    r.u64("seed", seed, 0, std::numeric_limits<std::uint64_t>::max());
    f.seed = seed;
    r.u32("rounds", f.rounds, 1, 1u << 24);
    r.u64("refs_per_proc", f.refsPerProc, 1, std::uint64_t(1) << 40);
    r.u64("audit_every", f.auditEvery, 0, std::uint64_t(1) << 40);
    r.boolean("randomize_buses", f.randomizeBuses);
    r.positiveDouble("seconds", f.seconds, /*orEqualZero=*/true);
}

} // namespace

ExperimentSpec
ExperimentSpec::fromJson(const json::Value &v, std::string *err)
{
    ExperimentSpec spec;
    if (!err)
        panic("ExperimentSpec::fromJson needs an error sink");
    err->clear();

    ObjReader root(v, "",
                   {"jetty_spec", "machine", "workload", "filters",
                    "sweep", "bench", "fuzz"},
                   err);
    if (!root.ok())
        return spec;

    const json::Value *ver = root.get("jetty_spec");
    if (!ver) {
        root.fail("jetty_spec",
                  "missing (a spec file must declare \"jetty_spec\": " +
                      std::to_string(kVersion) + ")");
        return spec;
    }
    if (!ver->isNumber() || !ver->fitsI64() || ver->asI64() != kVersion) {
        root.fail("jetty_spec",
                  "unsupported version (this build reads version " +
                      std::to_string(kVersion) + ")");
        return spec;
    }

    if (const json::Value *m = root.get("machine")) {
        spec.hasMachine = true;
        parseMachine(*m, spec.machine, err);
    }
    if (!err->empty())
        return spec;

    if (const json::Value *w = root.get("workload")) {
        ObjReader r(*w, "workload", {"apps", "trace_files", "scale"}, err);
        if (!r.ok())
            return spec;
        r.strings("apps", spec.apps);
        r.strings("trace_files", spec.traceFiles);
        r.positiveDouble("scale", spec.scale);
        if (!r.ok())
            return spec;
        if (!spec.apps.empty() && !spec.traceFiles.empty()) {
            // expand()/bench prefer trace_files, so accepting both
            // would silently drop the apps half of the workload.
            r.fail("workload",
                   "apps and trace_files are mutually exclusive (one "
                   "workload per spec)");
            return spec;
        }
        // App names resolve through the same lookup the simulator uses,
        // so a typo fails at parse time, not mid-sweep.
        for (const auto &name : spec.apps) {
            if (!trace::appKnown(name)) {
                r.fail("workload.apps",
                       "unknown application '" + name +
                           "' (see `jetty_cli apps`)");
                return spec;
            }
        }
    }

    if (const json::Value *f = root.get("filters")) {
        if (!f->isArray()) {
            root.fail("filters",
                      "expected an array of filter spec strings");
            return spec;
        }
        for (const auto &item : f->items()) {
            if (!item.isString()) {
                root.fail("filters",
                          "expected an array of filter spec strings");
                return spec;
            }
            const std::string &s = item.asString();
            if (!filter::isValidFilterSpec(s)) {
                root.fail("filters",
                          filter::FilterRegistry::instance()
                              .describeFailure(s));
                return spec;
            }
            spec.filters.push_back(s);
        }
    }

    if (const json::Value *s = root.get("sweep")) {
        ObjReader r(*s, "sweep", {"procs", "buses"}, err);
        if (!r.ok())
            return spec;
        r.u32List("procs", spec.sweepProcs, 2, 4096);
        r.u32List("buses", spec.sweepBuses, 1, 256);
        if (!r.ok())
            return spec;
    }

    if (const json::Value *b = root.get("bench")) {
        ObjReader r(*b, "bench", {"repeat"}, err);
        if (!r.ok())
            return spec;
        r.u32("repeat", spec.benchRepeat, 1, 1u << 16);
        if (!r.ok())
            return spec;
    }

    if (const json::Value *f = root.get("fuzz")) {
        spec.hasFuzz = true;
        parseFuzz(*f, spec.fuzz, err);
        if (!err->empty())
            return spec;
    }
    return spec;
}

ExperimentSpec
ExperimentSpec::parse(const std::string &text, std::string *err)
{
    if (!err)
        panic("ExperimentSpec::parse needs an error sink");
    std::string parse_err;
    const json::Value v = json::parse(text, &parse_err);
    if (!parse_err.empty()) {
        *err = "spec: " + parse_err;
        return ExperimentSpec();
    }
    return fromJson(v, err);
}

ExperimentSpec
ExperimentSpec::load(const std::string &path)
{
    std::string err;
    const json::Value v = json::parseFile(path, &err);
    if (!err.empty())
        fatal("spec: " + path + ": " + err);
    ExperimentSpec spec = fromJson(v, &err);
    if (!err.empty())
        fatal(path + ": " + err);
    return spec;
}

sim::SmpConfig
ExperimentSpec::smpConfig() const
{
    sim::SmpConfig cfg = machine.toSmpConfig();
    cfg.filterSpecs = filters;
    return cfg;
}

std::vector<experiments::RunRequest>
ExperimentSpec::expand() const
{
    const std::vector<unsigned> procsAxis =
        sweepProcs.empty() ? std::vector<unsigned>{machine.procs}
                           : sweepProcs;
    const std::vector<unsigned> busAxis =
        sweepBuses.empty() ? std::vector<unsigned>{machine.buses}
                           : sweepBuses;

    std::vector<experiments::RunRequest> requests;
    for (unsigned nprocs : procsAxis) {
        for (unsigned buses : busAxis) {
            experiments::SystemVariant variant = machine.toVariant();
            variant.nprocs = nprocs;
            variant.snoopBuses = buses;
            if (!traceFiles.empty()) {
                experiments::RunRequest req;
                req.variant = variant;
                req.filterSpecs = filters;
                req.traceFiles = traceFiles;
                req.app.name = "replay";
                req.app.abbrev = "rp";
                requests.push_back(std::move(req));
                continue;
            }
            for (const auto &name : apps) {
                experiments::RunRequest req;
                req.app = trace::appByName(name);
                req.variant = variant;
                req.filterSpecs = filters;
                req.accessScale = scale;
                requests.push_back(std::move(req));
            }
        }
    }
    return requests;
}

std::string
runCacheKey(const experiments::RunRequest &req, double scale)
{
    // The canonical-key construction lives with the cache it keys
    // (experiments/) so that layer stays self-contained; this is the
    // spec-level entry point to the same identity.
    return experiments::runCacheKey(req, scale);
}

} // namespace jetty::api
