/**
 * @file
 * Ablation A3 (extension): the coarse region filter against the paper's
 * include-JETTYs, across all applications. Region filters (the direction
 * later developed as RegionScout) cover vast address ranges with tiny
 * tables, so they shine when sharing is region-disjoint (private heaps)
 * and collapse when hot regions interleave -- a different trade-off from
 * the IJ's block-level superset encoding.
 */

#include <cstdio>

#include "experiments/experiments.hh"
#include "util/table.hh"

using namespace jetty;

int
main()
{
    const std::vector<std::string> specs{
        "RF-8x12", "RF-10x12", "RF-10x10", "IJ-8x4x7", "IJ-10x4x7",
        "HJ(IJ-10x4x7,EJ-32x4)",
    };

    experiments::SystemVariant variant;
    const auto runs = experiments::runAllApps(variant, specs,
                                              experiments::defaultScale());

    TextTable table;
    std::vector<std::string> head{"App"};
    for (const auto &s : specs)
        head.push_back(s);
    table.header(head);

    std::vector<double> avg(specs.size(), 0.0);
    for (const auto &run : runs) {
        std::vector<std::string> row{run.abbrev};
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const double cov = 100.0 * run.statsFor(specs[i]).coverage();
            avg[i] += cov;
            row.push_back(TextTable::pct(cov));
        }
        table.row(std::move(row));
    }
    std::vector<std::string> row{"AVG"};
    for (auto &a : avg)
        row.push_back(TextTable::pct(a / static_cast<double>(runs.size())));
    table.row(std::move(row));

    std::printf("Ablation A3: coarse region filters (RF-EntriesxRegionBits)"
                " vs include-JETTYs\n\n");
    table.print();
    return 0;
}
