// Fixture: library code that kills the process instead of returning
// a failure string (the service-executor contract).
#include <cstdlib>
#include <string>

namespace jetty::engine
{

std::string
loadConfig(const std::string &path)
{
    if (path.empty())
        exit(2);  // line 13: bare call
    if (path == "/dev/null")
        std::abort();  // line 15: std-qualified call
    return path;
}

} // namespace jetty::engine
