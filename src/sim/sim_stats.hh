/**
 * @file
 * Statistics gathered by the SMP simulation: everything needed to
 * regenerate Tables 2 and 3 and to feed the energy accountant
 * (local/snoop access mixes) and Figures 4--6 (per-filter coverage lives
 * in the FilterBank).
 */

#ifndef JETTY_SIM_SIM_STATS_HH
#define JETTY_SIM_SIM_STATS_HH

#include <cstdint>
#include <vector>

#include "energy/accountant.hh"
#include "sim/interconnect.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace jetty::sim
{

/** Per-processor counters. */
struct ProcStats
{
    // Processor reference stream.
    std::uint64_t accesses = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    // L1 behaviour.
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l1Writebacks = 0;        //!< dirty L1 victims sent to L2
    std::uint64_t l1SnoopInvalidations = 0;

    // Locally initiated L2 behaviour. Local accesses are L1 misses plus
    // L1 writebacks (Table 2's definition).
    std::uint64_t l2LocalAccesses = 0;
    std::uint64_t l2LocalHits = 0;
    std::uint64_t l2Fills = 0;
    std::uint64_t l2Evictions = 0;   //!< valid units displaced by fills
    std::uint64_t upgradesSilent = 0; //!< E->M without a bus transaction

    // Bus activity initiated by this processor.
    std::uint64_t busReads = 0;
    std::uint64_t busReadXs = 0;
    std::uint64_t busUpgrades = 0;
    std::uint64_t busWritebacks = 0;

    // This processor's L2 as a snoop target.
    std::uint64_t snoopTagProbes = 0;  //!< snoop-induced tag accesses
    std::uint64_t snoopHits = 0;       //!< unit was valid here
    std::uint64_t snoopMisses = 0;     //!< unit was absent here
    std::uint64_t snoopSupplies = 0;   //!< this cache sourced the data

    // Write-back buffer.
    std::uint64_t wbInsertions = 0;
    std::uint64_t wbSnoopsHit = 0;   //!< snoops satisfied by the WB
    std::uint64_t wbReclaims = 0;    //!< own misses satisfied by the WB
    std::uint64_t wbDrains = 0;      //!< entries written to memory

    /** Energy-model view of this processor's L2 traffic. */
    energy::L2Traffic traffic;

    /** Merge another processor's counters (for aggregate reporting). */
    void merge(const ProcStats &o);
};

/** Whole-system statistics. */
struct SimStats
{
    /** @param snoopBuses sizes the per-bus occupancy vectors (1 when the
     *  stats block is built before the interconnect is known). */
    explicit SimStats(unsigned nprocs, unsigned snoopBuses = 1)
        : procs(nprocs), remoteHits(nprocs), perBus(snoopBuses),
          busSnoopTagProbes(snoopBuses, 0)
    {}

    std::vector<ProcStats> procs;

    /** Distribution of remote copies found per snooping transaction
     *  (Table 3's "Remote Cache Hits" columns, buckets 0..nprocs-1). */
    Histogram remoteHits;

    /** Total snooping bus transactions (reads + readXs + upgrades). */
    std::uint64_t snoopTransactions = 0;

    /** Per-bus transaction occupancy, indexed by bus id — the split
     *  interconnect's view (sums to snoopTransactions). */
    std::vector<BusStats> perBus;

    /** Snoop-induced L2 tag probes per bus (each transaction probes
     *  nprocs-1 remote L2s on its home bus) — the accountant's per-bus
     *  snoop energy input. */
    std::vector<std::uint64_t> busSnoopTagProbes;

    /** Aggregate of all per-processor counters. */
    ProcStats aggregate() const;
};

} // namespace jetty::sim

#endif // JETTY_SIM_SIM_STATS_HH
