/**
 * @file
 * Lightweight statistics primitives (counters, ratios, histograms) used by
 * the simulator and the filter bank. Deliberately simple: everything is a
 * named 64-bit counter or a fixed-bucket histogram that can be printed or
 * merged.
 */

#ifndef JETTY_UTIL_STATS_HH
#define JETTY_UTIL_STATS_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace jetty
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p n events (default one). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Merge another counter into this one. */
    void merge(const Counter &o) { value_ += o.value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Safe ratio of two counts; returns 0 when the denominator is zero. */
inline double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

/** Percentage form of ratio(). */
inline double
percent(std::uint64_t num, std::uint64_t den)
{
    return 100.0 * ratio(num, den);
}

/**
 * Median of @p samples (sorted in place); 0 on an empty vector. Even
 * counts take the lower middle element — a real measurement, not an
 * average of two — so repeated runs over the same samples agree exactly.
 * The benches report median-of-N wall-clock times through this: the
 * median rides out the one-sided contention spikes a shared CI box
 * injects, where a mean would absorb them.
 */
inline double
medianInPlace(std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    if (samples.size() == 1)
        return samples[0];  // nothing to sort for a single sample
    std::sort(samples.begin(), samples.end());
    return samples[(samples.size() - 1) / 2];
}

/**
 * Fixed-bucket histogram over small integer samples (e.g., the number of
 * remote caches hit by a snoop, 0..Ncpu-1). Samples beyond the last bucket
 * are clamped into it.
 */
class Histogram
{
  public:
    /** Create a histogram with @p buckets buckets (>= 1). */
    explicit Histogram(std::size_t buckets = 1) : counts_(buckets, 0) {}

    /** Record one sample with value @p v. */
    void
    sample(std::size_t v)
    {
        if (v >= counts_.size())
            v = counts_.size() - 1;
        ++counts_[v];
        ++total_;
    }

    /** Rebuild a histogram from serialized raw counts (the persistent
     *  RunCache restoring an AppRunResult from disk). @p total is kept
     *  as recorded rather than recomputed: clamped samples mean the
     *  bucket sum equals total anyway, and a restore must be exact. */
    static Histogram
    fromRaw(std::vector<std::uint64_t> counts, std::uint64_t total)
    {
        Histogram h(std::max<std::size_t>(counts.size(), 1));
        if (!counts.empty())
            h.counts_ = std::move(counts);
        h.total_ = total;
        return h;
    }

    /** Number of buckets. */
    std::size_t buckets() const { return counts_.size(); }

    /** Raw count in bucket @p i. */
    std::uint64_t count(std::size_t i) const { return counts_.at(i); }

    /** Fraction of all samples falling in bucket @p i. */
    double fraction(std::size_t i) const
    {
        return ratio(counts_.at(i), total_);
    }

    /** Total number of samples recorded. */
    std::uint64_t total() const { return total_; }

    /** Merge another histogram (same bucket count) into this one. */
    void
    merge(const Histogram &o)
    {
        counts_.resize(std::max(counts_.size(), o.counts_.size()), 0);
        for (std::size_t i = 0; i < o.counts_.size(); ++i)
            counts_[i] += o.counts_[i];
        total_ += o.total_;
    }

    /** Reset all buckets. */
    void
    reset()
    {
        for (auto &c : counts_)
            c = 0;
        total_ = 0;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace jetty

#endif // JETTY_UTIL_STATS_HH
