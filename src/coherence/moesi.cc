#include "coherence/moesi.hh"

#include "util/logging.hh"

namespace jetty::coherence
{

const char *
stateName(State s)
{
    switch (s) {
      case State::Invalid: return "I";
      case State::Shared: return "S";
      case State::Exclusive: return "E";
      case State::Owned: return "O";
      case State::Modified: return "M";
    }
    return "?";
}

const char *
busOpName(BusOp op)
{
    switch (op) {
      case BusOp::BusRead: return "BusRead";
      case BusOp::BusReadX: return "BusReadX";
      case BusOp::BusUpgrade: return "BusUpgrade";
      case BusOp::BusWriteback: return "BusWriteback";
    }
    return "?";
}

SnoopOutcome
snoopTransition(State current, BusOp op)
{
    SnoopOutcome out;
    out.hadCopy = isValid(current);
    out.next = current;

    if (!out.hadCopy)
        return out;

    switch (op) {
      case BusOp::BusRead:
        switch (current) {
          case State::Modified:
            out.next = State::Owned;
            out.supplied = true;
            break;
          case State::Owned:
            out.supplied = true;
            break;
          case State::Exclusive:
            out.next = State::Shared;
            out.supplied = true;
            break;
          case State::Shared:
            // Memory (or the owner) supplies; we just stay shared.
            break;
          case State::Invalid:
            break;
        }
        break;

      case BusOp::BusReadX:
        out.supplied = isDirty(current);
        out.next = State::Invalid;
        break;

      case BusOp::BusUpgrade:
        // The requester already holds data; no supply, just invalidate.
        out.next = State::Invalid;
        break;

      case BusOp::BusWriteback:
        // Memory update only; other caches are unaffected. A valid copy
        // elsewhere would contradict the writeback of a dirty unit unless
        // the line was Owned/Shared; we leave state untouched.
        out.hadCopy = false;
        break;
    }
    return out;
}

State
fillState(BusOp op, bool anyRemoteCopy)
{
    switch (op) {
      case BusOp::BusRead:
        return anyRemoteCopy ? State::Shared : State::Exclusive;
      case BusOp::BusReadX:
      case BusOp::BusUpgrade:
        return State::Modified;
      case BusOp::BusWriteback:
        break;
    }
    panic("fillState: writeback has no fill state");
}

} // namespace jetty::coherence
