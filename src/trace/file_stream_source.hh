/**
 * @file
 * FileStreamSource: chunked replay of one stream section of a trace file
 * (JTTRACE1 or JTTRACE2). Only a bounded window of the file is ever in
 * memory, so traces far larger than RAM — including > 4 Gi-record
 * JTTRACE2 captures — replay at full speed through the batched delivery
 * path.
 */

#ifndef JETTY_TRACE_FILE_STREAM_SOURCE_HH
#define JETTY_TRACE_FILE_STREAM_SOURCE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/trace_file.hh"
#include "trace/trace_source.hh"

namespace jetty::trace
{

/**
 * A TraceSource that streams one section of a trace file through a
 * fixed-size chunk buffer. Satisfies the full replay contract: reset()
 * rewinds to the section start and clone() opens an independent handle
 * on the same section, so one captured stream can feed many processors
 * or many concurrently running systems.
 */
class FileStreamSource : public TraceSource
{
  public:
    /** Records buffered per refill (512 KiB of file data). */
    static constexpr std::size_t kDefaultChunkRecords = 64 * 1024;

    /**
     * Open stream section @p stream of @p path. The header is validated
     * against the file size up front (fatal() on corruption), so every
     * later read is within bounds.
     * @param chunkRecords records fetched per refill (>= 1).
     */
    explicit FileStreamSource(
        const std::string &path, std::size_t stream = 0,
        std::size_t chunkRecords = kDefaultChunkRecords);

    ~FileStreamSource() override;

    FileStreamSource(const FileStreamSource &) = delete;
    FileStreamSource &operator=(const FileStreamSource &) = delete;

    bool next(TraceRecord &out) override;
    std::size_t nextBatch(TraceRecord *out, std::size_t max) override;
    void reset() override { seekTo(0); }
    TraceSourcePtr clone() const override;

    /**
     * Position the cursor so the next record delivered is record
     * @p record (0-based) of the section. Seeking to records() makes the
     * stream immediately exhausted. The byte offset is computed in
     * 64 bits, so seeks beyond 4 Gi records address the file correctly.
     */
    void seekTo(std::uint64_t record);

    /** Records in this stream section. */
    std::uint64_t records() const { return count_; }

    /** Index of the next record next()/nextBatch() will deliver. */
    std::uint64_t position() const;

    /** File byte offset of record @p record of a section that starts at
     *  byte @p sectionOffset (the chunking arithmetic, kept pure and
     *  separately testable against > 4 Gi-record indices). */
    static std::uint64_t
    recordByteOffset(std::uint64_t sectionOffset, std::uint64_t record)
    {
        return sectionOffset + record * kTraceRecordBytes;
    }

    /** Records the next refill at position @p record may fetch. */
    static std::size_t
    chunkRecordsAt(std::uint64_t count, std::uint64_t record,
                   std::size_t chunkRecords)
    {
        const std::uint64_t left = record < count ? count - record : 0;
        return static_cast<std::size_t>(
            left < chunkRecords ? left : chunkRecords);
    }

  private:
    /** Load the chunk at fileRecord_; returns false at end of stream. */
    bool refill();

    std::string path_;
    std::size_t stream_;
    std::size_t chunkRecords_;
    std::uint64_t sectionOffset_ = 0;  //!< byte offset of the section
    std::uint64_t count_ = 0;          //!< records in the section
    std::uint64_t fileRecord_ = 0;     //!< records consumed from the file
    std::FILE *f_ = nullptr;
    std::vector<unsigned char> buf_;   //!< raw chunk bytes
    std::size_t bufPos_ = 0;           //!< undelivered window start (bytes)
    std::size_t bufLen_ = 0;           //!< valid bytes in buf_
};

/**
 * Build one replay source per processor from trace files:
 *  - one file whose section count equals @p nprocs: section p feeds
 *    processor p;
 *  - one single-section file: independent clones feed every processor;
 *  - @p nprocs files: file p's single section feeds processor p.
 * Anything else is fatal().
 */
std::vector<TraceSourcePtr>
makeFileSources(const std::vector<std::string> &files, unsigned nprocs);

/**
 * How many processors @p files drive under the makeFileSources rules:
 * the file count when several files are given, a single file's section
 * count when it has more than one, and @p fallback for one
 * single-section file (whose clones can feed any machine size).
 */
unsigned inferReplayProcs(const std::vector<std::string> &files,
                          unsigned fallback);

} // namespace jetty::trace

#endif // JETTY_TRACE_FILE_STREAM_SOURCE_HH
