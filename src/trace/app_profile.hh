/**
 * @file
 * Declarative description of a synthetic shared-memory application.
 *
 * The paper traces ten SPLASH-2-class applications with WWT2; we cannot
 * run those binaries, so each application is replaced by a profile whose
 * reference stream reproduces the *behavioural knobs* that drive JETTY:
 * the split of misses between private and shared data, the kind of sharing
 * (producer/consumer, migratory, read-only, widely shared, neighbour
 * partitioned), working-set sizes relative to the 64 KB L1 / 1 MB L2, and
 * word-level spatial/temporal locality. DESIGN.md records this
 * substitution; EXPERIMENTS.md compares the resulting Table 2/3
 * characteristics against the paper's.
 */

#ifndef JETTY_TRACE_APP_PROFILE_HH
#define JETTY_TRACE_APP_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace jetty::trace
{

/** Behavioural class of one reference stream within an application. */
enum class StreamKind : std::uint8_t
{
    /** Per-processor data nobody else touches: a resident part that fits
     *  in the L2 and is reused, plus a streaming part that defeats it.
     *  Misses from this stream snoop-miss in every remote cache. */
    Private,

    /** Ring producer/consumer buffers: each processor writes its own
     *  buffer and reads its neighbour's, one epoch behind. Misses
     *  typically find exactly one remote copy. */
    ProducerConsumer,

    /** Small objects whose read-modify-write ownership rotates around the
     *  processors (lock-protected migratory data). */
    Migratory,

    /** A read-only region all processors browse (scene data, tree upper
     *  levels). Misses may find copies in many remote caches. */
    ReadShared,

    /** Statically partitioned grid with boundary reads from the
     *  neighbouring processor's partition (em3d/ocean-style). */
    Neighbor,
};

/** One stream's parameters. Unused fields are ignored by other kinds. */
struct StreamSpec
{
    StreamKind kind = StreamKind::Private;

    /** Probability this stream supplies the next fresh reference. */
    double weight = 1.0;

    /** Region bytes (per processor for Private/ProducerConsumer/Neighbor;
     *  total for Migratory/ReadShared). */
    std::uint64_t bytes = 1 << 20;

    /** Fraction of this stream's references that are writes. */
    double writeFraction = 0.3;

    /** Private: bytes of the L2-resident reuse set. */
    std::uint64_t residentBytes = 256 * 1024;

    /** Private: fraction of references going to the resident set. */
    double residentFraction = 0.5;

    /** Private: hot-spot skew of resident-set accesses (higher values
     *  shrink the effective working set and raise L2 hit rates). */
    double residentHotBias = 0.45;

    /** Private/ReadShared: object-granular burst length in bytes. Random
     *  accesses touch a run of this many consecutive bytes, giving the
     *  block-level spatial structure (and the sibling-subblock snoop
     *  pairs) real data structures produce. */
    unsigned burstBytes = 64;

    /** ProducerConsumer/Migratory: references per phase/ownership epoch. */
    unsigned epochLen = 4096;

    /** Migratory: object size in bytes (a few coherence units). */
    unsigned objectBytes = 128;

    /** ReadShared: skew of the hot-spot distribution (0 = uniform,
     *  towards 1 = heavily skewed to low addresses). */
    double hotBias = 0.4;

    /** Neighbor: fraction of references that read the neighbour's
     *  boundary rather than the local partition. */
    double remoteFraction = 0.1;

    /** Neighbor: boundary bytes shared with the neighbour. */
    std::uint64_t boundaryBytes = 16 * 1024;
};

/** A named application profile. */
struct AppProfile
{
    std::string name;    //!< full name, e.g. "Barnes"
    std::string abbrev;  //!< two-letter tag, e.g. "ba"

    /** References each processor issues (scaled from the paper's runs). */
    std::uint64_t accessesPerProc = 1'000'000;

    /** Probability a reference re-touches a recently used address
     *  (temporal-locality knob that sets the L1 hit rate). */
    double reuseProb = 0.6;

    /** Word size of the generated references (spatial-locality knob). */
    unsigned wordBytes = 4;

    /** RNG seed; runs are bit-reproducible per (profile, nprocs). */
    std::uint64_t seed = 1;

    std::vector<StreamSpec> streams;
};

} // namespace jetty::trace

#endif // JETTY_TRACE_APP_PROFILE_HH
