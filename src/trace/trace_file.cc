#include "trace/trace_file.hh"

#include <cstdio>
#include <cstring>

#include "util/logging.hh"

namespace jetty::trace
{

namespace
{
constexpr char kMagic[8] = {'J', 'T', 'T', 'R', 'A', 'C', 'E', '1'};
}

void
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &records)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("writeTraceFile: cannot open '" + path + "'");

    std::uint32_t count = static_cast<std::uint32_t>(records.size());
    std::uint32_t reserved = 0;
    if (std::fwrite(kMagic, 1, 8, f) != 8 ||
        std::fwrite(&count, 4, 1, f) != 1 ||
        std::fwrite(&reserved, 4, 1, f) != 1) {
        std::fclose(f);
        fatal("writeTraceFile: header write failed");
    }

    for (const auto &r : records) {
        unsigned char rec[8];
        rec[0] = r.type == AccessType::Write ? 1 : 0;
        for (int i = 0; i < 7; ++i)
            rec[1 + i] = static_cast<unsigned char>((r.addr >> (8 * i)) &
                                                    0xff);
        if (std::fwrite(rec, 1, 8, f) != 8) {
            std::fclose(f);
            fatal("writeTraceFile: record write failed");
        }
    }
    std::fclose(f);
}

std::vector<TraceRecord>
readTraceFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("readTraceFile: cannot open '" + path + "'");

    char magic[8];
    std::uint32_t count = 0, reserved = 0;
    if (std::fread(magic, 1, 8, f) != 8 ||
        std::memcmp(magic, kMagic, 8) != 0 ||
        std::fread(&count, 4, 1, f) != 1 ||
        std::fread(&reserved, 4, 1, f) != 1) {
        std::fclose(f);
        fatal("readTraceFile: bad header in '" + path + "'");
    }

    std::vector<TraceRecord> records;
    records.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        unsigned char rec[8];
        if (std::fread(rec, 1, 8, f) != 8) {
            std::fclose(f);
            fatal("readTraceFile: truncated record");
        }
        TraceRecord r;
        r.type = rec[0] ? AccessType::Write : AccessType::Read;
        r.addr = 0;
        for (int b = 0; b < 7; ++b)
            r.addr |= static_cast<Addr>(rec[1 + b]) << (8 * b);
        records.push_back(r);
    }
    std::fclose(f);
    return records;
}

std::vector<TraceRecord>
collect(TraceSource &src, std::uint64_t limit)
{
    std::vector<TraceRecord> out;
    TraceRecord r;
    while ((limit == 0 || out.size() < limit) && src.next(r))
        out.push_back(r);
    return out;
}

} // namespace jetty::trace
