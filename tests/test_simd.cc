/**
 * @file
 * Exhaustive scalar-vs-dispatch equivalence of the util/simd.hh kernels.
 *
 * The simulated numbers must never depend on the active SIMD tier
 * (DESIGN.md), so the dispatch kernels are checked bit-for-bit against
 * the always-compiled scalar reference across the axes where vector
 * implementations classically diverge:
 *  - every misalignment of the input arrays within a cache line (the
 *    kernels use unaligned loads; nothing may assume 16/32 B bases);
 *  - every length around and below one vector width, including 0 and 1,
 *    so tail handling and the scalar fallback loop are both exercised;
 *  - full-width 56-bit physical addresses (the largest physAddrBits the
 *    simulator configures), so no lane narrows a key;
 *  - first-match semantics of findEqU64 with duplicate keys (the vector
 *    scan must report the lowest index, as the replacement policies
 *    depend on it).
 *
 * On x86 the AVX2 batch variants are additionally tested directly
 * whenever the host offers AVX2, so a build whose compile-time tier is
 * SSE2 still verifies the gather/variable-shift kernels it will
 * dispatch to at run time.
 */

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.hh"
#include "util/simd.hh"

using namespace jetty;

namespace
{

constexpr std::uint64_t kAddrMask56 = (std::uint64_t{1} << 56) - 1;

/** A buffer with a controlled byte misalignment of its u64 base. */
struct Misaligned
{
    // The kernels take uint64_t*, so offsets are in whole words; the
    // interesting misalignment axis for unaligned vector loads is the
    // word offset within a 64-byte line (0..7).
    std::vector<std::uint64_t> storage;
    std::uint64_t *base = nullptr;

    Misaligned(std::size_t words, unsigned wordOffset, Rng &rng)
        : storage(words + 8)
    {
        for (auto &w : storage)
            w = rng.next();
        base = storage.data() + (wordOffset & 7);
    }
};

using PbitFn = void (*)(const std::uint64_t *, const std::uint64_t *,
                        std::size_t, unsigned, std::uint64_t,
                        std::uint64_t, std::uint8_t *);
using HashFn = void (*)(const std::uint64_t *, std::size_t, unsigned,
                        std::uint64_t, unsigned, std::uint64_t *);
using FindFn = int (*)(const std::uint64_t *, std::size_t,
                       std::uint64_t);
using L1ClassifyFn = void (*)(const std::uint64_t *, const std::uint64_t *,
                              std::size_t, unsigned, std::uint64_t,
                              unsigned, unsigned, std::uint8_t *);

void
checkFindEq(FindFn fn, const char *what)
{
    Rng rng(12345);
    for (unsigned offset = 0; offset < 8; ++offset) {
        for (std::size_t n = 0; n <= 19; ++n) {
            Misaligned buf(n, offset, rng);
            // Mask every word to 57 bits ((tag << 1) | present with a
            // 56-bit tag): the packed-word shape the callers scan.
            for (std::size_t i = 0; i < n; ++i)
                buf.base[i] &= (kAddrMask56 << 1) | 1;

            // Absent key.
            const std::uint64_t missing = ~std::uint64_t{0};
            EXPECT_EQ(fn(buf.base, n, missing),
                      simd::scalar::findEqU64(buf.base, n, missing))
                << what << " off=" << offset << " n=" << n;

            // Every present key, and first-match on duplicates.
            for (std::size_t hit = 0; hit < n; ++hit) {
                const std::uint64_t key = buf.base[hit];
                const int want =
                    simd::scalar::findEqU64(buf.base, n, key);
                EXPECT_EQ(fn(buf.base, n, key), want)
                    << what << " off=" << offset << " n=" << n
                    << " hit=" << hit;
            }
            if (n >= 2) {
                // Force a duplicate pair straddling a vector boundary.
                buf.base[n - 1] = buf.base[0];
                EXPECT_EQ(fn(buf.base, n, buf.base[0]), 0)
                    << what << " duplicate, off=" << offset
                    << " n=" << n;
            }
        }
    }
}

void
checkPbitAbsent(PbitFn fn, const char *what)
{
    Rng rng(777);
    // A p-bit store shaped like IJ-10x4x7: 4 sub-arrays of 2^10 bits.
    constexpr unsigned kEntryBits = 10;
    constexpr std::uint64_t kMask = (std::uint64_t{1} << kEntryBits) - 1;
    std::vector<std::uint64_t> pbits((4u << kEntryBits) / 64);
    for (auto &w : pbits)
        w = rng.next();

    for (unsigned offset = 0; offset < 8; ++offset) {
        for (std::size_t n = 0; n <= 17; ++n) {
            Misaligned addrs(n, offset, rng);
            for (std::size_t i = 0; i < n; ++i)
                addrs.base[i] &= kAddrMask56;

            for (unsigned arr = 0; arr < 4; ++arr) {
                const unsigned shift = 6 + arr * 7;  // unit + skip walk
                const std::uint64_t base =
                    static_cast<std::uint64_t>(arr) << kEntryBits;

                // Seed both accumulators identically (the kernel ORs
                // into prior verdicts; that path must match too).
                std::vector<std::uint8_t> got(n), want(n);
                for (std::size_t i = 0; i < n; ++i)
                    got[i] = want[i] = (i & 3) == 0 ? 1 : 0;

                fn(pbits.data(), addrs.base, n, shift, kMask, base,
                   got.data());
                simd::scalar::pbitAbsentAccum(pbits.data(), addrs.base,
                                              n, shift, kMask, base,
                                              want.data());
                EXPECT_EQ(got, want)
                    << what << " off=" << offset << " n=" << n
                    << " arr=" << arr;
            }
        }
    }
}

void
checkOneHotHash(HashFn fn, const char *what)
{
    Rng rng(4242);
    // The write-back buffer's signature hash geometry.
    constexpr unsigned kPreShift = 5;
    constexpr unsigned kPostShift = 58;

    for (unsigned offset = 0; offset < 8; ++offset) {
        for (std::size_t n = 0; n <= 13; ++n) {
            Misaligned keys(n, offset, rng);
            for (std::size_t i = 0; i < n; ++i)
                keys.base[i] &= kAddrMask56;

            std::vector<std::uint64_t> got(n + 1, 0xdead),
                want(n + 1, 0xdead);
            fn(keys.base, n, kPreShift, kSeedMix, kPostShift, got.data());
            simd::scalar::oneHotHash(keys.base, n, kPreShift, kSeedMix,
                                     kPostShift, want.data());
            EXPECT_EQ(got, want)
                << what << " off=" << offset << " n=" << n;
            // One set bit per produced word, and the sentinel intact.
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(__builtin_popcountll(got[i]), 1);
            EXPECT_EQ(got[n], 0xdeadu) << what << " wrote past n";
        }
    }
}

void
checkL1Classify(L1ClassifyFn fn, const char *what)
{
    Rng rng(31337);
    // A miniature L1 tag array: 16 sets, swept across the assocShift
    // range the simulator configures (direct-mapped through 4-way).
    constexpr unsigned kOffsetBits = 5;
    constexpr unsigned kIndexBits = 4;
    constexpr std::uint64_t kSetMask = (1u << kIndexBits) - 1;
    constexpr unsigned kTagShift = kOffsetBits + kIndexBits;

    for (unsigned assocShift = 0; assocShift <= 2; ++assocShift) {
        const std::size_t frames = (kSetMask + 1) << assocShift;
        // Tags sized so a derived address stays within 56 bits, with
        // the top tag bits exercised; random valid/writable per frame.
        std::vector<std::uint64_t> words(frames);
        for (auto &w : words) {
            const std::uint64_t tag =
                rng.next() & (kAddrMask56 >> kTagShift);
            w = (tag << 2) | (rng.next() & 3);
        }

        for (unsigned offset = 0; offset < 8; ++offset) {
            for (std::size_t n = 0; n <= 19; ++n) {
                Misaligned addrs(n, offset, rng);
                for (std::size_t i = 0; i < n; ++i) {
                    if (rng.next() & 1) {
                        // Derived from a stored frame: hits when that
                        // frame is valid, with its writable bit.
                        const std::size_t f = rng.next() % frames;
                        const std::uint64_t set = f >> assocShift;
                        addrs.base[i] =
                            ((words[f] >> 2) << kTagShift) |
                            (set << kOffsetBits) | (rng.next() & 31);
                    } else {
                        // Random: a hit only by (vanishing) accident,
                        // still settled identically by both kernels.
                        addrs.base[i] = rng.next() & kAddrMask56;
                    }
                }
                std::vector<std::uint8_t> got(n + 1, 0xAB),
                    want(n + 1, 0xAB);
                fn(words.data(), addrs.base, n, kOffsetBits, kSetMask,
                   kTagShift, assocShift, got.data());
                simd::scalar::l1Classify(words.data(), addrs.base, n,
                                         kOffsetBits, kSetMask,
                                         kTagShift, assocShift,
                                         want.data());
                EXPECT_EQ(got, want)
                    << what << " assocShift=" << assocShift
                    << " off=" << offset << " n=" << n;
                EXPECT_EQ(got[n], 0xABu) << what << " wrote past n";
            }
        }
    }
}

} // namespace

TEST(Simd, DispatchFindEqMatchesScalar)
{
    checkFindEq(&simd::findEqU64, "dispatch");
}

TEST(Simd, DispatchPbitAbsentMatchesScalar)
{
    checkPbitAbsent(&simd::pbitAbsentAccum, "dispatch");
}

TEST(Simd, DispatchOneHotHashMatchesScalar)
{
    checkOneHotHash(&simd::oneHotHash, "dispatch");
}

TEST(Simd, DispatchL1ClassifyMatchesScalar)
{
    checkL1Classify(&simd::l1Classify, "dispatch");
}

#if defined(JETTY_SIMD_AVX2_KERNELS)
// The run-time-dispatched AVX2 kernels, exercised directly whenever the
// host supports them — even when the compile-time tier is SSE2.
TEST(Simd, Avx2KernelsMatchScalar)
{
    if (!simd::haveAvx2())
        GTEST_SKIP() << "host lacks AVX2";
    checkFindEq(&simd::avx2::findEqU64, "avx2");
    checkPbitAbsent(&simd::avx2::pbitAbsentAccum, "avx2");
    checkOneHotHash(&simd::avx2::oneHotHash, "avx2");
    // Including assocShift = 0, which the dispatcher routes to scalar
    // for speed — the gather kernel must still be correct there.
    checkL1Classify(&simd::avx2::l1Classify, "avx2");
}
#endif

TEST(Simd, ProvenanceIsConsistent)
{
    // isaName()/lanesU64() feed the Report envelope; their pairing is
    // fixed per tier.
    const std::string isa = simd::isaName();
    const unsigned lanes = simd::lanesU64();
    if (isa == "avx2")
        EXPECT_EQ(lanes, 4u);
    else if (isa == "sse2" || isa == "neon")
        EXPECT_EQ(lanes, 2u);
    else
        EXPECT_EQ(lanes, 1u);
#if defined(JETTY_SIMD_DISABLED)
    EXPECT_EQ(isa, "scalar");
#endif
}
