#include "core/include_jetty.hh"

#include "energy/sram_array.hh"
#include "util/bits.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace jetty::filter
{

IncludeJetty::IncludeJetty(const IncludeJettyConfig &cfg,
                           const AddressMap &amap)
    : cfg_(cfg), amap_(amap)
{
    if (cfg.entryBits == 0 || cfg.entryBits > 24 || cfg.arrays == 0 ||
        cfg.skipBits == 0) {
        fatal("IncludeJetty: bad geometry");
    }
    baseOffsetBits_ = cfg.base == IjIndexBase::Block ? amap.blockOffsetBits
                                                     : amap.unitOffsetBits;
    // Pessimistic sizing: a single entry may match every cached unit
    // (Section 3.2 makes the same worst-case assumption).
    counterBits_ = ceilLog2(amap.l2CapacityUnits + 1);
    counts_.assign(static_cast<std::size_t>(cfg.arrays)
                       << cfg.entryBits, 0);
    pbits_.assign((counts_.size() + 63) / 64, 0);
}

std::uint64_t
IncludeJetty::indexOf(Addr unitAddr, unsigned i) const
{
    return bitField(unitAddr, baseOffsetBits_ + i * cfg_.skipBits,
                    cfg_.entryBits);
}

bool
IncludeJetty::probe(Addr unitAddr)
{
    for (unsigned i = 0; i < cfg_.arrays; ++i) {
        const std::size_t slot = slotOf(i, indexOf(unitAddr, i));
        if (!(pbits_[slot >> 6] & (std::uint64_t{1} << (slot & 63))))
            return true;  // one empty superset slice => guaranteed absent
    }
    return false;
}

void
IncludeJetty::onFill(Addr unitAddr)
{
    for (unsigned i = 0; i < cfg_.arrays; ++i) {
        const std::size_t slot = slotOf(i, indexOf(unitAddr, i));
        if (counts_[slot]++ == 0)
            pbits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    }
}

void
IncludeJetty::onEvict(Addr unitAddr)
{
    for (unsigned i = 0; i < cfg_.arrays; ++i) {
        const std::size_t slot = slotOf(i, indexOf(unitAddr, i));
        std::uint32_t &c = counts_[slot];
        if (c == 0)
            panic("IncludeJetty: counter underflow (fill/evict imbalance)");
        if (--c == 0)
            pbits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    }
}

void
IncludeJetty::probeFilteredMany(const Addr *addrs, std::size_t n,
                                std::uint8_t *outFiltered) const
{
    const std::uint64_t mask = (std::uint64_t{1} << cfg_.entryBits) - 1;
    for (unsigned i = 0; i < cfg_.arrays; ++i) {
        simd::pbitAbsentAccum(pbits_.data(), addrs, n,
                              baseOffsetBits_ + i * cfg_.skipBits, mask,
                              static_cast<std::uint64_t>(i)
                                  << cfg_.entryBits,
                              outFiltered);
    }
}

void
IncludeJetty::applyBatch(const BankEvent *evs, std::size_t n,
                         FilterStats &st)
{
    // Probing an IJ is pure (only Fill/Evict touch counters/p-bits), so
    // snoop runs batch-probe through the SIMD gather before the shared
    // protocol folds the verdicts; onSnoopMiss is a no-op.
    replayBankEventsSegmented(
        evs, n, st, addrScratch_, preScratch_,
        [this](const Addr *addrs, std::size_t m, std::uint8_t *out) {
            probeFilteredMany(addrs, m, out);
        },
        [](Addr, std::uint8_t pre) { return pre != 0; },
        [](Addr, bool) {}, [this](Addr a) { IncludeJetty::onFill(a); },
        [this](Addr a) { IncludeJetty::onEvict(a); });
}

void
IncludeJetty::clear()
{
    for (auto &c : counts_)
        c = 0;
    for (auto &w : pbits_)
        w = 0;
}

void
IncludeJetty::pbitArrayShape(std::uint64_t &rows, std::uint64_t &cols) const
{
    // Fold 2^E bits into the widest register-file-like shape with rows <=
    // cols (Table 4: 1024 -> 32x32, 512 -> 16x32, 256 -> 16x16, ...).
    const unsigned e = cfg_.entryBits;
    rows = std::uint64_t{1} << (e / 2);
    cols = std::uint64_t{1} << (e - e / 2);
}

StorageBreakdown
IncludeJetty::storage() const
{
    StorageBreakdown s;
    const std::uint64_t entries = std::uint64_t{1} << cfg_.entryBits;
    s.presenceBits = static_cast<std::uint64_t>(cfg_.arrays) * entries;
    s.counterBits = static_cast<std::uint64_t>(cfg_.arrays) * entries *
                    counterBits_;
    return s;
}

energy::FilterEnergyCosts
IncludeJetty::energyCosts(const energy::Technology &tech) const
{
    // A snoop reads a single p-bit from each sub-array; the p-bit arrays
    // are tiny register-file-shaped structures (Section 3.2 / Table 4).
    std::uint64_t rows, cols;
    pbitArrayShape(rows, cols);
    energy::SramArray pbit(rows, cols, 1, tech);
    const double probe_one = pbit.readEnergy(1);

    // Counter updates read-modify-write one cnt entry per sub-array and
    // occasionally write the p-bit. The cnt arrays are separate,
    // power-optimized structures (Figure 3c): one counter per row, banked
    // by the CACTI-lite optimizer so only a short bitline segment cycles.
    const std::uint64_t entries = std::uint64_t{1} << cfg_.entryBits;
    const unsigned cnt_banks = energy::SramArray::optimalBanks(
        entries, counterBits_, tech, 64, counterBits_);
    energy::SramArray cnt(entries, counterBits_, cnt_banks, tech);
    const double update_one = cnt.readEnergy(0) +
                              cnt.writeEnergy(counterBits_) +
                              pbit.writeEnergy(1);

    energy::FilterEnergyCosts costs;
    costs.probe = static_cast<double>(cfg_.arrays) * probe_one;
    costs.snoopAlloc = 0.0;  // IJ never allocates on snoops
    costs.fillUpdate = static_cast<double>(cfg_.arrays) * update_one;
    costs.evictUpdate = costs.fillUpdate;
    return costs;
}

std::string
IncludeJetty::name() const
{
    std::string n = "IJ-" + std::to_string(cfg_.entryBits) + "x" +
                    std::to_string(cfg_.arrays) + "x" +
                    std::to_string(cfg_.skipBits);
    if (cfg_.base == IjIndexBase::Unit)
        n += "u";
    return n;
}

} // namespace jetty::filter
