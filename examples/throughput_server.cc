/**
 * @file
 * Scenario example: the SMP as a throughput engine (Section 1/2 of the
 * paper). Each processor runs an independent program, so essentially
 * every snoop misses in every remote cache -- the best case for JETTY.
 * Contrasted with the widely-shared worst case, where read-only data is
 * replicated everywhere and filtering buys little.
 */

#include <cstdio>

#include "experiments/experiments.hh"
#include "trace/apps.hh"

using namespace jetty;

namespace
{

void
report(const char *label, const experiments::AppRunResult &run,
       const experiments::SystemVariant &variant, const std::string &spec)
{
    const auto agg = run.stats.aggregate();
    const auto &fs = run.statsFor(spec);
    const auto serial = experiments::evaluateEnergy(
        run, variant, spec, energy::AccessMode::Serial);

    std::printf("%-18s snoops miss %5.1f%% of the time; coverage %5.1f%%; "
                "snoop-energy saved %5.1f%%\n",
                label, percent(agg.snoopMisses, agg.snoopTagProbes),
                100.0 * fs.coverage(), serial.reductionOverSnoopsPct);
}

} // namespace

int
main()
{
    experiments::SystemVariant variant;
    const std::string spec = "HJ(IJ-9x4x7,EJ-32x4)";

    std::printf("JETTY on a throughput server vs the widely-shared worst "
                "case\n(4-way SMP, %s, serial L2 arrays)\n\n", spec.c_str());

    const auto ts = experiments::runApp(trace::throughputServer(), variant,
                                        {spec}, 0.5);
    report("throughput-server", ts, variant, spec);

    const auto ws = experiments::runApp(trace::widelyShared(), variant,
                                        {spec}, 0.5);
    report("widely-shared", ws, variant, spec);

    std::printf("\nIndependent programs never hold each other's data, so "
                "the filter guards\nnearly every snoop. Widely-shared "
                "read-only data is the adversarial case the\npaper calls "
                "out: many snoops find copies, fewer can be filtered, and "
                "the\nJETTY's own energy eats into the savings.\n");
    return 0;
}
