/**
 * @file
 * L1 data cache: set-associative, write-back, write-allocate, with lines
 * equal to the L2 coherence unit (32 B in the base system). The L1 carries
 * no coherence state of its own; it mirrors presence plus a "writable"
 * permission bit derived from the L2's MOESI state, and the inclusion
 * property (L2 superset of L1) is enforced by the owning processor node.
 */

#ifndef JETTY_MEM_L1_CACHE_HH
#define JETTY_MEM_L1_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/cache_config.hh"
#include "util/bits.hh"
#include "util/types.hh"

namespace jetty::mem
{

/** Result of an L1 lookup. */
struct L1LookupResult
{
    bool hit = false;       //!< line present
    bool writable = false;  //!< line may be written without L2 help
    bool dirty = false;     //!< line holds unwritten-back data
};

/** A dirty line displaced by an L1 fill; must be written back to L2. */
struct L1Victim
{
    Addr lineAddr = 0;
    bool valid = false;
    bool dirty = false;
};

/** One valid line as enumerated for state comparison (verify/). */
struct L1LineInfo
{
    Addr lineAddr = 0;
    bool writable = false;
    bool dirty = false;
};

/** How the single-lookup fast path classified a reference. */
enum class L1FastOutcome : std::uint8_t
{
    Hit,      //!< retired: hit needing no L2 help (touched, dirtied)
    Blocked,  //!< write hit without write permission; cache untouched
    Miss,     //!< line absent; cache untouched
};

/** Tag/flag store of the L1 data cache (LRU replacement). */
class L1Cache
{
  public:
    explicit L1Cache(const L1Config &cfg);

    /** Line-align an address. */
    Addr lineAlign(Addr a) const { return a & ~lineMask_; }

    /** Probe without side effects. */
    L1LookupResult probe(Addr addr) const;

    /**
     * Single-lookup fast path for hits that need no L2 interaction: a
     * read hit, or a write hit on a writable line. Performs exactly the
     * state changes of probe() + touch() (+ markDirty() for writes) in
     * one associative search and returns true. Any other case — miss, or
     * a write hit lacking write permission — leaves the cache completely
     * untouched and returns false so the caller can take the full path.
     *
     * Inline because the simulator's batched delivery loop issues one of
     * these per reference; it must stay bit-identical to the slow path
     * (same LRU clock advance, same dirty marking).
     */
    bool
    accessFast(Addr addr, bool write)
    {
        return accessClassify(addr, write) == L1FastOutcome::Hit;
    }

    /**
     * accessFast() that additionally reports *why* the fast path did
     * not retire the reference, so the caller can enter the L1-miss
     * route directly instead of re-probing: Blocked (a write hit
     * lacking permission — the full processorAccess route applies) vs
     * Miss (the line is absent). Hit semantics are accessFast()'s.
     */
    L1FastOutcome
    accessClassify(Addr addr, bool write)
    {
        const std::uint64_t set = bitField(addr, offsetBits_, indexBits_);
        const Addr tag = addr >> (offsetBits_ + indexBits_);
        Line *const ways = &lines_[set * cfg_.assoc];
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            Line &l = ways[w];
            if (!l.valid || l.tag != tag)
                continue;
            if (write && !l.writable)
                return L1FastOutcome::Blocked;
            l.lastUse = ++useClock_;
            if (write)
                l.dirty = true;
            return L1FastOutcome::Hit;
        }
        return L1FastOutcome::Miss;
    }

    /** Update LRU for a hit on @p addr's line. */
    void touch(Addr addr);

    /** Mark the (present) line dirty after a permitted write. */
    void markDirty(Addr addr);

    /** Grant write permission to the (present) line. */
    void setWritable(Addr addr, bool writable);

    /**
     * Allocate the line for @p addr, returning the displaced line (if any)
     * through @p victim. The caller writes dirty victims back to L2.
     */
    void fill(Addr addr, bool writable, L1Victim &victim);

    /**
     * Invalidate @p addr's line if present (inclusion enforcement).
     * @return true when the invalidated line was dirty (its data must be
     *         merged into the L2 before the unit leaves the hierarchy).
     */
    bool invalidate(Addr addr);

    /** Number of valid lines (for invariant checks). */
    std::uint64_t validLines() const { return validLines_; }

    /**
     * Every valid line with its permission/dirty flags, sorted by line
     * address. Differential verification compares this against the golden
     * model's view; not for hot paths.
     */
    std::vector<L1LineInfo> validLineInfo() const;

    /** The configuration this cache was built with. */
    const L1Config &config() const { return cfg_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool writable = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setIndex(Addr a) const;
    Addr tagOf(Addr a) const;
    Addr lineAddrOf(Addr tag, std::uint64_t set) const;
    int findWay(Addr a) const;

    L1Config cfg_;
    /** Flat [set * assoc + way] layout: a set's ways are one contiguous
     *  run, so the per-reference fast-path scan stays in one line. */
    std::vector<Line> lines_;
    std::uint64_t lineMask_;
    unsigned offsetBits_;
    unsigned indexBits_;
    std::uint64_t useClock_ = 0;
    std::uint64_t validLines_ = 0;
};

} // namespace jetty::mem

#endif // JETTY_MEM_L1_CACHE_HH
