/**
 * @file
 * On-disk tier of the RunCache (tier 1). One JSON file per
 * (variant, workload, scale) cell under a cache root, keyed by the same
 * canonical mini-spec text runCacheKey() produces for the in-memory
 * tier, so the two tiers answer exactly the same questions.
 *
 * Layout under the root:
 *
 *   <root>/<16-hex-fnv64-of-key>.json   — one entry per cell
 *   <root>/index.json                   — recency + size index for LRU
 *
 * Each entry is an envelope {"jetty_cache": <version>, "key": "<full
 * canonical key>", "covered": [filter specs...], "result": {...}} so a
 * filename hash collision is detected by comparing the embedded key, and
 * a semantic change to the simulator only needs a kDiskCacheVersion bump
 * to invalidate every stale entry.
 *
 * Robustness contract: the disk tier is an accelerator, never an
 * authority. Corrupt, truncated, or wrong-version entries are evicted
 * and reported as misses; a corrupt index is rebuilt from a directory
 * scan; every publish goes through util/atomic_file.hh so a writer
 * killed mid-publish leaves nothing readable at the final path. No
 * failure in this tier is ever fatal to the caller.
 */

#ifndef JETTY_EXPERIMENTS_DISK_CACHE_HH
#define JETTY_EXPERIMENTS_DISK_CACHE_HH

#include <cstdint>
#include <mutex>
#include <set>
#include <string>

#include "experiments/experiments.hh"
#include "util/json.hh"

namespace jetty::experiments
{

/** Entry-format version; bump when AppRunResult serialization or the
 *  simulator's semantics change so stale entries read as misses. */
constexpr std::uint64_t kDiskCacheVersion = 1;

/** Default byte budget for LRU eviction (overridable via
 *  JETTY_CACHE_BYTES or RunCache::setDiskBudget). */
constexpr std::uint64_t kDefaultDiskBudgetBytes = 256ull << 20;

class DiskCache
{
  public:
    /** Open (creating directories as needed) the cache at @p root. */
    DiskCache(std::string root, std::uint64_t budgetBytes);

    DiskCache(const DiskCache &) = delete;
    DiskCache &operator=(const DiskCache &) = delete;

    /**
     * Look up the cell for canonical key @p key. On a hit, fills
     * @p result / @p covered, bumps the entry's recency, and returns
     * true. Corrupt, truncated, or wrong-version entries are unlinked
     * and read as misses; a filename-collision entry (embedded key
     * differs) is a miss but is left in place.
     */
    bool lookup(const std::string &key, AppRunResult &result,
                std::set<std::string> &covered);

    /**
     * Publish (or overwrite) the cell for @p key atomically, then
     * evict least-recently-used entries until the tier fits the byte
     * budget (the just-published entry is never evicted). I/O failures
     * are swallowed: the tier simply misses next time.
     */
    void publish(const std::string &key, const AppRunResult &result,
                 const std::set<std::string> &covered);

    const std::string &root() const { return root_; }
    std::uint64_t budgetBytes() const { return budget_; }

    /** Entry filename (relative to the root) for a canonical key —
     *  16 hex digits of FNV-1a plus ".json". Exposed for tests. */
    static std::string entryFileFor(const std::string &key);

  private:
    json::Value loadIndexLocked();
    void storeIndexLocked(const json::Value &index);
    json::Value rebuildIndexLocked();

    std::string root_;
    std::uint64_t budget_;
    std::mutex mu_;
};

} // namespace jetty::experiments

#endif // JETTY_EXPERIMENTS_DISK_CACHE_HH
