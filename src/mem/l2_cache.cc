#include "mem/l2_cache.hh"

#include <algorithm>
#include <cassert>

#include "util/bits.hh"
#include "util/logging.hh"

namespace jetty::mem
{

using coherence::BusOp;
using coherence::SnoopOutcome;
using coherence::State;

L2Cache::L2Cache(const L2Config &cfg) : cfg_(cfg)
{
    if (!isPowerOfTwo(cfg.sizeBytes) || !isPowerOfTwo(cfg.blockBytes) ||
        !isPowerOfTwo(cfg.assoc) || !isPowerOfTwo(cfg.subblocks)) {
        fatal("L2Cache: all geometry parameters must be powers of two");
    }
    if (cfg.subblocks == 0 || cfg.blockBytes % cfg.subblocks != 0)
        fatal("L2Cache: subblocks must evenly divide the block");

    const std::uint64_t sets = cfg.sets();
    if (sets == 0)
        fatal("L2Cache: size too small for block/assoc");

    blockMask_ = cfg.blockBytes - 1;
    unitMask_ = cfg.unitBytes() - 1;
    offsetBits_ = floorLog2(cfg.blockBytes);
    indexBits_ = floorLog2(sets);

    ways_.resize(cfg.assoc);
    for (auto &way : ways_) {
        way.blocks.resize(sets);
        for (auto &b : way.blocks)
            b.units.assign(cfg.subblocks, State::Invalid);
    }
}

void
L2Cache::addListener(CacheEventListener *listener)
{
    listeners_.push_back(listener);
}

std::uint64_t
L2Cache::setIndex(Addr a) const
{
    return bitField(a, offsetBits_, indexBits_);
}

Addr
L2Cache::tagOf(Addr a) const
{
    return a >> (offsetBits_ + indexBits_);
}

unsigned
L2Cache::unitIndex(Addr a) const
{
    return static_cast<unsigned>(bitField(a, floorLog2(cfg_.unitBytes()),
                                          floorLog2(cfg_.subblocks) == 0
                                              ? 0
                                              : floorLog2(cfg_.subblocks)));
}

Addr
L2Cache::unitAddrOf(const Block &b, std::uint64_t set, unsigned unit) const
{
    const Addr block_addr =
        (b.tag << (offsetBits_ + indexBits_)) | (set << offsetBits_);
    return block_addr + static_cast<Addr>(unit) * cfg_.unitBytes();
}

int
L2Cache::findWay(Addr a) const
{
    const std::uint64_t set = setIndex(a);
    const Addr tag = tagOf(a);
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        const Block &b = ways_[w].blocks[set];
        if (b.valid && b.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

L2LookupResult
L2Cache::probe(Addr addr) const
{
    L2LookupResult res;
    const int w = findWay(addr);
    if (w < 0)
        return res;
    res.tagMatch = true;
    const Block &b = ways_[w].blocks[setIndex(addr)];
    const State s = b.units[unitIndex(addr)];
    res.unitValid = coherence::isValid(s);
    res.state = s;
    return res;
}

bool
L2Cache::hasBlock(Addr addr) const
{
    return findWay(addr) >= 0;
}

void
L2Cache::touch(Addr addr)
{
    const int w = findWay(addr);
    if (w < 0)
        return;
    ways_[w].blocks[setIndex(addr)].lastUse = ++useClock_;
}

void
L2Cache::setState(Addr addr, State next)
{
    const int w = findWay(addr);
    if (w < 0)
        panic("L2Cache::setState on absent block");
    Block &b = ways_[w].blocks[setIndex(addr)];
    State &s = b.units[unitIndex(addr)];
    if (!coherence::isValid(s))
        panic("L2Cache::setState on invalid unit");
    if (!coherence::isValid(next))
        panic("L2Cache::setState cannot invalidate; use snoop/invalidate");
    s = next;
}

bool
L2Cache::fill(Addr addr, State state, std::vector<L2Victim> &victims)
{
    assert(coherence::isValid(state));
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const unsigned unit = unitIndex(addr);

    int w = findWay(addr);
    bool evicted = false;

    if (w < 0) {
        // Choose a victim way: an invalid one if possible, else LRU.
        int victim = -1;
        for (unsigned i = 0; i < cfg_.assoc; ++i) {
            if (!ways_[i].blocks[set].valid) {
                victim = static_cast<int>(i);
                break;
            }
        }
        if (victim < 0) {
            std::uint64_t oldest = ~std::uint64_t{0};
            for (unsigned i = 0; i < cfg_.assoc; ++i) {
                const Block &b = ways_[i].blocks[set];
                if (b.lastUse < oldest) {
                    oldest = b.lastUse;
                    victim = static_cast<int>(i);
                }
            }
        }

        Block &b = ways_[victim].blocks[set];
        if (b.valid) {
            evicted = true;
            for (unsigned u = 0; u < cfg_.subblocks; ++u) {
                if (coherence::isValid(b.units[u])) {
                    const Addr ua = unitAddrOf(b, set, u);
                    victims.push_back({ua, b.units[u]});
                    b.units[u] = State::Invalid;
                    --validUnits_;
                    notifyEvict(ua);
                }
            }
        }
        b.valid = true;
        b.tag = tag;
        for (auto &u : b.units)
            u = State::Invalid;
        w = victim;
    }

    Block &b = ways_[w].blocks[set];
    b.lastUse = ++useClock_;
    State &s = b.units[unit];
    if (coherence::isValid(s))
        panic("L2Cache::fill into an already-valid unit");
    s = state;
    ++validUnits_;
    notifyFill(unitAlign(addr));
    return evicted;
}

SnoopOutcome
L2Cache::snoop(Addr addr, BusOp op)
{
    const int w = findWay(addr);
    if (w < 0)
        return SnoopOutcome{};

    Block &b = ways_[w].blocks[setIndex(addr)];
    const unsigned unit = unitIndex(addr);
    const State cur = b.units[unit];
    const SnoopOutcome out = coherence::snoopTransition(cur, op);

    if (out.next != cur) {
        b.units[unit] = out.next;
        if (coherence::isValid(cur) && !coherence::isValid(out.next)) {
            --validUnits_;
            notifyEvict(unitAlign(addr));
        }
    }
    return out;
}

void
L2Cache::invalidateUnit(Addr addr)
{
    const int w = findWay(addr);
    if (w < 0)
        return;
    Block &b = ways_[w].blocks[setIndex(addr)];
    State &s = b.units[unitIndex(addr)];
    if (coherence::isValid(s)) {
        s = State::Invalid;
        --validUnits_;
        notifyEvict(unitAlign(addr));
    }
}

std::vector<L2UnitInfo>
L2Cache::validUnitInfo() const
{
    std::vector<L2UnitInfo> units;
    units.reserve(validUnits_);
    const std::uint64_t sets = cfg_.sets();
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        for (std::uint64_t set = 0; set < sets; ++set) {
            const Block &b = ways_[w].blocks[set];
            if (!b.valid)
                continue;
            for (unsigned u = 0; u < cfg_.subblocks; ++u) {
                if (coherence::isValid(b.units[u]))
                    units.push_back({unitAddrOf(b, set, u), b.units[u]});
            }
        }
    }
    std::sort(units.begin(), units.end(),
              [](const L2UnitInfo &a, const L2UnitInfo &b) {
                  return a.unitAddr < b.unitAddr;
              });
    return units;
}

std::vector<Addr>
L2Cache::residentBlockAddrs() const
{
    std::vector<Addr> blocks;
    const std::uint64_t sets = cfg_.sets();
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        for (std::uint64_t set = 0; set < sets; ++set) {
            const Block &b = ways_[w].blocks[set];
            if (b.valid)
                blocks.push_back(unitAddrOf(b, set, 0));
        }
    }
    std::sort(blocks.begin(), blocks.end());
    return blocks;
}

void
L2Cache::notifyFill(Addr unitAddr)
{
    for (auto *l : listeners_)
        l->unitFilled(unitAddr);
}

void
L2Cache::notifyEvict(Addr unitAddr)
{
    for (auto *l : listeners_)
        l->unitEvicted(unitAddr);
}

} // namespace jetty::mem
