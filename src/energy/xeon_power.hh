/**
 * @file
 * Published peak-power data for the 400 MHz Intel Pentium II Xeon used in
 * the paper's Table 1 (source: Microprocessor Report vol. 12 no. 9, via
 * the paper), plus the derived relative columns. The constants are data,
 * not an experiment; bench_table1 regenerates the derived ratios.
 */

#ifndef JETTY_ENERGY_XEON_POWER_HH
#define JETTY_ENERGY_XEON_POWER_HH

#include <array>
#include <cstdint>

namespace jetty::energy
{

/** One row of Table 1: peak power split for a given L2 size. */
struct XeonPowerRow
{
    std::uint64_t l2KBytes;  //!< L2 capacity in KB
    double coreWatts;        //!< processor core peak power
    double l2Watts;          //!< external L2 SRAM peak power (w/o pads)
    double l2PadWatts;       //!< L2 pad drivers peak power

    /** L2 SRAM share of overall (core + L2 + pads) power -- the paper's
     *  "L2" column, which counts pad power in the denominator only. */
    double
    l2FractionWithPads() const
    {
        return l2Watts / (coreWatts + l2Watts + l2PadWatts);
    }

    /** L2 share with pad power excluded everywhere: the paper's estimate
     *  for a hypothetical on-chip L2. */
    double
    l2FractionWithoutPads() const
    {
        return l2Watts / (coreWatts + l2Watts);
    }
};

/** The three rows of Table 1 (512 KB / 1 MB / 2 MB parts). */
inline constexpr std::array<XeonPowerRow, 3> xeonPowerTable{{
    {512, 23.3, 4.5, 3.0},
    {1024, 23.3, 9.0, 6.0},
    {2048, 23.3, 18.0, 12.0},
}};

} // namespace jetty::energy

#endif // JETTY_ENERGY_XEON_POWER_HH
