/**
 * @file
 * Exclude-JETTY (Section 3.1): a small set-associative array of
 * (TAG, present-bit) pairs recording recently snooped L2 *blocks* that
 * were entirely absent from the local L2 and have not been fetched since.
 * A tag match with the present bit set guarantees the snooped unit's whole
 * block is absent, filtering the snoop.
 *
 * Granularity matters: entries cover one L2 block (64 B in the base
 * system), not one coherence unit. This is what lets subblocking feed the
 * EJ -- a miss on one subblock allocates an entry that then filters the
 * (extremely likely) follow-up snoop to the sibling subblock, the effect
 * the paper identifies as the primary source of snoop locality. For
 * safety an entry is only allocated when the snooping tag probe saw no
 * matching tag at all (whole block absent), and it is cleared the moment
 * a local miss fills any unit of the block.
 */

#ifndef JETTY_CORE_EXCLUDE_JETTY_HH
#define JETTY_CORE_EXCLUDE_JETTY_HH

#include <cstdint>

#include "core/snoop_filter.hh"
#include "util/arena.hh"

namespace jetty::filter
{

/** Configuration of an EJ-SxA organization. */
struct ExcludeJettyConfig
{
    unsigned sets = 32;   //!< power of two
    unsigned assoc = 4;   //!< ways per set
};

/** The exclude-JETTY proper. */
class ExcludeJetty : public SnoopFilter
{
  public:
    ExcludeJetty(const ExcludeJettyConfig &cfg, const AddressMap &amap);

    bool probe(Addr unitAddr) override;
    void onSnoopMiss(Addr unitAddr, bool blockPresent) override;
    void onFill(Addr unitAddr) override;
    void onEvict(Addr) override {}
    void clear() override;

    /** Devirtualized batch replay for the deferred bank path: one call
     *  per event run, direct (inlinable) probe/alloc/fill bodies. */
    void applyBatch(const BankEvent *evs, std::size_t n,
                    FilterStats &st) override;

    StorageBreakdown storage() const override;
    energy::FilterEnergyCosts
    energyCosts(const energy::Technology &tech) const override;
    std::string name() const override;

    /** Bits of tag stored per entry (block address above the set index). */
    unsigned storedTagBits() const { return tagBits_; }

  private:
    std::uint64_t setIndex(Addr unitAddr) const;
    Addr tagOf(Addr unitAddr) const;

    ExcludeJettyConfig cfg_;
    AddressMap amap_;
    unsigned setBits_;
    unsigned tagBits_;
    /**
     * Packed entry words, flat [set * assoc + way]: (tag << 1) | present,
     * cache-line aligned. A probe is one equality scan of a set's ways
     * for (tag << 1) | 1 (a cleared present bit can never match — the
     * key's low bit is set), which the SIMD kernel compares a whole
     * vector of ways at a time. LRU clocks live in a parallel array so
     * the scan stays dense.
     */
    util::AlignedVec<std::uint64_t> presTag_;
    util::AlignedVec<std::uint64_t> lastUse_;
    std::uint64_t useClock_ = 0;
};

} // namespace jetty::filter

#endif // JETTY_CORE_EXCLUDE_JETTY_HH
